package core

import (
	"math"

	"repro/internal/dag"
	"repro/internal/failure"
)

// SecondOrderResult carries the O(λ²) estimate and its pieces.
type SecondOrderResult struct {
	// Estimate is the second-order approximation of the expected makespan.
	Estimate float64
	// FirstOrder is the first-order estimate on the same graph, for
	// comparing the size of the λ² correction.
	FirstOrder float64
	// FailureFree is d(G).
	FailureFree float64
}

// SecondOrder computes the second-order (in λ) approximation of the
// expected makespan — the extension the paper's conclusion proposes.
// Expanding per-task attempt-count probabilities to O(λ²) and keeping all
// failure multisets of probability Ω(λ²):
//
//	P(no failure)          = 1 − λA + λ²(Σ_{i<j} a_i a_j + Σ a_i²/2)
//	P(task i fails once)   = λa_i − (3/2)λ²a_i² − λ²a_i(A − a_i)
//	P(task i fails twice)  = λ²a_i²
//	P(i and j fail once)   = λ²a_i a_j           (i ≠ j)
//
// with A = Σ a_i; the retained mass is 1 − O(λ³) (asserted in tests).
// The corresponding makespans are d(G), d(G_i) (a_i doubled), d(G_i²)
// (a_i tripled) and d(G_ij) (both doubled). Pairs are evaluated in O(1)
// after an O(V(V+E)) all-pairs longest-path precomputation:
//
//	d(G_ij) = max(d, M_i+a_i, M_j+a_j, through(i,j)+a_i+a_j)
//
// where through(i,j) is the longest path containing both tasks.
// Total cost O(V(V+E) + V²) time and O(V²) memory.
func SecondOrder(g *dag.Graph, model failure.Model) (SecondOrderResult, error) {
	// One frozen compilation shared by the evaluator and the all-pairs DP.
	f, err := dag.Freeze(g)
	if err != nil {
		return SecondOrderResult{}, err
	}
	pe := dag.NewPathEvaluatorFrozen(f)
	apl := dag.NewAllPairsLongestFrozen(f)
	lam := model.Lambda
	d := pe.Makespan()
	heads := pe.Heads()
	tails := pe.Tails()
	n := g.NumTasks()

	var a, dGi []float64 = g.Weights(), make([]float64, n)
	var total float64 // A = Σ a_i
	var sumSq float64 // Q = Σ a_i²
	for i := 0; i < n; i++ {
		total += a[i]
		sumSq += a[i] * a[i]
		dGi[i] = math.Max(d, heads[i]+tails[i])
	}
	sumPairsProd := (total*total - sumSq) / 2 // Σ_{i<j} a_i a_j

	pEmpty := 1 - lam*total + lam*lam*(sumPairsProd+sumSq/2)
	est := pEmpty * d
	firstOrderSum := 0.0
	for i := 0; i < n; i++ {
		pi := lam*a[i] - 1.5*lam*lam*a[i]*a[i] - lam*lam*a[i]*(total-a[i])
		est += pi * dGi[i]
		firstOrderSum += a[i] * (dGi[i] - d)
		// Task i failing twice: weight 3a_i adds 2a_i along its paths.
		dGi2 := math.Max(d, heads[i]+tails[i]+a[i])
		est += lam * lam * a[i] * a[i] * dGi2
	}
	// Unordered pairs i<j, each failing once.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dij := math.Max(dGi[i], dGi[j])
			// A path through both exists only if one reaches the other.
			if lp := apl.Dist(i, j); !math.IsInf(lp, -1) {
				through := heads[i] + lp - a[i] - a[j] + tails[j]
				dij = math.Max(dij, through+a[i]+a[j])
			} else if lp := apl.Dist(j, i); !math.IsInf(lp, -1) {
				through := heads[j] + lp - a[j] - a[i] + tails[i]
				dij = math.Max(dij, through+a[i]+a[j])
			}
			est += lam * lam * a[i] * a[j] * dij
		}
	}
	return SecondOrderResult{
		Estimate:    est,
		FirstOrder:  d + lam*firstOrderSum,
		FailureFree: d,
	}, nil
}

// secondOrderMass returns the total probability mass retained by the
// second-order expansion; exported to tests via export_test.go.
func secondOrderMass(g *dag.Graph, model failure.Model) float64 {
	lam := model.Lambda
	var total, sumSq float64
	for i := 0; i < g.NumTasks(); i++ {
		a := g.Weight(i)
		total += a
		sumSq += a * a
	}
	sumPairsProd := (total*total - sumSq) / 2
	mass := 1 - lam*total + lam*lam*(sumPairsProd+sumSq/2)
	for i := 0; i < g.NumTasks(); i++ {
		a := g.Weight(i)
		mass += lam*a - 1.5*lam*lam*a*a - lam*lam*a*(total-a)
		mass += lam * lam * a * a
	}
	mass += lam * lam * sumPairsProd
	return mass
}
