// Command makespan estimates the expected makespan of a task graph under
// silent errors with every implemented method.
//
// Usage:
//
//	makespan -kind cholesky -k 8 -pfail 0.001
//	makespan -graph graph.json -lambda 0.05 -trials 100000
//	makespan -kind lu -k 10 -trials 20000 -quantiles 0.5,0.95,0.99
//	makespan -kind lu -k 10 -tolerance 0.01
//	makespan -kind lu -k 10 -tolerance 0.05 -target-quantile 0.95 -max-trials 1000000
//	makespan -kind lu -k 10 -format json
//
// The graph comes either from a generator (-kind cholesky|lu|qr with -k)
// or from a JSON file produced by daggen (-graph). The failure model comes
// from -lambda directly or from -pfail calibrated on the mean task weight,
// as in the paper. The tool prints the failure-free makespan, each
// estimator's value and runtime, and a Monte Carlo reference with its 95%
// confidence interval (plus distribution quantiles with -quantiles).
//
// -tolerance selects adaptive Monte Carlo instead of a fixed budget: the
// engine runs whole 4096-trial chunks until the 95% (or -confidence)
// interval of the mean — or of -target-quantile — has half-width within
// the tolerance, capped by -max-trials. The stopping point is a
// deterministic prefix of the fixed-budget trial stream, so an adaptive
// run that stops after N trials is bit-identical to -trials N.
//
// With -format json the same content is emitted as one JSON document
// through internal/report — the exact writer the makespand service uses,
// so `makespan -format json` output is byte-identical to the service's
// POST /v1/estimate response for the same inputs (timing fields aside).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/experiments"
	"repro/internal/failure"
	"repro/internal/linalg"
	"repro/internal/montecarlo"
	"repro/internal/report"
)

// options collects the CLI flags; run is kept flag-free so tests drive it
// directly.
type options struct {
	kind      string
	k         int
	path      string
	pfail     float64
	lambda    float64
	trials    int
	seed      uint64
	atoms     int
	methods   string
	bounds    bool
	quantiles string
	format    string

	tolerance      float64
	targetQuantile float64
	confidence     float64
	maxTrials      int
}

func main() {
	var o options
	flag.StringVar(&o.kind, "kind", "cholesky", "generator: cholesky, lu or qr (ignored with -graph)")
	flag.IntVar(&o.k, "k", 8, "tile count for the generator")
	flag.StringVar(&o.path, "graph", "", "JSON graph file (overrides -kind/-k)")
	flag.Float64Var(&o.pfail, "pfail", 0.001, "failure probability of an average-weight task")
	flag.Float64Var(&o.lambda, "lambda", 0, "error rate λ (overrides -pfail when > 0)")
	flag.IntVar(&o.trials, "trials", montecarlo.DefaultTrials, "Monte Carlo trials (0 to skip MC)")
	flag.Uint64Var(&o.seed, "seed", 42, "Monte Carlo seed")
	flag.IntVar(&o.atoms, "dodin-atoms", 0, "Dodin distribution support cap (0 = default 64, -1 = unlimited)")
	flag.StringVar(&o.methods, "methods", "all", "comma list of methods, 'paper' or 'all'")
	flag.BoolVar(&o.bounds, "bounds", false, "print the analytic [Jensen, Kleindorfer] bracket")
	flag.StringVar(&o.quantiles, "quantiles", "", "comma list of Monte Carlo quantiles in (0,1), e.g. 0.5,0.95")
	flag.StringVar(&o.format, "format", "text", "output format: text or json")
	flag.Float64Var(&o.tolerance, "tolerance", 0, "adaptive MC: stop when the CI half-width is within this (excludes -trials)")
	flag.Float64Var(&o.targetQuantile, "target-quantile", 0, "adaptive MC: watch this quantile's CI instead of the mean's")
	flag.Float64Var(&o.confidence, "confidence", 0, "adaptive MC: stopping confidence level (default 0.95)")
	flag.IntVar(&o.maxTrials, "max-trials", 0, "adaptive MC: trial cap (default 300000, rounded up to whole chunks)")
	flag.Parse()
	if o.tolerance != 0 {
		// -trials has a nonzero default; only an explicit -trials should
		// conflict with -tolerance (the engine rejects the combination).
		explicit := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "trials" {
				explicit = true
			}
		})
		if !explicit {
			o.trials = 0
		}
	}
	// Ctrl-C / SIGTERM cancels the run context: artifact builds stop
	// between rules and Monte Carlo aborts at the next chunk boundary, so
	// an interrupted run never prints a partial document.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, o); err != nil {
		fmt.Fprintln(os.Stderr, "makespan:", err)
		if errors.Is(err, context.Canceled) {
			os.Exit(130)
		}
		os.Exit(1)
	}
}

func run(ctx context.Context, o options) error {
	if o.format != "text" && o.format != "json" {
		return fmt.Errorf("unknown -format %q (text or json)", o.format)
	}
	g, err := loadGraph(o.kind, o.k, o.path)
	if err != nil {
		return err
	}
	model, err := buildModel(g, o.pfail, o.lambda)
	if err != nil {
		return err
	}
	est, err := buildEstimate(ctx, g, model, o)
	if err != nil {
		return err
	}
	if o.format == "json" {
		return report.WriteEstimateJSON(os.Stdout, est)
	}
	return report.WriteEstimateText(os.Stdout, est)
}

// buildEstimate assembles the estimate document through a process-local
// artifact store — the same resolver the makespand service runs on, so
// the CLI and the service share one assembly path: the frozen graph, the
// Dodin reduction plan (recorded once, replayed per evaluation) and the
// compiled Monte Carlo estimator are all store rules here and there.
// Within one invocation everything is a cold build; the value is that
// there is exactly one construction path to keep byte-identical, which
// the e2e suite pins CLI-vs-service.
func buildEstimate(ctx context.Context, g *dag.Graph, model failure.Model, o options) (report.Estimate, error) {
	st := artifact.NewStore(0)
	ga, _, err := st.GraphContext(ctx, g)
	if err != nil {
		return report.Estimate{}, err
	}
	g, d := ga.G, ga.D0
	qs, err := report.ParseQuantiles(o.quantiles)
	if err != nil {
		return report.Estimate{}, err
	}
	if o.trials == 0 && o.tolerance == 0 {
		if len(qs) > 0 {
			return report.Estimate{}, fmt.Errorf("-quantiles needs Monte Carlo trials (-trials or -tolerance)")
		}
		if o.maxTrials != 0 || o.targetQuantile != 0 || o.confidence != 0 {
			return report.Estimate{}, fmt.Errorf("-max-trials, -target-quantile and -confidence need -tolerance > 0")
		}
	}
	est := report.Estimate{
		Graph: report.GraphInfo{Tasks: g.NumTasks(), Edges: g.NumEdges(), MeanWeight: g.MeanWeight()},
		Model: report.ModelInfo{
			Lambda:        model.Lambda,
			PFailMeanTask: model.PFail(g.MeanWeight()),
			MTBF:          model.MTBF(),
		},
		FailureFree: d,
	}
	if o.bounds {
		sw := ga.Sweeper()
		lo, hi, err := sw.Bracket(model, o.atoms)
		ga.PutSweeper(sw)
		if err != nil {
			return report.Estimate{}, fmt.Errorf("bounds: %w", err)
		}
		est.Bracket = &report.BracketInfo{Lower: lo, Upper: hi}
	}
	methods, err := experiments.ParseMethods(o.methods)
	if err != nil {
		return report.Estimate{}, err
	}
	for _, m := range methods {
		var v float64
		var dt time.Duration
		switch m {
		case experiments.MethodDodin:
			plan, err := st.PlanContext(ctx, ga, o.atoms, model)
			if err != nil {
				return report.Estimate{}, fmt.Errorf("%s: %w", m, err)
			}
			t0 := time.Now()
			res, err := plan.Run(model)
			if err != nil {
				return report.Estimate{}, fmt.Errorf("%s: %w", m, err)
			}
			v, dt = res.Estimate, time.Since(t0)
		case experiments.MethodFirstOrder:
			pe := ga.PathEvaluator()
			t0 := time.Now()
			res := core.FirstOrderWith(pe, model)
			v, dt = res.Estimate, time.Since(t0)
			ga.PutPathEvaluator(pe)
		default:
			v, dt, err = experiments.Estimate(m, g, model, o.atoms)
			if err != nil {
				return report.Estimate{}, fmt.Errorf("%s: %w", m, err)
			}
		}
		est.Methods = append(est.Methods, report.MethodEstimate{Method: string(m), Estimate: v, Time: dt})
	}
	if o.trials == 0 && o.tolerance == 0 {
		return est, nil
	}
	// Negative trials and malformed adaptive knobs flow through so the
	// engine's config validation reports them instead of being silently
	// treated as "skip MC".
	cfg := montecarlo.Config{
		Trials:         o.trials,
		Seed:           o.seed,
		Tolerance:      o.tolerance,
		TargetQuantile: o.targetQuantile,
		Confidence:     o.confidence,
		MaxTrials:      o.maxTrials,
	}
	t0 := time.Now()
	warm, err := st.EstimatorContext(ctx, ga, model, montecarlo.FullReexecution)
	if err != nil {
		return report.Estimate{}, err
	}
	mcEst, err := warm.WithConfig(cfg)
	if err != nil {
		return report.Estimate{}, err
	}
	var mc *report.MonteCarloInfo
	if o.tolerance != 0 {
		res, snap, err := mcEst.ResumeAdaptiveContext(ctx, nil, nil)
		if err != nil {
			return report.Estimate{}, err
		}
		mc = report.MonteCarloInfoFrom(res, o.seed)
		mc.Adaptive = report.AdaptiveInfoFrom(res, o.tolerance, o.targetQuantile, o.confidence)
		if len(qs) > 0 {
			sketch := snap.Sketch()
			for _, q := range qs {
				mc.Quantiles = append(mc.Quantiles, report.QuantileValue{Q: q, Value: sketch.Quantile(q)})
			}
		}
	} else if len(qs) > 0 {
		res, sketch, err := mcEst.RunQuantilesContext(ctx)
		if err != nil {
			return report.Estimate{}, err
		}
		mc = report.MonteCarloInfoFrom(res, o.seed)
		for _, q := range qs {
			mc.Quantiles = append(mc.Quantiles, report.QuantileValue{Q: q, Value: sketch.Quantile(q)})
		}
	} else {
		res, err := mcEst.RunContext(ctx)
		if err != nil {
			return report.Estimate{}, err
		}
		mc = report.MonteCarloInfoFrom(res, o.seed)
	}
	mc.Time = time.Since(t0)
	est.MonteCarlo = mc
	return est, nil
}

func loadGraph(kind string, k int, path string) (*dag.Graph, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dag.ReadJSON(f)
	}
	return linalg.Generate(linalg.Factorization(kind), k, linalg.KernelTimes{})
}

func buildModel(g *dag.Graph, pfail, lambda float64) (failure.Model, error) {
	if lambda > 0 {
		return failure.New(lambda)
	}
	return failure.FromPfail(pfail, g.MeanWeight())
}
