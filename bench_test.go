package makespan

// Benchmark harness: one benchmark per figure and table of the paper's
// evaluation, plus micro-benchmarks for each estimator and the ablations
// DESIGN.md calls out.
//
// The per-figure benchmarks regenerate the figure's data points (all five
// graph sizes, all three methods) against a reduced Monte Carlo ground
// truth (benchTrials trials instead of the paper's 300,000) so the full
// bench suite stays tractable; the cmd/experiments binary reproduces the
// figures at paper fidelity. Each figure benchmark reports the largest-k
// relative error of every method as custom metrics, so `go test -bench`
// output directly exhibits the paper's method ordering.

import (
	"fmt"
	"testing"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/distribution"
	"repro/internal/experiments"
	"repro/internal/failure"
	"repro/internal/linalg"
	"repro/internal/montecarlo"
	"repro/internal/normal"
	"repro/internal/sched"
	"repro/internal/spgraph"
)

const benchTrials = 20000

func benchFigure(b *testing.B, id int) {
	spec, err := experiments.Figure(id)
	if err != nil {
		b.Fatal(err)
	}
	var last experiments.FigureResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure(spec, experiments.Options{Trials: benchTrials, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	p := last.Points[len(last.Points)-1]
	for _, m := range experiments.PaperMethods() {
		b.ReportMetric(p.RelErr[m], "relerr_"+metricName(m)+"_k12")
	}
}

func metricName(m experiments.Method) string {
	switch m {
	case experiments.MethodFirstOrder:
		return "firstorder"
	case experiments.MethodDodin:
		return "dodin"
	case experiments.MethodNormal:
		return "normal"
	case experiments.MethodSculli:
		return "sculli"
	case experiments.MethodSecondOrder:
		return "secondorder"
	}
	return string(m)
}

// Figures 4-6: Cholesky at pfail = 0.01, 0.001, 0.0001.
func BenchmarkFig04CholeskyP01(b *testing.B)   { benchFigure(b, 4) }
func BenchmarkFig05CholeskyP001(b *testing.B)  { benchFigure(b, 5) }
func BenchmarkFig06CholeskyP0001(b *testing.B) { benchFigure(b, 6) }

// Figures 7-9: LU.
func BenchmarkFig07LUP01(b *testing.B)   { benchFigure(b, 7) }
func BenchmarkFig08LUP001(b *testing.B)  { benchFigure(b, 8) }
func BenchmarkFig09LUP0001(b *testing.B) { benchFigure(b, 9) }

// Figures 10-12: QR.
func BenchmarkFig10QRP01(b *testing.B)   { benchFigure(b, 10) }
func BenchmarkFig11QRP001(b *testing.B)  { benchFigure(b, 11) }
func BenchmarkFig12QRP0001(b *testing.B) { benchFigure(b, 12) }

// Table I: LU k=20 (2,870 tasks), pfail = 0.0001 — per-method accuracy and
// runtime. The three per-method benchmarks below measure the execution
// time row; this one regenerates the normalized-difference row.
func BenchmarkTable1LU20(b *testing.B) {
	spec := experiments.Table1()
	var last experiments.Table1Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1(spec, experiments.Options{Trials: benchTrials, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	for _, m := range experiments.PaperMethods() {
		b.ReportMetric(last.Point.RelErr[m], "relerr_"+metricName(m))
	}
}

// --- Table I execution-time row: each estimator on LU k=20. ---

func table1Graph(b *testing.B) (*dag.Graph, failure.Model) {
	b.Helper()
	g, err := linalg.LU(20, linalg.KernelTimes{})
	if err != nil {
		b.Fatal(err)
	}
	m, err := failure.FromPfail(0.0001, g.MeanWeight())
	if err != nil {
		b.Fatal(err)
	}
	return g, m
}

func BenchmarkTable1FirstOrderLU20(b *testing.B) {
	g, m := table1Graph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.FirstOrder(g, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1NormalLU20(b *testing.B) {
	g, m := table1Graph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := normal.CorLCA(g, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1DodinLU20(b *testing.B) {
	g, m := table1Graph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := spgraph.Dodin(g, m, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// The PR-2 tentpole target: Dodin on LU k=16 (1,496 tasks), the point
// where the sort-based distribution kernel took 8.6 s. Tracked in
// BENCH_dodin.json by scripts/bench.sh.
func BenchmarkTable1DodinLU16(b *testing.B) {
	g, err := linalg.LU(16, linalg.KernelTimes{})
	if err != nil {
		b.Fatal(err)
	}
	m, err := failure.FromPfail(0.0001, g.MeanWeight())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := spgraph.Dodin(g, m, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// The distribution kernel in isolation, at Dodin's default cap: chained
// fused capped convolutions and maxima over a shared scratch, the inner
// loop of every series/parallel reduction.
func BenchmarkDistributionFusedOps(b *testing.B) {
	d, err := distribution.TwoState(1.5, 0.99)
	if err != nil {
		b.Fatal(err)
	}
	var s distribution.Scratch
	acc := d
	for i := 0; i < 40; i++ {
		acc = acc.AddCapped(d, 64, &s)
	}
	other := acc.Shift(0.25)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := acc.AddCapped(other, 64, &s)
		_ = sum.MaxIndCapped(acc, 64, &s)
	}
}

func BenchmarkTable1MonteCarloLU20(b *testing.B) {
	g, m := table1Graph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := montecarlo.Estimate(g, m, montecarlo.Config{Trials: benchTrials, Seed: 42}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §7): design choices quantified. ---

// Ablation 1: the O(V+E) head/tail identity vs the naive O(V(V+E))
// first-order evaluator.
func BenchmarkAblationFirstOrderFastLU12(b *testing.B) {
	g, _ := linalg.LU(12, linalg.KernelTimes{})
	m, _ := failure.FromPfail(0.001, g.MeanWeight())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.FirstOrder(g, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFirstOrderNaiveLU12(b *testing.B) {
	g, _ := linalg.LU(12, linalg.KernelTimes{})
	m, _ := failure.FromPfail(0.001, g.MeanWeight())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.FirstOrderNaive(g, m); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation 2: Dodin's distribution support cap (accuracy/runtime knob).
func benchDodinAtoms(b *testing.B, atoms int) {
	g, _ := linalg.Cholesky(8, linalg.KernelTimes{})
	m, _ := failure.FromPfail(0.001, g.MeanWeight())
	var est float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := spgraph.Dodin(g, m, atoms)
		if err != nil {
			b.Fatal(err)
		}
		est = res.Estimate
	}
	b.StopTimer()
	b.ReportMetric(est, "estimate")
}

func BenchmarkAblationDodinAtoms16(b *testing.B)  { benchDodinAtoms(b, 16) }
func BenchmarkAblationDodinAtoms64(b *testing.B)  { benchDodinAtoms(b, 64) }
func BenchmarkAblationDodinAtoms256(b *testing.B) { benchDodinAtoms(b, 256) }

// Ablation 3: Monte Carlo parallel scaling.
func benchMCWorkers(b *testing.B, workers int) {
	g, _ := linalg.LU(12, linalg.KernelTimes{})
	m, _ := failure.FromPfail(0.001, g.MeanWeight())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := montecarlo.Estimate(g, m, montecarlo.Config{Trials: benchTrials, Seed: 1, Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMonteCarloWorkers1(b *testing.B) { benchMCWorkers(b, 1) }
func BenchmarkAblationMonteCarloWorkers4(b *testing.B) { benchMCWorkers(b, 4) }
func BenchmarkAblationMonteCarloWorkers0(b *testing.B) { benchMCWorkers(b, 0) } // GOMAXPROCS

// Ablation 4: Sculli vs CorLCA (correlation tracking cost).
func BenchmarkAblationSculliLU20(b *testing.B) {
	g, m := table1Graph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := normal.Sculli(g, m); err != nil {
			b.Fatal(err)
		}
	}
}

// Second order on a mid-size graph (O(V²) pairs term).
func BenchmarkSecondOrderLU12(b *testing.B) {
	g, _ := linalg.LU(12, linalg.KernelTimes{})
	m, _ := failure.FromPfail(0.001, g.MeanWeight())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SecondOrder(g, m); err != nil {
			b.Fatal(err)
		}
	}
}

// Core substrate benchmarks: the longest-path hot loop at Monte Carlo
// scale, and the generators themselves.
func BenchmarkPathEvaluatorLU20(b *testing.B) {
	g, _ := linalg.LU(20, linalg.KernelTimes{})
	pe, err := dag.NewPathEvaluator(g)
	if err != nil {
		b.Fatal(err)
	}
	w := g.Weights()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pe.MakespanWith(w)
	}
}

// The frozen CSR kernel alone: one streaming longest-path pass over
// topo-ordered weights, the per-trial floor of the Monte Carlo engine.
// Must stay at 0 allocs/op.
func BenchmarkFrozenEvalLU20(b *testing.B) {
	g, _ := linalg.LU(20, linalg.KernelTimes{})
	f, err := dag.Freeze(g)
	if err != nil {
		b.Fatal(err)
	}
	w := f.WeightsTopo()
	comp := make([]float64, f.NumTasks())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.MakespanTopo(w, comp)
	}
}

// Before/after Monte Carlo kernels on the Table I workload: the fused
// single-pass sampler (default) against the legacy two-pass v1 stream.
// trials/sec is the headline throughput metric tracked by
// scripts/bench.sh.
func benchMCSampler(b *testing.B, legacy bool) {
	g, m := table1Graph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := montecarlo.Config{Trials: benchTrials, Seed: 42, LegacySampler: legacy}
		if _, err := montecarlo.Estimate(g, m, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(benchTrials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
}

func BenchmarkMCFusedLU20(b *testing.B)  { benchMCSampler(b, false) }
func BenchmarkMCLegacyLU20(b *testing.B) { benchMCSampler(b, true) }

// The PR-3 tentpole target: Monte Carlo at high pfail (LU k=20,
// pfail = 0.1), where ~every trial is multi-failure and takes the full
// longest-path evaluation — the regime the split-phase engine (bit-exact
// table sampler + lane-blocked SoA kernel) accelerates. Tracked in
// BENCH_sweep.json by scripts/bench.sh.
func BenchmarkMCHighPfailLU20(b *testing.B) {
	g, _ := linalg.LU(20, linalg.KernelTimes{})
	m, _ := failure.FromPfail(0.1, g.MeanWeight())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := montecarlo.Estimate(g, m, montecarlo.Config{Trials: benchTrials, Seed: 42}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(benchTrials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
}

// Streaming quantile sketch vs materialize-and-sort on the same run:
// RunQuantiles answers tail-quantile questions in O(cells) memory.
func BenchmarkMCRunQuantilesLU12(b *testing.B) {
	g, _ := linalg.LU(12, linalg.KernelTimes{})
	m, _ := failure.FromPfail(0.01, g.MeanWeight())
	e, err := montecarlo.NewEstimator(g, m, montecarlo.Config{Trials: benchTrials, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.RunQuantiles(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMCRunSamplesLU12(b *testing.B) {
	g, _ := linalg.LU(12, linalg.KernelTimes{})
	m, _ := failure.FromPfail(0.01, g.MeanWeight())
	e, err := montecarlo.NewEstimator(g, m, montecarlo.Config{Trials: benchTrials, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.RunSamples(); err != nil {
			b.Fatal(err)
		}
	}
}

// End-to-end experiment throughput: the extension sweep (5 pfail decades ×
// 3 methods × Monte Carlo on LU k=10) through the cell scheduler with
// graph/frozen/plan caching. Tracked in BENCH_sweep.json.
func BenchmarkSweepLU10(b *testing.B) {
	spec := experiments.DefaultSweep()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSweep(spec, experiments.Options{Trials: benchTrials, Seed: 42}); err != nil {
			b.Fatal(err)
		}
	}
}

// Dodin plan replay vs the full reduction on the same graph: the sweep
// scheduler records once and replays per pfail point.
func BenchmarkDodinPlanReplayLU16(b *testing.B) {
	g, err := linalg.LU(16, linalg.KernelTimes{})
	if err != nil {
		b.Fatal(err)
	}
	m, err := failure.FromPfail(0.0001, g.MeanWeight())
	if err != nil {
		b.Fatal(err)
	}
	_, _, plan, err := spgraph.DodinPlan(g, m, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Run(m); err != nil {
			b.Fatal(err)
		}
	}
}

// Dense-graph construction: AddEdge's duplicate detection must not turn
// construction into O(E·deg). One hub layer feeding a wide layer gives
// out-degrees far past dupMapThreshold.
func BenchmarkGraphConstructionDense(b *testing.B) {
	const layers, width = 6, 64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := dag.New(layers * width)
		for l := 0; l < layers; l++ {
			for j := 0; j < width; j++ {
				g.MustAddTask("t", 1)
			}
		}
		for l := 0; l < layers-1; l++ {
			for j := 0; j < width; j++ {
				for k := 0; k < width; k++ {
					g.MustAddEdge(l*width+j, (l+1)*width+k)
				}
			}
		}
		if g.NumEdges() != (layers-1)*width*width {
			b.Fatal("bad edge count")
		}
	}
}

// Ablation 5: Dodin on structured non-series-parallel families — how the
// duplication count (distance from SP) drives runtime.
func benchDodinFamily(b *testing.B, g *dag.Graph) {
	m, _ := failure.FromPfail(0.001, g.MeanWeight())
	var dups int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats, err := spgraph.Dodin(g, m, 0)
		if err != nil {
			b.Fatal(err)
		}
		dups = stats.Duplications
	}
	b.StopTimer()
	b.ReportMetric(float64(dups), "duplications")
}

func BenchmarkAblationDodinWavefront8(b *testing.B) { benchDodinFamily(b, dag.Wavefront(8, 1)) }

func BenchmarkAblationDodinFFT16(b *testing.B) {
	g, err := dag.FFT(16, 1)
	if err != nil {
		b.Fatal(err)
	}
	benchDodinFamily(b, g)
}

func BenchmarkAblationDodinPipeline6x4(b *testing.B) { benchDodinFamily(b, dag.Pipeline(6, 4, 1)) }

// Bounds: the analytic bracket on the Table I workload.
func BenchmarkBoundsBracketLU20(b *testing.B) {
	g, m := table1Graph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := bounds.Bracket(g, m, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// HEFT on a heterogeneous platform, plain and failure-aware.
func BenchmarkHEFTLU12(b *testing.B) {
	g, _ := linalg.LU(12, linalg.KernelTimes{})
	plat := sched.Platform{Speeds: []float64{1, 1, 2, 2}, Comm: 0.01}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.HEFT(g, plat, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHEFTFailureAwareLU12(b *testing.B) {
	g, _ := linalg.LU(12, linalg.KernelTimes{})
	m, _ := failure.FromPfail(0.01, g.MeanWeight())
	plat := sched.Platform{Speeds: []float64{1, 1, 2, 2}, Comm: 0.01}
	w := sched.FailureAwareWeights(g, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.HEFT(g, plat, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerators(b *testing.B) {
	for _, f := range linalg.All() {
		b.Run(fmt.Sprintf("%s_k12", f), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := linalg.Generate(f, 12, linalg.KernelTimes{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Adaptive stopping (PR 6 tentpole). Tracked in BENCH_adaptive.json.
//
// The pair FixedBudget/AdaptiveStop measures the trials-saved claim: both
// end with the same achieved CI on the q=0.9 makespan quantile (the
// adaptive run's tolerance IS the fixed run's achieved CI), but the
// adaptive run stops as soon as the binomial order-statistic interval
// tightens to it instead of spending the full default budget.
// The pair ColdRestart/WarmExtend measures resumable snapshots: both end
// at the tight tolerance, but the warm run extends a retained loose-
// tolerance snapshot instead of re-running its prefix.

// adaptiveBenchTolerance runs the fixed default budget once and returns
// the achieved 95% CI half-width of the q=0.9 quantile — the equal-CI
// tolerance for BenchmarkAdaptiveStopLU10.
func adaptiveBenchTolerance(b *testing.B, e *montecarlo.Estimator) float64 {
	b.Helper()
	_, sketch, err := e.RunQuantiles()
	if err != nil {
		b.Fatal(err)
	}
	lo, hi, err := sketch.QuantileCI(0.9, 0.95)
	if err != nil {
		b.Fatal(err)
	}
	return (hi - lo) / 2
}

func adaptiveBenchEstimator(b *testing.B, cfg montecarlo.Config) *montecarlo.Estimator {
	b.Helper()
	g, err := linalg.LU(10, linalg.KernelTimes{})
	if err != nil {
		b.Fatal(err)
	}
	m, err := failure.FromPfail(0.05, g.MeanWeight())
	if err != nil {
		b.Fatal(err)
	}
	e, err := montecarlo.NewEstimator(g, m, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

func BenchmarkAdaptiveFixedBudgetLU10(b *testing.B) {
	e := adaptiveBenchEstimator(b, montecarlo.Config{Seed: 42}) // default 300,000 trials
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.RunQuantiles(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(montecarlo.DefaultTrials), "trials")
}

func BenchmarkAdaptiveStopLU10(b *testing.B) {
	fixed := adaptiveBenchEstimator(b, montecarlo.Config{Seed: 42})
	tol := adaptiveBenchTolerance(b, fixed)
	e, err := fixed.WithConfig(montecarlo.Config{Seed: 42, Tolerance: tol, TargetQuantile: 0.9})
	if err != nil {
		b.Fatal(err)
	}
	var last montecarlo.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := e.ResumeAdaptive(nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	if !last.Converged || last.TrialsRun*2 > montecarlo.DefaultTrials {
		b.Fatalf("adaptive run did not save >= 2x trials: %+v", last)
	}
	b.ReportMetric(float64(last.TrialsRun), "trials")
	b.ReportMetric(last.AchievedCI, "achieved_ci")
}

// adaptiveBenchTolerances derives a (loose, tight) mean-CI tolerance pair
// from a one-chunk probe: CI_n decays ~ CI_1/sqrt(n), so /8 and /9 land
// near 64 and 81 chunks — a warm extension of ~17 chunks vs a cold 81.
func adaptiveBenchTolerances(b *testing.B, fixed *montecarlo.Estimator) (loose, tight float64) {
	b.Helper()
	probe, err := fixed.WithConfig(montecarlo.Config{Trials: montecarlo.ChunkTrials, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	res, err := probe.Run()
	if err != nil {
		b.Fatal(err)
	}
	return res.CI95 / 8, res.CI95 / 9
}

func BenchmarkAdaptiveColdRestartLU10(b *testing.B) {
	fixed := adaptiveBenchEstimator(b, montecarlo.Config{Seed: 42})
	_, tightTol := adaptiveBenchTolerances(b, fixed)
	tight, err := fixed.WithConfig(montecarlo.Config{Seed: 42, Tolerance: tightTol})
	if err != nil {
		b.Fatal(err)
	}
	var last montecarlo.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := tight.ResumeAdaptive(nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	b.ReportMetric(float64(last.TrialsRun), "trials")
}

func BenchmarkAdaptiveWarmExtendLU10(b *testing.B) {
	fixed := adaptiveBenchEstimator(b, montecarlo.Config{Seed: 42})
	looseTol, tightTol := adaptiveBenchTolerances(b, fixed)
	loose, err := fixed.WithConfig(montecarlo.Config{Seed: 42, Tolerance: looseTol})
	if err != nil {
		b.Fatal(err)
	}
	_, snap, err := loose.ResumeAdaptive(nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	tight, err := fixed.WithConfig(montecarlo.Config{Seed: 42, Tolerance: tightTol})
	if err != nil {
		b.Fatal(err)
	}
	var last montecarlo.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := tight.ResumeAdaptive(snap, nil)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	b.ReportMetric(float64(last.TrialsRun), "trials")
	b.ReportMetric(float64(last.TrialsRun-snap.Trials()), "extend_trials")
}
