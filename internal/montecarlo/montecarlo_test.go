package montecarlo

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/failure"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("n = %d", w.N())
	}
	if !almostEq(w.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v", w.Mean())
	}
	// Population variance of this classic dataset is 4; sample variance
	// is 4*8/7.
	if !almostEq(w.Variance(), 32.0/7, 1e-12) {
		t.Fatalf("var = %v", w.Variance())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("min/max = %v/%v", w.Min(), w.Max())
	}
	if w.CI95() <= 0 || w.StdErr() <= 0 {
		t.Fatalf("CI/StdErr not positive")
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdErr() != 0 {
		t.Fatal("empty accumulator should be zero")
	}
	w.Add(3)
	if w.Variance() != 0 {
		t.Fatalf("single-sample variance = %v", w.Variance())
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	xs := []float64{1, 2.5, 3, 3, 7, 8, 9.5, 11, 0.5, 4}
	var all Welford
	for _, x := range xs {
		all.Add(x)
	}
	var a, b Welford
	for i, x := range xs {
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != all.N() || !almostEq(a.Mean(), all.Mean(), 1e-12) ||
		!almostEq(a.Variance(), all.Variance(), 1e-12) ||
		a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatalf("merge mismatch: %+v vs %+v", a, all)
	}
	// Merging into empty and merging empty.
	var e Welford
	e.Merge(all)
	if e.N() != all.N() || e.Mean() != all.Mean() {
		t.Fatal("merge into empty broken")
	}
	before := e.Mean()
	e.Merge(Welford{})
	if e.Mean() != before {
		t.Fatal("merge of empty changed state")
	}
}

func TestModeString(t *testing.T) {
	if FullReexecution.String() != "full-reexecution" || SingleRetry.String() != "single-retry" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode String empty")
	}
}

func TestEstimatorRejectsCycle(t *testing.T) {
	g := dag.New(2)
	a := g.MustAddTask("a", 1)
	b := g.MustAddTask("b", 1)
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, a)
	if _, err := NewEstimator(g, failure.Model{Lambda: 0.1}, Config{Trials: 10}); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestZeroLambdaIsDeterministic(t *testing.T) {
	g := dag.Diamond(1, 5, 3, 2)
	res, err := Estimate(g, failure.Model{}, Config{Trials: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean != 8 || res.StdDev != 0 || res.Min != 8 || res.Max != 8 {
		t.Fatalf("λ=0 result = %+v want constant 8", res)
	}
	if res.Trials != 100 {
		t.Fatalf("trials = %d", res.Trials)
	}
}

func TestReproducibleAcrossWorkerCounts(t *testing.T) {
	g := dag.Diamond(1, 5, 3, 2)
	m := failure.Model{Lambda: 0.2}
	r1, err := Estimate(g, m, Config{Trials: 5000, Seed: 42, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r1b, _ := Estimate(g, m, Config{Trials: 5000, Seed: 42, Workers: 1})
	if r1.Mean != r1b.Mean {
		t.Fatalf("same config differs: %v vs %v", r1.Mean, r1b.Mean)
	}
	// Different worker counts shard streams differently, so exact equality
	// is not promised; estimates must agree within joint CI.
	r4, _ := Estimate(g, m, Config{Trials: 5000, Seed: 42, Workers: 4})
	if !almostEq(r1.Mean, r4.Mean, r1.CI95+r4.CI95) {
		t.Fatalf("worker counts disagree beyond CI: %v vs %v", r1.Mean, r4.Mean)
	}
}

func TestSingleTaskAgainstClosedForm(t *testing.T) {
	// One task of weight a: E[makespan] = a·E[attempts] = a·e^{λa} under
	// full re-execution; a(1+pfail) under single retry.
	g := dag.New(1)
	g.MustAddTask("solo", 2)
	m := failure.Model{Lambda: 0.3}
	full, err := Estimate(g, m, Config{Trials: 400000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * math.Exp(0.3*2)
	if !almostEq(full.Mean, want, 4*full.CI95) {
		t.Fatalf("full mean = %v want %v (CI %v)", full.Mean, want, full.CI95)
	}
	single, err := Estimate(g, m, Config{Trials: 400000, Seed: 7, Mode: SingleRetry})
	if err != nil {
		t.Fatal(err)
	}
	want = 2 * (1 + m.PFail(2))
	if !almostEq(single.Mean, want, 4*single.CI95) {
		t.Fatalf("single mean = %v want %v", single.Mean, want)
	}
	if full.Mean <= single.Mean-4*(full.CI95+single.CI95) {
		t.Fatalf("full re-execution should not be cheaper than single retry")
	}
}

func TestEstimateRatesMatchesUniformAndExact(t *testing.T) {
	g := dag.Diamond(0.5, 2, 1.5, 1)
	lam := 0.15
	rates := []float64{lam, lam, lam, lam}
	uni, err := Estimate(g, failure.Model{Lambda: lam}, Config{Trials: 40000, Seed: 4, Mode: SingleRetry})
	if err != nil {
		t.Fatal(err)
	}
	het, err := EstimateRates(g, rates, Config{Trials: 40000, Seed: 4, Mode: SingleRetry})
	if err != nil {
		t.Fatal(err)
	}
	if uni.Mean != het.Mean {
		t.Fatalf("same seed uniform %v != hetero %v", uni.Mean, het.Mean)
	}
	// Truly heterogeneous rates against exact enumeration.
	rates = []float64{0, 0.3, 0.05, 0.2}
	exact, err := ExactTwoStateRates(g, rates)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := EstimateRates(g, rates, Config{Trials: 300000, Seed: 5, Mode: SingleRetry})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(mc.Mean, exact, 5*mc.CI95) {
		t.Fatalf("hetero MC %v vs exact %v (CI %v)", mc.Mean, exact, mc.CI95)
	}
}

func TestEstimateRatesValidation(t *testing.T) {
	g := dag.Chain(3)
	if _, err := EstimateRates(g, []float64{0.1}, Config{Trials: 10}); err == nil {
		t.Fatal("short rates accepted")
	}
	if _, err := EstimateRates(g, []float64{0.1, -1, 0.1}, Config{Trials: 10}); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := ExactTwoStateRates(g, []float64{0.1}); err == nil {
		t.Fatal("short rates accepted by exact")
	}
}

func TestExactTwoStateChain(t *testing.T) {
	// Chain of independent 2-state tasks: expectation is the sum of
	// per-task expectations a(1+pfail).
	g := dag.Chain(5, 1, 2, 3)
	m := failure.Model{Lambda: 0.1}
	got, err := ExactTwoState(g, m)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for i := 0; i < g.NumTasks(); i++ {
		a := g.Weight(i)
		want += a * (1 + m.PFail(a))
	}
	if !almostEq(got, want, 1e-12) {
		t.Fatalf("exact chain = %v want %v", got, want)
	}
}

func TestExactTwoStateForkJoinClosedForm(t *testing.T) {
	// Fork-join of w iid 2-state tasks of weight a (source/sink weight 0):
	// E[max] = 2a - a·(1-pfail)^w.
	const w = 6
	g := dag.ForkJoin(w, 1.0)
	m := failure.Model{Lambda: 0.25}
	pf := m.PFail(1)
	want := 2 - math.Pow(1-pf, w)
	got, err := ExactTwoState(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, want, 1e-12) {
		t.Fatalf("exact fork-join = %v want %v", got, want)
	}
}

func TestExactGeometricSingleTask(t *testing.T) {
	// Single task weight a: truth is a·e^{λa}; truncation at many attempts
	// must converge to it.
	g := dag.New(1)
	g.MustAddTask("solo", 2)
	m := failure.Model{Lambda: 0.1}
	want := 2 * math.Exp(0.2)
	got, err := ExactGeometric(g, m, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, want, 1e-6) {
		t.Fatalf("geometric exact = %v want %v", got, want)
	}
	// More attempts gets closer (truncation underestimates).
	lo, _ := ExactGeometric(g, m, 3)
	if lo > got {
		t.Fatalf("truncation should underestimate: %v vs %v", lo, got)
	}
}

func TestExactGeometricBudget(t *testing.T) {
	g := dag.Chain(30)
	if _, err := ExactGeometric(g, failure.Model{Lambda: 0.1}, 5); err == nil {
		t.Fatal("oversized enumeration accepted")
	}
	// maxAttempts below 2 is clamped, not an error.
	small := dag.Chain(2)
	if _, err := ExactGeometric(small, failure.Model{Lambda: 0.1}, 1); err != nil {
		t.Fatal(err)
	}
}

func TestExactGeometricMatchesMonteCarlo(t *testing.T) {
	g := dag.Diamond(0.5, 2, 1.5, 1)
	m := failure.Model{Lambda: 0.2}
	exact, err := ExactGeometric(g, m, 8)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := Estimate(g, m, Config{Trials: 400000, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(mc.Mean, exact, 5*mc.CI95) {
		t.Fatalf("MC %v vs exact %v (CI %v)", mc.Mean, exact, mc.CI95)
	}
}

func TestExactTwoStateRejectsBigGraph(t *testing.T) {
	g := dag.Chain(MaxExactTasks + 1)
	if _, err := ExactTwoState(g, failure.Model{Lambda: 0.1}); err == nil {
		t.Fatal("oversized graph accepted")
	}
}

func TestMonteCarloSingleRetryMatchesExact(t *testing.T) {
	g := dag.Diamond(0.5, 2, 1.5, 1)
	m := failure.Model{Lambda: 0.3}
	exact, err := ExactTwoState(g, m)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := Estimate(g, m, Config{Trials: 500000, Seed: 3, Mode: SingleRetry})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(mc.Mean, exact, 5*mc.CI95) {
		t.Fatalf("MC %v vs exact %v (CI %v)", mc.Mean, exact, mc.CI95)
	}
}

// Property: on random small DAGs, single-retry Monte Carlo stays within
// 6 standard errors of the exact enumeration.
func TestQuickMonteCarloWithinCI(t *testing.T) {
	f := func(seed int64) bool {
		rng := newRand(seed)
		g, err := dag.LayeredRandom(dag.RandomConfig{Tasks: 10, EdgeProb: 0.5, MaxLayerWidth: 3}, rng)
		if err != nil {
			return false
		}
		m := failure.Model{Lambda: 0.2}
		exact, err := ExactTwoState(g, m)
		if err != nil {
			return false
		}
		mc, err := Estimate(g, m, Config{Trials: 60000, Seed: uint64(seed), Mode: SingleRetry})
		if err != nil {
			return false
		}
		tol := 6 * mc.StdErr
		if tol < 1e-9 {
			tol = 1e-9
		}
		return almostEq(mc.Mean, exact, tol)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestExactFirstOrderTruthBelowExact(t *testing.T) {
	// Dropping multi-failure subsets can only lose probability mass times
	// path lengths, so the |S|<=1 truncation underestimates.
	g := dag.Diamond(1, 2, 2, 1)
	m := failure.Model{Lambda: 0.4}
	exact, _ := ExactTwoState(g, m)
	trunc, err := ExactFirstOrderTruth(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if trunc > exact {
		t.Fatalf("truncated %v > exact %v", trunc, exact)
	}
	// At tiny λ they agree closely.
	m = failure.Model{Lambda: 1e-5}
	exact, _ = ExactTwoState(g, m)
	trunc, _ = ExactFirstOrderTruth(g, m)
	if !almostEq(exact, trunc, 1e-8) {
		t.Fatalf("low-λ mismatch: %v vs %v", exact, trunc)
	}
}

func TestMakespanBoundsRespected(t *testing.T) {
	g := dag.Diamond(1, 5, 3, 2)
	res, err := Estimate(g, failure.Model{Lambda: 0.5}, Config{Trials: 20000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	d, _ := dag.Makespan(g)
	if res.Min < d {
		t.Fatalf("sampled makespan %v below failure-free %v", res.Min, d)
	}
	if res.Mean < d {
		t.Fatalf("mean %v below failure-free %v", res.Mean, d)
	}
	if res.Max < res.Mean || res.Min > res.Mean {
		t.Fatalf("ordering broken: %+v", res)
	}
}
