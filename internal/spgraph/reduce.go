package spgraph

import (
	"fmt"
	"math"
)

// reducePass applies series and parallel reductions until none applies,
// returning the number of reductions performed.
//
// Parallel reduction: two live arcs with the same endpoints merge into one
// carrying the independent max of their distributions. Series reduction:
// an internal node with exactly one live incoming and one live outgoing
// arc disappears; the arcs merge into their convolution. Both are exact
// under the model's independence assumptions.
//
// The worklist replicates the original all-nodes LIFO stack — seed
// [0..n-1], pop descending, re-pushes on top — without its O(nodes) cost
// per pass. That stack's pop order is: nodes re-pushed after the pass
// already swept them pop first in LIFO order (they sat above the
// remaining seed), then the not-yet-swept nodes pop in descending index
// order (their seed positions). So the worklist splits in two: `lifo` for
// pushes at or above sweepPos (already swept this pass) and a max-heap
// `pending` for pushes below it, giving the identical reduction sequence
// — and therefore bit-identical distributions — at O(log n) per
// operation. The first pass seeds every node; after a duplication only
// the two nodes whose degrees changed in a reducibility-relevant way are
// seeded (see duplicateOne), which is exactly the set the full re-seed
// would have found reducible.
func (net *Network) reducePass() int {
	if !net.seeded {
		net.seeded = true
		// Seed every node. Descending order is a valid max-heap layout.
		nn := len(net.in)
		net.pending = net.pending[:0]
		for v := nn - 1; v >= 0; v-- {
			net.pending = append(net.pending, int32(v))
			net.inQueue[v] = true
		}
	}
	net.sweepPos = math.MaxInt // fresh pass: nothing swept yet
	reductions := 0
	for {
		var v int
		switch {
		case len(net.lifo) > 0:
			v = int(net.lifo[len(net.lifo)-1])
			net.lifo = net.lifo[:len(net.lifo)-1]
		case len(net.pending) > 0:
			v = int(net.pending[0])
			n := len(net.pending) - 1
			net.pending[0] = net.pending[n]
			net.pending = net.pending[:n]
			net.pendingSift()
			net.sweepPos = v
		default:
			return reductions
		}
		net.inQueue[v] = false

		// Parallel reductions among v's outgoing arcs.
		if net.outDeg[v] > 1 {
			out := net.liveOut(v)
			net.headEpoch++
			for _, id := range out {
				head := net.arcs[id].to
				if net.headMark[head] == net.headEpoch {
					first := net.headFirst[head]
					if net.rec != nil {
						net.rec.ops = append(net.rec.ops, planOp{kind: opMax, a: int32(first), b: int32(id)})
					}
					merged := net.convMax(net.arcs[first].dist, net.arcs[id].dist)
					net.arcs[first].dist = merged
					net.arcs[first].tree = parallelNode(net.arcs[first].tree, net.arcs[id].tree)
					net.killArc(id)
					reductions++
					net.push(v)
					net.push(head)
				} else {
					net.headMark[head] = net.headEpoch
					net.headFirst[head] = id
				}
			}
		}

		// Series reduction at v.
		if v == net.src || v == net.snk {
			continue
		}
		if net.inDeg[v] == 1 && net.outDeg[v] == 1 {
			in, out := net.liveIn(v), net.liveOut(v)
			if net.rec != nil {
				net.rec.ops = append(net.rec.ops, planOp{kind: opAdd, a: int32(in[0]), b: int32(out[0])})
			}
			a, b := net.arcs[in[0]], net.arcs[out[0]]
			merged := net.convAdd(a.dist, b.dist)
			net.killArc(in[0])
			net.killArc(out[0])
			net.addArc(a.from, b.to, merged, seriesNode(a.tree, b.tree))
			reductions++
			net.push(a.from)
			net.push(b.to)
		}
	}
}

// push queues node v for (re-)examination within the current pass.
func (net *Network) push(v int) {
	if net.inQueue[v] {
		return
	}
	net.inQueue[v] = true
	if v >= net.sweepPos {
		net.lifo = append(net.lifo, int32(v))
	} else {
		net.pendingPush(int32(v))
	}
}

// seedPending queues v as a not-yet-swept node for the NEXT pass. Called
// between passes (duplicateOne), where every node counts as unswept.
func (net *Network) seedPending(v int) {
	if net.inQueue[v] {
		return
	}
	net.inQueue[v] = true
	net.pendingPush(int32(v))
}

// pendingPush inserts into the max-heap.
func (net *Network) pendingPush(v int32) {
	h := append(net.pending, v)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p] >= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	net.pending = h
}

// pendingSift restores the max-heap after the root was replaced.
func (net *Network) pendingSift() {
	h := net.pending
	i := 0
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		if r := l + 1; r < len(h) && h[r] > h[l] {
			l = r
		}
		if h[i] >= h[l] {
			return
		}
		h[i], h[l] = h[l], h[i]
		i = l
	}
}

// IsSeriesParallel reports whether the network is (two-terminal)
// series-parallel: it is iff series/parallel reductions alone collapse it
// to a single source→sink arc (Valdes–Tarjan–Lawler). The network is
// consumed.
func (net *Network) IsSeriesParallel() bool {
	net.reducePass()
	_, err := net.result()
	return err == nil
}

// EvaluateSP reduces a series-parallel network to its exact makespan
// distribution (exact up to the configured support cap). It fails with an
// error mentioning Dodin if the network is not series-parallel.
func (net *Network) EvaluateSP() (Result, error) {
	net.reducePass()
	d, err := net.result()
	if err != nil {
		return Result{}, fmt.Errorf("%w (graph is not series-parallel; use Dodin)", err)
	}
	return Result{Estimate: d.Mean(), Distribution: d}, nil
}
