// Command experiments regenerates the paper's evaluation: Figures 4-12
// (relative error of First Order, Dodin and Normal vs Monte Carlo, per
// factorization, failure probability and graph size) and Table I (LU k=20
// accuracy and runtime).
//
// Usage:
//
//	experiments                  # all nine figures + Table I, paper fidelity
//	experiments -fig 5           # one figure
//	experiments -table 1         # Table I only
//	experiments -trials 30000    # reduced Monte Carlo for quick runs
//	experiments -csv out.csv     # additionally dump CSV rows
//	experiments -format json     # machine-readable output instead of text
//	experiments -workers 8       # total CPU budget (cells + MC workers)
//	experiments -all-methods     # add Sculli and Second Order columns
//	experiments -sweep -sweep-kind qr -sweep-k 8 -sweep-pfails 0.1,0.01
//	experiments -sched -sched-procs 2,4,8 -sweep-pfails 0.01,0.001
//
// Estimates and relative errors are independent of -workers: the cell
// scheduler runs data points and estimators concurrently but reduces
// deterministically (only the reported wall-clock timings reflect the
// concurrency; use -workers 1 for isolated method timings). With
// -format json the default full run emits one combined document
// (figures + table1); single -fig/-table/-sweep runs emit one document
// each. At paper fidelity (300,000 trials) the full run takes tens of
// minutes, dominated by Monte Carlo on the larger graphs.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/artifact"
	"repro/internal/experiments"
	"repro/internal/linalg"
	"repro/internal/report"
	"repro/internal/schedmc"
)

func main() {
	var (
		fig       = flag.Int("fig", 0, "run only this figure (4..12; 0 = all)")
		table     = flag.Int("table", 0, "run only this table (1; 0 = per default run)")
		trials    = flag.Int("trials", 0, "Monte Carlo trials (0 = paper's 300,000)")
		seed      = flag.Uint64("seed", 42, "Monte Carlo seed")
		csvPath   = flag.String("csv", "", "append figure CSV rows to this file")
		allM      = flag.Bool("all-methods", false, "include Sculli and Second Order")
		maxK      = flag.Int("max-k", 0, "cap graph sizes at this k (0 = paper sizes)")
		tableK    = flag.Int("table-k", 0, "override Table I tile count (0 = paper's 20)")
		sweep     = flag.Bool("sweep", false, "run the extension pfail sweep instead")
		sweepKind = flag.String("sweep-kind", "", "sweep factorization: cholesky, lu or qr (default lu)")
		sweepK    = flag.Int("sweep-k", 0, "sweep tile count (default 10)")
		sweepPF   = flag.String("sweep-pfails", "", "comma list of sweep failure probabilities (default five decades)")
		sched     = flag.Bool("sched", false, "run the processor-bounded schedule sweep instead (policy × procs × pfail)")
		schedPr   = flag.String("sched-procs", "", "comma list of processor counts for -sched (default 2,4,8,16)")
		schedPol  = flag.String("sched-policies", "", "schedule policies for -sched: cp, fo or both (default both)")
		workers   = flag.Int("workers", 0, "total CPU budget for cells and Monte Carlo (0 = GOMAXPROCS)")
		format    = flag.String("format", "text", "output format: text or json")
		tolerance = flag.Float64("tolerance", 0, "adaptive MC: stop each point when its CI half-width is within this (excludes -trials)")
		targetQ   = flag.Float64("target-quantile", 0, "adaptive MC: watch this quantile's CI instead of the mean's")
		confid    = flag.Float64("confidence", 0, "adaptive MC: stopping confidence level (default 0.95)")
		maxTrials = flag.Int("max-trials", 0, "adaptive MC: per-point trial cap (default 300000, rounded up to whole chunks)")
	)
	flag.Parse()
	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "experiments: unknown -format %q (text or json)\n", *format)
		os.Exit(2)
	}
	// Ctrl-C / SIGTERM cancels the run context: the cell scheduler stops
	// launching cells and in-flight Monte Carlo aborts at the next chunk
	// boundary, so an interrupted run never emits a partial document.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opts := experiments.Options{
		Context:        ctx,
		Trials:         *trials,
		Seed:           *seed,
		Workers:        *workers,
		Tolerance:      *tolerance,
		TargetQuantile: *targetQ,
		Confidence:     *confid,
		MaxTrials:      *maxTrials,
		// One process-local store for the whole invocation: the full run
		// revisits each (fact, k) graph at three pfails, and a sweep
		// following the figures reuses their frozen graphs — shared by
		// construction, exactly like the makespand registry's store.
		Artifacts: artifact.NewStore(0),
	}
	if *allM {
		opts.Methods = experiments.AllMethods()
	}
	if *format == "text" {
		opts.Progress = func(s string) { fmt.Fprintln(os.Stderr, "  ", s) }
	}
	if *sched {
		spec, err := schedSpec(*sweepKind, *sweepK, *sweepPF, *schedPr, *schedPol)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
		if err := runSched(spec, opts, *format); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if *sweep {
		spec, err := sweepSpec(*sweepKind, *sweepK, *sweepPF)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
		if err := runSweep(spec, opts, *format); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*fig, *table, opts, *csvPath, *maxK, *tableK, *format); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(fig, table int, opts experiments.Options, csvPath string, maxK, tableK int, format string) error {
	var csvW io.Writer
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		csvW = f
	}
	runFig := func(spec experiments.FigureSpec) (experiments.FigureResult, error) {
		if maxK > 0 {
			var ks []int
			for _, k := range spec.Ks {
				if k <= maxK {
					ks = append(ks, k)
				}
			}
			opts.Ks = ks
		}
		res, err := experiments.RunFigure(spec, opts)
		if err != nil {
			return res, err
		}
		if csvW != nil {
			if err := experiments.WriteFigureCSV(csvW, res, opts.Methods); err != nil {
				return res, err
			}
		}
		return res, nil
	}
	writeFig := func(res experiments.FigureResult) error {
		if format == "json" {
			return report.WriteFigureJSON(os.Stdout, res, opts.Methods)
		}
		if err := experiments.WriteFigure(os.Stdout, res, opts.Methods); err != nil {
			return err
		}
		fmt.Println()
		return nil
	}

	switch {
	case fig != 0:
		spec, err := experiments.Figure(fig)
		if err != nil {
			return err
		}
		res, err := runFig(spec)
		if err != nil {
			return err
		}
		return writeFig(res)
	case table != 0:
		if table != 1 {
			return fmt.Errorf("no table %d (have 1)", table)
		}
		return runTable1(opts, tableK, format)
	default:
		// The full run: text streams per figure; JSON collects everything
		// into one parseable document.
		var figures []experiments.FigureResult
		for _, spec := range experiments.Figures() {
			res, err := runFig(spec)
			if err != nil {
				return err
			}
			if format == "json" {
				figures = append(figures, res)
			} else if err := writeFig(res); err != nil {
				return err
			}
		}
		tres, err := runTable1Result(opts, tableK)
		if err != nil {
			return err
		}
		if format == "json" {
			return report.WriteReportJSON(os.Stdout, figures, &tres, opts.Methods)
		}
		return experiments.WriteTable1(os.Stdout, tres, opts.Methods)
	}
}

func runTable1Result(opts experiments.Options, tableK int) (experiments.Table1Result, error) {
	spec := experiments.Table1()
	if tableK > 0 {
		spec.K = tableK
	}
	return experiments.RunTable1(spec, opts)
}

// parsePFails parses the -sweep-pfails comma list, shared by the pfail
// sweep and the schedule sweep. An all-empty list is an error; nil is
// returned for an empty flag (keep the spec default).
func parsePFails(pfails string) ([]float64, error) {
	if pfails == "" {
		return nil, nil
	}
	var out []float64
	for _, s := range strings.Split(pfails, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		pf, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -sweep-pfails entry %q: %v", s, err)
		}
		out = append(out, pf)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-sweep-pfails %q holds no values", pfails)
	}
	return out, nil
}

// sweepSpec resolves the sweep flags against the default LU k=10 sweep.
func sweepSpec(kind string, k int, pfails string) (experiments.SweepSpec, error) {
	spec := experiments.DefaultSweep()
	if kind != "" {
		spec.Fact = linalg.Factorization(kind)
	}
	if k > 0 {
		spec.K = k
	}
	pfs, err := parsePFails(pfails)
	if err != nil {
		return spec, err
	}
	if pfs != nil {
		spec.PFails = pfs
	}
	return spec, nil
}

// schedSpec resolves the schedule-sweep flags against the default LU
// k=10 sweep; the graph flags (-sweep-kind/-sweep-k/-sweep-pfails) are
// shared with the pfail sweep.
func schedSpec(kind string, k int, pfails, procs, policies string) (experiments.SchedSpec, error) {
	spec := experiments.DefaultSchedSweep()
	if kind != "" {
		spec.Fact = linalg.Factorization(kind)
	}
	if k > 0 {
		spec.K = k
	}
	pfs, err := parsePFails(pfails)
	if err != nil {
		return spec, err
	}
	if pfs != nil {
		spec.PFails = pfs
	}
	if procs != "" {
		spec.Procs = nil
		for _, s := range strings.Split(procs, ",") {
			s = strings.TrimSpace(s)
			if s == "" {
				continue
			}
			p, err := strconv.Atoi(s)
			if err != nil {
				return spec, fmt.Errorf("bad -sched-procs entry %q: %v", s, err)
			}
			spec.Procs = append(spec.Procs, p)
		}
	}
	if policies != "" {
		ps, err := schedmc.ParsePolicies(policies)
		if err != nil {
			return spec, err
		}
		spec.Policies = ps
	}
	return spec, nil
}

func runSched(spec experiments.SchedSpec, opts experiments.Options, format string) error {
	res, err := experiments.RunSchedSweep(spec, opts)
	if err != nil {
		return err
	}
	if format == "json" {
		return report.WriteSchedSweepJSON(os.Stdout, res)
	}
	return experiments.WriteSchedSweep(os.Stdout, res)
}

func runSweep(spec experiments.SweepSpec, opts experiments.Options, format string) error {
	res, err := experiments.RunSweep(spec, opts)
	if err != nil {
		return err
	}
	if format == "json" {
		return report.WriteSweepJSON(os.Stdout, res, opts.Methods)
	}
	return experiments.WriteSweep(os.Stdout, res, opts.Methods)
}

func runTable1(opts experiments.Options, tableK int, format string) error {
	res, err := runTable1Result(opts, tableK)
	if err != nil {
		return err
	}
	if format == "json" {
		return report.WriteTable1JSON(os.Stdout, res, opts.Methods)
	}
	return experiments.WriteTable1(os.Stdout, res, opts.Methods)
}
