package service

import (
	"os"
	"path/filepath"
	"testing"
)

// This file pins the registry rewrite: the goldens under
// testdata/parity were generated from the pre-refactor registry
// (UPDATE_PARITY=1 go test -run TestE2EParityPinned ./internal/service),
// and the test replays the same requests — cold and warm — against the
// current daemon, requiring byte identity after time normalization.
// Any change to the artifact pipeline that alters a single response
// byte (estimate, sweep or schedule) fails here, not in production.

// parityCases: one fixed request per endpoint, heavy enough to touch
// every cached artifact kind (frozen graph, Dodin plan, MC estimator
// tables, quantile sketches, frozen schedule) yet quick to run.
var parityCases = []struct {
	name   string
	path   string
	body   string
	golden string
}{
	{
		name:   "estimate",
		path:   "/v1/estimate",
		body:   `{"kind":"lu","k":8,"pfail":0.001,"methods":"all","trials":2000,"seed":7,"bounds":true,"quantiles":[0.5,0.95]}`,
		golden: "estimate.json",
	},
	{
		name:   "sweep",
		path:   "/v1/sweep",
		body:   `{"kind":"cholesky","k":6,"pfails":[0.1,0.01],"trials":1500,"seed":3}`,
		golden: "sweep.json",
	},
	{
		name:   "schedule",
		path:   "/v1/schedule",
		body:   `{"kind":"lu","k":8,"procs":4,"pfail":0.01,"trials":2000,"seed":7,"quantiles":[0.5,0.99]}`,
		golden: "schedule.json",
	},
}

// TestE2EParityPinned drives the built makespand binary with the pinned
// requests and diffs cold and warm responses against the committed
// goldens. UPDATE_PARITY=1 regenerates the goldens instead.
func TestE2EParityPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildBinaries(t)
	base := startDaemon(t, bin)
	update := os.Getenv("UPDATE_PARITY") != ""
	for _, c := range parityCases {
		t.Run(c.name, func(t *testing.T) {
			cold := normalizeTimes(httpPost(t, base+c.path, c.body))
			warm := normalizeTimes(httpPost(t, base+c.path, c.body))
			if warm != cold {
				t.Fatalf("warm %s response differs from cold:\ncold:\n%s\nwarm:\n%s", c.name, cold, warm)
			}
			path := filepath.Join("testdata", "parity", c.golden)
			if update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(cold), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run UPDATE_PARITY=1 go test -run TestE2EParityPinned): %v", err)
			}
			if cold != string(want) {
				t.Errorf("%s response drifted from the pinned pre-refactor bytes:\ngolden:\n%s\ngot:\n%s", c.name, want, cold)
			}
		})
	}
}
