package montecarlo

import (
	"math"
	"testing"
)

// QuantileCI coverage property: over many independent uniform samples the
// interval must contain the true quantile at least ~confidence of the
// time. The cell-edge widening makes the interval conservative, so the
// empirical coverage should sit at or above the nominal level; the
// assertion leaves slack for the binomial normal approximation.
func TestQuantileCICoverageUniform(t *testing.T) {
	const (
		reps       = 200
		n          = 2000
		confidence = 0.95
	)
	for _, q := range []float64{0.25, 0.5, 0.9} {
		covered := 0
		for rep := 0; rep < reps; rep++ {
			rng := newChunkRNG(99, int64(rep))
			sk := NewQuantileSketch(DefaultSketchCells)
			for i := 0; i < n; i++ {
				sk.Add(rng.Float64())
			}
			lo, hi, err := sk.QuantileCI(q, confidence)
			if err != nil {
				t.Fatalf("q=%v rep=%d: %v", q, rep, err)
			}
			if lo > hi {
				t.Fatalf("q=%v: inverted interval [%v, %v]", q, lo, hi)
			}
			if lo <= q && q <= hi { // true q-quantile of U(0,1) is q
				covered++
			}
		}
		if frac := float64(covered) / reps; frac < confidence-0.05 {
			t.Fatalf("q=%v: coverage %.3f below nominal %.2f", q, frac, confidence)
		}
	}
}

// QuantileCI width shrinks (or at worst hits the cell-width floor) as n
// grows, and a higher confidence can only widen it.
func TestQuantileCIMonotone(t *testing.T) {
	width := func(n int, confidence float64) float64 {
		rng := newChunkRNG(7, 0)
		sk := NewQuantileSketch(DefaultSketchCells)
		for i := 0; i < n; i++ {
			sk.Add(rng.Float64())
		}
		lo, hi, err := sk.QuantileCI(0.5, confidence)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		return hi - lo
	}
	prev := math.Inf(1)
	for _, n := range []int{500, 5000, 50000} {
		w := width(n, 0.95)
		if w > prev {
			t.Fatalf("CI width grew with n: %v at smaller n, %v at n=%d", prev, w, n)
		}
		prev = w
	}
	if width(5000, 0.99) < width(5000, 0.9) {
		t.Fatal("higher confidence produced a narrower interval")
	}
}

// QuantileCI input validation and the small-n refusal: the requested order
// statistics must exist.
func TestQuantileCIValidation(t *testing.T) {
	sk := NewQuantileSketch(64)
	if _, _, err := sk.QuantileCI(0.5, 0.95); err == nil {
		t.Fatal("empty sketch accepted")
	}
	for i := 0; i < 10; i++ {
		sk.Add(float64(i))
	}
	for _, q := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, _, err := sk.QuantileCI(q, 0.95); err == nil {
			t.Fatalf("q=%v accepted", q)
		}
	}
	for _, c := range []float64{0, 1, -1, 2, math.NaN()} {
		if _, _, err := sk.QuantileCI(0.5, c); err == nil {
			t.Fatalf("confidence=%v accepted", c)
		}
	}
	// 10 samples cannot bracket the median at 99% confidence.
	if _, _, err := sk.QuantileCI(0.5, 0.99); err == nil {
		t.Fatal("10 samples accepted for a 99% median CI")
	}
	// But enough samples can.
	for i := 10; i < 1000; i++ {
		sk.Add(float64(i % 37))
	}
	if _, _, err := sk.QuantileCI(0.5, 0.99); err != nil {
		t.Fatalf("1000 samples rejected: %v", err)
	}
}

// Empty-sketch behavior is pinned: quantile and CDF questions on no data
// answer NaN (documented), never a silent zero, and Clone preserves
// independence.
func TestSketchEmptyPinnedAndClone(t *testing.T) {
	sk := NewQuantileSketch(64)
	if !math.IsNaN(sk.Quantile(0.5)) || !math.IsNaN(sk.CDF(1.0)) {
		t.Fatalf("empty sketch: Quantile=%v CDF=%v, want NaN/NaN", sk.Quantile(0.5), sk.CDF(1.0))
	}
	if !math.IsNaN(sk.Min()) || !math.IsNaN(sk.Max()) {
		t.Fatal("empty sketch Min/Max must be NaN")
	}
	for i := 0; i < 100; i++ {
		sk.Add(float64(i))
	}
	cl := sk.Clone()
	if cl.N() != sk.N() || cl.Quantile(0.5) != sk.Quantile(0.5) {
		t.Fatal("clone differs from original")
	}
	for i := 0; i < 1000; i++ {
		cl.Add(1e9)
	}
	if sk.N() != 100 || sk.Max() != 99 {
		t.Fatal("mutating the clone changed the original")
	}
}
