package spgraph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dag"
	"repro/internal/distribution"
	"repro/internal/failure"
)

// SPKind classifies SP-tree nodes.
type SPKind int

// SP-tree node kinds.
const (
	SPLeaf SPKind = iota // a single task
	SPSeries
	SPParallel
)

// SPNode is a node of the series-parallel decomposition tree of a task
// graph: leaves are tasks, internal nodes compose children in series
// (sequential sum) or parallel (independent max). The tree is the
// structural witness of series-parallelism produced by Decompose and the
// input to an exact recursive evaluation cross-checking the
// reduction-based evaluator.
type SPNode struct {
	Kind     SPKind
	Task     int // valid for SPLeaf
	Children []*SPNode
	// minLeaf caches the smallest leaf task ID of the subtree. Dodin
	// duplication shares subtrees between arcs, so the "tree" reachable
	// from an arc is really a DAG — a recursive minimum would revisit
	// shared subtrees exponentially often. Filled at construction.
	minLeaf int
}

func leafNode(task int) *SPNode {
	return &SPNode{Kind: SPLeaf, Task: task, minLeaf: task}
}

func seriesNode(a, b *SPNode) *SPNode {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	// Flatten nested series for canonical shape.
	var kids []*SPNode
	for _, n := range []*SPNode{a, b} {
		if n.Kind == SPSeries {
			kids = append(kids, n.Children...)
		} else {
			kids = append(kids, n)
		}
	}
	return &SPNode{Kind: SPSeries, Children: kids, minLeaf: min(a.minLeaf, b.minLeaf)}
}

func parallelNode(a, b *SPNode) *SPNode {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	var kids []*SPNode
	for _, n := range []*SPNode{a, b} {
		if n.Kind == SPParallel {
			kids = append(kids, n.Children...)
		} else {
			kids = append(kids, n)
		}
	}
	// Parallel composition is commutative; sort children by smallest leaf
	// so the decomposition is canonical regardless of reduction order.
	sort.Slice(kids, func(i, j int) bool { return kids[i].minLeaf < kids[j].minLeaf })
	return &SPNode{Kind: SPParallel, Children: kids, minLeaf: min(a.minLeaf, b.minLeaf)}
}

// String renders the tree as S(...) / P(...) / T<id> — e.g. the diamond
// 0→{1,2}→3 prints "S(T0, P(T1, T2), T3)".
func (n *SPNode) String() string {
	if n == nil {
		return "ε"
	}
	switch n.Kind {
	case SPLeaf:
		return fmt.Sprintf("T%d", n.Task)
	case SPSeries, SPParallel:
		tag := "S"
		if n.Kind == SPParallel {
			tag = "P"
		}
		parts := make([]string, len(n.Children))
		for i, c := range n.Children {
			parts[i] = c.String()
		}
		return tag + "(" + strings.Join(parts, ", ") + ")"
	}
	return "?"
}

// Tasks returns the leaf task IDs in tree order.
func (n *SPNode) Tasks() []int {
	var out []int
	var walk func(*SPNode)
	walk = func(m *SPNode) {
		if m == nil {
			return
		}
		if m.Kind == SPLeaf {
			out = append(out, m.Task)
			return
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return out
}

// Evaluate computes the makespan distribution of the subtree under the
// 2-state model, recursively: leaves are TwoState(a_i, p_i), series
// convolve, parallel take the independent max. maxAtoms caps supports
// (<= 0 = unlimited). On a tree produced by Decompose this equals the
// reduction-based EvaluateSP exactly (property-tested).
func (n *SPNode) Evaluate(g *dag.Graph, model failure.Model, maxAtoms int) (distribution.Discrete, error) {
	capd := func(d distribution.Discrete) distribution.Discrete {
		if maxAtoms > 0 {
			return d.Rediscretize(maxAtoms)
		}
		return d
	}
	var eval func(*SPNode) (distribution.Discrete, error)
	eval = func(m *SPNode) (distribution.Discrete, error) {
		if m == nil {
			return distribution.Point(0), nil
		}
		switch m.Kind {
		case SPLeaf:
			a := g.Weight(m.Task)
			return distribution.TwoState(a, model.PSuccess(a))
		case SPSeries, SPParallel:
			acc, err := eval(m.Children[0])
			if err != nil {
				return distribution.Discrete{}, err
			}
			for _, c := range m.Children[1:] {
				d, err := eval(c)
				if err != nil {
					return distribution.Discrete{}, err
				}
				if m.Kind == SPSeries {
					acc = capd(acc.Add(d))
				} else {
					acc = capd(acc.MaxInd(d))
				}
			}
			return acc, nil
		}
		return distribution.Discrete{}, fmt.Errorf("spgraph: bad SP node kind %d", m.Kind)
	}
	return eval(n)
}

// Decompose returns the SP decomposition tree of g, or an error if g is
// not two-terminal series-parallel. An empty graph decomposes to nil.
func Decompose(g *dag.Graph) (*SPNode, error) {
	net, err := FromDAG(g, failure.Model{}, DefaultMaxAtoms)
	if err != nil {
		return nil, err
	}
	net.reducePass()
	if net.nAlive != 1 {
		return nil, fmt.Errorf("spgraph: graph is not series-parallel (%d arcs left after reduction)", net.nAlive)
	}
	for id, alive := range net.aliveArc {
		if alive {
			a := net.arcs[id]
			if a.from != net.src || a.to != net.snk {
				return nil, fmt.Errorf("spgraph: reduction ended off the terminals")
			}
			return a.tree, nil
		}
	}
	return nil, fmt.Errorf("spgraph: no live arc after reduction")
}
