// Command daggen generates task graphs and exports them as JSON (for the
// makespan tool) or Graphviz DOT (reproducing the paper's Figures 1-3).
//
// Usage:
//
//	daggen -kind cholesky -k 5 -dot cholesky5.dot    # paper Figure 1
//	daggen -kind lu -k 5 -dot -                      # DOT to stdout
//	daggen -kind qr -k 8 -json qr8.json
//	daggen -kind layered -tasks 50 -edge-prob 0.3 -seed 7 -json random.json
//	daggen -kind cholesky -k 5 -dot - -critical      # highlight critical path
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/dag"
	"repro/internal/linalg"
)

func main() {
	var (
		kind     = flag.String("kind", "cholesky", "cholesky, lu, qr, layered, erdos, chain, forkjoin")
		k        = flag.Int("k", 5, "tile count for factorization kinds")
		tasks    = flag.Int("tasks", 50, "task count for random kinds")
		edgeProb = flag.Float64("edge-prob", 0.3, "edge probability for random kinds")
		width    = flag.Int("width", 8, "max layer width / fork-join width")
		seed     = flag.Int64("seed", 1, "random seed")
		jsonOut  = flag.String("json", "", "write JSON graph to file ('-' for stdout)")
		dotOut   = flag.String("dot", "", "write DOT rendering to file ('-' for stdout)")
		critical = flag.Bool("critical", false, "highlight the critical path in DOT output")
		weights  = flag.Bool("weights", false, "show task weights in DOT labels")
	)
	flag.Parse()
	if err := run(*kind, *k, *tasks, *edgeProb, *width, *seed, *jsonOut, *dotOut, *critical, *weights); err != nil {
		fmt.Fprintln(os.Stderr, "daggen:", err)
		os.Exit(1)
	}
}

func run(kind string, k, tasks int, edgeProb float64, width int, seed int64, jsonOut, dotOut string, critical, weights bool) error {
	g, err := generate(kind, k, tasks, edgeProb, width, seed)
	if err != nil {
		return err
	}
	d, _ := dag.Makespan(g)
	fmt.Fprintf(os.Stderr, "generated %s: %d tasks, %d edges, d(G) = %.6g\n",
		kind, g.NumTasks(), g.NumEdges(), d)
	if jsonOut == "" && dotOut == "" {
		jsonOut = "-"
	}
	if jsonOut != "" {
		if err := withWriter(jsonOut, func(w io.Writer) error { return dag.WriteJSON(w, g) }); err != nil {
			return err
		}
	}
	if dotOut != "" {
		opts := dag.DotOptions{GraphName: kind, ShowWeights: weights}
		if critical {
			pe, err := dag.NewPathEvaluator(g)
			if err != nil {
				return err
			}
			path, _ := pe.CriticalPath()
			opts.Highlight = path
		}
		if err := withWriter(dotOut, func(w io.Writer) error { return dag.WriteDot(w, g, opts) }); err != nil {
			return err
		}
	}
	return nil
}

func generate(kind string, k, tasks int, edgeProb float64, width int, seed int64) (*dag.Graph, error) {
	rng := rand.New(rand.NewSource(seed))
	switch kind {
	case "cholesky", "lu", "qr":
		return linalg.Generate(linalg.Factorization(kind), k, linalg.KernelTimes{})
	case "layered":
		return dag.LayeredRandom(dag.RandomConfig{Tasks: tasks, EdgeProb: edgeProb, MaxLayerWidth: width}, rng)
	case "erdos":
		return dag.ErdosRenyiDAG(dag.RandomConfig{Tasks: tasks, EdgeProb: edgeProb}, rng)
	case "chain":
		return dag.Chain(tasks), nil
	case "forkjoin":
		return dag.ForkJoin(width), nil
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}

func withWriter(path string, f func(io.Writer) error) error {
	if path == "-" {
		return f(os.Stdout)
	}
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f(file); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}
