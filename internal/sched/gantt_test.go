package sched

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dag"
)

func TestWriteGantt(t *testing.T) {
	g := dag.Diamond(1, 5, 3, 2)
	p, _ := Priorities(g)
	s, err := ListSchedule(g, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGantt(&buf, g, s, 40); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // header + 2 processors
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "P0  |") || !strings.HasPrefix(lines[2], "P1  |") {
		t.Fatalf("row labels wrong:\n%s", out)
	}
	// Tasks src(s), mid0(m), mid1(m), snk(s) appear by first letter.
	if !strings.Contains(out, "m") || !strings.Contains(out, "s") {
		t.Fatalf("task marks missing:\n%s", out)
	}
	// Idle time exists on the second processor (it only runs one middle).
	if !strings.Contains(lines[2], ".") {
		t.Fatalf("no idle time drawn:\n%s", out)
	}
}

func TestWriteGanttEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteGantt(&buf, dag.New(0), Schedule{}, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty") {
		t.Fatalf("empty schedule output: %q", buf.String())
	}
}

func TestWriteGanttTinyWidthClamped(t *testing.T) {
	g := dag.Chain(3, 1)
	p, _ := Priorities(g)
	s, _ := ListSchedule(g, p, 1)
	var buf bytes.Buffer
	if err := WriteGantt(&buf, g, s, 1); err != nil {
		t.Fatal(err)
	}
	if len(buf.String()) < 80 {
		t.Fatalf("width not clamped up: %d chars", len(buf.String()))
	}
}

func TestWriteScheduleCSV(t *testing.T) {
	g := dag.Chain(3, 1, 2)
	p, _ := Priorities(g)
	s, _ := ListSchedule(g, p, 1)
	var buf bytes.Buffer
	if err := WriteScheduleCSV(&buf, g, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "task,name,proc,start,finish,attempts\n") {
		t.Fatalf("header wrong: %q", out)
	}
	if strings.Count(out, "\n") != 4 {
		t.Fatalf("rows = %d want 4:\n%s", strings.Count(out, "\n"), out)
	}
	if !strings.Contains(out, "c0,0,0,1,1") && !strings.Contains(out, "c0,0,0,1") {
		t.Fatalf("first row content missing:\n%s", out)
	}
}
