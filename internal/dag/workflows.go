package dag

import "fmt"

// This file provides the classic structured DAG families used as extra
// workloads in the ablation benchmarks and scheduling experiments: stage
// pipelines (scientific-workflow shaped), 2D wavefronts (stencil sweeps),
// FFT butterflies and divide-and-conquer trees. All have closed-form task
// counts (unit-tested) and, except the pipeline, are far from
// series-parallel — useful stress tests for Dodin.

// Pipeline returns a stages-deep pipeline of parallel sections: each stage
// has width tasks of the given weight, every task depends on all tasks of
// the previous stage (a Montage/Epigenomics-style bus pattern). Task count
// is stages·width.
func Pipeline(stages, width int, weight float64) *Graph {
	if stages < 1 {
		stages = 1
	}
	if width < 1 {
		width = 1
	}
	g := New(stages * width)
	var prev []int
	for s := 0; s < stages; s++ {
		cur := make([]int, width)
		for w := 0; w < width; w++ {
			cur[w] = g.MustAddTask(fmt.Sprintf("s%d_%d", s, w), weight)
			for _, p := range prev {
				g.MustAddEdge(p, cur[w])
			}
		}
		prev = cur
	}
	return g
}

// Wavefront returns the n×n 2D wavefront (stencil sweep) DAG: task (i,j)
// depends on (i−1,j) and (i,j−1). Task count n², longest chain 2n−1. The
// canonical non-series-parallel HPC dependence pattern (Gauss–Seidel,
// Smith–Waterman, triangular solves).
func Wavefront(n int, weight float64) *Graph {
	if n < 1 {
		n = 1
	}
	g := New(n * n)
	id := func(i, j int) int { return i*n + j }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			g.MustAddTask(fmt.Sprintf("w%d_%d", i, j), weight)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i > 0 {
				g.MustAddEdge(id(i-1, j), id(i, j))
			}
			if j > 0 {
				g.MustAddEdge(id(i, j-1), id(i, j))
			}
		}
	}
	return g
}

// FFT returns the butterfly DAG of an n-point FFT (n must be a power of
// two): log2(n)+1 ranks of n tasks; task (r,i) depends on (r−1,i) and
// (r−1, i XOR 2^{r−1}). Task count n·(log2(n)+1).
func FFT(n int, weight float64) (*Graph, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("dag: FFT size %d is not a power of two >= 2", n)
	}
	ranks := 1
	for m := n; m > 1; m >>= 1 {
		ranks++
	}
	g := New(n * ranks)
	id := func(r, i int) int { return r*n + i }
	for r := 0; r < ranks; r++ {
		for i := 0; i < n; i++ {
			g.MustAddTask(fmt.Sprintf("f%d_%d", r, i), weight)
		}
	}
	for r := 1; r < ranks; r++ {
		stride := 1 << uint(r-1)
		for i := 0; i < n; i++ {
			g.MustAddEdge(id(r-1, i), id(r, i))
			g.MustAddEdge(id(r-1, i^stride), id(r, i))
		}
	}
	return g, nil
}

// DivideAndConquer returns the divide-and-conquer DAG of depth levels: a
// binary out-tree of "divide" tasks, a layer of leaf "work" tasks, and the
// mirrored in-tree of "merge" tasks. Task count 3·2^(levels) − 2 ... more
// precisely: 2^levels leaves plus 2·(2^levels − 1) internal tasks.
func DivideAndConquer(levels int, weight float64) *Graph {
	if levels < 0 {
		levels = 0
	}
	leaves := 1 << uint(levels)
	g := New(3*leaves - 2)
	// Divide out-tree.
	divide := make([][]int, levels+1)
	divide[0] = []int{g.MustAddTask("div0_0", weight)}
	for l := 1; l <= levels; l++ {
		divide[l] = make([]int, 1<<uint(l))
		for i := range divide[l] {
			if l == levels {
				divide[l][i] = g.MustAddTask(fmt.Sprintf("leaf_%d", i), weight)
			} else {
				divide[l][i] = g.MustAddTask(fmt.Sprintf("div%d_%d", l, i), weight)
			}
			g.MustAddEdge(divide[l-1][i/2], divide[l][i])
		}
	}
	// Merge in-tree.
	prev := divide[levels]
	for l := levels - 1; l >= 0; l-- {
		cur := make([]int, 1<<uint(l))
		for i := range cur {
			cur[i] = g.MustAddTask(fmt.Sprintf("mrg%d_%d", l, i), weight)
			g.MustAddEdge(prev[2*i], cur[i])
			g.MustAddEdge(prev[2*i+1], cur[i])
		}
		prev = cur
	}
	return g
}
