// Package normal implements the paper's "Normal" competitor (§II-A3,
// §V-A): approximate each task's 2-state execution time by a Gaussian of
// matching mean and variance, sweep the DAG combining sums and maxima with
// Clark's formulas, and read the expected makespan off the final Gaussian.
//
// Two variants are provided. Sculli is the classical method (Sculli 1983):
// maxima of predecessor completions are folded pairwise assuming
// independence (ρ = 0). CorLCA (Canon–Jeannot 2016, cited as [24] by the
// paper) additionally tracks correlations introduced by shared ancestors
// through a correlation tree and feeds the estimated ρ into Clark's
// formulas; it is markedly more accurate on DAGs with reconvergent paths
// and markedly slower — matching the accuracy/runtime profile of the
// "Normal" column in the paper's Table I.
package normal

import (
	"repro/internal/dag"
	"repro/internal/distribution"
	"repro/internal/failure"
)

// Result is the Gaussian approximation of the makespan.
type Result struct {
	// Estimate is the approximated expected makespan (the mean of
	// Makespan).
	Estimate float64
	// Makespan is the full Gaussian approximation of the makespan
	// distribution.
	Makespan distribution.Normal
}

// taskNormal moment-matches task i's 2-state time: a w.p. e^{−λa}, 2a
// otherwise, giving mean a(2−p) and variance a²p(1−p).
func taskNormal(a float64, model failure.Model) distribution.Normal {
	p := model.PSuccess(a)
	return distribution.Normal{Mu: a * (2 - p), Sigma2: a * a * p * (1 - p)}
}

// Sculli computes the normality-assumption estimate with independent
// maxima (ρ = 0 in Clark's formulas). O(V+E) Gaussian operations.
func Sculli(g *dag.Graph, model failure.Model) (Result, error) {
	f, err := dag.Freeze(g)
	if err != nil {
		return Result{}, err
	}
	n := f.NumTasks()
	w := f.WeightsTopo()
	comp := make([]distribution.Normal, n)
	var final distribution.Normal
	haveFinal := false
	for v := 0; v < n; v++ {
		var start distribution.Normal
		for k, p := range f.PredTopo(v) {
			if k == 0 {
				start = comp[p]
			} else {
				start = distribution.ClarkMax(start, comp[p], 0)
			}
		}
		comp[v] = start.Add(taskNormal(w[v], model))
		if f.OutDegreeTopo(v) == 0 {
			if !haveFinal {
				final, haveFinal = comp[v], true
			} else {
				final = distribution.ClarkMax(final, comp[v], 0)
			}
		}
	}
	return Result{Estimate: final.Mu, Makespan: final}, nil
}
