package experiments

import (
	"testing"
	"time"
)

func TestFormatRelErrSigned(t *testing.T) {
	if got := formatRelErr(0.0123); got != "+0.0123" {
		t.Errorf("positive = %q", got)
	}
	if got := formatRelErr(-0.0123); got != "-0.0123" {
		t.Errorf("negative = %q", got)
	}
	if got := formatRelErr(0); got != "+0" {
		t.Errorf("zero = %q", got)
	}
}

func TestRoundDurations(t *testing.T) {
	cases := []struct {
		in   time.Duration
		want time.Duration
	}{
		{1234567890 * time.Nanosecond, 1230 * time.Millisecond},
		{1234567 * time.Nanosecond, 1230 * time.Microsecond},
		{123 * time.Nanosecond, 120 * time.Nanosecond},
	}
	for _, c := range cases {
		if got := round(c.in); got != c.want {
			t.Errorf("round(%v) = %v want %v", c.in, got, c.want)
		}
	}
}

func TestSortedMethodsFollowsCanonicalOrder(t *testing.T) {
	p := Point{RelErr: map[Method]float64{
		MethodFirstOrder: 1,
		MethodDodin:      2,
		MethodSculli:     3,
	}}
	got := sortedMethods([]Point{p})
	want := []Method{MethodDodin, MethodSculli, MethodFirstOrder}
	if len(got) != len(want) {
		t.Fatalf("methods = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("methods = %v want %v", got, want)
		}
	}
	if sortedMethods(nil) != nil {
		t.Fatal("empty points should give nil")
	}
	if sortedMethodsSweepEmpty() != nil {
		t.Fatal("empty sweep points should give nil")
	}
}

func sortedMethodsSweepEmpty() []Method { return sortedSweepMethods(nil) }
