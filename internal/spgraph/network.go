// Package spgraph implements the series-parallel machinery behind the
// paper's "Dodin" competitor (§II-A2, §V-A): conversion of a task DAG into
// an activity-on-arc (AoA) network, exact series/parallel reductions over
// discrete distributions, series-parallel recognition, and Dodin's node
// duplication that forces an arbitrary DAG into series-parallel form so
// its makespan distribution can be evaluated by reduction.
package spgraph

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dag"
	"repro/internal/distribution"
	"repro/internal/failure"
)

// Network is a directed multigraph with a distribution on every arc, a
// single source and a single sink — a PERT activity-on-arc network.
//
// The reduction machinery keeps incremental state so that a full Dodin
// run does O(1) work per reduction instead of rescanning the network:
// live in/out degree counters, a worklist that survives across
// duplications (lifo+pending, see reduce.go), an epoch-stamped scratch
// table for parallel-arc detection, and a lazy min-heap of join-node
// candidates for duplicateOne. Distribution ops go through a pooled
// Scratch, so reductions allocate only their result.
type Network struct {
	arcs     []arc
	aliveArc []bool
	in, out  [][]int // arc IDs per node (may contain dead arcs; filtered on use)
	src, snk int
	nAlive   int
	maxAtoms int // distribution support cap; 0 = unlimited (exact)

	inDeg, outDeg []int32 // live arc counts per node

	// Worklist state (reduce.go). lifo holds nodes re-pushed after the
	// current pass already swept them; pending is a max-heap (by node
	// index) of nodes the pass has not reached yet. sweepPos is the index
	// of the pending node popped most recently in this pass.
	lifo     []int32
	pending  []int32
	inQueue  []bool
	sweepPos int
	seeded   bool // first pass seeds every node

	// Parallel-arc detection scratch: headFirst[h] is the first live arc
	// into h seen during the scan stamped headMark[h] == headEpoch.
	headFirst []int
	headMark  []int64
	headEpoch int64

	// Lazy join-candidate heap for duplicateOne: entries pack
	// (outDegree<<32 | node) and are validated against current degrees at
	// pop time. Every node whose degrees change while it satisfies
	// inDeg >= 2 && outDeg >= 1 has a current entry.
	cand []int64

	scratch distribution.Scratch

	// rec, when non-nil, records the reduction schedule for Plan replay
	// (see plan.go). Recording is append-only and does not alter any
	// decision the reduction makes.
	rec *planRec
}

type arc struct {
	from, to int
	dist     distribution.Discrete
	tree     *SPNode // SP decomposition witness; nil for zero arcs
}

// DefaultMaxAtoms caps distribution supports during reductions. Without a
// cap, chains of convolutions of 2-state distributions grow exponentially
// (the pseudo-polynomial blow-up the paper notes for series-parallel
// graphs).
const DefaultMaxAtoms = 64

// FromDAG converts a task graph into an AoA network: task i becomes an arc
// carrying its 2-state distribution between a fresh start/end node pair;
// each precedence edge becomes a zero-length arc; a super-source and
// super-sink tie up entry and exit tasks. maxAtoms caps distribution
// supports during subsequent reductions (0 = unlimited).
func FromDAG(g *dag.Graph, model failure.Model, maxAtoms int) (*Network, error) {
	if _, err := g.TopoOrder(); err != nil {
		return nil, err
	}
	n := g.NumTasks()
	// Node layout: 2i = start of task i, 2i+1 = end of task i,
	// 2n = super-source, 2n+1 = super-sink.
	nn := 2*n + 2
	net := &Network{
		in:        make([][]int, nn),
		out:       make([][]int, nn),
		src:       2 * n,
		snk:       2*n + 1,
		maxAtoms:  maxAtoms,
		inDeg:     make([]int32, nn),
		outDeg:    make([]int32, nn),
		inQueue:   make([]bool, nn),
		headFirst: make([]int, nn),
		headMark:  make([]int64, nn),
		sweepPos:  math.MaxInt,
	}
	zero := distribution.Point(0)
	for i := 0; i < n; i++ {
		d, err := distribution.TwoState(g.Weight(i), model.PSuccess(g.Weight(i)))
		if err != nil {
			return nil, fmt.Errorf("spgraph: task %d: %w", i, err)
		}
		net.addArc(2*i, 2*i+1, d, leafNode(i))
		if g.InDegree(i) == 0 {
			net.addArc(net.src, 2*i, zero, nil)
		}
		if g.OutDegree(i) == 0 {
			net.addArc(2*i+1, net.snk, zero, nil)
		}
		for _, s := range g.Succ(i) {
			net.addArc(2*i+1, 2*s, zero, nil)
		}
	}
	if n == 0 {
		net.addArc(net.src, net.snk, zero, nil)
	}
	return net, nil
}

// addNode appends a fresh node, growing every per-node table.
func (net *Network) addNode() int {
	id := len(net.in)
	net.in = append(net.in, nil)
	net.out = append(net.out, nil)
	net.inDeg = append(net.inDeg, 0)
	net.outDeg = append(net.outDeg, 0)
	net.inQueue = append(net.inQueue, false)
	net.headFirst = append(net.headFirst, 0)
	net.headMark = append(net.headMark, 0)
	return id
}

func (net *Network) addArc(u, v int, d distribution.Discrete, tree *SPNode) int {
	id := len(net.arcs)
	net.arcs = append(net.arcs, arc{from: u, to: v, dist: d, tree: tree})
	net.aliveArc = append(net.aliveArc, true)
	net.out[u] = append(net.out[u], id)
	net.in[v] = append(net.in[v], id)
	net.outDeg[u]++
	net.inDeg[v]++
	net.nAlive++
	net.candPush(u)
	net.candPush(v)
	return id
}

func (net *Network) killArc(id int) {
	if net.aliveArc[id] {
		net.aliveArc[id] = false
		net.nAlive--
		a := &net.arcs[id]
		net.outDeg[a.from]--
		net.inDeg[a.to]--
		net.candPush(a.from)
		net.candPush(a.to)
	}
}

// liveIn returns the live incoming arc IDs of v, compacting the list.
func (net *Network) liveIn(v int) []int {
	live := net.in[v][:0]
	for _, id := range net.in[v] {
		if net.aliveArc[id] {
			live = append(live, id)
		}
	}
	net.in[v] = live
	return live
}

// liveOut returns the live outgoing arc IDs of u, compacting the list.
func (net *Network) liveOut(u int) []int {
	live := net.out[u][:0]
	for _, id := range net.out[u] {
		if net.aliveArc[id] {
			live = append(live, id)
		}
	}
	net.out[u] = live
	return live
}

// NumArcs returns the number of live arcs.
func (net *Network) NumArcs() int { return net.nAlive }

// convMax merges two parallel arcs' distributions (independent max),
// applying the support cap in the same fused pass.
func (net *Network) convMax(a, b distribution.Discrete) distribution.Discrete {
	return a.MaxIndCapped(b, net.maxAtoms, &net.scratch)
}

// convAdd merges two series arcs' distributions (convolution), applying
// the support cap in the same fused pass.
func (net *Network) convAdd(a, b distribution.Discrete) distribution.Discrete {
	return a.AddCapped(b, net.maxAtoms, &net.scratch)
}

// errNotReduced reports a network that did not collapse to a single arc.
var errNotReduced = errors.New("spgraph: network not reduced to a single arc")

// result returns the final arc's distribution once the network has been
// fully reduced.
func (net *Network) result() (distribution.Discrete, error) {
	if net.nAlive != 1 {
		return distribution.Discrete{}, errNotReduced
	}
	for id, alive := range net.aliveArc {
		if alive {
			a := net.arcs[id]
			if a.from != net.src || a.to != net.snk {
				return distribution.Discrete{}, fmt.Errorf("%w: last arc (%d,%d) is not source→sink", errNotReduced, a.from, a.to)
			}
			return a.dist, nil
		}
	}
	return distribution.Discrete{}, errNotReduced
}
