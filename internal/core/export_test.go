package core

// SecondOrderMass exposes the retained probability mass of the
// second-order expansion to tests.
var SecondOrderMass = secondOrderMass
