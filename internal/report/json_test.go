package report

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/experiments"
)

// JSON writers must produce valid, method-complete documents.
func TestWriteJSONRoundTrip(t *testing.T) {
	res, err := experiments.RunSweep(experiments.SweepSpec{Fact: "lu", K: 4, PFails: []float64{0.01, 0.001}},
		experiments.Options{Trials: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSweepJSON(&buf, res, nil); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		K      int `json:"k"`
		Points []struct {
			PFail   float64                    `json:"pfail"`
			Methods map[string]json.RawMessage `json:"methods"`
		} `json:"points"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid sweep JSON: %v\n%s", err, buf.String())
	}
	if doc.K != 4 || len(doc.Points) != 2 || len(doc.Points[0].Methods) != len(experiments.PaperMethods()) {
		t.Fatalf("sweep JSON shape wrong: %+v", doc)
	}

	fig, _ := experiments.Figure(4)
	fres, err := experiments.RunFigure(fig, experiments.Options{Trials: 500, Seed: 3, Ks: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteFigureJSON(&buf, fres, nil); err != nil {
		t.Fatal(err)
	}
	var fdoc map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &fdoc); err != nil {
		t.Fatalf("invalid figure JSON: %v", err)
	}

	tres, err := experiments.RunTable1(experiments.Table1Spec{Fact: "lu", K: 4, PFail: 0.001},
		experiments.Options{Trials: 500})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteTable1JSON(&buf, tres, nil); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &fdoc); err != nil {
		t.Fatalf("invalid table JSON: %v", err)
	}
}

func TestWriteReportJSONCombined(t *testing.T) {
	fig, _ := experiments.Figure(4)
	fres, err := experiments.RunFigure(fig, experiments.Options{Trials: 300, Seed: 3, Ks: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	tres, err := experiments.RunTable1(experiments.Table1Spec{Fact: "lu", K: 4, PFail: 0.001},
		experiments.Options{Trials: 300})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteReportJSON(&buf, []experiments.FigureResult{fres, fres}, &tres, nil); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Figures []json.RawMessage `json:"figures"`
		Table1  json.RawMessage   `json:"table1"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("combined report is not one JSON document: %v", err)
	}
	if len(doc.Figures) != 2 || doc.Table1 == nil {
		t.Fatalf("combined report shape wrong: %d figures", len(doc.Figures))
	}
}

// The canonical method order of a document with no explicit method list
// must follow experiments.AllMethods.
func TestFigureMethodsCanonicalOrder(t *testing.T) {
	p := experiments.Point{RelErr: map[experiments.Method]float64{
		experiments.MethodFirstOrder: 1,
		experiments.MethodDodin:      2,
		experiments.MethodSculli:     3,
	}}
	got := figureMethods(nil, []experiments.Point{p})
	want := []experiments.Method{experiments.MethodDodin, experiments.MethodSculli, experiments.MethodFirstOrder}
	if len(got) != len(want) {
		t.Fatalf("methods = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("methods = %v want %v", got, want)
		}
	}
	if figureMethods(nil, nil) != nil {
		t.Fatal("empty points should give nil")
	}
	if sweepMethods(nil, nil) != nil {
		t.Fatal("empty sweep points should give nil")
	}
}
