package montecarlo

import (
	"context"
	"fmt"
	"math"
)

// QuantileSketch is a mergeable streaming histogram for quantile and CDF
// questions over a Monte Carlo run without O(trials) storage: a fixed
// number of equal-width cells whose width is a power of two and whose
// boundaries are multiples of that width. When a sample lands outside the
// covered range, the window shifts (same width) or the cell width doubles
// (pairwise-merging counts), so any data range is absorbed while memory
// stays constant.
//
// The power-of-two alignment is what makes merging exact: two grids'
// boundaries always nest, so rebinning moves every count to exactly one
// destination cell and a merged sketch holds the same per-cell counts as
// one sketch fed both streams at the final resolution. Quantile answers
// are within one cell width of the exact nearest-rank sample quantile,
// and the engine's per-chunk sketches reduce in chunk order to a
// worker-count-independent result.
//
// Samples must be finite (the engine only produces finite makespans);
// negative values are supported.
type QuantileSketch struct {
	cells   []uint64
	baseIdx int64 // global index of cells[0]: grid covers [baseIdx·w, (baseIdx+len)·w)
	wLog    int   // cell width = 2^wLog
	n       int64
	min     float64
	max     float64
	init    bool
}

// DefaultSketchCells is the grid size used by the engine: at any moment
// the covered range spans at most 1024 cells, so quantiles resolve to
// ~0.1% of the sample range.
const DefaultSketchCells = 1024

// NewQuantileSketch returns an empty sketch with the given cell count
// (minimum 16; DefaultSketchCells if cells <= 0).
func NewQuantileSketch(cells int) *QuantileSketch {
	if cells <= 0 {
		cells = DefaultSketchCells
	}
	if cells < 16 {
		cells = 16
	}
	return &QuantileSketch{cells: make([]uint64, cells)}
}

// N returns the number of samples added.
func (s *QuantileSketch) N() int64 { return s.n }

// Min returns the smallest sample (NaN if empty).
func (s *QuantileSketch) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest sample (NaN if empty).
func (s *QuantileSketch) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// CellWidth returns the current cell width, the resolution bound of
// Quantile and CDF answers. Zero for an empty sketch.
func (s *QuantileSketch) CellWidth() float64 {
	if !s.init {
		return 0
	}
	return math.Ldexp(1, s.wLog)
}

// idx returns the global cell index of x at the current width, clamped to
// ±2⁶² when the scaled value overflows int64 (a sample far outside the
// current range); cover/Add iterate until the width is coarse enough for
// the true index. The in-range scaling is exact (power-of-two multiply),
// so the floor is the true cell.
func (s *QuantileSketch) idx(x float64) int64 {
	v := math.Floor(math.Ldexp(x, -s.wLog))
	const lim = float64(int64(1) << 62)
	if v >= lim {
		return int64(1) << 62
	}
	if v <= -lim {
		return -(int64(1) << 62)
	}
	return int64(v)
}

// Add folds one sample into the sketch. x must be finite.
func (s *QuantileSketch) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		panic("montecarlo: non-finite sample in QuantileSketch")
	}
	if !s.init {
		s.init = true
		// Initial width: the whole grid spans ~4·|x| so nearby mass lands
		// in fine cells, with the first sample placed an eighth in to
		// leave headroom below (makespans cluster just above d0).
		e := math.Ilogb(math.Abs(x)) // Ilogb(0) is very negative; clamp below
		s.wLog = e + 2 - ilog2(len(s.cells))
		if s.wLog < -1000 {
			s.wLog = -1000
		}
		s.baseIdx = s.idx(x) - int64(len(s.cells)/8)
		s.min, s.max = x, x
	}
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
	i := s.idx(x)
	for i < s.baseIdx || i >= s.baseIdx+int64(len(s.cells)) {
		s.cover(i, i)
		i = s.idx(x)
	}
	s.cells[i-s.baseIdx]++
	s.n++
}

// cover reshapes the grid (shifting the window and/or doubling the cell
// width) until the occupied cells and the global index range [lo, hi]
// (given at the current width) all fit. lo/hi are rescaled as the width
// coarsens.
func (s *QuantileSketch) cover(lo, hi int64) {
	size := int64(len(s.cells))
	for {
		l, h := lo, hi
		if sLo, sHi, ok := s.occupied(); ok {
			l = min64(l, sLo)
			h = max64(h, sHi)
		}
		if h-l < size {
			// The span fits: shift the window (width unchanged) so it
			// covers [l, h].
			if l < s.baseIdx {
				s.shiftBase(l)
			} else if h >= s.baseIdx+size {
				s.shiftBase(h - size + 1)
			}
			return
		}
		s.grow()
		lo = floorDiv2(lo)
		hi = floorDiv2(hi)
	}
}

// grow doubles the cell width, pairwise-merging counts in place.
func (s *QuantileSketch) grow() {
	newBase := floorDiv2(s.baseIdx)
	for i, c := range s.cells {
		if c == 0 {
			continue
		}
		s.cells[i] = 0
		s.cells[floorDiv2(s.baseIdx+int64(i))-newBase] += c
	}
	s.baseIdx = newBase
	s.wLog++
}

// shiftBase moves the grid window to newBase, keeping the width. The
// occupied cells must fit the new window.
func (s *QuantileSketch) shiftBase(newBase int64) {
	d := s.baseIdx - newBase // counts move right by d (may be negative)
	if d > 0 {
		for i := len(s.cells) - 1; i >= 0; i-- {
			if c := s.cells[i]; c != 0 {
				s.cells[i] = 0
				s.cells[int64(i)+d] += c
			}
		}
	} else if d < 0 {
		for i := 0; i < len(s.cells); i++ {
			if c := s.cells[i]; c != 0 {
				s.cells[i] = 0
				s.cells[int64(i)+d] += c
			}
		}
	}
	s.baseIdx = newBase
}

// floorDiv2 is floor(x/2) for signed x (arithmetic shift).
func floorDiv2(x int64) int64 { return x >> 1 }

// ilog2 returns floor(log2(n)) for n >= 1.
func ilog2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// occupied returns the global index range [lo, hi] of the non-empty cells.
func (s *QuantileSketch) occupied() (lo, hi int64, ok bool) {
	first, last := -1, -1
	for i, c := range s.cells {
		if c != 0 {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 {
		return 0, 0, false
	}
	return s.baseIdx + int64(first), s.baseIdx + int64(last), true
}

// Merge folds o into s; o is unchanged. Counts are exact: the merged
// sketch holds, at its final resolution, the cell counts of both input
// streams combined.
func (s *QuantileSketch) Merge(o *QuantileSketch) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		// Adopt o's state, reusing s's cell array when it is big enough
		// (a larger grid just covers extra empty cells past o's range).
		cells := s.cells
		*s = *o
		if len(cells) < len(o.cells) {
			cells = make([]uint64, len(o.cells))
		} else {
			for i := range cells {
				cells[i] = 0
			}
		}
		copy(cells, o.cells)
		s.cells = cells
		return
	}
	oLo, oHi, ok := o.occupied()
	if !ok {
		return // inconsistent (n>0 with no counts); nothing to fold
	}
	if x := o.min; x < s.min {
		s.min = x
	}
	if x := o.max; x > s.max {
		s.max = x
	}
	for s.wLog < o.wLog {
		s.grow()
	}
	d := s.wLog - o.wLog
	s.cover(shiftIdx(oLo, d), shiftIdx(oHi, d))
	d = s.wLog - o.wLog
	for i, c := range o.cells {
		if c == 0 {
			continue
		}
		s.cells[shiftIdx(o.baseIdx+int64(i), d)-s.baseIdx] += c
	}
	s.n += o.n
}

// shiftIdx coarsens a global cell index by d doublings (floor semantics).
func shiftIdx(g int64, d int) int64 { return g >> uint(d) }

// Quantile returns an estimate of the empirical q-quantile (nearest-rank,
// like Samples.Quantile) within one cell width of the exact value:
// the midpoint of the cell holding the rank-⌈q·n⌉ sample, clamped to the
// observed [Min, Max]. NaN for an empty sketch.
func (s *QuantileSketch) Quantile(q float64) float64 {
	if s.n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	rank := int64(math.Ceil(q * float64(s.n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.cells {
		cum += int64(c)
		if cum >= rank {
			w := math.Ldexp(1, s.wLog)
			v := (float64(s.baseIdx+int64(i)) + 0.5) * w
			if v < s.min {
				v = s.min
			}
			if v > s.max {
				v = s.max
			}
			return v
		}
	}
	return s.max // unreachable: counts sum to n
}

// Clone returns an independent deep copy of the sketch.
func (s *QuantileSketch) Clone() *QuantileSketch {
	c := *s
	c.cells = append([]uint64(nil), s.cells...)
	return &c
}

// rankCell returns the global index of the cell holding the rank-th
// smallest sample (1-based rank in [1, n]).
func (s *QuantileSketch) rankCell(rank int64) int64 {
	var cum int64
	for i, c := range s.cells {
		cum += int64(c)
		if cum >= rank {
			return s.baseIdx + int64(i)
		}
	}
	return s.baseIdx + int64(len(s.cells)) - 1 // unreachable: counts sum to n
}

// QuantileCI returns a confidence interval [lo, hi] for the distribution's
// q-quantile from binomial order statistics: with n samples the number
// below the true quantile is Binomial(n, q), so the sample ranks
// l = ⌊nq − z·√(nq(1−q))⌋ and u = ⌈nq + z·√(nq(1−q))⌉ + 1 bracket it with
// probability ≈ confidence (normal approximation to the binomial). The
// bounds are widened to the outer edges of the cells holding ranks l and u
// (clamped to the observed [Min, Max]), so the sketch's resolution makes
// the interval conservative, never optimistic: hi−lo floors at one cell
// width even as n grows. An error is returned when q or confidence is
// outside (0,1), when the sketch is empty, or when n is too small for the
// requested ranks to exist (l < 1 or u > n) — callers driving a stopping
// rule treat that as "not converged yet".
func (s *QuantileSketch) QuantileCI(q, confidence float64) (lo, hi float64, err error) {
	if !(q > 0 && q < 1) {
		return 0, 0, fmt.Errorf("montecarlo: quantile %v outside (0,1)", q)
	}
	if !(confidence > 0 && confidence < 1) {
		return 0, 0, fmt.Errorf("montecarlo: confidence %v outside (0,1)", confidence)
	}
	if s.n == 0 {
		return 0, 0, fmt.Errorf("montecarlo: QuantileCI on an empty sketch")
	}
	n := float64(s.n)
	z := normalQuantile(0.5 + confidence/2)
	half := z * math.Sqrt(n*q*(1-q))
	lRank := int64(math.Floor(n*q - half))
	uRank := int64(math.Ceil(n*q+half)) + 1
	if lRank < 1 || uRank > s.n {
		return 0, 0, fmt.Errorf("montecarlo: %d samples are too few for a %v-confidence CI of the %v-quantile", s.n, confidence, q)
	}
	w := math.Ldexp(1, s.wLog)
	lo = float64(s.rankCell(lRank)) * w   // left edge of the rank-l cell
	hi = float64(s.rankCell(uRank)+1) * w // right edge of the rank-u cell
	if lo < s.min {
		lo = s.min
	}
	if hi > s.max {
		hi = s.max
	}
	return lo, hi, nil
}

// CDF returns the fraction of samples in cells at or below the cell of x —
// within one cell's mass of the exact empirical CDF. NaN for an empty
// sketch.
func (s *QuantileSketch) CDF(x float64) float64 {
	if s.n == 0 {
		return math.NaN()
	}
	i := s.idx(x)
	if i < s.baseIdx {
		return 0
	}
	if i >= s.baseIdx+int64(len(s.cells)) {
		return 1
	}
	var cum int64
	for j := int64(0); j <= i-s.baseIdx; j++ {
		cum += int64(s.cells[j])
	}
	return float64(cum) / float64(s.n)
}

// RunQuantiles runs the estimator like Run but additionally returns a
// quantile sketch of the makespan distribution built from per-chunk
// sketches merged in chunk order — O(cells) memory per chunk instead of
// RunSamples' 8 bytes per trial plus a full sort, with the same
// worker-count independence: Result and sketch are identical for any
// Workers.
func (e *Estimator) RunQuantiles() (Result, *QuantileSketch, error) {
	return e.RunQuantilesContext(context.Background())
}

// RunQuantilesContext is RunQuantiles with cancellation, honored at
// chunk boundaries exactly like RunContext: a cancelled run returns
// ctx.Err() and neither a Result nor a sketch.
func (e *Estimator) RunQuantilesContext(ctx context.Context) (Result, *QuantileSketch, error) {
	if err := e.fresh(); err != nil {
		return Result{}, nil, err
	}
	if e.cfg.Adaptive() {
		// The adaptive runner always maintains the merged sketch (it may be
		// the stopping statistic, and snapshots must be able to answer
		// later quantile queries), so this is just Run plus the sketch.
		res, snap, err := e.ResumeAdaptiveContext(ctx, nil, nil)
		if err != nil {
			return Result{}, nil, err
		}
		return res, snap.Sketch(), nil
	}
	if e.cfg.LegacySampler {
		// The legacy stream is per-worker; build the sketch from the
		// materialized samples it produces.
		res, samples, err := e.legacyRunSamples()
		if err != nil {
			return Result{}, nil, err
		}
		sk := NewQuantileSketch(DefaultSketchCells)
		for _, x := range samples.sorted {
			sk.Add(x)
		}
		return res, sk, nil
	}
	accs := make([]Welford, e.numChunks())
	sketches := make([]*QuantileSketch, e.numChunks())
	err := e.runChunks(ctx, func(c int64, t int, x float64) {
		accs[c].Add(x)
		if sketches[c] == nil {
			sketches[c] = NewQuantileSketch(DefaultSketchCells)
		}
		sketches[c].Add(x)
	})
	if err != nil {
		return Result{}, nil, err
	}
	total := NewQuantileSketch(DefaultSketchCells)
	var acc Welford
	for i := range accs {
		acc.Merge(accs[i])
		if sketches[i] != nil {
			total.Merge(sketches[i])
		}
	}
	return resultFrom(acc), total, nil
}
