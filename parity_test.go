package makespan

// Parity tests: the frozen CSR path must reproduce the legacy
// slice-of-slices algorithms across every estimator and graph family. The
// reference implementations below are the pre-refactor sweeps, kept
// verbatim over the public Graph adjacency API; the package code now runs
// on dag.Frozen, and the two must agree bit for bit (deterministic
// estimators) or within the joint confidence interval (Monte Carlo).

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/distribution"
	"repro/internal/failure"
	"repro/internal/linalg"
	"repro/internal/montecarlo"
	"repro/internal/normal"
	"repro/internal/sched"
)

func parityGraphs(t *testing.T) map[string]*dag.Graph {
	t.Helper()
	out := map[string]*dag.Graph{}
	chol, err := linalg.Cholesky(6, linalg.KernelTimes{})
	if err != nil {
		t.Fatal(err)
	}
	out["cholesky6"] = chol
	lu, err := linalg.LU(6, linalg.KernelTimes{})
	if err != nil {
		t.Fatal(err)
	}
	out["lu6"] = lu
	qr, err := linalg.QR(5, linalg.KernelTimes{})
	if err != nil {
		t.Fatal(err)
	}
	out["qr5"] = qr
	out["wavefront6"] = dag.Wavefront(6, 1.2)
	fft, err := dag.FFT(16, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	out["fft16"] = fft
	rng := rand.New(rand.NewSource(23))
	layered, err := dag.LayeredRandom(dag.RandomConfig{Tasks: 40, EdgeProb: 0.45, MaxLayerWidth: 6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	out["layered40"] = layered
	return out
}

func parityModel(t *testing.T, g *dag.Graph) failure.Model {
	t.Helper()
	m, err := failure.FromPfail(0.01, g.MeanWeight())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// --- legacy reference implementations (slice-of-slices) ---

func refMakespan(g *dag.Graph, weights []float64) float64 {
	order, _ := g.TopoOrder()
	comp := make([]float64, g.NumTasks())
	best := 0.0
	for _, v := range order {
		start := 0.0
		for _, p := range g.Pred(v) {
			if comp[p] > start {
				start = comp[p]
			}
		}
		comp[v] = start + weights[v]
		if comp[v] > best {
			best = comp[v]
		}
	}
	return best
}

func refHeadsTails(g *dag.Graph) (heads, tails []float64) {
	order, _ := g.TopoOrder()
	n := g.NumTasks()
	heads = make([]float64, n)
	tails = make([]float64, n)
	for _, v := range order {
		start := 0.0
		for _, p := range g.Pred(v) {
			if heads[p] > start {
				start = heads[p]
			}
		}
		heads[v] = start + g.Weight(v)
	}
	for k := n - 1; k >= 0; k-- {
		v := order[k]
		t := 0.0
		for _, s := range g.Succ(v) {
			if tails[s] > t {
				t = tails[s]
			}
		}
		tails[v] = t + g.Weight(v)
	}
	return heads, tails
}

func refTaskNormal(a float64, m failure.Model) distribution.Normal {
	p := m.PSuccess(a)
	return distribution.Normal{Mu: a * (2 - p), Sigma2: a * a * p * (1 - p)}
}

func refSculli(g *dag.Graph, m failure.Model) float64 {
	order, _ := g.TopoOrder()
	comp := make([]distribution.Normal, g.NumTasks())
	var final distribution.Normal
	have := false
	for _, v := range order {
		var start distribution.Normal
		for k, p := range g.Pred(v) {
			if k == 0 {
				start = comp[p]
			} else {
				start = distribution.ClarkMax(start, comp[p], 0)
			}
		}
		comp[v] = start.Add(refTaskNormal(g.Weight(v), m))
		if g.OutDegree(v) == 0 {
			if !have {
				final, have = comp[v], true
			} else {
				final = distribution.ClarkMax(final, comp[v], 0)
			}
		}
	}
	return final.Mu
}

func refCorLCA(g *dag.Graph, m failure.Model) float64 {
	order, _ := g.TopoOrder()
	n := g.NumTasks()
	comp := make([]distribution.Normal, n)
	parent := make([]int, n)
	depth := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	lcaVar := func(u, v int) float64 {
		for u != v {
			if u == -1 || v == -1 {
				return 0
			}
			if depth[u] >= depth[v] {
				u = parent[u]
			} else {
				v = parent[v]
			}
		}
		if u == -1 {
			return 0
		}
		return comp[u].Sigma2
	}
	rho := func(u, v int) float64 {
		su, sv := comp[u].Sigma(), comp[v].Sigma()
		if su == 0 || sv == 0 {
			return 0
		}
		r := lcaVar(u, v) / (su * sv)
		if r > 1 {
			r = 1
		} else if r < -1 {
			r = -1
		}
		return r
	}
	var final distribution.Normal
	finalRep := -1
	for _, v := range order {
		var start distribution.Normal
		rep := -1
		for k, p := range g.Pred(v) {
			if k == 0 {
				start, rep = comp[p], p
				continue
			}
			start = distribution.ClarkMax(start, comp[p], rho(rep, p))
			if comp[p].Mu > comp[rep].Mu {
				rep = p
			}
		}
		comp[v] = start.Add(refTaskNormal(g.Weight(v), m))
		parent[v] = rep
		if rep >= 0 {
			depth[v] = depth[rep] + 1
		}
		if g.OutDegree(v) == 0 {
			if finalRep == -1 {
				final, finalRep = comp[v], v
			} else {
				final = distribution.ClarkMax(final, comp[v], rho(finalRep, v))
				if comp[v].Mu > comp[finalRep].Mu {
					finalRep = v
				}
			}
		}
	}
	return final.Mu
}

func refSweepUpper(g *dag.Graph, m failure.Model, maxAtoms int) float64 {
	if maxAtoms == 0 {
		maxAtoms = 64
	}
	order, _ := g.TopoOrder()
	capd := func(d distribution.Discrete) distribution.Discrete {
		if maxAtoms > 0 {
			return d.Rediscretize(maxAtoms)
		}
		return d
	}
	comp := make([]distribution.Discrete, g.NumTasks())
	var final distribution.Discrete
	for _, v := range order {
		var start distribution.Discrete
		for k, p := range g.Pred(v) {
			if k == 0 {
				start = comp[p]
			} else {
				start = capd(start.MaxInd(comp[p]))
			}
		}
		x, err := distribution.TwoState(g.Weight(v), m.PSuccess(g.Weight(v)))
		if err != nil {
			panic(err)
		}
		if start.IsZero() {
			comp[v] = x
		} else {
			comp[v] = capd(start.Add(x))
		}
		if g.OutDegree(v) == 0 {
			if final.IsZero() {
				final = comp[v]
			} else {
				final = capd(final.MaxInd(comp[v]))
			}
		}
	}
	if final.IsZero() {
		return 0
	}
	return final.Mean()
}

func refUpwardRanks(g *dag.Graph, plat sched.Platform, weights []float64) []float64 {
	order, _ := g.TopoOrder()
	if weights == nil {
		weights = g.Weights()
	}
	mean := 0.0
	for _, s := range plat.Speeds {
		mean += s
	}
	mean /= float64(len(plat.Speeds))
	rank := make([]float64, g.NumTasks())
	for k := len(order) - 1; k >= 0; k-- {
		v := order[k]
		best := 0.0
		for _, s := range g.Succ(v) {
			if c := plat.Comm + rank[s]; c > best {
				best = c
			}
		}
		rank[v] = weights[v]/mean + best
	}
	return rank
}

// --- the parity assertions ---

func TestParityPathQuantities(t *testing.T) {
	for name, g := range parityGraphs(t) {
		pe, err := dag.NewPathEvaluator(g)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := pe.Makespan(), refMakespan(g, g.Weights()); got != want {
			t.Fatalf("%s: makespan %v != legacy %v", name, got, want)
		}
		wantH, wantT := refHeadsTails(g)
		gotH, gotT := pe.Heads(), pe.Tails()
		for i := range wantH {
			if gotH[i] != wantH[i] || gotT[i] != wantT[i] {
				t.Fatalf("%s: head/tail mismatch at task %d", name, i)
			}
		}
		// Perturbed weight vectors through the hot path.
		rng := rand.New(rand.NewSource(int64(len(name))))
		w := g.Weights()
		for trial := 0; trial < 10; trial++ {
			for i := range w {
				w[i] = g.Weight(i) * (1 + rng.Float64())
			}
			if got, want := pe.MakespanWith(w), refMakespan(g, w); got != want {
				t.Fatalf("%s: perturbed makespan %v != legacy %v", name, got, want)
			}
		}
	}
}

func TestParityFirstOrder(t *testing.T) {
	for name, g := range parityGraphs(t) {
		m := parityModel(t, g)
		fast, err := core.FirstOrder(g, m)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := core.FirstOrderNaive(g, m)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(fast.Estimate-naive.Estimate) / naive.Estimate; rel > 1e-12 {
			t.Fatalf("%s: FirstOrder %v vs naive %v (rel %v)", name, fast.Estimate, naive.Estimate, rel)
		}
		if fast.FailureFree != naive.FailureFree {
			t.Fatalf("%s: d(G) mismatch", name)
		}
	}
}

func TestParityNormal(t *testing.T) {
	for name, g := range parityGraphs(t) {
		m := parityModel(t, g)
		sc, err := normal.Sculli(g, m)
		if err != nil {
			t.Fatal(err)
		}
		if want := refSculli(g, m); sc.Estimate != want {
			t.Fatalf("%s: Sculli %v != legacy %v", name, sc.Estimate, want)
		}
		cl, err := normal.CorLCA(g, m)
		if err != nil {
			t.Fatal(err)
		}
		if want := refCorLCA(g, m); cl.Estimate != want {
			t.Fatalf("%s: CorLCA %v != legacy %v", name, cl.Estimate, want)
		}
	}
}

func TestParityBounds(t *testing.T) {
	for name, g := range parityGraphs(t) {
		m := parityModel(t, g)
		hi, err := bounds.SweepUpper(g, m, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want := refSweepUpper(g, m, 0); hi != want {
			t.Fatalf("%s: SweepUpper %v != legacy %v", name, hi, want)
		}
		lo, err := bounds.JensenLower(g, m)
		if err != nil {
			t.Fatal(err)
		}
		if lo > hi {
			t.Fatalf("%s: bracket inverted [%v, %v]", name, lo, hi)
		}
	}
}

func TestParitySched(t *testing.T) {
	plat := sched.Platform{Speeds: []float64{1, 1.5, 2}, Comm: 0.05}
	for name, g := range parityGraphs(t) {
		m := parityModel(t, g)
		for _, w := range [][]float64{nil, sched.FailureAwareWeights(g, m)} {
			got, err := sched.UpwardRanks(g, plat, w)
			if err != nil {
				t.Fatal(err)
			}
			want := refUpwardRanks(g, plat, w)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: rank(%d) %v != legacy %v", name, i, got[i], want[i])
				}
			}
			s, err := sched.HEFT(g, plat, w)
			if err != nil {
				t.Fatal(err)
			}
			// The schedule must respect precedence and report a consistent
			// makespan (the placement loop is unchanged; ranks drive it).
			maxFinish := 0.0
			for v := 0; v < g.NumTasks(); v++ {
				if s.Finish[v] > maxFinish {
					maxFinish = s.Finish[v]
				}
				for _, p := range g.Pred(v) {
					if s.Start[v] < s.Finish[p]-1e-12 {
						t.Fatalf("%s: task %d starts before predecessor %d finishes", name, v, p)
					}
				}
			}
			if s.Makespan != maxFinish {
				t.Fatalf("%s: makespan %v != max finish %v", name, s.Makespan, maxFinish)
			}
		}
	}
}

// Monte Carlo: the fused sampler must agree with the legacy v1 stream
// within the joint 95% confidence interval, in both modes, and the
// second-order/bottom-level consumers of the frozen path must stay inside
// the analytic bracket.
func TestParityMonteCarloAgainstLegacy(t *testing.T) {
	for _, tc := range []struct {
		name string
		mode montecarlo.Mode
	}{
		{"full", montecarlo.FullReexecution},
		{"single", montecarlo.SingleRetry},
	} {
		g, err := linalg.LU(6, linalg.KernelTimes{})
		if err != nil {
			t.Fatal(err)
		}
		m := parityModel(t, g)
		fused, err := montecarlo.Estimate(g, m, montecarlo.Config{Trials: 60000, Seed: 9, Mode: tc.mode})
		if err != nil {
			t.Fatal(err)
		}
		legacy, err := montecarlo.Estimate(g, m, montecarlo.Config{Trials: 60000, Seed: 9, Mode: tc.mode, LegacySampler: true})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fused.Mean-legacy.Mean) > fused.CI95+legacy.CI95 {
			t.Fatalf("%s: fused %v vs legacy %v beyond joint CI (%v, %v)",
				tc.name, fused.Mean, legacy.Mean, fused.CI95, legacy.CI95)
		}
	}
}

func TestParitySecondOrderAndBottomLevels(t *testing.T) {
	for name, g := range parityGraphs(t) {
		m := parityModel(t, g)
		so, err := core.SecondOrder(g, m)
		if err != nil {
			t.Fatal(err)
		}
		fo, err := core.FirstOrder(g, m)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(so.FirstOrder-fo.Estimate) / fo.Estimate; rel > 1e-12 {
			t.Fatalf("%s: SecondOrder's first-order term %v != FirstOrder %v", name, so.FirstOrder, fo.Estimate)
		}
		if so.FailureFree != fo.FailureFree {
			t.Fatalf("%s: d(G) mismatch", name)
		}
		ebl, err := core.ExpectedBottomLevels(g, m)
		if err != nil {
			t.Fatal(err)
		}
		_, tails := refHeadsTails(g)
		for i := range ebl {
			if ebl[i] < tails[i]-1e-12 {
				t.Fatalf("%s: expected bottom level %v below deterministic tail %v", name, ebl[i], tails[i])
			}
		}
	}
}
