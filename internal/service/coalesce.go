package service

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/montecarlo"
	"repro/internal/schedmc"
)

// This file implements cross-request Monte Carlo coalescing: concurrent
// requests that would run the same trial stream share one kernel run.
//
// Adaptive requests coalesce on (graph entry, schedule?, policy, procs,
// λ, mode, seed) — deliberately NOT on (tolerance, target, confidence):
// the trial stream is chunk-deterministic and target-agnostic, so one
// in-flight run can serve every stopping rule, releasing each waiter as
// soon as the shared prefix satisfies *its* rule. Because the stopping
// point is a prefix of the same stream a solo run would consume, a
// waiter's response is byte-identical to the run it would have done
// alone. The converged snapshot is retained as a "snap" artifact in
// the store (keyed by the entry's graph plus this file's adaptiveKey)
// so later requests (same or looser tolerance) are answered without
// any trials, and tighter ones extend it instead of restarting; the
// store's Put gives replacement delta accounting and eviction under
// the shared byte budget for free.
//
// Fixed-budget requests use a conventional singleflight keyed by the
// full run identity (including trials and whether a sketch is needed):
// followers arriving while the leader computes share its result.
//
// Lifetime and cancellation: each kernel runs on a goroutine the flight
// itself owns, under a flight context derived from Background — never
// from any one requester's context. Every participant (the creator
// included) registers as a waiter and counts one unit of interest; a
// participant whose request context dies detaches, and only when the
// last participant has detached is the flight context cancelled, so a
// cancelled creator hands the run off to the surviving waiters instead
// of failing their requests. A request that joins a flight just as its
// last interest lapses may be handed the dying flight's cancellation;
// it retries (its own context is live) and leads a fresh run — the
// cancellation of strangers is never surfaced to a live request.
//
// Lock order: Entry.mu → adaptiveSlot.mu → inflightRun.mu. Snapshot
// store access (which takes the resolver lock, possibly then
// Registry.mu via graph eviction) nests under adaptiveSlot.mu.

// adaptiveRunner abstracts the two adaptive kernels the service
// coalesces over: the unbounded-processor estimator and the
// frozen-schedule estimator (which delegates to it). Each request binds
// its own runner (its tolerance/target/confidence); the shared run only
// needs the creator's.
type adaptiveRunner interface {
	ResumeAdaptiveContext(ctx context.Context, prev *montecarlo.Snapshot, progress func(*montecarlo.Snapshot) bool) (montecarlo.Result, *montecarlo.Snapshot, error)
	SnapshotConverged(snap *montecarlo.Snapshot) bool
	SnapshotResult(snap *montecarlo.Snapshot) (montecarlo.Result, error)
}

// adaptiveKey identifies one shareable adaptive trial stream of an
// entry. sched=false keys the unbounded-processor engine (policy/procs
// zero); sched=true keys a frozen schedule.
type adaptiveKey struct {
	sched  bool
	policy schedmc.Policy
	procs  int
	lambda float64
	mode   montecarlo.Mode
	seed   uint64
}

// adaptiveSlot is the per-key coalescing state: the in-flight run, if
// any. The retained prefix snapshot itself lives in the artifact store
// (Entry.snapshot / Entry.putSnapshot); the slot lock serializes the
// lookup-decide-replace sequence around it.
type adaptiveSlot struct {
	mu  sync.Mutex
	run *inflightRun
}

// inflightRun is one flight-owned adaptive kernel run: the waiters
// joined to it plus the interest count that keeps its context alive.
type inflightRun struct {
	cancel context.CancelFunc // cancels the flight context

	mu       sync.Mutex
	interest int // participants not yet released or detached
	waiters  []*adaptiveWaiter
}

type adaptiveWaiter struct {
	satisfied func(*montecarlo.Snapshot) bool
	ch        chan waiterResult // buffered(1): deliver never blocks
}

// waiterResult is one released waiter's view of the run. Mid-run
// releases carry a snapshot clone satisfying the waiter's rule; the
// final release additionally carries the flight's own Result so the
// creator returns exactly what a solo run would have (its cap binding
// even when its rule was not met).
type waiterResult struct {
	snap  *montecarlo.Snapshot
	res   montecarlo.Result
	final bool
	err   error
}

// join registers a waiter and its unit of interest.
func (r *inflightRun) join(w *adaptiveWaiter) {
	r.mu.Lock()
	r.interest++
	r.waiters = append(r.waiters, w)
	r.mu.Unlock()
}

// detach withdraws a cancelled participant. The last detach cancels the
// flight context — the kernel aborts at its next chunk boundary. A
// participant that was concurrently released by deliver is not found
// and nothing is withdrawn (its interest was already released).
func (r *inflightRun) detach(w *adaptiveWaiter) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, x := range r.waiters {
		if x != w {
			continue
		}
		last := len(r.waiters) - 1
		r.waiters[i] = r.waiters[last]
		r.waiters[last] = nil
		r.waiters = r.waiters[:last]
		r.interest--
		if r.interest == 0 {
			r.cancel()
		}
		return
	}
}

// deliver hands the current prefix to every waiter it satisfies (all of
// them when final) and reports whether none remain. Each released
// waiter gets its own clone — the run keeps mutating cur.
func (r *inflightRun) deliver(cur *montecarlo.Snapshot, final bool, res montecarlo.Result, err error) (empty bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	kept := r.waiters[:0]
	for _, w := range r.waiters {
		if final || w.satisfied(cur) {
			wr := waiterResult{res: res, final: final, err: err}
			if err == nil && cur != nil {
				wr.snap = cur.Clone()
			}
			w.ch <- wr
			r.interest--
		} else {
			kept = append(kept, w)
		}
	}
	// Zero the tail so dropped waiter pointers don't pin their channels.
	for i := len(kept); i < len(r.waiters); i++ {
		r.waiters[i] = nil
	}
	r.waiters = kept
	return len(kept) == 0
}

// adaptiveSlotFor returns (creating if needed) the entry's coalescing
// slot for key.
func (e *Entry) adaptiveSlotFor(key adaptiveKey) *adaptiveSlot {
	e.mu.Lock()
	defer e.mu.Unlock()
	slot := e.adapts[key]
	if slot == nil {
		slot = &adaptiveSlot{}
		e.adapts[key] = slot
	}
	return slot
}

// coalesceAdaptive answers one adaptive request through the entry's
// shared trial stream for key. Three outcomes per loop iteration: the
// stored snapshot already satisfies this request's rule (serve it, zero
// trials); a run is in flight (join it, wake when the shared prefix
// satisfies us); or create a run, extending the stored snapshot. A
// joiner released by a run that ended (its creator's cap) before this
// request's rule was met loops back — its own MaxTrials bounds the
// retry, so the loop terminates. A cancelled request detaches without
// disturbing the flight; a flight killed by everyone else's lapsed
// interest is retried, never surfaced.
func (s *Server) coalesceAdaptive(ctx context.Context, e *Entry, key adaptiveKey, runner adaptiveRunner) (montecarlo.Result, *montecarlo.Snapshot, error) {
	slot := e.adaptiveSlotFor(key)
	for {
		if err := ctx.Err(); err != nil {
			return montecarlo.Result{}, nil, err
		}
		slot.mu.Lock()
		if snap, ok := e.snapshot(key, true); ok && runner.SnapshotConverged(snap) {
			slot.mu.Unlock()
			res, err := runner.SnapshotResult(snap)
			return res, snap, err
		}
		w := &adaptiveWaiter{satisfied: runner.SnapshotConverged, ch: make(chan waiterResult, 1)}
		run := slot.run
		created := run == nil
		if created {
			// Lead: register our own waiter and interest before the kernel
			// goroutine exists, so the flight can never observe an empty
			// waiter set between creation and first join.
			fctx, cancel := context.WithCancel(context.Background())
			run = &inflightRun{cancel: cancel, interest: 1, waiters: []*adaptiveWaiter{w}}
			slot.run = run
			prev, _ := e.snapshot(key, false)
			slot.mu.Unlock()
			e.kernelRuns.Add(1)
			go s.runAdaptiveFlight(fctx, e, slot, key, run, runner, prev)
		} else {
			run.join(w)
			slot.mu.Unlock()
		}
		select {
		case wr := <-w.ch:
			switch {
			case wr.err != nil:
				if isCtxErr(wr.err) && ctx.Err() == nil {
					continue // strangers' lapsed interest killed the flight; retry
				}
				return montecarlo.Result{}, nil, wr.err
			case wr.final && created:
				// The creator returns the flight's own result — its cap
				// binds exactly as in a solo run even when its rule was
				// not met.
				return wr.res, wr.snap, nil
			case runner.SnapshotConverged(wr.snap):
				res, err := runner.SnapshotResult(wr.snap)
				return res, wr.snap, err
			default:
				continue // released at someone else's final, rule unmet: retry
			}
		case <-ctx.Done():
			run.detach(w)
			return montecarlo.Result{}, nil, ctx.Err()
		}
	}
}

// runAdaptiveFlight is the flight-owned kernel goroutine: it extends
// prev under the flight context, releasing waiters as the shared prefix
// satisfies them, then retains the grown snapshot and sweeps the
// stragglers. It runs under the compute gate like any other kernel.
func (s *Server) runAdaptiveFlight(fctx context.Context, e *Entry, slot *adaptiveSlot, key adaptiveKey, run *inflightRun, runner adaptiveRunner, prev *montecarlo.Snapshot) {
	defer run.cancel() // release the flight context's resources
	var res montecarlo.Result
	var snap *montecarlo.Snapshot
	err := s.heavy(fctx, func() error {
		var rerr error
		res, snap, rerr = runner.ResumeAdaptiveContext(fctx, prev, func(cur *montecarlo.Snapshot) bool {
			// Release every waiter the prefix satisfies first, then apply
			// the creator's own rule; stop only when both the creator and
			// all joined waiters are done.
			return run.deliver(cur, false, montecarlo.Result{}, nil) && runner.SnapshotConverged(cur)
		})
		return rerr
	})

	slot.mu.Lock()
	slot.run = nil
	if err == nil {
		if old, ok := e.snapshot(key, false); !ok || snap.Chunks() > old.Chunks() {
			e.putSnapshot(key, snap)
		}
	}
	// Sweep waiters that joined after the run's last progress call; they
	// re-evaluate against the final snapshot and retry if it still falls
	// short of their rule. Joins serialize on slot.mu, so none are lost.
	run.deliver(snap, true, res, err)
	slot.mu.Unlock()
}

// fixedKey identifies one shareable fixed-budget run. sketch is part of
// the identity so a mean-only request never pays for (or waits on) a
// quantile sketch it didn't ask for.
type fixedKey struct {
	sched  bool
	policy schedmc.Policy
	procs  int
	lambda float64
	mode   montecarlo.Mode
	seed   uint64
	trials int
	sketch bool
}

// fixedFlight is one in-flight fixed-budget run; followers block on
// done and then read the leader's fields (written before close).
// Interest counting mirrors inflightRun: the kernel runs on a
// flight-owned goroutine and its context dies only when the last
// participant has detached.
type fixedFlight struct {
	done    chan struct{}
	cancel  context.CancelFunc
	joiners atomic.Int64 // followers waiting; test-hook observability

	mu       sync.Mutex
	interest int

	res montecarlo.Result
	sk  *montecarlo.QuantileSketch
	err error
}

// detach withdraws a cancelled participant; the last one out cancels
// the flight context.
func (f *fixedFlight) detach() {
	f.mu.Lock()
	f.interest--
	if f.interest == 0 {
		f.cancel()
	}
	f.mu.Unlock()
}

// testHookFixedLeader, when set, runs on the creator after its flight
// is registered and before the kernel starts. The under-load test uses
// it to hold the kernel until all followers have joined.
var testHookFixedLeader func(f *fixedFlight)

// coalesceFixed deduplicates concurrent identical fixed-budget runs:
// the first request creates the flight and requests arriving while it
// is in flight share its result. The flight is removed before done
// closes, so a request arriving after completion runs fresh — fixed
// runs are cheap to rerun and, unlike adaptive snapshots, not worth
// retaining. kernel receives the flight context and must abort promptly
// when it dies (all participants detached).
func (s *Server) coalesceFixed(ctx context.Context, e *Entry, key fixedKey, kernel func(context.Context) (montecarlo.Result, *montecarlo.QuantileSketch, error)) (montecarlo.Result, *montecarlo.QuantileSketch, error) {
	for {
		if err := ctx.Err(); err != nil {
			return montecarlo.Result{}, nil, err
		}
		e.mu.Lock()
		f := e.fixed[key]
		if f == nil {
			fctx, cancel := context.WithCancel(context.Background())
			f = &fixedFlight{done: make(chan struct{}), cancel: cancel, interest: 1}
			e.fixed[key] = f
			e.mu.Unlock()
			if h := testHookFixedLeader; h != nil {
				h(f)
			}
			e.kernelRuns.Add(1)
			go func() {
				f.res, f.sk, f.err = kernel(fctx)
				e.mu.Lock()
				delete(e.fixed, key)
				e.mu.Unlock()
				close(f.done) // publishes res/sk/err
				cancel()
			}()
		} else {
			f.joiners.Add(1)
			f.mu.Lock()
			f.interest++
			f.mu.Unlock()
			e.mu.Unlock()
		}
		select {
		case <-f.done:
			if f.err != nil && isCtxErr(f.err) && ctx.Err() == nil {
				continue // strangers' lapsed interest killed the flight; retry
			}
			return f.res, f.sk, f.err
		case <-ctx.Done():
			f.detach()
			return montecarlo.Result{}, nil, ctx.Err()
		}
	}
}
