package linalg

import (
	"fmt"

	"repro/internal/dag"
)

// QR returns the task DAG of a tiled QR factorization (flat-tree
// tall-skinny reduction) of a k×k tile matrix. Task names follow the
// paper's Figure 3: GEQRT_j, TSQRT_i_j (i>j, chained down the panel),
// UNMQR_j_l (l>j), TSMQR_i_l_j (trailing update of tile (i,l) at step j).
//
// Task counts match LU — QRTaskCount(k) = LUTaskCount(k) — but the QR
// kernels entail about twice the flops of their LU counterparts, as the
// paper notes in §V-B.
func QR(k int, kt KernelTimes) (*dag.Graph, error) {
	if k < 1 {
		return nil, fmt.Errorf("linalg: QR tile count k must be >= 1, got %d", k)
	}
	if kt == (KernelTimes{}) {
		kt = DefaultKernelTimes()
	}
	g := dag.New(QRTaskCount(k))
	geqrt := make([]int, k)
	tsqrt := make(map[[2]int]int) // (i,j), i>j
	unmqr := make(map[[2]int]int) // (j,l), l>j
	tsmqr := make(map[[3]int]int) // (i,l,j), i>j, l>j
	for j := 0; j < k; j++ {
		geqrt[j] = g.MustAddTask(fmt.Sprintf("GEQRT_%d", j), kt[GEQRT])
		if j > 0 {
			g.MustAddEdge(tsmqr[[3]int{j, j, j - 1}], geqrt[j])
		}
		for i := j + 1; i < k; i++ {
			id := g.MustAddTask(fmt.Sprintf("TSQRT_%d_%d", i, j), kt[TSQRT])
			tsqrt[[2]int{i, j}] = id
			if i == j+1 {
				g.MustAddEdge(geqrt[j], id)
			} else {
				g.MustAddEdge(tsqrt[[2]int{i - 1, j}], id)
			}
			if j > 0 {
				g.MustAddEdge(tsmqr[[3]int{i, j, j - 1}], id)
			}
		}
		for l := j + 1; l < k; l++ {
			id := g.MustAddTask(fmt.Sprintf("UNMQR_%d_%d", j, l), kt[UNMQR])
			unmqr[[2]int{j, l}] = id
			g.MustAddEdge(geqrt[j], id)
			if j > 0 {
				g.MustAddEdge(tsmqr[[3]int{j, l, j - 1}], id)
			}
		}
		for i := j + 1; i < k; i++ {
			for l := j + 1; l < k; l++ {
				id := g.MustAddTask(fmt.Sprintf("TSMQR_%d_%d_%d", i, l, j), kt[TSMQR])
				tsmqr[[3]int{i, l, j}] = id
				g.MustAddEdge(tsqrt[[2]int{i, j}], id)
				if i == j+1 {
					g.MustAddEdge(unmqr[[2]int{j, l}], id)
				} else {
					g.MustAddEdge(tsmqr[[3]int{i - 1, l, j}], id)
				}
				if j > 0 {
					g.MustAddEdge(tsmqr[[3]int{i, l, j - 1}], id)
				}
			}
		}
	}
	return g, nil
}

// QRTaskCount returns the number of tasks of QR(k), equal to LUTaskCount(k).
func QRTaskCount(k int) int { return LUTaskCount(k) }

// Factorization names a generator for CLI and experiment plumbing.
type Factorization string

// The three application classes of the paper's evaluation.
const (
	FactCholesky Factorization = "cholesky"
	FactLU       Factorization = "lu"
	FactQR       Factorization = "qr"
)

// Generate builds the named factorization DAG.
func Generate(f Factorization, k int, kt KernelTimes) (*dag.Graph, error) {
	switch f {
	case FactCholesky:
		return Cholesky(k, kt)
	case FactLU:
		return LU(k, kt)
	case FactQR:
		return QR(k, kt)
	default:
		return nil, fmt.Errorf("linalg: unknown factorization %q", f)
	}
}

// All lists the three factorizations in the paper's presentation order.
func All() []Factorization {
	return []Factorization{FactCholesky, FactLU, FactQR}
}
