#!/usr/bin/env sh
# load.sh — the tail-latency load profile behind BENCH_load.json: build
# the real daemon and cmd/loadgen, start makespand the way production
# runs it (access log on, no admission cap — the gate demands zero
# sheds), drive a fixed-RPS open-loop profile of warm estimates and
# write the latency report plus a final /metrics scrape into the output
# directory. CI's load job runs this into a fresh directory and gates it
# with `go run ./scripts/benchcheck -load-only` against the committed
# BENCH_load.json; refresh the committed baseline by running it at the
# repo root: scripts/load.sh .
#
# Usage: scripts/load.sh [outdir] [port]   (default out-load, 17421)
set -eu

cd "$(dirname "$0")/.."
out="${1:-out-load}"
port="${2:-17421}"
base="http://127.0.0.1:$port"
rps="${LOADGEN_RPS:-40}"
duration="${LOADGEN_DURATION:-8s}"
mkdir -p "$out"
bin="$(mktemp -d)"
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$bin"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$bin/" ./cmd/makespand ./cmd/loadgen

echo "== start makespand on $base"
"$bin/makespand" -addr "127.0.0.1:$port" -workers 2 2>"$out/makespand.log" &
pid=$!

echo "== drive $rps rps for $duration"
# loadgen waits for /healthz itself, warms the caches, then launches the
# measured open-loop window and scrapes /metrics on its way out.
"$bin/loadgen" -base "$base" -rps "$rps" -duration "$duration" \
    -out "$out/BENCH_load.json" -metrics-out "$out/metrics.prom"

kill "$pid"
wait "$pid" 2>/dev/null || true
pid=""

echo "== report"
jq '{requests, ok, shed, errors, achieved_rps, latency_ms}' "$out/BENCH_load.json"
