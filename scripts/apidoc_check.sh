#!/usr/bin/env sh
# apidoc_check.sh — execute every `sh` code block of docs/API.md against
# a live makespand and require (a) exit status 0 and (b) valid JSON on
# stdout, so the documented examples cannot drift from the service. The
# cluster section's blocks run against a live two-replica makespan-lb,
# exported as $LB (with $REPLICA naming one registered replica). Runs
# in CI right after scripts/e2e_smoke.sh (the e2e-smoke job).
#
# Usage: scripts/apidoc_check.sh [port]   (default 17421; the cluster
#        uses port+1..port+3)
set -eu

cd "$(dirname "$0")/.."
port="${1:-17421}"
doc="docs/API.md"
bin="$(mktemp -d)"
work="$(mktemp -d)"
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$bin" "$work"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$bin/" ./cmd/makespand ./cmd/makespan-lb

# wait_ready <url> <log> <pid>: poll with a hard deadline, but fail
# fast — with the log — the moment the process dies, instead of sitting
# out the budget.
wait_ready() {
    wr_i=0
    until curl -fsS --max-time 2 "$1" >/dev/null 2>&1; do
        if ! kill -0 "$3" 2>/dev/null; then
            echo "$1 process died during startup; log:" >&2
            cat "$2" >&2
            exit 1
        fi
        wr_i=$((wr_i + 1))
        if [ "$wr_i" -ge 300 ]; then
            echo "$1 did not come up within 30s; log:" >&2
            cat "$2" >&2
            exit 1
        fi
        sleep 0.1
    done
}

echo "== start makespand on 127.0.0.1:$port"
"$bin/makespand" -addr "127.0.0.1:$port" -workers 2 2>"$work/makespand.log" &
pids="$!"
wait_ready "http://127.0.0.1:$port/healthz" "$work/makespand.log" "$!"

echo "== start 2 replicas + makespan-lb on 127.0.0.1:$((port + 3))"
replicas=""
for i in 1 2; do
    rport=$((port + i))
    "$bin/makespand" -addr "127.0.0.1:$rport" -workers 2 2>"$work/replica$i.log" &
    pids="$pids $!"
    wait_ready "http://127.0.0.1:$rport/healthz" "$work/replica$i.log" "$!"
    replicas="$replicas,http://127.0.0.1:$rport"
done
replicas="${replicas#,}"
"$bin/makespan-lb" -addr "127.0.0.1:$((port + 3))" -replicas "$replicas" \
    2>"$work/lb.log" &
pids="$pids $!"
wait_ready "http://127.0.0.1:$((port + 3))/healthz" "$work/lb.log" "$!"

# Split the doc into one file per ```sh fenced block.
awk -v dir="$work" '
/^```sh$/ { inblock = 1; n++; file = dir "/block" sprintf("%03d", n) ".sh"; next }
/^```$/   { inblock = 0; next }
inblock   { print > file }
' "$doc"

count=0
failures=0
for block in "$work"/block*.sh; do
    [ -e "$block" ] || continue
    count=$((count + 1))
    name="$(basename "$block")"
    echo "== $doc $name"
    sed -n 'p' "$block"
    if ! BASE="http://127.0.0.1:$port" \
        LB="http://127.0.0.1:$((port + 3))" \
        REPLICA="http://127.0.0.1:$((port + 1))" \
        sh -eu "$block" >"$work/out.json" 2>"$work/err.txt"; then
        echo "FAIL $name: example exited non-zero" >&2
        cat "$work/err.txt" >&2
        failures=$((failures + 1))
        continue
    fi
    if ! jq -e . "$work/out.json" >/dev/null 2>&1; then
        echo "FAIL $name: example did not print valid JSON:" >&2
        cat "$work/out.json" >&2
        failures=$((failures + 1))
    fi
done

if [ "$count" -eq 0 ]; then
    echo "apidoc check: no sh blocks found in $doc (doc restructured?)" >&2
    exit 1
fi
if [ "$failures" -gt 0 ]; then
    echo "apidoc check: $failures of $count documented examples failed" >&2
    exit 1
fi
echo "apidoc check: all $count documented examples executed against the live service"
