package sched

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/dag"
)

// WriteGantt renders a schedule as an ASCII Gantt chart, one row per
// processor, time flowing right, width columns wide. Tasks are drawn with
// the first letter of their name (or '#'); idle time is '.'. Intended for
// eyeballing schedsim output and for documentation.
func WriteGantt(w io.Writer, g *dag.Graph, s Schedule, width int) error {
	if width < 10 {
		width = 80
	}
	if s.Makespan <= 0 {
		_, err := fmt.Fprintln(w, "(empty schedule)")
		return err
	}
	nprocs := 0
	for _, p := range s.Proc {
		if p+1 > nprocs {
			nprocs = p + 1
		}
	}
	scale := float64(width) / s.Makespan
	rows := make([][]byte, nprocs)
	for p := range rows {
		rows[p] = []byte(strings.Repeat(".", width))
	}
	// Draw longer tasks first so 1-column tasks don't vanish under them.
	order := make([]int, g.NumTasks())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da := s.Finish[order[a]] - s.Start[order[a]]
		db := s.Finish[order[b]] - s.Start[order[b]]
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	for _, i := range order {
		p := s.Proc[i]
		if p < 0 {
			continue
		}
		lo := int(s.Start[i] * scale)
		hi := int(s.Finish[i] * scale)
		if hi >= width {
			hi = width - 1
		}
		if hi < lo {
			hi = lo
		}
		mark := byte('#')
		if name := g.Name(i); name != "" {
			mark = name[0]
		}
		for c := lo; c <= hi && c < width; c++ {
			rows[p][c] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "t=0%s t=%.4g\n", strings.Repeat(" ", width-len(fmt.Sprintf("t=%.4g", s.Makespan))-3), s.Makespan)
	for p, row := range rows {
		fmt.Fprintf(&b, "P%-3d|%s|\n", p, string(row))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteScheduleCSV dumps a schedule as CSV rows
// (task,name,proc,start,finish,attempts) for external plotting.
func WriteScheduleCSV(w io.Writer, g *dag.Graph, s Schedule) error {
	var b strings.Builder
	b.WriteString("task,name,proc,start,finish,attempts\n")
	for i := 0; i < g.NumTasks(); i++ {
		fmt.Fprintf(&b, "%d,%s,%d,%.9g,%.9g,%d\n",
			i, g.Name(i), s.Proc[i], s.Start[i], s.Finish[i], s.Attempts[i])
	}
	_, err := io.WriteString(w, b.String())
	return err
}
