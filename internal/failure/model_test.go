package failure

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewValidation(t *testing.T) {
	if _, err := New(-1); err == nil {
		t.Error("negative λ accepted")
	}
	if _, err := New(math.Inf(1)); err == nil {
		t.Error("infinite λ accepted")
	}
	m, err := New(0.5)
	if err != nil || m.Lambda != 0.5 {
		t.Errorf("New: %v %v", m, err)
	}
}

func TestFromPfailRoundTrip(t *testing.T) {
	// Paper §V-C: ā = 0.15 s, pfail = 0.01 gives λ ≈ 0.067, MTBF ≈ 14.9 s.
	m, err := FromPfail(0.01, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(m.Lambda, 0.067, 0.001) {
		t.Errorf("λ = %v want ≈0.067 (paper)", m.Lambda)
	}
	if !almostEq(m.MTBF(), 14.9, 0.1) {
		t.Errorf("MTBF = %v want ≈14.9 s (paper)", m.MTBF())
	}
	if !almostEq(m.PFail(0.15), 0.01, 1e-12) {
		t.Errorf("round trip PFail = %v", m.PFail(0.15))
	}
	// Individual MTBF for 100,000 processors ≈ 17.27 days (paper).
	days := m.IndividualMTBF(100000) / 86400
	if !almostEq(days, 17.27, 0.05) {
		t.Errorf("individual MTBF = %v days want ≈17.27 (paper)", days)
	}
}

func TestFromPfailPaperOtherValues(t *testing.T) {
	// pfail = 0.001 -> individual MTBF ≈ 174 days; 0.0001 -> ≈ 4.7 years.
	m, _ := FromPfail(0.001, 0.15)
	days := m.IndividualMTBF(100000) / 86400
	if !almostEq(days, 174, 1) {
		t.Errorf("pfail=1e-3: %v days want ≈174", days)
	}
	m, _ = FromPfail(0.0001, 0.15)
	years := m.IndividualMTBF(100000) / (365 * 86400)
	if !almostEq(years, 4.75, 0.1) {
		t.Errorf("pfail=1e-4: %v years want ≈4.7", years)
	}
}

func TestFromPfailValidation(t *testing.T) {
	if _, err := FromPfail(1, 0.15); err == nil {
		t.Error("pfail=1 accepted")
	}
	if _, err := FromPfail(-0.1, 0.15); err == nil {
		t.Error("negative pfail accepted")
	}
	if _, err := FromPfail(0.01, 0); err == nil {
		t.Error("zero mean weight accepted")
	}
	m, err := FromPfail(0, 0.15)
	if err != nil || m.Lambda != 0 {
		t.Errorf("pfail=0: %v %v", m, err)
	}
	if !math.IsInf(m.MTBF(), 1) {
		t.Errorf("MTBF at λ=0 should be +Inf")
	}
}

func TestProbabilities(t *testing.T) {
	m, _ := New(0.1)
	if !almostEq(m.PFail(2)+m.PSuccess(2), 1, 1e-15) {
		t.Error("PFail + PSuccess != 1")
	}
	if m.PFail(0) != 0 || m.PSuccess(0) != 1 {
		t.Error("zero-weight task should never fail")
	}
	// First-order: PFail(a) ≈ λa for small λa.
	if !almostEq(m.PFail(0.001), 0.1*0.001, 1e-8) {
		t.Errorf("small PFail = %v", m.PFail(0.001))
	}
}

func TestExpectedExecutionsAndTime(t *testing.T) {
	m, _ := New(0.5)
	// Geometric expectation: 1/p_success = e^{λa}.
	if !almostEq(m.ExpectedExecutions(2), math.E, 1e-12) {
		t.Errorf("E[attempts] = %v want e", m.ExpectedExecutions(2))
	}
	if !almostEq(m.ExpectedTime(2), 2*math.E, 1e-12) {
		t.Errorf("E[time] = %v", m.ExpectedTime(2))
	}
	z, _ := New(0)
	if z.ExpectedExecutions(5) != 1 || z.ExpectedTime(5) != 5 {
		t.Error("λ=0 should be failure-free")
	}
}

func TestIndividualMTBFEdge(t *testing.T) {
	m, _ := New(0.1)
	if !math.IsNaN(m.IndividualMTBF(0)) {
		t.Error("nProcs=0 should be NaN")
	}
}

// Property: PFail is increasing in a and bounded by [0,1).
func TestQuickPFailMonotone(t *testing.T) {
	m, _ := New(0.3)
	f := func(x, y uint16) bool {
		a, b := float64(x)/1000, float64(y)/1000
		if a > b {
			a, b = b, a
		}
		pa, pb := m.PFail(a), m.PFail(b)
		return pa >= 0 && pb < 1 && pa <= pb+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDVFSValidation(t *testing.T) {
	if _, err := NewDVFS(-1, 1, 1, 2); err == nil {
		t.Error("negative λ0 accepted")
	}
	if _, err := NewDVFS(1, 0, 1, 2); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := NewDVFS(1, 1, 2, 2); err == nil {
		t.Error("smin=smax accepted")
	}
	if _, err := NewDVFS(1, 1, 0, 2); err == nil {
		t.Error("smin=0 accepted")
	}
}

func TestDVFSRate(t *testing.T) {
	v, err := NewDVFS(1e-6, 3, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// At smax: λ0. At smin: λ0·10^d.
	if !almostEq(v.Rate(2), 1e-6, 1e-18) {
		t.Errorf("rate(smax) = %v", v.Rate(2))
	}
	if !almostEq(v.Rate(1), 1e-3, 1e-12) {
		t.Errorf("rate(smin) = %v want λ0·10³", v.Rate(1))
	}
	// Midpoint: λ0·10^{d/2}.
	if !almostEq(v.Rate(1.5), 1e-6*math.Pow(10, 1.5), 1e-12) {
		t.Errorf("rate(mid) = %v", v.Rate(1.5))
	}
	// Clamping.
	if v.Rate(0.5) != v.Rate(1) || v.Rate(3) != v.Rate(2) {
		t.Error("rate not clamped")
	}
	if v.ModelAt(2).Lambda != v.Rate(2) {
		t.Error("ModelAt inconsistent")
	}
}

func TestDVFSTimeAndPower(t *testing.T) {
	v, _ := NewDVFS(1e-6, 3, 1, 2)
	if !almostEq(v.TimeAt(1, 1), 2, 1e-15) {
		t.Errorf("TimeAt(smin) = %v want 2 (half speed)", v.TimeAt(1, 1))
	}
	if !almostEq(v.TimeAt(1, 2), 1, 1e-15) {
		t.Errorf("TimeAt(smax) = %v want 1", v.TimeAt(1, 2))
	}
	if v.TimeAt(1, 5) != 1 {
		t.Error("TimeAt not clamped above")
	}
	if v.TimeAt(1, 0.1) != 2 {
		t.Error("TimeAt not clamped below")
	}
	if v.DynamicPower(2) != 8 {
		t.Errorf("power = %v", v.DynamicPower(2))
	}
}
