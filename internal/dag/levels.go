package dag

// TopLevels returns tl(i) for every task, following the paper's definition:
// tl(i) = 0 for source tasks, otherwise max over predecessors j of
// tl(j) + a_j. tl(i) is the earliest start time of i with unlimited
// processors and no failures.
func TopLevels(g *Graph) ([]float64, error) {
	f, err := Freeze(g)
	if err != nil {
		return nil, err
	}
	return topLevelsFrozen(f), nil
}

// topLevelsFrozen is TopLevels on a prepared snapshot; the result is
// task-ID indexed.
func topLevelsFrozen(f *Frozen) []float64 {
	n := f.NumTasks()
	tl := make([]float64, n)
	for k := 0; k < n; k++ {
		best := 0.0
		for _, p := range f.PredTopo(k) {
			if c := tl[p] + f.wTopo[p]; c > best {
				best = c
			}
		}
		tl[k] = best
	}
	if f.identity {
		return tl // topo order == ID order: tl is already ID-indexed
	}
	return f.Scatter(make([]float64, n), tl)
}

// BottomLevels returns bl(i) for every task, following the paper's
// definition: bl(i) = 0 for sink tasks, otherwise max over successors j of
// a_j + bl(j). Note this definition excludes a_i itself; the classic
// CP-scheduling priority a_i + bl(i) is obtained by adding the task weight.
func BottomLevels(g *Graph) ([]float64, error) {
	f, err := Freeze(g)
	if err != nil {
		return nil, err
	}
	return bottomLevelsFrozen(f), nil
}

// bottomLevelsFrozen is BottomLevels on a prepared snapshot; the result is
// task-ID indexed.
func bottomLevelsFrozen(f *Frozen) []float64 {
	n := f.NumTasks()
	bl := make([]float64, n)
	for k := n - 1; k >= 0; k-- {
		best := 0.0
		for _, s := range f.SuccTopo(k) {
			if c := f.wTopo[s] + bl[s]; c > best {
				best = c
			}
		}
		bl[k] = best
	}
	if f.identity {
		return bl // topo order == ID order: bl is already ID-indexed
	}
	return f.Scatter(make([]float64, n), bl)
}

// CriticalPathLengths returns, for every task i, the length of the longest
// path passing through i: head(i) + tail(i) - a_i = tl(i) + a_i + bl(i).
// One snapshot serves both sweeps.
func CriticalPathLengths(g *Graph) ([]float64, error) {
	f, err := Freeze(g)
	if err != nil {
		return nil, err
	}
	tl := topLevelsFrozen(f)
	bl := bottomLevelsFrozen(f)
	through := make([]float64, g.NumTasks())
	for i := range through {
		through[i] = tl[i] + g.weights[i] + bl[i]
	}
	return through, nil
}
