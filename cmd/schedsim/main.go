// Command schedsim estimates expected makespans of list schedules on a
// bounded number of processors under silent errors — the extension the
// paper's conclusion proposes. It freezes a CP or failure-aware list
// schedule into its schedule-DAG form (internal/schedmc) and runs the
// fused Monte Carlo engine over it: the same chunked, bit-reproducible
// sampling the unbounded-processor estimators use, tens of times faster
// than the per-trial re-scheduling loop it replaces (which remains
// available behind -dynamic for A/B comparisons).
//
// Usage:
//
//	schedsim -kind lu -k 8 -procs 4 -pfail 0.01 -trials 2000
//	schedsim -kind lu -k 8 -procs 4 -tolerance 0.05
//	schedsim -kind lu -k 16 -procs 8 -quantiles 0.5,0.99 -format json
//	schedsim -kind qr -k 6 -procs 4 -replication serial -verify-frac 0.05
//
// With -format json the document is emitted through internal/report —
// the exact writer the makespand service uses, so output is
// byte-identical to POST /v1/schedule for the same inputs (timing fields
// aside). All flags are validated up front: nonsensical processor
// counts, negative trial counts, unknown kinds or policies are
// configuration errors before any work starts, matching the
// montecarlo.Config convention.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/artifact"
	"repro/internal/dag"
	"repro/internal/failure"
	"repro/internal/linalg"
	"repro/internal/montecarlo"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/schedmc"
)

// options collects the CLI flags; run is kept flag-free so tests drive
// it directly.
type options struct {
	kind        string
	k           int
	procs       int
	pfail       float64
	lambda      float64
	trials      int
	seed        uint64
	policies    string
	quantiles   string
	workers     int
	format      string
	gantt       bool
	dynamic     bool
	verifyFrac  float64
	verifyFixed float64
	replication string

	tolerance      float64
	targetQuantile float64
	confidence     float64
	maxTrials      int
}

func main() {
	var o options
	flag.StringVar(&o.kind, "kind", "lu", "generator: cholesky, lu or qr")
	flag.IntVar(&o.k, "k", 8, "tile count")
	flag.IntVar(&o.procs, "procs", 4, "processor count (>= 1)")
	flag.Float64Var(&o.pfail, "pfail", 0.01, "failure probability of an average task")
	flag.Float64Var(&o.lambda, "lambda", 0, "error rate λ (overrides -pfail when > 0)")
	flag.IntVar(&o.trials, "trials", 2000, "simulation trials per policy (0 = engine default 300,000)")
	flag.Uint64Var(&o.seed, "seed", 42, "simulation seed")
	flag.StringVar(&o.policies, "policies", "both", "priority policies: cp, fo or both")
	flag.StringVar(&o.quantiles, "quantiles", "", "comma list of makespan quantiles in (0,1), e.g. 0.5,0.99")
	flag.IntVar(&o.workers, "workers", 0, "Monte Carlo workers (0 = GOMAXPROCS; results never depend on it)")
	flag.StringVar(&o.format, "format", "text", "output format: text or json")
	flag.BoolVar(&o.gantt, "gantt", false, "draw an ASCII Gantt chart of each failure-free schedule")
	flag.BoolVar(&o.dynamic, "dynamic", false, "use the pre-PR5 per-trial re-scheduling loop (slow; for A/B comparison)")
	flag.Float64Var(&o.verifyFrac, "verify-frac", 0, "verification cost as a fraction of each task's weight")
	flag.Float64Var(&o.verifyFixed, "verify-fixed", 0, "fixed verification cost added to each non-zero task")
	flag.StringVar(&o.replication, "replication", "", "task replication: parallel or serial (default none)")
	flag.Float64Var(&o.tolerance, "tolerance", 0, "adaptive MC: stop when the CI half-width is within this (excludes -trials)")
	flag.Float64Var(&o.targetQuantile, "target-quantile", 0, "adaptive MC: watch this quantile's CI instead of the mean's")
	flag.Float64Var(&o.confidence, "confidence", 0, "adaptive MC: stopping confidence level (default 0.95)")
	flag.IntVar(&o.maxTrials, "max-trials", 0, "adaptive MC: trial cap (default 300000, rounded up to whole chunks)")
	flag.Parse()
	if o.tolerance != 0 {
		// -trials has a nonzero default; only an explicit -trials should
		// conflict with -tolerance (the engine rejects the combination).
		explicit := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "trials" {
				explicit = true
			}
		})
		if !explicit {
			o.trials = 0
		}
	}
	// Ctrl-C / SIGTERM cancels the run context: artifact builds stop
	// between rules and the simulation aborts at the next chunk boundary,
	// so an interrupted run never prints a partial document.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "schedsim:", err)
		if errors.Is(err, context.Canceled) {
			os.Exit(130)
		}
		os.Exit(1)
	}
}

// validate rejects nonsensical configurations before any graph work,
// mirroring montecarlo.Config: zero means "default" where a default
// exists, negatives and unknown enum values are errors.
func validate(o options) (policies []schedmc.Policy, qs []float64, over schedmc.Overheads, err error) {
	if o.format != "text" && o.format != "json" {
		return nil, nil, over, fmt.Errorf("unknown -format %q (text or json)", o.format)
	}
	known := false
	for _, f := range linalg.All() {
		if string(f) == o.kind {
			known = true
		}
	}
	if !known {
		return nil, nil, over, fmt.Errorf("unknown -kind %q (cholesky, lu or qr)", o.kind)
	}
	if o.k < 1 {
		return nil, nil, over, fmt.Errorf("-k must be >= 1, got %d", o.k)
	}
	if o.procs < 1 {
		return nil, nil, over, fmt.Errorf("-procs must be >= 1, got %d", o.procs)
	}
	if o.trials < 0 {
		return nil, nil, over, fmt.Errorf("negative -trials %d (0 selects the default %d)", o.trials, montecarlo.DefaultTrials)
	}
	if o.workers < 0 {
		return nil, nil, over, fmt.Errorf("negative -workers %d (0 selects GOMAXPROCS)", o.workers)
	}
	if o.pfail < 0 || o.pfail >= 1 || math.IsNaN(o.pfail) {
		return nil, nil, over, fmt.Errorf("-pfail %g outside [0,1)", o.pfail)
	}
	if o.lambda < 0 || math.IsNaN(o.lambda) || math.IsInf(o.lambda, 0) {
		return nil, nil, over, fmt.Errorf("bad -lambda %g (must be a finite rate >= 0)", o.lambda)
	}
	policies, err = schedmc.ParsePolicies(o.policies)
	if err != nil {
		return nil, nil, over, err
	}
	qs, err = report.ParseQuantiles(o.quantiles)
	if err != nil {
		return nil, nil, over, err
	}
	if len(qs) > 0 && o.dynamic {
		return nil, nil, over, fmt.Errorf("-quantiles needs the frozen-schedule engine (drop -dynamic)")
	}
	if o.tolerance != 0 && o.dynamic {
		return nil, nil, over, fmt.Errorf("-tolerance needs the frozen-schedule engine (drop -dynamic)")
	}
	if o.gantt && o.format == "json" {
		return nil, nil, over, fmt.Errorf("-gantt draws on the text output; drop it or use -format text")
	}
	over.Verification = failure.Verification{Fraction: o.verifyFrac, Fixed: o.verifyFixed}
	if err := over.Verification.Validate(); err != nil {
		return nil, nil, over, err
	}
	switch o.replication {
	case "":
	case "parallel":
		over.Replication = &failure.Replication{}
	case "serial":
		over.Replication = &failure.Replication{Serial: true}
	default:
		return nil, nil, over, fmt.Errorf("unknown -replication %q (parallel or serial)", o.replication)
	}
	return policies, qs, over, nil
}

func run(ctx context.Context, o options, out io.Writer) error {
	policies, qs, over, err := validate(o)
	if err != nil {
		return err
	}
	g, err := linalg.Generate(linalg.Factorization(o.kind), o.k, linalg.KernelTimes{})
	if err != nil {
		return err
	}
	model, err := buildModel(g, o.pfail, o.lambda)
	if err != nil {
		return err
	}
	tg, tm, err := over.Apply(g, model)
	if err != nil {
		return err
	}
	// One process-local artifact store: the frozen schedule-DAG estimator
	// per (policy, procs, λ) is the same store rule the makespand service
	// resolves, so both front ends share one construction path (the e2e
	// suite pins their outputs byte-identical).
	st := artifact.NewStore(0)
	ga, _, err := st.GraphContext(ctx, tg)
	if err != nil {
		return err
	}
	tg, d := ga.G, ga.D0
	doc := report.Schedule{
		Graph: report.GraphInfo{Tasks: tg.NumTasks(), Edges: tg.NumEdges(), MeanWeight: tg.MeanWeight()},
		Model: report.ModelInfo{
			Lambda:        tm.Lambda,
			PFailMeanTask: tm.PFail(tg.MeanWeight()),
			MTBF:          tm.MTBF(),
		},
		Procs:        o.procs,
		CriticalPath: d,
	}
	var gantts []sched.Schedule
	for _, pol := range policies {
		p, base, err := runPolicy(ctx, st, ga, pol, tm, qs, o)
		if err != nil {
			return err
		}
		doc.Policies = append(doc.Policies, p)
		gantts = append(gantts, base)
	}
	if o.format == "json" {
		return report.WriteScheduleJSON(out, doc)
	}
	if err := report.WriteScheduleText(out, doc); err != nil {
		return err
	}
	if o.gantt {
		for i, p := range doc.Policies {
			fmt.Fprintf(out, "\n%s:\n", p.Label)
			if err := sched.WriteGantt(out, tg, gantts[i], 100); err != nil {
				return err
			}
		}
	}
	return nil
}

// runPolicy evaluates one policy: resolve the frozen schedule and its
// compiled estimator through the artifact store, estimate the expected
// makespan (frozen engine by default, the dynamic re-scheduling loop
// behind -dynamic) and assemble the report entry.
func runPolicy(ctx context.Context, st *artifact.Store, ga *artifact.Graph, pol schedmc.Policy, model failure.Model, qs []float64, o options) (report.SchedulePolicy, sched.Schedule, error) {
	warm, err := st.ScheduleEstimatorContext(ctx, ga, pol, o.procs, model)
	if err != nil {
		return report.SchedulePolicy{}, sched.Schedule{}, err
	}
	fs := warm.Schedule()
	p := report.SchedulePolicy{
		Policy:      string(pol),
		Label:       pol.Label(),
		FailureFree: fs.Makespan,
		Efficiency:  fs.Efficiency(),
		ChainEdges:  fs.ChainEdges,
	}
	if o.dynamic {
		prio, err := pol.Priorities(ga.G, model)
		if err != nil {
			return p, fs.Base, err
		}
		trials := o.trials
		if trials == 0 {
			trials = montecarlo.DefaultTrials
		}
		t0 := time.Now()
		res, err := sched.ExpectedMakespan(ga.G, prio, o.procs, model, trials, o.seed)
		if err != nil {
			return p, fs.Base, err
		}
		p.MonteCarlo = &report.MonteCarloInfo{
			Mean:   res.Mean,
			CI95:   res.CI95,
			StdDev: res.StdDev,
			StdErr: res.StdErr,
			Min:    res.Min,
			Max:    res.Max,
			Trials: res.Trials,
			Seed:   o.seed,
			Time:   time.Since(t0),
		}
		return p, fs.Base, nil
	}
	e, err := warm.WithConfig(schedmc.Config{
		Trials:         o.trials,
		Seed:           o.seed,
		Workers:        o.workers,
		Tolerance:      o.tolerance,
		TargetQuantile: o.targetQuantile,
		Confidence:     o.confidence,
		MaxTrials:      o.maxTrials,
	})
	if err != nil {
		return p, fs.Base, err
	}
	t0 := time.Now()
	var mc *report.MonteCarloInfo
	if o.tolerance != 0 {
		res, snap, err := e.ResumeAdaptiveContext(ctx, nil, nil)
		if err != nil {
			return p, fs.Base, err
		}
		mc = report.MonteCarloInfoFrom(res, o.seed)
		mc.Adaptive = report.AdaptiveInfoFrom(res, o.tolerance, o.targetQuantile, o.confidence)
		if len(qs) > 0 {
			sketch := snap.Sketch()
			for _, q := range qs {
				mc.Quantiles = append(mc.Quantiles, report.QuantileValue{Q: q, Value: sketch.Quantile(q)})
			}
		}
	} else if len(qs) > 0 {
		res, sketch, err := e.RunQuantilesContext(ctx)
		if err != nil {
			return p, fs.Base, err
		}
		mc = report.MonteCarloInfoFrom(res, o.seed)
		for _, q := range qs {
			mc.Quantiles = append(mc.Quantiles, report.QuantileValue{Q: q, Value: sketch.Quantile(q)})
		}
	} else {
		res, err := e.RunContext(ctx)
		if err != nil {
			return p, fs.Base, err
		}
		mc = report.MonteCarloInfoFrom(res, o.seed)
	}
	mc.Time = time.Since(t0)
	p.MonteCarlo = mc
	return p, fs.Base, nil
}

func buildModel(g *dag.Graph, pfail, lambda float64) (failure.Model, error) {
	if lambda > 0 {
		return failure.New(lambda)
	}
	return failure.FromPfail(pfail, g.MeanWeight())
}
