package artifact

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// testReq builds a Request whose value is "v:"+key and whose build
// count, when counter is non-nil, is observable.
func testReq(kind, key string, size int64, counter *atomic.Int64, deps ...Request) Request {
	return Request{
		Kind: kind,
		Key:  Key(key),
		Deps: deps,
		Build: func(_ context.Context, vals []any) (any, int64, error) {
			if counter != nil {
				counter.Add(1)
			}
			return "v:" + key, size, nil
		},
	}
}

// TestResolveSingleflight drives many goroutines at a small overlapping
// key set and checks each key was built exactly once, with every caller
// receiving the identical value (run under -race in CI).
func TestResolveSingleflight(t *testing.T) {
	r := NewResolver(0, nil)
	const keys = 4
	const goroutines = 32
	const rounds = 25
	counters := make([]atomic.Int64, keys)
	var wg sync.WaitGroup
	values := make([][]any, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := (g + i) % keys
				v, err := r.Resolve(testReq("t", fmt.Sprintf("t/%d", k), 10, &counters[k]))
				if err != nil {
					t.Errorf("resolve t/%d: %v", k, err)
					return
				}
				values[g] = append(values[g], v)
			}
		}(g)
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		if n := counters[k].Load(); n != 1 {
			t.Errorf("key t/%d built %d times, want exactly 1", k, n)
		}
	}
	for g := range values {
		for i, v := range values[g] {
			k := (g + i) % keys
			if want := fmt.Sprintf("v:t/%d", k); v != want {
				t.Fatalf("goroutine %d round %d: got %v, want %q", g, i, v, want)
			}
		}
	}
	st := r.Stats()["t"]
	if st.Misses != keys {
		t.Errorf("misses = %d, want %d", st.Misses, keys)
	}
	if st.Hits != goroutines*rounds-keys {
		t.Errorf("hits = %d, want %d", st.Hits, goroutines*rounds-keys)
	}
	if st.Resident != keys || st.ResidentBytes != keys*10 {
		t.Errorf("resident = %d/%dB, want %d/%dB", st.Resident, st.ResidentBytes, keys, keys*10)
	}
}

// TestResolveDepsShared checks dependency-aware resolution: two
// dependents of one base artifact share a single base build, and the
// base's stats see one miss plus one hit.
func TestResolveDepsShared(t *testing.T) {
	r := NewResolver(0, nil)
	var baseBuilds atomic.Int64
	base := testReq("graph", "graph/x", 100, &baseBuilds)
	for i := 0; i < 2; i++ {
		key := fmt.Sprintf("plan/x/%d", i)
		v, err := r.Resolve(Request{
			Kind: "plan",
			Key:  Key(key),
			Deps: []Request{base},
			Build: func(_ context.Context, vals []any) (any, int64, error) {
				if vals[0] != "v:graph/x" {
					return nil, 0, fmt.Errorf("dep value %v", vals[0])
				}
				return "p" + key, 10, nil
			},
		})
		if err != nil {
			t.Fatalf("resolve %s: %v", key, err)
		}
		if v != "p"+key {
			t.Fatalf("got %v", v)
		}
	}
	if n := baseBuilds.Load(); n != 1 {
		t.Fatalf("base built %d times, want 1", n)
	}
	gs := r.Stats()["graph"]
	if gs.Misses != 1 || gs.Hits != 1 {
		t.Errorf("graph stats hits=%d misses=%d, want 1/1", gs.Hits, gs.Misses)
	}
	deps := r.DependentsOf("graph/x")
	if len(deps) != 2 {
		t.Errorf("DependentsOf = %v, want 2 plans", deps)
	}
}

// TestBuildErrorNotCached checks a failed build is retried: the error
// reaches the caller (and any coalesced waiters) but the next request
// runs the build again.
func TestBuildErrorNotCached(t *testing.T) {
	r := NewResolver(0, nil)
	boom := errors.New("boom")
	var builds atomic.Int64
	req := Request{
		Kind: "t",
		Key:  "t/flaky",
		Build: func(_ context.Context, vals []any) (any, int64, error) {
			if builds.Add(1) == 1 {
				return nil, 0, boom
			}
			return "ok", 5, nil
		},
	}
	if _, err := r.Resolve(req); !errors.Is(err, boom) {
		t.Fatalf("first resolve: %v, want boom", err)
	}
	v, err := r.Resolve(req)
	if err != nil || v != "ok" {
		t.Fatalf("second resolve: %v, %v", v, err)
	}
	if builds.Load() != 2 {
		t.Fatalf("builds = %d, want 2", builds.Load())
	}
	if used := r.UsedBytes(); used != 5 {
		t.Fatalf("used = %d, want 5 (failed build must not be accounted)", used)
	}
}

// TestMidBuildEvictionImpossible holds a build in flight while budget
// pressure from concurrent inserts forces evictions, and checks neither
// the building entry nor its pinned dependency can be evicted: the
// build completes, lands resident, and its dependency was never rebuilt.
func TestMidBuildEvictionImpossible(t *testing.T) {
	r := NewResolver(100, nil)
	var baseBuilds atomic.Int64
	base := testReq("graph", "graph/base", 40, &baseBuilds)

	started := make(chan struct{})
	release := make(chan struct{})
	slow := Request{
		Kind: "mc",
		Key:  "mc/slow",
		Deps: []Request{base},
		Build: func(_ context.Context, vals []any) (any, int64, error) {
			close(started)
			<-release
			return "slow-value", 30, nil
		},
	}
	done := make(chan error, 1)
	go func() {
		v, err := r.Resolve(slow)
		if err == nil && v != "slow-value" {
			err = fmt.Errorf("got %v", v)
		}
		done <- err
	}()
	<-started

	// Budget is 100; base (40) is resident and pinned by the in-flight
	// build. Churn 20 fillers of 50 bytes through the cache: every
	// insert overflows the budget and must evict — always a cold
	// filler, never the pinned base.
	for i := 0; i < 20; i++ {
		if _, err := r.Resolve(testReq("fill", fmt.Sprintf("fill/%d", i), 50, nil)); err != nil {
			t.Fatalf("filler %d: %v", i, err)
		}
	}
	if _, ok := r.Peek("graph/base"); !ok {
		t.Fatal("pinned dependency graph/base was evicted mid-build")
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("slow build: %v", err)
	}
	if baseBuilds.Load() != 1 {
		t.Fatalf("base built %d times, want 1", baseBuilds.Load())
	}
	if _, ok := r.Peek("mc/slow"); !ok {
		t.Fatal("completed build not resident")
	}
	fills := r.Stats()["fill"]
	if fills.Evictions == 0 {
		t.Fatal("expected filler evictions under budget pressure (the test exercised nothing)")
	}
}

// TestPutNeverEvictsOwnEntry grows an entry past the budget via Put and
// checks neither the grown entry nor the dependency it is built on is
// evicted to make room — the transitive keep-protection rule.
func TestPutNeverEvictsOwnEntry(t *testing.T) {
	r := NewResolver(100, nil)
	base := testReq("graph", "graph/g", 60, nil)
	if _, err := r.Resolve(base); err != nil {
		t.Fatal(err)
	}
	snap := Request{Kind: "snap", Key: "snap/g", Deps: []Request{base}}
	r.Put(snap, "small", 10) // used: 70
	r.Put(snap, "grown", 80) // used: 140 > 100, but nothing is evictable
	if v, ok := r.Peek("snap/g"); !ok || v != "grown" {
		t.Fatalf("snapshot after growth: %v, %v", v, ok)
	}
	if _, ok := r.Peek("graph/g"); !ok {
		t.Fatal("Put evicted the graph its own snapshot depends on")
	}
	if used := r.UsedBytes(); used != 140 {
		t.Fatalf("used = %d, want 140 (replacement delta accounting)", used)
	}
	ss := r.Stats()["snap"]
	if ss.Resident != 1 || ss.ResidentBytes != 80 || ss.Misses != 2 {
		t.Errorf("snap stats = %+v, want resident 1, 80B, 2 misses", ss)
	}
}

// TestPutDroppedWhileBuildInFlight checks a Put racing an in-flight
// Resolve build of the same key loses: the build's result wins.
func TestPutDroppedWhileBuildInFlight(t *testing.T) {
	r := NewResolver(0, nil)
	started := make(chan struct{})
	release := make(chan struct{})
	req := Request{
		Kind: "t",
		Key:  "t/k",
		Build: func(_ context.Context, vals []any) (any, int64, error) {
			close(started)
			<-release
			return "built", 10, nil
		},
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := r.Resolve(req); err != nil {
			t.Errorf("resolve: %v", err)
		}
	}()
	<-started
	r.Put(Request{Kind: "t", Key: "t/k"}, "put", 99)
	close(release)
	<-done
	if v, _ := r.Peek("t/k"); v != "built" {
		t.Fatalf("value = %v, want the build's result", v)
	}
	if used := r.UsedBytes(); used != 10 {
		t.Fatalf("used = %d, want 10", used)
	}
}

// TestCascadeEviction checks evicting a base artifact evicts everything
// built on top of it, dependents before dependencies, and that the
// accounting and per-kind eviction counters follow.
func TestCascadeEviction(t *testing.T) {
	var order []string
	r := NewResolver(100, func(kind string, key Key, value any) {
		order = append(order, string(key))
	})
	a := testReq("graph", "graph/a", 40, nil)
	if _, err := r.Resolve(a); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Resolve(testReq("plan", "plan/a", 10, nil, a)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Resolve(testReq("graph", "graph/b", 40, nil)); err != nil {
		t.Fatal(err)
	}
	// used: 90. Inserting 40 more overflows; the LRU cold end is
	// graph/a, which must take plan/a down with it.
	if _, err := r.Resolve(testReq("graph", "graph/c", 40, nil)); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Peek("graph/a"); ok {
		t.Fatal("graph/a should be evicted")
	}
	if _, ok := r.Peek("plan/a"); ok {
		t.Fatal("plan/a should be cascade-evicted with its graph")
	}
	for _, k := range []Key{"graph/b", "graph/c"} {
		if _, ok := r.Peek(k); !ok {
			t.Fatalf("%s should be resident", k)
		}
	}
	if len(order) != 2 || order[0] != "plan/a" || order[1] != "graph/a" {
		t.Fatalf("eviction order = %v, want [plan/a graph/a]", order)
	}
	if used := r.UsedBytes(); used != 80 {
		t.Fatalf("used = %d, want 80", used)
	}
	if ev := r.Stats()["plan"].Evictions; ev != 1 {
		t.Fatalf("plan evictions = %d, want 1", ev)
	}
}

// TestSoleEntryNeverEvicted checks the guard that keeps the last
// resident entry even when it alone overflows the budget.
func TestSoleEntryNeverEvicted(t *testing.T) {
	r := NewResolver(10, nil)
	if _, err := r.Resolve(testReq("graph", "graph/big", 50, nil)); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Peek("graph/big"); !ok {
		t.Fatal("sole entry was evicted; the next request would just rebuild it")
	}
}

// TestLookupPeekStats pins the stats semantics: Lookup counts a hit and
// touches, absence counts nothing, Peek is always silent.
func TestLookupPeekStats(t *testing.T) {
	r := NewResolver(0, nil)
	if _, ok := r.Lookup("snap/none"); ok {
		t.Fatal("lookup of absent key succeeded")
	}
	if len(r.Stats()) != 0 {
		t.Fatalf("absent lookup minted stats: %v", r.Stats())
	}
	r.Put(Request{Kind: "snap", Key: "snap/s"}, "v", 7)
	if _, ok := r.Peek("snap/s"); !ok {
		t.Fatal("peek missed")
	}
	if v, ok := r.Lookup("snap/s"); !ok || v != "v" {
		t.Fatal("lookup missed")
	}
	ss := r.Stats()["snap"]
	if ss.Hits != 1 || ss.Misses != 1 {
		t.Fatalf("snap stats hits=%d misses=%d, want 1/1 (Peek must stay silent)", ss.Hits, ss.Misses)
	}
}

// TestConcurrentChurn hammers a budgeted resolver with overlapping keys
// and dependency chains so builds, coalesced waits, evictions and
// cascades interleave; correctness here is "every caller gets the right
// value" and the race detector staying quiet.
func TestConcurrentChurn(t *testing.T) {
	r := NewResolver(300, nil)
	const goroutines = 16
	const rounds = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := (g*rounds + i*7) % 10
				base := testReq("graph", fmt.Sprintf("graph/%d", k), 40, nil)
				want := fmt.Sprintf("v:graph/%d", k)
				if i%3 == 0 {
					v, err := r.Resolve(base)
					if err != nil || v != want {
						t.Errorf("graph/%d: %v, %v", k, v, err)
						return
					}
					continue
				}
				key := fmt.Sprintf("plan/%d", k)
				v, err := r.Resolve(Request{
					Kind: "plan",
					Key:  Key(key),
					Deps: []Request{base},
					Build: func(_ context.Context, vals []any) (any, int64, error) {
						return fmt.Sprint("p:", vals[0]), 10, nil
					},
				})
				if err != nil || v != "p:"+want {
					t.Errorf("%s: %v, %v", key, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// Evictions run at insert time, and inserts racing pinned builds can
	// leave a transient overshoot; one insert after quiescence must
	// settle the cache back under budget.
	if _, err := r.Resolve(testReq("graph", "graph/drain", 10, nil)); err != nil {
		t.Fatal(err)
	}
	if used, budget := r.UsedBytes(), r.Budget(); used > budget {
		t.Fatalf("used %d above budget %d after quiescence", used, budget)
	}
}
