package artifact

import (
	"testing"

	"repro/internal/failure"
	"repro/internal/linalg"
	"repro/internal/montecarlo"
	"repro/internal/schedmc"
)

// The resolver micro-benchmarks: for each artifact kind, the cold build
// (fresh store, full construction) against the warm hit (same store,
// key lookup plus LRU touch). scripts/bench.sh packages them into
// BENCH_artifact.json; scripts/benchcheck gates the cold/warm estimator
// ratio so a regression that turns warm hits back into rebuilds (or
// makes the hit path accidentally expensive) fails CI.

const benchK = 10 // LU k=10: 1,155 tasks, the sweep benchmarks' graph

func benchGraphModel(b *testing.B) (*Store, *Graph, failure.Model) {
	b.Helper()
	g, err := linalg.Generate(linalg.FactLU, benchK, linalg.KernelTimes{})
	if err != nil {
		b.Fatal(err)
	}
	st := NewStore(0)
	ga, _, err := st.Graph(g)
	if err != nil {
		b.Fatal(err)
	}
	model, err := failure.FromPfail(0.001, ga.G.MeanWeight())
	if err != nil {
		b.Fatal(err)
	}
	return st, ga, model
}

func BenchmarkArtifactGraphCold(b *testing.B) {
	g, err := linalg.Generate(linalg.FactLU, benchK, linalg.KernelTimes{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := NewStore(0).Graph(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkArtifactGraphWarm(b *testing.B) {
	st, ga, _ := benchGraphModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The warm path still pays canonicalization + content hash — the
		// price of addressing by content rather than by reference.
		got, built, err := st.Graph(ga.G)
		if err != nil || built || got != ga {
			b.Fatalf("warm graph: built=%v err=%v", built, err)
		}
	}
}

func BenchmarkArtifactPlanCold(b *testing.B) {
	_, ga, model := benchGraphModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := NewStore(0)
		cold, _, err := st.Graph(ga.G)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := st.Plan(cold, 0, model); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkArtifactPlanWarm(b *testing.B) {
	st, ga, model := benchGraphModel(b)
	if _, err := st.Plan(ga, 0, model); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Plan(ga, 0, model); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkArtifactEstimatorCold(b *testing.B) {
	_, ga, model := benchGraphModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := NewStore(0)
		cold, _, err := st.Graph(ga.G)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := st.Estimator(cold, model, montecarlo.FullReexecution); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkArtifactEstimatorWarm(b *testing.B) {
	st, ga, model := benchGraphModel(b)
	if _, err := st.Estimator(ga, model, montecarlo.FullReexecution); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Estimator(ga, model, montecarlo.FullReexecution); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkArtifactScheduleCold(b *testing.B) {
	_, ga, model := benchGraphModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := NewStore(0)
		cold, _, err := st.Graph(ga.G)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := st.ScheduleEstimator(cold, schedmc.PolicyCP, 8, model); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkArtifactScheduleWarm(b *testing.B) {
	st, ga, model := benchGraphModel(b)
	if _, err := st.ScheduleEstimator(ga, schedmc.PolicyCP, 8, model); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.ScheduleEstimator(ga, schedmc.PolicyCP, 8, model); err != nil {
			b.Fatal(err)
		}
	}
}
