package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/failure"
	"repro/internal/linalg"
	"repro/internal/montecarlo"
	"repro/internal/schedmc"
)

// coalesceFixture builds a server plus a registered LU graph and returns
// everything the coalescing tests need: the server (for KernelRuns), the
// test client, the graph id and a tolerance calibrated so the adaptive
// run converges after a handful of chunks.
func coalesceFixture(t *testing.T) (*Server, *httptest.Server, string, float64) {
	t.Helper()
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	code, body := post(t, ts, "/v1/graphs", `{"kind":"lu","k":6}`)
	if code != http.StatusCreated {
		t.Fatalf("submit: %d %s", code, body)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal([]byte(body), &sub); err != nil {
		t.Fatal(err)
	}
	g, err := linalg.LU(6, linalg.KernelTimes{})
	if err != nil {
		t.Fatal(err)
	}
	model, err := failure.FromPfail(0.05, g.MeanWeight())
	if err != nil {
		t.Fatal(err)
	}
	probe, err := montecarlo.Estimate(g, model, montecarlo.Config{Trials: montecarlo.ChunkTrials, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return s, ts, sub.ID, probe.CI95 / 2
}

func entryFor(t *testing.T, s *Server, id string) *Entry {
	t.Helper()
	e, ok := s.Registry().Get(id)
	if !ok {
		t.Fatalf("graph %s not in registry", id)
	}
	return e
}

// N simultaneous identical adaptive requests must coalesce into exactly
// one kernel run and return byte-identical documents (timing excepted):
// one leader consumes the shared chunk stream, joiners are released at
// their (identical) stopping rule, and late arrivals are answered from
// the stored snapshot.
func TestAdaptiveCoalescingUnderLoad(t *testing.T) {
	s, ts, id, tol := coalesceFixture(t)
	req := fmt.Sprintf(`{"graph_id":%q,"pfail":0.05,"methods":"First Order","tolerance":%g}`, id, tol)

	const n = 8
	bodies := make([]string, n)
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], bodies[i] = post(t, ts, "/v1/estimate", req)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: %d %s", i, codes[i], bodies[i])
		}
		if got, want := normalizeTimes(bodies[i]), normalizeTimes(bodies[0]); got != want {
			t.Fatalf("request %d body differs:\n%s\n%s", i, got, want)
		}
	}
	var doc struct {
		MonteCarlo struct {
			Trials   int `json:"trials"`
			Adaptive struct {
				TrialsRun  int     `json:"trials_run"`
				Converged  bool    `json:"converged"`
				AchievedCI float64 `json:"achieved_ci"`
				Tolerance  float64 `json:"tolerance"`
			} `json:"adaptive"`
		} `json:"monte_carlo"`
	}
	if err := json.Unmarshal([]byte(bodies[0]), &doc); err != nil {
		t.Fatal(err)
	}
	a := doc.MonteCarlo.Adaptive
	if !a.Converged || a.TrialsRun%montecarlo.ChunkTrials != 0 || a.TrialsRun == 0 ||
		a.AchievedCI > tol || a.Tolerance != tol || doc.MonteCarlo.Trials != a.TrialsRun {
		t.Fatalf("adaptive block: %+v", doc.MonteCarlo)
	}
	if runs := entryFor(t, s, id).KernelRuns(); runs != 1 {
		t.Fatalf("%d concurrent identical adaptive requests ran %d kernels, want 1", n, runs)
	}

	// A later identical request is answered from the stored snapshot:
	// zero additional kernel runs, same document.
	code, again := post(t, ts, "/v1/estimate", req)
	if code != http.StatusOK || normalizeTimes(again) != normalizeTimes(bodies[0]) {
		t.Fatalf("snapshot-served request differs: %d\n%s", code, again)
	}
	if runs := entryFor(t, s, id).KernelRuns(); runs != 1 {
		t.Fatalf("snapshot-served request ran a kernel (%d runs)", runs)
	}

	// A tighter tolerance extends the snapshot: exactly one more run,
	// strictly more trials, and the snapshot count stays at one.
	tight := fmt.Sprintf(`{"graph_id":%q,"pfail":0.05,"methods":"First Order","tolerance":%g}`, id, tol/4)
	code, body := post(t, ts, "/v1/estimate", tight)
	if code != http.StatusOK {
		t.Fatalf("tighten: %d %s", code, body)
	}
	var tightDoc struct {
		MonteCarlo struct {
			Adaptive struct {
				TrialsRun int  `json:"trials_run"`
				Converged bool `json:"converged"`
			} `json:"adaptive"`
		} `json:"monte_carlo"`
	}
	if err := json.Unmarshal([]byte(body), &tightDoc); err != nil {
		t.Fatal(err)
	}
	if !tightDoc.MonteCarlo.Adaptive.Converged || tightDoc.MonteCarlo.Adaptive.TrialsRun <= a.TrialsRun {
		t.Fatalf("tighten did not extend: %+v (was %d trials)", tightDoc.MonteCarlo.Adaptive, a.TrialsRun)
	}
	if runs := entryFor(t, s, id).KernelRuns(); runs != 2 {
		t.Fatalf("tighten ran %d kernels total, want 2", runs)
	}
	code, body = get(t, ts, "/v1/graphs/"+id)
	if code != http.StatusOK {
		t.Fatalf("get graph: %d %s", code, body)
	}
	var gs struct {
		Cache struct {
			AdaptiveSnaps int `json:"adaptive_snapshots"`
		} `json:"cache"`
	}
	if err := json.Unmarshal([]byte(body), &gs); err != nil {
		t.Fatal(err)
	}
	if gs.Cache.AdaptiveSnaps != 1 {
		t.Fatalf("adaptive_snapshots = %d, want 1", gs.Cache.AdaptiveSnaps)
	}
}

// Fixed-budget requests singleflight: followers that arrive while the
// leader computes share its result. The test hook holds the leader
// until every follower has joined, so the assertion is timing-free.
func TestFixedCoalescingUnderLoad(t *testing.T) {
	s, ts, id, _ := coalesceFixture(t)
	const n = 6
	testHookFixedLeader = func(f *fixedFlight) {
		deadline := time.Now().Add(10 * time.Second)
		for f.joiners.Load() < n-1 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	defer func() { testHookFixedLeader = nil }()

	req := fmt.Sprintf(`{"graph_id":%q,"pfail":0.05,"methods":"First Order","trials":20000,"quantiles":[0.5,0.9]}`, id)
	bodies := make([]string, n)
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], bodies[i] = post(t, ts, "/v1/estimate", req)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: %d %s", i, codes[i], bodies[i])
		}
		if got, want := normalizeTimes(bodies[i]), normalizeTimes(bodies[0]); got != want {
			t.Fatalf("request %d body differs:\n%s\n%s", i, got, want)
		}
	}
	if runs := entryFor(t, s, id).KernelRuns(); runs != 1 {
		t.Fatalf("%d concurrent identical fixed requests ran %d kernels, want 1", n, runs)
	}
}

// Schedule-endpoint adaptive requests coalesce per (policy, procs, λ,
// seed) stream, exactly like the estimate endpoint.
func TestScheduleAdaptiveCoalescing(t *testing.T) {
	s, ts, id, _ := coalesceFixture(t)
	g, err := linalg.LU(6, linalg.KernelTimes{})
	if err != nil {
		t.Fatal(err)
	}
	model, err := failure.FromPfail(0.05, g.MeanWeight())
	if err != nil {
		t.Fatal(err)
	}
	probe, _, err := schedmc.Estimate(g, schedmc.PolicyCP, 4, model, schedmc.Overheads{},
		schedmc.Config{Trials: montecarlo.ChunkTrials, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	tol := probe.CI95 / 2
	req := fmt.Sprintf(`{"graph_id":%q,"procs":4,"policies":"cp","pfail":0.05,"tolerance":%g}`, id, tol)

	const n = 6
	bodies := make([]string, n)
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], bodies[i] = post(t, ts, "/v1/schedule", req)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: %d %s", i, codes[i], bodies[i])
		}
		if got, want := normalizeTimes(bodies[i]), normalizeTimes(bodies[0]); got != want {
			t.Fatalf("request %d body differs:\n%s\n%s", i, got, want)
		}
	}
	var doc struct {
		Policies []struct {
			MonteCarlo struct {
				Adaptive struct {
					TrialsRun int  `json:"trials_run"`
					Converged bool `json:"converged"`
				} `json:"adaptive"`
			} `json:"monte_carlo"`
		} `json:"policies"`
	}
	if err := json.Unmarshal([]byte(bodies[0]), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Policies) != 1 || !doc.Policies[0].MonteCarlo.Adaptive.Converged ||
		doc.Policies[0].MonteCarlo.Adaptive.TrialsRun%montecarlo.ChunkTrials != 0 {
		t.Fatalf("schedule adaptive block: %s", bodies[0])
	}
	if runs := entryFor(t, s, id).KernelRuns(); runs != 1 {
		t.Fatalf("%d concurrent identical schedule requests ran %d kernels, want 1", n, runs)
	}
}

// The adaptive request knobs validate exactly like the engine config;
// errors surface as 400s, never as silent reinterpretation.
func TestAdaptiveRequestValidation(t *testing.T) {
	_, ts, id, tol := coalesceFixture(t)
	bad := []struct {
		name, path, body string
	}{
		{"trials+tolerance", "/v1/estimate", fmt.Sprintf(`{"graph_id":%q,"trials":1000,"tolerance":0.5}`, id)},
		{"negative tolerance", "/v1/estimate", fmt.Sprintf(`{"graph_id":%q,"tolerance":-1}`, id)},
		{"max_trials alone", "/v1/estimate", fmt.Sprintf(`{"graph_id":%q,"max_trials":1000}`, id)},
		{"target_quantile alone", "/v1/estimate", fmt.Sprintf(`{"graph_id":%q,"target_quantile":0.9}`, id)},
		{"confidence alone", "/v1/estimate", fmt.Sprintf(`{"graph_id":%q,"confidence":0.99}`, id)},
		{"bad target quantile", "/v1/estimate", fmt.Sprintf(`{"graph_id":%q,"tolerance":0.5,"target_quantile":1.5}`, id)},
		{"bad confidence", "/v1/estimate", fmt.Sprintf(`{"graph_id":%q,"tolerance":0.5,"confidence":2}`, id)},
		{"negative max_trials", "/v1/estimate", fmt.Sprintf(`{"graph_id":%q,"tolerance":0.5,"max_trials":-5}`, id)},
		{"bad response quantile", "/v1/estimate", fmt.Sprintf(`{"graph_id":%q,"tolerance":0.5,"quantiles":[1.5]}`, id)},
		{"sched trials+tolerance", "/v1/schedule", fmt.Sprintf(`{"graph_id":%q,"procs":2,"trials":1000,"tolerance":0.5}`, id)},
		{"sched max_trials alone", "/v1/schedule", fmt.Sprintf(`{"graph_id":%q,"procs":2,"max_trials":1000}`, id)},
		{"sched bad quantile", "/v1/schedule", fmt.Sprintf(`{"graph_id":%q,"procs":2,"tolerance":0.5,"quantiles":[0]}`, id)},
	}
	for _, tc := range bad {
		if code, body := post(t, ts, tc.path, tc.body); code != http.StatusBadRequest {
			t.Errorf("%s: got %d %s", tc.name, code, body)
		}
	}

	// Quantiles ride along with tolerance (no trials needed), answered
	// from the run's sketch.
	code, body := post(t, ts, "/v1/estimate",
		fmt.Sprintf(`{"graph_id":%q,"methods":"First Order","tolerance":%g,"quantiles":[0.5,0.9]}`, id, tol))
	if code != http.StatusOK {
		t.Fatalf("adaptive quantiles: %d %s", code, body)
	}
	var doc struct {
		MonteCarlo struct {
			Quantiles []struct {
				Q     float64 `json:"q"`
				Value float64 `json:"value"`
			} `json:"quantiles"`
		} `json:"monte_carlo"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.MonteCarlo.Quantiles) != 2 || doc.MonteCarlo.Quantiles[0].Value <= 0 ||
		doc.MonteCarlo.Quantiles[1].Value < doc.MonteCarlo.Quantiles[0].Value {
		t.Fatalf("adaptive quantiles: %s", body)
	}
}
