package distribution

import "fmt"

// This file preserves the pre-merge-kernel Add/MaxInd implementations
// verbatim (build-all-atoms, sort inside NewDiscrete) as the oracle for
// the parity, property and fuzz tests in convolve_test.go. The shipped
// kernel in convolve.go must reproduce them bit for bit when uncapped.

// addNaive is the original Discrete.Add: materialize all n·m atoms and
// let NewDiscrete sort, merge and renormalize them.
func addNaive(d, o Discrete) Discrete {
	vals := make([]float64, 0, len(d.values)*len(o.values))
	prbs := make([]float64, 0, len(d.values)*len(o.values))
	for i, v := range d.values {
		for j, w := range o.values {
			vals = append(vals, v+w)
			prbs = append(prbs, d.probs[i]*o.probs[j])
		}
	}
	out, err := NewDiscrete(vals, prbs)
	if err != nil {
		panic(fmt.Sprintf("distribution: Add produced invalid result: %v", err))
	}
	return out
}

// maxIndNaive is the original Discrete.MaxInd: merge supports into a
// scratch slice, then take CDF-product differences.
func maxIndNaive(d, o Discrete) Discrete {
	merged := make([]float64, 0, len(d.values)+len(o.values))
	i, j := 0, 0
	for i < len(d.values) || j < len(o.values) {
		var v float64
		switch {
		case i == len(d.values):
			v = o.values[j]
			j++
		case j == len(o.values):
			v = d.values[i]
			i++
		case d.values[i] < o.values[j]:
			v = d.values[i]
			i++
		case d.values[i] > o.values[j]:
			v = o.values[j]
			j++
		default:
			v = d.values[i]
			i++
			j++
		}
		if n := len(merged); n == 0 || merged[n-1] != v {
			merged = append(merged, v)
		}
	}
	vals := make([]float64, 0, len(merged))
	prbs := make([]float64, 0, len(merged))
	prev := 0.0
	cd, co := 0.0, 0.0
	i, j = 0, 0
	for _, v := range merged {
		for i < len(d.values) && d.values[i] <= v {
			cd += d.probs[i]
			i++
		}
		for j < len(o.values) && o.values[j] <= v {
			co += o.probs[j]
			j++
		}
		f := cd * co
		if p := f - prev; p > probEps {
			vals = append(vals, v)
			prbs = append(prbs, p)
		}
		prev = f
	}
	out, err := NewDiscrete(vals, prbs)
	if err != nil {
		panic(fmt.Sprintf("distribution: MaxInd produced invalid result: %v", err))
	}
	return out
}
