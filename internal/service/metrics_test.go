package service

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// This file pins the observability surface: per-route request counters
// and latency histograms under concurrent load, the shed series staying
// disjoint from the 2xx series, the admission-bypass boundary (probe
// routes are counted but never shed), and the structured access-log
// line shape. Metrics are updated in the middleware's deferred observe,
// which can run a beat after the client sees the response — assertions
// on exact totals go through waitFor.

// scrapeMetrics fetches GET /metrics and returns the exposition text.
func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	code, body := get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: %d %s", code, body)
	}
	return body
}

// sampleValue extracts one sample (by its exact series string, label
// braces included) from exposition text; absent series read as 0.
func sampleValue(t *testing.T, text, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("series %s: bad value %q", series, rest)
			}
			return v
		}
	}
	return 0
}

// Histogram observation count equals requests served under N-way
// concurrent load, and the scrape agrees with the instruments.
func TestMetricsConcurrentRequestAccounting(t *testing.T) {
	s, ts := opsServer(t, Config{Workers: 2})

	// Prime once so the concurrent phase exercises the warm path.
	if code, body := post(t, ts, "/v1/estimate", `{"kind":"lu","k":4}`); code != http.StatusOK {
		t.Fatalf("prime: %d %s", code, body)
	}
	const workers, perWorker = 4, 6
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				resp, err := http.Post(ts.URL+"/v1/estimate", "application/json",
					strings.NewReader(`{"kind":"lu","k":4}`))
				if err != nil {
					errs <- err
					continue
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	const total = 1 + workers*perWorker
	route := s.metrics.requests.With("/v1/estimate", "200")
	waitFor(t, "request counter to settle", func() bool { return route.Value() == total })
	if got := s.metrics.latency.With("/v1/estimate").Count(); got != total {
		t.Fatalf("histogram count = %d, want %d (every request must be observed exactly once)", got, total)
	}
	text := scrapeMetrics(t, ts)
	for series, want := range map[string]float64{
		`makespand_http_requests_total{route="/v1/estimate",code="200"}`:                 total,
		`makespand_http_request_duration_seconds_bucket{route="/v1/estimate",le="+Inf"}`: total,
		`makespand_http_request_duration_seconds_count{route="/v1/estimate"}`:            total,
		`makespand_requests_shed_total`:                                                  0,
	} {
		if got := sampleValue(t, text, series); got != want {
			t.Fatalf("%s = %g, want %g\n%s", series, got, want, text)
		}
	}
	if got := sampleValue(t, text, `makespand_cache_hits_total{kind="graph"}`); got < float64(total-1) {
		t.Fatalf(`cache_hits_total{kind="graph"} = %g, want >= %d (warm repeats hit the frozen graph)`, got, total-1)
	}
}

// Shed requests land in the 429 series, never the 2xx one, and every
// shed increments the shed counter exactly once.
func TestMetricsShedSeries(t *testing.T) {
	s, ts := opsServer(t, Config{Workers: 2, MaxInFlight: 1, QueueWait: time.Second})

	s.limit.slots <- struct{}{} // fill the only admission slot
	const sheds = 5
	for i := 0; i < sheds; i++ {
		if code, _ := post(t, ts, "/v1/estimate", `{"kind":"lu","k":4}`); code != http.StatusTooManyRequests {
			t.Fatalf("full server request %d: %d, want 429", i, code)
		}
	}
	<-s.limit.slots
	if code, body := post(t, ts, "/v1/estimate", `{"kind":"lu","k":4}`); code != http.StatusOK {
		t.Fatalf("after release: %d %s", code, body)
	}

	waitFor(t, "shed counter", func() bool { return s.metrics.shed.Value() == sheds })
	waitFor(t, "429 series", func() bool {
		return s.metrics.requests.With("/v1/estimate", "429").Value() == sheds
	})
	if got := s.metrics.requests.With("/v1/estimate", "200").Value(); got != 1 {
		t.Fatalf("200 series = %d, want 1 (sheds must not leak into it)", got)
	}
	// The latency histogram sees every request, shed or served.
	waitFor(t, "histogram count", func() bool {
		return s.metrics.latency.With("/v1/estimate").Count() == sheds+1
	})
}

// Admission-bypassed probe routes (/healthz, GET /v1/cache, /metrics)
// are still counted in the request metrics but can never appear in the
// shed counter or occupy admission capacity — this is the boundary the
// limiter's placement in admit() guarantees.
func TestMetricsProbeRoutesBypassAdmission(t *testing.T) {
	s, ts := opsServer(t, Config{Workers: 2, MaxInFlight: 1, QueueWait: time.Second})

	s.limit.slots <- struct{}{} // saturate admission
	for _, path := range []string{"/healthz", "/v1/cache", "/metrics"} {
		if code, body := get(t, ts, path); code != http.StatusOK {
			t.Fatalf("GET %s behind full server: %d %s", path, code, body)
		}
	}
	for _, route := range []string{"/healthz", "/v1/cache", "/metrics"} {
		route := route
		waitFor(t, "probe counter "+route, func() bool {
			return s.metrics.requests.With(route, "200").Value() >= 1
		})
	}
	if got := s.metrics.shed.Value(); got != 0 {
		t.Fatalf("shed counter = %d after probe traffic, want 0", got)
	}
	if got := len(s.limit.queue); got != 0 {
		t.Fatalf("admission queue depth = %d after probe traffic, want 0", got)
	}

	// An estimation request in the same saturated state does shed — the
	// counter moves for admitted routes only.
	if code, _ := post(t, ts, "/v1/estimate", `{"kind":"lu","k":4}`); code != http.StatusTooManyRequests {
		t.Fatalf("estimate behind full server: %d, want 429", code)
	}
	waitFor(t, "shed counter after estimate", func() bool { return s.metrics.shed.Value() == 1 })
	<-s.limit.slots
}

// syncBuffer lets the test read the access log while the middleware may
// still be writing it.
type syncBuffer struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// One structured line per request, with the documented fields in order;
// deadlines show up in deadline_ms and unmatched paths log route=other.
func TestAccessLogLineShape(t *testing.T) {
	var buf syncBuffer
	_, ts := opsServer(t, Config{Workers: 2, AccessLog: &buf})

	if code, body := post(t, ts, "/v1/estimate", `{"kind":"lu","k":4}`); code != http.StatusOK {
		t.Fatalf("estimate: %d %s", code, body)
	}
	ok := regexp.MustCompile(`(?m)^event=request method=POST route=/v1/estimate status=200 bytes=[1-9][0-9]* dur_ms=[0-9.]+ deadline_ms=0 outcome=ok$`)
	waitFor(t, "access log line", func() bool { return ok.MatchString(buf.String()) })

	if code, _ := post(t, ts, "/v1/estimate", `{"kind":"lu","k":4,"timeout_ms":30000}`); code != http.StatusOK {
		t.Fatalf("estimate with deadline: %d", code)
	}
	deadline := regexp.MustCompile(`(?m)^event=request method=POST route=/v1/estimate status=200 bytes=[0-9]+ dur_ms=[0-9.]+ deadline_ms=30000 outcome=ok$`)
	waitFor(t, "deadline access log line", func() bool { return deadline.MatchString(buf.String()) })

	if code, _ := get(t, ts, "/no/such/route"); code != http.StatusNotFound {
		t.Fatalf("unknown path: %d, want 404", code)
	}
	other := regexp.MustCompile(`(?m)^event=request method=GET route=other status=404 bytes=[0-9]+ dur_ms=[0-9.]+ deadline_ms=0 outcome=error$`)
	waitFor(t, "route=other access log line", func() bool { return other.MatchString(buf.String()) })
}
