// DVFS: the energy/resilience trade-off from the paper's introduction.
// Lowering voltage and frequency saves dynamic power but raises the silent
// error rate exponentially (paper Eq. 1), which lengthens the expected
// makespan through re-executions. This example sweeps the processor speed
// for a QR factorization and reports, per speed: the error rate, the
// expected makespan (First Order on the speed-scaled DAG) and a normalized
// energy estimate — exposing the sweet spot.
//
// Run with:
//
//	go run ./examples/dvfs
package main

import (
	"fmt"
	"log"

	makespan "repro"
)

func main() {
	const k = 8
	base, err := makespan.QR(k)
	if err != nil {
		log.Fatal(err)
	}
	// Error rate 1e-4 /s at full speed, 3 decades of degradation across
	// the DVFS range [0.5, 1.0] (normalized speeds).
	dvfs, err := makespan.NewDVFS(1e-4, 3, 0.5, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QR k=%d: %d tasks; DVFS range [%.1f, %.1f], λ(smax)=%.1e, sensitivity d=%.0f\n\n",
		k, base.NumTasks(), dvfs.SMin, dvfs.SMax, dvfs.Lambda0, dvfs.Sensitivity)
	fmt.Printf("%-7s %-12s %-16s %-14s %-12s\n", "speed", "λ(s) [/s]", "E[makespan] (s)", "energy (norm)", "energy·E[T]")

	bestSpeed, bestEDP := 0.0, 0.0
	for _, s := range []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		// Scale every task weight by smax/s (slower clock, longer tasks).
		g := makespan.NewGraph(base.NumTasks())
		for i := 0; i < base.NumTasks(); i++ {
			g.MustAddTask(base.Name(i), dvfs.TimeAt(base.Weight(i), s))
		}
		for u := 0; u < base.NumTasks(); u++ {
			for _, v := range base.Succ(u) {
				g.MustAddEdge(u, v)
			}
		}
		model := dvfs.ModelAt(s)
		et, err := makespan.FirstOrder(g, model)
		if err != nil {
			log.Fatal(err)
		}
		// Energy ∝ power × busy time; busy time is total (expected) work.
		work := 0.0
		for i := 0; i < g.NumTasks(); i++ {
			work += model.ExpectedTime(g.Weight(i))
		}
		energy := dvfs.DynamicPower(s) * work
		edp := energy * et
		fmt.Printf("%-7.2f %-12.3e %-16.4f %-14.4f %-12.4f\n", s, model.Lambda, et, energy, edp)
		if bestSpeed == 0 || edp < bestEDP {
			bestSpeed, bestEDP = s, edp
		}
	}
	fmt.Printf("\nbest energy-delay product at speed %.2f — naive 'slowest is greenest' loses to re-executions.\n", bestSpeed)
}
