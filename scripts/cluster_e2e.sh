#!/usr/bin/env sh
# cluster_e2e.sh — multi-process cluster e2e: three real makespand
# replicas behind makespan-lb, plus one single-process reference
# daemon. Every /v1 response through the front must be byte-identical
# (timing fields zeroed) to the single daemon's — the determinism-
# regardless-of-replica guarantee that makes consistent-hash routing,
# hedging and failover unobservable to clients. The script then
# SIGTERMs one replica mid-run: the lb must eject it from the ring
# (GET /v1/replicas ring_size drops), the replica must drain and exit
# 0, and the full request set must still answer byte-identically from
# the surviving replicas after its shard remaps.
#
# The Go twin of this harness is internal/lb/e2e_test.go, which
# additionally pins the mid-kernel drain handoff; this script is the
# curl-level CI smoke over the real binaries. docs/E2E.md holds the
# case table.
#
# Usage: scripts/cluster_e2e.sh [base_port]   (default 17621; uses
#        base_port..base_port+4)
set -eu

cd "$(dirname "$0")/.."
base_port="${1:-17621}"
bin="$(mktemp -d)"
work="$(mktemp -d)"
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$bin" "$work"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$bin/" ./cmd/makespand ./cmd/makespan-lb

normalize() {
    sed -E 's/"(mc_time_seconds|time_seconds|uptime_seconds)": [-+0-9.eE]+/"\1": 0/'
}

# wait_ready <url> <log>: poll until a 200, fail fast with the log.
wait_ready() {
    wr_i=0
    until curl -fsS --max-time 2 "$1" >/dev/null 2>&1; do
        wr_i=$((wr_i + 1))
        if [ "$wr_i" -ge 300 ]; then
            echo "$1 did not come up within 30s; log:" >&2
            cat "$2" >&2
            exit 1
        fi
        sleep 0.1
    done
}

echo "== start 3 replicas + lb + single-process reference"
replicas=""
for i in 1 2 3; do
    port=$((base_port + i))
    "$bin/makespand" -addr "127.0.0.1:$port" -workers 2 \
        -drain-grace 500ms -drain-timeout 30s 2>"$work/replica$i.log" &
    pids="$pids $!"
    eval "pid_r$i=$!"
    replicas="$replicas,http://127.0.0.1:$port"
done
replicas="${replicas#,}"
lb="http://127.0.0.1:$base_port"
"$bin/makespan-lb" -addr "127.0.0.1:$base_port" -replicas "$replicas" \
    -check-interval 100ms 2>"$work/lb.log" &
pids="$pids $!"
single="http://127.0.0.1:$((base_port + 4))"
"$bin/makespand" -addr "127.0.0.1:$((base_port + 4))" -workers 2 \
    2>"$work/single.log" &
pids="$pids $!"
for i in 1 2 3; do
    wait_ready "http://127.0.0.1:$((base_port + i))/healthz" "$work/replica$i.log"
done
wait_ready "$lb/healthz" "$work/lb.log"
wait_ready "$single/healthz" "$work/single.log"

# The deterministic request set — distinct graphs so the shards spread
# across the fleet.
r1='{"kind":"lu","k":8,"pfail":0.001,"methods":"paper","trials":2000,"seed":7,"bounds":true}'
r2='{"kind":"qr","k":6,"lambda":0.002,"methods":"all","trials":1000,"seed":11}'
r3='{"kind":"lu","k":8,"procs":4,"pfail":0.01,"trials":2000,"seed":7,"quantiles":[0.5,0.99]}'
r4='{"kind":"cholesky","k":6,"pfails":[0.1,0.01],"trials":1500,"seed":3}'
r5='{"kind":"lu","k":6,"pfail":0.05,"methods":"First Order","trials":40960,"seed":9}'

# run_set <base> <dir>: drive the set against one front, store
# normalized responses.
run_set() {
    rs_base="$1"
    rs_dir="$2"
    mkdir -p "$rs_dir"
    curl -fsS -X POST "$rs_base/v1/estimate" -d "$r1" | normalize >"$rs_dir/r1.json"
    curl -fsS -X POST "$rs_base/v1/estimate" -d "$r2" | normalize >"$rs_dir/r2.json"
    curl -fsS -X POST "$rs_base/v1/schedule" -d "$r3" | normalize >"$rs_dir/r3.json"
    curl -fsS -X POST "$rs_base/v1/sweep" -d "$r4" | normalize >"$rs_dir/r4.json"
    curl -fsS -X POST "$rs_base/v1/estimate" -d "$r5" | normalize >"$rs_dir/r5.json"
}

diff_set() {
    for f in r1 r2 r3 r4 r5; do
        diff -u "$work/single/$f.json" "$1/$f.json"
    done
}

echo "== single-process reference set"
run_set "$single" "$work/single"

echo "== cluster set through the lb (cold, then warm)"
run_set "$lb" "$work/lb_cold"
diff_set "$work/lb_cold"
run_set "$lb" "$work/lb_warm"
diff_set "$work/lb_warm"

echo "== ring state before the kill"
curl -fsS "$lb/v1/replicas" | tee "$work/replicas_before.json"
grep -q '"ring_size": 3' "$work/replicas_before.json"

echo "== SIGTERM replica 1; its shard must remap"
kill -TERM "$pid_r1"
set +e
wait "$pid_r1"
status=$?
set -e
pids="$(echo "$pids" | sed "s/ $pid_r1//")"
if [ "$status" -ne 0 ]; then
    echo "replica 1 exited $status after SIGTERM (want 0); log:" >&2
    cat "$work/replica1.log" >&2
    exit 1
fi
grep -q "drained, exiting" "$work/replica1.log"
i=0
until curl -fsS "$lb/v1/replicas" | grep -q '"ring_size": 2'; do
    i=$((i + 1))
    if [ "$i" -ge 300 ]; then
        echo "lb never ejected the drained replica; log:" >&2
        cat "$work/lb.log" >&2
        exit 1
    fi
    sleep 0.1
done

echo "== cluster set after the remap"
run_set "$lb" "$work/lb_remap"
diff_set "$work/lb_remap"

echo "== lb access log names replicas and the front stayed healthy"
grep -q 'event=request .*replica=http' "$work/lb.log"
curl -fsS "$lb/healthz" >/dev/null
curl -fsS "$lb/metrics" | grep -q '^makespanlb_upstream_requests_total'

echo "cluster e2e: all responses byte-identical through the lb"
