// Package spgraph implements the series-parallel machinery behind the
// paper's "Dodin" competitor (§II-A2, §V-A): conversion of a task DAG into
// an activity-on-arc (AoA) network, exact series/parallel reductions over
// discrete distributions, series-parallel recognition, and Dodin's node
// duplication that forces an arbitrary DAG into series-parallel form so
// its makespan distribution can be evaluated by reduction.
package spgraph

import (
	"errors"
	"fmt"

	"repro/internal/dag"
	"repro/internal/distribution"
	"repro/internal/failure"
)

// Network is a directed multigraph with a distribution on every arc, a
// single source and a single sink — a PERT activity-on-arc network.
type Network struct {
	arcs     []arc
	aliveArc []bool
	in, out  [][]int // arc IDs per node (may contain dead arcs; filtered on use)
	src, snk int
	nAlive   int
	maxAtoms int // distribution support cap; 0 = unlimited (exact)
}

type arc struct {
	from, to int
	dist     distribution.Discrete
	tree     *SPNode // SP decomposition witness; nil for zero arcs
}

// DefaultMaxAtoms caps distribution supports during reductions. Without a
// cap, chains of convolutions of 2-state distributions grow exponentially
// (the pseudo-polynomial blow-up the paper notes for series-parallel
// graphs).
const DefaultMaxAtoms = 64

// FromDAG converts a task graph into an AoA network: task i becomes an arc
// carrying its 2-state distribution between a fresh start/end node pair;
// each precedence edge becomes a zero-length arc; a super-source and
// super-sink tie up entry and exit tasks. maxAtoms caps distribution
// supports during subsequent reductions (0 = unlimited).
func FromDAG(g *dag.Graph, model failure.Model, maxAtoms int) (*Network, error) {
	if _, err := g.TopoOrder(); err != nil {
		return nil, err
	}
	n := g.NumTasks()
	// Node layout: 2i = start of task i, 2i+1 = end of task i,
	// 2n = super-source, 2n+1 = super-sink.
	nn := 2*n + 2
	net := &Network{
		in:       make([][]int, nn),
		out:      make([][]int, nn),
		src:      2 * n,
		snk:      2*n + 1,
		maxAtoms: maxAtoms,
	}
	zero := distribution.Point(0)
	for i := 0; i < n; i++ {
		d, err := distribution.TwoState(g.Weight(i), model.PSuccess(g.Weight(i)))
		if err != nil {
			return nil, fmt.Errorf("spgraph: task %d: %w", i, err)
		}
		net.addArc(2*i, 2*i+1, d, leafNode(i))
		if g.InDegree(i) == 0 {
			net.addArc(net.src, 2*i, zero, nil)
		}
		if g.OutDegree(i) == 0 {
			net.addArc(2*i+1, net.snk, zero, nil)
		}
		for _, s := range g.Succ(i) {
			net.addArc(2*i+1, 2*s, zero, nil)
		}
	}
	if n == 0 {
		net.addArc(net.src, net.snk, zero, nil)
	}
	return net, nil
}

func (net *Network) addArc(u, v int, d distribution.Discrete, tree *SPNode) int {
	id := len(net.arcs)
	net.arcs = append(net.arcs, arc{from: u, to: v, dist: d, tree: tree})
	net.aliveArc = append(net.aliveArc, true)
	net.out[u] = append(net.out[u], id)
	net.in[v] = append(net.in[v], id)
	net.nAlive++
	return id
}

func (net *Network) killArc(id int) {
	if net.aliveArc[id] {
		net.aliveArc[id] = false
		net.nAlive--
	}
}

// liveIn returns the live incoming arc IDs of v, compacting the list.
func (net *Network) liveIn(v int) []int {
	live := net.in[v][:0]
	for _, id := range net.in[v] {
		if net.aliveArc[id] && net.arcs[id].to == v {
			live = append(live, id)
		}
	}
	net.in[v] = live
	return live
}

// liveOut returns the live outgoing arc IDs of u, compacting the list.
func (net *Network) liveOut(u int) []int {
	live := net.out[u][:0]
	for _, id := range net.out[u] {
		if net.aliveArc[id] && net.arcs[id].from == u {
			live = append(live, id)
		}
	}
	net.out[u] = live
	return live
}

// NumArcs returns the number of live arcs.
func (net *Network) NumArcs() int { return net.nAlive }

// cap applies the support cap to a distribution.
func (net *Network) cap(d distribution.Discrete) distribution.Discrete {
	if net.maxAtoms > 0 {
		return d.Rediscretize(net.maxAtoms)
	}
	return d
}

// errNotReduced reports a network that did not collapse to a single arc.
var errNotReduced = errors.New("spgraph: network not reduced to a single arc")

// result returns the final arc's distribution once the network has been
// fully reduced.
func (net *Network) result() (distribution.Discrete, error) {
	if net.nAlive != 1 {
		return distribution.Discrete{}, errNotReduced
	}
	for id, alive := range net.aliveArc {
		if alive {
			a := net.arcs[id]
			if a.from != net.src || a.to != net.snk {
				return distribution.Discrete{}, fmt.Errorf("%w: last arc (%d,%d) is not source→sink", errNotReduced, a.from, a.to)
			}
			return a.dist, nil
		}
	}
	return distribution.Discrete{}, errNotReduced
}
