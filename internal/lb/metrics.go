package lb

import (
	"net/http"
	"time"

	"repro/internal/metrics"
)

// lbMetrics bundles the makespan-lb metric families on one
// internal/metrics registry rendered by GET /metrics. Front-side
// request counters and latency histograms are updated by the
// middleware; upstream counters by each forwarded attempt; eject
// counters by the health checker. Ring occupancy, registered-replica
// count, in-flight requests and uptime are func-backed and sampled at
// scrape time from the same state GET /v1/replicas reports, so the
// two can never disagree.
type lbMetrics struct {
	reg              *metrics.Registry
	requests         *metrics.CounterVec   // route, code (front side)
	latency          *metrics.HistogramVec // route (front side)
	upstream         *metrics.CounterVec   // replica, code (forwarded attempts)
	upstreamFailures *metrics.CounterVec   // replica (transport error or retryable status)
	hedges           *metrics.CounterVec   // replica the hedge was sent to
	failovers        *metrics.Counter
	ejects           *metrics.CounterVec // replica, reason (draining | dead)
}

// single wraps one scalar source as an unlabeled CollectFn.
func single(fn func() float64) metrics.CollectFn {
	return func(emit func([]string, float64)) { emit(nil, fn()) }
}

func newLBMetrics(rt *Router) *lbMetrics {
	r := metrics.NewRegistry()
	m := &lbMetrics{
		reg: r,
		requests: r.CounterVec("makespanlb_http_requests_total",
			"Front requests served, by route pattern and status code.",
			"route", "code"),
		latency: r.HistogramVec("makespanlb_http_request_duration_seconds",
			"Front request latency in seconds, by route pattern (includes upstream time).",
			metrics.DefLatencyBuckets, "route"),
		upstream: r.CounterVec("makespanlb_upstream_requests_total",
			"Forwarded attempts that produced an HTTP response, by replica base URL and status code.",
			"replica", "code"),
		upstreamFailures: r.CounterVec("makespanlb_upstream_failures_total",
			"Forwarded attempts that failed (transport error, 5xx or 429) and triggered failover or lost the hedge, by replica.",
			"replica"),
		hedges: r.CounterVec("makespanlb_hedges_total",
			"Hedged duplicate requests launched past the latency budget, by the replica they were sent to.",
			"replica"),
		failovers: r.Counter("makespanlb_failovers_total",
			"Immediate failovers to the next ring candidate after an attempt failed."),
		ejects: r.CounterVec("makespanlb_replica_ejects_total",
			"Replicas ejected from the ring by the health checker, by replica and reason (draining: the replica announced shutdown; dead: consecutive probe failures).",
			"replica", "reason"),
	}
	r.GaugeFunc("makespanlb_ring_replicas",
		"Healthy replicas currently on the consistent-hash ring.",
		nil, single(func() float64 {
			rt.mu.Lock()
			defer rt.mu.Unlock()
			return float64(rt.ring.size())
		}))
	r.GaugeFunc("makespanlb_replicas_registered",
		"Replicas registered (static flag plus POST /v1/replicas), healthy or not.",
		nil, single(func() float64 {
			rt.mu.Lock()
			defer rt.mu.Unlock()
			return float64(len(rt.replicas))
		}))
	r.GaugeFunc("makespanlb_http_requests_in_flight",
		"Front requests currently inside the handler stack.",
		nil, single(func() float64 { return float64(rt.inflight.Load()) }))
	r.GaugeFunc("makespanlb_uptime_seconds",
		"Seconds since the router was constructed.",
		nil, single(func() float64 { return time.Since(rt.started).Seconds() }))
	return m
}

// handleMetrics serves the Prometheus text exposition.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", metrics.TextContentType)
	_ = rt.metrics.reg.WriteText(w)
}

// Metrics exposes the router's metric registry for test assertions.
func (rt *Router) Metrics() *metrics.Registry { return rt.metrics.reg }
