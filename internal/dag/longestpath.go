package dag

import (
	"errors"
	"fmt"
	"math"
)

// PathEvaluator computes longest-path quantities for one graph. It compiles
// the graph into its Frozen CSR form once and keeps reusable scratch
// buffers, so the hot paths (Monte Carlo trials, per-task weight
// perturbations) stream memory sequentially and do not allocate.
// A PathEvaluator is not safe for concurrent use; create one per goroutine
// (they can share the same Frozen via NewPathEvaluatorFrozen).
type PathEvaluator struct {
	f *Frozen
	// scratch, all in topological order
	wTopo []float64 // gathered weight vector for the current pass
	comp  []float64 // completion time per position in the current pass
	tail  []float64 // longest path starting at position (inclusive)
}

// NewPathEvaluator prepares an evaluator for g. It fails if g is cyclic.
func NewPathEvaluator(g *Graph) (*PathEvaluator, error) {
	f, err := Freeze(g)
	if err != nil {
		return nil, err
	}
	return NewPathEvaluatorFrozen(f), nil
}

// NewPathEvaluatorFrozen wraps per-goroutine scratch around an existing
// Frozen, sharing the compiled graph across evaluators.
func NewPathEvaluatorFrozen(f *Frozen) *PathEvaluator {
	n := f.NumTasks()
	return &PathEvaluator{
		f:     f,
		wTopo: make([]float64, n),
		comp:  make([]float64, n),
		tail:  make([]float64, n),
	}
}

// Graph returns the underlying graph.
func (pe *PathEvaluator) Graph() *Graph { return pe.f.g }

// Frozen returns the compiled representation the evaluator runs on.
func (pe *PathEvaluator) Frozen() *Frozen { return pe.f }

// TopoOrder returns the cached topological order. The slice is allocated
// per call; the cached order itself lives in the Frozen.
func (pe *PathEvaluator) TopoOrder() []int {
	out := make([]int, pe.f.n)
	for k := range out {
		out[k] = pe.f.TaskID(k)
	}
	return out
}

// Makespan returns the failure-free makespan d(G): the maximum over tasks
// of their completion time with unlimited processors,
// C(i) = a_i + max_{j in Pred(i)} C(j). It reads the graph's live weights,
// so SetWeight between calls is honored.
func (pe *PathEvaluator) Makespan() float64 {
	return pe.MakespanWith(pe.f.g.weights)
}

// MakespanWith computes the makespan using the provided weight vector
// (task-ID indexed) in place of the graph's weights. len(weights) must
// equal NumTasks. This is the Monte Carlo hot path: no allocation.
func (pe *PathEvaluator) MakespanWith(weights []float64) float64 {
	if len(weights) != pe.f.n {
		panic(fmt.Sprintf("dag: weight vector length %d != %d tasks", len(weights), pe.f.n))
	}
	if pe.f.identity {
		// Topo order == ID order: evaluate the caller's vector in place,
		// no copy. Consumers of pe.wTopo (CriticalPath) re-gather.
		return pe.f.MakespanTopo(weights, pe.comp)
	}
	pe.f.Gather(pe.wTopo, weights)
	return pe.f.MakespanTopo(pe.wTopo, pe.comp)
}

// CompletionTimes returns C(i) for every task under the graph's weights.
func (pe *PathEvaluator) CompletionTimes() []float64 {
	pe.Makespan()
	return pe.f.Scatter(make([]float64, pe.f.n), pe.comp)
}

// Heads returns head(i): the length of the longest path ending at i,
// including a_i. head(i) equals the completion time C(i).
func (pe *PathEvaluator) Heads() []float64 {
	return pe.CompletionTimes()
}

// Tails returns tail(i): the length of the longest path starting at i,
// including a_i. tail(i) = a_i + max_{j in Succ(i)} tail(j).
func (pe *PathEvaluator) Tails() []float64 {
	pe.f.Gather(pe.wTopo, pe.f.g.weights)
	pe.f.TailsTopo(pe.wTopo, pe.tail)
	return pe.f.Scatter(make([]float64, pe.f.n), pe.tail)
}

// pathEps returns the tolerance used when matching completion times along
// a critical path: float64 longest-path sums accumulate rounding, so exact
// equality would sporadically miss the true predecessor.
func pathEps(d float64) float64 {
	return 1e-9 * math.Max(1, math.Abs(d))
}

// CriticalPath returns one longest path as a sequence of task IDs, and its
// length. For an empty graph it returns (nil, 0). Completion times are
// matched with a relative epsilon rather than exact float equality, so
// paths whose lengths differ only by accumulated rounding are still
// recognized.
func (pe *PathEvaluator) CriticalPath() ([]int, float64) {
	f := pe.f
	if f.n == 0 {
		return nil, 0
	}
	d := pe.Makespan() // fills pe.comp (topo order)
	if f.identity {
		// Makespan's identity fast path evaluates the live weights in
		// place without filling pe.wTopo; the walk below needs them.
		f.Gather(pe.wTopo, f.g.weights)
	}
	eps := pathEps(d)
	// Find a position whose completion time reaches the makespan, then walk
	// backwards through predecessors achieving the critical start time.
	// The endpoint match is exact: d is the running max of comp, so some
	// position attains it bit for bit; the tolerance is only for the
	// backward walk, where subtraction reintroduces rounding.
	end := -1
	for k := 0; k < f.n; k++ {
		if pe.comp[k] == d {
			end = k
			break
		}
	}
	var rev []int
	k := end
	for k >= 0 {
		rev = append(rev, f.TaskID(k))
		preds := f.PredTopo(k)
		if len(preds) == 0 {
			break
		}
		start := pe.comp[k] - pe.wTopo[k]
		next := -1
		for _, p := range preds {
			if math.Abs(pe.comp[p]-start) <= eps {
				next = int(p)
				break
			}
		}
		if next < 0 {
			// Numerical slack beyond eps: pick the max-completion
			// predecessor, which by construction achieves the start time.
			bestC := math.Inf(-1)
			for _, p := range preds {
				if pe.comp[p] > bestC {
					bestC, next = pe.comp[p], int(p)
				}
			}
		}
		k = next
	}
	// Reverse.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, d
}

// Makespan returns the failure-free makespan d(G) of g. Convenience wrapper
// that builds a transient evaluator.
func Makespan(g *Graph) (float64, error) {
	pe, err := NewPathEvaluator(g)
	if err != nil {
		return 0, err
	}
	return pe.Makespan(), nil
}

// ErrNoPath is returned by LongestPathBetween when no path exists.
var ErrNoPath = errors.New("dag: no path between the given tasks")

// LongestPathBetween returns the length of the longest path from task u to
// task v, counting both endpoint weights. It returns ErrNoPath if v is not
// reachable from u. O(V+E).
func LongestPathBetween(g *Graph, u, v int) (float64, error) {
	if u < 0 || u >= g.NumTasks() || v < 0 || v >= g.NumTasks() {
		return 0, ErrBadTask
	}
	f, err := Freeze(g)
	if err != nil {
		return 0, err
	}
	const unreach = math.MaxFloat64
	n := f.NumTasks()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = -unreach
	}
	ku, kv := f.Pos(u), f.Pos(v)
	dist[ku] = f.wTopo[ku]
	for k := ku; k <= kv; k++ {
		if dist[k] == -unreach {
			continue
		}
		for _, s := range f.SuccTopo(k) {
			if c := dist[k] + f.wTopo[s]; c > dist[s] {
				dist[s] = c
			}
		}
	}
	if kv < ku || dist[kv] == -unreach {
		return 0, ErrNoPath
	}
	return dist[kv], nil
}
