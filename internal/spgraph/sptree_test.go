package spgraph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dag"
	"repro/internal/failure"
	"repro/internal/linalg"
	"repro/internal/montecarlo"
)

func TestDecomposeChain(t *testing.T) {
	g := dag.Chain(3, 1)
	tree, err := Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.String(); got != "S(T0, T1, T2)" {
		t.Fatalf("chain tree = %s", got)
	}
}

func TestDecomposeDiamond(t *testing.T) {
	g := dag.Diamond(1, 2, 3, 4)
	tree, err := Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.String(); got != "S(T0, P(T1, T2), T3)" {
		t.Fatalf("diamond tree = %s", got)
	}
	tasks := tree.Tasks()
	if len(tasks) != 4 {
		t.Fatalf("leaf count = %d", len(tasks))
	}
}

func TestDecomposeForkJoin(t *testing.T) {
	g := dag.ForkJoin(3, 2)
	tree, err := Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	// Child order inside P(...) follows reduction order, so assert shape
	// rather than ordering: S(T0, P(three tasks), T4).
	if tree.Kind != SPSeries || len(tree.Children) != 3 {
		t.Fatalf("fork-join tree = %s", tree)
	}
	mid := tree.Children[1]
	if mid.Kind != SPParallel || len(mid.Children) != 3 {
		t.Fatalf("fork-join middle = %s", mid)
	}
	got := map[int]bool{}
	for _, c := range mid.Children {
		if c.Kind != SPLeaf {
			t.Fatalf("non-leaf branch %s", c)
		}
		got[c.Task] = true
	}
	if !got[1] || !got[2] || !got[3] {
		t.Fatalf("parallel branches = %v", got)
	}
}

func TestDecomposeRejectsNonSP(t *testing.T) {
	if _, err := Decompose(nGraph()); err == nil {
		t.Fatal("N graph decomposed")
	}
}

func TestDecomposeEmptyAndSingle(t *testing.T) {
	tree, err := Decompose(dag.New(0))
	if err != nil {
		t.Fatal(err)
	}
	if tree != nil {
		t.Fatalf("empty tree = %v", tree)
	}
	single := dag.New(1)
	single.MustAddTask("solo", 2)
	tree, err = Decompose(single)
	if err != nil {
		t.Fatal(err)
	}
	if tree.String() != "T0" {
		t.Fatalf("single tree = %s", tree)
	}
}

func TestSPNodeStringNil(t *testing.T) {
	var n *SPNode
	if n.String() != "ε" {
		t.Fatalf("nil String = %q", n.String())
	}
}

func TestTreeEvaluateMatchesExactOnDiamond(t *testing.T) {
	g := dag.Diamond(1, 5, 3, 2)
	m := failure.Model{Lambda: 0.2}
	tree, err := Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	d, err := tree.Evaluate(g, m, -1)
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := montecarlo.ExactTwoState(g, m)
	if math.Abs(d.Mean()-exact) > 1e-9 {
		t.Fatalf("tree evaluate %v != exact %v", d.Mean(), exact)
	}
}

func TestRandomSeriesParallelIsSP(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		g, err := dag.RandomSeriesParallel(1+rng.Intn(40), dag.RandomConfig{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		sp, err := IsSeriesParallel(g)
		if err != nil {
			t.Fatal(err)
		}
		if !sp {
			t.Fatalf("trial %d: generated graph not SP (%d tasks)", trial, g.NumTasks())
		}
	}
}

// Property: on random SP graphs, the three independent evaluations agree —
// reduction-based EvaluateSP, recursive tree Evaluate, and (for small
// graphs) exhaustive enumeration.
func TestQuickSPEvaluationsAgree(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := 1 + int(szRaw)%14
		g, err := dag.RandomSeriesParallel(size, dag.RandomConfig{}, rng)
		if err != nil || g.NumTasks() > montecarlo.MaxExactTasks {
			return err == nil // oversized: skip but don't fail
		}
		m := failure.Model{Lambda: 0.1}
		spRes, err := EvaluateSP(g, m, -1)
		if err != nil {
			return false
		}
		tree, err := Decompose(g)
		if err != nil {
			return false
		}
		d, err := tree.Evaluate(g, m, -1)
		if err != nil {
			return false
		}
		exact, err := montecarlo.ExactTwoState(g, m)
		if err != nil {
			return false
		}
		return math.Abs(spRes.Estimate-exact) < 1e-9 &&
			math.Abs(d.Mean()-exact) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Regression guard: Dodin duplication shares SP subtrees between arcs, so
// any per-merge operation that walks subtrees recursively (rather than
// using cached fields like minLeaf) degrades exponentially. QR at high
// pfail exercised the worst case: ~0.2 s healthy, ~17 s when the
// canonical-order sort recomputed subtree minima recursively.
func TestDodinTreeSharingStaysFast(t *testing.T) {
	g, _ := linalg.QR(8, linalg.KernelTimes{})
	m, _ := failure.FromPfail(0.01, g.MeanWeight())
	start := time.Now()
	if _, _, err := Dodin(g, m, 0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("Dodin on QR k=8 took %v; shared-subtree blowup regressed", elapsed)
	}
}

func TestTreeTaskCountMatchesGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := dag.RandomSeriesParallel(25, dag.RandomConfig{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	tasks := tree.Tasks()
	if len(tasks) != g.NumTasks() {
		t.Fatalf("tree has %d leaves for %d tasks", len(tasks), g.NumTasks())
	}
	seen := make(map[int]bool)
	for _, id := range tasks {
		if seen[id] {
			t.Fatalf("task %d appears twice in the tree", id)
		}
		seen[id] = true
	}
}
