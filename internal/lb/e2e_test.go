package lb

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/httpx"
	"repro/internal/service"
)

// This file is the multi-process cluster e2e suite: it builds the real
// cmd/makespand and cmd/makespan-lb binaries, boots three replicas
// behind the lb plus one single-process reference daemon, and pins the
// ROADMAP's determinism-regardless-of-replica guarantee byte for byte:
// every response through the front equals the single daemon's, before
// and after a replica is SIGTERMed mid-run and its shard remaps. The
// CI cluster job (scripts/cluster_e2e.sh) exercises the same guarantee
// with curl; docs/E2E.md documents the case table.

var (
	clusterOnce sync.Once
	clusterDir  string
	clusterErr  error
)

// buildClusterBinaries compiles makespand and makespan-lb once per
// test process.
func buildClusterBinaries(t *testing.T) string {
	t.Helper()
	clusterOnce.Do(func() {
		dir, err := os.MkdirTemp("", "makespanlb-e2e-*")
		if err != nil {
			clusterErr = err
			return
		}
		cmd := exec.Command("go", "build", "-o", dir+string(os.PathSeparator),
			"./cmd/makespand", "./cmd/makespan-lb")
		cmd.Dir = "../.." // module root
		if out, err := cmd.CombinedOutput(); err != nil {
			clusterErr = fmt.Errorf("go build: %v\n%s", err, out)
			return
		}
		clusterDir = dir
	})
	if clusterErr != nil {
		t.Skipf("cannot build binaries: %v", clusterErr)
	}
	return clusterDir
}

// proc is one running makespand or makespan-lb process under test.
type proc struct {
	base   string // http://host:port
	cmd    *exec.Cmd
	waitc  chan error // result of cmd.Wait (buffered 1)
	stderr *bytes.Buffer
	mu     sync.Mutex // guards stderr
}

func (p *proc) stderrTail() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stderr.String()
}

// startProc launches one binary on a free port and returns once its
// /healthz answers, scraping the listening address from stderr and
// failing fast with the process log when it dies during startup.
func startProc(t *testing.T, bin, name string, env []string, args ...string) *proc {
	t.Helper()
	cmd := exec.Command(filepath.Join(bin, name), append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	cmd.Env = append(os.Environ(), env...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &proc{cmd: cmd, waitc: make(chan error, 1), stderr: &bytes.Buffer{}}

	addrRe := regexp.MustCompile(`listening on (\S+)`)
	addrc := make(chan string, 1)
	go func() {
		lines := bufio.NewScanner(stderr)
		for lines.Scan() {
			line := lines.Text()
			p.mu.Lock()
			p.stderr.WriteString(line)
			p.stderr.WriteByte('\n')
			p.mu.Unlock()
			if m := addrRe.FindStringSubmatch(line); m != nil {
				select {
				case addrc <- m[1]:
				default:
				}
			}
		}
		p.waitc <- cmd.Wait()
	}()
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		select {
		case <-p.waitc:
		case <-time.After(10 * time.Second):
		}
	})

	select {
	case addr := <-addrc:
		p.base = "http://" + addr
	case err := <-p.waitc:
		t.Fatalf("%s died during startup (%v); stderr:\n%s", name, err, p.stderrTail())
	case <-time.After(30 * time.Second):
		t.Fatalf("%s did not report a listening address; stderr:\n%s", name, p.stderrTail())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpx.WaitReady(ctx, p.base+"/healthz", nil); err != nil {
		t.Fatalf("%s never became ready (%v); stderr:\n%s", name, err, p.stderrTail())
	}
	return p
}

func clusterPost(t *testing.T, url, body string) string {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode >= 300 {
		t.Fatalf("POST %s: %d %s", url, resp.StatusCode, b)
	}
	return string(b)
}

// clusterCases is the request set driven through both fronts. Each
// case exercises a different route and a different graph, so the
// shards spread across the fleet.
var clusterCases = []struct {
	name, route, body string
}{
	{"estimate-lu", "/v1/estimate",
		`{"kind":"lu","k":8,"pfail":0.001,"methods":"paper","trials":2000,"seed":7,"bounds":true,"quantiles":[0.5,0.95]}`},
	{"estimate-qr-lambda", "/v1/estimate",
		`{"kind":"qr","k":6,"lambda":0.002,"methods":"all","trials":1000,"seed":11}`},
	{"estimate-adaptive", "/v1/estimate",
		`{"kind":"cholesky","k":8,"pfail":0.01,"methods":"First Order","tolerance":0.02,"seed":5}`},
	{"sweep-default", "/v1/sweep", `{"trials":2000,"seed":7}`},
	{"sweep-custom", "/v1/sweep",
		`{"kind":"cholesky","k":6,"pfails":[0.1,0.01,0.001],"trials":1500,"seed":3,"methods":"all"}`},
	{"schedule", "/v1/schedule",
		`{"kind":"lu","k":8,"procs":4,"pfail":0.01,"trials":2000,"seed":7,"quantiles":[0.5,0.99]}`},
}

// TestE2EClusterByteIdentical is the acceptance criterion for cluster
// mode: three replicas behind makespan-lb answer every request byte-
// identically to one single-process daemon (timing normalized), the
// shard owner's SIGTERM mid-request still yields the full 200 document
// through the front, and after the drain remaps its shard the same
// requests stay byte-identical on the surviving replicas.
func TestE2EClusterByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildClusterBinaries(t)

	// Replicas drain gracefully (grace window so the lb's checker can
	// observe the draining healthz) and carry a chunk delay so the
	// mid-drain estimate reliably straddles the SIGTERM.
	replicaEnv := []string{"MAKESPAND_FAULTS=mc.chunk=delay:5ms"}
	replicaArgs := []string{"-workers", "2", "-drain-grace", "500ms", "-drain-timeout", "30s"}
	var replicas []*proc
	var bases []string
	for i := 0; i < 3; i++ {
		r := startProc(t, bin, "makespand", replicaEnv, replicaArgs...)
		replicas = append(replicas, r)
		bases = append(bases, r.base)
	}
	front := startProc(t, bin, "makespan-lb", nil,
		"-replicas", strings.Join(bases, ","),
		"-check-interval", "100ms", "-hedge-after", "10s")
	ref := startProc(t, bin, "makespand", nil, "-workers", "2")

	// Phase 1: the full request set through the lb vs the single
	// daemon, cold then warm.
	for _, c := range clusterCases {
		t.Run(c.name, func(t *testing.T) {
			want := normalize([]byte(clusterPost(t, ref.base+c.route, c.body)))
			got := normalize([]byte(clusterPost(t, front.base+c.route, c.body)))
			if got != want {
				t.Errorf("cluster response differs from single daemon:\nlb:\n%s\nsingle:\n%s", got, want)
			}
			warm := normalize([]byte(clusterPost(t, front.base+c.route, c.body)))
			if warm != want {
				t.Errorf("warm cluster response differs from single daemon")
			}
		})
	}

	// Submit-then-lookup routes by content address on both routes.
	t.Run("submit-and-get", func(t *testing.T) {
		sub := clusterPost(t, front.base+"/v1/graphs", `{"kind":"lu","k":5}`)
		m := regexp.MustCompile(`"id": "([^"]+)"`).FindStringSubmatch(sub)
		if m == nil {
			t.Fatalf("no id in %s", sub)
		}
		resp, err := http.Get(front.base + "/v1/graphs/" + m[1])
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("GET after submit through lb: %d %s", resp.StatusCode, b)
		}
	})
	if t.Failed() {
		t.FailNow()
	}

	// Phase 2: SIGTERM the shard owner while its request is mid-kernel.
	// The draining replica finishes the in-flight work (full 200 via
	// the lb), the checker ejects it, the shard remaps to the ring
	// sibling, and the replayed request is byte-identical.
	slowBody := `{"kind":"lu","k":6,"pfail":0.05,"methods":"First Order","trials":40960,"seed":9}`
	sel, err := service.ExtractSelector([]byte(slowBody))
	if err != nil {
		t.Fatal(err)
	}
	key, err := sel.RoutingKey()
	if err != nil {
		t.Fatal(err)
	}
	owner, ok := newRing(bases, 0).owner(key)
	if !ok {
		t.Fatal("no ring owner")
	}
	var victim *proc
	for _, r := range replicas {
		if r.base == owner {
			victim = r
		}
	}
	if victim == nil {
		t.Fatalf("owner %s not among replicas %v", owner, bases)
	}
	want := normalize([]byte(clusterPost(t, ref.base+"/v1/estimate", slowBody)))

	done := make(chan string, 1)
	go func() {
		resp, err := http.Post(front.base+"/v1/estimate", "application/json", strings.NewReader(slowBody))
		if err != nil {
			done <- "error: " + err.Error()
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		done <- fmt.Sprintf("%d %s", resp.StatusCode, b)
	}()

	// Wait until the estimate is inside the victim's handler stack
	// (its own /v1/cache probe adds one), then signal.
	inFlight := func() bool {
		resp, err := http.Get(victim.base + "/v1/cache")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return strings.Contains(string(b), `"in_flight": 2`)
	}
	deadline := time.Now().Add(15 * time.Second)
	for !inFlight() {
		if time.Now().After(deadline) {
			t.Fatalf("estimate never showed up in flight on the owner; lb stderr:\n%s", front.stderrTail())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := victim.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	select {
	case res := <-done:
		if !strings.HasPrefix(res, "200 ") {
			t.Fatalf("mid-drain request through lb: %s\nvictim stderr:\n%s\nlb stderr:\n%s",
				res, victim.stderrTail(), front.stderrTail())
		}
		if got := normalize([]byte(strings.TrimPrefix(res, "200 "))); got != want {
			t.Fatalf("mid-drain response differs from single daemon:\nlb:\n%s\nsingle:\n%s", got, want)
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("mid-drain request never completed; victim stderr:\n%s", victim.stderrTail())
	}

	// The victim drains out: exit 0, ejected from the ring.
	select {
	case err := <-victim.waitc:
		if err != nil {
			t.Fatalf("victim exit after drain: %v; stderr:\n%s", err, victim.stderrTail())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("victim never exited after SIGTERM; stderr:\n%s", victim.stderrTail())
	}
	ringSize := func() int {
		resp, err := http.Get(front.base + "/v1/replicas")
		if err != nil {
			return -1
		}
		defer resp.Body.Close()
		var list struct {
			RingSize int `json:"ring_size"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
			return -1
		}
		return list.RingSize
	}
	deadline = time.Now().Add(15 * time.Second)
	for ringSize() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("lb never ejected the drained replica (ring %d); lb stderr:\n%s",
				ringSize(), front.stderrTail())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Phase 3: the remapped shard and the whole request set stay
	// byte-identical on the surviving replicas.
	if got := normalize([]byte(clusterPost(t, front.base+"/v1/estimate", slowBody))); got != want {
		t.Errorf("post-remap response differs from single daemon:\nlb:\n%s\nsingle:\n%s", got, want)
	}
	for _, c := range clusterCases {
		want := normalize([]byte(clusterPost(t, ref.base+c.route, c.body)))
		if got := normalize([]byte(clusterPost(t, front.base+c.route, c.body))); got != want {
			t.Errorf("%s after remap differs from single daemon", c.name)
		}
	}
	// The front itself stayed healthy throughout.
	resp, err := http.Get(front.base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("lb healthz %d after remap", resp.StatusCode)
	}
}
