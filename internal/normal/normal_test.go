package normal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/distribution"
	"repro/internal/failure"
	"repro/internal/linalg"
	"repro/internal/montecarlo"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTaskNormalMoments(t *testing.T) {
	m := failure.Model{Lambda: 0.1}
	n := taskNormal(2, m)
	d, _ := distribution.TwoState(2, m.PSuccess(2))
	if !almostEq(n.Mu, d.Mean(), 1e-12) || !almostEq(n.Sigma2, d.Variance(), 1e-12) {
		t.Fatalf("taskNormal %v vs discrete (%v, %v)", n, d.Mean(), d.Variance())
	}
	z := taskNormal(0, m)
	if z.Mu != 0 || z.Sigma2 != 0 {
		t.Fatalf("zero-weight task: %v", z)
	}
}

func TestSculliChainIsExactSum(t *testing.T) {
	// On a chain there are no maxima: the estimate is the exact sum of
	// per-task means Σ a_i(2−p_i).
	g := dag.Chain(5, 1, 2, 3)
	m := failure.Model{Lambda: 0.05}
	res, err := Sculli(g, m)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for i := 0; i < g.NumTasks(); i++ {
		a := g.Weight(i)
		want += a * (2 - m.PSuccess(a))
	}
	if !almostEq(res.Estimate, want, 1e-12) {
		t.Fatalf("chain estimate = %v want %v", res.Estimate, want)
	}
	exact, _ := montecarlo.ExactTwoState(g, m)
	if !almostEq(res.Estimate, exact, 1e-12) {
		t.Fatalf("chain should be exact: %v vs %v", res.Estimate, exact)
	}
}

func TestCorLCAChainMatchesSculli(t *testing.T) {
	g := dag.Chain(6, 1.5, 0.5)
	m := failure.Model{Lambda: 0.08}
	s, err := Sculli(g, m)
	if err != nil {
		t.Fatal(err)
	}
	c, err := CorLCA(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(s.Estimate, c.Estimate, 1e-12) {
		t.Fatalf("chain: Sculli %v vs CorLCA %v", s.Estimate, c.Estimate)
	}
}

func TestBothRejectCycle(t *testing.T) {
	g := dag.New(2)
	a := g.MustAddTask("a", 1)
	b := g.MustAddTask("b", 1)
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, a)
	if _, err := Sculli(g, failure.Model{Lambda: 0.1}); err == nil {
		t.Fatal("Sculli accepted cycle")
	}
	if _, err := CorLCA(g, failure.Model{Lambda: 0.1}); err == nil {
		t.Fatal("CorLCA accepted cycle")
	}
}

func TestZeroLambdaStillAccountsForStructure(t *testing.T) {
	// With λ=0 every task is deterministic: both methods reduce to the
	// longest path.
	g := dag.Diamond(1, 5, 3, 2)
	for _, f := range []func(*dag.Graph, failure.Model) (Result, error){Sculli, CorLCA} {
		res, err := f(g, failure.Model{})
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(res.Estimate, 8, 1e-12) || res.Makespan.Sigma2 != 0 {
			t.Fatalf("λ=0 estimate = %+v want 8", res)
		}
	}
}

func TestCorLCAHandlesSharedAncestorBetterThanSculli(t *testing.T) {
	// Two long parallel branches hanging off a heavy shared prefix:
	// completions are strongly correlated through the prefix. Sculli
	// treats them as independent and overestimates the max; CorLCA should
	// land closer to the exact expectation.
	g := dag.New(0)
	root := g.MustAddTask("root", 8)
	l1 := g.MustAddTask("l1", 1)
	l2 := g.MustAddTask("l2", 1)
	r1 := g.MustAddTask("r1", 1)
	r2 := g.MustAddTask("r2", 1)
	sink := g.MustAddTask("sink", 1)
	g.MustAddEdge(root, l1)
	g.MustAddEdge(l1, l2)
	g.MustAddEdge(root, r1)
	g.MustAddEdge(r1, r2)
	g.MustAddEdge(l2, sink)
	g.MustAddEdge(r2, sink)
	m := failure.Model{Lambda: 0.08}
	exact, err := montecarlo.ExactTwoState(g, m)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := Sculli(g, m)
	c, _ := CorLCA(g, m)
	errS := math.Abs(s.Estimate - exact)
	errC := math.Abs(c.Estimate - exact)
	if errC > errS {
		t.Fatalf("CorLCA error %v worse than Sculli %v (exact %v, S %v, C %v)",
			errC, errS, exact, s.Estimate, c.Estimate)
	}
}

func TestEstimatesNearExactOnSmallGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		g, _ := dag.LayeredRandom(dag.RandomConfig{Tasks: 12, EdgeProb: 0.5, MaxLayerWidth: 3}, rng)
		m := failure.Model{Lambda: 0.02}
		exact, err := montecarlo.ExactTwoState(g, m)
		if err != nil {
			t.Fatal(err)
		}
		for name, f := range map[string]func(*dag.Graph, failure.Model) (Result, error){
			"sculli": Sculli, "corlca": CorLCA,
		} {
			res, err := f(g, m)
			if err != nil {
				t.Fatal(err)
			}
			if rel := math.Abs(res.Estimate-exact) / exact; rel > 0.05 {
				t.Fatalf("%s trial %d: rel err %v (est %v exact %v)", name, trial, rel, res.Estimate, exact)
			}
		}
	}
}

// Property: both estimates are at least the failure-free makespan minus
// slack (they can dip slightly below d(G) since a Gaussian has mass below
// its mean, but not structurally lower), and both have finite variance.
func TestQuickEstimatesSane(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := dag.LayeredRandom(dag.RandomConfig{Tasks: 25, EdgeProb: 0.4, MaxLayerWidth: 5}, rng)
		if err != nil {
			return false
		}
		m := failure.Model{Lambda: 0.03}
		d, _ := dag.Makespan(g)
		s, err := Sculli(g, m)
		if err != nil {
			return false
		}
		c, err := CorLCA(g, m)
		if err != nil {
			return false
		}
		return s.Estimate > 0.9*d && c.Estimate > 0.9*d &&
			s.Makespan.Sigma2 >= 0 && c.Makespan.Sigma2 >= 0 &&
			!math.IsNaN(s.Estimate) && !math.IsNaN(c.Estimate)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestOnFactorizationDAGs(t *testing.T) {
	m := failure.Model{Lambda: 0.01}
	for _, fk := range linalg.All() {
		g, err := linalg.Generate(fk, 6, linalg.KernelTimes{})
		if err != nil {
			t.Fatal(err)
		}
		d, _ := dag.Makespan(g)
		s, err := Sculli(g, m)
		if err != nil {
			t.Fatal(err)
		}
		c, err := CorLCA(g, m)
		if err != nil {
			t.Fatal(err)
		}
		for name, est := range map[string]float64{"sculli": s.Estimate, "corlca": c.Estimate} {
			if est < d || est > 2*d {
				t.Errorf("%s on %s: estimate %v outside [d, 2d] = [%v, %v]", name, fk, est, d, 2*d)
			}
		}
	}
}

func TestMultiSourceMultiSink(t *testing.T) {
	// Two disjoint chains: makespan is the max of the two sums.
	g := dag.New(4)
	a := g.MustAddTask("a", 3)
	b := g.MustAddTask("b", 3)
	c := g.MustAddTask("c", 2)
	d := g.MustAddTask("d", 2)
	g.MustAddEdge(a, b)
	g.MustAddEdge(c, d)
	m := failure.Model{Lambda: 0.05}
	exact, _ := montecarlo.ExactTwoState(g, m)
	s, err := Sculli(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(s.Estimate-exact) / exact; rel > 0.05 {
		t.Fatalf("two chains: rel err %v (est %v exact %v)", rel, s.Estimate, exact)
	}
	cl, err := CorLCA(g, m)
	if err != nil {
		t.Fatal(err)
	}
	// Disjoint components share no ancestor: CorLCA must use ρ=0 and agree
	// with Sculli exactly.
	if !almostEq(cl.Estimate, s.Estimate, 1e-12) {
		t.Fatalf("disjoint components: CorLCA %v != Sculli %v", cl.Estimate, s.Estimate)
	}
}
