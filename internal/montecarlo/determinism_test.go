package montecarlo

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/dag"
	"repro/internal/failure"
	"repro/internal/linalg"
)

// The fused sampler's contract: with a fixed Seed, the Result is
// bit-identical for every worker count, in both re-execution modes —
// trials are chunked deterministically and the reduction folds chunks in
// index order, so scheduling cannot leak into the estimate.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	g := dag.Wavefront(5, 1.5)
	m, err := failure.FromPfail(0.05, g.MeanWeight())
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{FullReexecution, SingleRetry} {
		// More trials than one chunk, not a multiple of the chunk size.
		base := Config{Trials: 3*chunkSize + 137, Seed: 99, Workers: 1, Mode: mode}
		ref, err := Estimate(g, m, base)
		if err != nil {
			t.Fatal(err)
		}
		if ref.StdDev == 0 {
			t.Fatalf("%v: degenerate reference run", mode)
		}
		for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
			cfg := base
			cfg.Workers = workers
			got, err := Estimate(g, m, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got != ref {
				t.Fatalf("%v: workers=%d result %+v != workers=1 %+v", mode, workers, got, ref)
			}
		}
	}
}

// RunSamples must produce the identical sample vector for any worker
// count, and a Result identical to Run's.
func TestRunSamplesDeterministicAcrossWorkerCounts(t *testing.T) {
	g := dag.Diamond(1, 5, 3, 2)
	m := failure.Model{Lambda: 0.2}
	cfg1 := Config{Trials: chunkSize + 59, Seed: 5, Workers: 1}
	e1, err := NewEstimator(g, m, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	res1, s1, err := e1.RunSamples()
	if err != nil {
		t.Fatal(err)
	}
	cfg4 := cfg1
	cfg4.Workers = 4
	e4, err := NewEstimator(g, m, cfg4)
	if err != nil {
		t.Fatal(err)
	}
	res4, s4, err := e4.RunSamples()
	if err != nil {
		t.Fatal(err)
	}
	if res1 != res4 {
		t.Fatalf("RunSamples results differ: %+v vs %+v", res1, res4)
	}
	if s1.N() != s4.N() {
		t.Fatalf("sample counts differ")
	}
	for i := 0; i < s1.N(); i++ {
		if s1.sorted[i] != s4.sorted[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, s1.sorted[i], s4.sorted[i])
		}
	}
	// Run on a fresh estimator with the same config matches RunSamples.
	e, err := NewEstimator(g, m, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	run, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if run != res1 {
		t.Fatalf("Run %+v != RunSamples %+v", run, res1)
	}
}

// The legacy sampler stays available behind the flag and keeps its v1
// semantics: reproducible per (Seed, Workers) pair.
func TestLegacySamplerReproducible(t *testing.T) {
	g := dag.Diamond(1, 5, 3, 2)
	m := failure.Model{Lambda: 0.2}
	cfg := Config{Trials: 20000, Seed: 42, Workers: 2, Mode: FullReexecution, LegacySampler: true}
	a, err := Estimate(g, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Estimate(g, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("legacy sampler not reproducible: %+v vs %+v", a, b)
	}
	// And it agrees statistically with the fused sampler.
	fused, err := Estimate(g, m, Config{Trials: 20000, Seed: 42, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fused.Mean-a.Mean) > fused.CI95+a.CI95 {
		t.Fatalf("fused %v vs legacy %v beyond joint CI", fused.Mean, a.Mean)
	}
}

// The estimator is a snapshot: mutating the graph between NewEstimator
// and Run must surface ErrStaleGraph (for both samplers) rather than
// silently answering from the stale snapshot.
func TestRunRejectsStaleGraph(t *testing.T) {
	for _, legacy := range []bool{false, true} {
		g := dag.Diamond(1, 5, 3, 2)
		e, err := NewEstimator(g, failure.Model{Lambda: 0.1}, Config{Trials: 100, Seed: 1, LegacySampler: legacy})
		if err != nil {
			t.Fatal(err)
		}
		if err := g.SetWeight(0, 9); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != ErrStaleGraph {
			t.Fatalf("legacy=%v: Run after mutation: err = %v, want ErrStaleGraph", legacy, err)
		}
		if _, _, err := e.RunSamples(); err != ErrStaleGraph {
			t.Fatalf("legacy=%v: RunSamples after mutation: err = %v, want ErrStaleGraph", legacy, err)
		}
	}
}

// A task that can never succeed must be rejected at construction under
// full re-execution (the attempt count diverges; the v1 rejection loop
// hung) — but SingleRetry stays well-defined at pf=1: every trial takes
// exactly 2a, matching v1 behavior.
func TestRejectsCertainFailure(t *testing.T) {
	g := dag.New(1)
	g.MustAddTask("doomed", 2)
	if _, err := EstimateRates(g, []float64{math.Inf(1)}, Config{Trials: 10}); err == nil {
		t.Fatal("pfail=1 accepted under full re-execution")
	}
	res, err := EstimateRates(g, []float64{1000}, Config{Trials: 500, Seed: 3, Mode: SingleRetry})
	if err != nil {
		t.Fatalf("pfail=1 rejected under SingleRetry: %v", err)
	}
	if res.Mean != 4 || res.StdDev != 0 || res.Min != 4 || res.Max != 4 {
		t.Fatalf("pf=1 SingleRetry result = %+v want constant 2a = 4", res)
	}
}

// Zero-pfail tasks take the deterministic fast path: a graph whose only
// failing task is one of many must still match the exact 2-state result.
func TestZeroPfailFastPathMixed(t *testing.T) {
	g := dag.Chain(6, 1, 2, 1, 3, 1, 2)
	rates := []float64{0, 0, 0.4, 0, 0, 0}
	exact, err := ExactTwoStateRates(g, rates)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := EstimateRates(g, rates, Config{Trials: 200000, Seed: 17, Mode: SingleRetry})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mc.Mean-exact) > 5*mc.CI95 {
		t.Fatalf("MC %v vs exact %v (CI %v)", mc.Mean, exact, mc.CI95)
	}
}

// The split pipeline's contract: the table-driven sampler and the lane-
// blocked batch evaluator must produce bit-identical Results and sample
// vectors to the reference per-trial paths (the v2 fused engine's
// arithmetic), across graphs, failure probabilities and modes. Tables are
// force-built so the fast sampler is exercised even where the size
// heuristic would skip it.
func TestBatchedMatchesPerTrialPaths(t *testing.T) {
	fft, err := dag.FFT(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	graphs := map[string]*dag.Graph{
		"wavefront": dag.Wavefront(6, 1.5),
		"fft":       fft,
		"chain":     dag.Chain(5, 1, 2, 1, 3, 1),
		"diamond":   dag.Diamond(1, 5, 3, 2),
	}
	for name, g := range graphs {
		for _, pfail := range []float64{0.3, 0.05, 0.002} {
			m, err := failure.FromPfail(pfail, g.MeanWeight())
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range []Mode{FullReexecution, SingleRetry} {
				cfg := Config{Trials: chunkSize + 333, Seed: 77, Workers: 2, Mode: mode}
				variant := func(ref, scalar bool) (Result, *Samples) {
					e, err := NewEstimator(g, m, cfg)
					if err != nil {
						t.Fatal(err)
					}
					e.buildTables(true)
					e.refSampler, e.scalarEval = ref, scalar
					res, s, err := e.RunSamples()
					if err != nil {
						t.Fatal(err)
					}
					return res, s
				}
				wantRes, wantS := variant(true, true) // reference sampler + per-trial eval
				for _, v := range []struct {
					name        string
					ref, scalar bool
				}{
					{"fast+batched", false, false},
					{"fast+scalar", false, true},
					{"ref+batched", true, false},
				} {
					res, s := variant(v.ref, v.scalar)
					if res != wantRes {
						t.Fatalf("%s pfail=%g %v %s: Result %+v != per-trial %+v", name, pfail, mode, v.name, res, wantRes)
					}
					for i := 0; i < s.N(); i++ {
						if s.sorted[i] != wantS.sorted[i] {
							t.Fatalf("%s pfail=%g %v %s: sample %d differs", name, pfail, mode, v.name, i)
						}
					}
				}
			}
		}
	}
}

// The sampler-table size heuristic must not change results: estimators
// with and without tables agree bit for bit (the tables are exact by
// construction — this guards the construction itself).
func TestTableHeuristicInvariant(t *testing.T) {
	g, err := linalg.LU(6, linalg.KernelTimes{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pfail := range []float64{0.2, 0.01, 0.0001} {
		m, err := failure.FromPfail(pfail, g.MeanWeight())
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Trials: 6000, Seed: 5}
		eAuto, err := NewEstimator(g, m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		eForced, err := NewEstimator(g, m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		eForced.buildTables(true)
		a, err := eAuto.Run()
		if err != nil {
			t.Fatal(err)
		}
		b, err := eForced.Run()
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("pfail=%g: auto %+v != forced tables %+v", pfail, a, b)
		}
	}
}
