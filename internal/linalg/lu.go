package linalg

import (
	"fmt"

	"repro/internal/dag"
)

// LU returns the task DAG of a tiled LU factorization (no pivoting across
// tiles) of a k×k tile matrix. Task names follow the paper's Figure 2:
// GETRF_j, TRSML_i_j (column panel, i>j), TRSMU_j_l (row panel, l>j),
// GEMM_i_l_j (trailing update of tile (i,l) at step j).
//
// The DAG has k GETRF, k(k-1)/2 TRSML, k(k-1)/2 TRSMU and
// Σ_{j} (k-1-j)² = k(k-1)(2k-1)/6 GEMM tasks — LUTaskCount(k) in total.
// For k=20 this is 2,870 tasks, the count the paper reports in Table I.
func LU(k int, kt KernelTimes) (*dag.Graph, error) {
	if k < 1 {
		return nil, fmt.Errorf("linalg: LU tile count k must be >= 1, got %d", k)
	}
	if kt == (KernelTimes{}) {
		kt = DefaultKernelTimes()
	}
	g := dag.New(LUTaskCount(k))
	getrf := make([]int, k)
	trsml := make(map[[2]int]int) // (i,j): update of tile (i,j), i>j
	trsmu := make(map[[2]int]int) // (j,l): update of tile (j,l), l>j
	gemm := make(map[[3]int]int)  // (i,l,j): update of tile (i,l) at step j
	for j := 0; j < k; j++ {
		getrf[j] = g.MustAddTask(fmt.Sprintf("GETRF_%d", j), kt[GETRF])
		if j > 0 {
			g.MustAddEdge(gemm[[3]int{j, j, j - 1}], getrf[j])
		}
		for i := j + 1; i < k; i++ {
			id := g.MustAddTask(fmt.Sprintf("TRSML_%d_%d", i, j), kt[TRSML])
			trsml[[2]int{i, j}] = id
			g.MustAddEdge(getrf[j], id)
			if j > 0 {
				g.MustAddEdge(gemm[[3]int{i, j, j - 1}], id)
			}
		}
		for l := j + 1; l < k; l++ {
			id := g.MustAddTask(fmt.Sprintf("TRSMU_%d_%d", j, l), kt[TRSMU])
			trsmu[[2]int{j, l}] = id
			g.MustAddEdge(getrf[j], id)
			if j > 0 {
				g.MustAddEdge(gemm[[3]int{j, l, j - 1}], id)
			}
		}
		for i := j + 1; i < k; i++ {
			for l := j + 1; l < k; l++ {
				id := g.MustAddTask(fmt.Sprintf("GEMM_%d_%d_%d", i, l, j), kt[GEMM])
				gemm[[3]int{i, l, j}] = id
				g.MustAddEdge(trsml[[2]int{i, j}], id)
				g.MustAddEdge(trsmu[[2]int{j, l}], id)
				if j > 0 {
					g.MustAddEdge(gemm[[3]int{i, l, j - 1}], id)
				}
			}
		}
	}
	return g, nil
}

// LUTaskCount returns the number of tasks of LU(k):
// k + k(k-1) + k(k-1)(2k-1)/6. LUTaskCount(20) == 2870 (paper Table I).
func LUTaskCount(k int) int {
	return k + k*(k-1) + k*(k-1)*(2*k-1)/6
}
