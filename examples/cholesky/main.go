// Cholesky: the paper's headline workload. Generates the task DAG of a
// tiled Cholesky factorization, sweeps the three failure probabilities of
// the paper's evaluation, and prints the relative error of each estimator
// against a Monte Carlo ground truth — a miniature of Figures 4-6.
//
// Run with:
//
//	go run ./examples/cholesky
package main

import (
	"fmt"
	"log"
	"time"

	makespan "repro"
)

func main() {
	const k = 8
	g, err := makespan.Cholesky(k)
	if err != nil {
		log.Fatal(err)
	}
	d, _ := makespan.FailureFreeMakespan(g)
	fmt.Printf("Cholesky k=%d: %d tasks, mean task weight %.3f s, d(G) = %.4f s\n\n",
		k, g.NumTasks(), g.MeanWeight(), d)

	for _, pfail := range []float64{0.01, 0.001, 0.0001} {
		model, err := makespan.ModelFromPfail(pfail, g.MeanWeight())
		if err != nil {
			log.Fatal(err)
		}
		mc, err := makespan.MonteCarlo(g, model, makespan.MonteCarloConfig{Trials: 100000, Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pfail = %g (MC ground truth %.6f ± %.6f)\n", pfail, mc.Mean, mc.CI95)
		report := func(name string, f func() (float64, error)) {
			t0 := time.Now()
			est, err := f()
			if err != nil {
				log.Fatal(err)
			}
			rel := (est - mc.Mean) / mc.Mean
			fmt.Printf("  %-14s %.6f  relerr %+9.2e  (%v)\n", name, est, rel, time.Since(t0).Round(time.Microsecond))
		}
		report("First Order", func() (float64, error) { return makespan.FirstOrder(g, model) })
		report("Dodin", func() (float64, error) { return makespan.Dodin(g, model, 0) })
		report("Normal", func() (float64, error) { return makespan.Normal(g, model) })
		fmt.Println()
	}
	fmt.Println("note how First Order's error collapses as pfail shrinks — the paper's key result.")
}
