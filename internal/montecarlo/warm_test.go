package montecarlo

import (
	"testing"

	"repro/internal/failure"
	"repro/internal/linalg"
)

// WithConfig must reproduce a fresh estimator's result bit for bit while
// sharing the compiled snapshot, for several (trials, seed) pairs and
// worker counts.
func TestWithConfigMatchesFreshEstimator(t *testing.T) {
	g, err := linalg.Generate(linalg.FactLU, 8, linalg.KernelTimes{})
	if err != nil {
		t.Fatal(err)
	}
	model, err := failure.FromPfail(0.01, g.MeanWeight())
	if err != nil {
		t.Fatal(err)
	}
	warm, err := NewEstimator(g, model, Config{Trials: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []Config{
		{Trials: 3000, Seed: 7},
		{Trials: 5000, Seed: 7, Workers: 3},
		{Trials: 3000, Seed: 11, Workers: 2},
	} {
		fresh, err := NewEstimator(g, model, c)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Run()
		if err != nil {
			t.Fatal(err)
		}
		re, err := warm.WithConfig(c)
		if err != nil {
			t.Fatal(err)
		}
		got, err := re.Run()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("cfg %+v: warm %+v != fresh %+v", c, got, want)
		}
	}
	// The original stays runnable after derivations.
	if _, err := warm.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWithConfigValidation(t *testing.T) {
	g, _ := linalg.Generate(linalg.FactCholesky, 4, linalg.KernelTimes{})
	model, _ := failure.FromPfail(0.01, g.MeanWeight())
	e, err := NewEstimator(g, model, Config{Trials: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.WithConfig(Config{Trials: -1}); err == nil {
		t.Fatal("negative trials accepted")
	}
	if _, err := e.WithConfig(Config{Workers: -2}); err == nil {
		t.Fatal("negative workers accepted")
	}
	if _, err := e.WithConfig(Config{Mode: SingleRetry}); err == nil {
		t.Fatal("mode change accepted")
	}
	if _, err := e.WithConfig(Config{LegacySampler: true}); err == nil {
		t.Fatal("legacy toggle accepted")
	}
	re, err := e.WithConfig(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if re.cfg.Trials != DefaultTrials {
		t.Fatalf("default trials = %d", re.cfg.Trials)
	}
}

func TestEstimatorSizeBytes(t *testing.T) {
	g, _ := linalg.Generate(linalg.FactLU, 10, linalg.KernelTimes{})
	// High pfail so the threshold tables are built (n·pfMax ≥ 8).
	model, _ := failure.FromPfail(0.05, g.MeanWeight())
	e, err := NewEstimator(g, model, Config{Trials: 100})
	if err != nil {
		t.Fatal(err)
	}
	n := int64(g.NumTasks())
	if s := e.SizeBytes(); s < 3*8*n {
		t.Fatalf("SizeBytes = %d, below the bare per-task arrays (%d tasks)", s, n)
	}
	if e.tables == nil {
		t.Fatal("expected threshold tables at pfail 0.05")
	}
	lo, _ := failure.FromPfail(1e-6, g.MeanWeight())
	small, err := NewEstimator(g, lo, Config{Trials: 100})
	if err != nil {
		t.Fatal(err)
	}
	if small.tables != nil && small.SizeBytes() >= e.SizeBytes() {
		t.Fatalf("low-pfail estimator not smaller: %d vs %d", small.SizeBytes(), e.SizeBytes())
	}
}
