package service

import (
	"sync"
	"sync/atomic"

	"repro/internal/montecarlo"
	"repro/internal/schedmc"
)

// This file implements cross-request Monte Carlo coalescing: concurrent
// requests that would run the same trial stream share one kernel run.
//
// Adaptive requests coalesce on (graph entry, schedule?, policy, procs,
// λ, mode, seed) — deliberately NOT on (tolerance, target, confidence):
// the trial stream is chunk-deterministic and target-agnostic, so one
// in-flight run can serve every stopping rule, releasing each waiter as
// soon as the shared prefix satisfies *its* rule. Because the stopping
// point is a prefix of the same stream a solo run would consume, a
// waiter's response is byte-identical to the run it would have done
// alone. The converged snapshot is retained as a "snap" artifact in
// the store (keyed by the entry's graph plus this file's adaptiveKey)
// so later requests (same or looser tolerance) are answered without
// any trials, and tighter ones extend it instead of restarting; the
// store's Put gives replacement delta accounting and eviction under
// the shared byte budget for free.
//
// Fixed-budget requests use a conventional singleflight keyed by the
// full run identity (including trials and whether a sketch is needed):
// followers arriving while the leader computes share its result.
//
// Lock order: Entry.mu → adaptiveSlot.mu → inflightRun.mu. Snapshot
// store access (which takes the resolver lock, possibly then
// Registry.mu via graph eviction) nests under adaptiveSlot.mu.

// adaptiveRunner abstracts the two adaptive kernels the service
// coalesces over: the unbounded-processor estimator and the
// frozen-schedule estimator (which delegates to it). Each request binds
// its own runner (its tolerance/target/confidence); the shared run only
// needs the leader's.
type adaptiveRunner interface {
	ResumeAdaptive(prev *montecarlo.Snapshot, progress func(*montecarlo.Snapshot) bool) (montecarlo.Result, *montecarlo.Snapshot, error)
	SnapshotConverged(snap *montecarlo.Snapshot) bool
	SnapshotResult(snap *montecarlo.Snapshot) (montecarlo.Result, error)
}

// adaptiveKey identifies one shareable adaptive trial stream of an
// entry. sched=false keys the unbounded-processor engine (policy/procs
// zero); sched=true keys a frozen schedule.
type adaptiveKey struct {
	sched  bool
	policy schedmc.Policy
	procs  int
	lambda float64
	mode   montecarlo.Mode
	seed   uint64
}

// adaptiveSlot is the per-key coalescing state: the in-flight run, if
// any. The retained prefix snapshot itself lives in the artifact store
// (Entry.snapshot / Entry.putSnapshot); the slot lock serializes the
// lookup-decide-replace sequence around it.
type adaptiveSlot struct {
	mu  sync.Mutex
	run *inflightRun
}

// inflightRun collects the waiters joined to a leader's kernel run.
type inflightRun struct {
	mu      sync.Mutex
	waiters []*adaptiveWaiter
}

type adaptiveWaiter struct {
	satisfied func(*montecarlo.Snapshot) bool
	ch        chan waiterResult // buffered(1): deliver never blocks
}

type waiterResult struct {
	snap *montecarlo.Snapshot
	err  error
}

// deliver hands the current prefix to every waiter it satisfies (all of
// them when final) and reports whether none remain. Each released
// waiter gets its own clone — the run keeps mutating cur.
func (r *inflightRun) deliver(cur *montecarlo.Snapshot, final bool, err error) (empty bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	kept := r.waiters[:0]
	for _, w := range r.waiters {
		if final || w.satisfied(cur) {
			wr := waiterResult{err: err}
			if err == nil && cur != nil {
				wr.snap = cur.Clone()
			}
			w.ch <- wr
		} else {
			kept = append(kept, w)
		}
	}
	// Zero the tail so dropped waiter pointers don't pin their channels.
	for i := len(kept); i < len(r.waiters); i++ {
		r.waiters[i] = nil
	}
	r.waiters = kept
	return len(kept) == 0
}

// adaptiveSlotFor returns (creating if needed) the entry's coalescing
// slot for key.
func (e *Entry) adaptiveSlotFor(key adaptiveKey) *adaptiveSlot {
	e.mu.Lock()
	defer e.mu.Unlock()
	slot := e.adapts[key]
	if slot == nil {
		slot = &adaptiveSlot{}
		e.adapts[key] = slot
	}
	return slot
}

// coalesceAdaptive answers one adaptive request through the entry's
// shared trial stream for key. Three outcomes per loop iteration: the
// stored snapshot already satisfies this request's rule (serve it, zero
// trials); a run is in flight (join it, wake when the shared prefix
// satisfies us); or lead a run ourselves, extending the stored
// snapshot. A joiner released by a run that ended (its leader's cap)
// before this request's rule was met loops back — its own MaxTrials
// bounds the retry, so the loop terminates.
func (s *Server) coalesceAdaptive(e *Entry, key adaptiveKey, runner adaptiveRunner) (montecarlo.Result, *montecarlo.Snapshot, error) {
	slot := e.adaptiveSlotFor(key)
	for {
		slot.mu.Lock()
		if snap, ok := e.snapshot(key, true); ok && runner.SnapshotConverged(snap) {
			slot.mu.Unlock()
			res, err := runner.SnapshotResult(snap)
			return res, snap, err
		}
		if run := slot.run; run != nil {
			w := &adaptiveWaiter{satisfied: runner.SnapshotConverged, ch: make(chan waiterResult, 1)}
			run.mu.Lock()
			run.waiters = append(run.waiters, w)
			run.mu.Unlock()
			slot.mu.Unlock()
			wr := <-w.ch
			if wr.err != nil {
				return montecarlo.Result{}, nil, wr.err
			}
			if runner.SnapshotConverged(wr.snap) {
				res, err := runner.SnapshotResult(wr.snap)
				return res, wr.snap, err
			}
			continue
		}
		run := &inflightRun{}
		slot.run = run
		prev, _ := e.snapshot(key, false)
		slot.mu.Unlock()

		e.kernelRuns.Add(1)
		var res montecarlo.Result
		var snap *montecarlo.Snapshot
		err := s.heavy(func() error {
			var rerr error
			res, snap, rerr = runner.ResumeAdaptive(prev, func(cur *montecarlo.Snapshot) bool {
				// Release every waiter the prefix satisfies first, then
				// apply the leader's own rule; stop only when both the
				// leader and all joined waiters are done.
				return run.deliver(cur, false, nil) && runner.SnapshotConverged(cur)
			})
			return rerr
		})

		slot.mu.Lock()
		slot.run = nil
		if err == nil {
			if old, ok := e.snapshot(key, false); !ok || snap.Chunks() > old.Chunks() {
				e.putSnapshot(key, snap)
			}
		}
		// Sweep waiters that joined after the run's last progress call;
		// they re-evaluate against the final snapshot and retry if it
		// still falls short of their rule.
		run.deliver(snap, true, err)
		slot.mu.Unlock()
		return res, snap, err
	}
}

// fixedKey identifies one shareable fixed-budget run. sketch is part of
// the identity so a mean-only request never pays for (or waits on) a
// quantile sketch it didn't ask for.
type fixedKey struct {
	sched  bool
	policy schedmc.Policy
	procs  int
	lambda float64
	mode   montecarlo.Mode
	seed   uint64
	trials int
	sketch bool
}

// fixedFlight is one in-flight fixed-budget run; followers block on
// done and then read the leader's fields (written before close).
type fixedFlight struct {
	done    chan struct{}
	joiners atomic.Int64 // followers waiting; test-hook observability
	res     montecarlo.Result
	sk      *montecarlo.QuantileSketch
	err     error
}

// testHookFixedLeader, when set, runs on the leader after its flight is
// registered and before the kernel runs. The under-load test uses it to
// hold the leader until all followers have joined.
var testHookFixedLeader func(f *fixedFlight)

// coalesceFixed deduplicates concurrent identical fixed-budget runs:
// the first request becomes the leader and runs kernel (which takes the
// compute gate itself); requests arriving while it is in flight share
// its result. The flight is removed before done closes, so a request
// arriving after completion runs fresh — fixed runs are cheap to rerun
// and, unlike adaptive snapshots, not worth retaining.
func (s *Server) coalesceFixed(e *Entry, key fixedKey, kernel func() (montecarlo.Result, *montecarlo.QuantileSketch, error)) (montecarlo.Result, *montecarlo.QuantileSketch, error) {
	e.mu.Lock()
	if f := e.fixed[key]; f != nil {
		f.joiners.Add(1)
		e.mu.Unlock()
		<-f.done
		return f.res, f.sk, f.err
	}
	f := &fixedFlight{done: make(chan struct{})}
	e.fixed[key] = f
	e.mu.Unlock()

	if h := testHookFixedLeader; h != nil {
		h(f)
	}
	e.kernelRuns.Add(1)
	f.res, f.sk, f.err = kernel()

	e.mu.Lock()
	delete(e.fixed, key)
	e.mu.Unlock()
	close(f.done)
	return f.res, f.sk, f.err
}
