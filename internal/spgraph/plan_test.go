package spgraph

import (
	"sync"
	"testing"

	"repro/internal/dag"
	"repro/internal/failure"
)

func planGraphs(t *testing.T) map[string]*dag.Graph {
	t.Helper()
	fft, err := dag.FFT(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*dag.Graph{
		"wavefront": dag.Wavefront(6, 1.25),
		"fft":       fft,
		"pipeline":  dag.Pipeline(4, 3, 2),
		"diamond":   dag.Diamond(1, 5, 3, 2),
	}
}

// A plan recorded under one model must replay bit-identically to a fresh
// Dodin run under every other model: same estimate, same distribution
// atoms, same stats.
func TestPlanReplayMatchesDodin(t *testing.T) {
	for name, g := range planGraphs(t) {
		recModel, err := failure.FromPfail(0.001, g.MeanWeight())
		if err != nil {
			t.Fatal(err)
		}
		recRes, recStats, plan, err := DodinPlan(g, recModel, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		direct, directStats, err := Dodin(g, recModel, 0)
		if err != nil {
			t.Fatal(err)
		}
		if recRes.Estimate != direct.Estimate || recStats != directStats {
			t.Fatalf("%s: recording run diverged from plain Dodin: %v vs %v", name, recRes.Estimate, direct.Estimate)
		}
		if plan.Stats() != directStats {
			t.Fatalf("%s: plan stats %+v != %+v", name, plan.Stats(), directStats)
		}
		for _, pfail := range []float64{0.2, 0.05, 0.001, 0.00001} {
			model, err := failure.FromPfail(pfail, g.MeanWeight())
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := Dodin(g, model, 0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := plan.Run(model)
			if err != nil {
				t.Fatal(err)
			}
			if got.Estimate != want.Estimate {
				t.Fatalf("%s pfail=%g: replay estimate %v != direct %v", name, pfail, got.Estimate, want.Estimate)
			}
			if got.Distribution.Len() != want.Distribution.Len() {
				t.Fatalf("%s pfail=%g: support sizes differ", name, pfail)
			}
			for i := 0; i < got.Distribution.Len(); i++ {
				gv, gp := got.Distribution.Atom(i)
				wv, wp := want.Distribution.Atom(i)
				if gv != wv || gp != wp {
					t.Fatalf("%s pfail=%g: atom %d differs: (%v,%v) vs (%v,%v)", name, pfail, i, gv, gp, wv, wp)
				}
			}
		}
	}
}

// Concurrent replays of one plan (the sweep scheduler's usage) must be
// race-free and each bit-identical to the serial answer.
func TestPlanConcurrentReplay(t *testing.T) {
	g := dag.Wavefront(6, 1.25)
	model, err := failure.FromPfail(0.01, g.MeanWeight())
	if err != nil {
		t.Fatal(err)
	}
	_, _, plan, err := DodinPlan(g, model, 0)
	if err != nil {
		t.Fatal(err)
	}
	pfails := []float64{0.1, 0.03, 0.01, 0.003, 0.001, 0.0003, 0.0001, 0.00003}
	want := make([]float64, len(pfails))
	for i, pf := range pfails {
		m, _ := failure.FromPfail(pf, g.MeanWeight())
		r, err := plan.Run(m)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r.Estimate
	}
	var wg sync.WaitGroup
	errs := make([]error, len(pfails))
	got := make([]float64, len(pfails))
	for rep := 0; rep < 4; rep++ {
		for i, pf := range pfails {
			wg.Add(1)
			go func(i int, pf float64) {
				defer wg.Done()
				m, _ := failure.FromPfail(pf, g.MeanWeight())
				r, err := plan.Run(m)
				if err != nil {
					errs[i] = err
					return
				}
				got[i] = r.Estimate
			}(i, pf)
		}
		wg.Wait()
		for i := range pfails {
			if errs[i] != nil {
				t.Fatal(errs[i])
			}
			if got[i] != want[i] {
				t.Fatalf("concurrent replay %d: %v != %v", i, got[i], want[i])
			}
		}
	}
}

// Recording must not perturb the run it observes: plain Dodin and
// DodinPlan agree on a graph needing many duplications.
func TestPlanRecordingDoesNotPerturb(t *testing.T) {
	g := dag.Wavefront(8, 1)
	model, err := failure.FromPfail(0.01, g.MeanWeight())
	if err != nil {
		t.Fatal(err)
	}
	a, as, err := Dodin(g, model, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, bs, _, err := DodinPlan(g, model, 32)
	if err != nil {
		t.Fatal(err)
	}
	if a.Estimate != b.Estimate || as != bs {
		t.Fatalf("recording perturbed the run: %v/%+v vs %v/%+v", a.Estimate, as, b.Estimate, bs)
	}
}
