package failure

import (
	"math"
	"testing"

	"repro/internal/dag"
)

func TestReplicationParallelDoublesRate(t *testing.T) {
	g := dag.Chain(3, 1, 2)
	m, _ := New(0.1)
	tg, tm, err := Replication{}.Transform(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if tg != g {
		t.Fatal("parallel replication should reuse the graph")
	}
	if tm.Lambda != 0.2 {
		t.Fatalf("λ = %v want 0.2", tm.Lambda)
	}
}

func TestReplicationSerialDoublesWeights(t *testing.T) {
	g := dag.Chain(3, 1, 2)
	m, _ := New(0.1)
	tg, tm, err := Replication{Serial: true}.Transform(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if tm.Lambda != 0.1 {
		t.Fatalf("λ changed: %v", tm.Lambda)
	}
	for i := 0; i < g.NumTasks(); i++ {
		if tg.Weight(i) != 2*g.Weight(i) {
			t.Fatalf("weight %d = %v want %v", i, tg.Weight(i), 2*g.Weight(i))
		}
	}
	if g.Weight(0) != 1 {
		t.Fatal("input graph mutated")
	}
}

func TestReplicationAttemptSuccessEquivalence(t *testing.T) {
	// Both variants must give per-attempt success e^{−2λa}.
	m, _ := New(0.3)
	a := 1.5
	want := math.Exp(-2 * 0.3 * a)
	for _, r := range []Replication{{}, {Serial: true}} {
		g := dag.New(1)
		g.MustAddTask("t", a)
		tg, tm, err := r.Transform(g, m)
		if err != nil {
			t.Fatal(err)
		}
		if got := tm.PSuccess(tg.Weight(0)); math.Abs(got-want) > 1e-15 {
			t.Fatalf("serial=%v: success %v want %v", r.Serial, got, want)
		}
	}
}

func TestReplicationExpectedTimes(t *testing.T) {
	m, _ := New(0.2)
	a := 2.0
	par := Replication{}.ExpectedTime(a, m)
	ser := Replication{Serial: true}.ExpectedTime(a, m)
	wantPar := a * math.Exp(2*0.2*a)
	wantSer := 2 * a * math.Exp(2*0.2*a)
	if math.Abs(par-wantPar) > 1e-12 {
		t.Fatalf("parallel = %v want %v", par, wantPar)
	}
	if math.Abs(ser-wantSer) > 1e-12 {
		t.Fatalf("serial = %v want %v", ser, wantSer)
	}
	// Replication is never cheaper than plain verified execution.
	if par < m.ExpectedTime(a) {
		t.Fatalf("parallel replication %v beats plain %v", par, m.ExpectedTime(a))
	}
}

func TestReplicationVsVerificationTradeoff(t *testing.T) {
	// A cheap application-specific verification beats parallel replication
	// once the detector costs less than the extra failure exposure — the
	// trade-off the paper's related work discusses. With λa small,
	// replication costs ≈ a(1+2λa) while 5% verification costs ≈ 1.05a:
	// verification wins iff 2λa < 0.05·(stuff). Just pin both orderings.
	m, _ := New(0.001)
	a := 1.0
	rep := Replication{}.ExpectedTime(a, m)
	ver := m.ExpectedTime(a * 1.05) // 5% detector overhead
	if ver < rep {
		t.Fatalf("at tiny λ the 5%% detector (%v) should LOSE to replication (%v)", ver, rep)
	}
	m2, _ := New(0.5)
	rep = Replication{}.ExpectedTime(a, m2)
	ver = m2.ExpectedTime(a * 1.05)
	if ver > rep {
		t.Fatalf("at high λ the 5%% detector (%v) should BEAT replication (%v)", ver, rep)
	}
}
