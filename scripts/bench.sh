#!/usr/bin/env sh
# bench.sh — run the Monte Carlo / frozen-kernel, Dodin, experiment-layer,
# makespand service, frozen-schedule, adaptive-stopping and artifact-
# resolver benchmarks and emit BENCH_mc.json + BENCH_dodin.json +
# BENCH_sweep.json + BENCH_service.json + BENCH_sched.json +
# BENCH_adaptive.json + BENCH_artifact.json so successive PRs can track
# the perf trajectory (scripts/benchcheck gates regressions against the
# committed copies in CI, including the >= 10x schedsim legacy/frozen
# speedup, the >= 2x adaptive trials saving, the >= 3x warm
# snapshot-extension speedup and the >= 10x artifact cold/warm ratio).
#
# Usage: scripts/bench.sh [mc.json] [dodin.json] [sweep.json] [service.json] [sched.json] [adaptive.json] [artifact.json]
#   COUNT=5   repetitions per benchmark (go test -count)
#
# Each JSON holds one entry per benchmark with every ns/op sample, the
# best (minimum) ns/op, allocs/op, and — for the Monte Carlo benchmarks,
# which run benchTrials=20000 trials per op — the best trials/sec.
set -eu

cd "$(dirname "$0")/.."
mc_out="${1:-BENCH_mc.json}"
dodin_out="${2:-BENCH_dodin.json}"
sweep_out="${3:-BENCH_sweep.json}"
service_out="${4:-BENCH_service.json}"
sched_out="${5:-BENCH_sched.json}"
adaptive_out="${6:-BENCH_adaptive.json}"
artifact_out="${7:-BENCH_artifact.json}"
count="${COUNT:-5}"
mc_benches='BenchmarkFrozenEvalLU20|BenchmarkMCFusedLU20|BenchmarkMCLegacyLU20|BenchmarkTable1MonteCarloLU20|BenchmarkPathEvaluatorLU20|BenchmarkGraphConstructionDense'
dodin_benches='BenchmarkTable1DodinLU16|BenchmarkTable1DodinLU20|BenchmarkDistributionFusedOps|BenchmarkBoundsBracketLU20|BenchmarkAblationDodinAtoms64'
sweep_benches='BenchmarkSweepLU10|BenchmarkMCHighPfailLU20|BenchmarkDodinPlanReplayLU16|BenchmarkMCRunQuantilesLU12|BenchmarkMCRunSamplesLU12'
service_benches='BenchmarkServiceEstimateCold|BenchmarkServiceEstimateWarm|BenchmarkServiceDodinCold|BenchmarkServiceDodinWarm|BenchmarkServiceSweepWarm'
sched_benches='BenchmarkSchedsimLegacyLU16|BenchmarkSchedMCLU16|BenchmarkSchedMCWarmLU16|BenchmarkSchedFreezeLU16'
adaptive_benches='BenchmarkAdaptiveFixedBudgetLU10|BenchmarkAdaptiveStopLU10|BenchmarkAdaptiveColdRestartLU10|BenchmarkAdaptiveWarmExtendLU10'
artifact_benches='BenchmarkArtifact'

summarize() {
    awk -v trials=20000 '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op" && ns == "") ns = $(i - 1)
        if ($(i) == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
    samples[name] = samples[name] (samples[name] == "" ? "" : ", ") ns
    if (best[name] == "" || ns + 0 < best[name] + 0) best[name] = ns
    if (allocs != "") alloc[name] = allocs
}
END {
    printf "{\n  \"unit\": \"ns/op\",\n  \"bench_trials\": %d,\n  \"results\": [\n", trials
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    {\"name\": \"%s\", \"ns_op\": [%s], \"best_ns_op\": %s", name, samples[name], best[name]
        if (alloc[name] != "") printf ", \"allocs_op\": %s", alloc[name]
        if (name ~ /^BenchmarkMC|^BenchmarkTable1MonteCarlo/)
            printf ", \"best_trials_per_sec\": %.0f", trials * 1e9 / best[name]
        printf "}%s\n", (i < n ? "," : "")
    }
    printf "  ]\n}\n"
}'
}

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

run_group() {
    benches="$1"; out="$2"; pkg="${3:-.}"
    go test -run '^$' -bench "$benches" -benchmem -count="$count" "$pkg" | tee "$tmp"
    summarize < "$tmp" > "$out"
    echo "wrote $out"
}

run_group "$mc_benches" "$mc_out"
run_group "$dodin_benches" "$dodin_out"
run_group "$sweep_benches" "$sweep_out"
run_group "$service_benches" "$service_out" ./internal/service
run_group "$sched_benches" "$sched_out" ./internal/schedmc
run_group "$adaptive_benches" "$adaptive_out"
run_group "$artifact_benches" "$artifact_out" ./internal/artifact
