package makespan

import (
	"math"
	"testing"
)

func TestFacadeBracketContainsEstimates(t *testing.T) {
	g, _ := LU(6)
	m, _ := ModelFromPfail(0.001, g.MeanWeight())
	lo, hi, err := Bracket(g, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	fo, _ := FirstOrder(g, m)
	if fo < lo-1e-9 || fo > hi+1e-9 {
		t.Fatalf("First Order %v outside [%v, %v]", fo, lo, hi)
	}
	mc, _ := MonteCarlo(g, m, MonteCarloConfig{Trials: 30000, Seed: 2})
	if mc.Mean < lo-3*mc.CI95 || mc.Mean > hi+3*mc.CI95 {
		t.Fatalf("MC %v outside [%v, %v]", mc.Mean, lo, hi)
	}
}

func TestFacadeMonteCarloSamples(t *testing.T) {
	g, _ := Cholesky(4)
	m, _ := ModelFromPfail(0.01, g.MeanWeight())
	res, samples, err := MonteCarloSamples(g, m, MonteCarloConfig{Trials: 20000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if samples.N() != res.Trials {
		t.Fatalf("sample count %d != %d", samples.N(), res.Trials)
	}
	med := samples.Quantile(0.5)
	p99 := samples.Quantile(0.99)
	if med > res.Mean || p99 < res.Mean {
		t.Fatalf("quantile ordering broken: med %v mean %v p99 %v", med, res.Mean, p99)
	}
	if h := samples.Histogram(10); len(h) == 0 {
		t.Fatal("empty histogram")
	}
}

func TestFacadeVerificationAndReplication(t *testing.T) {
	g, _ := QR(4)
	m, _ := ModelFromPfail(0.01, g.MeanWeight())
	v := Verification{Fraction: 0.05}
	vg, err := v.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := FirstOrder(g, m)
	verified, _ := FirstOrder(vg, m)
	if verified <= base {
		t.Fatalf("verification overhead vanished: %v vs %v", verified, base)
	}
	rg, rm, err := Replication{}.Transform(g, m)
	if err != nil {
		t.Fatal(err)
	}
	replicated, _ := FirstOrder(rg, rm)
	if replicated <= base {
		t.Fatalf("replication exposure vanished: %v vs %v", replicated, base)
	}
}

func TestFacadeHEFT(t *testing.T) {
	g, _ := Cholesky(5)
	m, _ := ModelFromPfail(0.01, g.MeanWeight())
	plat := Platform{Speeds: []float64{1, 1, 2}, Comm: 0.01}
	plain, err := HEFT(g, plat, nil)
	if err != nil {
		t.Fatal(err)
	}
	aware, err := HEFT(g, plat, ExpectedWeights(g, m))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Makespan <= 0 || aware.Makespan < plain.Makespan {
		t.Fatalf("HEFT makespans: plain %v aware %v", plain.Makespan, aware.Makespan)
	}
	u, err := HEFT(g, UniformPlatform(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if u.Makespan < plain.Makespan/2 {
		t.Fatalf("suspicious uniform makespan %v", u.Makespan)
	}
}

func TestFacadeWorkloadGenerators(t *testing.T) {
	w := Wavefront(4, 1)
	if w.NumTasks() != 16 {
		t.Fatalf("wavefront tasks = %d", w.NumTasks())
	}
	p := Pipeline(3, 2, 1)
	if p.NumTasks() != 6 {
		t.Fatalf("pipeline tasks = %d", p.NumTasks())
	}
	f, err := FFT(8, 1)
	if err != nil || f.NumTasks() != 32 {
		t.Fatalf("fft: %v %v", f, err)
	}
	if _, err := FFT(7, 1); err == nil {
		t.Fatal("FFT(7) accepted")
	}
	// Wavefront is not SP; the paper's estimators still handle it.
	sp, _ := IsSeriesParallel(w)
	if sp {
		t.Fatal("wavefront reported SP")
	}
	m, _ := NewModel(0.01)
	fo, err := FirstOrder(w, m)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := FailureFreeMakespan(w)
	if fo < d {
		t.Fatalf("wavefront estimate %v below %v", fo, d)
	}
}

func TestFacadeTransitiveReduction(t *testing.T) {
	g := NewGraph(3)
	a := g.MustAddTask("a", 1)
	b := g.MustAddTask("b", 1)
	c := g.MustAddTask("c", 1)
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, c)
	g.MustAddEdge(a, c)
	out, err := TransitiveReduction(g)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumEdges() != 2 {
		t.Fatalf("edges = %d", out.NumEdges())
	}
	d1, _ := FailureFreeMakespan(g)
	d2, _ := FailureFreeMakespan(out)
	if math.Abs(d1-d2) > 1e-12 {
		t.Fatal("reduction changed the makespan")
	}
}
