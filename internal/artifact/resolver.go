// Package artifact is the typed artifact pipeline shared by the
// makespand service, the experiments runner and the CLIs: every
// expensive derived object of the paper's workflow — frozen CSR graph,
// Dodin reduction plan, compiled Monte Carlo estimator, frozen-schedule
// estimator, resumable adaptive snapshot — is declared once as a build
// rule (canonical key → dependency keys → build func → size) and
// resolved through one generic Resolver that provides, for every kind
// at once: content-addressed keying, dependency-aware resolution
// (resolving an estimator transparently resolves and reuses its frozen
// graph), per-key singleflight (concurrent requests for the same
// artifact trigger exactly one build), LRU byte-budget eviction with
// pinning of in-flight entries, and per-kind hit/miss/eviction
// statistics. The rules themselves live in store.go; see
// docs/ARCHITECTURE.md §"Ownership and caching" for the rule table.
package artifact

import (
	"container/list"
	"sync"
)

// Key is an artifact's canonical cache key. Keys are flat strings of
// the form "<kind>/<content-id>[/<params...>]" built by the rule
// constructors in store.go; two requests build the same artifact iff
// their keys are equal.
type Key string

// Request declares one artifact to resolve: its kind (a stats bucket),
// its canonical key, the requests of the artifacts it is derived from,
// and the build function. Build receives the resolved dependency
// values in Deps order and returns the artifact value plus its
// approximate retained size in bytes (the resolver's accounting unit).
// Rules must form a DAG: a dependency chain that reaches its own key
// again would deadlock on itself.
type Request struct {
	// Kind is the artifact's stats bucket ("graph", "plan", ...).
	Kind string
	// Key is the canonical cache key; equal keys mean equal artifacts.
	Key Key
	// Deps declares the artifacts this one is derived from; they are
	// resolved (and pinned) before Build runs.
	Deps []Request
	// Build constructs the artifact from the resolved dependency values
	// (in Deps order), returning it with its approximate retained size.
	Build func(deps []any) (value any, size int64, err error)
}

// KindStats counts one artifact kind's cache traffic. Hits include
// requests coalesced onto an in-flight build (they shared the one
// build another request paid for); Misses count builds started, plus
// externally built values installed with Put.
type KindStats struct {
	// Hits counts requests served without a build here: ready entries,
	// coalesced waits and successful Lookups.
	Hits int64
	// Misses counts builds started plus Put installations.
	Misses int64
	// Evictions counts entries removed under budget pressure, cascaded
	// dependents included.
	Evictions int64
	// Resident counts the currently cached entries of the kind.
	Resident int64
	// ResidentBytes is their total accounted size.
	ResidentBytes int64
}

// entry is one resolver slot. Lifecycle: created building (done open,
// not in the LRU, self-pinned), then either ready (value/size set, done
// closed, linked into the LRU) or failed (err set, done closed, removed
// from the map so the next request retries). value, size, err and deps
// are written once before done closes and read-only after.
type entry struct {
	kind string
	key  Key

	value any
	size  int64
	err   error
	done  chan struct{} // closed when the build finished either way
	ready bool

	// pins counts active uses that forbid eviction: the entry's own
	// in-flight build, and every build or Put currently holding it as a
	// dependency. Guarded by Resolver.mu.
	pins int

	elem *list.Element // LRU position; nil while building

	// deps/dependents are the artifact graph's edges, maintained while
	// both sides are resident; eviction cascades down dependents (a
	// plan must not outlive the graph it indexes into).
	deps       []*entry
	dependents map[Key]*entry
}

// Resolver is the generic artifact cache. The zero value is not usable;
// create with NewResolver.
type Resolver struct {
	mu      sync.Mutex
	budget  int64 // <= 0: unlimited
	used    int64
	lru     *list.List // of *entry; front = most recently used
	entries map[Key]*entry
	stats   map[string]*KindStats

	// onEvict, when set (before first use), observes every eviction —
	// cascaded dependents included. It runs with mu held: it must not
	// call back into the resolver, but may take locks ordered after it.
	onEvict func(kind string, key Key, value any)
}

// NewResolver creates a resolver with the given byte budget (<= 0
// means unlimited). onEvict may be nil.
func NewResolver(budget int64, onEvict func(kind string, key Key, value any)) *Resolver {
	return &Resolver{
		budget:  budget,
		lru:     list.New(),
		entries: make(map[Key]*entry),
		stats:   make(map[string]*KindStats),
		onEvict: onEvict,
	}
}

func (r *Resolver) kindStats(kind string) *KindStats {
	ks := r.stats[kind]
	if ks == nil {
		ks = &KindStats{}
		r.stats[kind] = ks
	}
	return ks
}

// Resolve returns the artifact for req, building it (and any missing
// dependencies, transitively) exactly once per key: concurrent calls
// with the same key coalesce onto one build and all receive the same
// value. A failed build is not cached — the error goes to the waiters
// that joined it and the next request retries. The returned value
// stays valid even if the entry is evicted later (entries are ordinary
// GC-managed values; eviction only stops them being findable).
func (r *Resolver) Resolve(req Request) (any, error) {
	e, _, err := r.resolve(req)
	if err != nil {
		return nil, err
	}
	v := e.value
	r.unpin(e)
	return v, nil
}

// ResolveBuilt is Resolve plus a flag reporting whether this call ran
// the build itself (false on cache hits and coalesced waits) — the
// service's "created" field for graph submissions.
func (r *Resolver) ResolveBuilt(req Request) (any, bool, error) {
	e, built, err := r.resolve(req)
	if err != nil {
		return nil, false, err
	}
	v := e.value
	r.unpin(e)
	return v, built, nil
}

// resolve returns the entry for req with one pin held by the caller
// (release with unpin). built reports whether this call ran the build.
func (r *Resolver) resolve(req Request) (*entry, bool, error) {
	r.mu.Lock()
	if e, ok := r.entries[req.Key]; ok {
		e.pins++
		r.kindStats(e.kind).Hits++
		if e.ready {
			r.lru.MoveToFront(e.elem)
			r.mu.Unlock()
			return e, false, nil
		}
		// In flight: coalesce onto the running build.
		r.mu.Unlock()
		<-e.done
		if e.err != nil {
			r.unpin(e)
			return nil, false, e.err
		}
		return e, false, nil
	}
	// Become the builder. The entry is findable (so later requests
	// coalesce) but self-pinned and outside the LRU until the build
	// completes, so budget pressure from concurrent inserts can never
	// evict it mid-build.
	e := &entry{
		kind:       req.Kind,
		key:        req.Key,
		done:       make(chan struct{}),
		pins:       1,
		dependents: make(map[Key]*entry),
	}
	r.entries[req.Key] = e
	r.kindStats(req.Kind).Misses++
	r.mu.Unlock()

	deps, vals, err := r.resolveDeps(req.Deps)
	var value any
	var size int64
	if err == nil {
		value, size, err = req.Build(vals)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if err != nil {
		if r.entries[req.Key] == e {
			delete(r.entries, req.Key)
		}
		e.err = err
		e.pins-- // the self-pin; the entry is dead either way
		r.unpinDepsLocked(deps)
		close(e.done)
		return nil, false, err
	}
	e.value, e.size, e.ready = value, size, true
	e.deps = deps
	for _, de := range deps {
		de.dependents[e.key] = e
		de.pins--
	}
	e.elem = r.lru.PushFront(e)
	r.used += size
	ks := r.kindStats(e.kind)
	ks.Resident++
	ks.ResidentBytes += size
	close(e.done)
	r.evictLocked(e)
	return e, true, nil
}

// resolveDeps resolves every dependency request, returning the entries
// with one pin each (held for the duration of the parent build) plus
// their values in order. On error the pins already taken are released.
func (r *Resolver) resolveDeps(reqs []Request) ([]*entry, []any, error) {
	if len(reqs) == 0 {
		return nil, nil, nil
	}
	deps := make([]*entry, 0, len(reqs))
	vals := make([]any, 0, len(reqs))
	for _, d := range reqs {
		de, _, err := r.resolve(d)
		if err != nil {
			r.mu.Lock()
			r.unpinDepsLocked(deps)
			r.mu.Unlock()
			return nil, nil, err
		}
		deps = append(deps, de)
		vals = append(vals, de.value)
	}
	return deps, vals, nil
}

func (r *Resolver) unpinDepsLocked(deps []*entry) {
	for _, de := range deps {
		de.pins--
	}
}

func (r *Resolver) unpin(e *entry) {
	r.mu.Lock()
	e.pins--
	r.mu.Unlock()
}

// Put installs an externally built value under req's key — the
// adaptive-snapshot path, where the coalescing leader runs the kernel
// itself and only retention goes through the resolver. An existing
// ready entry is replaced in place with delta accounting; budget
// pressure from the growth may evict colder entries but never the
// entry being grown. If a Resolve build for the same key is in flight
// the Put is dropped (the build's result wins). Counts as a miss for
// the kind (a build happened, just not here).
func (r *Resolver) Put(req Request, value any, size int64) {
	deps, _, err := r.resolveDeps(req.Deps)
	if err != nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entries[req.Key]
	if e != nil && !e.ready {
		r.unpinDepsLocked(deps)
		return
	}
	ks := r.kindStats(req.Kind)
	if e == nil {
		e = &entry{kind: req.Kind, key: req.Key, ready: true, dependents: make(map[Key]*entry)}
		r.entries[req.Key] = e
		e.elem = r.lru.PushFront(e)
		ks.Resident++
	} else {
		r.used -= e.size
		ks.ResidentBytes -= e.size
		r.lru.MoveToFront(e.elem)
		for _, de := range e.deps {
			delete(de.dependents, e.key)
		}
	}
	e.value, e.size = value, size
	e.deps = deps
	for _, de := range deps {
		de.dependents[e.key] = e
		de.pins--
	}
	r.used += size
	ks.Misses++
	ks.ResidentBytes += size
	r.evictLocked(e)
}

// Lookup returns the ready value for key, touching it to the LRU front
// and counting a hit when found; a missing key counts nothing (use it
// for optional artifacts like retained snapshots, where absence is the
// normal first-request state, not a failed build).
func (r *Resolver) Lookup(key Key) (any, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[key]
	if !ok || !e.ready {
		return nil, false
	}
	r.lru.MoveToFront(e.elem)
	r.kindStats(e.kind).Hits++
	return e.value, true
}

// Peek returns the ready value for key without touching LRU order or
// statistics — residency checks and introspection.
func (r *Resolver) Peek(key Key) (any, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[key]
	if !ok || !e.ready {
		return nil, false
	}
	return e.value, true
}

// EntryInfo describes one resident entry (introspection: the per-graph
// artifact census behind GET /v1/graphs/{id}).
type EntryInfo struct {
	// Kind is the entry's stats bucket.
	Kind string
	// Key is its canonical cache key.
	Key Key
	// Size is its accounted bytes.
	Size int64
}

// DependentsOf lists the resident artifacts built directly on top of
// key, in unspecified order.
func (r *Resolver) DependentsOf(key Key) []EntryInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[key]
	if !ok || !e.ready {
		return nil
	}
	out := make([]EntryInfo, 0, len(e.dependents))
	for _, d := range e.dependents {
		out = append(out, EntryInfo{Kind: d.kind, Key: d.key, Size: d.size})
	}
	return out
}

// Stats snapshots the per-kind counters.
func (r *Resolver) Stats() map[string]KindStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]KindStats, len(r.stats))
	for k, v := range r.stats {
		out[k] = *v
	}
	return out
}

// UsedBytes reports the total accounted size of resident entries.
func (r *Resolver) UsedBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.used
}

// Budget reports the configured byte budget (<= 0: unlimited).
func (r *Resolver) Budget() int64 { return r.budget }

// evictLocked enforces the byte budget: walk the LRU from the cold
// end, evicting entries (cascading through their dependents) until the
// budget holds. Never evicted: keep (the entry the current operation
// is inserting or growing), pinned entries (in-flight builds hold pins
// on themselves and their dependencies), any entry whose transitive
// dependents include one of those, and the sole remaining entry
// (evicting what the current request is about to use would just force
// an immediate rebuild).
func (r *Resolver) evictLocked(keep *entry) {
	if r.budget <= 0 {
		return
	}
	for r.used > r.budget && r.lru.Len() > 1 {
		evicted := false
		for el := r.lru.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*entry)
			if !r.evictableLocked(e, keep) {
				continue
			}
			r.evictEntryLocked(e)
			evicted = true
			break // cascades invalidated our iterator; rescan
		}
		if !evicted {
			return
		}
	}
}

// evictableLocked reports whether evicting e (which cascades through
// its dependents) would touch keep or any pinned entry.
func (r *Resolver) evictableLocked(e, keep *entry) bool {
	if e == keep || e.pins > 0 {
		return false
	}
	for _, d := range e.dependents {
		if !r.evictableLocked(d, keep) {
			return false
		}
	}
	return true
}

// evictEntryLocked removes e and, recursively, every artifact built on
// top of it — dependents first, so onEvict observes a plan before the
// graph it indexes into.
func (r *Resolver) evictEntryLocked(e *entry) {
	for _, d := range e.dependents {
		r.evictEntryLocked(d)
	}
	for _, de := range e.deps {
		delete(de.dependents, e.key)
	}
	r.lru.Remove(e.elem)
	delete(r.entries, e.key)
	r.used -= e.size
	ks := r.kindStats(e.kind)
	ks.Evictions++
	ks.Resident--
	ks.ResidentBytes -= e.size
	if r.onEvict != nil {
		r.onEvict(e.kind, e.key, e.value)
	}
}
