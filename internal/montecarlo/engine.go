package montecarlo

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"

	"repro/internal/dag"
	"repro/internal/failure"
)

// Mode selects the re-execution model sampled per task.
type Mode int

const (
	// FullReexecution re-executes a failed task until an attempt succeeds:
	// the attempt count is geometric. This is the true model and the
	// paper's ground truth (§V-C samples time-to-failure per attempt).
	FullReexecution Mode = iota
	// SingleRetry allows at most one re-execution (weight a or 2a): the
	// 2-state model underlying the First Order approximation. Useful for
	// isolating the truncation error of the approximations from the
	// modelling error of dropping multi-failures.
	SingleRetry
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case FullReexecution:
		return "full-reexecution"
	case SingleRetry:
		return "single-retry"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parameterizes a Monte Carlo run.
type Config struct {
	// Trials is the number of samples; the paper uses 300,000.
	Trials int
	// Workers is the number of goroutines (0 = GOMAXPROCS).
	Workers int
	// Seed makes runs reproducible; two runs with equal Config produce
	// identical results regardless of Workers.
	Seed uint64
	// Mode selects the re-execution model (default FullReexecution).
	Mode Mode
}

// DefaultTrials is the paper's trial count.
const DefaultTrials = 300000

// Result summarizes a Monte Carlo estimate of the expected makespan.
type Result struct {
	Mean     float64 // estimated expected makespan
	StdDev   float64 // sample standard deviation of the makespan
	StdErr   float64 // standard error of Mean
	CI95     float64 // half-width of the 95% CI around Mean
	Min, Max float64 // extreme sampled makespans
	Trials   int
}

// Estimator runs Monte Carlo estimation on one graph. It precomputes
// per-task failure probabilities and reuses evaluator scratch space.
type Estimator struct {
	g     *dag.Graph
	cfg   Config
	pfail []float64 // per-task first-attempt failure probability
}

// NewEstimator prepares a Monte Carlo estimator. The graph must be acyclic.
func NewEstimator(g *dag.Graph, model failure.Model, cfg Config) (*Estimator, error) {
	rates := make([]float64, g.NumTasks())
	for i := range rates {
		rates[i] = model.Lambda
	}
	return NewEstimatorRates(g, rates, cfg)
}

// NewEstimatorRates prepares an estimator with a per-task error rate λ_i
// (tasks at different DVFS speeds or on heterogeneous processors).
func NewEstimatorRates(g *dag.Graph, rates []float64, cfg Config) (*Estimator, error) {
	if len(rates) != g.NumTasks() {
		return nil, fmt.Errorf("montecarlo: %d rates for %d tasks", len(rates), g.NumTasks())
	}
	if cfg.Trials <= 0 {
		cfg.Trials = DefaultTrials
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers > cfg.Trials {
		cfg.Workers = cfg.Trials
	}
	if !g.IsAcyclic() {
		return nil, dag.ErrCycle
	}
	pf := make([]float64, g.NumTasks())
	for i := range pf {
		if rates[i] < 0 || rates[i] != rates[i] {
			return nil, fmt.Errorf("montecarlo: bad rate λ_%d = %v", i, rates[i])
		}
		pf[i] = failure.Model{Lambda: rates[i]}.PFail(g.Weight(i))
	}
	return &Estimator{g: g, cfg: cfg, pfail: pf}, nil
}

// Run executes the configured number of trials and returns the estimate.
func (e *Estimator) Run() (Result, error) {
	per := e.cfg.Trials / e.cfg.Workers
	extra := e.cfg.Trials % e.cfg.Workers
	accs := make([]Welford, e.cfg.Workers)
	errs := make([]error, e.cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < e.cfg.Workers; w++ {
		trials := per
		if w < extra {
			trials++
		}
		wg.Add(1)
		go func(w, trials int) {
			defer wg.Done()
			// Independent deterministic stream per worker.
			rng := newWorkerRNG(e.cfg.Seed, w)
			pe, err := dag.NewPathEvaluator(e.g)
			if err != nil {
				errs[w] = err
				return
			}
			weights := make([]float64, e.g.NumTasks())
			for t := 0; t < trials; t++ {
				e.sampleWeights(rng, weights)
				accs[w].Add(pe.MakespanWith(weights))
			}
		}(w, trials)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	var total Welford
	for i := range accs {
		total.Merge(accs[i])
	}
	return Result{
		Mean:   total.Mean(),
		StdDev: total.StdDev(),
		StdErr: total.StdErr(),
		CI95:   total.CI95(),
		Min:    total.Min(),
		Max:    total.Max(),
		Trials: int(total.N()),
	}, nil
}

// sampleWeights fills weights with one sample of per-task execution times.
func (e *Estimator) sampleWeights(rng *rand.Rand, weights []float64) {
	for i := 0; i < e.g.NumTasks(); i++ {
		a := e.g.Weight(i)
		pf := e.pfail[i]
		if pf == 0 {
			weights[i] = a
			continue
		}
		switch e.cfg.Mode {
		case SingleRetry:
			if rng.Float64() < pf {
				weights[i] = 2 * a
			} else {
				weights[i] = a
			}
		default: // FullReexecution
			attempts := 1
			for rng.Float64() < pf {
				attempts++
			}
			weights[i] = float64(attempts) * a
		}
	}
}

// newWorkerRNG returns the independent deterministic stream of worker w.
func newWorkerRNG(seed uint64, w int) *rand.Rand {
	return rand.New(rand.NewPCG(seed, uint64(w)+0x9e3779b97f4a7c15))
}

// Estimate is a convenience wrapper building a transient Estimator.
func Estimate(g *dag.Graph, model failure.Model, cfg Config) (Result, error) {
	e, err := NewEstimator(g, model, cfg)
	if err != nil {
		return Result{}, err
	}
	return e.Run()
}

// EstimateRates is Estimate with per-task error rates.
func EstimateRates(g *dag.Graph, rates []float64, cfg Config) (Result, error) {
	e, err := NewEstimatorRates(g, rates, cfg)
	if err != nil {
		return Result{}, err
	}
	return e.Run()
}
