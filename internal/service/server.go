package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/experiments"
	"repro/internal/failure"
	"repro/internal/faultinject"
	"repro/internal/linalg"
	"repro/internal/montecarlo"
	"repro/internal/report"
	"repro/internal/schedmc"
)

// Config tunes a Server.
type Config struct {
	// Workers is the server-wide CPU budget shared by every estimation
	// request: Monte Carlo engines and the sweep cell scheduler run with
	// this many workers, and heavy compute sections of concurrent
	// requests serialize on a gate so the process never runs more than
	// Workers estimation goroutines at once. 0 selects GOMAXPROCS.
	// Results are identical for every value (the engines are worker-count
	// invariant); only latency changes.
	Workers int
	// CacheBytes is the graph registry's byte budget (<= 0: unlimited).
	CacheBytes int64

	// MaxInFlight caps the estimation requests (estimate, schedule,
	// sweep) admitted at once; excess requests wait in a bounded queue
	// and are shed with 429 + Retry-After when it overflows or QueueWait
	// expires. 0 disables admission control (the compute gate still
	// serializes kernels).
	MaxInFlight int
	// MaxQueue bounds the admission wait queue (used only when
	// MaxInFlight > 0). 0 means no queue: a full server sheds instantly.
	MaxQueue int
	// QueueWait is how long a queued request waits for an admission slot
	// before 429 (default 1s when queuing is enabled).
	QueueWait time.Duration

	// DefaultTimeout is the per-request deadline applied when the client
	// sends no timeout_ms (0 = none). MaxTimeout clamps client-requested
	// deadlines (0 = unclamped). An expired deadline aborts the request's
	// kernels at the next chunk boundary and answers 504.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration

	// AccessLog receives one structured log line per request (route,
	// status, bytes, duration, deadline used, outcome). nil disables
	// access logging; metrics are collected either way. The daemon wires
	// stderr here (-access-log); tests pass a buffer.
	AccessLog io.Writer
}

// Server is the makespand HTTP service. Create with New, mount via
// Handler.
type Server struct {
	reg       *Registry
	workers   int
	gate      chan struct{} // serializes heavy compute across requests
	mux       *http.ServeMux
	handler   http.Handler // mux wrapped in recovery/accounting middleware
	limit     *limiter     // nil: admission control disabled
	metrics   *serverMetrics
	accessLog *log.Logger // nil: access logging disabled
	started   time.Time
	defaultT  time.Duration
	maxT      time.Duration
	draining  atomic.Bool
	inflight  atomic.Int64
}

// New builds a server with a fresh registry.
func New(cfg Config) *Server {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		reg:      NewRegistry(cfg.CacheBytes),
		workers:  workers,
		gate:     make(chan struct{}, 1),
		mux:      http.NewServeMux(),
		started:  time.Now(),
		defaultT: cfg.DefaultTimeout,
		maxT:     cfg.MaxTimeout,
	}
	if cfg.MaxInFlight > 0 {
		wait := cfg.QueueWait
		if wait <= 0 {
			wait = time.Second
		}
		s.limit = newLimiter(cfg.MaxInFlight, cfg.MaxQueue, wait)
	}
	s.metrics = newServerMetrics(s)
	if cfg.AccessLog != nil {
		s.accessLog = log.New(cfg.AccessLog, "", 0)
	}
	s.route("POST /v1/graphs", "/v1/graphs", s.handleSubmitGraph)
	s.route("GET /v1/graphs/{id}", "/v1/graphs/{id}", s.handleGetGraph)
	s.route("POST /v1/estimate", "/v1/estimate", s.handleEstimate)
	s.route("POST /v1/sweep", "/v1/sweep", s.handleSweep)
	s.route("POST /v1/schedule", "/v1/schedule", s.handleSchedule)
	s.route("GET /v1/cache", "/v1/cache", s.handleCache)
	s.route("GET /healthz", "/healthz", s.handleHealthz)
	s.route("GET /metrics", "/metrics", s.handleMetrics)
	s.handler = s.middleware(s.mux)
	return s
}

// route registers a handler under its mux pattern and stamps the
// request-scoped info with a fixed route label, so metrics and access
// logs carry the bounded pattern ("/v1/graphs/{id}"), never the raw
// path — label cardinality stays constant under arbitrary traffic.
// Requests no pattern matches keep the label "other".
func (s *Server) route(pattern, label string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		if ri := infoFrom(r.Context()); ri != nil {
			ri.route = label
		}
		h(w, r)
	})
}

// routeOther labels requests that matched no registered pattern (the
// mux's own 404/405 responses).
const routeOther = "other"

// reqInfo is the middleware's per-request record: the route label set
// at dispatch, the effective deadline requestCtx applied, and a forced
// outcome (panic) the status code cannot express. All writes happen on
// the request's own goroutine.
type reqInfo struct {
	route    string
	deadline time.Duration // effective deadline applied; 0 = none
	outcome  string        // set only for panic; otherwise derived from status
}

// outcomeOr classifies the request for the access log: ok, shed (429),
// timeout (504), cancelled (499, client went away), panic (recovered
// handler) or error (remaining 4xx/5xx).
func (ri *reqInfo) outcomeOr(status int) string {
	if ri.outcome != "" {
		return ri.outcome
	}
	switch {
	case status == http.StatusTooManyRequests:
		return "shed"
	case status == http.StatusGatewayTimeout:
		return "timeout"
	case status == statusClientClosedRequest:
		return "cancelled"
	case status < 400:
		return "ok"
	default:
		return "error"
	}
}

type reqInfoCtxKey struct{}

// infoFrom retrieves the middleware's per-request record (nil when the
// handler runs outside the middleware, e.g. direct unit-test calls).
func infoFrom(ctx context.Context) *reqInfo {
	ri, _ := ctx.Value(reqInfoCtxKey{}).(*reqInfo)
	return ri
}

// Handler returns the service's HTTP handler (the routes wrapped in the
// in-flight accounting and panic-recovery middleware).
func (s *Server) Handler() http.Handler { return s.handler }

// Registry exposes the server's graph registry (tests and stats).
func (s *Server) Registry() *Registry { return s.reg }

// StartDrain flips the server into draining: /healthz answers 503 so
// load balancers and probes stop routing here, while in-flight requests
// keep being served until the caller shuts the HTTP server down. It is
// idempotent and never blocks.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// InFlight reports the requests currently inside the handler stack.
func (s *Server) InFlight() int64 { return s.inflight.Load() }

// middleware wraps the route mux with per-request accounting, panic
// recovery and observability: a panicking handler answers 500 (when
// nothing was written yet) and emits one structured log line plus the
// stack, instead of killing the daemon and every sibling request with
// it; and every request — panicking, shed or fine — lands in the
// request metrics and, when configured, one access-log line.
func (s *Server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ri := &reqInfo{route: routeOther}
		r = r.WithContext(context.WithValue(r.Context(), reqInfoCtxKey{}, ri))
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			if p := recover(); p != nil {
				ri.outcome = "panic"
				log.Printf("level=error event=panic method=%s path=%s panic=%q\n%s",
					r.Method, r.URL.Path, fmt.Sprint(p), debug.Stack())
				if !sw.wrote {
					writeError(sw, &httpError{status: http.StatusInternalServerError,
						msg: fmt.Sprintf("internal error: %v", p)})
				}
			}
			s.observe(r, sw, ri, time.Since(start))
		}()
		if faultinject.Enabled() {
			faultinject.MaybePanic("service.panic." + r.URL.Path)
		}
		next.ServeHTTP(sw, r)
	})
}

// observe records one finished request into the metric families and,
// when access logging is on, emits the structured request line — the
// counterpart of the middleware's event=panic convention:
//
//	event=request method=POST route=/v1/estimate status=200 bytes=841
//	dur_ms=1.292 deadline_ms=0 outcome=ok
//
// route is the registered pattern (bounded cardinality), bytes the
// response body size, deadline_ms the effective deadline requestCtx
// applied (0 = unbounded), outcome one of ok / shed / timeout /
// cancelled / panic / error.
func (s *Server) observe(r *http.Request, sw *statusWriter, ri *reqInfo, dur time.Duration) {
	status := sw.status
	if status == 0 {
		// The handler never called WriteHeader: net/http answered 200.
		status = http.StatusOK
	}
	s.metrics.requests.With(ri.route, strconv.Itoa(status)).Inc()
	s.metrics.latency.With(ri.route).Observe(dur.Seconds())
	s.metrics.respBytes.With(ri.route).Add(sw.bytes)
	if s.accessLog != nil {
		s.accessLog.Printf("event=request method=%s route=%s status=%d bytes=%d dur_ms=%.3f deadline_ms=%d outcome=%s",
			r.Method, ri.route, status, sw.bytes,
			float64(dur)/float64(time.Millisecond), ri.deadline.Milliseconds(), ri.outcomeOr(status))
	}
}

// statusWriter records whether a response has started (so the panic
// handler knows if a 500 can still be written), the status code and
// the body bytes written, for the request metrics and access log.
type statusWriter struct {
	http.ResponseWriter
	wrote  bool
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.wrote = true
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// limiter is the admission controller: a slot channel caps in-flight
// estimation requests, a token channel bounds the wait queue.
type limiter struct {
	slots chan struct{}
	queue chan struct{} // nil: no queue, shed instantly when full
	wait  time.Duration
}

func newLimiter(inflight, queueLen int, wait time.Duration) *limiter {
	l := &limiter{slots: make(chan struct{}, inflight), wait: wait}
	if queueLen > 0 {
		l.queue = make(chan struct{}, queueLen)
	}
	return l
}

// acquire claims an admission slot, queueing up to l.wait when the
// server is full. It returns the release func, or a 429 httpError with
// a Retry-After hint when the queue is full or the wait expires, or
// ctx's error when the request dies first.
func (l *limiter) acquire(ctx context.Context) (func(), error) {
	select {
	case l.slots <- struct{}{}:
		return func() { <-l.slots }, nil
	default:
	}
	if l.queue == nil {
		return nil, errTooBusy(l.wait)
	}
	select {
	case l.queue <- struct{}{}:
	default:
		return nil, errTooBusy(l.wait)
	}
	defer func() { <-l.queue }()
	t := time.NewTimer(l.wait)
	defer t.Stop()
	select {
	case l.slots <- struct{}{}:
		return func() { <-l.slots }, nil
	case <-t.C:
		return nil, errTooBusy(l.wait)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// admit runs the admission controller for one estimation request; the
// returned release must be called when the request finishes. Sheds are
// counted here — the only place 429s originate — so the shed series can
// never include admission-bypassed probe routes.
func (s *Server) admit(ctx context.Context) (func(), error) {
	if s.limit == nil {
		return func() {}, nil
	}
	release, err := s.limit.acquire(ctx)
	if err != nil {
		var he *httpError
		if errors.As(err, &he) && he.status == http.StatusTooManyRequests {
			s.metrics.shed.Inc()
		}
	}
	return release, err
}

// errTooBusy is the 429 shed response; Retry-After hints at the queue
// wait (rounded up to a whole second).
func errTooBusy(wait time.Duration) error {
	retry := int((wait + time.Second - 1) / time.Second)
	if retry < 1 {
		retry = 1
	}
	return &httpError{
		status:     http.StatusTooManyRequests,
		msg:        "server at capacity; retry later",
		retryAfter: retry,
	}
}

// heavy runs fn while holding the compute gate: requests overlap at the
// HTTP layer, but estimation work — which already spreads across the
// worker budget internally — runs one request at a time, keeping the
// process at ~Workers estimation goroutines under any client load. A
// context that dies while waiting for the gate abandons the wait.
func (s *Server) heavy(ctx context.Context, fn func() error) error {
	if done := ctx.Done(); done != nil {
		select {
		case s.gate <- struct{}{}:
		case <-done:
			return ctx.Err()
		}
	} else {
		s.gate <- struct{}{}
	}
	defer func() { <-s.gate }()
	return fn()
}

// requestCtx derives a request's working context: the client's
// timeout_ms, clamped by Config.MaxTimeout, with Config.DefaultTimeout
// applied when the client sets none. The base is r.Context(), so a
// dropped connection or server-wide force-cancel also aborts the work.
func (s *Server) requestCtx(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc, error) {
	if timeoutMS < 0 {
		return nil, nil, errBadRequest("negative timeout_ms %d", timeoutMS)
	}
	d := time.Duration(timeoutMS) * time.Millisecond
	if d == 0 {
		d = s.defaultT
	}
	if s.maxT > 0 && (d == 0 || d > s.maxT) {
		d = s.maxT
	}
	if ri := infoFrom(r.Context()); ri != nil {
		ri.deadline = d // the access log's deadline_ms field
	}
	if d <= 0 {
		return r.Context(), func() {}, nil
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

// isCtxErr reports whether err is a context cancellation or deadline.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// httpError carries a status code with a request-level failure.
type httpError struct {
	status     int
	msg        string
	retryAfter int // seconds; emitted as Retry-After when > 0
}

func (e *httpError) Error() string { return e.msg }

func errBadRequest(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func errNotFound(format string, args ...any) error {
	return &httpError{status: http.StatusNotFound, msg: fmt.Sprintf(format, args...)}
}

// reqErr classifies an estimation-phase failure: context errors pass
// through untouched (writeError maps them to 504/499), injected faults
// and other server-side failures stay 500, and anything else — engine
// config validation, bad parameters — is the client's 400.
func reqErr(err error, format string, args ...any) error {
	if isCtxErr(err) || faultinject.IsFault(err) {
		return fmt.Errorf(format+": %w", append(args, err)...)
	}
	return errBadRequest(format+": %v", append(args, err)...)
}

// statusClientClosedRequest is nginx's non-standard 499: the client
// went away before the response; nobody reads it, but the access log
// should not claim a server error.
const statusClientClosedRequest = 499

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var he *httpError
	switch {
	case errors.As(err, &he):
		status = he.status
		if he.retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(he.retryAfter))
		}
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = statusClientClosedRequest
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return errBadRequest("bad request body: %v", err)
	}
	return nil
}

// graphRef selects a graph: a registry id, a generator spec, or an
// inline DAG in the dag JSON schema. Exactly one of graph_id, kind and
// graph must be set (k rides along with kind).
type graphRef struct {
	GraphID string          `json:"graph_id,omitempty"`
	Kind    string          `json:"kind,omitempty"`
	K       int             `json:"k,omitempty"`
	Graph   json.RawMessage `json:"graph,omitempty"`
}

// resolve turns a graphRef into a registry entry, registering generated
// or inline graphs on the fly (warm resubmissions dedup by content
// hash). A cancelled ctx aborts an in-flight freeze without caching the
// failure — the reference stays resolvable by the next request.
func (s *Server) resolve(ctx context.Context, ref graphRef) (*Entry, bool, error) {
	set := 0
	if ref.GraphID != "" {
		set++
	}
	if ref.Kind != "" {
		set++
	}
	if len(ref.Graph) > 0 {
		set++
	}
	if set != 1 {
		return nil, false, errBadRequest("exactly one of graph_id, kind or graph must be given")
	}
	switch {
	case ref.GraphID != "":
		e, ok := s.reg.Get(ref.GraphID)
		if !ok {
			return nil, false, errNotFound("unknown graph %q (expired from the cache or never submitted)", ref.GraphID)
		}
		return e, false, nil
	case ref.Kind != "":
		k := ref.K
		if k <= 0 {
			return nil, false, errBadRequest("generator %q needs k >= 1, got %d", ref.Kind, ref.K)
		}
		meta := GraphMeta{Kind: ref.Kind, K: k}
		if e, ok := s.reg.LookupGenerated(meta); ok {
			return e, false, nil
		}
		g, err := linalg.Generate(linalg.Factorization(ref.Kind), k, linalg.KernelTimes{})
		if err != nil {
			return nil, false, errBadRequest("%v", err)
		}
		e, created, err := s.reg.AddContext(ctx, g, meta)
		if err != nil {
			return nil, false, reqErr(err, "register graph")
		}
		return e, created, nil
	default:
		var g dag.Graph
		if err := json.Unmarshal(ref.Graph, &g); err != nil {
			return nil, false, errBadRequest("bad graph: %v", err)
		}
		e, created, err := s.reg.AddContext(ctx, &g, GraphMeta{Kind: "custom"})
		if err != nil {
			// Aside from cancellation and injected faults (which reqErr
			// keeps server-side), Add fails only on the submitted content
			// (a cyclic DAG is first caught by Freeze): the client's
			// fault, not ours.
			return nil, false, reqErr(err, "bad graph")
		}
		return e, created, nil
	}
}

// graphSummary is the response body of POST /v1/graphs and the header of
// GET /v1/graphs/{id}.
type graphSummary struct {
	ID                  string     `json:"id"`
	Created             bool       `json:"created"`
	Tasks               int        `json:"tasks"`
	Edges               int        `json:"edges"`
	MeanWeight          float64    `json:"mean_weight"`
	FailureFreeMakespan float64    `json:"failure_free_makespan"`
	Cache               *cacheJSON `json:"cache,omitempty"`
}

type cacheJSON struct {
	Bytes         int64 `json:"bytes"`
	DodinPlans    int   `json:"dodin_plans"`
	Estimators    int   `json:"mc_estimators"`
	Schedules     int   `json:"schedules"`
	AdaptiveSnaps int   `json:"adaptive_snapshots"`
}

func summarize(e *Entry, created bool, withCache bool) graphSummary {
	out := graphSummary{
		ID:                  e.ID,
		Created:             created,
		Tasks:               e.G.NumTasks(),
		Edges:               e.G.NumEdges(),
		MeanWeight:          e.G.MeanWeight(),
		FailureFreeMakespan: e.D0,
	}
	if withCache {
		ci := e.Cache()
		out.Cache = &cacheJSON{
			Bytes:         ci.Bytes,
			DodinPlans:    ci.DodinPlans,
			Estimators:    ci.Estimators,
			Schedules:     ci.Schedules,
			AdaptiveSnaps: ci.AdaptiveSnaps,
		}
	}
	return out
}

func (s *Server) handleSubmitGraph(w http.ResponseWriter, r *http.Request) {
	var ref graphRef
	if err := decodeJSON(r, &ref); err != nil {
		writeError(w, err)
		return
	}
	if ref.GraphID != "" {
		writeError(w, errBadRequest("POST /v1/graphs submits a graph; use GET /v1/graphs/{id} to look one up"))
		return
	}
	e, created, err := s.resolve(r.Context(), ref)
	if err != nil {
		writeError(w, err)
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	writeJSON(w, status, summarize(e, created, false))
}

func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.reg.Get(id)
	if !ok {
		writeError(w, errNotFound("unknown graph %q", id))
		return
	}
	writeJSON(w, http.StatusOK, summarize(e, false, true))
}

// estimateRequest mirrors cmd/makespan's flags: the same defaults (pfail
// 0.001, seed 42, Dodin cap 64, methods "all") except -trials, which
// defaults to 0 (skip Monte Carlo) rather than the CLI's 300,000 — a
// service should not run a six-figure simulation because a field was
// omitted.
type estimateRequest struct {
	graphRef
	PFail      float64   `json:"pfail,omitempty"`
	Lambda     float64   `json:"lambda,omitempty"`
	Methods    string    `json:"methods,omitempty"`
	Trials     int       `json:"trials,omitempty"`
	Seed       *uint64   `json:"seed,omitempty"`
	DodinAtoms int       `json:"dodin_atoms,omitempty"`
	Bounds     bool      `json:"bounds,omitempty"`
	Quantiles  []float64 `json:"quantiles,omitempty"`

	// Tolerance > 0 selects adaptive Monte Carlo (trials must then be
	// omitted): run until the target statistic's CI half-width is within
	// tolerance, capped by max_trials. Exactly montecarlo.Config's
	// semantics; concurrent adaptive requests for the same stream
	// coalesce into one kernel run (see coalesce.go).
	Tolerance      float64 `json:"tolerance,omitempty"`
	TargetQuantile float64 `json:"target_quantile,omitempty"`
	Confidence     float64 `json:"confidence,omitempty"`
	MaxTrials      int     `json:"max_trials,omitempty"`

	// TimeoutMS bounds the whole request: on expiry every kernel aborts
	// at its next chunk boundary and the response is 504. Clamped by the
	// server's -max-timeout; 0 selects the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req estimateRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel, err := s.requestCtx(r, req.TimeoutMS)
	if err != nil {
		writeError(w, err)
		return
	}
	defer cancel()
	release, err := s.admit(ctx)
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()
	e, _, err := s.resolve(ctx, req.graphRef)
	if err != nil {
		writeError(w, err)
		return
	}
	model, err := buildModel(e.G, req.PFail, req.Lambda)
	if err != nil {
		writeError(w, errBadRequest("%v", err))
		return
	}
	// No outer gate here: buildEstimate takes the compute gate around its
	// heavy phases itself, so the Monte Carlo phase can go through the
	// coalescers (whose leaders acquire the gate) without deadlocking.
	est, err := s.buildEstimate(ctx, e, model, req)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = report.WriteEstimateJSON(w, est)
}

// buildModel mirrors cmd/makespan: an explicit λ wins, otherwise pfail —
// defaulting to the CLI's 0.001 — is calibrated on the mean task weight.
// A negative or non-finite λ is rejected instead of silently falling
// back to the pfail path.
func buildModel(g *dag.Graph, pfail, lambda float64) (failure.Model, error) {
	if lambda < 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return failure.Model{}, fmt.Errorf("bad lambda %g (must be a finite rate >= 0)", lambda)
	}
	if lambda > 0 {
		return failure.New(lambda)
	}
	if pfail == 0 {
		pfail = 0.001
	}
	return failure.FromPfail(pfail, g.MeanWeight())
}

// buildEstimate is the warm counterpart of cmd/makespan's buildEstimate:
// identical document assembly, with construction skipped wherever the
// registry already holds the artifact — the frozen graph (always), the
// Dodin reduction plan (replayed instead of re-reduced), the Monte Carlo
// estimator snapshot (reconfigured instead of rebuilt) and the bounds
// sweeper scratch. Every substitution is bit-identical by construction,
// which the e2e suite verifies against the CLI byte for byte.
func (s *Server) buildEstimate(ctx context.Context, e *Entry, model failure.Model, req estimateRequest) (report.Estimate, error) {
	est := report.Estimate{
		Graph: report.GraphInfo{Tasks: e.G.NumTasks(), Edges: e.G.NumEdges(), MeanWeight: e.G.MeanWeight()},
		Model: report.ModelInfo{
			Lambda:        model.Lambda,
			PFailMeanTask: model.PFail(e.G.MeanWeight()),
			MTBF:          model.MTBF(),
		},
		FailureFree: e.D0,
	}
	methods, err := experiments.ParseMethods(req.Methods)
	if err != nil {
		return est, errBadRequest("%v", err)
	}
	if err := report.ValidateQuantiles(req.Quantiles); err != nil {
		return est, errBadRequest("%v", err)
	}
	if req.Trials == 0 && req.Tolerance == 0 {
		if len(req.Quantiles) > 0 {
			return est, errBadRequest("quantiles need Monte Carlo trials (trials > 0 or tolerance > 0)")
		}
		if req.MaxTrials != 0 || req.TargetQuantile != 0 || req.Confidence != 0 {
			return est, errBadRequest("monte carlo: max_trials, target_quantile and confidence need tolerance > 0")
		}
	}
	// Bounds and analytic methods run under the compute gate; the Monte
	// Carlo phase below takes it through the coalescers instead, so
	// requests sharing a trial stream don't each occupy a gate slot.
	if err := s.heavy(ctx, func() error {
		if req.Bounds {
			sw := e.Sweeper()
			lo, hi, err := sw.Bracket(model, req.DodinAtoms)
			e.PutSweeper(sw)
			if err != nil {
				return errBadRequest("bounds: %v", err)
			}
			est.Bracket = &report.BracketInfo{Lower: lo, Upper: hi}
		}
		for _, m := range methods {
			var v float64
			var dt time.Duration
			switch m {
			case experiments.MethodDodin:
				// Warm: replay the cached reduction schedule instead of
				// re-running the series-parallel reduction.
				plan, err := e.PlanContext(ctx, req.DodinAtoms, model)
				if err != nil {
					return reqErr(err, "%s", m)
				}
				t0 := time.Now()
				res, err := plan.Run(model)
				if err != nil {
					return errBadRequest("%s: %v", m, err)
				}
				v, dt = res.Estimate, time.Since(t0)
			case experiments.MethodFirstOrder:
				// Warm: evaluate on a pooled PathEvaluator over the shared
				// frozen graph instead of re-freezing per call.
				pe := e.PathEvaluator()
				t0 := time.Now()
				res := core.FirstOrderWith(pe, model)
				v, dt = res.Estimate, time.Since(t0)
				e.PutPathEvaluator(pe)
			default:
				var err error
				v, dt, err = experiments.Estimate(m, e.G, model, req.DodinAtoms)
				if err != nil {
					return errBadRequest("%s: %v", m, err)
				}
			}
			est.Methods = append(est.Methods, report.MethodEstimate{Method: string(m), Estimate: v, Time: dt})
		}
		return nil
	}); err != nil {
		return est, err
	}
	if req.Trials == 0 && req.Tolerance == 0 {
		return est, nil
	}
	seed := uint64(42)
	if req.Seed != nil {
		seed = *req.Seed
	}
	t0 := time.Now()
	warm, err := e.EstimatorContext(ctx, model, montecarlo.FullReexecution)
	if err != nil {
		return est, reqErr(err, "monte carlo")
	}
	var mc *report.MonteCarloInfo
	if req.Tolerance != 0 {
		run, err := warm.WithConfig(montecarlo.Config{
			Trials:         req.Trials, // nonzero: rejected by the engine
			Seed:           seed,
			Workers:        s.workers,
			Tolerance:      req.Tolerance,
			TargetQuantile: req.TargetQuantile,
			Confidence:     req.Confidence,
			MaxTrials:      req.MaxTrials,
		})
		if err != nil {
			return est, errBadRequest("monte carlo: %v", err)
		}
		key := adaptiveKey{lambda: model.Lambda, mode: montecarlo.FullReexecution, seed: seed}
		res, snap, err := s.coalesceAdaptive(ctx, e, key, run)
		if err != nil {
			return est, reqErr(err, "monte carlo")
		}
		mc = report.MonteCarloInfoFrom(res, seed)
		mc.Adaptive = report.AdaptiveInfoFrom(res, req.Tolerance, req.TargetQuantile, req.Confidence)
		if len(req.Quantiles) > 0 {
			sketch := snap.Sketch()
			for _, q := range req.Quantiles {
				mc.Quantiles = append(mc.Quantiles, report.QuantileValue{Q: q, Value: sketch.Quantile(q)})
			}
		}
	} else {
		run, err := warm.WithConfig(montecarlo.Config{
			Trials:         req.Trials,
			Seed:           seed,
			Workers:        s.workers,
			TargetQuantile: req.TargetQuantile,
			Confidence:     req.Confidence,
			MaxTrials:      req.MaxTrials,
		})
		if err != nil {
			return est, errBadRequest("monte carlo: %v", err)
		}
		key := fixedKey{
			lambda: model.Lambda, mode: montecarlo.FullReexecution,
			seed: seed, trials: req.Trials, sketch: len(req.Quantiles) > 0,
		}
		res, sketch, err := s.coalesceFixed(ctx, e, key, func(fctx context.Context) (montecarlo.Result, *montecarlo.QuantileSketch, error) {
			var res montecarlo.Result
			var sk *montecarlo.QuantileSketch
			err := s.heavy(fctx, func() error {
				var err error
				if key.sketch {
					res, sk, err = run.RunQuantilesContext(fctx)
				} else {
					res, err = run.RunContext(fctx)
				}
				return err
			})
			return res, sk, err
		})
		if err != nil {
			return est, reqErr(err, "monte carlo")
		}
		mc = report.MonteCarloInfoFrom(res, seed)
		for _, q := range req.Quantiles {
			mc.Quantiles = append(mc.Quantiles, report.QuantileValue{Q: q, Value: sketch.Quantile(q)})
		}
	}
	mc.Time = time.Since(t0)
	est.MonteCarlo = mc
	return est, nil
}

// scheduleRequest mirrors cmd/schedsim's flags with the service's
// defaults: policies "both", pfail 0.001, seed 42 — and trials 0 skips
// Monte Carlo (the estimate-endpoint convention: a service should not
// run a six-figure simulation because a field was omitted; schedsim's
// -trials 0 selects the engine default instead).
type scheduleRequest struct {
	graphRef
	Procs     int       `json:"procs"`
	Policies  string    `json:"policies,omitempty"`
	PFail     float64   `json:"pfail,omitempty"`
	Lambda    float64   `json:"lambda,omitempty"`
	Trials    int       `json:"trials,omitempty"`
	Seed      *uint64   `json:"seed,omitempty"`
	Quantiles []float64 `json:"quantiles,omitempty"`

	// Adaptive stopping, per policy, with the estimate endpoint's
	// semantics: tolerance > 0 runs each policy's trial stream until its
	// CI is within tolerance (trials must then be omitted).
	Tolerance      float64 `json:"tolerance,omitempty"`
	TargetQuantile float64 `json:"target_quantile,omitempty"`
	Confidence     float64 `json:"confidence,omitempty"`
	MaxTrials      int     `json:"max_trials,omitempty"`

	// TimeoutMS bounds the whole request (see estimateRequest.TimeoutMS).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	var req scheduleRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.Procs < 1 {
		writeError(w, errBadRequest("procs must be >= 1, got %d", req.Procs))
		return
	}
	if req.Trials < 0 {
		writeError(w, errBadRequest("negative trials %d", req.Trials))
		return
	}
	policies, err := schedmc.ParsePolicies(req.Policies)
	if err != nil {
		writeError(w, errBadRequest("%v", err))
		return
	}
	if err := report.ValidateQuantiles(req.Quantiles); err != nil {
		writeError(w, errBadRequest("%v", err))
		return
	}
	if req.Trials == 0 && req.Tolerance == 0 {
		if len(req.Quantiles) > 0 {
			writeError(w, errBadRequest("quantiles need Monte Carlo trials (trials > 0 or tolerance > 0)"))
			return
		}
		if req.MaxTrials != 0 || req.TargetQuantile != 0 || req.Confidence != 0 {
			writeError(w, errBadRequest("max_trials, target_quantile and confidence need tolerance > 0"))
			return
		}
	}
	ctx, cancel, err := s.requestCtx(r, req.TimeoutMS)
	if err != nil {
		writeError(w, err)
		return
	}
	defer cancel()
	release, err := s.admit(ctx)
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()
	e, _, err := s.resolve(ctx, req.graphRef)
	if err != nil {
		writeError(w, err)
		return
	}
	model, err := buildModel(e.G, req.PFail, req.Lambda)
	if err != nil {
		writeError(w, errBadRequest("%v", err))
		return
	}
	// Like handleEstimate: buildSchedule gates its own heavy phases so
	// the Monte Carlo runs can coalesce across requests.
	doc, err := s.buildSchedule(ctx, e, model, policies, req)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = report.WriteScheduleJSON(w, doc)
}

// buildSchedule is the warm counterpart of schedsim's document assembly:
// identical field for field, except the frozen schedule and compiled
// estimator come from the registry when a previous request already built
// them (ScheduleEstimator), so a warm request pays only the O(1)
// reconfiguration plus the trials themselves.
func (s *Server) buildSchedule(ctx context.Context, e *Entry, model failure.Model, policies []schedmc.Policy, req scheduleRequest) (report.Schedule, error) {
	doc := report.Schedule{
		Graph: report.GraphInfo{Tasks: e.G.NumTasks(), Edges: e.G.NumEdges(), MeanWeight: e.G.MeanWeight()},
		Model: report.ModelInfo{
			Lambda:        model.Lambda,
			PFailMeanTask: model.PFail(e.G.MeanWeight()),
			MTBF:          model.MTBF(),
		},
		Procs:        req.Procs,
		CriticalPath: e.D0,
	}
	seed := uint64(42)
	if req.Seed != nil {
		seed = *req.Seed
	}
	for _, pol := range policies {
		// Schedule freezing and estimator compilation are heavy; gate
		// them. The Monte Carlo phase goes through the coalescers.
		var warm *schedmc.Estimator
		if err := s.heavy(ctx, func() error {
			var err error
			warm, err = e.ScheduleEstimatorContext(ctx, pol, req.Procs, model)
			if err != nil {
				return reqErr(err, "%s", pol)
			}
			return nil
		}); err != nil {
			return doc, err
		}
		fs := warm.Schedule()
		p := report.SchedulePolicy{
			Policy:      string(pol),
			Label:       pol.Label(),
			FailureFree: fs.Makespan,
			Efficiency:  fs.Efficiency(),
			ChainEdges:  fs.ChainEdges,
		}
		if req.Trials > 0 || req.Tolerance != 0 {
			t0 := time.Now()
			var mc *report.MonteCarloInfo
			if req.Tolerance != 0 {
				run, err := warm.WithConfig(schedmc.Config{
					Trials:         req.Trials, // nonzero: rejected by the engine
					Seed:           seed,
					Workers:        s.workers,
					Tolerance:      req.Tolerance,
					TargetQuantile: req.TargetQuantile,
					Confidence:     req.Confidence,
					MaxTrials:      req.MaxTrials,
				})
				if err != nil {
					return doc, errBadRequest("%s: %v", pol, err)
				}
				key := adaptiveKey{
					sched: true, policy: pol, procs: req.Procs,
					lambda: model.Lambda, mode: montecarlo.FullReexecution, seed: seed,
				}
				res, snap, err := s.coalesceAdaptive(ctx, e, key, run)
				if err != nil {
					return doc, reqErr(err, "%s", pol)
				}
				mc = report.MonteCarloInfoFrom(res, seed)
				mc.Adaptive = report.AdaptiveInfoFrom(res, req.Tolerance, req.TargetQuantile, req.Confidence)
				if len(req.Quantiles) > 0 {
					sketch := snap.Sketch()
					for _, q := range req.Quantiles {
						mc.Quantiles = append(mc.Quantiles, report.QuantileValue{Q: q, Value: sketch.Quantile(q)})
					}
				}
			} else {
				run, err := warm.WithConfig(schedmc.Config{
					Trials:         req.Trials,
					Seed:           seed,
					Workers:        s.workers,
					TargetQuantile: req.TargetQuantile,
					Confidence:     req.Confidence,
					MaxTrials:      req.MaxTrials,
				})
				if err != nil {
					return doc, errBadRequest("%s: %v", pol, err)
				}
				key := fixedKey{
					sched: true, policy: pol, procs: req.Procs,
					lambda: model.Lambda, mode: montecarlo.FullReexecution,
					seed: seed, trials: req.Trials, sketch: len(req.Quantiles) > 0,
				}
				res, sketch, err := s.coalesceFixed(ctx, e, key, func(fctx context.Context) (montecarlo.Result, *montecarlo.QuantileSketch, error) {
					var res montecarlo.Result
					var sk *montecarlo.QuantileSketch
					err := s.heavy(fctx, func() error {
						var err error
						if key.sketch {
							res, sk, err = run.RunQuantilesContext(fctx)
						} else {
							res, err = run.RunContext(fctx)
						}
						return err
					})
					return res, sk, err
				})
				if err != nil {
					return doc, reqErr(err, "%s", pol)
				}
				mc = report.MonteCarloInfoFrom(res, seed)
				for _, q := range req.Quantiles {
					mc.Quantiles = append(mc.Quantiles, report.QuantileValue{Q: q, Value: sketch.Quantile(q)})
				}
			}
			mc.Time = time.Since(t0)
			p.MonteCarlo = mc
		}
		doc.Policies = append(doc.Policies, p)
	}
	return doc, nil
}

// sweepRequest mirrors `experiments -sweep`: LU k=10 across five pfail
// decades by default, methods defaulting to the paper's three, trials 0
// selecting the paper's 300,000.
type sweepRequest struct {
	graphRef
	PFails     []float64 `json:"pfails,omitempty"`
	Methods    string    `json:"methods,omitempty"`
	Trials     int       `json:"trials,omitempty"`
	Seed       *uint64   `json:"seed,omitempty"`
	DodinAtoms int       `json:"dodin_atoms,omitempty"`

	// TimeoutMS bounds the whole request (see estimateRequest.TimeoutMS).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel, err := s.requestCtx(r, req.TimeoutMS)
	if err != nil {
		writeError(w, err)
		return
	}
	defer cancel()
	release, err := s.admit(ctx)
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()
	def := experiments.DefaultSweep()
	if req.GraphID == "" && req.Kind == "" && len(req.Graph) == 0 {
		// Zero-config parity with `experiments -sweep`.
		req.Kind, req.K = string(def.Fact), def.K
	}
	e, _, err := s.resolve(ctx, req.graphRef)
	if err != nil {
		writeError(w, err)
		return
	}
	meta := e.Meta()
	spec := experiments.SweepSpec{
		Fact:   linalg.Factorization(meta.Kind),
		K:      meta.K,
		PFails: req.PFails,
	}
	if len(spec.PFails) == 0 {
		spec.PFails = def.PFails
	}
	for _, pf := range spec.PFails {
		if pf <= 0 || pf >= 1 {
			writeError(w, errBadRequest("sweep pfail %g outside (0,1)", pf))
			return
		}
	}
	var methods []experiments.Method
	if req.Methods != "" && req.Methods != "paper" {
		methods, err = experiments.ParseMethods(req.Methods)
		if err != nil {
			writeError(w, errBadRequest("%v", err))
			return
		}
	}
	seed := uint64(42)
	if req.Seed != nil {
		seed = *req.Seed
	}
	opts := experiments.Options{
		Trials:        req.Trials,
		Seed:          seed,
		Methods:       methods,
		DodinMaxAtoms: req.DodinAtoms,
		Workers:       s.workers,
		Context:       ctx,
	}
	// The sweep resolves its shared artifacts — Dodin plan, per-λ Monte
	// Carlo estimators — through the registry's store, so repeat sweeps
	// (and estimates touching the same artifacts) stay warm.
	opts.Artifacts = s.reg.Store()
	var res experiments.SweepResult
	if err := s.heavy(ctx, func() error {
		var err error
		res, err = experiments.RunSweepGraph(e.Artifact(), spec, opts)
		if err != nil {
			return reqErr(err, "sweep")
		}
		return nil
	}); err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = report.WriteSweepJSON(w, res, opts.Methods)
}

// kindStatsJSON is one artifact kind's row in GET /v1/cache.
type kindStatsJSON struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Resident      int64 `json:"resident"`
	ResidentBytes int64 `json:"resident_bytes"`
}

// cacheStatsResponse is the GET /v1/cache body: the artifact store's
// per-kind resolver statistics plus overall occupancy and the requests
// currently inside the handler stack (drain observability).
type cacheStatsResponse struct {
	UsedBytes   int64                    `json:"used_bytes"`
	BudgetBytes int64                    `json:"budget_bytes"`
	InFlight    int64                    `json:"in_flight"`
	Kinds       map[string]kindStatsJSON `json:"kinds"`
}

// handleCache serves the resolver's per-kind hit/miss/eviction and
// residency counters. Every declared kind is always present (zeroed
// before first use) so clients can rely on the shape.
func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	st := s.reg.Store()
	stats := st.Stats()
	out := cacheStatsResponse{
		UsedBytes:   st.UsedBytes(),
		BudgetBytes: st.Budget(),
		InFlight:    s.inflight.Load(),
		Kinds:       make(map[string]kindStatsJSON, len(artifact.Kinds())),
	}
	for _, kind := range artifact.Kinds() {
		ks := stats[kind]
		out.Kinds[kind] = kindStatsJSON{
			Hits:          ks.Hits,
			Misses:        ks.Misses,
			Evictions:     ks.Evictions,
			Resident:      ks.Resident,
			ResidentBytes: ks.ResidentBytes,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

type healthzResponse struct {
	Status          string `json:"status"`
	Graphs          int    `json:"graphs"`
	CacheUsedBytes  int64  `json:"cache_used_bytes"`
	CacheBudget     int64  `json:"cache_budget_bytes"`
	Workers         int    `json:"workers"`
	CacheHits       int64  `json:"cache_hits"`
	CacheMisses     int64  `json:"cache_misses"`
	CacheEvictions  int64  `json:"cache_evictions"`
	UptimeSeconds   int64  `json:"uptime_seconds"`
	GoMaxProcs      int    `json:"gomaxprocs"`
	ServiceRevision string `json:"service"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.reg.Stats()
	// Draining flips the probe to 503 so load balancers stop routing
	// here; requests already in flight keep being served.
	status, state := http.StatusOK, "ok"
	if s.draining.Load() {
		status, state = http.StatusServiceUnavailable, "draining"
	}
	writeJSON(w, status, healthzResponse{
		Status:          state,
		Graphs:          st.Graphs,
		CacheUsedBytes:  st.UsedBytes,
		CacheBudget:     st.Budget,
		Workers:         s.workers,
		CacheHits:       st.Hits,
		CacheMisses:     st.Misses,
		CacheEvictions:  st.Evictions,
		UptimeSeconds:   int64(time.Since(s.started).Seconds()),
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		ServiceRevision: "makespand/v1",
	})
}
