// Package report renders estimation results for human and machine
// consumers. It is the single rendering layer shared by cmd/makespan,
// cmd/experiments and the makespand HTTP service: both CLIs and the
// service emit their JSON documents through the same writer functions, so
// a service response is byte-identical to the corresponding CLI output
// for the same inputs (timing fields excepted — they measure wall clock
// and are normalized before diffing, see scripts/e2e_smoke.sh).
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/montecarlo"
)

// GraphInfo summarizes the estimated graph.
type GraphInfo struct {
	Tasks      int
	Edges      int
	MeanWeight float64
}

// ModelInfo summarizes the failure model of an estimate.
type ModelInfo struct {
	Lambda        float64 // error rate λ per second
	PFailMeanTask float64 // failure probability of an average-weight task
	MTBF          float64 // mean time between failures, 1/λ
}

// BracketInfo is the analytic [Jensen, Kleindorfer] bracket under the
// 2-state model.
type BracketInfo struct {
	Lower float64
	Upper float64
}

// MethodEstimate is one estimator's result.
type MethodEstimate struct {
	Method   string
	Estimate float64
	Time     time.Duration
}

// QuantileValue is one (q, value) pair of the Monte Carlo makespan
// distribution sketch.
type QuantileValue struct {
	Q     float64
	Value float64
}

// ParseQuantiles parses a comma-separated list of quantiles in (0,1) —
// the shared -quantiles flag syntax of cmd/makespan and cmd/schedsim.
// Entries tolerate surrounding spaces; empty entries are skipped.
func ParseQuantiles(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		q, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -quantiles entry %q: %v", f, err)
		}
		out = append(out, q)
	}
	return out, ValidateQuantiles(out)
}

// ValidateQuantiles rejects quantiles outside (0,1) — the one
// validation rule the CLIs and the service share (the service receives
// its list as JSON and skips the string parsing).
func ValidateQuantiles(qs []float64) error {
	for _, q := range qs {
		if q <= 0 || q >= 1 || q != q {
			return fmt.Errorf("quantile %g outside (0,1)", q)
		}
	}
	return nil
}

// MonteCarloInfo is the Monte Carlo reference of an estimate. All fields
// except Time are worker-count invariant for a fixed (Seed, Trials) — and,
// for adaptive runs, for a fixed (Seed, stopping rule), since the stopping
// point is a deterministic prefix of the chunk stream.
type MonteCarloInfo struct {
	Mean      float64
	CI95      float64
	StdDev    float64
	StdErr    float64
	Min       float64
	Max       float64
	Trials    int
	Seed      uint64
	Time      time.Duration
	Quantiles []QuantileValue
	Adaptive  *AdaptiveInfo // nil for fixed-budget runs
}

// AdaptiveInfo carries the sequential-stopping diagnostics of an adaptive
// Monte Carlo run: the rule it ran under and where it actually stopped.
type AdaptiveInfo struct {
	Tolerance      float64 // requested CI half-width
	TargetQuantile float64 // watched quantile; 0 = the mean
	Confidence     float64 // stopping rule's confidence level
	TrialsRun      int     // trials actually spent (== Trials)
	Converged      bool    // tolerance met before the MaxTrials cap
	AchievedCI     float64 // CI half-width at the stopping point
}

// AdaptiveInfoFrom maps an adaptive run's diagnostics into the report
// form — like MonteCarloInfoFrom, the one copy point shared by the CLIs
// and the service. The tolerance/target/confidence echo the request
// (confidence 0 echoes the engine default).
func AdaptiveInfoFrom(res montecarlo.Result, tolerance, targetQuantile, confidence float64) *AdaptiveInfo {
	if confidence == 0 {
		confidence = montecarlo.DefaultConfidence
	}
	return &AdaptiveInfo{
		Tolerance:      tolerance,
		TargetQuantile: targetQuantile,
		Confidence:     confidence,
		TrialsRun:      res.TrialsRun,
		Converged:      res.Converged,
		AchievedCI:     res.AchievedCI,
	}
}

// MonteCarloInfoFrom maps an engine result into the report form — the
// one place the field-by-field copy lives, so the CLI and the service
// cannot drift apart. Time and Quantiles are filled by the caller.
func MonteCarloInfoFrom(res montecarlo.Result, seed uint64) *MonteCarloInfo {
	return &MonteCarloInfo{
		Mean:   res.Mean,
		CI95:   res.CI95,
		StdDev: res.StdDev,
		StdErr: res.StdErr,
		Min:    res.Min,
		Max:    res.Max,
		Trials: res.Trials,
		Seed:   seed,
	}
}

// Estimate is the single-graph estimation report: everything cmd/makespan
// prints and everything POST /v1/estimate returns.
type Estimate struct {
	Graph       GraphInfo
	Model       ModelInfo
	FailureFree float64 // failure-free makespan d(G)
	Bracket     *BracketInfo
	Methods     []MethodEstimate
	MonteCarlo  *MonteCarloInfo
}

// WriteEstimateText renders the report in cmd/makespan's classic text
// layout: the graph/model/d(G) header, the per-method table and the Monte
// Carlo reference line with its confidence interval.
func WriteEstimateText(w io.Writer, e Estimate) error {
	var b strings.Builder
	fmt.Fprintf(&b, "graph: %d tasks, %d edges, mean weight %.4g s\n",
		e.Graph.Tasks, e.Graph.Edges, e.Graph.MeanWeight)
	fmt.Fprintf(&b, "model: λ = %.6g /s (pfail of mean task = %.3g, MTBF = %.4g s)\n",
		e.Model.Lambda, e.Model.PFailMeanTask, e.Model.MTBF)
	fmt.Fprintf(&b, "failure-free makespan d(G) = %.6g s\n", e.FailureFree)
	if e.Bracket != nil {
		fmt.Fprintf(&b, "analytic bracket (2-state model): [%.6g, %.6g] s\n",
			e.Bracket.Lower, e.Bracket.Upper)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-14s %-16s %-12s\n", "method", "estimate (s)", "time")
	for _, m := range e.Methods {
		fmt.Fprintf(&b, "%-14s %-16.8g %-12v\n", m.Method, m.Estimate, m.Time.Round(time.Microsecond))
	}
	if mc := e.MonteCarlo; mc != nil {
		fmt.Fprintf(&b, "%-14s %-16.8g %-12v ±%.3g (95%% CI, %d trials)\n",
			"Monte Carlo", mc.Mean, mc.Time.Round(time.Millisecond), mc.CI95, mc.Trials)
		writeAdaptiveText(&b, mc.Adaptive)
		for _, q := range mc.Quantiles {
			fmt.Fprintf(&b, "%-14s %-16.8g (q = %g)\n", "MC quantile", q.Value, q.Q)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

type estGraphJSON struct {
	Tasks      int     `json:"tasks"`
	Edges      int     `json:"edges"`
	MeanWeight float64 `json:"mean_weight"`
}

type estModelJSON struct {
	Lambda        float64 `json:"lambda"`
	PFailMeanTask float64 `json:"pfail_mean_task"`
	MTBF          float64 `json:"mtbf"`
}

type estBracketJSON struct {
	Lower float64 `json:"lower"`
	Upper float64 `json:"upper"`
}

type estMethodJSON struct {
	Method      string  `json:"method"`
	Estimate    float64 `json:"estimate"`
	TimeSeconds float64 `json:"time_seconds"`
}

type estQuantileJSON struct {
	Q     float64 `json:"q"`
	Value float64 `json:"value"`
}

type estMonteCarloJSON struct {
	Mean        float64           `json:"mean"`
	CI95        float64           `json:"ci95"`
	StdDev      float64           `json:"std_dev"`
	StdErr      float64           `json:"std_err"`
	Min         float64           `json:"min"`
	Max         float64           `json:"max"`
	Trials      int               `json:"trials"`
	Seed        uint64            `json:"seed"`
	TimeSeconds float64           `json:"time_seconds"`
	Adaptive    *estAdaptiveJSON  `json:"adaptive,omitempty"`
	Quantiles   []estQuantileJSON `json:"quantiles,omitempty"`
}

type estAdaptiveJSON struct {
	Tolerance      float64 `json:"tolerance"`
	TargetQuantile float64 `json:"target_quantile,omitempty"`
	Confidence     float64 `json:"confidence"`
	TrialsRun      int     `json:"trials_run"`
	Converged      bool    `json:"converged"`
	AchievedCI     float64 `json:"achieved_ci"`
}

// adaptiveJSONFrom and writeAdaptiveText render the stopping diagnostics
// for the JSON and text writers (both estimates and schedules).
func adaptiveJSONFrom(a *AdaptiveInfo) *estAdaptiveJSON {
	if a == nil {
		return nil
	}
	return &estAdaptiveJSON{
		Tolerance:      a.Tolerance,
		TargetQuantile: a.TargetQuantile,
		Confidence:     a.Confidence,
		TrialsRun:      a.TrialsRun,
		Converged:      a.Converged,
		AchievedCI:     a.AchievedCI,
	}
}

func writeAdaptiveText(b *strings.Builder, a *AdaptiveInfo) {
	if a == nil {
		return
	}
	target := "mean"
	if a.TargetQuantile > 0 {
		target = fmt.Sprintf("q=%g", a.TargetQuantile)
	}
	status := "converged"
	if !a.Converged {
		status = "hit max_trials"
	}
	fmt.Fprintf(b, "%-14s %s after %d trials (±%.3g on %s at %g%% confidence, tolerance %.3g)\n",
		"MC adaptive", status, a.TrialsRun, a.AchievedCI, target, 100*a.Confidence, a.Tolerance)
}

type estimateJSON struct {
	Graph       estGraphJSON       `json:"graph"`
	Model       estModelJSON       `json:"model"`
	FailureFree float64            `json:"failure_free_makespan"`
	Bracket     *estBracketJSON    `json:"bracket,omitempty"`
	Methods     []estMethodJSON    `json:"methods"`
	MonteCarlo  *estMonteCarloJSON `json:"monte_carlo,omitempty"`
}

// WriteEstimateJSON renders the report as indented JSON with a
// deterministic field order (methods stay in slice order). This is the
// document of `makespan -format json` and of POST /v1/estimate.
func WriteEstimateJSON(w io.Writer, e Estimate) error {
	out := estimateJSON{
		Graph:       estGraphJSON{Tasks: e.Graph.Tasks, Edges: e.Graph.Edges, MeanWeight: e.Graph.MeanWeight},
		Model:       estModelJSON{Lambda: e.Model.Lambda, PFailMeanTask: e.Model.PFailMeanTask, MTBF: e.Model.MTBF},
		FailureFree: e.FailureFree,
		Methods:     []estMethodJSON{},
	}
	if e.Bracket != nil {
		out.Bracket = &estBracketJSON{Lower: e.Bracket.Lower, Upper: e.Bracket.Upper}
	}
	for _, m := range e.Methods {
		out.Methods = append(out.Methods, estMethodJSON{
			Method:      m.Method,
			Estimate:    m.Estimate,
			TimeSeconds: m.Time.Seconds(),
		})
	}
	if mc := e.MonteCarlo; mc != nil {
		j := &estMonteCarloJSON{
			Mean:        mc.Mean,
			CI95:        mc.CI95,
			StdDev:      mc.StdDev,
			StdErr:      mc.StdErr,
			Min:         mc.Min,
			Max:         mc.Max,
			Trials:      mc.Trials,
			Seed:        mc.Seed,
			TimeSeconds: mc.Time.Seconds(),
			Adaptive:    adaptiveJSONFrom(mc.Adaptive),
		}
		for _, q := range mc.Quantiles {
			j.Quantiles = append(j.Quantiles, estQuantileJSON{Q: q.Q, Value: q.Value})
		}
		out.MonteCarlo = j
	}
	return writeJSON(w, out)
}
