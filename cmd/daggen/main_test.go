package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateKinds(t *testing.T) {
	cases := []struct {
		kind  string
		tasks int
	}{
		{"cholesky", 20}, // k=4
		{"lu", 30},
		{"qr", 30},
		{"layered", 25},
		{"erdos", 25},
		{"chain", 25},
		{"forkjoin", 8}, // width 6 + source + sink
	}
	for _, c := range cases {
		g, err := generate(c.kind, 4, 25, 0.3, 6, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.kind, err)
		}
		if g.NumTasks() != c.tasks {
			t.Errorf("%s: tasks = %d want %d", c.kind, g.NumTasks(), c.tasks)
		}
		if !g.IsAcyclic() {
			t.Errorf("%s: cyclic", c.kind)
		}
	}
	if _, err := generate("bogus", 4, 25, 0.3, 6, 1); err == nil {
		t.Fatal("bogus kind accepted")
	}
}

func TestRunWritesBothFormats(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "g.json")
	dotPath := filepath.Join(dir, "g.dot")
	if err := run("cholesky", 5, 0, 0, 0, 1, jsonPath, dotPath, true, true); err != nil {
		t.Fatal(err)
	}
	js, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(js), "POTRF_0") {
		t.Error("JSON missing task names")
	}
	dot, err := os.ReadFile(dotPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"digraph cholesky", "color=red", "->"} {
		if !strings.Contains(string(dot), want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

func TestRunBadWriterPath(t *testing.T) {
	if err := run("chain", 0, 5, 0, 0, 1, "/no/such/dir/x.json", "", false, false); err == nil {
		t.Fatal("unwritable path accepted")
	}
}
