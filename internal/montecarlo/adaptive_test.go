package montecarlo

import (
	"math"
	"strings"
	"testing"

	"repro/internal/failure"
	"repro/internal/linalg"
)

// adaptiveFixture builds the LU workload the adaptive tests share. The
// returned tolerance is tuned from a one-chunk probe so the mean-target
// stopping rule lands a handful of chunks in — big enough to exercise the
// out-of-order reducer, small enough to stay fast.
func adaptiveFixture(t *testing.T) (e *Estimator, tol float64) {
	t.Helper()
	g, err := linalg.LU(6, linalg.KernelTimes{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := failure.FromPfail(0.05, g.MeanWeight())
	if err != nil {
		t.Fatal(err)
	}
	probe, err := Estimate(g, m, Config{Trials: ChunkTrials, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	e, err = NewEstimator(g, m, Config{Seed: 42, Tolerance: probe.CI95 / 2})
	if err != nil {
		t.Fatal(err)
	}
	return e, probe.CI95 / 2
}

// The tentpole's determinism pin: an adaptive run that stops after k
// chunks must be bit-identical to a fixed-budget run of k·ChunkTrials
// trials — same Mean/StdDev/Min/Max, same sketch — for any worker count,
// because the stopping point is decided on the in-order chunk prefix.
func TestAdaptiveMatchesFixedPrefix(t *testing.T) {
	e, _ := adaptiveFixture(t)
	var want Result
	var wantSketch *QuantileSketch
	for i, workers := range []int{1, 2, 3, 8} {
		we, err := e.WithConfig(Config{Seed: 42, Tolerance: e.cfg.Tolerance, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		res, sk, err := we.RunQuantiles()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("workers=%d: run did not converge (trials %d)", workers, res.TrialsRun)
		}
		if res.TrialsRun%ChunkTrials != 0 || res.TrialsRun == 0 {
			t.Fatalf("workers=%d: TrialsRun %d not a positive whole chunk count", workers, res.TrialsRun)
		}
		if res.TrialsRun >= we.cfg.MaxTrials {
			t.Fatalf("workers=%d: adaptive run burned the whole cap (%d)", workers, res.TrialsRun)
		}
		if i == 0 {
			want, wantSketch = res, sk
		} else if res != want {
			t.Fatalf("workers=%d: adaptive result differs:\n%+v\n%+v", workers, res, want)
		} else if sk.N() != wantSketch.N() || sk.Quantile(0.5) != wantSketch.Quantile(0.5) || sk.Quantile(0.99) != wantSketch.Quantile(0.99) {
			t.Fatalf("workers=%d: adaptive sketch differs", workers)
		}
	}

	// Fixed-budget run of exactly the stopping chunk count: every shared
	// field must match bit-for-bit (the fixed run reports no adaptive
	// diagnostics, so compare after clearing them).
	fe, err := e.WithConfig(Config{Seed: 42, Trials: want.TrialsRun})
	if err != nil {
		t.Fatal(err)
	}
	fixed, fsk, err := fe.RunQuantiles()
	if err != nil {
		t.Fatal(err)
	}
	cmp := want
	cmp.Converged, cmp.AchievedCI = false, 0
	if cmp != fixed {
		t.Fatalf("adaptive prefix != fixed run of %d trials:\n%+v\n%+v", want.TrialsRun, cmp, fixed)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if wantSketch.Quantile(q) != fsk.Quantile(q) {
			t.Fatalf("sketch q=%v: adaptive %v != fixed %v", q, wantSketch.Quantile(q), fsk.Quantile(q))
		}
	}
}

// The resumable-snapshot pin: extending a loose-tolerance snapshot to a
// tighter tolerance must be bit-identical to a cold run at the tighter
// tolerance — the warm path re-runs nothing and diverges nowhere.
func TestWarmExtendMatchesCold(t *testing.T) {
	e, tol := adaptiveFixture(t)
	loose, err := e.WithConfig(Config{Seed: 42, Tolerance: 2 * tol})
	if err != nil {
		t.Fatal(err)
	}
	_, snap1, err := loose.ResumeAdaptive(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := e.WithConfig(Config{Seed: 42, Tolerance: tol / 2, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	warmRes, warmSnap, err := tight.ResumeAdaptive(snap1, nil)
	if err != nil {
		t.Fatal(err)
	}
	coldRes, coldSnap, err := tight.ResumeAdaptive(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if warmSnap.Chunks() <= snap1.Chunks() {
		t.Fatalf("tighter tolerance did not extend the snapshot (%d -> %d chunks)", snap1.Chunks(), warmSnap.Chunks())
	}
	if warmRes != coldRes {
		t.Fatalf("warm extend != cold run:\n%+v\n%+v", warmRes, coldRes)
	}
	if warmSnap.Chunks() != coldSnap.Chunks() || warmSnap.Trials() != coldSnap.Trials() {
		t.Fatalf("warm snapshot at %d chunks, cold at %d", warmSnap.Chunks(), coldSnap.Chunks())
	}
	ws, cs := warmSnap.Sketch(), coldSnap.Sketch()
	if ws.N() != cs.N() || ws.CellWidth() != cs.CellWidth() {
		t.Fatal("warm and cold sketches differ in shape")
	}
	for _, q := range []float64{0.05, 0.5, 0.95} {
		if ws.Quantile(q) != cs.Quantile(q) {
			t.Fatalf("q=%v: warm %v != cold %v", q, ws.Quantile(q), cs.Quantile(q))
		}
	}
	// A snapshot that already satisfies the tolerance is a pure cache hit:
	// no new chunks, result identical to SnapshotResult.
	hitRes, hitSnap, err := tight.ResumeAdaptive(warmSnap, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hitSnap.Chunks() != warmSnap.Chunks() {
		t.Fatalf("satisfied snapshot grew: %d -> %d chunks", warmSnap.Chunks(), hitSnap.Chunks())
	}
	want, err := tight.SnapshotResult(warmSnap)
	if err != nil {
		t.Fatal(err)
	}
	if hitRes != want {
		t.Fatalf("cache-hit result %+v != SnapshotResult %+v", hitRes, want)
	}
	if !tight.SnapshotConverged(warmSnap) {
		t.Fatal("SnapshotConverged false for a snapshot the same config just produced")
	}
	// snap1 was never mutated by the extension runs.
	if snap1.Chunks() >= warmSnap.Chunks() {
		t.Fatal("input snapshot mutated by ResumeAdaptive")
	}
}

// A quantile-target run must converge, stay chunk-aligned, and reproduce a
// fixed run of the same length; its AchievedCI comes from the sketch's
// order-statistic interval.
func TestAdaptiveQuantileTarget(t *testing.T) {
	e, _ := adaptiveFixture(t)
	d0 := e.D0()
	qe, err := e.WithConfig(Config{Seed: 42, Tolerance: d0 * 0.01, TargetQuantile: 0.9, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, sk, err := qe.RunQuantiles()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.TrialsRun%ChunkTrials != 0 {
		t.Fatalf("quantile-target run: %+v", res)
	}
	lo, hi, err := sk.QuantileCI(0.9, DefaultConfidence)
	if err != nil {
		t.Fatal(err)
	}
	if got := (hi - lo) / 2; got != res.AchievedCI {
		t.Fatalf("AchievedCI %v != sketch interval half-width %v", res.AchievedCI, got)
	}
	if res.AchievedCI > d0*0.01 {
		t.Fatalf("converged but AchievedCI %v > tolerance %v", res.AchievedCI, d0*0.01)
	}
	fe, err := e.WithConfig(Config{Seed: 42, Trials: res.TrialsRun})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := fe.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean != fixed.Mean || res.StdDev != fixed.StdDev || res.Min != fixed.Min || res.Max != fixed.Max {
		t.Fatalf("quantile-target prefix != fixed run:\n%+v\n%+v", res, fixed)
	}
}

// The MaxTrials cap always binds (rounded up to whole chunks) and an
// unconverged capped run says so.
func TestAdaptiveCapBinds(t *testing.T) {
	e, _ := adaptiveFixture(t)
	capped, err := e.WithConfig(Config{Seed: 42, Tolerance: 1e-12, MaxTrials: 2*ChunkTrials + 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := capped.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TrialsRun != 3*ChunkTrials {
		t.Fatalf("MaxTrials %d should round up to %d trials, ran %d", 2*ChunkTrials+1, 3*ChunkTrials, res.TrialsRun)
	}
	if res.Converged {
		t.Fatal("capped run claims convergence at tolerance 1e-12")
	}
	if res.AchievedCI <= 0 {
		t.Fatal("capped run reports no achieved CI")
	}
}

// Adaptive knobs are validated like the rest of the config: half-configured
// or contradictory requests are errors, not silent reinterpretations.
func TestAdaptiveConfigValidation(t *testing.T) {
	g, err := linalg.LU(4, linalg.KernelTimes{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := failure.FromPfail(0.001, g.MeanWeight())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error; "" means the config is valid
	}{
		{"negative tolerance", Config{Tolerance: -1}, "Tolerance"},
		{"nan tolerance", Config{Tolerance: math.NaN()}, "Tolerance"},
		{"inf tolerance", Config{Tolerance: math.Inf(1)}, "Tolerance"},
		{"trials and tolerance", Config{Tolerance: 0.1, Trials: 1000}, "mutually exclusive"},
		{"legacy and tolerance", Config{Tolerance: 0.1, LegacySampler: true}, "LegacySampler"},
		{"negative maxtrials", Config{Tolerance: 0.1, MaxTrials: -1}, "MaxTrials"},
		{"maxtrials without tolerance", Config{MaxTrials: 100}, "MaxTrials"},
		{"quantile without tolerance", Config{TargetQuantile: 0.5}, "TargetQuantile"},
		{"confidence without tolerance", Config{Confidence: 0.9}, "Confidence"},
		{"quantile at 1", Config{Tolerance: 0.1, TargetQuantile: 1}, "TargetQuantile"},
		{"quantile above 1", Config{Tolerance: 0.1, TargetQuantile: 1.5}, "TargetQuantile"},
		{"negative quantile", Config{Tolerance: 0.1, TargetQuantile: -0.5}, "TargetQuantile"},
		{"confidence at 1", Config{Tolerance: 0.1, Confidence: 1}, "Confidence"},
		{"valid adaptive", Config{Tolerance: 0.1}, ""},
		{"valid quantile target", Config{Tolerance: 0.1, TargetQuantile: 0.99, Confidence: 0.9, MaxTrials: 50000}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, err := NewEstimator(g, m, tc.cfg)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("valid config rejected: %v", err)
				}
				if e.cfg.MaxTrials%ChunkTrials != 0 {
					t.Fatalf("MaxTrials %d not chunk-aligned", e.cfg.MaxTrials)
				}
				if e.cfg.Confidence <= 0 || e.cfg.Confidence >= 1 {
					t.Fatalf("Confidence not defaulted: %v", e.cfg.Confidence)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

// Snapshots carry their provenance; resuming one under a different seed,
// mode or compiled graph is an error, and ResumeAdaptive itself requires
// an adaptive config.
func TestResumeAdaptiveRejectsMismatch(t *testing.T) {
	e, tol := adaptiveFixture(t)
	_, snap, err := e.ResumeAdaptive(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	otherSeed, err := e.WithConfig(Config{Seed: 43, Tolerance: tol})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := otherSeed.ResumeAdaptive(snap, nil); err == nil || !strings.Contains(err.Error(), "seed") {
		t.Fatalf("seed mismatch not rejected: %v", err)
	}
	if e.SnapshotConverged(snap) != true {
		t.Fatal("fresh snapshot not converged under its own config")
	}
	if otherSeed.SnapshotConverged(snap) {
		t.Fatal("SnapshotConverged true across a seed mismatch")
	}
	if _, err := otherSeed.SnapshotResult(snap); err == nil {
		t.Fatal("SnapshotResult accepted a seed mismatch")
	}

	g2, err := linalg.LU(4, linalg.KernelTimes{})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := failure.FromPfail(0.05, g2.MeanWeight())
	if err != nil {
		t.Fatal(err)
	}
	otherGraph, err := NewEstimator(g2, m2, Config{Seed: 42, Tolerance: tol})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := otherGraph.ResumeAdaptive(snap, nil); err == nil || !strings.Contains(err.Error(), "graph") {
		t.Fatalf("graph mismatch not rejected: %v", err)
	}

	fixed, err := e.WithConfig(Config{Seed: 42, Trials: ChunkTrials})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := fixed.ResumeAdaptive(nil, nil); err == nil || !strings.Contains(err.Error(), "Tolerance") {
		t.Fatalf("fixed-budget ResumeAdaptive not rejected: %v", err)
	}
	if _, err := fixed.SnapshotResult(snap); err == nil {
		t.Fatal("fixed-budget SnapshotResult not rejected")
	}
}

// The progress hook replaces the engine's own stopping rule: it sees every
// in-order prefix exactly once (plus the pre-run call) and its verdict
// alone stops the run, with the cap still binding.
func TestResumeAdaptiveProgressHook(t *testing.T) {
	e, _ := adaptiveFixture(t)
	we, err := e.WithConfig(Config{Seed: 42, Tolerance: 1e-12, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var seen []int64
	res, snap, err := we.ResumeAdaptive(nil, func(s *Snapshot) bool {
		seen = append(seen, s.Chunks())
		return s.Chunks() >= 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Chunks() != 3 || res.TrialsRun != 3*ChunkTrials {
		t.Fatalf("progress-stopped run at %d chunks, %d trials", snap.Chunks(), res.TrialsRun)
	}
	for i, c := range seen {
		if c != int64(i) {
			t.Fatalf("progress saw prefixes %v; want 0,1,2,3 in order", seen)
		}
	}
	// The tolerance was unreachable, so the result honestly reports that
	// even though progress stopped the run.
	if res.Converged {
		t.Fatal("progress-stopped run claims tolerance convergence")
	}
}

// normalQuantile anchors the CI math; pin it against known values of the
// standard normal inverse CDF.
func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.025, -1.959963984540054},
		{0.95, 1.6448536269514722},
		{0.999, 3.090232306167813},
		{0.001, -3.090232306167813},
	}
	for _, tc := range cases {
		if got := normalQuantile(tc.p); math.Abs(got-tc.want) > 1e-6 {
			t.Fatalf("normalQuantile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if !math.IsNaN(normalQuantile(0)) || !math.IsNaN(normalQuantile(1)) || !math.IsNaN(normalQuantile(-0.5)) {
		t.Fatal("normalQuantile outside (0,1) must be NaN")
	}
}
