package distribution

import (
	"fmt"
	"math"
)

// Normal is a Gaussian distribution parameterized by mean and variance.
// Variance zero (a point mass) is allowed: Sculli's sweep starts from the
// deterministic source task.
type Normal struct {
	Mu     float64 // mean
	Sigma2 float64 // variance (>= 0)
}

// NormalFromMoments builds a Normal matching the first two moments of an
// arbitrary distribution — the "normality assumption" step of the paper's
// Normal method.
func NormalFromMoments(mean, variance float64) (Normal, error) {
	if variance < 0 || math.IsNaN(variance) || math.IsNaN(mean) {
		return Normal{}, fmt.Errorf("distribution: invalid moments mean=%v var=%v", mean, variance)
	}
	return Normal{Mu: mean, Sigma2: variance}, nil
}

// NormalOfDiscrete moment-matches a Normal to a discrete distribution.
func NormalOfDiscrete(d Discrete) Normal {
	return Normal{Mu: d.Mean(), Sigma2: d.Variance()}
}

// Sigma returns the standard deviation.
func (n Normal) Sigma() float64 { return math.Sqrt(n.Sigma2) }

// Add returns the distribution of X+Y for independent X ~ n, Y ~ o.
func (n Normal) Add(o Normal) Normal {
	return Normal{Mu: n.Mu + o.Mu, Sigma2: n.Sigma2 + o.Sigma2}
}

// Shift returns the distribution of X + c.
func (n Normal) Shift(c float64) Normal { return Normal{Mu: n.Mu + c, Sigma2: n.Sigma2} }

// StdNormPDF is the standard normal density φ.
func StdNormPDF(x float64) float64 {
	return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
}

// StdNormCDF is the standard normal CDF Φ, via math.Erf.
func StdNormCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

// CDF returns P(X <= x).
func (n Normal) CDF(x float64) float64 {
	if n.Sigma2 == 0 {
		if x >= n.Mu {
			return 1
		}
		return 0
	}
	return StdNormCDF((x - n.Mu) / n.Sigma())
}

// ClarkMax returns the normal moment-matched to max(X,Y) where (X,Y) is
// bivariate normal with correlation rho, using Clark's exact formulas for
// the first two moments of the maximum (Clark 1961, eqs. 2-5):
//
//	a² = σx² + σy² − 2ρσxσy
//	α  = (μx − μy)/a
//	E[max]  = μx Φ(α) + μy Φ(−α) + a φ(α)
//	E[max²] = (μx²+σx²) Φ(α) + (μy²+σy²) Φ(−α) + (μx+μy) a φ(α)
//
// The returned Normal matches these two moments (the "assume the max is
// normal again" step of Sculli's method). When a == 0 the two variables are
// almost-surely ordered by mean and the larger one is returned.
func ClarkMax(x, y Normal, rho float64) Normal {
	if rho < -1 || rho > 1 || math.IsNaN(rho) {
		rho = 0
	}
	sx, sy := x.Sigma(), y.Sigma()
	a2 := x.Sigma2 + y.Sigma2 - 2*rho*sx*sy
	if a2 <= 1e-300 {
		// Degenerate: X − Y is (almost surely) constant μx − μy.
		if x.Mu >= y.Mu {
			return x
		}
		return y
	}
	a := math.Sqrt(a2)
	alpha := (x.Mu - y.Mu) / a
	phiA := StdNormPDF(alpha)
	cdfA := StdNormCDF(alpha)
	cdfMA := StdNormCDF(-alpha)
	nu1 := x.Mu*cdfA + y.Mu*cdfMA + a*phiA
	nu2 := (x.Mu*x.Mu+x.Sigma2)*cdfA + (y.Mu*y.Mu+y.Sigma2)*cdfMA + (x.Mu+y.Mu)*a*phiA
	v := nu2 - nu1*nu1
	if v < 0 {
		v = 0 // floating-point guard; Clark's variance is non-negative
	}
	return Normal{Mu: nu1, Sigma2: v}
}

// ClarkMaxCorrelation returns the correlation between max(X,Y) and a third
// normal Z, given corr(X,Z)=rxz and corr(Y,Z)=ryz (Clark 1961, eq. 7):
//
//	corr(max, Z) = (σx rxz Φ(α) + σy ryz Φ(−α)) / σ_max
//
// It is used by the correlation-aware (CorLCA-style) sweep to propagate
// correlations through successive maxima.
func ClarkMaxCorrelation(x, y Normal, rho, rxz, ryz float64, maxDist Normal) float64 {
	sx, sy := x.Sigma(), y.Sigma()
	a2 := x.Sigma2 + y.Sigma2 - 2*rho*sx*sy
	if a2 <= 1e-300 {
		if x.Mu >= y.Mu {
			return rxz
		}
		return ryz
	}
	a := math.Sqrt(a2)
	alpha := (x.Mu - y.Mu) / a
	sm := maxDist.Sigma()
	if sm == 0 {
		return 0
	}
	r := (sx*rxz*StdNormCDF(alpha) + sy*ryz*StdNormCDF(-alpha)) / sm
	if r > 1 {
		r = 1
	} else if r < -1 {
		r = -1
	}
	return r
}

// String renders the normal for debugging.
func (n Normal) String() string {
	return fmt.Sprintf("N(%.6g, %.6g)", n.Mu, n.Sigma2)
}
