package distribution

import "sync"

// This file is the merge-based discrete-distribution kernel behind Add,
// MaxInd and their fused capped variants. Supports are always sorted, so
// the n·m-atom convolution can be produced in ascending order by a k-way
// merge over the shorter operand's rows instead of the build-then-sort
// pass the naive algorithm uses (O(nm log nm) with ~5 allocations per op).
// The capped variants additionally stream the merged atoms through a
// binner that replicates Rediscretize bit for bit, so a capped op never
// materializes the full n·m product: peak extra memory is
// O(min(n,m) + maxAtoms), and with a reused Scratch the only allocations
// per op are the two exact-size result slices.

// Scratch holds the reusable buffers of the merge kernel. A zero Scratch
// is ready to use; buffers grow to the high-water mark of the ops threaded
// through it and are reused across calls. Not safe for concurrent use.
type Scratch struct {
	hSum []float64 // k-way merge heap: current sum per live row
	hRow []int32   // row index per heap slot
	cols []int32   // next column per row
	vals []float64 // staging for merged atoms (MaxInd support, binner ring)
	prbs []float64
	binV []float64 // streaming binner output staging
	binP []float64
}

// scratchPool backs the public Add/MaxInd entry points so every caller
// gets buffer reuse without threading a Scratch explicitly.
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

func (s *Scratch) rows(n int) {
	if cap(s.hSum) < n {
		s.hSum = make([]float64, n)
		s.hRow = make([]int32, n)
		s.cols = make([]int32, n)
	}
	s.hSum = s.hSum[:n]
	s.hRow = s.hRow[:n]
	s.cols = s.cols[:n]
}

// stage returns the vals/prbs staging buffers with length 0 and capacity
// at least c.
func (s *Scratch) stage(c int) {
	if cap(s.vals) < c {
		s.vals = make([]float64, 0, c)
		s.prbs = make([]float64, 0, c)
	}
	s.vals = s.vals[:0]
	s.prbs = s.prbs[:0]
}

// Add returns the distribution of X+Y for independent X ~ d, Y ~ o, by
// exact convolution. The result has at most Len(d)*Len(o) atoms; callers
// that chain many capped Adds should use AddCapped, which never builds
// the full product.
func (d Discrete) Add(o Discrete) Discrete {
	s := scratchPool.Get().(*Scratch)
	out := d.AddCapped(o, 0, s)
	scratchPool.Put(s)
	return out
}

// AddCapped returns Add(d, o) re-discretized to at most maxAtoms support
// points (maxAtoms <= 0 = uncapped). The result is bit-identical to
// d.Add(o).Rediscretize(maxAtoms) but merges and bins in one streaming
// pass. A nil Scratch uses an internal pool.
func (d Discrete) AddCapped(o Discrete, maxAtoms int, s *Scratch) Discrete {
	if s == nil {
		s = scratchPool.Get().(*Scratch)
		defer scratchPool.Put(s)
	}
	// Merge over the shorter operand's rows: sums and products are
	// commutative bit for bit, so swapping operands is free.
	x, y := d, o
	if len(x.values) > len(y.values) {
		x, y = y, x
	}
	if len(x.values) == 0 || len(y.values) == 0 {
		panic("distribution: Add on zero-value Discrete")
	}
	if maxAtoms > 0 && len(x.values)*len(y.values) > maxAtoms {
		return addCapped(x, y, maxAtoms, s)
	}
	return addExact(x, y, s)
}

// addExact emits the full merged product into the staging buffers and
// copies it out, replicating NewDiscrete's merge + renormalize exactly.
func addExact(x, y Discrete, s *Scratch) Discrete {
	s.stage(len(x.values) * len(y.values))
	m := newMerger(x, y, s)
	for {
		v, p, ok := m.next()
		if !ok {
			break
		}
		s.vals = append(s.vals, v)
		s.prbs = append(s.prbs, p)
	}
	// Renormalize exactly as Discrete.renormalize: ascending total, divide
	// only when the drift exceeds probEps.
	total := 0.0
	for _, p := range s.prbs {
		total += p
	}
	if total <= 0 {
		panic("distribution: zero total probability")
	}
	vals := make([]float64, len(s.vals))
	prbs := make([]float64, len(s.prbs))
	copy(vals, s.vals)
	if total-1 > probEps || 1-total > probEps {
		for i, p := range s.prbs {
			prbs[i] = p / total
		}
	} else {
		copy(prbs, s.prbs)
	}
	return Discrete{values: vals, probs: prbs}
}

// addCapped fuses the merge with Rediscretize. Renormalization is the
// only step that needs the total before the first atom is binned, so the
// common no-renormalization case runs in a single pass: the merge is
// replayed only when the raw total drifts beyond probEps (rare — the
// product of two normalized supports).
func addCapped(x, y Discrete, maxAtoms int, s *Scratch) Discrete {
	m := newMerger(x, y, s)
	total := 0.0
	b := newBinner(maxAtoms, 1, s)
	for {
		v, p, ok := m.next()
		if !ok {
			break
		}
		total += p
		b.push(v, p)
	}
	if total <= 0 {
		panic("distribution: zero total probability")
	}
	if total-1 > probEps || 1-total > probEps {
		// Rare: rerun the merge feeding normalized probabilities.
		m = newMerger(x, y, s)
		b = newBinner(maxAtoms, total, s)
		for {
			v, p, ok := m.next()
			if !ok {
				break
			}
			b.push(v, p)
		}
	}
	return b.finish()
}

// merger streams the convolution of x and y in ascending value order,
// with equal values merged into a single atom. x must be the row operand
// (any of the two; callers pick the shorter for a shallower heap).
type merger struct {
	x, y Discrete
	s    *Scratch
	n    int // live heap size
	// Pending run accumulator.
	runV    float64
	runP    float64
	started bool
	done    bool
}

func newMerger(x, y Discrete, s *Scratch) merger {
	n := len(x.values)
	s.rows(n)
	w0 := y.values[0]
	for i := 0; i < n; i++ {
		s.cols[i] = 0
		s.hSum[i] = x.values[i] + w0
		s.hRow[i] = int32(i)
	}
	// x.values ascending makes the initial arrays an already-valid min-heap.
	return merger{x: x, y: y, s: s, n: n}
}

// next returns the next distinct merged atom in ascending order. Runs of
// equal sums are accumulated in heap pop order; zero-probability runs
// (fully underflowed products) are skipped, matching NewDiscrete's
// drop-zero-atoms behavior.
func (m *merger) next() (v, p float64, ok bool) {
	s := m.s
	for m.n > 0 {
		sum := s.hSum[0]
		row := s.hRow[0]
		col := s.cols[row]
		prob := m.x.probs[row] * m.y.probs[col]
		// Advance the popped row's cursor.
		col++
		s.cols[row] = col
		if int(col) < len(m.y.values) {
			s.hSum[0] = m.x.values[row] + m.y.values[col]
			m.siftDown()
		} else {
			m.n--
			s.hSum[0] = s.hSum[m.n]
			s.hRow[0] = s.hRow[m.n]
			m.siftDown()
		}
		if m.started && sum == m.runV {
			m.runP += prob
			continue
		}
		outV, outP, flush := m.runV, m.runP, m.started && m.runP > 0
		m.runV, m.runP, m.started = sum, prob, true
		if flush {
			return outV, outP, true
		}
	}
	if m.started && !m.done && m.runP > 0 {
		m.done = true
		return m.runV, m.runP, true
	}
	return 0, 0, false
}

func (m *merger) siftDown() {
	s := m.s
	i := 0
	for {
		l := 2*i + 1
		if l >= m.n {
			return
		}
		if r := l + 1; r < m.n && s.hSum[r] < s.hSum[l] {
			l = r
		}
		if s.hSum[i] <= s.hSum[l] {
			return
		}
		s.hSum[i], s.hSum[l] = s.hSum[l], s.hSum[i]
		s.hRow[i], s.hRow[l] = s.hRow[l], s.hRow[i]
		i = l
	}
}

// binner replicates Rediscretize over a stream of ascending atoms without
// knowing the stream length in advance. Emission is delayed through a
// ring of maxAtoms+1 pending atoms: an atom forced out of a full ring is
// guaranteed to have at least maxAtoms >= binsLeft atoms after it, so the
// atomsLeft < binsLeft close rule cannot fire for it and the mass-only
// rule is exact; the atoms still pending at finish() are drained with the
// full rule and exact remaining counts. A stream of at most maxAtoms
// atoms is emitted unchanged (Rediscretize's identity fast path). inv is
// the normalization divisor applied to incoming probabilities (1 = none).
type binner struct {
	s        *Scratch
	maxAtoms int
	total    float64 // normalization divisor (1 = none)
	norm     bool
	target   float64
	binP     float64
	binM     float64
	binsLeft int
	seen     int // total atoms pushed
	head     int // ring start within s.vals/s.prbs
}

func newBinner(maxAtoms int, total float64, s *Scratch) binner {
	s.stage(maxAtoms + 1)
	if cap(s.binV) < maxAtoms {
		s.binV = make([]float64, 0, maxAtoms)
		s.binP = make([]float64, 0, maxAtoms)
	}
	s.binV = s.binV[:0]
	s.binP = s.binP[:0]
	return binner{
		s:        s,
		maxAtoms: maxAtoms,
		total:    total,
		norm:     total != 1,
		target:   1.0 / float64(maxAtoms),
		binsLeft: maxAtoms,
	}
}

func (b *binner) push(v, p float64) {
	if p == 0 {
		return // NewDiscrete drops zero atoms before Rediscretize sees them
	}
	if b.norm {
		p /= b.total
	}
	s := b.s
	if len(s.vals)-b.head == b.maxAtoms+1 {
		// Ring full: the oldest atom has >= maxAtoms successors, so only
		// the mass rule can close its bin.
		b.feed(s.vals[b.head], s.prbs[b.head], false, false)
		b.head++
		if b.head == len(s.vals) { // fully drained; restart the ring
			s.vals = s.vals[:0]
			s.prbs = s.prbs[:0]
			b.head = 0
		} else if b.head > b.maxAtoms {
			// Compact so the ring slices stay bounded.
			n := copy(s.vals, s.vals[b.head:])
			s.vals = s.vals[:n]
			copy(s.prbs, s.prbs[b.head:len(s.prbs)])
			s.prbs = s.prbs[:n]
			b.head = 0
		}
	}
	s.vals = append(s.vals, v)
	s.prbs = append(s.prbs, p)
	b.seen++
}

// feed runs one atom through the Rediscretize bin-close rule. scarce
// reports atomsLeft < binsLeft for this atom; last marks the final atom.
func (b *binner) feed(v, p float64, scarce, last bool) {
	b.binP += p
	b.binM += v * p
	if (b.binP >= b.target-probEps && b.binsLeft > 1) || scarce || last {
		if b.binP > 0 {
			emitBin(&b.s.binV, &b.s.binP, b.binM/b.binP, b.binP)
			b.binsLeft--
		}
		b.binP, b.binM = 0, 0
	}
}

// emitBin appends a bin, replicating the NewDiscrete pass Rediscretize
// ends with: two bins of near-coincident atoms can have conditional
// means that round to the same double — NewDiscrete merges them — or,
// pathologically, to means that swap order — NewDiscrete sorts them.
func emitBin(outV *[]float64, outP *[]float64, mean, p float64) {
	vs, ps := *outV, *outP
	i := len(vs)
	for i > 0 && mean < vs[i-1] {
		i--
	}
	if i > 0 && vs[i-1] == mean {
		ps[i-1] += p
		return
	}
	vs = append(vs, 0)
	ps = append(ps, 0)
	copy(vs[i+1:], vs[i:])
	copy(ps[i+1:], ps[i:])
	vs[i], ps[i] = mean, p
	*outV, *outP = vs, ps
}

func (b *binner) finish() Discrete {
	s := b.s
	pend := len(s.vals) - b.head
	if b.seen <= b.maxAtoms {
		// Identity fast path: the merged product already fits.
		vals := make([]float64, pend)
		prbs := make([]float64, pend)
		copy(vals, s.vals[b.head:])
		copy(prbs, s.prbs[b.head:])
		if len(vals) == 0 {
			panic("distribution: empty convolution")
		}
		return Discrete{values: vals, probs: prbs}
	}
	for i := 0; i < pend; i++ {
		atomsLeft := pend - 1 - i
		b.feed(s.vals[b.head+i], s.prbs[b.head+i], atomsLeft < b.binsLeft, i == pend-1)
	}
	// Final renormalize, exactly as the NewDiscrete call inside
	// Rediscretize: ascending total over the bins, divide past probEps.
	total := 0.0
	for _, p := range s.binP {
		total += p
	}
	if total <= 0 {
		panic("distribution: zero total probability")
	}
	vals := make([]float64, len(s.binV))
	prbs := make([]float64, len(s.binP))
	copy(vals, s.binV)
	if total-1 > probEps || 1-total > probEps {
		for i, p := range s.binP {
			prbs[i] = p / total
		}
	} else {
		copy(prbs, s.binP)
	}
	return Discrete{values: vals, probs: prbs}
}

// MaxInd returns the distribution of max(X,Y) for independent X ~ d,
// Y ~ o, via the CDF product: P(max <= v) = F_X(v) F_Y(v).
func (d Discrete) MaxInd(o Discrete) Discrete {
	s := scratchPool.Get().(*Scratch)
	out := d.MaxIndCapped(o, 0, s)
	scratchPool.Put(s)
	return out
}

// MaxIndCapped returns MaxInd(d, o) re-discretized to at most maxAtoms
// support points (maxAtoms <= 0 = uncapped), bit-identical to
// d.MaxInd(o).Rediscretize(maxAtoms) with a single merged pass over the
// two supports. A nil Scratch uses an internal pool.
func (d Discrete) MaxIndCapped(o Discrete, maxAtoms int, s *Scratch) Discrete {
	if s == nil {
		s = scratchPool.Get().(*Scratch)
		defer scratchPool.Put(s)
	}
	// One pass over the merged supports, accumulating both CDFs; atoms at
	// or below probEps are dropped as in the naive implementation.
	s.stage(len(d.values) + len(o.values))
	i, j := 0, 0
	cd, co := 0.0, 0.0
	prev := 0.0
	for i < len(d.values) || j < len(o.values) {
		var v float64
		switch {
		case i == len(d.values):
			v = o.values[j]
		case j == len(o.values):
			v = d.values[i]
		case d.values[i] <= o.values[j]:
			v = d.values[i]
		default:
			v = o.values[j]
		}
		for i < len(d.values) && d.values[i] <= v {
			cd += d.probs[i]
			i++
		}
		for j < len(o.values) && o.values[j] <= v {
			co += o.probs[j]
			j++
		}
		f := cd * co
		if p := f - prev; p > probEps {
			s.vals = append(s.vals, v)
			s.prbs = append(s.prbs, p)
		}
		prev = f
	}
	if len(s.vals) == 0 {
		panic("distribution: MaxInd produced empty support")
	}
	// NewDiscrete's renormalize: the dropped <= probEps atoms routinely
	// push the total past the tolerance.
	total := 0.0
	for _, p := range s.prbs {
		total += p
	}
	if total-1 > probEps || 1-total > probEps {
		inv := total
		for k := range s.prbs {
			s.prbs[k] /= inv
		}
	}
	if maxAtoms > 0 && len(s.vals) > maxAtoms {
		return rediscretizeSlices(s.vals, s.prbs, maxAtoms)
	}
	vals := make([]float64, len(s.vals))
	prbs := make([]float64, len(s.prbs))
	copy(vals, s.vals)
	copy(prbs, s.prbs)
	return Discrete{values: vals, probs: prbs}
}

// rediscretizeSlices is the binning loop shared by Rediscretize and the
// fused capped ops (the streaming binner above replicates it with
// bounded lookahead — any change here must be mirrored in
// binner.feed/finish or the bit-identity contract between fused and
// unfused capped ops breaks). vals must be strictly increasing with
// positive probabilities; it emits fresh result slices, closing a bin
// once it has target mass but never leaving more bins than atoms.
func rediscretizeSlices(vals, prbs []float64, maxAtoms int) Discrete {
	target := 1.0 / float64(maxAtoms)
	outV := make([]float64, 0, maxAtoms)
	outP := make([]float64, 0, maxAtoms)
	binP, binM := 0.0, 0.0
	binsLeft := maxAtoms
	atomsLeft := len(vals)
	for i, v := range vals {
		binP += prbs[i]
		binM += v * prbs[i]
		atomsLeft--
		if (binP >= target-probEps && binsLeft > 1) || atomsLeft < binsLeft || i == len(vals)-1 {
			if binP > 0 {
				emitBin(&outV, &outP, binM/binP, binP)
				binsLeft--
			}
			binP, binM = 0, 0
		}
	}
	total := 0.0
	for _, p := range outP {
		total += p
	}
	if total <= 0 {
		panic("distribution: zero total probability")
	}
	if total-1 > probEps || 1-total > probEps {
		for i := range outP {
			outP[i] /= total
		}
	}
	return Discrete{values: outV, probs: outP}
}
