package dag

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddTaskAndAccessors(t *testing.T) {
	g := New(2)
	a, err := g.AddTask("a", 1.5)
	if err != nil {
		t.Fatalf("AddTask: %v", err)
	}
	b, err := g.AddTask("b", 2.5)
	if err != nil {
		t.Fatalf("AddTask: %v", err)
	}
	if a != 0 || b != 1 {
		t.Fatalf("IDs = %d,%d want 0,1", a, b)
	}
	if g.NumTasks() != 2 {
		t.Fatalf("NumTasks = %d want 2", g.NumTasks())
	}
	if g.Name(a) != "a" || g.Weight(b) != 2.5 {
		t.Fatalf("accessors wrong: %q %v", g.Name(a), g.Weight(b))
	}
	if got := g.TotalWeight(); got != 4.0 {
		t.Fatalf("TotalWeight = %v want 4", got)
	}
	if got := g.MeanWeight(); got != 2.0 {
		t.Fatalf("MeanWeight = %v want 2", got)
	}
}

func TestAddTaskRejectsBadWeights(t *testing.T) {
	g := New(0)
	for _, w := range []float64{-1, nan()} {
		if _, err := g.AddTask("x", w); !errors.Is(err, ErrBadWeight) {
			t.Errorf("AddTask(%v) err = %v want ErrBadWeight", w, err)
		}
	}
	if _, err := g.AddTask("zero", 0); err != nil {
		t.Errorf("zero weight should be legal: %v", err)
	}
}

func nan() float64 { return 0.0 / zero }

var zero = 0.0

func TestAddEdgeValidation(t *testing.T) {
	g := New(2)
	a := g.MustAddTask("a", 1)
	b := g.MustAddTask("b", 1)
	if err := g.AddEdge(a, b); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := g.AddEdge(a, b); !errors.Is(err, ErrDuplicateEdge) {
		t.Errorf("duplicate edge err = %v", err)
	}
	if err := g.AddEdge(a, a); !errors.Is(err, ErrSelfLoop) {
		t.Errorf("self loop err = %v", err)
	}
	if err := g.AddEdge(a, 7); !errors.Is(err, ErrBadTask) {
		t.Errorf("bad task err = %v", err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d want 1", g.NumEdges())
	}
	if !g.HasEdge(a, b) || g.HasEdge(b, a) {
		t.Errorf("HasEdge wrong")
	}
}

func TestSourcesSinksDegrees(t *testing.T) {
	g := Diamond(1, 2, 3, 4)
	if got := g.Sources(); len(got) != 1 || got[0] != 0 {
		t.Errorf("Sources = %v", got)
	}
	if got := g.Sinks(); len(got) != 1 || got[0] != 3 {
		t.Errorf("Sinks = %v", got)
	}
	if g.OutDegree(0) != 2 || g.InDegree(3) != 2 || g.InDegree(0) != 0 {
		t.Errorf("degrees wrong")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := Diamond(1, 2, 3, 4)
	c := g.Clone()
	if err := c.SetWeight(0, 99); err != nil {
		t.Fatal(err)
	}
	c.MustAddEdge(1, 2)
	if g.Weight(0) != 1 {
		t.Errorf("clone shares weights")
	}
	if g.HasEdge(1, 2) {
		t.Errorf("clone shares adjacency")
	}
	if g.NumEdges() != 4 || c.NumEdges() != 5 {
		t.Errorf("edge counts: %d %d", g.NumEdges(), c.NumEdges())
	}
}

func TestSetWeight(t *testing.T) {
	g := Chain(3)
	if err := g.SetWeight(1, 7); err != nil {
		t.Fatal(err)
	}
	if g.Weight(1) != 7 {
		t.Errorf("SetWeight did not stick")
	}
	if err := g.SetWeight(9, 1); !errors.Is(err, ErrBadTask) {
		t.Errorf("bad id err = %v", err)
	}
	if err := g.SetWeight(0, -2); !errors.Is(err, ErrBadWeight) {
		t.Errorf("bad weight err = %v", err)
	}
}

func TestTopoOrderChain(t *testing.T) {
	g := Chain(5)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v want identity", order)
		}
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	g := New(3)
	a := g.MustAddTask("a", 1)
	b := g.MustAddTask("b", 1)
	c := g.MustAddTask("c", 1)
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, c)
	g.MustAddEdge(c, a)
	if _, err := g.TopoOrder(); !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v want ErrCycle", err)
	}
	if g.IsAcyclic() {
		t.Fatal("IsAcyclic on a cycle")
	}
	if err := g.Validate(); !errors.Is(err, ErrCycle) {
		t.Fatalf("Validate err = %v", err)
	}
}

func TestTopoOrderIsTopological(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		g, err := ErdosRenyiDAG(RandomConfig{Tasks: 30, EdgeProb: 0.15}, rng)
		if err != nil {
			t.Fatal(err)
		}
		order, err := g.TopoOrder()
		if err != nil {
			t.Fatal(err)
		}
		pos := make([]int, g.NumTasks())
		for i, v := range order {
			pos[v] = i
		}
		for u := 0; u < g.NumTasks(); u++ {
			for _, v := range g.Succ(u) {
				if pos[u] >= pos[v] {
					t.Fatalf("edge (%d,%d) violates order", u, v)
				}
			}
		}
	}
}

func TestLevelsAndDepthWidth(t *testing.T) {
	g := Diamond(1, 1, 1, 1)
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 3 {
		t.Fatalf("levels = %v want 3 levels", levels)
	}
	if len(levels[1]) != 2 {
		t.Fatalf("middle level = %v want 2 tasks", levels[1])
	}
	d, _ := g.Depth()
	w, _ := g.Width()
	if d != 3 || w != 2 {
		t.Fatalf("depth,width = %d,%d want 3,2", d, w)
	}
	empty := New(0)
	if d, _ := empty.Depth(); d != 0 {
		t.Fatalf("empty depth = %d", d)
	}
}

func TestValidatePassesOnGenerated(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfgs := []RandomConfig{
		{Tasks: 1},
		{Tasks: 40, EdgeProb: 0.3},
		{Tasks: 25, EdgeProb: 0.5, MaxLayerWidth: 4},
	}
	for _, cfg := range cfgs {
		g, err := ErdosRenyiDAG(cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("Validate(%+v): %v", cfg, err)
		}
		g, err = LayeredRandom(cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("Validate layered(%+v): %v", cfg, err)
		}
	}
}

// Property: any generated Erdős–Rényi DAG is acyclic with IDs already in a
// topological order.
func TestQuickErdosRenyiAcyclic(t *testing.T) {
	f := func(seed int64, sz uint8, prob uint8) bool {
		n := int(sz%40) + 1
		p := float64(prob%100)/100 + 0.01
		rng := rand.New(rand.NewSource(seed))
		g, err := ErdosRenyiDAG(RandomConfig{Tasks: n, EdgeProb: p}, rng)
		if err != nil {
			return false
		}
		return g.IsAcyclic()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStringSummary(t *testing.T) {
	g := Chain(3)
	s := g.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}
