package report

import (
	"encoding/json"
	"io"

	"repro/internal/experiments"
)

// JSON renderers for figure/table/sweep results: machine-readable
// companions to the aligned text tables in internal/experiments, with one
// object per data point and one entry per method. Method maps marshal
// with sorted keys, so the output layout is deterministic (timing fields
// naturally vary run to run; consumers diffing documents across runs
// should normalize *_time_seconds first, as scripts/e2e_smoke.sh does).

type methodJSON struct {
	Estimate    float64 `json:"estimate"`
	RelErr      float64 `json:"rel_err"`
	TimeSeconds float64 `json:"time_seconds"`
}

type pointJSON struct {
	K             int                   `json:"k"`
	Tasks         int                   `json:"tasks"`
	MCMean        float64               `json:"mc_mean"`
	MCCI95        float64               `json:"mc_ci95"`
	MCTimeSeconds float64               `json:"mc_time_seconds"`
	Methods       map[string]methodJSON `json:"methods"`
}

type figureJSON struct {
	Figure        int         `json:"figure"`
	Factorization string      `json:"factorization"`
	PFail         float64     `json:"pfail"`
	Trials        int         `json:"trials"`
	Points        []pointJSON `json:"points"`
}

type table1JSON struct {
	Factorization string    `json:"factorization"`
	K             int       `json:"k"`
	PFail         float64   `json:"pfail"`
	Trials        int       `json:"trials"`
	Point         pointJSON `json:"point"`
}

// sweepMethodJSON omits the raw estimate: a sweep point records only the
// normalized difference (matching the text table).
type sweepMethodJSON struct {
	RelErr      float64 `json:"rel_err"`
	TimeSeconds float64 `json:"time_seconds"`
}

type sweepPointJSON struct {
	PFail    float64                    `json:"pfail"`
	MCMean   float64                    `json:"mc_mean"`
	MCCI95   float64                    `json:"mc_ci95"`
	MCTrials int                        `json:"mc_trials"`
	Methods  map[string]sweepMethodJSON `json:"methods"`
}

type sweepJSON struct {
	Factorization string           `json:"factorization"`
	K             int              `json:"k"`
	Tasks         int              `json:"tasks"`
	Trials        int              `json:"trials"`
	Points        []sweepPointJSON `json:"points"`
}

func pointToJSON(p experiments.Point, methods []experiments.Method) pointJSON {
	out := pointJSON{
		K:             p.K,
		Tasks:         p.Tasks,
		MCMean:        p.MCMean,
		MCCI95:        p.MCCI95,
		MCTimeSeconds: p.MCTime.Seconds(),
		Methods:       make(map[string]methodJSON, len(methods)),
	}
	for _, m := range methods {
		out.Methods[string(m)] = methodJSON{
			Estimate:    p.Estimate[m],
			RelErr:      p.RelErr[m],
			TimeSeconds: p.Time[m].Seconds(),
		}
	}
	return out
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// figureMethods resolves the method column order of a figure document:
// the explicit list when given, otherwise the methods present in the
// first point, in canonical experiments.AllMethods order.
func figureMethods(methods []experiments.Method, points []experiments.Point) []experiments.Method {
	if len(methods) > 0 || len(points) == 0 {
		return methods
	}
	var out []experiments.Method
	for _, m := range experiments.AllMethods() {
		if _, ok := points[0].RelErr[m]; ok {
			out = append(out, m)
		}
	}
	return out
}

func sweepMethods(methods []experiments.Method, points []experiments.SweepPoint) []experiments.Method {
	if len(methods) > 0 || len(points) == 0 {
		return methods
	}
	var out []experiments.Method
	for _, m := range experiments.AllMethods() {
		if _, ok := points[0].RelErr[m]; ok {
			out = append(out, m)
		}
	}
	return out
}

// WriteFigureJSON renders a figure result as indented JSON.
func WriteFigureJSON(w io.Writer, r experiments.FigureResult, methods []experiments.Method) error {
	methods = figureMethods(methods, r.Points)
	out := figureJSON{
		Figure:        r.Spec.ID,
		Factorization: string(r.Spec.Fact),
		PFail:         r.Spec.PFail,
		Trials:        r.Trials,
	}
	for _, p := range r.Points {
		out.Points = append(out.Points, pointToJSON(p, methods))
	}
	return writeJSON(w, out)
}

// WriteTable1JSON renders a Table I result as indented JSON.
func WriteTable1JSON(w io.Writer, r experiments.Table1Result, methods []experiments.Method) error {
	methods = figureMethods(methods, []experiments.Point{r.Point})
	return writeJSON(w, table1JSON{
		Factorization: string(r.Spec.Fact),
		K:             r.Spec.K,
		PFail:         r.Spec.PFail,
		Trials:        r.Trials,
		Point:         pointToJSON(r.Point, methods),
	})
}

// WriteSweepJSON renders a sweep result as indented JSON.
func WriteSweepJSON(w io.Writer, r experiments.SweepResult, methods []experiments.Method) error {
	methods = sweepMethods(methods, r.Points)
	out := sweepJSON{
		Factorization: string(r.Spec.Fact),
		K:             r.Spec.K,
		Tasks:         r.Tasks,
		Trials:        r.Trials,
	}
	for _, p := range r.Points {
		sp := sweepPointJSON{
			PFail:    p.PFail,
			MCMean:   p.MCMean,
			MCCI95:   p.MCCI95,
			MCTrials: p.MCTrials,
			Methods:  make(map[string]sweepMethodJSON, len(methods)),
		}
		for _, m := range methods {
			sp.Methods[string(m)] = sweepMethodJSON{
				RelErr:      p.RelErr[m],
				TimeSeconds: p.Time[m].Seconds(),
			}
		}
		out.Points = append(out.Points, sp)
	}
	return writeJSON(w, out)
}

// schedCellJSON is one (pfail × procs × policy) cell of a schedule sweep.
type schedCellJSON struct {
	PFail             float64 `json:"pfail"`
	Procs             int     `json:"procs"`
	Policy            string  `json:"policy"`
	FailureFree       float64 `json:"failure_free_makespan"`
	Efficiency        float64 `json:"efficiency"`
	MCMean            float64 `json:"mc_mean"`
	MCCI95            float64 `json:"mc_ci95"`
	Overhead          float64 `json:"failure_overhead"`
	FreezeTimeSeconds float64 `json:"freeze_time_seconds"`
	MCTimeSeconds     float64 `json:"mc_time_seconds"`
}

type schedSweepJSON struct {
	Factorization string          `json:"factorization"`
	K             int             `json:"k"`
	Tasks         int             `json:"tasks"`
	Trials        int             `json:"trials"`
	Cells         []schedCellJSON `json:"cells"`
}

// WriteSchedSweepJSON renders a schedule sweep (experiments -sched) as
// indented JSON, one object per cell in sweep order.
func WriteSchedSweepJSON(w io.Writer, r experiments.SchedResult) error {
	out := schedSweepJSON{
		Factorization: string(r.Spec.Fact),
		K:             r.Spec.K,
		Tasks:         r.Tasks,
		Trials:        r.Trials,
		Cells:         []schedCellJSON{},
	}
	for _, p := range r.Points {
		out.Cells = append(out.Cells, schedCellJSON{
			PFail:             p.PFail,
			Procs:             p.Procs,
			Policy:            string(p.Policy),
			FailureFree:       p.FailureFree,
			Efficiency:        p.Efficiency,
			MCMean:            p.MCMean,
			MCCI95:            p.MCCI95,
			Overhead:          p.Overhead,
			FreezeTimeSeconds: p.FreezeTime.Seconds(),
			MCTimeSeconds:     p.MCTime.Seconds(),
		})
	}
	return writeJSON(w, out)
}

// reportJSON is the combined document of a full default run: all figures
// plus Table I in one parseable object.
type reportJSON struct {
	Figures []figureJSON `json:"figures"`
	Table1  *table1JSON  `json:"table1,omitempty"`
}

// WriteReportJSON renders several figure results and an optional Table I
// result as one JSON document (the default full run of cmd/experiments;
// the per-result writers each emit a standalone document).
func WriteReportJSON(w io.Writer, figures []experiments.FigureResult, table *experiments.Table1Result, methods []experiments.Method) error {
	var out reportJSON
	out.Figures = []figureJSON{}
	for _, r := range figures {
		ms := figureMethods(methods, r.Points)
		fig := figureJSON{
			Figure:        r.Spec.ID,
			Factorization: string(r.Spec.Fact),
			PFail:         r.Spec.PFail,
			Trials:        r.Trials,
		}
		for _, p := range r.Points {
			fig.Points = append(fig.Points, pointToJSON(p, ms))
		}
		out.Figures = append(out.Figures, fig)
	}
	if table != nil {
		ms := figureMethods(methods, []experiments.Point{table.Point})
		out.Table1 = &table1JSON{
			Factorization: string(table.Spec.Fact),
			K:             table.Spec.K,
			PFail:         table.Spec.PFail,
			Trials:        table.Trials,
			Point:         pointToJSON(table.Point, ms),
		}
	}
	return writeJSON(w, out)
}
