package normal

import (
	"repro/internal/dag"
	"repro/internal/distribution"
	"repro/internal/failure"
)

// CorLCA computes the correlation-aware normality-assumption estimate.
//
// The method (Canon–Jeannot) keeps, alongside each task's Gaussian
// completion time, a correlation tree: each task points to its dominant
// predecessor (the one with the largest mean completion time, i.e. the
// branch most likely to carry the task's start time). The covariance of
// two completion times is approximated by the variance of the completion
// of their lowest common ancestor in that tree:
//
//	Cov(C_u, C_v) ≈ Var(C_lca(u,v)),  ρ = Cov/(σ_u σ_v)
//
// and the estimated ρ is fed into Clark's max formulas when folding
// predecessor completions. LCA queries walk parent pointers, so the worst
// case is O(V·E·depth) — the method is markedly slower than First Order on
// deep graphs, consistent with the paper's Table I runtimes.
func CorLCA(g *dag.Graph, model failure.Model) (Result, error) {
	f, err := dag.Freeze(g)
	if err != nil {
		return Result{}, err
	}
	// Everything below is indexed by topological position: the correlation
	// tree's parent pointers always point at smaller positions, so the
	// sweep and the LCA walks both stream the frozen arrays.
	n := f.NumTasks()
	w := f.WeightsTopo()
	comp := make([]distribution.Normal, n)
	parent := make([]int, n)
	depth := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	// lcaVar returns Var(C_lca(u,v)) by walking the correlation tree, or 0
	// when the tasks share no ancestor.
	lcaVar := func(u, v int) float64 {
		for u != v {
			if u == -1 || v == -1 {
				return 0
			}
			if depth[u] >= depth[v] {
				u = parent[u]
			} else {
				v = parent[v]
			}
		}
		if u == -1 {
			return 0
		}
		return comp[u].Sigma2
	}
	rho := func(u, v int) float64 {
		su, sv := comp[u].Sigma(), comp[v].Sigma()
		if su == 0 || sv == 0 {
			return 0
		}
		r := lcaVar(u, v) / (su * sv)
		if r > 1 {
			r = 1
		} else if r < -1 {
			r = -1
		}
		return r
	}
	fold := func(preds []int32) (distribution.Normal, int) {
		var acc distribution.Normal
		rep := -1
		for k, p32 := range preds {
			p := int(p32)
			if k == 0 {
				acc, rep = comp[p], p
				continue
			}
			acc = distribution.ClarkMax(acc, comp[p], rho(rep, p))
			// The dominant branch is the one with the larger mean
			// completion; it becomes the representative for subsequent
			// correlation queries and the correlation-tree parent.
			if comp[p].Mu > comp[rep].Mu {
				rep = p
			}
		}
		return acc, rep
	}
	var final distribution.Normal
	finalRep := -1
	for v := 0; v < n; v++ {
		start, rep := fold(f.PredTopo(v))
		comp[v] = start.Add(taskNormal(w[v], model))
		parent[v] = rep
		if rep >= 0 {
			depth[v] = depth[rep] + 1
		}
		if f.OutDegreeTopo(v) == 0 {
			if finalRep == -1 {
				final, finalRep = comp[v], v
			} else {
				final = distribution.ClarkMax(final, comp[v], rho(finalRep, v))
				if comp[v].Mu > comp[finalRep].Mu {
					finalRep = v
				}
			}
		}
	}
	return Result{Estimate: final.Mu, Makespan: final}, nil
}
