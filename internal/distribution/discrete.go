// Package distribution implements the probability machinery the makespan
// estimators rely on: finite discrete random variables with exact sum
// (convolution) and independent-max operators, mean-preserving
// re-discretization to keep supports tractable (Dodin's method needs it),
// and normal distributions with Clark's moment formulas for the maximum of
// correlated Gaussians (Sculli's method needs them).
package distribution

import (
	"fmt"
	"math"
	"sort"
)

// Discrete is a finite discrete probability distribution over float64
// values. The invariant maintained by all constructors and operators:
// values strictly increasing, probabilities positive and summing to 1
// (within floating-point tolerance). The zero value is invalid; use the
// constructors.
type Discrete struct {
	values []float64
	probs  []float64
}

// probEps is the tolerance for probability normalization checks and the
// threshold below which atoms are dropped (then renormalized).
const probEps = 1e-12

// Point returns the deterministic distribution concentrated on v.
func Point(v float64) Discrete {
	return Discrete{values: []float64{v}, probs: []float64{1}}
}

// NewDiscrete builds a distribution from parallel value/probability slices.
// Values need not be sorted or unique; probabilities must be non-negative
// and sum to 1 within 1e-9.
func NewDiscrete(values, probs []float64) (Discrete, error) {
	if len(values) != len(probs) {
		return Discrete{}, fmt.Errorf("distribution: %d values vs %d probs", len(values), len(probs))
	}
	if len(values) == 0 {
		return Discrete{}, fmt.Errorf("distribution: empty support")
	}
	type atom struct{ v, p float64 }
	atoms := make([]atom, 0, len(values))
	total := 0.0
	for i := range values {
		if math.IsNaN(values[i]) || math.IsInf(values[i], 0) {
			return Discrete{}, fmt.Errorf("distribution: non-finite value %v", values[i])
		}
		if probs[i] < 0 || math.IsNaN(probs[i]) {
			return Discrete{}, fmt.Errorf("distribution: bad probability %v", probs[i])
		}
		total += probs[i]
		if probs[i] > 0 {
			atoms = append(atoms, atom{values[i], probs[i]})
		}
	}
	if math.Abs(total-1) > 1e-9 {
		return Discrete{}, fmt.Errorf("distribution: probabilities sum to %v, not 1", total)
	}
	if len(atoms) == 0 {
		return Discrete{}, fmt.Errorf("distribution: all probabilities zero")
	}
	sort.Slice(atoms, func(i, j int) bool { return atoms[i].v < atoms[j].v })
	d := Discrete{
		values: make([]float64, 0, len(atoms)),
		probs:  make([]float64, 0, len(atoms)),
	}
	for _, a := range atoms {
		if n := len(d.values); n > 0 && d.values[n-1] == a.v {
			d.probs[n-1] += a.p
		} else {
			d.values = append(d.values, a.v)
			d.probs = append(d.probs, a.p)
		}
	}
	d.renormalize()
	return d, nil
}

// TwoState returns the paper's per-task distribution: value a with
// probability p (first execution succeeds) and 2a with probability 1-p
// (one re-execution). p must be in [0,1].
func TwoState(a, p float64) (Discrete, error) {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return Discrete{}, fmt.Errorf("distribution: success probability %v outside [0,1]", p)
	}
	switch {
	case p == 1 || a == 0:
		return Point(a), nil
	case p == 0:
		return Point(2 * a), nil
	}
	return Discrete{values: []float64{a, 2 * a}, probs: []float64{p, 1 - p}}, nil
}

// Len returns the number of support atoms.
func (d Discrete) Len() int { return len(d.values) }

// IsZero reports whether d is the invalid zero value.
func (d Discrete) IsZero() bool { return len(d.values) == 0 }

// Atom returns the i-th support point and its probability (ascending order).
func (d Discrete) Atom(i int) (value, prob float64) { return d.values[i], d.probs[i] }

// Support returns a copy of the support values in ascending order.
func (d Discrete) Support() []float64 { return append([]float64(nil), d.values...) }

// Mean returns the expectation.
func (d Discrete) Mean() float64 {
	var m float64
	for i, v := range d.values {
		m += v * d.probs[i]
	}
	return m
}

// Variance returns the variance, computed against the mean for stability.
func (d Discrete) Variance() float64 {
	m := d.Mean()
	var s float64
	for i, v := range d.values {
		dv := v - m
		s += dv * dv * d.probs[i]
	}
	return s
}

// Min and Max return the support bounds.
func (d Discrete) Min() float64 { return d.values[0] }

// Max returns the largest support point.
func (d Discrete) Max() float64 { return d.values[len(d.values)-1] }

// CDF returns P(X <= x).
func (d Discrete) CDF(x float64) float64 {
	var c float64
	for i, v := range d.values {
		if v > x {
			break
		}
		c += d.probs[i]
	}
	return c
}

// Quantile returns the smallest support value v with CDF(v) >= q, for
// q in (0, 1]. Quantile(0) returns the minimum.
func (d Discrete) Quantile(q float64) float64 {
	if q <= 0 {
		return d.values[0]
	}
	var c float64
	for i, v := range d.values {
		c += d.probs[i]
		if c >= q-probEps {
			return v
		}
	}
	return d.values[len(d.values)-1]
}

// Shift returns the distribution of X + c.
func (d Discrete) Shift(c float64) Discrete {
	vals := make([]float64, len(d.values))
	for i, v := range d.values {
		vals[i] = v + c
	}
	return Discrete{values: vals, probs: append([]float64(nil), d.probs...)}
}

// Scale returns the distribution of c*X for c >= 0.
func (d Discrete) Scale(c float64) Discrete {
	if c < 0 {
		panic("distribution: negative scale")
	}
	if c == 0 {
		return Point(0)
	}
	vals := make([]float64, len(d.values))
	for i, v := range d.values {
		vals[i] = c * v
	}
	return Discrete{values: vals, probs: append([]float64(nil), d.probs...)}
}

// Rediscretize returns a distribution with at most maxAtoms support points.
// Adjacent atoms are merged into probability-balanced bins; each bin is
// replaced by a single atom at the bin's conditional mean, so the overall
// mean is preserved exactly (variance shrinks, as with any coarsening).
// If d already fits, it is returned unchanged.
func (d Discrete) Rediscretize(maxAtoms int) Discrete {
	if maxAtoms < 1 {
		maxAtoms = 1
	}
	if len(d.values) <= maxAtoms {
		return d
	}
	return rediscretizeSlices(d.values, d.probs, maxAtoms)
}

// Sample draws one value using the uniform variate u in [0,1).
func (d Discrete) Sample(u float64) float64 {
	var c float64
	for i, p := range d.probs {
		c += p
		if u < c {
			return d.values[i]
		}
	}
	return d.values[len(d.values)-1]
}

// String renders the distribution compactly for debugging.
func (d Discrete) String() string {
	if d.IsZero() {
		return "Discrete{}"
	}
	if len(d.values) <= 4 {
		s := "Discrete{"
		for i, v := range d.values {
			if i > 0 {
				s += ", "
			}
			s += fmt.Sprintf("%g:%.4g", v, d.probs[i])
		}
		return s + "}"
	}
	return fmt.Sprintf("Discrete{%d atoms in [%g,%g], mean %.6g}",
		len(d.values), d.Min(), d.Max(), d.Mean())
}

func (d *Discrete) renormalize() {
	var total float64
	for _, p := range d.probs {
		total += p
	}
	if total <= 0 {
		panic("distribution: zero total probability")
	}
	if math.Abs(total-1) > probEps {
		for i := range d.probs {
			d.probs[i] /= total
		}
	}
}
