package service

// Routing-key extraction for makespan-lb. The lb shards /v1/* traffic
// across replicas by the canonical graph artifact key so that every
// artifact derived from one graph (plans, estimators, schedules,
// snapshots) lands in one replica's LRU budget. The extraction decodes
// only the graph-selecting fields of a request body — never methods,
// trials or any other request knob — so the lb stays ignorant of the
// estimation API's shape and two requests that differ only in their
// parameters still route to the same replica.

import (
	"encoding/json"
	"fmt"

	"repro/internal/artifact"
	"repro/internal/dag"
	"repro/internal/experiments"
	"repro/internal/linalg"
)

// RoutingSelector is the graph-selecting subset shared by every /v1
// request body (graphRef, without the service's resolution machinery).
// The zero value means "no selector": the sweep route treats that as
// the default sweep spec, everything else rejects it server-side.
type RoutingSelector struct {
	GraphID string          `json:"graph_id,omitempty"`
	Kind    string          `json:"kind,omitempty"`
	K       int             `json:"k,omitempty"`
	Graph   json.RawMessage `json:"graph,omitempty"`
}

// ExtractSelector pulls the graph selector out of a /v1 request body
// without decoding the rest of it. Bodies that are not JSON objects
// fail here exactly as they would fail the replica's decoder; unknown
// fields are ignored (the replica, not the router, owns strictness).
func ExtractSelector(body []byte) (RoutingSelector, error) {
	var sel RoutingSelector
	if err := json.Unmarshal(body, &sel); err != nil {
		return RoutingSelector{}, fmt.Errorf("routing: bad request body: %w", err)
	}
	return sel, nil
}

// IsZero reports whether no selector field is set.
func (sel RoutingSelector) IsZero() bool {
	return sel.GraphID == "" && sel.Kind == "" && len(sel.Graph) == 0
}

// DefaultSweepSelector is the selector the sweep route assumes when a
// request names no graph: the default sweep spec's generator. Routing
// with it keeps selector-less sweeps on the same replica that owns the
// default workload's artifacts.
func DefaultSweepSelector() RoutingSelector {
	def := experiments.DefaultSweep()
	return RoutingSelector{Kind: string(def.Fact), K: def.K}
}

// RoutingKey computes the graph artifact key ("graph/sha256:…") the
// replica will cache this request's artifacts under — the cluster
// shard key. graph_id wins over kind over inline graph when several
// are set (the replica 400s such bodies anyway; the priority only
// keeps routing deterministic). Generator specs pay one generate +
// marshal + hash; callers that route hot paths should memoize by
// (kind, k) — the named workloads are deterministic, so the key never
// changes. Inline graphs are canonicalized exactly like the submit
// path: unmarshal into the dag schema, re-marshal, hash.
func (sel RoutingSelector) RoutingKey() (string, error) {
	switch {
	case sel.GraphID != "":
		return string(artifact.GraphKey(sel.GraphID)), nil
	case sel.Kind != "":
		if sel.K <= 0 {
			return "", fmt.Errorf("routing: generator %q needs k >= 1, got %d", sel.Kind, sel.K)
		}
		g, err := linalg.Generate(linalg.Factorization(sel.Kind), sel.K, linalg.KernelTimes{})
		if err != nil {
			return "", fmt.Errorf("routing: %w", err)
		}
		return graphKeyOf(g)
	case len(sel.Graph) > 0:
		var g dag.Graph
		if err := json.Unmarshal(sel.Graph, &g); err != nil {
			return "", fmt.Errorf("routing: bad graph: %w", err)
		}
		return graphKeyOf(&g)
	default:
		return "", fmt.Errorf("routing: no graph selector in request")
	}
}

// graphKeyOf canonicalizes g the same way the artifact store does and
// returns its store key.
func graphKeyOf(g *dag.Graph) (string, error) {
	canonical, err := json.Marshal(g)
	if err != nil {
		return "", fmt.Errorf("routing: canonicalize graph: %w", err)
	}
	return string(artifact.GraphKey(artifact.GraphID(canonical))), nil
}
