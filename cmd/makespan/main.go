// Command makespan estimates the expected makespan of a task graph under
// silent errors with every implemented method.
//
// Usage:
//
//	makespan -kind cholesky -k 8 -pfail 0.001
//	makespan -graph graph.json -lambda 0.05 -trials 100000
//
// The graph comes either from a generator (-kind cholesky|lu|qr with -k)
// or from a JSON file produced by daggen (-graph). The failure model comes
// from -lambda directly or from -pfail calibrated on the mean task weight,
// as in the paper. The tool prints the failure-free makespan, each
// estimator's value and runtime, and a Monte Carlo reference with its 95%
// confidence interval.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bounds"
	"repro/internal/dag"
	"repro/internal/experiments"
	"repro/internal/failure"
	"repro/internal/linalg"
	"repro/internal/montecarlo"
)

func main() {
	var (
		kind    = flag.String("kind", "cholesky", "generator: cholesky, lu or qr (ignored with -graph)")
		k       = flag.Int("k", 8, "tile count for the generator")
		path    = flag.String("graph", "", "JSON graph file (overrides -kind/-k)")
		pfail   = flag.Float64("pfail", 0.001, "failure probability of an average-weight task")
		lambda  = flag.Float64("lambda", 0, "error rate λ (overrides -pfail when > 0)")
		trials  = flag.Int("trials", montecarlo.DefaultTrials, "Monte Carlo trials (0 to skip MC)")
		seed    = flag.Uint64("seed", 42, "Monte Carlo seed")
		atoms   = flag.Int("dodin-atoms", 0, "Dodin distribution support cap (0 = default 64, -1 = unlimited)")
		methods = flag.String("methods", "all", "comma list of methods, 'paper' or 'all'")
		bnds    = flag.Bool("bounds", false, "print the analytic [Jensen, Kleindorfer] bracket")
	)
	flag.Parse()
	if err := run(*kind, *k, *path, *pfail, *lambda, *trials, *seed, *atoms, *methods, *bnds); err != nil {
		fmt.Fprintln(os.Stderr, "makespan:", err)
		os.Exit(1)
	}
}

func run(kind string, k int, path string, pfail, lambda float64, trials int, seed uint64, atoms int, methodSel string, bnds bool) error {
	g, err := loadGraph(kind, k, path)
	if err != nil {
		return err
	}
	model, err := buildModel(g, pfail, lambda)
	if err != nil {
		return err
	}
	d, err := dag.Makespan(g)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d tasks, %d edges, mean weight %.4g s\n", g.NumTasks(), g.NumEdges(), g.MeanWeight())
	fmt.Printf("model: λ = %.6g /s (pfail of mean task = %.3g, MTBF = %.4g s)\n",
		model.Lambda, model.PFail(g.MeanWeight()), model.MTBF())
	fmt.Printf("failure-free makespan d(G) = %.6g s\n", d)
	if bnds {
		lo, hi, err := bounds.Bracket(g, model, atoms)
		if err != nil {
			return fmt.Errorf("bounds: %w", err)
		}
		fmt.Printf("analytic bracket (2-state model): [%.6g, %.6g] s\n", lo, hi)
	}
	fmt.Println()

	var list []experiments.Method
	switch methodSel {
	case "paper":
		list = experiments.PaperMethods()
	case "all", "":
		list = experiments.AllMethods()
	default:
		for _, name := range splitComma(methodSel) {
			list = append(list, experiments.Method(name))
		}
	}
	fmt.Printf("%-14s %-16s %-12s\n", "method", "estimate (s)", "time")
	for _, m := range list {
		est, dt, err := experiments.Estimate(m, g, model, atoms)
		if err != nil {
			return fmt.Errorf("%s: %w", m, err)
		}
		fmt.Printf("%-14s %-16.8g %-12v\n", m, est, dt.Round(time.Microsecond))
	}
	if trials != 0 {
		// Negative trials flow through so the engine's config validation
		// reports them instead of being silently treated as "skip MC".
		t0 := time.Now()
		mc, err := montecarlo.Estimate(g, model, montecarlo.Config{Trials: trials, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %-16.8g %-12v ±%.3g (95%% CI, %d trials)\n",
			"Monte Carlo", mc.Mean, time.Since(t0).Round(time.Millisecond), mc.CI95, mc.Trials)
	}
	return nil
}

func loadGraph(kind string, k int, path string) (*dag.Graph, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dag.ReadJSON(f)
	}
	return linalg.Generate(linalg.Factorization(kind), k, linalg.KernelTimes{})
}

func buildModel(g *dag.Graph, pfail, lambda float64) (failure.Model, error) {
	if lambda > 0 {
		return failure.New(lambda)
	}
	return failure.FromPfail(pfail, g.MeanWeight())
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
