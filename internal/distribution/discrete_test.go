package distribution

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPoint(t *testing.T) {
	d := Point(3.5)
	if d.Len() != 1 || d.Mean() != 3.5 || d.Variance() != 0 {
		t.Fatalf("point: %v", d)
	}
	if d.CDF(3.4) != 0 || d.CDF(3.5) != 1 {
		t.Fatalf("point CDF wrong")
	}
}

func TestNewDiscreteValidation(t *testing.T) {
	if _, err := NewDiscrete([]float64{1}, []float64{0.5}); err == nil {
		t.Error("accepted non-normalized probs")
	}
	if _, err := NewDiscrete([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("accepted mismatched lengths")
	}
	if _, err := NewDiscrete(nil, nil); err == nil {
		t.Error("accepted empty support")
	}
	if _, err := NewDiscrete([]float64{math.NaN()}, []float64{1}); err == nil {
		t.Error("accepted NaN value")
	}
	if _, err := NewDiscrete([]float64{1}, []float64{-1}); err == nil {
		t.Error("accepted negative prob")
	}
	if _, err := NewDiscrete([]float64{1, 2}, []float64{1, 0}); err != nil {
		t.Error("rejected zero-prob atom that should be dropped")
	}
}

func TestNewDiscreteMergesAndSorts(t *testing.T) {
	d, err := NewDiscrete([]float64{3, 1, 3}, []float64{0.25, 0.5, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("len = %d want 2 (duplicates merged)", d.Len())
	}
	v0, p0 := d.Atom(0)
	v1, p1 := d.Atom(1)
	if v0 != 1 || p0 != 0.5 || v1 != 3 || !almostEq(p1, 0.5, 1e-12) {
		t.Fatalf("atoms: (%v,%v) (%v,%v)", v0, p0, v1, p1)
	}
}

func TestTwoState(t *testing.T) {
	d, err := TwoState(2, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("len = %d", d.Len())
	}
	if !almostEq(d.Mean(), 2*0.9+4*0.1, 1e-12) {
		t.Fatalf("mean = %v", d.Mean())
	}
	// Variance of {a wp p, 2a wp 1-p} is a² p (1-p).
	if !almostEq(d.Variance(), 4*0.9*0.1, 1e-12) {
		t.Fatalf("var = %v", d.Variance())
	}
	if d, _ := TwoState(2, 1); d.Len() != 1 || d.Mean() != 2 {
		t.Fatalf("p=1 degenerate wrong: %v", d)
	}
	if d, _ := TwoState(2, 0); d.Len() != 1 || d.Mean() != 4 {
		t.Fatalf("p=0 degenerate wrong: %v", d)
	}
	if d, _ := TwoState(0, 0.5); d.Len() != 1 {
		t.Fatalf("zero-weight task should be a point: %v", d)
	}
	if _, err := TwoState(1, 1.5); err == nil {
		t.Fatal("accepted p > 1")
	}
}

func TestAddExact(t *testing.T) {
	x, _ := TwoState(1, 0.5) // {1, 2} each 0.5
	y, _ := TwoState(10, 0.5)
	s := x.Add(y)
	// Support {11,12,21,22} each 0.25.
	if s.Len() != 4 {
		t.Fatalf("len = %d want 4", s.Len())
	}
	if !almostEq(s.Mean(), x.Mean()+y.Mean(), 1e-12) {
		t.Fatalf("mean not additive: %v", s.Mean())
	}
	if !almostEq(s.Variance(), x.Variance()+y.Variance(), 1e-12) {
		t.Fatalf("variance not additive: %v", s.Variance())
	}
}

func TestAddMergesCollisions(t *testing.T) {
	x, _ := TwoState(1, 0.5) // {1,2}
	s := x.Add(x)            // {2,3,3,4} -> {2,3,4} with probs {.25,.5,.25}
	if s.Len() != 3 {
		t.Fatalf("len = %d want 3", s.Len())
	}
	if v, p := s.Atom(1); v != 3 || !almostEq(p, 0.5, 1e-12) {
		t.Fatalf("middle atom (%v,%v)", v, p)
	}
}

func TestMaxIndExact(t *testing.T) {
	x, _ := TwoState(1, 0.5) // {1,2}
	y, _ := TwoState(1, 0.5)
	m := x.MaxInd(y)
	// max of two iid {1,2}: P(1)=0.25, P(2)=0.75.
	if m.Len() != 2 {
		t.Fatalf("len = %d", m.Len())
	}
	if v, p := m.Atom(0); v != 1 || !almostEq(p, 0.25, 1e-12) {
		t.Fatalf("atom0 (%v,%v)", v, p)
	}
	if v, p := m.Atom(1); v != 2 || !almostEq(p, 0.75, 1e-12) {
		t.Fatalf("atom1 (%v,%v)", v, p)
	}
}

func TestMaxIndWithPoint(t *testing.T) {
	x, _ := TwoState(4, 0.5) // {4,8}
	p := Point(6)
	m := x.MaxInd(p)
	// max: 6 wp 0.5 (when x=4), 8 wp 0.5.
	if m.Len() != 2 {
		t.Fatalf("len = %d: %v", m.Len(), m)
	}
	if v, q := m.Atom(0); v != 6 || !almostEq(q, 0.5, 1e-12) {
		t.Fatalf("atom0 (%v,%v)", v, q)
	}
}

// Property: Add and MaxInd agree with brute-force enumeration over random
// small discrete distributions.
func TestQuickOpsMatchEnumeration(t *testing.T) {
	gen := func(rng *rand.Rand) Discrete {
		n := 1 + rng.Intn(4)
		vals := make([]float64, n)
		prbs := make([]float64, n)
		var tot float64
		for i := range vals {
			vals[i] = float64(rng.Intn(20))
			prbs[i] = rng.Float64() + 0.01
			tot += prbs[i]
		}
		for i := range prbs {
			prbs[i] /= tot
		}
		d, err := NewDiscrete(vals, prbs)
		if err != nil {
			panic(err)
		}
		return d
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x, y := gen(rng), gen(rng)
		sum := x.Add(y)
		max := x.MaxInd(y)
		// Enumerate.
		sumMean, maxMean, sumM2, maxM2 := 0.0, 0.0, 0.0, 0.0
		for i := 0; i < x.Len(); i++ {
			for j := 0; j < y.Len(); j++ {
				xv, xp := x.Atom(i)
				yv, yp := y.Atom(j)
				p := xp * yp
				s := xv + yv
				m := math.Max(xv, yv)
				sumMean += p * s
				maxMean += p * m
				sumM2 += p * s * s
				maxM2 += p * m * m
			}
		}
		return almostEq(sum.Mean(), sumMean, 1e-9) &&
			almostEq(max.Mean(), maxMean, 1e-9) &&
			almostEq(sum.Variance(), sumM2-sumMean*sumMean, 1e-9) &&
			almostEq(max.Variance(), maxM2-maxMean*maxMean, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Add and MaxInd are commutative and associative (up to
// floating-point), and Point(0) / Point(-inf-ish) act as identities.
func TestQuickOperatorAlgebra(t *testing.T) {
	gen := func(rng *rand.Rand) Discrete {
		n := 1 + rng.Intn(3)
		vals := make([]float64, n)
		prbs := make([]float64, n)
		var tot float64
		for i := range vals {
			vals[i] = float64(rng.Intn(12))
			prbs[i] = rng.Float64() + 0.05
			tot += prbs[i]
		}
		for i := range prbs {
			prbs[i] /= tot
		}
		d, err := NewDiscrete(vals, prbs)
		if err != nil {
			panic(err)
		}
		return d
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x, y, z := gen(rng), gen(rng), gen(rng)
		// Commutativity (moments).
		if !almostEq(x.Add(y).Mean(), y.Add(x).Mean(), 1e-9) ||
			!almostEq(x.MaxInd(y).Mean(), y.MaxInd(x).Mean(), 1e-9) {
			return false
		}
		// Associativity (moments).
		if !almostEq(x.Add(y).Add(z).Variance(), x.Add(y.Add(z)).Variance(), 1e-9) ||
			!almostEq(x.MaxInd(y).MaxInd(z).Mean(), x.MaxInd(y.MaxInd(z)).Mean(), 1e-9) {
			return false
		}
		// Identity: adding Point(0) changes nothing.
		s := x.Add(Point(0))
		if !almostEq(s.Mean(), x.Mean(), 1e-12) || s.Len() != x.Len() {
			return false
		}
		// Max with a point below the minimum changes nothing.
		m := x.MaxInd(Point(x.Min() - 1))
		return almostEq(m.Mean(), x.Mean(), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: Quantile inverts CDF on the support.
func TestQuickQuantileCDFConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		vals := make([]float64, n)
		prbs := make([]float64, n)
		var tot float64
		for i := range vals {
			vals[i] = float64(i) + rng.Float64()
			prbs[i] = rng.Float64() + 0.01
			tot += prbs[i]
		}
		for i := range prbs {
			prbs[i] /= tot
		}
		d, err := NewDiscrete(vals, prbs)
		if err != nil {
			return false
		}
		for i := 0; i < d.Len(); i++ {
			v, _ := d.Atom(i)
			if d.Quantile(d.CDF(v)) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFAndQuantile(t *testing.T) {
	d, _ := NewDiscrete([]float64{1, 2, 4}, []float64{0.2, 0.3, 0.5})
	if d.CDF(0) != 0 || !almostEq(d.CDF(2), 0.5, 1e-12) || d.CDF(10) != 1 {
		t.Fatalf("CDF wrong: %v %v %v", d.CDF(0), d.CDF(2), d.CDF(10))
	}
	if d.Quantile(0.1) != 1 || d.Quantile(0.5) != 2 || d.Quantile(0.51) != 4 || d.Quantile(1) != 4 {
		t.Fatalf("quantiles wrong: %v %v %v", d.Quantile(0.1), d.Quantile(0.5), d.Quantile(1))
	}
	if d.Quantile(0) != 1 {
		t.Fatalf("Quantile(0) = %v", d.Quantile(0))
	}
	if d.Min() != 1 || d.Max() != 4 {
		t.Fatalf("bounds wrong")
	}
}

func TestShiftScale(t *testing.T) {
	d, _ := TwoState(3, 0.75)
	s := d.Shift(10)
	if !almostEq(s.Mean(), d.Mean()+10, 1e-12) || !almostEq(s.Variance(), d.Variance(), 1e-12) {
		t.Fatalf("shift moments wrong")
	}
	c := d.Scale(2)
	if !almostEq(c.Mean(), 2*d.Mean(), 1e-12) || !almostEq(c.Variance(), 4*d.Variance(), 1e-12) {
		t.Fatalf("scale moments wrong")
	}
	if z := d.Scale(0); z.Len() != 1 || z.Mean() != 0 {
		t.Fatalf("scale 0 wrong: %v", z)
	}
}

func TestRediscretizePreservesMean(t *testing.T) {
	// Build a distribution with many atoms by convolving 12 two-states.
	d, _ := TwoState(1, 0.7)
	acc := d
	for i := 0; i < 11; i++ {
		x, _ := TwoState(1+float64(i)*0.1, 0.7)
		acc = acc.Add(x)
	}
	if acc.Len() < 100 {
		t.Fatalf("expected large support, got %d", acc.Len())
	}
	for _, m := range []int{64, 16, 5, 1} {
		r := acc.Rediscretize(m)
		if r.Len() > m {
			t.Errorf("Rediscretize(%d) produced %d atoms", m, r.Len())
		}
		if !almostEq(r.Mean(), acc.Mean(), 1e-9) {
			t.Errorf("Rediscretize(%d) mean %v != %v", m, r.Mean(), acc.Mean())
		}
		if r.Variance() > acc.Variance()+1e-9 {
			t.Errorf("Rediscretize(%d) inflated variance", m)
		}
	}
	// No-op when it fits.
	small, _ := TwoState(1, 0.5)
	if got := small.Rediscretize(10); got.Len() != 2 {
		t.Errorf("no-op rediscretize changed the distribution")
	}
}

func TestSampleMatchesDistribution(t *testing.T) {
	d, _ := NewDiscrete([]float64{1, 2, 4}, []float64{0.2, 0.3, 0.5})
	rng := rand.New(rand.NewSource(99))
	counts := map[float64]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		counts[d.Sample(rng.Float64())]++
	}
	for i := 0; i < d.Len(); i++ {
		v, p := d.Atom(i)
		got := float64(counts[v]) / n
		if !almostEq(got, p, 0.01) {
			t.Errorf("P(%v) sampled %v want %v", v, got, p)
		}
	}
}

func TestStringForms(t *testing.T) {
	d, _ := TwoState(1, 0.5)
	if d.String() == "" {
		t.Error("empty String")
	}
	var z Discrete
	if z.String() != "Discrete{}" {
		t.Errorf("zero String = %q", z.String())
	}
	big := d
	for i := 0; i < 4; i++ {
		big = big.Add(d)
	}
	if big.String() == "" {
		t.Error("empty big String")
	}
}
