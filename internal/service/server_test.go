package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// normalizeTimes zeroes the wall-clock fields of a response body so
// byte-level comparisons only see deterministic content.
var timeFields = regexp.MustCompile(`"(mc_time_seconds|time_seconds|uptime_seconds)": [-+0-9.eE]+`)

func normalizeTimes(body string) string {
	return timeFields.ReplaceAllString(body, `"${1}": 0`)
}

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(Config{Workers: 2}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestSubmitAndGetGraph(t *testing.T) {
	ts := newTestServer(t)
	code, body := post(t, ts, "/v1/graphs", `{"kind":"lu","k":6}`)
	if code != http.StatusCreated {
		t.Fatalf("submit: %d %s", code, body)
	}
	var sub struct {
		ID      string  `json:"id"`
		Created bool    `json:"created"`
		Tasks   int     `json:"tasks"`
		D0      float64 `json:"failure_free_makespan"`
	}
	if err := json.Unmarshal([]byte(body), &sub); err != nil {
		t.Fatal(err)
	}
	if !sub.Created || !strings.HasPrefix(sub.ID, "sha256:") || sub.Tasks != 91 || sub.D0 <= 0 {
		t.Fatalf("submit response: %+v", sub)
	}
	// Resubmission dedups.
	code, body = post(t, ts, "/v1/graphs", `{"kind":"lu","k":6}`)
	if code != http.StatusOK || !strings.Contains(body, `"created": false`) {
		t.Fatalf("resubmit: %d %s", code, body)
	}
	// Lookup includes cache info.
	code, body = get(t, ts, "/v1/graphs/"+sub.ID)
	if code != http.StatusOK || !strings.Contains(body, `"cache"`) {
		t.Fatalf("get: %d %s", code, body)
	}
	if code, _ := get(t, ts, "/v1/graphs/sha256:nope"); code != http.StatusNotFound {
		t.Fatalf("bogus id: %d", code)
	}
}

func TestSubmitGraphValidation(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		body string
		want int
	}{
		{`{`, http.StatusBadRequest},
		{`{"kind":"nope","k":4}`, http.StatusBadRequest},
		{`{"kind":"lu"}`, http.StatusBadRequest},                  // k missing
		{`{}`, http.StatusBadRequest},                             // nothing set
		{`{"kind":"lu","k":4,"graph":{}}`, http.StatusBadRequest}, // both set
		{`{"graph_id":"sha256:x"}`, http.StatusBadRequest},        // id on submit
		{`{"bogus_field":1}`, http.StatusBadRequest},
		{`{"graph":{"tasks":[{"name":"a","weight":1}],"edges":[[0,5]]}}`, http.StatusBadRequest}, // bad edge
		// A cycle passes unmarshal and is first caught by Freeze inside
		// the registry — still the client's fault, still a 400.
		{`{"graph":{"tasks":[{"name":"a","weight":1},{"name":"b","weight":1}],"edges":[[0,1],[1,0]]}}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if code, body := post(t, ts, "/v1/graphs", c.body); code != c.want {
			t.Errorf("%s -> %d (%s), want %d", c.body, code, body, c.want)
		}
	}
	// A valid inline graph is accepted and estimable.
	code, body := post(t, ts, "/v1/graphs", `{"graph":{"tasks":[{"name":"a","weight":1},{"name":"b","weight":2}],"edges":[[0,1]]}}`)
	if code != http.StatusCreated {
		t.Fatalf("inline graph: %d %s", code, body)
	}
}

func TestEstimateHandler(t *testing.T) {
	ts := newTestServer(t)
	req := `{"kind":"lu","k":6,"pfail":0.001,"methods":"paper","trials":2000,"seed":7,"bounds":true,"quantiles":[0.5,0.95]}`
	code, body := post(t, ts, "/v1/estimate", req)
	if code != http.StatusOK {
		t.Fatalf("estimate: %d %s", code, body)
	}
	var doc struct {
		Graph struct {
			Tasks int `json:"tasks"`
		} `json:"graph"`
		Bracket *struct{ Lower, Upper float64 } `json:"bracket"`
		Methods []struct {
			Method   string  `json:"method"`
			Estimate float64 `json:"estimate"`
		} `json:"methods"`
		MonteCarlo *struct {
			Mean      float64                      `json:"mean"`
			Trials    int                          `json:"trials"`
			Quantiles []struct{ Q, Value float64 } `json:"quantiles"`
		} `json:"monte_carlo"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Graph.Tasks != 91 || doc.Bracket == nil || len(doc.Methods) != 3 ||
		doc.MonteCarlo == nil || doc.MonteCarlo.Trials != 2000 || len(doc.MonteCarlo.Quantiles) != 2 {
		t.Fatalf("estimate shape: %s", body)
	}
	if doc.Methods[0].Method != "Dodin" {
		t.Fatalf("method order: %s", body)
	}

	// Warm repeat: byte-identical after time normalization.
	_, warm := post(t, ts, "/v1/estimate", req)
	if normalizeTimes(warm) != normalizeTimes(body) {
		t.Fatal("warm response differs from cold")
	}

	// By graph_id.
	_, sub := post(t, ts, "/v1/graphs", `{"kind":"lu","k":6}`)
	var s struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal([]byte(sub), &s); err != nil {
		t.Fatal(err)
	}
	_, byID := post(t, ts, "/v1/estimate",
		fmt.Sprintf(`{"graph_id":%q,"pfail":0.001,"methods":"paper","trials":2000,"seed":7,"bounds":true,"quantiles":[0.5,0.95]}`, s.ID))
	if normalizeTimes(byID) != normalizeTimes(body) {
		t.Fatal("graph_id estimate differs from generator estimate")
	}
}

func TestEstimateValidation(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		body string
		want int
	}{
		{`{"kind":"lu","k":6,"pfail":2}`, http.StatusBadRequest},
		{`{"kind":"lu","k":6,"methods":"bogus"}`, http.StatusBadRequest},
		{`{"kind":"lu","k":6,"trials":-5}`, http.StatusBadRequest},
		{`{"kind":"lu","k":6,"quantiles":[0.5]}`, http.StatusBadRequest},              // no trials
		{`{"kind":"lu","k":6,"trials":100,"quantiles":[1.5]}`, http.StatusBadRequest}, // bad q
		{`{"graph_id":"sha256:gone","trials":100}`, http.StatusNotFound},
	}
	for _, c := range cases {
		if code, body := post(t, ts, "/v1/estimate", c.body); code != c.want {
			t.Errorf("%s -> %d (%s), want %d", c.body, code, body, c.want)
		}
	}
	// MC-less estimate is fine.
	if code, body := post(t, ts, "/v1/estimate", `{"kind":"lu","k":6}`); code != http.StatusOK ||
		strings.Contains(body, "monte_carlo") {
		t.Fatalf("MC-less estimate: %d %s", code, body)
	}
}

func TestSweepHandler(t *testing.T) {
	ts := newTestServer(t)
	code, body := post(t, ts, "/v1/sweep", `{"kind":"lu","k":6,"pfails":[0.1,0.01],"trials":1000,"seed":3}`)
	if code != http.StatusOK {
		t.Fatalf("sweep: %d %s", code, body)
	}
	var doc struct {
		Factorization string `json:"factorization"`
		K             int    `json:"k"`
		Points        []struct {
			PFail   float64                    `json:"pfail"`
			Methods map[string]json.RawMessage `json:"methods"`
		} `json:"points"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Factorization != "lu" || doc.K != 6 || len(doc.Points) != 2 || len(doc.Points[0].Methods) != 3 {
		t.Fatalf("sweep shape: %s", body)
	}
	// Warm repeat: identical modulo times.
	_, warm := post(t, ts, "/v1/sweep", `{"kind":"lu","k":6,"pfails":[0.1,0.01],"trials":1000,"seed":3}`)
	if normalizeTimes(warm) != normalizeTimes(body) {
		t.Fatal("warm sweep differs from cold")
	}
	if code, _ := post(t, ts, "/v1/sweep", `{"kind":"lu","k":6,"pfails":[2],"trials":100}`); code != http.StatusBadRequest {
		t.Fatalf("bad pfail: %d", code)
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	code, body := get(t, ts, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	var h struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Workers != 2 {
		t.Fatalf("healthz body: %s", body)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := newTestServer(t)
	if code, _ := get(t, ts, "/v1/estimate"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/estimate: %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: %d", resp.StatusCode)
	}
}

// Concurrent clients hammering the same and different requests must each
// read exactly the response a lone client would: warm state is shared
// read-only, compute is gated, and every engine is worker-count
// invariant.
func TestConcurrentClientsDeterministic(t *testing.T) {
	ts := newTestServer(t)
	reqs := []string{
		`{"kind":"lu","k":6,"pfail":0.001,"methods":"paper","trials":2000,"seed":7,"quantiles":[0.5]}`,
		`{"kind":"lu","k":6,"pfail":0.01,"methods":"all","trials":1000,"seed":3,"bounds":true}`,
		`{"kind":"cholesky","k":5,"pfail":0.01,"methods":"paper","trials":1000,"seed":9}`,
	}
	// Reference responses, computed serially.
	want := make([]string, len(reqs))
	for i, r := range reqs {
		code, body := post(t, ts, "/v1/estimate", r)
		if code != http.StatusOK {
			t.Fatalf("ref %d: %d %s", i, code, body)
		}
		want[i] = normalizeTimes(body)
	}
	const perReq = 6
	var wg sync.WaitGroup
	errs := make(chan string, len(reqs)*perReq)
	for i, r := range reqs {
		for j := 0; j < perReq; j++ {
			wg.Add(1)
			go func(i int, r string) {
				defer wg.Done()
				resp, err := http.Post(ts.URL+"/v1/estimate", "application/json", strings.NewReader(r))
				if err != nil {
					errs <- fmt.Sprintf("req %d: %v", i, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- fmt.Sprintf("req %d: %v", i, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("req %d: status %d", i, resp.StatusCode)
					return
				}
				if normalizeTimes(string(body)) != want[i] {
					errs <- fmt.Sprintf("req %d: concurrent response diverged", i)
				}
			}(i, r)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
