#!/usr/bin/env sh
# apidoc_check.sh — execute every `sh` code block of docs/API.md against
# a live makespand and require (a) exit status 0 and (b) valid JSON on
# stdout, so the documented examples cannot drift from the service. Runs
# in CI right after scripts/e2e_smoke.sh (the e2e-smoke job).
#
# Usage: scripts/apidoc_check.sh [port]   (default 17421)
set -eu

cd "$(dirname "$0")/.."
port="${1:-17421}"
doc="docs/API.md"
bin="$(mktemp -d)"
work="$(mktemp -d)"
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$bin" "$work"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$bin/" ./cmd/makespand

echo "== start makespand on 127.0.0.1:$port"
"$bin/makespand" -addr "127.0.0.1:$port" -workers 2 2>"$work/makespand.log" &
pid=$!
# Readiness: poll with a hard deadline, but fail fast — with the log —
# the moment the daemon process dies, instead of sitting out the budget.
i=0
until curl -fsS --max-time 2 "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; do
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "makespand died during startup; log:" >&2
        cat "$work/makespand.log" >&2
        exit 1
    fi
    i=$((i + 1))
    if [ "$i" -ge 300 ]; then
        echo "makespand did not come up within 30s; log:" >&2
        cat "$work/makespand.log" >&2
        exit 1
    fi
    sleep 0.1
done

# Split the doc into one file per ```sh fenced block.
awk -v dir="$work" '
/^```sh$/ { inblock = 1; n++; file = dir "/block" sprintf("%03d", n) ".sh"; next }
/^```$/   { inblock = 0; next }
inblock   { print > file }
' "$doc"

count=0
failures=0
for block in "$work"/block*.sh; do
    [ -e "$block" ] || continue
    count=$((count + 1))
    name="$(basename "$block")"
    echo "== $doc $name"
    sed -n 'p' "$block"
    if ! BASE="http://127.0.0.1:$port" sh -eu "$block" >"$work/out.json" 2>"$work/err.txt"; then
        echo "FAIL $name: example exited non-zero" >&2
        cat "$work/err.txt" >&2
        failures=$((failures + 1))
        continue
    fi
    if ! jq -e . "$work/out.json" >/dev/null 2>&1; then
        echo "FAIL $name: example did not print valid JSON:" >&2
        cat "$work/out.json" >&2
        failures=$((failures + 1))
    fi
done

if [ "$count" -eq 0 ]; then
    echo "apidoc check: no sh blocks found in $doc (doc restructured?)" >&2
    exit 1
fi
if [ "$failures" -gt 0 ]; then
    echo "apidoc check: $failures of $count documented examples failed" >&2
    exit 1
fi
echo "apidoc check: all $count documented examples executed against the live service"
