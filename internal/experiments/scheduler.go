// The experiment-cell scheduler: every (data point × estimator) pair —
// including the Monte Carlo ground truth — is an independent cell run on
// a bounded worker pool. Results land in index-addressed slots and
// progress lines are gated into point order, so the output of every Run*
// function is byte-identical for any worker count; only the wall clock
// changes. Per-point state (generated graph, frozen CSR form, failure
// model, recorded Dodin plan) is built once and shared read-only by the
// point's cells.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/artifact"
	"repro/internal/dag"
	"repro/internal/failure"
	"repro/internal/linalg"
	"repro/internal/montecarlo"
	"repro/internal/spgraph"
)

// pointCtx is the shared read-only state of one data point.
type pointCtx struct {
	g      *dag.Graph
	frozen *dag.Frozen
	model  failure.Model
	k      int
	pfail  float64
	seed   uint64
	// plan, when non-nil, replays the recorded Dodin reduction schedule
	// instead of re-running the reduction (pfail sweeps on one graph).
	plan *spgraph.Plan
	// st/ga, when non-nil, resolve the point's Monte Carlo estimator
	// through the artifact store (warm per (graph, λ) across sweep
	// requests) instead of compiling it cold; the run config still
	// comes from this point via WithConfig, which is O(1) and
	// bit-identical to cold construction.
	st *artifact.Store
	ga *artifact.Graph
}

// cellOut is one cell's result slot.
type cellOut struct {
	est float64
	dt  time.Duration
}

// newPointCtx generates the point's graph, freezes it and derives the
// failure model. A non-nil store dedupes the freeze by content address
// (the paper's figure suite revisits each (fact, k) graph at three
// pfails); the point's cells otherwise stay cold — figure and table
// timings must measure full method runs.
func newPointCtx(rctx context.Context, st *artifact.Store, fact linalg.Factorization, k int, pfail float64, seed uint64) (*pointCtx, error) {
	g, err := linalg.Generate(fact, k, linalg.KernelTimes{})
	if err != nil {
		return nil, err
	}
	var frozen *dag.Frozen
	if st != nil {
		ga, _, err := st.GraphContext(rctx, g)
		if err != nil {
			return nil, err
		}
		g, frozen = ga.G, ga.Frozen
	} else {
		frozen, err = dag.Freeze(g)
		if err != nil {
			return nil, err
		}
	}
	model, err := failure.FromPfail(pfail, g.MeanWeight())
	if err != nil {
		return nil, err
	}
	return &pointCtx{g: g, frozen: frozen, model: model, k: k, pfail: pfail, seed: seed}, nil
}

// budget resolves the total CPU budget of a run.
func (o Options) budget() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runPoints evaluates every (point × method) cell plus one Monte Carlo
// cell per point on a pool of cell workers, budgeting the Monte Carlo
// worker count against the cell concurrency so the run uses ~budget
// goroutines in total. progress, when non-nil, is called once per point
// in point order as soon as the point and all its predecessors completed.
func runPoints(ctxs []*pointCtx, opts Options, progress func(i int, p Point)) ([]Point, error) {
	rctx := opts.ctx()
	methods := opts.Methods
	nm := len(methods)
	cellsPerPoint := nm + 1 // cell 0: Monte Carlo; cell 1+m: methods[m]
	nCells := len(ctxs) * cellsPerPoint
	budget := opts.budget()
	cellWorkers := budget
	if cellWorkers > nCells {
		cellWorkers = nCells
	}
	if cellWorkers < 1 {
		cellWorkers = 1
	}
	// Monte Carlo dominates every run, and its chunked engine already
	// scales to all cores — so MC cells are serialized by a token and run
	// with the full budget, while the cheap single-threaded method cells
	// are enumerated first and soak up the remaining pool slots. This
	// keeps a lone MC cell (Table I, the tail of a figure) at full width
	// instead of starving it on a static budget/cellWorkers split; the
	// only oversubscription is the transient overlap of method cells with
	// the first MC cell.
	mcWorkers := budget

	mcRes := make([]montecarlo.Result, len(ctxs))
	mcTime := make([]time.Duration, len(ctxs))
	ests := make([]cellOut, len(ctxs)*nm)
	errs := make([]error, nCells)

	points := make([]Point, len(ctxs))
	assemble := func(i int) Point {
		ctx := ctxs[i]
		p := Point{
			K:        ctx.k,
			Tasks:    ctx.g.NumTasks(),
			MCMean:   mcRes[i].Mean,
			MCCI95:   mcRes[i].CI95,
			MCTrials: mcRes[i].Trials,
			MCTime:   mcTime[i],
			RelErr:   make(map[Method]float64, nm),
			Estimate: make(map[Method]float64, nm),
			Time:     make(map[Method]time.Duration, nm),
		}
		for m, method := range methods {
			out := ests[i*nm+m]
			p.Estimate[method] = out.est
			p.Time[method] = out.dt
			p.RelErr[method] = (out.est - p.MCMean) / p.MCMean
		}
		return p
	}

	// In-order progress gate.
	var gateMu sync.Mutex
	gateNext := 0
	gateDone := make([]bool, len(ctxs))
	remaining := make([]atomic.Int32, len(ctxs))
	for i := range remaining {
		remaining[i].Store(int32(cellsPerPoint))
	}
	var failed atomic.Bool
	cellDone := func(point int) {
		if remaining[point].Add(-1) != 0 {
			return
		}
		gateMu.Lock()
		defer gateMu.Unlock()
		gateDone[point] = true
		for gateNext < len(ctxs) && gateDone[gateNext] {
			i := gateNext
			gateNext++
			if failed.Load() {
				continue // partial data; the run is returning an error
			}
			points[i] = assemble(i)
			if progress != nil {
				progress(i, points[i])
			}
		}
	}

	runCell := func(c int) {
		point, cell := c/cellsPerPoint, c%cellsPerPoint
		ctx := ctxs[point]
		if cell == 0 {
			t0 := time.Now()
			cfg := montecarlo.Config{
				Trials:         opts.Trials,
				Seed:           ctx.seed,
				Workers:        mcWorkers,
				Tolerance:      opts.Tolerance,
				TargetQuantile: opts.TargetQuantile,
				Confidence:     opts.Confidence,
				MaxTrials:      opts.MaxTrials,
			}
			var e *montecarlo.Estimator
			var err error
			if ctx.ga != nil {
				// Warm: resolve the compiled estimator (per-task
				// probabilities, sampler tables) through the store and
				// rebind the run config — bit-identical to cold.
				e, err = ctx.st.EstimatorContext(rctx, ctx.ga, ctx.model, montecarlo.FullReexecution)
				if err == nil {
					e, err = e.WithConfig(cfg)
				}
			} else {
				e, err = montecarlo.NewEstimatorFrozen(ctx.frozen, ctx.model, cfg)
			}
			if err == nil {
				mcRes[point], err = e.RunContext(rctx)
			}
			mcTime[point] = time.Since(t0)
			errs[c] = err
			return
		}
		method := methods[cell-1]
		switch {
		case method == MethodDodin && ctx.plan != nil:
			t0 := time.Now()
			r, err := ctx.plan.Run(ctx.model)
			ests[point*nm+cell-1] = cellOut{est: r.Estimate, dt: time.Since(t0)}
			errs[c] = err
		default:
			est, dt, err := Estimate(method, ctx.g, ctx.model, opts.DodinMaxAtoms)
			ests[point*nm+cell-1] = cellOut{est: est, dt: dt}
			errs[c] = err
		}
	}

	// Method cells first, Monte Carlo cells last (they hold the token and
	// the full worker budget while they run).
	order := make([]int, 0, nCells)
	for c := 0; c < nCells; c++ {
		if c%cellsPerPoint != 0 {
			order = append(order, c)
		}
	}
	for p := range ctxs {
		order = append(order, p*cellsPerPoint)
	}
	mcToken := make(chan struct{}, 1)
	mcToken <- struct{}{}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < cellWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= nCells {
					return
				}
				c := order[i]
				// After a failure, remaining cells only run the gate
				// bookkeeping so the pool drains quickly. A dead run
				// context counts as a failure: the cell records the
				// cancellation instead of starting work.
				if !failed.Load() {
					if err := rctx.Err(); err != nil {
						errs[c] = err
						failed.Store(true)
					} else if c%cellsPerPoint == 0 {
						<-mcToken
						runCell(c)
						mcToken <- struct{}{}
					} else {
						runCell(c)
					}
					if errs[c] != nil {
						failed.Store(true)
					}
				}
				cellDone(c / cellsPerPoint)
			}
		}()
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			point, cell := c/cellsPerPoint, c%cellsPerPoint
			what := "Monte Carlo"
			if cell > 0 {
				what = string(methods[cell-1])
			}
			return nil, fmt.Errorf("%s (k=%d, pfail=%g): %w", what, ctxs[point].k, ctxs[point].pfail, err)
		}
	}
	return points, nil
}
