#!/usr/bin/env sh
# load.sh — the tail-latency load profile behind BENCH_load.json: build
# the real daemon and cmd/loadgen, start makespand the way production
# runs it (access log on, no admission cap — the gate demands zero
# sheds), drive a fixed-RPS open-loop profile of warm estimates and
# write the latency report plus a final /metrics scrape into the output
# directory. CI's load job runs this into a fresh directory and gates it
# with `go run ./scripts/benchcheck -load-only` against the committed
# BENCH_load.json; refresh the committed baseline by running it at the
# repo root: scripts/load.sh .
#
# With -cluster as the first argument it instead measures the cluster
# profile behind BENCH_cluster.json: three makespand replicas behind
# makespan-lb, loadgen at the front driving several distinct graphs
# round-robin (one shard per graph), each replica's cache hit/miss
# totals scraped from /healthz afterwards and merged into the report as
# the fleet warm-cache hit ratio. CI gates the result with
# `go run ./scripts/benchcheck -cluster-only` (clean run, fleet-ratio
# floor, p99 against the committed single-replica BENCH_load.json);
# refresh the committed BENCH_cluster.json with: scripts/load.sh -cluster .
#
# Usage: scripts/load.sh [-cluster] [outdir] [port]
#        (default out-load, 17421; cluster uses port..port+3)
set -eu

cd "$(dirname "$0")/.."
cluster=0
if [ "${1:-}" = "-cluster" ]; then
    cluster=1
    shift
fi
out="${1:-out-load}"
port="${2:-17421}"
base="http://127.0.0.1:$port"
rps="${LOADGEN_RPS:-40}"
duration="${LOADGEN_DURATION:-8s}"
mkdir -p "$out"
bin="$(mktemp -d)"
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$bin"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$bin/" ./cmd/makespand ./cmd/loadgen ./cmd/makespan-lb

if [ "$cluster" -eq 0 ]; then
    echo "== start makespand on $base"
    "$bin/makespand" -addr "127.0.0.1:$port" -workers 2 2>"$out/makespand.log" &
    pids="$!"

    echo "== drive $rps rps for $duration"
    # loadgen waits for /healthz itself, warms the caches, then launches
    # the measured open-loop window and scrapes /metrics on its way out.
    "$bin/loadgen" -base "$base" -rps "$rps" -duration "$duration" \
        -out "$out/BENCH_load.json" -metrics-out "$out/metrics.prom"

    echo "== report"
    jq '{requests, ok, shed, errors, achieved_rps, latency_ms}' "$out/BENCH_load.json"
    exit 0
fi

echo "== start 3 makespand replicas on ports $((port + 1))..$((port + 3))"
replicas=""
for i in 1 2 3; do
    rport=$((port + i))
    "$bin/makespand" -addr "127.0.0.1:$rport" -workers 2 2>"$out/replica$i.log" &
    pids="$pids $!"
    replicas="$replicas,http://127.0.0.1:$rport"
done
replicas="${replicas#,}"

echo "== start makespan-lb on $base"
"$bin/makespan-lb" -addr "127.0.0.1:$port" -replicas "$replicas" \
    -check-interval 500ms 2>"$out/makespan-lb.log" &
pids="$pids $!"

# One graph per shard: distinct (kind, k) pairs hash to different ring
# positions, so the fleet splits the key space instead of one replica
# absorbing everything.
cat >"$bin/bodies.txt" <<'EOF'
{"kind":"lu","k":8,"methods":"First Order","trials":256,"seed":7}
{"kind":"qr","k":8,"methods":"First Order","trials":256,"seed":7}
{"kind":"cholesky","k":8,"methods":"First Order","trials":256,"seed":7}
{"kind":"lu","k":10,"methods":"First Order","trials":256,"seed":7}
EOF

echo "== drive $rps rps for $duration through the lb"
"$bin/loadgen" -base "$base" -rps "$rps" -duration "$duration" \
    -bodies "$bin/bodies.txt" \
    -out "$out/loadgen.json" -metrics-out "$out/metrics_lb.prom"

# Fleet cache stats: every replica's /healthz totals, summed. The warm
# hit ratio is the cluster tentpole's cache-locality claim in one
# number — with consistent-hash routing each shard stays on one replica
# and nearly all measured requests are warm hits.
fleet="$out/fleet.json"
for r in $(echo "$replicas" | tr ',' ' '); do
    curl -fsS "$r/healthz"
done | jq -s '{
    hits: (map(.cache_hits) | add),
    misses: (map(.cache_misses) | add)
} | . + {warm_hit_ratio: (.hits / (.hits + .misses))}' >"$fleet"

jq --slurpfile fleet "$fleet" \
    '. + {cluster: {replicas: 3, fleet_cache: $fleet[0]}}' \
    "$out/loadgen.json" >"$out/BENCH_cluster.json"
rm "$out/loadgen.json"

echo "== report"
jq '{requests, ok, shed, errors, achieved_rps, latency_ms, cluster}' "$out/BENCH_cluster.json"
