package dag

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMakespanChain(t *testing.T) {
	g := Chain(4, 1, 2, 3, 4)
	d, err := Makespan(g)
	if err != nil {
		t.Fatal(err)
	}
	if d != 10 {
		t.Fatalf("chain makespan = %v want 10", d)
	}
}

func TestMakespanDiamond(t *testing.T) {
	g := Diamond(1, 5, 3, 2)
	d, err := Makespan(g)
	if err != nil {
		t.Fatal(err)
	}
	if d != 8 { // 1 + max(5,3) + 2
		t.Fatalf("diamond makespan = %v want 8", d)
	}
}

func TestMakespanEmptyAndSingle(t *testing.T) {
	if d, err := Makespan(New(0)); err != nil || d != 0 {
		t.Fatalf("empty: %v %v", d, err)
	}
	g := New(1)
	g.MustAddTask("solo", 3.5)
	if d, _ := Makespan(g); d != 3.5 {
		t.Fatalf("single = %v", d)
	}
}

func TestMakespanWithOverride(t *testing.T) {
	g := Diamond(1, 5, 3, 2)
	pe, err := NewPathEvaluator(g)
	if err != nil {
		t.Fatal(err)
	}
	w := g.Weights()
	w[2] = 50 // boost the other branch
	if d := pe.MakespanWith(w); d != 53 {
		t.Fatalf("override makespan = %v want 53", d)
	}
	// Original untouched.
	if d := pe.Makespan(); d != 8 {
		t.Fatalf("original makespan = %v want 8", d)
	}
}

func TestMakespanWithPanicsOnBadLength(t *testing.T) {
	g := Chain(3)
	pe, _ := NewPathEvaluator(g)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	pe.MakespanWith([]float64{1})
}

func TestHeadsTails(t *testing.T) {
	g := Diamond(1, 5, 3, 2)
	pe, _ := NewPathEvaluator(g)
	heads := pe.Heads()
	tails := pe.Tails()
	wantHeads := []float64{1, 6, 4, 8}
	wantTails := []float64{8, 7, 5, 2}
	for i := range wantHeads {
		if heads[i] != wantHeads[i] {
			t.Errorf("head(%d) = %v want %v", i, heads[i], wantHeads[i])
		}
		if tails[i] != wantTails[i] {
			t.Errorf("tail(%d) = %v want %v", i, tails[i], wantTails[i])
		}
	}
}

// Property: for every task, head(i)+tail(i)-a_i <= d(G), with equality for
// at least one task (a critical one).
func TestQuickHeadTailInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := LayeredRandom(RandomConfig{Tasks: 25, EdgeProb: 0.4, MaxLayerWidth: 5}, rng)
		if err != nil {
			return false
		}
		pe, err := NewPathEvaluator(g)
		if err != nil {
			return false
		}
		d := pe.Makespan()
		heads := pe.Heads()
		tails := pe.Tails()
		hitsD := false
		for i := 0; i < g.NumTasks(); i++ {
			through := heads[i] + tails[i] - g.Weight(i)
			if through > d+1e-9 {
				return false
			}
			if math.Abs(through-d) < 1e-9 {
				hitsD = true
			}
		}
		return hitsD
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCriticalPath(t *testing.T) {
	g := Diamond(1, 5, 3, 2)
	pe, _ := NewPathEvaluator(g)
	path, d := pe.CriticalPath()
	if d != 8 {
		t.Fatalf("critical length = %v", d)
	}
	want := []int{0, 1, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v want %v", path, want)
		}
	}
}

func TestCriticalPathIsAPath(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		g, _ := LayeredRandom(RandomConfig{Tasks: 30, EdgeProb: 0.3, MaxLayerWidth: 6}, rng)
		pe, _ := NewPathEvaluator(g)
		path, d := pe.CriticalPath()
		if len(path) == 0 {
			t.Fatal("empty critical path")
		}
		sum := 0.0
		for i, v := range path {
			sum += g.Weight(v)
			if i > 0 && !g.HasEdge(path[i-1], v) {
				t.Fatalf("critical path %v has a non-edge at %d", path, i)
			}
		}
		if math.Abs(sum-d) > 1e-9 {
			t.Fatalf("path length %v != makespan %v", sum, d)
		}
	}
}

func TestLongestPathBetween(t *testing.T) {
	g := Diamond(1, 5, 3, 2)
	got, err := LongestPathBetween(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 8 {
		t.Fatalf("longest 0->3 = %v want 8", got)
	}
	if _, err := LongestPathBetween(g, 1, 2); !errors.Is(err, ErrNoPath) {
		t.Fatalf("want ErrNoPath, got %v", err)
	}
	if _, err := LongestPathBetween(g, -1, 2); !errors.Is(err, ErrBadTask) {
		t.Fatalf("want ErrBadTask, got %v", err)
	}
	if got, _ := LongestPathBetween(g, 1, 1); got != 5 {
		t.Fatalf("self longest = %v want 5", got)
	}
}

func TestTopLevelsBottomLevels(t *testing.T) {
	g := Diamond(1, 5, 3, 2)
	tl, err := TopLevels(g)
	if err != nil {
		t.Fatal(err)
	}
	bl, err := BottomLevels(g)
	if err != nil {
		t.Fatal(err)
	}
	wantTL := []float64{0, 1, 1, 6}
	wantBL := []float64{7, 2, 2, 0}
	for i := range wantTL {
		if tl[i] != wantTL[i] {
			t.Errorf("tl(%d)=%v want %v", i, tl[i], wantTL[i])
		}
		if bl[i] != wantBL[i] {
			t.Errorf("bl(%d)=%v want %v", i, bl[i], wantBL[i])
		}
	}
}

// Property: tl(i) + a_i + bl(i) == head(i) + tail(i) - a_i (two ways of
// computing the longest path through i).
func TestQuickThroughConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := ErdosRenyiDAG(RandomConfig{Tasks: 20, EdgeProb: 0.25}, rng)
		if err != nil {
			return false
		}
		pe, _ := NewPathEvaluator(g)
		heads, tails := pe.Heads(), pe.Tails()
		through, err := CriticalPathLengths(g)
		if err != nil {
			return false
		}
		for i := 0; i < g.NumTasks(); i++ {
			alt := heads[i] + tails[i] - g.Weight(i)
			if math.Abs(alt-through[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNewPathEvaluatorRejectsCycle(t *testing.T) {
	g := New(2)
	a := g.MustAddTask("a", 1)
	b := g.MustAddTask("b", 1)
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, a)
	if _, err := NewPathEvaluator(g); !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v want ErrCycle", err)
	}
}
