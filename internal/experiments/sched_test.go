package experiments

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/linalg"
	"repro/internal/schedmc"
)

func schedTestSpec() SchedSpec {
	return SchedSpec{
		Fact:     linalg.FactLU,
		K:        5,
		Procs:    []int{2, 4},
		PFails:   []float64{0.01, 0.001},
		Policies: schedmc.AllPolicies(),
	}
}

// Sweep estimates must not depend on the worker budget: cells carry
// fixed derived seeds and the Monte Carlo engine is worker-invariant.
func TestSchedSweepWorkerInvariance(t *testing.T) {
	var ref *SchedResult
	for _, workers := range []int{1, 3, 8} {
		res, err := RunSchedSweep(schedTestSpec(), Options{Trials: 2000, Seed: 7, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		// Timings vary run to run; compare everything else.
		for i := range res.Points {
			res.Points[i].FreezeTime = 0
			res.Points[i].MCTime = 0
		}
		if ref == nil {
			ref = &res
			continue
		}
		for i := range res.Points {
			if res.Points[i] != ref.Points[i] {
				t.Fatalf("workers=%d cell %d diverged:\n%+v\n%+v", workers, i, res.Points[i], ref.Points[i])
			}
		}
	}
	if len(ref.Points) != 2*2*2 {
		t.Fatalf("want 8 cells, got %d", len(ref.Points))
	}
	// Cells are pfail-major, then procs, then policy.
	p := ref.Points
	if p[0].PFail != 0.01 || p[0].Procs != 2 || p[0].Policy != schedmc.PolicyCP {
		t.Fatalf("unexpected first cell %+v", p[0])
	}
	if p[1].Policy != schedmc.PolicyFirstOrder || p[2].Procs != 4 || p[4].PFail != 0.001 {
		t.Fatalf("unexpected cell order: %+v", p[:5])
	}
}

func TestSchedSweepValidation(t *testing.T) {
	spec := schedTestSpec()
	spec.Procs = []int{0}
	if _, err := RunSchedSweep(spec, Options{Trials: 10}); err == nil {
		t.Error("procs=0 accepted")
	}
	spec = schedTestSpec()
	spec.PFails = []float64{1.5}
	if _, err := RunSchedSweep(spec, Options{Trials: 10}); err == nil {
		t.Error("pfail=1.5 accepted")
	}
	spec = schedTestSpec()
	spec.Procs = nil
	if _, err := RunSchedSweep(spec, Options{Trials: 10}); err == nil {
		t.Error("empty procs accepted")
	}
	if _, err := RunSchedSweep(schedTestSpec(), Options{Trials: 10, Workers: -1}); err == nil {
		t.Error("negative workers accepted")
	}
}

// Progress lines arrive in cell order regardless of concurrency, and the
// text table renders one row per cell.
func TestSchedSweepProgressAndTable(t *testing.T) {
	var lines []string
	opts := Options{Trials: 500, Seed: 3, Workers: 4, Progress: func(s string) { lines = append(lines, s) }}
	res, err := RunSchedSweep(schedTestSpec(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(res.Points) {
		t.Fatalf("%d progress lines for %d cells", len(lines), len(res.Points))
	}
	for i, p := range res.Points {
		want := fmt.Sprintf("procs=%d %s done", p.Procs, p.Policy)
		if !strings.Contains(lines[i], want) {
			t.Fatalf("progress line %d %q does not contain %q", i, lines[i], want)
		}
	}
	var b strings.Builder
	if err := WriteSchedSweep(&b, res); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(b.String(), "\n"); got != len(res.Points)+2 {
		t.Fatalf("table has %d lines, want %d", got, len(res.Points)+2)
	}
	// Failure overhead is positive and the larger pfail dominates.
	for _, p := range res.Points {
		if p.Overhead <= 0 {
			t.Fatalf("cell %+v: non-positive failure overhead", p)
		}
	}
}
