package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs seen")
	g := r.Gauge("queue_depth", "queued jobs")
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Add(-3)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative Counter.Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestVecChildrenAreStable(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("http_requests_total", "requests", "route", "code")
	a := v.With("/v1/estimate", "200")
	b := v.With("/v1/estimate", "200")
	if a != b {
		t.Fatal("same label values returned distinct children")
	}
	a.Inc()
	if v.With("/v1/estimate", "200").Value() != 1 {
		t.Fatal("child state not shared")
	}
	if v.With("/v1/estimate", "429").Value() != 0 {
		t.Fatal("distinct label values shared a child")
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if want := 0.05 + 0.1 + 0.5 + 2 + 100; math.Abs(h.Sum()-want) > 1e-12 {
		t.Fatalf("sum = %g, want %g", h.Sum(), want)
	}
	var out strings.Builder
	if err := r.WriteText(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	// Buckets are cumulative: le=0.1 holds 0.05 and the boundary value
	// 0.1 (le is <=), le=1 adds 0.5, le=10 adds 2, +Inf adds 100.
	for _, line := range []string{
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.1"} 2`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="10"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		"latency_seconds_count 5",
	} {
		if !strings.Contains(text, line+"\n") {
			t.Fatalf("exposition missing %q:\n%s", line, text)
		}
	}
}

func TestWriteTextShapeAndEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("odd_total", "odd label values", "name")
	v.With(`quo"te` + "\n" + `back\slash`).Inc()
	r.GaugeFunc("live_value", "scrape-time gauge", []string{"kind"}, func(emit func([]string, float64)) {
		emit([]string{"b"}, 2)
		emit([]string{"a"}, 1.5)
	})
	var out strings.Builder
	if err := r.WriteText(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, `odd_total{name="quo\"te\nback\\slash"} 1`) {
		t.Fatalf("label escaping wrong:\n%s", text)
	}
	// Func samples are sorted by label value regardless of emit order,
	// and non-integer values render as floats.
	ai := strings.Index(text, `live_value{kind="a"} 1.5`)
	bi := strings.Index(text, `live_value{kind="b"} 2`)
	if ai < 0 || bi < 0 || ai > bi {
		t.Fatalf("func gauge samples wrong or unsorted:\n%s", text)
	}
	// HELP/TYPE precede their samples, in registration order.
	if h := strings.Index(text, "# HELP odd_total"); h < 0 || h > ai {
		t.Fatalf("family header order wrong:\n%s", text)
	}
}

func TestRegistrationValidation(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_total", "fine")
	for name, fn := range map[string]func(){
		"duplicate name":    func() { r.Counter("ok_total", "again") },
		"invalid name":      func() { r.Counter("bad-name", "dash") },
		"digit first":       func() { r.Counter("9lives", "digit") },
		"invalid label":     func() { r.CounterVec("c_total", "x", "bad-label") },
		"vec without label": func() { r.CounterVec("v_total", "x") },
		"unsorted buckets":  func() { r.Histogram("h_seconds", "x", []float64{1, 0.1}) },
		"empty buckets":     func() { r.Histogram("h2_seconds", "x", nil) },
		"nil collect":       func() { r.GaugeFunc("g", "x", nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Under N-way concurrent load every observation must land exactly once:
// counter totals, histogram count and histogram sum all add up. Run
// with -race in CI.
func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("reqs_total", "requests", "code")
	h := r.HistogramVec("lat_seconds", "latency", []float64{0.001, 0.01, 0.1, 1}, "route")
	g := r.Gauge("inflight", "in flight")
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				g.Add(1)
				c.With("200").Inc()
				h.With("/v1/estimate").Observe(float64(i%7) * 0.003)
				g.Add(-1)
			}
		}(w)
	}
	wg.Wait()
	const total = workers * perWorker
	if got := c.With("200").Value(); got != total {
		t.Fatalf("counter = %d, want %d", got, total)
	}
	hist := h.With("/v1/estimate")
	if got := hist.Count(); got != total {
		t.Fatalf("histogram count = %d, want %d", got, total)
	}
	perWorkerSum := 0.0
	for i := 0; i < perWorker; i++ {
		perWorkerSum += float64(i%7) * 0.003
	}
	if want := perWorkerSum * workers; math.Abs(hist.Sum()-want) > 1e-6*want {
		t.Fatalf("histogram sum = %g, want %g", hist.Sum(), want)
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Value())
	}
	// A scrape after the storm is internally consistent: +Inf bucket ==
	// count for every series.
	var out strings.Builder
	if err := r.WriteText(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `lat_seconds_bucket{route="/v1/estimate",le="+Inf"} 16000`) {
		t.Fatalf("cumulative +Inf bucket wrong:\n%s", out.String())
	}
}

// Scraping while observations are in flight must be race-free and
// monotone-consistent (never a torn family).
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("work_seconds", "work", DefLatencyBuckets)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h.Observe(0.002)
			}
		}
	}()
	for i := 0; i < 50; i++ {
		var out strings.Builder
		if err := r.WriteText(&out); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
