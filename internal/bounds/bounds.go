// Package bounds provides analytic bounds on the expected makespan that
// bracket every estimator in this repository: a Jensen lower bound (the
// longest path of expected task durations) and a Kleindorfer-style upper
// bound (a forward sweep with full discrete distributions assuming
// independent predecessor completions). Together with the failure-free
// makespan d(G) — itself a lower bound, as the paper notes in §III — they
// give cheap certificates used in tests and sanity checks.
package bounds

import (
	"repro/internal/dag"
	"repro/internal/distribution"
	"repro/internal/failure"
)

// FailureFree returns d(G), the paper's lower bound on the expected
// makespan (§III).
func FailureFree(g *dag.Graph) (float64, error) {
	return dag.Makespan(g)
}

// JensenLower returns the longest path computed with expected task
// durations E[X_i] = a_i·(2 − p_i) under the 2-state model. Since the
// makespan is a maximum of path sums and max is convex, Jensen's
// inequality makes this a lower bound on the expected makespan:
// E[max_P Σ X] ≥ max_P Σ E[X]. It dominates d(G).
func JensenLower(g *dag.Graph, model failure.Model) (float64, error) {
	pe, err := dag.NewPathEvaluator(g)
	if err != nil {
		return 0, err
	}
	w := make([]float64, g.NumTasks())
	for i := range w {
		a := g.Weight(i)
		w[i] = a * (2 - model.PSuccess(a))
	}
	return pe.MakespanWith(w), nil
}

// JensenLowerGeometric is JensenLower under the full re-execution model,
// where E[X_i] = a_i·e^{λ a_i}.
func JensenLowerGeometric(g *dag.Graph, model failure.Model) (float64, error) {
	pe, err := dag.NewPathEvaluator(g)
	if err != nil {
		return 0, err
	}
	w := make([]float64, g.NumTasks())
	for i := range w {
		w[i] = model.ExpectedTime(g.Weight(i))
	}
	return pe.MakespanWith(w), nil
}

// SweepUpper returns the Kleindorfer-style upper bound on the expected
// makespan under the 2-state model: a forward topological sweep keeping a
// full discrete distribution per task,
//
//	C(v) = (max-independent over predecessors C(p)) ⊕ X_v ,
//
// treating predecessor completions as independent. Completions sharing
// ancestors are positively associated, and the independent max
// stochastically dominates the max of positively-associated variables, so
// the sweep's mean is an upper bound on the true expectation (exact on
// in-trees and chains). maxAtoms caps the per-task support (0 = default,
// negative = unlimited/exact arithmetic); capping re-discretizes
// mean-preservingly and in practice moves the bound negligibly.
//
// For repeated evaluation on one graph (a pfail sweep), use a Sweeper,
// which freezes once and pools the per-task distribution scratch.
func SweepUpper(g *dag.Graph, model failure.Model, maxAtoms int) (float64, error) {
	sw, err := NewSweeper(g)
	if err != nil {
		return 0, err
	}
	return sw.Upper(model, maxAtoms)
}

// A Sweeper evaluates SweepUpper repeatedly on one graph, reusing the
// frozen CSR form, the per-task completion-distribution array and the
// fused-operator scratch across calls. Not safe for concurrent use; build
// one Sweeper per goroutine against a shared Frozen.
type Sweeper struct {
	f    *dag.Frozen
	comp []distribution.Discrete
	s    distribution.Scratch
	pe   *dag.PathEvaluator // longest-path scratch for Jensen
	w    []float64          // task-ID-order weight scratch for Jensen
}

// NewSweeper freezes g and prepares a reusable upper-bound sweeper.
func NewSweeper(g *dag.Graph) (*Sweeper, error) {
	f, err := dag.Freeze(g)
	if err != nil {
		return nil, err
	}
	return NewSweeperFrozen(f), nil
}

// NewSweeperFrozen prepares a sweeper on an already-frozen graph (shared,
// read-only).
func NewSweeperFrozen(f *dag.Frozen) *Sweeper {
	return &Sweeper{
		f:    f,
		comp: make([]distribution.Discrete, f.NumTasks()),
		pe:   dag.NewPathEvaluatorFrozen(f),
		w:    make([]float64, f.NumTasks()),
	}
}

// Jensen computes the JensenLower bound under model, reusing the frozen
// form and the sweeper's scratch: the same arithmetic as JensenLower, so
// the results are bit-identical.
func (sw *Sweeper) Jensen(model failure.Model) float64 {
	g := sw.f.Graph()
	for i := range sw.w {
		a := g.Weight(i)
		sw.w[i] = a * (2 - model.PSuccess(a))
	}
	return sw.pe.MakespanWith(sw.w)
}

// Bracket returns the [Jensen, SweepUpper] bracket under model, the warm
// counterpart of the package-level Bracket for callers holding a Sweeper.
func (sw *Sweeper) Bracket(model failure.Model, maxAtoms int) (lo, hi float64, err error) {
	lo = sw.Jensen(model)
	hi, err = sw.Upper(model, maxAtoms)
	if err != nil {
		return 0, 0, err
	}
	return lo, hi, nil
}

// Upper computes the Kleindorfer-style upper bound under model; see
// SweepUpper for semantics of maxAtoms.
func (sw *Sweeper) Upper(model failure.Model, maxAtoms int) (float64, error) {
	if maxAtoms == 0 {
		maxAtoms = distDefaultAtoms
	}
	// The fused capped ops bin on the fly (bit-identical to op followed by
	// Rediscretize) and share one scratch, so the sweep allocates only its
	// per-task results. maxAtoms < 0 means unlimited: cap 0 disables
	// binning inside the fused ops.
	atoms := maxAtoms
	if atoms < 0 {
		atoms = 0
	}
	f := sw.f
	n := f.NumTasks()
	w := f.WeightsTopo()
	comp := sw.comp
	var final distribution.Discrete
	for v := 0; v < n; v++ {
		var start distribution.Discrete
		for k, p := range f.PredTopo(v) {
			if k == 0 {
				start = comp[p]
			} else {
				start = start.MaxIndCapped(comp[p], atoms, &sw.s)
			}
		}
		x, err := distribution.TwoState(w[v], model.PSuccess(w[v]))
		if err != nil {
			return 0, err
		}
		if start.IsZero() {
			comp[v] = x
		} else {
			comp[v] = start.AddCapped(x, atoms, &sw.s)
		}
		if f.OutDegreeTopo(v) == 0 {
			if final.IsZero() {
				final = comp[v]
			} else {
				final = final.MaxIndCapped(comp[v], atoms, &sw.s)
			}
		}
	}
	if final.IsZero() {
		return 0, nil
	}
	return final.Mean(), nil
}

// distDefaultAtoms matches spgraph.DefaultMaxAtoms without importing it.
const distDefaultAtoms = 64

// Bracket returns [JensenLower, SweepUpper] for the 2-state model; the
// true expected makespan and every serious estimate must fall inside.
func Bracket(g *dag.Graph, model failure.Model, maxAtoms int) (lo, hi float64, err error) {
	lo, err = JensenLower(g, model)
	if err != nil {
		return 0, 0, err
	}
	hi, err = SweepUpper(g, model, maxAtoms)
	if err != nil {
		return 0, 0, err
	}
	return lo, hi, nil
}
