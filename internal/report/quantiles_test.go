package report

import (
	"math"
	"testing"
)

// Every entry point that accepts quantiles — the CLIs' -quantiles and
// -target-quantile flags, the service's "quantiles"/"target_quantile"
// fields, the engine's TargetQuantile — funnels through ValidateQuantiles
// or montecarlo's config validation with the same rule: q must lie
// strictly inside (0,1). This table pins the shared rule.
func TestValidateQuantilesTable(t *testing.T) {
	cases := []struct {
		name string
		qs   []float64
		ok   bool
	}{
		{"nil", nil, true},
		{"empty", []float64{}, true},
		{"single interior", []float64{0.5}, true},
		{"near edges", []float64{1e-9, 1 - 1e-9}, true},
		{"typical list", []float64{0.5, 0.95, 0.99}, true},
		{"zero", []float64{0}, false},
		{"one", []float64{1}, false},
		{"negative", []float64{-0.1}, false},
		{"above one", []float64{1.5}, false},
		{"NaN", []float64{math.NaN()}, false},
		{"+Inf", []float64{math.Inf(1)}, false},
		{"-Inf", []float64{math.Inf(-1)}, false},
		{"bad among good", []float64{0.5, 0, 0.9}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateQuantiles(tc.qs)
			if tc.ok && err != nil {
				t.Fatalf("ValidateQuantiles(%v) = %v, want nil", tc.qs, err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("ValidateQuantiles(%v) accepted", tc.qs)
			}
		})
	}
}

// ParseQuantiles applies the same rule after parsing the flag syntax.
func TestParseQuantilesTable(t *testing.T) {
	cases := []struct {
		in   string
		want int // parsed count; -1 = error
	}{
		{"", 0},
		{" , , ", 0},
		{"0.5", 1},
		{"0.5,0.95, 0.99", 3},
		{"abc", -1},
		{"0", -1},
		{"1", -1},
		{"1.5", -1},
		{"-0.5", -1},
		{"NaN", -1},
		{"0.5,2", -1},
	}
	for _, tc := range cases {
		qs, err := ParseQuantiles(tc.in)
		if tc.want < 0 {
			if err == nil {
				t.Errorf("ParseQuantiles(%q) accepted: %v", tc.in, qs)
			}
			continue
		}
		if err != nil || len(qs) != tc.want {
			t.Errorf("ParseQuantiles(%q) = %v, %v; want %d values", tc.in, qs, err, tc.want)
		}
	}
}
