// Command loadgen drives a fixed-RPS open-loop load profile against a
// running makespand and reports the latency distribution. Open-loop
// means requests are launched on a fixed schedule regardless of how
// fast earlier ones complete, so a slow server accumulates concurrency
// instead of silently slowing the generator down — the measurement
// avoids coordinated omission by clocking each request from its
// scheduled start, not its actual send. Measured requests are made
// exactly once (no retries: a retry would hide a shed or an error from
// the numbers); only the unmeasured warm-up uses the retrying client.
//
// Usage:
//
//	loadgen -base http://127.0.0.1:8080 -rps 40 -duration 8s \
//	  -body '{"kind":"lu","k":8,"methods":"First Order","trials":256,"seed":7}' \
//	  -out BENCH_load.json -metrics-out metrics.prom
//
// -bodies FILE replaces -body with one JSON body per line, driven
// round-robin; a cluster run points it at several distinct graphs so
// the traffic spreads across the makespan-lb shards and every replica
// serves its own warm cache.
//
// The JSON report (request counts, ok/shed/error split, achieved RPS
// and latency percentiles in milliseconds) is what scripts/benchcheck
// gates in CI against the committed BENCH_load.json baseline; the
// cluster profile's BENCH_cluster.json is the same document plus a
// fleet cache section merged in by scripts/load.sh.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/httpx"
)

// profile records the knobs of one run, echoed into the report so a
// baseline is self-describing.
type profile struct {
	Base            string  `json:"base"`
	Route           string  `json:"route"`
	Body            string  `json:"body,omitempty"`
	BodiesFile      string  `json:"bodies_file,omitempty"`
	DistinctBodies  int     `json:"distinct_bodies,omitempty"`
	RPS             float64 `json:"rps"`
	DurationSeconds float64 `json:"duration_seconds"`
	WarmupRequests  int     `json:"warmup_requests"`
}

// latencySummary is the distribution over successful (2xx) requests,
// in milliseconds.
type latencySummary struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// report is the JSON document written to -out.
type report struct {
	Profile     profile        `json:"profile"`
	Requests    int            `json:"requests"`
	OK          int            `json:"ok"`
	Shed        int            `json:"shed"`
	Errors      int            `json:"errors"`
	AchievedRPS float64        `json:"achieved_rps"`
	LatencyMS   latencySummary `json:"latency_ms"`
}

type result struct {
	latency time.Duration
	status  int
	err     error
}

func main() {
	var (
		base       = flag.String("base", "", "base URL of the makespand to load (required)")
		route      = flag.String("route", "/v1/estimate", "route to drive (POST when -body is set, GET otherwise)")
		body       = flag.String("body", `{"kind":"lu","k":8,"methods":"First Order","trials":256,"seed":7}`, "request body (empty = GET)")
		bodies     = flag.String("bodies", "", "file with one JSON body per line, driven round-robin (overrides -body; for cluster runs, spreads traffic across shards)")
		rps        = flag.Float64("rps", 40, "request launch rate (open loop)")
		duration   = flag.Duration("duration", 8*time.Second, "how long to launch requests for")
		warmup     = flag.Int("warmup", 3, "unmeasured warm-up requests before the clock starts")
		timeout    = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		out        = flag.String("out", "BENCH_load.json", `report path ("-" = stdout)`)
		metricsOut = flag.String("metrics-out", "", "if set, scrape GET /metrics after the run into this file")
	)
	flag.Parse()
	if err := run(*base, *route, *body, *bodies, *rps, *duration, *warmup, *timeout, *out, *metricsOut); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// readBodies loads one request body per non-blank, non-# line.
func readBodies(path string) ([]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, line := range strings.Split(string(raw), "\n") {
		if line = strings.TrimSpace(line); line != "" && !strings.HasPrefix(line, "#") {
			out = append(out, line)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no request bodies", path)
	}
	return out, nil
}

func run(base, route, body, bodiesFile string, rps float64, duration time.Duration, warmup int, timeout time.Duration, out, metricsOut string) error {
	if base == "" {
		return fmt.Errorf("-base is required")
	}
	if rps <= 0 || duration <= 0 {
		return fmt.Errorf("-rps and -duration must be positive")
	}
	bodyList := []string{body}
	if bodiesFile != "" {
		var err error
		if bodyList, err = readBodies(bodiesFile); err != nil {
			return err
		}
		body = ""
	}
	distinct := 0
	if bodiesFile != "" {
		distinct = len(bodyList)
	}
	base = strings.TrimRight(base, "/")
	url := base + route
	ctx := context.Background()

	readyCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := httpx.WaitReady(readyCtx, base+"/healthz", nil); err != nil {
		return err
	}
	// Warm-up primes the graph registry and the estimator caches so the
	// measured window sees the steady state a scraped fleet would; the
	// retrying client is fine here because these requests are not timed.
	rc := httpx.NewRetryClient()
	rc.PerAttempt = timeout
	// With a bodies file every distinct body is warmed at least once, so
	// the measured window sees each shard's cache already primed.
	for i := 0; i < warmup || i < len(bodyList); i++ {
		status, _, err := warmupOnce(ctx, rc, url, bodyList[i%len(bodyList)])
		if err != nil {
			return fmt.Errorf("warm-up request %d: %w", i, err)
		}
		if status/100 != 2 {
			return fmt.Errorf("warm-up request %d: status %d", i, status)
		}
	}

	interval := time.Duration(float64(time.Second) / rps)
	n := int(duration / interval)
	if n < 1 {
		n = 1
	}
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	results := make(chan result, n)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		sched := start.Add(time.Duration(i) * interval)
		if d := time.Until(sched); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(sched time.Time, body string) {
			defer wg.Done()
			status, err := once(ctx, client, url, body, timeout)
			// Clock from the scheduled start: launcher lag counts against
			// the server, as it would for a real open-loop client.
			results <- result{latency: time.Since(sched), status: status, err: err}
		}(sched, bodyList[i%len(bodyList)])
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(results)

	rep := report{
		Profile: profile{
			Base: base, Route: route, Body: body,
			BodiesFile: bodiesFile, DistinctBodies: distinct,
			RPS: rps, DurationSeconds: duration.Seconds(), WarmupRequests: warmup,
		},
		Requests:    n,
		AchievedRPS: float64(n) / elapsed.Seconds(),
	}
	var okLat []float64
	for res := range results {
		switch {
		case res.err != nil:
			rep.Errors++
		case res.status == http.StatusTooManyRequests:
			rep.Shed++
		case res.status/100 == 2:
			rep.OK++
			okLat = append(okLat, float64(res.latency)/float64(time.Millisecond))
		default:
			rep.Errors++
		}
	}
	rep.LatencyMS = summarize(okLat)

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(enc)
	} else {
		err = os.WriteFile(out, enc, 0o644)
	}
	if err != nil {
		return err
	}
	if metricsOut != "" {
		status, text, err := rc.Get(ctx, base+"/metrics")
		if err != nil {
			return fmt.Errorf("final metrics scrape: %w", err)
		}
		if status != http.StatusOK {
			return fmt.Errorf("final metrics scrape: status %d", status)
		}
		if err := os.WriteFile(metricsOut, text, 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d requests (%d ok, %d shed, %d errors) at %.1f rps; p50=%.3fms p95=%.3fms p99=%.3fms\n",
		rep.Requests, rep.OK, rep.Shed, rep.Errors, rep.AchievedRPS,
		rep.LatencyMS.P50, rep.LatencyMS.P95, rep.LatencyMS.P99)
	return nil
}

func warmupOnce(ctx context.Context, rc *httpx.RetryClient, url, body string) (int, []byte, error) {
	if body == "" {
		return rc.Get(ctx, url)
	}
	return rc.Post(ctx, url, "application/json", []byte(body))
}

// once issues exactly one request — never retried, so every shed and
// error shows up in the report.
func once(ctx context.Context, client *http.Client, url, body string, timeout time.Duration) (int, error) {
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	method, rd := http.MethodGet, io.Reader(nil)
	if body != "" {
		method, rd = http.MethodPost, strings.NewReader(body)
	}
	req, err := http.NewRequestWithContext(rctx, method, url, rd)
	if err != nil {
		return 0, err
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	_, err = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}

// summarize computes the report distribution; percentiles use the
// nearest-rank method on the sorted sample.
func summarize(ms []float64) latencySummary {
	if len(ms) == 0 {
		return latencySummary{}
	}
	sort.Float64s(ms)
	sum := 0.0
	for _, v := range ms {
		sum += v
	}
	q := func(p float64) float64 {
		i := int(p*float64(len(ms))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(ms) {
			i = len(ms) - 1
		}
		return ms[i]
	}
	return latencySummary{
		Mean: sum / float64(len(ms)),
		P50:  q(0.50),
		P90:  q(0.90),
		P95:  q(0.95),
		P99:  q(0.99),
		Max:  ms[len(ms)-1],
	}
}
