// Command experiments regenerates the paper's evaluation: Figures 4-12
// (relative error of First Order, Dodin and Normal vs Monte Carlo, per
// factorization, failure probability and graph size) and Table I (LU k=20
// accuracy and runtime).
//
// Usage:
//
//	experiments                  # all nine figures + Table I, paper fidelity
//	experiments -fig 5           # one figure
//	experiments -table 1         # Table I only
//	experiments -trials 30000    # reduced Monte Carlo for quick runs
//	experiments -csv out.csv     # additionally dump CSV rows
//	experiments -all-methods     # add Sculli and Second Order columns
//
// At paper fidelity (300,000 trials) the full run takes tens of minutes,
// dominated by Monte Carlo on the larger graphs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		fig     = flag.Int("fig", 0, "run only this figure (4..12; 0 = all)")
		table   = flag.Int("table", 0, "run only this table (1; 0 = per default run)")
		trials  = flag.Int("trials", 0, "Monte Carlo trials (0 = paper's 300,000)")
		seed    = flag.Uint64("seed", 42, "Monte Carlo seed")
		csvPath = flag.String("csv", "", "append figure CSV rows to this file")
		allM    = flag.Bool("all-methods", false, "include Sculli and Second Order")
		maxK    = flag.Int("max-k", 0, "cap graph sizes at this k (0 = paper sizes)")
		tableK  = flag.Int("table-k", 0, "override Table I tile count (0 = paper's 20)")
		sweep   = flag.Bool("sweep", false, "run the extension pfail sweep instead")
	)
	flag.Parse()
	if *sweep {
		if err := runSweep(*trials, *seed, *allM); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*fig, *table, *trials, *seed, *csvPath, *allM, *maxK, *tableK); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(fig, table, trials int, seed uint64, csvPath string, allM bool, maxK, tableK int) error {
	opts := experiments.Options{
		Trials:   trials,
		Seed:     seed,
		Progress: func(s string) { fmt.Fprintln(os.Stderr, "  ", s) },
	}
	if allM {
		opts.Methods = experiments.AllMethods()
	}
	var csvW io.Writer
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		csvW = f
	}
	runOne := func(spec experiments.FigureSpec) error {
		if maxK > 0 {
			var ks []int
			for _, k := range spec.Ks {
				if k <= maxK {
					ks = append(ks, k)
				}
			}
			opts.Ks = ks
		}
		res, err := experiments.RunFigure(spec, opts)
		if err != nil {
			return err
		}
		if err := experiments.WriteFigure(os.Stdout, res, opts.Methods); err != nil {
			return err
		}
		fmt.Println()
		if csvW != nil {
			if err := experiments.WriteFigureCSV(csvW, res, opts.Methods); err != nil {
				return err
			}
		}
		return nil
	}

	switch {
	case fig != 0:
		spec, err := experiments.Figure(fig)
		if err != nil {
			return err
		}
		return runOne(spec)
	case table != 0:
		if table != 1 {
			return fmt.Errorf("no table %d (have 1)", table)
		}
		return runTable1(opts, tableK)
	default:
		for _, spec := range experiments.Figures() {
			if err := runOne(spec); err != nil {
				return err
			}
		}
		return runTable1(opts, tableK)
	}
}

func runSweep(trials int, seed uint64, allM bool) error {
	opts := experiments.Options{Trials: trials, Seed: seed}
	if allM {
		opts.Methods = experiments.AllMethods()
	}
	res, err := experiments.RunSweep(experiments.DefaultSweep(), opts)
	if err != nil {
		return err
	}
	return experiments.WriteSweep(os.Stdout, res, opts.Methods)
}

func runTable1(opts experiments.Options, tableK int) error {
	spec := experiments.Table1()
	if tableK > 0 {
		spec.K = tableK
	}
	res, err := experiments.RunTable1(spec, opts)
	if err != nil {
		return err
	}
	return experiments.WriteTable1(os.Stdout, res, opts.Methods)
}
