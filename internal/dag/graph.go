// Package dag provides weighted directed acyclic task graphs and the
// path-length machinery (topological orders, longest paths, top and bottom
// levels, reachability) that the makespan estimators are built on.
//
// A Graph models an application as in the paper: vertices are tasks with a
// failure-free execution weight, edges are precedence constraints. Tasks are
// identified by dense integer IDs in [0, NumTasks()).
package dag

import (
	"errors"
	"fmt"
)

// Graph is a weighted DAG of tasks. The zero value is an empty graph ready
// to use. Graph is not safe for concurrent mutation; read-only use from
// multiple goroutines is safe.
type Graph struct {
	names   []string
	weights []float64
	succ    [][]int
	pred    [][]int
	// succSet[i] mirrors succ[i] as a set once the out-degree crosses
	// dupMapThreshold, so duplicate-edge detection on dense nodes is O(1)
	// instead of an O(out-degree) scan. Sparse nodes stay map-free.
	succSet []map[int]struct{}
	edges   int
	// version counts mutations; Frozen snapshots record it to detect
	// staleness (see Frozen.UpToDate).
	version uint64
}

// dupMapThreshold is the out-degree above which AddEdge switches from a
// linear duplicate scan to a per-node set. Small enough to keep dense-graph
// construction O(E), large enough that typical sparse DAGs never allocate
// a map.
const dupMapThreshold = 16

// New returns an empty graph with capacity hints for n tasks.
func New(n int) *Graph {
	return &Graph{
		names:   make([]string, 0, n),
		weights: make([]float64, 0, n),
		succ:    make([][]int, 0, n),
		pred:    make([][]int, 0, n),
		succSet: make([]map[int]struct{}, 0, n),
	}
}

// Errors returned by graph mutators and validators.
var (
	ErrBadTask       = errors.New("dag: task id out of range")
	ErrSelfLoop      = errors.New("dag: self loop")
	ErrDuplicateEdge = errors.New("dag: duplicate edge")
	ErrCycle         = errors.New("dag: graph contains a cycle")
	ErrBadWeight     = errors.New("dag: task weight must be non-negative and finite")
)

// AddTask adds a task with the given name and failure-free weight and
// returns its ID. Weights must be non-negative; a zero weight is legal (the
// paper's synthetic source/sink tasks have zero weight).
func (g *Graph) AddTask(name string, weight float64) (int, error) {
	if weight < 0 || weight != weight || weight > 1e300 {
		return -1, fmt.Errorf("%w: %v", ErrBadWeight, weight)
	}
	id := len(g.names)
	g.names = append(g.names, name)
	g.weights = append(g.weights, weight)
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	g.succSet = append(g.succSet, nil)
	g.version++
	return id, nil
}

// MustAddTask is AddTask panicking on error; for tests and generators whose
// inputs are known valid.
func (g *Graph) MustAddTask(name string, weight float64) int {
	id, err := g.AddTask(name, weight)
	if err != nil {
		panic(err)
	}
	return id
}

// AddEdge adds the precedence edge from -> to. Duplicate edges and self
// loops are rejected; cycles are only detected by Validate/TopoOrder since
// detecting them per edge would be quadratic.
func (g *Graph) AddEdge(from, to int) error {
	if from < 0 || from >= len(g.names) || to < 0 || to >= len(g.names) {
		return fmt.Errorf("%w: (%d,%d) with %d tasks", ErrBadTask, from, to, len(g.names))
	}
	if from == to {
		return fmt.Errorf("%w: task %d", ErrSelfLoop, from)
	}
	if set := g.succSet[from]; set != nil {
		if _, dup := set[to]; dup {
			return fmt.Errorf("%w: (%d,%d)", ErrDuplicateEdge, from, to)
		}
		set[to] = struct{}{}
	} else {
		for _, s := range g.succ[from] {
			if s == to {
				return fmt.Errorf("%w: (%d,%d)", ErrDuplicateEdge, from, to)
			}
		}
		if len(g.succ[from]) >= dupMapThreshold {
			set = make(map[int]struct{}, 2*dupMapThreshold)
			for _, s := range g.succ[from] {
				set[s] = struct{}{}
			}
			set[to] = struct{}{}
			g.succSet[from] = set
		}
	}
	g.succ[from] = append(g.succ[from], to)
	g.pred[to] = append(g.pred[to], from)
	g.edges++
	g.version++
	return nil
}

// MustAddEdge is AddEdge panicking on error.
func (g *Graph) MustAddEdge(from, to int) {
	if err := g.AddEdge(from, to); err != nil {
		panic(err)
	}
}

// NumTasks returns the number of tasks.
func (g *Graph) NumTasks() int { return len(g.names) }

// NumEdges returns the number of precedence edges.
func (g *Graph) NumEdges() int { return g.edges }

// Name returns the name of task i.
func (g *Graph) Name(i int) string { return g.names[i] }

// Weight returns the failure-free weight of task i.
func (g *Graph) Weight(i int) float64 { return g.weights[i] }

// SetWeight replaces the weight of task i.
func (g *Graph) SetWeight(i int, w float64) error {
	if i < 0 || i >= len(g.names) {
		return ErrBadTask
	}
	if w < 0 || w != w || w > 1e300 {
		return fmt.Errorf("%w: %v", ErrBadWeight, w)
	}
	g.weights[i] = w
	g.version++
	return nil
}

// Weights returns a copy of the task weight vector.
func (g *Graph) Weights() []float64 {
	w := make([]float64, len(g.weights))
	copy(w, g.weights)
	return w
}

// TotalWeight returns the sum of all task weights.
func (g *Graph) TotalWeight() float64 {
	var s float64
	for _, w := range g.weights {
		s += w
	}
	return s
}

// MeanWeight returns the average task weight (0 for an empty graph). The
// paper calibrates the failure rate λ from this quantity.
func (g *Graph) MeanWeight() float64 {
	if len(g.weights) == 0 {
		return 0
	}
	return g.TotalWeight() / float64(len(g.weights))
}

// Succ returns the successors of task i. The returned slice is owned by the
// graph and must not be mutated.
func (g *Graph) Succ(i int) []int { return g.succ[i] }

// Pred returns the predecessors of task i. The returned slice is owned by
// the graph and must not be mutated.
func (g *Graph) Pred(i int) []int { return g.pred[i] }

// InDegree returns the number of predecessors of task i.
func (g *Graph) InDegree(i int) int { return len(g.pred[i]) }

// OutDegree returns the number of successors of task i.
func (g *Graph) OutDegree(i int) int { return len(g.succ[i]) }

// Sources returns the IDs of tasks without predecessors, in ID order.
func (g *Graph) Sources() []int {
	var src []int
	for i := range g.pred {
		if len(g.pred[i]) == 0 {
			src = append(src, i)
		}
	}
	return src
}

// Sinks returns the IDs of tasks without successors, in ID order.
func (g *Graph) Sinks() []int {
	var snk []int
	for i := range g.succ {
		if len(g.succ[i]) == 0 {
			snk = append(snk, i)
		}
	}
	return snk
}

// Clone returns a deep copy of the graph. Duplicate-detection sets are not
// copied; AddEdge rebuilds them lazily when a dense node grows further.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		names:   append([]string(nil), g.names...),
		weights: append([]float64(nil), g.weights...),
		succ:    make([][]int, len(g.succ)),
		pred:    make([][]int, len(g.pred)),
		succSet: make([]map[int]struct{}, len(g.succ)),
		edges:   g.edges,
	}
	for i := range g.succ {
		if len(g.succ[i]) > 0 {
			c.succ[i] = append([]int(nil), g.succ[i]...)
		}
		if len(g.pred[i]) > 0 {
			c.pred[i] = append([]int(nil), g.pred[i]...)
		}
	}
	return c
}

// HasEdge reports whether the edge from -> to exists.
func (g *Graph) HasEdge(from, to int) bool {
	if from < 0 || from >= len(g.names) {
		return false
	}
	if set := g.succSet[from]; set != nil {
		_, ok := set[to]
		return ok
	}
	for _, s := range g.succ[from] {
		if s == to {
			return true
		}
	}
	return false
}

// Validate checks structural invariants: weight sanity and acyclicity.
func (g *Graph) Validate() error {
	for i, w := range g.weights {
		if w < 0 || w != w {
			return fmt.Errorf("task %d (%s): %w", i, g.names[i], ErrBadWeight)
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("dag.Graph{tasks: %d, edges: %d, totalWeight: %g}",
		g.NumTasks(), g.NumEdges(), g.TotalWeight())
}
