package schedmc

import (
	"math"
	"testing"

	"repro/internal/failure"
	"repro/internal/sched"
)

// The statistical-equivalence pin against the pre-PR5 schedsim loop
// (sched.ExpectedMakespan): the frozen-schedule engine evaluates the
// committed schedule, while the old loop re-dispatches dynamically inside
// every trial, so the two agree exactly without failures and track each
// other with a small, systematic, *positive* frozen-schedule bias at
// realistic failure probabilities (the dynamic dispatcher re-balances
// around inflated tasks; a committed schedule cannot). Measured on these
// configurations the bias is ≈0.19% at pfail 1e-3 and ≈1.5% at 1e-2;
// the test bounds it at roughly twice the measured value so a sampler or
// compiler regression that widens the gap fails loudly.
func TestStatisticalEquivalenceWithDynamicLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, tc := range []struct {
		pfail  float64
		maxRel float64 // bound on (new-old)/old
	}{
		{0.001, 0.005},
		{0.01, 0.03},
	} {
		g := mustLU(t, 8)
		model := mustModel(t, g, tc.pfail)
		for _, pol := range AllPolicies() {
			prio, err := pol.Priorities(g, model)
			if err != nil {
				t.Fatal(err)
			}
			old, err := sched.ExpectedMakespan(g, prio, 4, model, 4000, 42)
			if err != nil {
				t.Fatal(err)
			}
			res, _, err := Estimate(g, pol, 4, model, Overheads{}, Config{Trials: 20000, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			rel := (res.Mean - old.Mean) / old.Mean
			noise := 3 * (old.CI95 + res.CI95) / old.Mean
			if rel > tc.maxRel+noise || rel < -noise {
				t.Errorf("pfail=%g %s: frozen %.6g vs dynamic %.6g, rel %+.4f%% outside [%.4f%%, %.4f%%]",
					tc.pfail, pol, res.Mean, old.Mean, 100*rel, -100*noise, 100*(tc.maxRel+noise))
			}
		}
	}
}

// Without failures the two engines agree exactly: the dynamic loop
// executes the same schedule the frozen engine committed.
func TestExactEquivalenceWithoutFailures(t *testing.T) {
	g := mustLU(t, 8)
	for _, pol := range AllPolicies() {
		prio, err := pol.Priorities(g, failure.Model{})
		if err != nil {
			t.Fatal(err)
		}
		base, err := sched.ListSchedule(g, prio, 4)
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(g, pol, 4, failure.Model{}, Config{Trials: 64, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Mean != base.Makespan {
			t.Errorf("%s: frozen %v != dynamic %v without failures", pol, res.Mean, base.Makespan)
		}
	}
}

// Results must be bit-identical for every worker count, the same
// guarantee the unbounded-processor engine gives (chunked SplitMix64
// streams reduced in chunk order).
func TestWorkerCountInvariance(t *testing.T) {
	g := mustLU(t, 6)
	model := mustModel(t, g, 0.05)
	var ref *struct {
		mean, sd, min, max float64
		q50, q99           float64
	}
	for _, workers := range []int{1, 2, 3, 7, 16} {
		e, err := New(g, PolicyCP, 4, model, Config{Trials: 30000, Seed: 11, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		res, sk, err := e.RunQuantiles()
		if err != nil {
			t.Fatal(err)
		}
		cur := &struct {
			mean, sd, min, max float64
			q50, q99           float64
		}{res.Mean, res.StdDev, res.Min, res.Max, sk.Quantile(0.5), sk.Quantile(0.99)}
		if ref == nil {
			ref = cur
			continue
		}
		if *cur != *ref {
			t.Fatalf("workers=%d diverged: %+v != %+v", workers, cur, ref)
		}
	}
	if ref == nil || math.IsNaN(ref.q50) {
		t.Fatal("no quantiles produced")
	}
}

// Reruns with the same seed are identical; a different seed moves the
// estimate (sanity that the seed is actually plumbed through).
func TestSeedReproducibility(t *testing.T) {
	g := mustLU(t, 5)
	model := mustModel(t, g, 0.05)
	e, err := New(g, PolicyCP, 3, model, Config{Trials: 5000, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	a, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same-seed reruns differ: %+v vs %+v", a, b)
	}
	e2, err := e.WithConfig(Config{Trials: 5000, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	c, err := e2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if c.Mean == a.Mean {
		t.Error("different seeds produced the same mean")
	}
}
