package dag

// TransitiveReduction returns a copy of g without redundant precedence
// edges: an edge (u,v) is removed when another u→v path exists. Generated
// task graphs (and user input) often carry implied edges; removing them
// speeds up every per-edge algorithm and never changes path lengths, which
// the tests assert. O(V·E/64) using bitset reachability.
func TransitiveReduction(g *Graph) (*Graph, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := g.NumTasks()
	words := (n + 63) / 64
	// reach[u] = set of nodes reachable from u via paths of length >= 1
	// that start with a KEPT edge... Simpler: compute full reachability of
	// successors first, then an edge (u,v) is redundant iff some other
	// successor w of u reaches v.
	reach := make([][]uint64, n)
	backing := make([]uint64, n*words)
	for i := range reach {
		reach[i] = backing[i*words : (i+1)*words]
	}
	for k := n - 1; k >= 0; k-- {
		u := order[k]
		row := reach[u]
		row[u/64] |= 1 << (uint(u) % 64)
		for _, s := range g.succ[u] {
			srow := reach[s]
			for w := range row {
				row[w] |= srow[w]
			}
		}
	}
	out := New(n)
	for i := 0; i < n; i++ {
		out.MustAddTask(g.Name(i), g.Weight(i))
	}
	for u := 0; u < n; u++ {
		for _, v := range g.succ[u] {
			redundant := false
			for _, w := range g.succ[u] {
				if w == v {
					continue
				}
				if reach[w][v/64]&(1<<(uint(v)%64)) != 0 {
					redundant = true
					break
				}
			}
			if !redundant {
				out.MustAddEdge(u, v)
			}
		}
	}
	return out, nil
}
