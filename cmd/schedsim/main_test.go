package main

import "testing"

func TestRunEndToEnd(t *testing.T) {
	if err := run("lu", 4, 2, 0.01, 50, 1, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run("bogus", 4, 2, 0.01, 10, 1, false); err == nil {
		t.Fatal("bogus kind accepted")
	}
	if err := run("lu", 4, 2, 1.5, 10, 1, false); err == nil {
		t.Fatal("pfail=1.5 accepted")
	}
	if err := run("lu", 4, 0, 0.01, 10, 1, false); err == nil {
		t.Fatal("0 processors accepted")
	}
}
