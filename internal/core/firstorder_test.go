package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/failure"
	"repro/internal/linalg"
	"repro/internal/montecarlo"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFirstOrderChainClosedForm(t *testing.T) {
	// In a chain every task is critical: d(G_i) - d(G) = a_i, so
	// E = Σa_i + λ Σ a_i².
	g := dag.Chain(4, 1, 2, 3, 4)
	m := failure.Model{Lambda: 0.01}
	res, err := FirstOrder(g, m)
	if err != nil {
		t.Fatal(err)
	}
	want := 10 + 0.01*(1+4+9+16)
	if !almostEq(res.Estimate, want, 1e-12) {
		t.Fatalf("chain estimate = %v want %v", res.Estimate, want)
	}
	if res.FailureFree != 10 {
		t.Fatalf("failure-free = %v", res.FailureFree)
	}
	for i := 0; i < 4; i++ {
		a := g.Weight(i)
		if !almostEq(res.Contribution[i], a*a, 1e-12) {
			t.Fatalf("contribution %d = %v want %v", i, res.Contribution[i], a*a)
		}
	}
}

func TestFirstOrderDiamondHandComputed(t *testing.T) {
	// Diamond 1,5,3,2: d = 8 via the 5-branch. Doubling each task:
	// src: d+1=9 -> delta 1; mid0 (5): 13 -> 5; mid1 (3): max(8, 1+6+2)=9 -> 1;
	// snk: 10 -> 2. E = 8 + λ(1·1 + 5·5 + 3·1 + 2·2) = 8 + 33λ.
	g := dag.Diamond(1, 5, 3, 2)
	m := failure.Model{Lambda: 0.001}
	res, err := FirstOrder(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.Estimate, 8+0.033, 1e-12) {
		t.Fatalf("estimate = %v want 8.033", res.Estimate)
	}
	wantContrib := []float64{1, 25, 3, 4}
	for i, w := range wantContrib {
		if !almostEq(res.Contribution[i], w, 1e-12) {
			t.Fatalf("contribution %d = %v want %v", i, res.Contribution[i], w)
		}
	}
}

func TestFirstOrderOffCriticalTaskContributesZero(t *testing.T) {
	// A very short parallel branch never affects the makespan to first
	// order.
	g := dag.Diamond(1, 10, 0.5, 2)
	res, err := FirstOrder(g, failure.Model{Lambda: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if res.Contribution[2] != 0 {
		t.Fatalf("short branch contribution = %v want 0", res.Contribution[2])
	}
}

func TestFirstOrderZeroLambda(t *testing.T) {
	g := dag.Diamond(1, 5, 3, 2)
	res, _ := FirstOrder(g, failure.Model{})
	if res.Estimate != res.FailureFree {
		t.Fatalf("λ=0 estimate %v != d(G) %v", res.Estimate, res.FailureFree)
	}
}

func TestFirstOrderRejectsCycle(t *testing.T) {
	g := dag.New(2)
	a := g.MustAddTask("a", 1)
	b := g.MustAddTask("b", 1)
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, a)
	if _, err := FirstOrder(g, failure.Model{Lambda: 0.1}); err == nil {
		t.Fatal("cycle accepted")
	}
	if _, err := FirstOrderNaive(g, failure.Model{Lambda: 0.1}); err == nil {
		t.Fatal("cycle accepted by naive")
	}
}

// Property: the O(V+E) evaluator agrees with the O(V(V+E)) oracle on
// random DAGs of several shapes.
func TestQuickFastMatchesNaive(t *testing.T) {
	f := func(seed int64, layered bool) bool {
		rng := rand.New(rand.NewSource(seed))
		var g *dag.Graph
		var err error
		if layered {
			g, err = dag.LayeredRandom(dag.RandomConfig{Tasks: 40, EdgeProb: 0.35, MaxLayerWidth: 6}, rng)
		} else {
			g, err = dag.ErdosRenyiDAG(dag.RandomConfig{Tasks: 40, EdgeProb: 0.1}, rng)
		}
		if err != nil {
			return false
		}
		m := failure.Model{Lambda: 0.05}
		fast, err := FirstOrder(g, m)
		if err != nil {
			return false
		}
		naive, err := FirstOrderNaive(g, m)
		if err != nil {
			return false
		}
		if !almostEq(fast.Estimate, naive.Estimate, 1e-9) {
			return false
		}
		for i := range fast.Contribution {
			if !almostEq(fast.Contribution[i], naive.Contribution[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFastMatchesNaiveOnFactorizations(t *testing.T) {
	m := failure.Model{Lambda: 0.02}
	for _, f := range linalg.All() {
		g, err := linalg.Generate(f, 6, linalg.KernelTimes{})
		if err != nil {
			t.Fatal(err)
		}
		fast, _ := FirstOrder(g, m)
		naive, _ := FirstOrderNaive(g, m)
		if !almostEq(fast.Estimate, naive.Estimate, 1e-9) {
			t.Fatalf("%s: fast %v naive %v", f, fast.Estimate, naive.Estimate)
		}
	}
}

// Property: estimate ≥ d(G) and every contribution is non-negative and at
// most a_i·d-ish bounded (sanity).
func TestQuickFirstOrderBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := dag.LayeredRandom(dag.RandomConfig{Tasks: 30, EdgeProb: 0.4, MaxLayerWidth: 5}, rng)
		if err != nil {
			return false
		}
		res, err := FirstOrder(g, failure.Model{Lambda: 0.01})
		if err != nil {
			return false
		}
		if res.Estimate < res.FailureFree {
			return false
		}
		for i, c := range res.Contribution {
			if c < 0 || c > g.Weight(i)*g.Weight(i)+1e-9 {
				// d(G_i) − d(G) ≤ a_i, so c ≤ a_i².
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The defining property of a first-order approximation: the error against
// the exact 2-state expectation shrinks quadratically in λ.
func TestFirstOrderErrorIsQuadraticInLambda(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g, _ := dag.LayeredRandom(dag.RandomConfig{Tasks: 12, EdgeProb: 0.5, MaxLayerWidth: 3}, rng)
	errAt := func(lam float64) float64 {
		m := failure.Model{Lambda: lam}
		exact, err := montecarlo.ExactTwoState(g, m)
		if err != nil {
			t.Fatal(err)
		}
		res, _ := FirstOrder(g, m)
		return math.Abs(res.Estimate - exact)
	}
	e1 := errAt(0.02)
	e2 := errAt(0.002)
	if e1 == 0 {
		t.Skip("error vanished; graph too symmetric")
	}
	ratio := e1 / e2
	// Quadratic scaling predicts ratio 100; allow generous slack.
	if ratio < 30 {
		t.Fatalf("error ratio %v; first-order error not O(λ²): e(0.02)=%v e(0.002)=%v", ratio, e1, e2)
	}
}

func TestFirstOrderWithReuse(t *testing.T) {
	g := dag.Diamond(1, 5, 3, 2)
	pe, err := dag.NewPathEvaluator(g)
	if err != nil {
		t.Fatal(err)
	}
	r1 := FirstOrderWith(pe, failure.Model{Lambda: 0.001})
	r2, _ := FirstOrder(g, failure.Model{Lambda: 0.001})
	if r1.Estimate != r2.Estimate {
		t.Fatalf("reused evaluator differs: %v vs %v", r1.Estimate, r2.Estimate)
	}
	// Different λ on the same evaluator.
	r3 := FirstOrderWith(pe, failure.Model{Lambda: 0.002})
	if !almostEq(r3.Estimate-8, 2*(r1.Estimate-8), 1e-12) {
		t.Fatalf("estimate not linear in λ: %v %v", r1.Estimate, r3.Estimate)
	}
}
