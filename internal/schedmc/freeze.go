package schedmc

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/failure"
	"repro/internal/sched"
)

// FrozenSchedule is a list schedule compiled into flat executable form:
// the failure-free schedule itself (who runs where, in what order) plus
// the schedule DAG — original precedence edges and one chain edge between
// consecutive tasks on each processor — frozen into CSR arrays. The
// longest path through the schedule DAG under per-task duration
// inflation is exactly the makespan of executing the committed schedule,
// so every montecarlo consumer (fused sampler, lane kernel, quantile
// sketches) evaluates it unmodified.
//
// A FrozenSchedule is an immutable snapshot, safe for concurrent
// read-only use; the makespand registry caches one per
// (graph, policy, procs, λ) behind its LRU byte budget.
type FrozenSchedule struct {
	// Policy records which priority policy built the schedule.
	Policy Policy
	// Procs is the number of identical processors scheduled on.
	Procs int
	// Base is the failure-free list schedule the DAG was compiled from:
	// Start/Finish/Proc per task plus the exact dispatch order.
	Base sched.Schedule
	// Makespan is the failure-free scheduled makespan (== Base.Makespan,
	// and bit-identical to the frozen DAG's longest path — verified at
	// construction).
	Makespan float64
	// Graph is the schedule DAG. It is owned by the FrozenSchedule and
	// must not be mutated (the Frozen snapshot would go stale).
	Graph *dag.Graph
	// Frozen is the compiled CSR form of Graph that estimators run on.
	Frozen *dag.Frozen
	// ChainEdges counts the processor chain edges added on top of the
	// precedence edges (consecutive same-processor pairs not already
	// ordered by a precedence edge).
	ChainEdges int
}

// Freeze list-schedules g on procs identical processors with the given
// policy's priorities and compiles the result into its frozen schedule
// form. The failure model is consulted only by PolicyFirstOrder
// priorities; the schedule itself is always the failure-free one.
func Freeze(g *dag.Graph, policy Policy, procs int, model failure.Model) (*FrozenSchedule, error) {
	if procs < 1 {
		return nil, fmt.Errorf("schedmc: procs must be >= 1, got %d", procs)
	}
	prio, err := policy.Priorities(g, model)
	if err != nil {
		return nil, err
	}
	base, err := sched.ListSchedule(g, prio, procs)
	if err != nil {
		return nil, err
	}
	return freezeFromBase(g, policy, procs, base)
}

// freezeFromBase compiles an already-computed failure-free schedule.
func freezeFromBase(g *dag.Graph, policy Policy, procs int, base sched.Schedule) (*FrozenSchedule, error) {
	n := g.NumTasks()
	sd := dag.New(n)
	for i := 0; i < n; i++ {
		if _, err := sd.AddTask(g.Name(i), g.Weight(i)); err != nil {
			return nil, fmt.Errorf("schedmc: schedule DAG: %w", err)
		}
	}
	for u := 0; u < n; u++ {
		for _, v := range g.Succ(u) {
			if err := sd.AddEdge(u, v); err != nil {
				return nil, fmt.Errorf("schedmc: schedule DAG: %w", err)
			}
		}
	}
	// Chain edges from the dispatch record: consecutive tasks on one
	// processor execute back to back, so the later one waits for the
	// earlier one exactly like a precedence edge. Chain edges always point
	// forward in dispatch order (a task is dispatched only after its
	// predecessors finished), so the DAG stays acyclic by construction.
	last := make([]int, procs)
	for p := range last {
		last[p] = -1
	}
	chains := 0
	for _, task := range base.Order {
		p := base.Proc[task]
		if prev := last[p]; prev >= 0 && !sd.HasEdge(prev, task) {
			if err := sd.AddEdge(prev, task); err != nil {
				return nil, fmt.Errorf("schedmc: chain edge (%d,%d): %w", prev, task, err)
			}
			chains++
		}
		last[p] = task
	}
	frozen, err := dag.Freeze(sd)
	if err != nil {
		return nil, fmt.Errorf("schedmc: freeze schedule DAG: %w", err)
	}
	fs := &FrozenSchedule{
		Policy:     policy,
		Procs:      procs,
		Base:       base,
		Makespan:   base.Makespan,
		Graph:      sd,
		Frozen:     frozen,
		ChainEdges: chains,
	}
	// Invariant: the schedule DAG's longest path reproduces the simulated
	// schedule bit for bit — start times are max(predecessor finishes,
	// chain-predecessor finish), the same IEEE max/add chain the event
	// simulator performed. A mismatch means the compilation is wrong.
	if d := frozen.Makespan(); d != base.Makespan {
		return nil, fmt.Errorf("schedmc: internal error: schedule DAG makespan %v != simulated %v", d, base.Makespan)
	}
	return fs, nil
}

// Efficiency returns the failure-free parallel efficiency of the
// schedule: total work / (procs × makespan). 0 for an empty schedule.
func (fs *FrozenSchedule) Efficiency() float64 {
	if fs.Makespan <= 0 {
		return 0
	}
	return fs.Graph.TotalWeight() / (float64(fs.Procs) * fs.Makespan)
}

// SizeBytes reports the approximate retained heap size of the frozen
// schedule — the schedule arrays, the schedule DAG and its frozen CSR
// form — for registry byte budgeting.
func (fs *FrozenSchedule) SizeBytes() int64 {
	n := int64(fs.Graph.NumTasks())
	s := n * (8 + 8 + 8 + 8 + 8) // Start, Finish, Proc, Attempts, Order
	s += n*64 + int64(fs.Graph.NumEdges())*16
	s += fs.Frozen.SizeBytes()
	return s + 128 // struct header
}
