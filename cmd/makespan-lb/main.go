// Command makespan-lb is the cluster front for a fleet of makespand
// replicas: it routes every /v1 request to a replica chosen by
// consistent hash of the request's canonical graph content key, so all
// artifacts derived from one graph live in one replica's cache and
// fleet cache capacity scales with the replica count. Because the
// estimators are deterministic and worker-invariant, responses are
// byte-identical regardless of which replica answers — which replica
// serves is unobservable, and hedging/failover are safe.
//
// Usage:
//
//	makespan-lb -addr 127.0.0.1:9090 \
//	    -replicas http://127.0.0.1:8081,http://127.0.0.1:8082
//
// Endpoints (cluster section in docs/API.md has executable examples):
//
//	POST /v1/graphs, GET /v1/graphs/{id}, POST /v1/estimate,
//	POST /v1/sweep, POST /v1/schedule, GET /v1/cache
//	                      proxied to the shard-owning replica, with
//	                      hedging past -hedge-after and failover on
//	                      transport errors / 5xx / 429
//	GET  /v1/replicas     the registered replica set and ring size
//	POST /v1/replicas     register ({"base":"http://…"}) or deregister
//	                      ({"base":"http://…","deregister":true})
//	GET  /healthz         ok | no_healthy_replicas | draining (503)
//	GET  /metrics         makespanlb_* Prometheus families (per-replica
//	                      request/hedge/eject counters, ring gauges)
//
// Replicas are health-checked on -check-interval; a replica whose
// /healthz answers 503 {"status":"draining"} is ejected immediately
// (it announced shutdown), one that stops answering is ejected after
// consecutive probe failures, and either rejoins the ring as soon as
// it probes 200 again. Unless -access-log=false every front request
// emits one structured line to stderr (event=request ... replica=...
// attempts=... hedges=...), the makespand convention plus the serving
// replica.
//
// Lifecycle: SIGINT/SIGTERM starts a graceful drain — /healthz flips
// to 503 draining, the listener stops accepting after -drain-grace,
// in-flight proxies finish within -drain-timeout (stragglers' upstream
// forwards are cancelled; replica kernels abort at the next chunk
// boundary) — and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/lb"
)

// lbConfig collects the flag-settable knobs of one router run.
type lbConfig struct {
	addr          string
	replicas      string
	hedgeAfter    time.Duration
	maxAttempts   int
	checkInterval time.Duration
	probeTimeout  time.Duration
	drainGrace    time.Duration
	drainTimeout  time.Duration
	accessLog     bool
}

func main() {
	var cfg lbConfig
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:9090", "listen address (host:port; port 0 picks a free port)")
	flag.StringVar(&cfg.replicas, "replicas", "", "comma-separated replica base URLs (more can register via POST /v1/replicas)")
	flag.DurationVar(&cfg.hedgeAfter, "hedge-after", 2*time.Second, "latency budget before hedging to the next ring sibling (< 0 disables hedging)")
	flag.IntVar(&cfg.maxAttempts, "max-attempts", 3, "distinct replicas one request may touch across hedges and failovers")
	flag.DurationVar(&cfg.checkInterval, "check-interval", time.Second, "replica health-check period")
	flag.DurationVar(&cfg.probeTimeout, "probe-timeout", 500*time.Millisecond, "per-probe /healthz timeout")
	flag.DurationVar(&cfg.drainGrace, "drain-grace", 0, "how long /healthz advertises draining before the listener closes")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 10*time.Second, "how long in-flight proxies may run after drain starts")
	flag.BoolVar(&cfg.accessLog, "access-log", true, "emit one structured log line per request to stderr")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "makespan-lb:", err)
		os.Exit(1)
	}
}

func run(cfg lbConfig) error {
	var replicas []string
	for _, r := range strings.Split(cfg.replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			replicas = append(replicas, r)
		}
	}
	rcfg := lb.Config{
		Replicas:      replicas,
		HedgeAfter:    cfg.hedgeAfter,
		MaxAttempts:   cfg.maxAttempts,
		CheckInterval: cfg.checkInterval,
		ProbeTimeout:  cfg.probeTimeout,
	}
	if cfg.accessLog {
		rcfg.AccessLog = os.Stderr
	}
	rt, err := lb.New(rcfg)
	if err != nil {
		return err
	}
	rt.Start()
	defer rt.Close()
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	// The resolved address line doubles as the readiness signal: the
	// harnesses scrape the port from it when started with :0.
	log.SetFlags(0)
	log.Printf("makespan-lb: listening on %s (replicas %d, hedge after %s)",
		ln.Addr(), len(replicas), cfg.hedgeAfter)

	rootCtx, rootCancel := context.WithCancel(context.Background())
	defer rootCancel()
	hs := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return rootCtx },
	}
	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-sigCtx.Done():
	}
	// Restore default signal handling: a second SIGINT/SIGTERM kills
	// the process immediately instead of being swallowed by the drain.
	stopSignals()

	log.Printf("makespan-lb: draining (%d in flight, grace %s, timeout %s)",
		rt.InFlight(), cfg.drainGrace, cfg.drainTimeout)
	rt.StartDrain() // /healthz answers 503 draining from here on
	if cfg.drainGrace > 0 {
		// Keep accepting during the grace window so whatever fronts
		// this front can observe the draining state first.
		time.Sleep(cfg.drainGrace)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		// In-flight proxies outlived the budget: cancel their contexts
		// (the upstream forwards die with them) and give them a moment
		// to flush.
		log.Printf("makespan-lb: drain timeout; cancelling in-flight requests")
		rootCancel()
		finalCtx, cancelFinal := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancelFinal()
		if err := hs.Shutdown(finalCtx); err != nil {
			_ = hs.Close()
		}
	}
	log.Printf("makespan-lb: drained, exiting")
	return nil
}
