// Quickstart: build a small workflow by hand, pick a failure rate, and
// estimate its expected makespan with every method in the library.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	makespan "repro"
)

func main() {
	// A little ETL-style workflow: ingest fans out to three transforms of
	// different sizes which join into a final report.
	g := makespan.NewGraph(5)
	ingest := g.MustAddTask("ingest", 2.0)
	small := g.MustAddTask("transform-small", 1.0)
	medium := g.MustAddTask("transform-medium", 3.0)
	large := g.MustAddTask("transform-large", 5.0)
	report := g.MustAddTask("report", 1.5)
	g.MustAddEdge(ingest, small)
	g.MustAddEdge(ingest, medium)
	g.MustAddEdge(ingest, large)
	g.MustAddEdge(small, report)
	g.MustAddEdge(medium, report)
	g.MustAddEdge(large, report)

	// Silent errors strike an average-weight task once in a thousand runs.
	model, err := makespan.ModelFromPfail(0.001, g.MeanWeight())
	if err != nil {
		log.Fatal(err)
	}

	d, _ := makespan.FailureFreeMakespan(g)
	fmt.Printf("workflow: %d tasks, %d edges\n", g.NumTasks(), g.NumEdges())
	fmt.Printf("failure-free makespan: %.4f s\n", d)
	fmt.Printf("error rate λ = %.6f /s\n\n", model.Lambda)

	fo, err := makespan.FirstOrder(g, model)
	if err != nil {
		log.Fatal(err)
	}
	so, _ := makespan.SecondOrder(g, model)
	dodin, _ := makespan.Dodin(g, model, -1) // exact arithmetic on this tiny graph
	nrm, _ := makespan.Normal(g, model)
	sculli, _ := makespan.Sculli(g, model)
	mc, _ := makespan.MonteCarlo(g, model, makespan.MonteCarloConfig{Trials: 200000, Seed: 7})

	fmt.Printf("%-22s %s\n", "method", "expected makespan (s)")
	fmt.Printf("%-22s %.6f\n", "First Order (paper)", fo)
	fmt.Printf("%-22s %.6f\n", "Second Order", so)
	fmt.Printf("%-22s %.6f\n", "Dodin", dodin)
	fmt.Printf("%-22s %.6f\n", "Normal (CorLCA)", nrm)
	fmt.Printf("%-22s %.6f\n", "Sculli", sculli)
	fmt.Printf("%-22s %.6f ± %.6f (95%% CI)\n\n", "Monte Carlo", mc.Mean, mc.CI95)

	// Which task hurts the most when it fails? The First Order
	// decomposition answers directly.
	detail, _ := makespan.FirstOrderDetail(g, model)
	fmt.Println("per-task sensitivity a_i·(d(G_i) − d(G)):")
	for i, c := range detail.Contribution {
		fmt.Printf("  %-18s %.4f\n", g.Name(i), c)
	}
	fmt.Println("\nthe big transform dominates: protect or split that task first.")
}
