// Package httpx is the shared HTTP client helper for tools that talk
// to makespand: a retrying client with a per-attempt timeout and
// jittered exponential backoff for idempotent requests, plus a
// readiness poller used by the e2e harnesses (and, later, the
// makespan-lb hedging client) instead of fixed sleeps.
package httpx

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// RetryClient issues idempotent HTTP requests with bounded retries.
// Each attempt gets its own timeout; attempts are separated by
// jittered exponential backoff, and a Retry-After response header
// overrides the computed backoff. The zero value is not usable; call
// NewRetryClient.
type RetryClient struct {
	// Client is the underlying HTTP client. Its Timeout is ignored;
	// PerAttempt governs each try.
	Client *http.Client
	// PerAttempt bounds a single attempt (connect + response).
	PerAttempt time.Duration
	// MaxAttempts is the total number of tries (first + retries).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; it doubles
	// each retry up to MaxDelay, with ±50% jitter.
	BaseDelay time.Duration
	// MaxDelay caps the backoff.
	MaxDelay time.Duration

	rng *rand.Rand
}

// NewRetryClient returns a RetryClient with production defaults:
// 2s per attempt, 5 attempts, 50ms base backoff capped at 1s.
func NewRetryClient() *RetryClient {
	return &RetryClient{
		Client:      &http.Client{},
		PerAttempt:  2 * time.Second,
		MaxAttempts: 5,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    time.Second,
		rng:         rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// retryableStatus reports whether a response status is worth retrying
// for an idempotent request: 5xx (the server may recover) and 429
// (explicit backpressure).
func retryableStatus(code int) bool {
	return code >= 500 || code == http.StatusTooManyRequests
}

// backoff computes the delay before attempt n (n=1 is the first
// retry), honoring retryAfter when the server supplied one.
func (c *RetryClient) backoff(n int, retryAfter time.Duration) time.Duration {
	if retryAfter > 0 {
		return retryAfter
	}
	d := c.BaseDelay << (n - 1)
	if c.MaxDelay > 0 && d > c.MaxDelay {
		d = c.MaxDelay
	}
	if c.rng != nil && d > 0 {
		// ±50% jitter decorrelates herds of clients retrying in step.
		d = d/2 + time.Duration(c.rng.Int63n(int64(d)))
	}
	return d
}

// Get issues a GET to url, retrying transport errors and retryable
// statuses until MaxAttempts or ctx expiry. On success the response
// body is returned in full; the caller does not need to close
// anything.
func (c *RetryClient) Get(ctx context.Context, url string) (status int, body []byte, err error) {
	var lastErr error
	for attempt := 0; attempt < c.MaxAttempts; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(c.backoff(attempt, retryAfterOf(lastErr)))
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return 0, nil, fmt.Errorf("httpx: %w (last error: %v)", ctx.Err(), lastErr)
			}
		}
		status, body, lastErr = c.once(ctx, url)
		if lastErr == nil {
			return status, body, nil
		}
		if ctx.Err() != nil {
			return 0, nil, fmt.Errorf("httpx: %w (last error: %v)", ctx.Err(), lastErr)
		}
	}
	return 0, nil, fmt.Errorf("httpx: giving up after %d attempts: %w", c.MaxAttempts, lastErr)
}

// Post issues a POST to url with the given body, retrying transport
// errors and retryable statuses like Get. Only use it against routes
// that are effectively idempotent (makespand's estimation routes are:
// repeating a request returns the byte-identical document); the body is
// replayed from memory on every attempt.
func (c *RetryClient) Post(ctx context.Context, url, contentType string, reqBody []byte) (status int, body []byte, err error) {
	var lastErr error
	for attempt := 0; attempt < c.MaxAttempts; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(c.backoff(attempt, retryAfterOf(lastErr)))
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return 0, nil, fmt.Errorf("httpx: %w (last error: %v)", ctx.Err(), lastErr)
			}
		}
		status, body, lastErr = c.oncePost(ctx, url, contentType, reqBody)
		if lastErr == nil {
			return status, body, nil
		}
		if ctx.Err() != nil {
			return 0, nil, fmt.Errorf("httpx: %w (last error: %v)", ctx.Err(), lastErr)
		}
	}
	return 0, nil, fmt.Errorf("httpx: giving up after %d attempts: %w", c.MaxAttempts, lastErr)
}

func (c *RetryClient) oncePost(ctx context.Context, url, contentType string, reqBody []byte) (int, []byte, error) {
	actx := ctx
	if c.PerAttempt > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.PerAttempt)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(actx, http.MethodPost, url, bytes.NewReader(reqBody))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := c.Client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	if retryableStatus(resp.StatusCode) {
		se := &statusError{code: resp.StatusCode}
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
				se.retryAfter = time.Duration(secs) * time.Second
			}
		}
		return resp.StatusCode, body, se
	}
	return resp.StatusCode, body, nil
}

// statusError carries a retryable non-2xx status between attempts so
// backoff can honor Retry-After.
type statusError struct {
	code       int
	retryAfter time.Duration
}

func (e *statusError) Error() string { return fmt.Sprintf("status %d", e.code) }

func retryAfterOf(err error) time.Duration {
	if se, ok := err.(*statusError); ok {
		return se.retryAfter
	}
	return 0
}

func (c *RetryClient) once(ctx context.Context, url string) (int, []byte, error) {
	actx := ctx
	if c.PerAttempt > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.PerAttempt)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(actx, http.MethodGet, url, nil)
	if err != nil {
		return 0, nil, err
	}
	resp, err := c.Client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	if retryableStatus(resp.StatusCode) {
		se := &statusError{code: resp.StatusCode}
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
				se.retryAfter = time.Duration(secs) * time.Second
			}
		}
		return resp.StatusCode, body, se
	}
	return resp.StatusCode, body, nil
}

// ErrDraining reports that a readiness target answered 503 with a
// draining status: the server is not starting up, it is leaving.
// Waiting longer can only waste the caller's deadline, so WaitReady
// fails immediately instead of retrying — the makespan-lb health
// checker relies on this to eject draining replicas promptly, and the
// e2e harnesses to fail loudly when they race a shutdown.
var ErrDraining = errors.New("target is draining")

// drainingStatus reports whether a non-200 healthz body advertises the
// draining state ({"status":"draining"}, the makespand convention).
func drainingStatus(body []byte) bool {
	var h struct {
		Status string `json:"status"`
	}
	return json.Unmarshal(body, &h) == nil && h.Status == "draining"
}

// WaitReady polls url with short per-attempt timeouts until it answers
// 200, ctx expires, or probe (when non-nil) reports the target dead.
// It is the replacement for fixed-sleep startup loops in the e2e
// harnesses: fast when the server is up, loud and prompt when it never
// will be. A 503 whose body advertises {"status":"draining"} fails
// immediately with ErrDraining: a draining server is leaving, not
// coming up, and retrying until the deadline would only hide that.
func WaitReady(ctx context.Context, url string, probe func() error) error {
	c := &http.Client{Timeout: 250 * time.Millisecond}
	t := time.NewTicker(20 * time.Millisecond)
	defer t.Stop()
	var lastErr error
	for {
		if probe != nil {
			if err := probe(); err != nil {
				return fmt.Errorf("httpx: target died while waiting for %s: %w", url, err)
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		resp, err := c.Do(req)
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			if resp.StatusCode == http.StatusServiceUnavailable && drainingStatus(body) {
				return fmt.Errorf("httpx: %s: %w", url, ErrDraining)
			}
			err = fmt.Errorf("status %d", resp.StatusCode)
		}
		lastErr = err
		select {
		case <-ctx.Done():
			return fmt.Errorf("httpx: %s not ready: %w (last error: %v)", url, ctx.Err(), lastErr)
		case <-t.C:
		}
	}
}
