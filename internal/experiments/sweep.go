package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/failure"
	"repro/internal/linalg"
	"repro/internal/montecarlo"
)

// SweepSpec is an extension experiment not in the paper: fix one graph and
// sweep the failure probability across decades, exposing the error-vs-λ
// scaling law of each estimator directly (First Order's error is O(λ²), so
// its relative-error curve must drop two decades per pfail decade until it
// hits the Monte Carlo noise floor).
type SweepSpec struct {
	Fact   linalg.Factorization
	K      int
	PFails []float64
}

// DefaultSweep sweeps LU k=10 across five decades of pfail.
func DefaultSweep() SweepSpec {
	return SweepSpec{
		Fact:   linalg.FactLU,
		K:      10,
		PFails: []float64{0.1, 0.01, 0.001, 0.0001, 0.00001},
	}
}

// SweepPoint is one pfail value of a sweep.
type SweepPoint struct {
	PFail  float64
	MCMean float64
	MCCI95 float64
	RelErr map[Method]float64
	Time   map[Method]time.Duration
}

// SweepResult is a fully evaluated sweep.
type SweepResult struct {
	Spec   SweepSpec
	Tasks  int
	Trials int
	Points []SweepPoint
}

// RunSweep evaluates the sweep.
func RunSweep(spec SweepSpec, opts Options) (SweepResult, error) {
	opts.normalize()
	g, err := linalg.Generate(spec.Fact, spec.K, linalg.KernelTimes{})
	if err != nil {
		return SweepResult{}, err
	}
	res := SweepResult{Spec: spec, Tasks: g.NumTasks(), Trials: opts.Trials}
	for i, pf := range spec.PFails {
		model, err := failure.FromPfail(pf, g.MeanWeight())
		if err != nil {
			return SweepResult{}, err
		}
		// Each pfail point gets its own derived seed: reusing opts.Seed
		// verbatim correlates the Monte Carlo noise across the sweep, so
		// every point of the error-vs-λ plot would share one noise floor.
		mc, err := montecarlo.Estimate(g, model, montecarlo.Config{Trials: opts.Trials, Seed: pointSeed(opts.Seed, i)})
		if err != nil {
			return SweepResult{}, err
		}
		p := SweepPoint{
			PFail:  pf,
			MCMean: mc.Mean,
			MCCI95: mc.CI95,
			RelErr: make(map[Method]float64, len(opts.Methods)),
			Time:   make(map[Method]time.Duration, len(opts.Methods)),
		}
		for _, m := range opts.Methods {
			est, dt, err := Estimate(m, g, model, opts.DodinMaxAtoms)
			if err != nil {
				return SweepResult{}, fmt.Errorf("sweep %s pfail=%g: %w", m, pf, err)
			}
			p.RelErr[m] = (est - mc.Mean) / mc.Mean
			p.Time[m] = dt
		}
		res.Points = append(res.Points, p)
		if opts.Progress != nil {
			opts.Progress(fmt.Sprintf("sweep: %s k=%d pfail=%g done", spec.Fact, spec.K, pf))
		}
	}
	return res, nil
}

// pointSeed derives an independent per-point seed from the user's seed
// and the sweep-point index via the SplitMix64 finalizer, so distinct
// points draw decorrelated Monte Carlo streams while a fixed opts.Seed
// still reproduces the whole sweep.
func pointSeed(seed uint64, point int) uint64 {
	z := seed + 0x9e3779b97f4a7c15*uint64(point+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// WriteSweep renders a sweep as an aligned text table.
func WriteSweep(w io.Writer, r SweepResult, methods []Method) error {
	if len(methods) == 0 {
		methods = sortedSweepMethods(r.Points)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Extension sweep: %s k=%d (%d tasks), relative error vs pfail (MC trials: %d)\n",
		factLabel(r.Spec.Fact), r.Spec.K, r.Tasks, r.Trials)
	fmt.Fprintf(&b, "%-10s %-14s %-10s", "pfail", "MC mean", "MC ±95%")
	for _, m := range methods {
		fmt.Fprintf(&b, " %14s", string(m))
	}
	b.WriteByte('\n')
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-10g %-14.6g %-10.3g", p.PFail, p.MCMean, p.MCCI95)
		for _, m := range methods {
			fmt.Fprintf(&b, " %14s", formatRelErr(p.RelErr[m]))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func sortedSweepMethods(points []SweepPoint) []Method {
	if len(points) == 0 {
		return nil
	}
	var out []Method
	for _, m := range AllMethods() {
		if _, ok := points[0].RelErr[m]; ok {
			out = append(out, m)
		}
	}
	return out
}
