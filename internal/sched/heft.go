package sched

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dag"
	"repro/internal/failure"
)

// Platform is a set of heterogeneous processors. Task i runs on processor
// p in time a_i / Speeds[p]; moving a dependency between two different
// processors costs Comm seconds (the classic uniform-communication HEFT
// simplification).
type Platform struct {
	// Speeds holds one positive speed per processor.
	Speeds []float64
	// Comm is the uniform cross-processor communication cost in seconds.
	Comm float64
}

// Uniform returns a platform of n identical unit-speed processors with
// zero communication cost.
func Uniform(n int) Platform {
	s := make([]float64, n)
	for i := range s {
		s[i] = 1
	}
	return Platform{Speeds: s}
}

// Validate checks the platform parameters.
func (p Platform) Validate() error {
	if len(p.Speeds) == 0 {
		return fmt.Errorf("sched: platform has no processors")
	}
	for i, s := range p.Speeds {
		if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return fmt.Errorf("sched: processor %d has speed %v", i, s)
		}
	}
	if p.Comm < 0 || math.IsNaN(p.Comm) {
		return fmt.Errorf("sched: negative communication cost %v", p.Comm)
	}
	return nil
}

func (p Platform) meanSpeed() float64 {
	var sum float64
	for _, s := range p.Speeds {
		sum += s
	}
	return sum / float64(len(p.Speeds))
}

// UpwardRanks returns HEFT's task priorities: rank_u(i) = w̄_i +
// max_{j ∈ Succ(i)} (Comm + rank_u(j)), with w̄_i the task's execution
// time at the platform's mean speed. weights lets callers substitute
// failure-inflated durations; pass nil for the graph's weights.
func UpwardRanks(g *dag.Graph, plat Platform, weights []float64) ([]float64, error) {
	if err := plat.Validate(); err != nil {
		return nil, err
	}
	f, err := dag.Freeze(g)
	if err != nil {
		return nil, err
	}
	return upwardRanksFrozen(f, plat, weights)
}

// upwardRanksFrozen is UpwardRanks on a prepared frozen graph: a reverse
// sweep over the CSR successor arrays. Callers have validated plat.
func upwardRanksFrozen(f *dag.Frozen, plat Platform, weights []float64) ([]float64, error) {
	n := f.NumTasks()
	wTopo := f.WeightsTopo()
	if weights != nil {
		if len(weights) != n {
			return nil, fmt.Errorf("sched: %d weights for %d tasks", len(weights), n)
		}
		wTopo = f.Gather(make([]float64, n), weights)
	}
	mean := plat.meanSpeed()
	rank := make([]float64, n)
	for k := n - 1; k >= 0; k-- {
		best := 0.0
		for _, s := range f.SuccTopo(k) {
			if c := plat.Comm + rank[s]; c > best {
				best = c
			}
		}
		rank[k] = wTopo[k]/mean + best
	}
	return f.Scatter(make([]float64, n), rank), nil
}

// busyInterval is one reserved slot on a processor, kept sorted by start.
type busyInterval struct{ start, end float64 }

// insertEarliest finds the earliest start ≥ ready on the interval list
// that fits duration, using HEFT's insertion policy, and reserves it.
func insertEarliest(ivs *[]busyInterval, ready, duration float64) (start float64) {
	list := *ivs
	prevEnd := ready
	for i, iv := range list {
		if prevEnd+duration <= iv.start+1e-15 {
			// Fits in the gap before interval i.
			*ivs = append(list[:i], append([]busyInterval{{prevEnd, prevEnd + duration}}, list[i:]...)...)
			return prevEnd
		}
		if iv.end > prevEnd {
			prevEnd = iv.end
		}
	}
	*ivs = append(list, busyInterval{prevEnd, prevEnd + duration})
	return prevEnd
}

// HEFT schedules g on the platform with the HEFT algorithm (Topcuoglu et
// al. 2002, the heterogeneous CP-scheduling extension the paper cites):
// tasks in decreasing upward rank, each placed on the processor minimizing
// its earliest finish time under the insertion policy. weights substitutes
// failure-inflated durations for both ranking and placement when non-nil —
// passing failure.Model expected durations makes this the failure-aware
// HEFT variant enabled by the paper's approximation.
func HEFT(g *dag.Graph, plat Platform, weights []float64) (Schedule, error) {
	if err := plat.Validate(); err != nil {
		return Schedule{}, err
	}
	f, err := dag.Freeze(g)
	if err != nil {
		return Schedule{}, err
	}
	n := g.NumTasks()
	if weights == nil {
		weights = g.Weights()
	} else if len(weights) != n {
		return Schedule{}, fmt.Errorf("sched: %d weights for %d tasks", len(weights), n)
	}
	ranks, err := upwardRanksFrozen(f, plat, weights)
	if err != nil {
		return Schedule{}, err
	}
	// Decreasing rank is a topological order up to ties (rank[pred] ≥
	// rank[succ] since weights and comm are non-negative); breaking ties
	// by topological position makes it one unconditionally.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if ranks[order[a]] != ranks[order[b]] {
			return ranks[order[a]] > ranks[order[b]]
		}
		return f.Pos(order[a]) < f.Pos(order[b])
	})
	s := Schedule{
		Start:    make([]float64, n),
		Finish:   make([]float64, n),
		Proc:     make([]int, n),
		Attempts: make([]int, n),
	}
	for i := range s.Proc {
		s.Proc[i] = -1
		s.Attempts[i] = 1
	}
	busy := make([][]busyInterval, len(plat.Speeds))
	scheduled := make([]bool, n)
	for _, v := range order {
		for _, p := range g.Pred(v) {
			if !scheduled[p] {
				return Schedule{}, fmt.Errorf("sched: internal error: %d visited before predecessor %d", v, p)
			}
		}
		bestProc, bestStart, bestFinish := -1, 0.0, math.Inf(1)
		for p := range plat.Speeds {
			ready := 0.0
			for _, pred := range g.Pred(v) {
				arr := s.Finish[pred]
				if s.Proc[pred] != p {
					arr += plat.Comm
				}
				if arr > ready {
					ready = arr
				}
			}
			dur := weights[v] / plat.Speeds[p]
			// Probe without reserving.
			probe := append([]busyInterval(nil), busy[p]...)
			start := insertEarliest(&probe, ready, dur)
			if start+dur < bestFinish {
				bestProc, bestStart, bestFinish = p, start, start+dur
			}
		}
		dur := weights[v] / plat.Speeds[bestProc]
		insertEarliest(&busy[bestProc], bestStart, dur)
		s.Start[v] = bestStart
		s.Finish[v] = bestFinish
		s.Proc[v] = bestProc
		scheduled[v] = true
		if bestFinish > s.Makespan {
			s.Makespan = bestFinish
		}
	}
	// The insertion policy can start a later-placed task earlier in time,
	// so the dispatch record is reconstructed from the final start times.
	// Ties (zero-weight tasks sharing an instant) break by processor and
	// then by topological position — never by raw ID — so Order always
	// lists a task after its predecessors, keeping the documented
	// Schedule.Order contract (chain edges compiled from it can never
	// oppose a precedence edge).
	s.Order = append(make([]int, 0, n), order...)
	sort.Slice(s.Order, func(a, b int) bool {
		u, v := s.Order[a], s.Order[b]
		if s.Start[u] != s.Start[v] {
			return s.Start[u] < s.Start[v]
		}
		if s.Proc[u] != s.Proc[v] {
			return s.Proc[u] < s.Proc[v]
		}
		return f.Pos(u) < f.Pos(v)
	})
	return s, nil
}

// FailureAwareWeights returns the expected task durations a_i·e^{λ a_i}
// under re-execution until success, the natural input for a
// failure-aware HEFT.
func FailureAwareWeights(g *dag.Graph, model failure.Model) []float64 {
	w := make([]float64, g.NumTasks())
	for i := range w {
		w[i] = model.ExpectedTime(g.Weight(i))
	}
	return w
}
