package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/linalg"
)

func TestDefaultSweepSpec(t *testing.T) {
	s := DefaultSweep()
	if s.Fact != linalg.FactLU || s.K != 10 || len(s.PFails) != 5 {
		t.Fatalf("spec = %+v", s)
	}
}

func TestRunSweepErrorDropsWithPfail(t *testing.T) {
	spec := SweepSpec{Fact: linalg.FactCholesky, K: 5, PFails: []float64{0.05, 0.005}}
	res, err := RunSweep(spec, Options{Trials: 60000, Seed: 7, Methods: []Method{MethodFirstOrder}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Tasks != linalg.CholeskyTaskCount(5) {
		t.Fatalf("tasks = %d", res.Tasks)
	}
	hi := math.Abs(res.Points[0].RelErr[MethodFirstOrder])
	lo := math.Abs(res.Points[1].RelErr[MethodFirstOrder])
	// One decade of pfail should shrink First Order's error well below the
	// high-pfail level (O(λ²) predicts 100×; MC noise bounds what is
	// observable, so demand only a clear drop).
	if lo > hi/3 {
		t.Fatalf("First Order error did not drop with pfail: %v -> %v", hi, lo)
	}
}

func TestRunSweepUnknownMethod(t *testing.T) {
	spec := SweepSpec{Fact: linalg.FactCholesky, K: 4, PFails: []float64{0.01}}
	if _, err := RunSweep(spec, Options{Trials: 1000, Methods: []Method{"bogus"}}); err == nil {
		t.Fatal("bogus method accepted")
	}
}

func TestRunSweepBadSpec(t *testing.T) {
	if _, err := RunSweep(SweepSpec{Fact: "nope", K: 4, PFails: []float64{0.1}}, Options{Trials: 100}); err == nil {
		t.Fatal("bad factorization accepted")
	}
	if _, err := RunSweep(SweepSpec{Fact: linalg.FactLU, K: 4, PFails: []float64{2}}, Options{Trials: 100}); err == nil {
		t.Fatal("pfail=2 accepted")
	}
}

func TestWriteSweep(t *testing.T) {
	spec := SweepSpec{Fact: linalg.FactQR, K: 4, PFails: []float64{0.01, 0.001}}
	var progress int
	res, err := RunSweep(spec, Options{Trials: 2000, Seed: 1, Progress: func(string) { progress++ }})
	if err != nil {
		t.Fatal(err)
	}
	if progress != 2 {
		t.Fatalf("progress calls = %d", progress)
	}
	var buf bytes.Buffer
	if err := WriteSweep(&buf, res, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Extension sweep: QR k=4", "pfail", "First Order", "0.001"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep table missing %q:\n%s", want, out)
		}
	}
}

// The sweep must not feed the same Monte Carlo seed to every pfail point
// (correlated noise across the error-vs-λ plot); the derived seeds are
// deterministic in opts.Seed but pairwise distinct.
func TestSweepPointSeedsDecorrelated(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 64; i++ {
		s := pointSeed(42, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("points %d and %d share seed %d", prev, i, s)
		}
		seen[s] = i
	}
	if pointSeed(42, 0) != pointSeed(42, 0) {
		t.Fatal("pointSeed not deterministic")
	}
	if pointSeed(42, 0) == 42 {
		t.Fatal("point 0 reuses the raw seed verbatim")
	}
}
