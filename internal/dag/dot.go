package dag

import (
	"fmt"
	"io"
	"strings"
)

// DotOptions controls DOT rendering.
type DotOptions struct {
	// GraphName is the graph identifier; defaults to "G".
	GraphName string
	// ShowWeights appends the task weight to each label.
	ShowWeights bool
	// Highlight marks the given tasks (e.g. a critical path) in red.
	Highlight []int
	// RankDir sets the layout direction ("TB" default, "LR" for wide DAGs).
	RankDir string
}

// WriteDot renders g in Graphviz DOT format, suitable for reproducing the
// paper's Figures 1-3 (the Cholesky/LU/QR DAG drawings).
func WriteDot(w io.Writer, g *Graph, opts DotOptions) error {
	name := opts.GraphName
	if name == "" {
		name = "G"
	}
	hl := make(map[int]bool, len(opts.Highlight))
	for _, v := range opts.Highlight {
		hl[v] = true
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n", dotID(name))
	if opts.RankDir != "" {
		fmt.Fprintf(&b, "  rankdir=%s;\n", opts.RankDir)
	}
	b.WriteString("  node [shape=box, style=rounded];\n")
	for i := 0; i < g.NumTasks(); i++ {
		label := g.Name(i)
		if label == "" {
			label = fmt.Sprintf("T%d", i)
		}
		if opts.ShowWeights {
			label = fmt.Sprintf("%s\\n%.4g", label, g.Weight(i))
		}
		attrs := fmt.Sprintf("label=\"%s\"", label)
		if hl[i] {
			attrs += ", color=red, fontcolor=red"
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", i, attrs)
	}
	for u := 0; u < g.NumTasks(); u++ {
		for _, v := range g.Succ(u) {
			style := ""
			if hl[u] && hl[v] {
				style = " [color=red]"
			}
			fmt.Fprintf(&b, "  n%d -> n%d%s;\n", u, v, style)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func dotID(s string) string {
	ok := len(s) > 0
	for _, r := range s {
		if !(r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9') {
			ok = false
			break
		}
	}
	if ok {
		return s
	}
	return fmt.Sprintf("%q", s)
}
