package distribution

import (
	"math"
	"math/rand"
	"testing"
)

// randomDiscrete builds a valid distribution with n atoms. Lattice mode
// places values on multiples of a step so the convolution has many exact
// ties, stressing the merge kernel's tie accumulation.
func randomDiscrete(rng *rand.Rand, n int, lattice bool) Discrete {
	vals := make([]float64, n)
	prbs := make([]float64, n)
	for i := range vals {
		if lattice {
			vals[i] = 0.25 * float64(rng.Intn(8*n))
		} else {
			vals[i] = rng.Float64() * 10
		}
		prbs[i] = rng.ExpFloat64() + 1e-6
	}
	total := 0.0
	for _, p := range prbs {
		total += p
	}
	for i := range prbs {
		prbs[i] /= total
	}
	d, err := NewDiscrete(vals, prbs)
	if err != nil {
		panic(err)
	}
	return d
}

func bitEqual(a, b Discrete) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		av, ap := a.Atom(i)
		bv, bp := b.Atom(i)
		if math.Float64bits(av) != math.Float64bits(bv) || math.Float64bits(ap) != math.Float64bits(bp) {
			return false
		}
	}
	return true
}

// ulpsApart returns the distance in representable float64 steps; both
// arguments must be finite and positive.
func ulpsApart(a, b float64) uint64 {
	ia, ib := math.Float64bits(a), math.Float64bits(b)
	if ia > ib {
		return ia - ib
	}
	return ib - ia
}

// nearlyEqual accepts per-atom differences of a few ULPs from the naive
// oracle: tie runs are summed in a different order than its unstable
// sort, which can move probabilities (and, once binned, the bin-mean
// values) by an ULP. valueUlps = 0 demands exact value bits.
func nearlyEqual(t *testing.T, name string, a, b Discrete, valueUlps, probUlps uint64) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: len %d vs naive %d", name, a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		av, ap := a.Atom(i)
		bv, bp := b.Atom(i)
		if ulpsApart(av, bv) > valueUlps {
			t.Fatalf("%s: value[%d] %v vs naive %v (%d ulps)", name, i, av, bv, ulpsApart(av, bv))
		}
		if ulpsApart(ap, bp) > probUlps {
			t.Fatalf("%s: prob[%d] %v vs naive %v (%d ulps)", name, i, ap, bp, ulpsApart(ap, bp))
		}
	}
}

// --- bit-parity of the merge kernel against the preserved naive oracle ---

func TestAddParityRandomSupports(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 400; trial++ {
		d := randomDiscrete(rng, 1+rng.Intn(40), false)
		o := randomDiscrete(rng, 1+rng.Intn(40), false)
		got, want := d.Add(o), addNaive(d, o)
		if !bitEqual(got, want) {
			t.Fatalf("trial %d: merge Add differs from naive\n got %v\nwant %v", trial, got, want)
		}
	}
}

// On lattice supports the convolution has many exact value ties; runs of
// two tie atoms sum commutatively so most results are still bit-equal,
// but runs of three or more may differ from the naive oracle's unstable
// sort order by an ULP. Values must match exactly; probabilities within
// a few ULPs; means effectively exactly.
func TestAddParityLatticeSupports(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 400; trial++ {
		d := randomDiscrete(rng, 1+rng.Intn(24), true)
		o := randomDiscrete(rng, 1+rng.Intn(24), true)
		got, want := d.Add(o), addNaive(d, o)
		nearlyEqual(t, "lattice Add", got, want, 0, 4)
		if rel := math.Abs(got.Mean()-want.Mean()) / math.Abs(want.Mean()); rel > 1e-14 {
			t.Fatalf("trial %d: mean drifted %v", trial, rel)
		}
	}
}

func TestAddParityTwoState(t *testing.T) {
	// The estimator workloads convolve long chains against 2-atom task
	// distributions; ties are at most 2-way there, so bit parity is exact.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		acc, err := TwoState(1.5, 0.99)
		if err != nil {
			t.Fatal(err)
		}
		accNaive := acc
		for step := 0; step < 6; step++ {
			x, err := TwoState(1.5, 0.9+0.09*rng.Float64())
			if err != nil {
				t.Fatal(err)
			}
			acc = acc.Add(x)
			accNaive = addNaive(accNaive, x)
			if !bitEqual(acc, accNaive) {
				t.Fatalf("trial %d step %d: TwoState chain diverged", trial, step)
			}
		}
	}
}

func TestMaxIndParity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 400; trial++ {
		lattice := trial%2 == 0
		d := randomDiscrete(rng, 1+rng.Intn(40), lattice)
		o := randomDiscrete(rng, 1+rng.Intn(40), lattice)
		got, want := d.MaxInd(o), maxIndNaive(d, o)
		if !bitEqual(got, want) {
			t.Fatalf("trial %d: merge MaxInd differs from naive", trial)
		}
	}
}

func TestAddCappedParityWithRediscretize(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := &Scratch{}
	for trial := 0; trial < 400; trial++ {
		lattice := trial%3 == 0
		d := randomDiscrete(rng, 1+rng.Intn(40), lattice)
		o := randomDiscrete(rng, 1+rng.Intn(40), lattice)
		for _, maxAtoms := range []int{1, 2, 7, 16, 64, 200} {
			got := d.AddCapped(o, maxAtoms, s)
			want := addNaive(d, o).Rediscretize(maxAtoms)
			if lattice {
				nearlyEqual(t, "capped lattice Add", got, want, 8, 8)
			} else if !bitEqual(got, want) {
				t.Fatalf("trial %d cap %d: AddCapped differs from naive+Rediscretize\n got %v\nwant %v",
					trial, maxAtoms, got, want)
			}
			if got.Len() > maxAtoms {
				t.Fatalf("cap %d produced %d atoms", maxAtoms, got.Len())
			}
		}
	}
}

func TestMaxIndCappedParityWithRediscretize(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := &Scratch{}
	for trial := 0; trial < 400; trial++ {
		d := randomDiscrete(rng, 1+rng.Intn(60), trial%2 == 0)
		o := randomDiscrete(rng, 1+rng.Intn(60), trial%2 == 0)
		for _, maxAtoms := range []int{1, 3, 16, 64} {
			got := d.MaxIndCapped(o, maxAtoms, s)
			want := maxIndNaive(d, o).Rediscretize(maxAtoms)
			if !bitEqual(got, want) {
				t.Fatalf("trial %d cap %d: MaxIndCapped differs from naive+Rediscretize", trial, maxAtoms)
			}
		}
	}
}

// --- properties of the fused ops: the invariants every operator must keep ---

func checkInvariants(t *testing.T, name string, d Discrete) {
	t.Helper()
	if d.Len() == 0 {
		t.Fatalf("%s: empty distribution", name)
	}
	total := 0.0
	prev := math.Inf(-1)
	for i := 0; i < d.Len(); i++ {
		v, p := d.Atom(i)
		if v <= prev {
			t.Fatalf("%s: values not strictly increasing at %d (%v after %v)", name, i, v, prev)
		}
		if p <= 0 || math.IsNaN(p) {
			t.Fatalf("%s: bad probability %v at %d", name, p, i)
		}
		prev = v
		total += p
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("%s: probabilities sum to %v", name, total)
	}
}

func TestFusedOpsInvariantsAndMeans(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := &Scratch{}
	for trial := 0; trial < 300; trial++ {
		d := randomDiscrete(rng, 1+rng.Intn(50), trial%2 == 0)
		o := randomDiscrete(rng, 1+rng.Intn(50), trial%2 == 0)
		sum := d.Add(o)
		checkInvariants(t, "Add", sum)
		if rel := math.Abs(sum.Mean()-(d.Mean()+o.Mean())) / (d.Mean() + o.Mean() + 1); rel > 1e-12 {
			t.Fatalf("Add mean %v != %v + %v", sum.Mean(), d.Mean(), o.Mean())
		}
		mx := d.MaxInd(o)
		checkInvariants(t, "MaxInd", mx)
		if mx.Mean() < math.Max(d.Mean(), o.Mean())-1e-9 {
			t.Fatalf("MaxInd mean %v below operand means %v, %v", mx.Mean(), d.Mean(), o.Mean())
		}
		for _, maxAtoms := range []int{2, 16, 64} {
			cs := d.AddCapped(o, maxAtoms, s)
			checkInvariants(t, "AddCapped", cs)
			// Rediscretize and the fused capped ops are mean-preserving:
			// the binned mean must match the exact convolution mean to
			// rounding error (the PR's 1e-9 acceptance bound is loose).
			if rel := math.Abs(cs.Mean()-sum.Mean()) / sum.Mean(); rel > 1e-12 {
				t.Fatalf("AddCapped(%d) mean drifted by %v", maxAtoms, rel)
			}
			cm := d.MaxIndCapped(o, maxAtoms, s)
			checkInvariants(t, "MaxIndCapped", cm)
			if rel := math.Abs(cm.Mean()-mx.Mean()) / mx.Mean(); rel > 1e-12 {
				t.Fatalf("MaxIndCapped(%d) mean drifted by %v", maxAtoms, rel)
			}
		}
	}
}

func TestRediscretizePreservesMeanExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		d := randomDiscrete(rng, 2+rng.Intn(200), false)
		for _, maxAtoms := range []int{1, 2, 16, 64} {
			r := d.Rediscretize(maxAtoms)
			if r.Len() > maxAtoms {
				t.Fatalf("Rediscretize(%d) kept %d atoms", maxAtoms, r.Len())
			}
			if rel := math.Abs(r.Mean()-d.Mean()) / d.Mean(); rel > 1e-12 {
				t.Fatalf("Rediscretize(%d) mean drifted by %v", maxAtoms, rel)
			}
		}
	}
}

func TestAddCappedNeverExpandsScratchUnbounded(t *testing.T) {
	// The fused capped op must not materialize the n·m product: its
	// staging buffers stay O(maxAtoms), not O(n·m).
	rng := rand.New(rand.NewSource(9))
	d := randomDiscrete(rng, 64, false)
	o := randomDiscrete(rng, 64, false)
	s := &Scratch{}
	const maxAtoms = 64
	got := d.AddCapped(o, maxAtoms, s)
	checkInvariants(t, "AddCapped", got)
	if cap(s.vals) > 4*(maxAtoms+1) {
		t.Fatalf("capped Add staged %d atoms; the full product is %d", cap(s.vals), d.Len()*o.Len())
	}
}

// --- fuzz: random operands through every op, invariants + naive agreement ---

func FuzzConvolutionOps(f *testing.F) {
	f.Add(int64(1), 5, 7, false, 16)
	f.Add(int64(2), 1, 1, true, 1)
	f.Add(int64(3), 30, 2, true, 64)
	f.Add(int64(4), 12, 12, false, 0)
	f.Fuzz(func(t *testing.T, seed int64, n, m int, lattice bool, maxAtoms int) {
		if n < 1 || n > 80 || m < 1 || m > 80 || maxAtoms < 0 || maxAtoms > 256 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		d := randomDiscrete(rng, n, lattice)
		o := randomDiscrete(rng, m, lattice)
		s := &Scratch{}

		sum := d.AddCapped(o, maxAtoms, s)
		checkInvariants(t, "AddCapped", sum)
		wantSum := addNaive(d, o)
		if maxAtoms > 0 {
			wantSum = wantSum.Rediscretize(maxAtoms)
		}
		nearlyEqual(t, "fuzz Add", sum, wantSum, 8, 8)

		mx := d.MaxIndCapped(o, maxAtoms, s)
		checkInvariants(t, "MaxIndCapped", mx)
		wantMx := maxIndNaive(d, o)
		if maxAtoms > 0 {
			wantMx = wantMx.Rediscretize(maxAtoms)
		}
		if !bitEqual(mx, wantMx) {
			t.Fatalf("MaxIndCapped differs from naive oracle")
		}
	})
}
