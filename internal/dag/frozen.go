package dag

import (
	"fmt"
	"math"
)

// Frozen is an immutable, cache-friendly compiled form of a Graph: the
// adjacency lists are flattened into CSR-style arrays and every per-task
// vector is permuted into topological order, so the longest-path recurrence
// streams memory sequentially instead of chasing slices of slices. All hot
// consumers (Monte Carlo trials, the analytic estimators, list scheduling)
// evaluate against a Frozen.
//
// Layout: position k in [0, n) is the k-th task of the cached topological
// order. predAdj[predOff[k]:predOff[k+1]] holds the predecessors of
// position k as positions (all strictly smaller than k), in the same order
// as Graph.Pred, so order-sensitive folds reproduce the slice-of-slices
// results bit for bit. succAdj/succOff mirror this for successors.
//
// A Frozen is a snapshot: it is safe for concurrent read-only use, and
// mutating the source Graph afterwards (AddTask, AddEdge, SetWeight) does
// not affect it. Use UpToDate to detect staleness and re-Freeze.
type Frozen struct {
	n       int
	order   []int32   // topo position -> task id
	pos     []int32   // task id -> topo position
	predOff []int32   // CSR offsets into predAdj, len n+1
	predAdj []int32   // predecessor positions, grouped by position
	succOff []int32   // CSR offsets into succAdj, len n+1
	succAdj []int32   // successor positions, grouped by position
	wTopo   []float64 // task weights permuted into topo order
	// identity is true when the topological order is 0,1,...,n-1, i.e. the
	// graph was built in topo order (all generators do); Gather/Scatter
	// then degrade to copies and evaluators can skip permutation entirely.
	identity bool
	g        *Graph
	version  uint64
}

// Freeze compiles g into its frozen representation. It fails on cyclic
// graphs, like TopoOrder.
func Freeze(g *Graph) (*Frozen, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := g.NumTasks()
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("dag: %d tasks exceed the frozen representation limit", n)
	}
	if g.NumEdges() > math.MaxInt32 {
		return nil, fmt.Errorf("dag: %d edges exceed the frozen representation limit", g.NumEdges())
	}
	f := &Frozen{
		n:       n,
		order:   make([]int32, n),
		pos:     make([]int32, n),
		predOff: make([]int32, n+1),
		predAdj: make([]int32, g.NumEdges()),
		succOff: make([]int32, n+1),
		succAdj: make([]int32, g.NumEdges()),
		wTopo:   make([]float64, n),
		g:       g,
		version: g.version,
	}
	f.identity = true
	for k, v := range order {
		f.order[k] = int32(v)
		f.pos[v] = int32(k)
		if k != v {
			f.identity = false
		}
	}
	var po, so int32
	for k := 0; k < n; k++ {
		v := order[k]
		f.predOff[k] = po
		for _, p := range g.pred[v] {
			f.predAdj[po] = f.pos[p]
			po++
		}
		f.succOff[k] = so
		for _, s := range g.succ[v] {
			f.succAdj[so] = f.pos[s]
			so++
		}
		f.wTopo[k] = g.weights[v]
	}
	f.predOff[n] = po
	f.succOff[n] = so
	return f, nil
}

// Graph returns the source graph.
func (f *Frozen) Graph() *Graph { return f.g }

// SizeBytes reports the approximate retained heap size of the frozen
// representation itself — the permutation, CSR adjacency and weight
// arrays — excluding the source graph. Cache layers (the makespand graph
// registry) use it for byte budgeting.
func (f *Frozen) SizeBytes() int64 {
	const (
		i32 = 4
		f64 = 8
	)
	s := int64(len(f.order)+len(f.pos)+len(f.predOff)+len(f.predAdj)+len(f.succOff)+len(f.succAdj)) * i32
	s += int64(len(f.wTopo)) * f64
	return s + 64 // struct header
}

// NumTasks returns the number of tasks.
func (f *Frozen) NumTasks() int { return f.n }

// UpToDate reports whether the source graph is unchanged since Freeze.
// A stale Frozen still evaluates the snapshot it was built from.
func (f *Frozen) UpToDate() bool { return f.version == f.g.version }

// TaskID maps a topological position to the task ID it holds.
func (f *Frozen) TaskID(k int) int { return int(f.order[k]) }

// Pos maps a task ID to its topological position.
func (f *Frozen) Pos(id int) int { return int(f.pos[id]) }

// WeightsTopo returns the snapshot weights in topological order. The slice
// is owned by the Frozen and must not be mutated.
func (f *Frozen) WeightsTopo() []float64 { return f.wTopo }

// PredTopo returns the predecessors of position k as positions (< k), in
// Graph.Pred order. Owned by the Frozen; do not mutate.
func (f *Frozen) PredTopo(k int) []int32 { return f.predAdj[f.predOff[k]:f.predOff[k+1]] }

// SuccTopo returns the successors of position k as positions (> k), in
// Graph.Succ order. Owned by the Frozen; do not mutate.
func (f *Frozen) SuccTopo(k int) []int32 { return f.succAdj[f.succOff[k]:f.succOff[k+1]] }

// InDegreeTopo returns the number of predecessors of position k.
func (f *Frozen) InDegreeTopo(k int) int { return int(f.predOff[k+1] - f.predOff[k]) }

// OutDegreeTopo returns the number of successors of position k.
func (f *Frozen) OutDegreeTopo(k int) int { return int(f.succOff[k+1] - f.succOff[k]) }

// Gather permutes a task-ID-indexed vector into topological order:
// dst[k] = src[TaskID(k)]. dst must have length NumTasks; it is returned.
func (f *Frozen) Gather(dst, src []float64) []float64 {
	if f.identity {
		copy(dst, src)
		return dst
	}
	for k, id := range f.order {
		dst[k] = src[id]
	}
	return dst
}

// Scatter permutes a topo-order vector back to task-ID order:
// dst[TaskID(k)] = src[k]. dst must have length NumTasks; it is returned.
func (f *Frozen) Scatter(dst, src []float64) []float64 {
	if f.identity {
		copy(dst, src)
		return dst
	}
	for k, id := range f.order {
		dst[id] = src[k]
	}
	return dst
}

// PredCSR returns the raw predecessor adjacency in CSR form: the
// predecessors of position k are adj[off[k]:off[k+1]], in Graph.Pred
// order, as positions strictly smaller than k. Both slices are owned by
// the Frozen and must not be mutated. Batch evaluators (the Monte Carlo
// lane kernel) stream these arrays directly.
func (f *Frozen) PredCSR() (off, adj []int32) { return f.predOff, f.predAdj }

// MakespanTopo computes the makespan for the topo-order weight vector w,
// writing per-position completion times into the caller's scratch comp.
// Both slices must have length NumTasks. This is the Monte Carlo inner
// kernel: one sequential pass, no allocation, no pointer chasing.
func (f *Frozen) MakespanTopo(w, comp []float64) float64 {
	if len(w) != f.n || len(comp) != f.n {
		panic(fmt.Sprintf("dag: frozen kernel wants %d weights, got w=%d comp=%d", f.n, len(w), len(comp)))
	}
	adj, off := f.predAdj, f.predOff
	best := 0.0
	o := 0
	for k := range w {
		start := 0.0
		for end := int(off[k+1]); o < end; o++ {
			if c := comp[adj[o]]; c > start {
				start = c
			}
		}
		c := start + w[k]
		comp[k] = c
		if c > best {
			best = c
		}
	}
	return best
}

// TailsTopo fills tail[k] with the length of the longest path starting at
// position k (inclusive of its weight), for the topo-order weight vector w.
// Both slices must have length NumTasks.
func (f *Frozen) TailsTopo(w, tail []float64) {
	if len(w) != f.n || len(tail) != f.n {
		panic(fmt.Sprintf("dag: frozen kernel wants %d weights, got w=%d tail=%d", f.n, len(w), len(tail)))
	}
	adj, off := f.succAdj, f.succOff
	o := len(adj)
	for k := f.n - 1; k >= 0; k-- {
		t := 0.0
		for end := int(off[k]); o > end; {
			o--
			if s := tail[adj[o]]; s > t {
				t = s
			}
		}
		tail[k] = t + w[k]
	}
}

// Makespan returns the failure-free makespan of the snapshot weights,
// allocating transient scratch. For repeated evaluation use MakespanTopo
// with reused buffers (or a PathEvaluator).
func (f *Frozen) Makespan() float64 {
	comp := make([]float64, f.n)
	return f.MakespanTopo(f.wTopo, comp)
}
