// Package experiments defines and runs the paper's evaluation (§V): the
// nine relative-error figures (Figures 4-12: three factorizations × three
// failure probabilities, graph sizes k = 4..12) and the Table I
// scalability study (LU k=20). Each experiment compares the First Order,
// Dodin and Normal estimators against a Monte Carlo ground truth and
// reports the normalized difference (approx − MC)/MC, exactly the quantity
// on the paper's vertical axes (negative = underestimation).
package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/failure"
	"repro/internal/linalg"
	"repro/internal/montecarlo"
	"repro/internal/normal"
	"repro/internal/spgraph"
)

// Method identifies an expected-makespan estimator.
type Method string

// The estimators. The paper's three are FirstOrder, Dodin and Normal
// (Normal is the correlation-aware CorLCA sweep, see DESIGN.md §4);
// Sculli and SecondOrder are the additional baselines this repository
// implements.
const (
	MethodFirstOrder  Method = "First Order"
	MethodDodin       Method = "Dodin"
	MethodNormal      Method = "Normal"
	MethodSculli      Method = "Sculli"
	MethodSecondOrder Method = "Second Order"
)

// PaperMethods lists the three methods of the paper's evaluation, in its
// plotting order.
func PaperMethods() []Method {
	return []Method{MethodDodin, MethodNormal, MethodFirstOrder}
}

// AllMethods lists every implemented estimator.
func AllMethods() []Method {
	return []Method{MethodDodin, MethodNormal, MethodSculli, MethodFirstOrder, MethodSecondOrder}
}

// ParseMethods resolves a method selector shared by the makespan CLI's
// -methods flag and the service's "methods" request field: "paper" is
// PaperMethods, "all" or the empty string is AllMethods, anything else a
// comma-separated list of method names. Unknown names are rejected so a
// typo fails fast instead of surfacing later from Estimate.
func ParseMethods(sel string) ([]Method, error) {
	switch sel {
	case "paper":
		return PaperMethods(), nil
	case "all", "":
		return AllMethods(), nil
	}
	known := make(map[Method]bool, len(AllMethods()))
	for _, m := range AllMethods() {
		known[m] = true
	}
	var out []Method
	start := 0
	s := sel
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				m := Method(s[start:i])
				if !known[m] {
					return nil, fmt.Errorf("experiments: unknown method %q", m)
				}
				out = append(out, m)
			}
			start = i + 1
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: empty method list %q", sel)
	}
	return out, nil
}

// Estimate runs one estimator on g under model, returning the estimate and
// its wall-clock time.
func Estimate(m Method, g *dag.Graph, model failure.Model, dodinAtoms int) (float64, time.Duration, error) {
	t0 := time.Now()
	var est float64
	var err error
	switch m {
	case MethodFirstOrder:
		var r core.FirstOrderResult
		r, err = core.FirstOrder(g, model)
		est = r.Estimate
	case MethodSecondOrder:
		var r core.SecondOrderResult
		r, err = core.SecondOrder(g, model)
		est = r.Estimate
	case MethodDodin:
		var r spgraph.Result
		r, _, err = spgraph.Dodin(g, model, dodinAtoms)
		est = r.Estimate
	case MethodNormal:
		var r normal.Result
		r, err = normal.CorLCA(g, model)
		est = r.Estimate
	case MethodSculli:
		var r normal.Result
		r, err = normal.Sculli(g, model)
		est = r.Estimate
	default:
		return 0, 0, fmt.Errorf("experiments: unknown method %q", m)
	}
	return est, time.Since(t0), err
}

// Options tunes an experiment run; the zero value reproduces the paper's
// setup at full fidelity (300,000 Monte Carlo trials).
type Options struct {
	// Trials overrides the Monte Carlo trial count (0 = paper's 300,000,
	// unless Tolerance selects adaptive stopping).
	Trials int
	// Tolerance, TargetQuantile, Confidence and MaxTrials select adaptive
	// sequential stopping for the Monte Carlo cells, with exactly
	// montecarlo.Config's semantics: Tolerance > 0 runs each point's
	// chunk stream until the target statistic's CI half-width is within
	// tolerance (Trials must then be 0; MaxTrials caps each point).
	Tolerance      float64
	TargetQuantile float64
	Confidence     float64
	MaxTrials      int
	// Seed seeds the Monte Carlo streams.
	Seed uint64
	// Methods selects estimators (nil = the paper's three).
	Methods []Method
	// DodinMaxAtoms caps Dodin's distribution supports
	// (0 = spgraph.DefaultMaxAtoms).
	DodinMaxAtoms int
	// Ks overrides the graph sizes (nil = the figure's own sizes).
	Ks []int
	// Workers is the total CPU budget of the run: the cell scheduler runs
	// up to Workers (point × method) cells concurrently; Monte Carlo
	// cells are serialized among themselves and each uses the full
	// budget (the MC engine scales internally), so the run stays near
	// Workers goroutines no matter how cells and trials are shaped.
	// 0 selects GOMAXPROCS; negative is a configuration error. Results
	// are byte-identical for every value; only wall clock changes. Note
	// per-method Time values are wall-clock under that concurrency —
	// cells contend for cores — so for isolated method timings run with
	// Workers: 1.
	Workers int
	// Progress, when non-nil, receives one line per completed data point,
	// always in point order regardless of Workers.
	Progress func(string)
	// Artifacts, when non-nil, is the artifact store sweeps resolve
	// their shared per-graph artifacts through: the frozen graph, the
	// recorded Dodin reduction schedule (one per (graph, atom cap),
	// replayed bit-identically at every pfail) and the compiled Monte
	// Carlo estimator per (graph, λ). The makespand service passes its
	// registry's store so sweeps stay warm across requests; the
	// experiments CLI passes one process-local store so repeated stages
	// share artifacts by construction. Nil runs sweeps on a private
	// throwaway store. Figure and table runs use the store only to
	// dedupe graph freezing — their per-method cells stay cold so the
	// reported timings keep measuring full reductions (Table I compares
	// method execution times).
	Artifacts *artifact.Store
	// Context, when non-nil, bounds the run: cancellation is observed
	// between cells and at Monte Carlo chunk boundaries, and a cancelled
	// run returns ctx.Err() without ever reporting partial points. Nil
	// means context.Background() — no cancellation checks on the hot
	// path.
	Context context.Context
}

// ctx resolves the run's context (nil Context = Background).
func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

func (o *Options) normalize() error {
	if o.Workers < 0 {
		return fmt.Errorf("experiments: negative Workers %d (0 selects GOMAXPROCS)", o.Workers)
	}
	if o.Trials <= 0 && o.Tolerance == 0 {
		o.Trials = montecarlo.DefaultTrials
	}
	if len(o.Methods) == 0 {
		o.Methods = PaperMethods()
	}
	return nil
}

// FigureSpec describes one of the paper's error figures.
type FigureSpec struct {
	ID    int // paper figure number, 4..12
	Fact  linalg.Factorization
	PFail float64
	Ks    []int
}

// Caption returns the paper's caption, e.g. "Cholesky, pfail = 0.001".
func (s FigureSpec) Caption() string {
	return fmt.Sprintf("%s, pfail = %g", FactLabel(s.Fact), s.PFail)
}

// FactLabel returns the display name of a factorization ("Cholesky",
// "LU", "QR"); unknown values render verbatim.
func FactLabel(f linalg.Factorization) string {
	switch f {
	case linalg.FactCholesky:
		return "Cholesky"
	case linalg.FactLU:
		return "LU"
	case linalg.FactQR:
		return "QR"
	}
	return string(f)
}

// paperKs are the graph sizes of Figures 4-12.
var paperKs = []int{4, 6, 8, 10, 12}

// paperPFails are the three failure probabilities of §V-C.
var paperPFails = []float64{0.01, 0.001, 0.0001}

// Figures returns the specs of the paper's Figures 4-12 in order.
func Figures() []FigureSpec {
	var specs []FigureSpec
	id := 4
	for _, f := range linalg.All() {
		for _, pf := range paperPFails {
			specs = append(specs, FigureSpec{ID: id, Fact: f, PFail: pf, Ks: append([]int(nil), paperKs...)})
			id++
		}
	}
	return specs
}

// Figure returns the spec of paper figure id (4..12).
func Figure(id int) (FigureSpec, error) {
	for _, s := range Figures() {
		if s.ID == id {
			return s, nil
		}
	}
	return FigureSpec{}, fmt.Errorf("experiments: no figure %d (have 4..12)", id)
}

// Point is one data point of a figure: one graph size.
type Point struct {
	K      int
	Tasks  int
	MCMean float64 // Monte Carlo ground truth
	MCCI95 float64
	// MCTrials is the trial count the point actually spent — the
	// configured budget for fixed runs, the stopping point for adaptive.
	MCTrials int
	// RelErr[m] = (estimate_m − MC)/MC, the paper's normalized difference.
	RelErr map[Method]float64
	// Estimate and Time record the raw value and wall-clock per method.
	Estimate map[Method]float64
	Time     map[Method]time.Duration
	MCTime   time.Duration
}

// FigureResult is a fully evaluated figure.
type FigureResult struct {
	Spec   FigureSpec
	Trials int
	Points []Point
}

// RunFigure evaluates one figure spec. Every (graph size × method) cell
// and Monte Carlo run is scheduled on the cell pool (see scheduler.go);
// the result is byte-identical for any Options.Workers.
func RunFigure(spec FigureSpec, opts Options) (FigureResult, error) {
	if err := opts.normalize(); err != nil {
		return FigureResult{}, err
	}
	ks := spec.Ks
	if len(opts.Ks) > 0 {
		ks = opts.Ks
	}
	ctxs := make([]*pointCtx, len(ks))
	for i, k := range ks {
		ctx, err := newPointCtx(opts.ctx(), opts.Artifacts, spec.Fact, k, spec.PFail, opts.Seed)
		if err != nil {
			return FigureResult{}, fmt.Errorf("figure %d k=%d: %w", spec.ID, k, err)
		}
		ctxs[i] = ctx
	}
	var progress func(int, Point)
	if opts.Progress != nil {
		progress = func(i int, p Point) {
			opts.Progress(fmt.Sprintf("fig %d: %s k=%d done (MC %.6g ± %.2g)",
				spec.ID, spec.Fact, p.K, p.MCMean, p.MCCI95))
		}
	}
	points, err := runPoints(ctxs, opts, progress)
	if err != nil {
		return FigureResult{}, fmt.Errorf("figure %d: %w", spec.ID, err)
	}
	return FigureResult{Spec: spec, Trials: opts.Trials, Points: points}, nil
}

// Table1Spec mirrors the paper's Table I: LU with k=20 (2,870 tasks) and
// pfail = 0.0001, reporting normalized difference and execution time per
// method.
type Table1Spec struct {
	Fact  linalg.Factorization
	K     int
	PFail float64
}

// Table1 returns the paper's Table I spec.
func Table1() Table1Spec {
	return Table1Spec{Fact: linalg.FactLU, K: 20, PFail: 0.0001}
}

// Table1Result is the evaluated table.
type Table1Result struct {
	Spec   Table1Spec
	Trials int
	Point  Point
}

// RunTable1 evaluates Table I (optionally with a smaller k or trial count
// through opts for quick runs). The per-method cells run concurrently
// under the cell scheduler.
func RunTable1(spec Table1Spec, opts Options) (Table1Result, error) {
	if err := opts.normalize(); err != nil {
		return Table1Result{}, err
	}
	ctx, err := newPointCtx(opts.ctx(), opts.Artifacts, spec.Fact, spec.K, spec.PFail, opts.Seed)
	if err != nil {
		return Table1Result{}, fmt.Errorf("table 1: %w", err)
	}
	points, err := runPoints([]*pointCtx{ctx}, opts, nil)
	if err != nil {
		return Table1Result{}, fmt.Errorf("table 1: %w", err)
	}
	return Table1Result{Spec: spec, Trials: opts.Trials, Point: points[0]}, nil
}
