// Package artifact is the typed artifact pipeline shared by the
// makespand service, the experiments runner and the CLIs: every
// expensive derived object of the paper's workflow — frozen CSR graph,
// Dodin reduction plan, compiled Monte Carlo estimator, frozen-schedule
// estimator, resumable adaptive snapshot — is declared once as a build
// rule (canonical key → dependency keys → build func → size) and
// resolved through one generic Resolver that provides, for every kind
// at once: content-addressed keying, dependency-aware resolution
// (resolving an estimator transparently resolves and reuses its frozen
// graph), per-key singleflight (concurrent requests for the same
// artifact trigger exactly one build), LRU byte-budget eviction with
// pinning of in-flight entries, and per-kind hit/miss/eviction
// statistics. The rules themselves live in store.go; see
// docs/ARCHITECTURE.md §"Ownership and caching" for the rule table.
package artifact

import (
	"container/list"
	"context"
	"errors"
	"sync"
)

// Key is an artifact's canonical cache key. Keys are flat strings of
// the form "<kind>/<content-id>[/<params...>]" built by the rule
// constructors in store.go; two requests build the same artifact iff
// their keys are equal.
type Key string

// Request declares one artifact to resolve: its kind (a stats bucket),
// its canonical key, the requests of the artifacts it is derived from,
// and the build function. Build receives the resolved dependency
// values in Deps order and returns the artifact value plus its
// approximate retained size in bytes (the resolver's accounting unit).
// Rules must form a DAG: a dependency chain that reaches its own key
// again would deadlock on itself.
type Request struct {
	// Kind is the artifact's stats bucket ("graph", "plan", ...).
	Kind string
	// Key is the canonical cache key; equal keys mean equal artifacts.
	Key Key
	// Deps declares the artifacts this one is derived from; they are
	// resolved (and pinned) before Build runs.
	Deps []Request
	// Build constructs the artifact from the resolved dependency values
	// (in Deps order), returning it with its approximate retained size.
	// The context is the build's flight context, NOT any one caller's:
	// it is cancelled only when every request interested in this build
	// has detached (see ResolveContext), so a build shared by several
	// requests survives any one of them going away. Builds should honor
	// it at their natural checkpoint granularity.
	Build func(ctx context.Context, deps []any) (value any, size int64, err error)
}

// KindStats counts one artifact kind's cache traffic. Hits include
// requests coalesced onto an in-flight build (they shared the one
// build another request paid for); Misses count builds started, plus
// externally built values installed with Put.
type KindStats struct {
	// Hits counts requests served without a build here: ready entries,
	// coalesced waits and successful Lookups.
	Hits int64
	// Misses counts builds started plus Put installations.
	Misses int64
	// Evictions counts entries removed under budget pressure, cascaded
	// dependents included.
	Evictions int64
	// Resident counts the currently cached entries of the kind.
	Resident int64
	// ResidentBytes is their total accounted size.
	ResidentBytes int64
}

// entry is one resolver slot. Lifecycle: created building (done open,
// not in the LRU, self-pinned), then either ready (value/size set, done
// closed, linked into the LRU) or failed (err set, done closed, removed
// from the map so the next request retries). value, size, err and deps
// are written once before done closes and read-only after.
type entry struct {
	kind string
	key  Key

	value any
	size  int64
	err   error
	done  chan struct{} // closed when the build finished either way
	ready bool

	// pins counts active uses that forbid eviction: the entry's own
	// in-flight build, and every build or Put currently holding it as a
	// dependency. Guarded by Resolver.mu.
	pins int

	// interest counts requests whose outcome depends on the in-flight
	// build: the leader plus every coalesced waiter still present. When
	// the last one detaches, cancel fires and the build aborts. Only
	// meaningful while building; guarded by Resolver.mu.
	interest int
	// cancel aborts the build's flight context; nil once the build has
	// finished (or for ready entries). Guarded by Resolver.mu.
	cancel context.CancelFunc

	elem *list.Element // LRU position; nil while building

	// deps/dependents are the artifact graph's edges, maintained while
	// both sides are resident; eviction cascades down dependents (a
	// plan must not outlive the graph it indexes into).
	deps       []*entry
	dependents map[Key]*entry
}

// Resolver is the generic artifact cache. The zero value is not usable;
// create with NewResolver.
type Resolver struct {
	mu      sync.Mutex
	budget  int64 // <= 0: unlimited
	used    int64
	lru     *list.List // of *entry; front = most recently used
	entries map[Key]*entry
	stats   map[string]*KindStats

	// onEvict, when set (before first use), observes every eviction —
	// cascaded dependents included. It runs with mu held: it must not
	// call back into the resolver, but may take locks ordered after it.
	onEvict func(kind string, key Key, value any)
}

// NewResolver creates a resolver with the given byte budget (<= 0
// means unlimited). onEvict may be nil.
func NewResolver(budget int64, onEvict func(kind string, key Key, value any)) *Resolver {
	return &Resolver{
		budget:  budget,
		lru:     list.New(),
		entries: make(map[Key]*entry),
		stats:   make(map[string]*KindStats),
		onEvict: onEvict,
	}
}

func (r *Resolver) kindStats(kind string) *KindStats {
	ks := r.stats[kind]
	if ks == nil {
		ks = &KindStats{}
		r.stats[kind] = ks
	}
	return ks
}

// Resolve returns the artifact for req, building it (and any missing
// dependencies, transitively) exactly once per key: concurrent calls
// with the same key coalesce onto one build and all receive the same
// value. A failed build is not cached — the error goes to the waiters
// that joined it and the next request retries. The returned value
// stays valid even if the entry is evicted later (entries are ordinary
// GC-managed values; eviction only stops them being findable).
func (r *Resolver) Resolve(req Request) (any, error) {
	return r.ResolveContext(context.Background(), req)
}

// ResolveContext is Resolve with cancellation. The caller's ctx bounds
// its *wait*, not the build outright: a build is shared, so it keeps a
// flight context that is cancelled only when the last interested
// request detaches. A caller whose ctx expires detaches immediately
// (returning ctx.Err()); if it was the last one, the build aborts at
// its next checkpoint and the failed entry is removed — no error is
// cached, no dependency pins leak, and the next request simply
// rebuilds.
func (r *Resolver) ResolveContext(ctx context.Context, req Request) (any, error) {
	e, _, err := r.resolve(ctx, req)
	if err != nil {
		return nil, err
	}
	v := e.value
	r.unpin(e)
	return v, nil
}

// ResolveBuilt is Resolve plus a flag reporting whether this call ran
// the build itself (false on cache hits and coalesced waits) — the
// service's "created" field for graph submissions.
func (r *Resolver) ResolveBuilt(req Request) (any, bool, error) {
	return r.ResolveBuiltContext(context.Background(), req)
}

// ResolveBuiltContext is ResolveBuilt with ResolveContext's
// cancellation semantics.
func (r *Resolver) ResolveBuiltContext(ctx context.Context, req Request) (any, bool, error) {
	e, built, err := r.resolve(ctx, req)
	if err != nil {
		return nil, false, err
	}
	v := e.value
	r.unpin(e)
	return v, built, nil
}

// resolve returns the entry for req with one pin held by the caller
// (release with unpin). built reports whether this call ran the build.
func (r *Resolver) resolve(ctx context.Context, req Request) (*entry, bool, error) {
	for {
		e, built, retry, err := r.resolveOnce(ctx, req)
		if retry {
			// The build this call coalesced onto was cancelled (its
			// last interested request left before we joined, or raced
			// our join). Our own ctx is still live, so lead a fresh
			// build rather than surfacing someone else's cancellation.
			continue
		}
		return e, built, err
	}
}

func (r *Resolver) resolveOnce(ctx context.Context, req Request) (_ *entry, built, retry bool, err error) {
	r.mu.Lock()
	if e, ok := r.entries[req.Key]; ok {
		e.pins++
		r.kindStats(e.kind).Hits++
		if e.ready {
			r.lru.MoveToFront(e.elem)
			r.mu.Unlock()
			return e, false, false, nil
		}
		// In flight: coalesce onto the running build.
		e.interest++
		r.mu.Unlock()
		if done := ctx.Done(); done != nil {
			select {
			case <-e.done:
			case <-done:
				// Detach: drop our interest (cancelling the flight if
				// we were the last) and stop waiting. The build, if it
				// continues for others, completes without us.
				r.mu.Lock()
				e.interest--
				if e.interest <= 0 && e.cancel != nil {
					e.cancel()
				}
				e.pins--
				r.mu.Unlock()
				return nil, false, false, ctx.Err()
			}
		} else {
			<-e.done
		}
		r.mu.Lock()
		e.interest--
		r.mu.Unlock()
		if e.err != nil {
			r.unpin(e)
			if isCancellation(e.err) && ctx.Err() == nil {
				return nil, false, true, e.err
			}
			return nil, false, false, e.err
		}
		return e, false, false, nil
	}
	// Become the builder. The entry is findable (so later requests
	// coalesce) but self-pinned and outside the LRU until the build
	// completes, so budget pressure from concurrent inserts can never
	// evict it mid-build. The build runs under its own flight context,
	// detached from the leader's ctx except through interest counting,
	// so a cancelled leader hands the running build to any waiter that
	// joined instead of killing it under them.
	buildCtx, buildCancel := context.WithCancel(context.Background())
	defer buildCancel()
	e := &entry{
		kind:       req.Kind,
		key:        req.Key,
		done:       make(chan struct{}),
		pins:       1,
		interest:   1,
		cancel:     buildCancel,
		dependents: make(map[Key]*entry),
	}
	r.entries[req.Key] = e
	r.kindStats(req.Kind).Misses++
	r.mu.Unlock()

	if done := ctx.Done(); done != nil {
		// Watch the leader's own ctx: the build runs on this goroutine
		// regardless (Build only aborts via buildCtx), but the leader's
		// interest must lapse on cancel so a waiterless build stops.
		watchStop := make(chan struct{})
		defer close(watchStop)
		go func() {
			select {
			case <-done:
				r.mu.Lock()
				e.interest--
				if e.interest <= 0 && e.cancel != nil {
					e.cancel()
				}
				r.mu.Unlock()
			case <-watchStop:
			}
		}()
	}

	deps, vals, err := r.resolveDeps(buildCtx, req.Deps)
	var value any
	var size int64
	if err == nil {
		value, size, err = req.Build(buildCtx, vals)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	e.cancel = nil
	if err != nil {
		if r.entries[req.Key] == e {
			delete(r.entries, req.Key)
		}
		e.err = err
		e.pins-- // the self-pin; the entry is dead either way
		r.unpinDepsLocked(deps)
		close(e.done)
		return nil, false, false, err
	}
	e.value, e.size, e.ready = value, size, true
	e.deps = deps
	for _, de := range deps {
		de.dependents[e.key] = e
		de.pins--
	}
	e.elem = r.lru.PushFront(e)
	r.used += size
	ks := r.kindStats(e.kind)
	ks.Resident++
	ks.ResidentBytes += size
	close(e.done)
	r.evictLocked(e)
	return e, true, false, nil
}

// isCancellation reports whether err is a context cancellation or
// deadline — the errors that mean "a caller went away", not "the build
// is broken".
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// resolveDeps resolves every dependency request, returning the entries
// with one pin each (held for the duration of the parent build) plus
// their values in order. On error the pins already taken are released.
// Dependencies resolve under the parent's flight context: they abort
// only when the parent build itself has lost all interest.
func (r *Resolver) resolveDeps(ctx context.Context, reqs []Request) ([]*entry, []any, error) {
	if len(reqs) == 0 {
		return nil, nil, nil
	}
	deps := make([]*entry, 0, len(reqs))
	vals := make([]any, 0, len(reqs))
	for _, d := range reqs {
		de, _, err := r.resolve(ctx, d)
		if err != nil {
			r.mu.Lock()
			r.unpinDepsLocked(deps)
			r.mu.Unlock()
			return nil, nil, err
		}
		deps = append(deps, de)
		vals = append(vals, de.value)
	}
	return deps, vals, nil
}

func (r *Resolver) unpinDepsLocked(deps []*entry) {
	for _, de := range deps {
		de.pins--
	}
}

func (r *Resolver) unpin(e *entry) {
	r.mu.Lock()
	e.pins--
	r.mu.Unlock()
}

// Put installs an externally built value under req's key — the
// adaptive-snapshot path, where the coalescing leader runs the kernel
// itself and only retention goes through the resolver. An existing
// ready entry is replaced in place with delta accounting; budget
// pressure from the growth may evict colder entries but never the
// entry being grown. If a Resolve build for the same key is in flight
// the Put is dropped (the build's result wins). Counts as a miss for
// the kind (a build happened, just not here).
func (r *Resolver) Put(req Request, value any, size int64) {
	deps, _, err := r.resolveDeps(context.Background(), req.Deps)
	if err != nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entries[req.Key]
	if e != nil && !e.ready {
		r.unpinDepsLocked(deps)
		return
	}
	ks := r.kindStats(req.Kind)
	if e == nil {
		e = &entry{kind: req.Kind, key: req.Key, ready: true, dependents: make(map[Key]*entry)}
		r.entries[req.Key] = e
		e.elem = r.lru.PushFront(e)
		ks.Resident++
	} else {
		r.used -= e.size
		ks.ResidentBytes -= e.size
		r.lru.MoveToFront(e.elem)
		for _, de := range e.deps {
			delete(de.dependents, e.key)
		}
	}
	e.value, e.size = value, size
	e.deps = deps
	for _, de := range deps {
		de.dependents[e.key] = e
		de.pins--
	}
	r.used += size
	ks.Misses++
	ks.ResidentBytes += size
	r.evictLocked(e)
}

// Lookup returns the ready value for key, touching it to the LRU front
// and counting a hit when found; a missing key counts nothing (use it
// for optional artifacts like retained snapshots, where absence is the
// normal first-request state, not a failed build).
func (r *Resolver) Lookup(key Key) (any, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[key]
	if !ok || !e.ready {
		return nil, false
	}
	r.lru.MoveToFront(e.elem)
	r.kindStats(e.kind).Hits++
	return e.value, true
}

// Peek returns the ready value for key without touching LRU order or
// statistics — residency checks and introspection.
func (r *Resolver) Peek(key Key) (any, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[key]
	if !ok || !e.ready {
		return nil, false
	}
	return e.value, true
}

// EntryInfo describes one resident entry (introspection: the per-graph
// artifact census behind GET /v1/graphs/{id}).
type EntryInfo struct {
	// Kind is the entry's stats bucket.
	Kind string
	// Key is its canonical cache key.
	Key Key
	// Size is its accounted bytes.
	Size int64
}

// DependentsOf lists the resident artifacts built directly on top of
// key, in unspecified order.
func (r *Resolver) DependentsOf(key Key) []EntryInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[key]
	if !ok || !e.ready {
		return nil
	}
	out := make([]EntryInfo, 0, len(e.dependents))
	for _, d := range e.dependents {
		out = append(out, EntryInfo{Kind: d.kind, Key: d.key, Size: d.size})
	}
	return out
}

// Stats snapshots the per-kind counters.
func (r *Resolver) Stats() map[string]KindStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]KindStats, len(r.stats))
	for k, v := range r.stats {
		out[k] = *v
	}
	return out
}

// UsedBytes reports the total accounted size of resident entries.
func (r *Resolver) UsedBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.used
}

// Budget reports the configured byte budget (<= 0: unlimited).
func (r *Resolver) Budget() int64 { return r.budget }

// evictLocked enforces the byte budget: walk the LRU from the cold
// end, evicting entries (cascading through their dependents) until the
// budget holds. Never evicted: keep (the entry the current operation
// is inserting or growing), pinned entries (in-flight builds hold pins
// on themselves and their dependencies), any entry whose transitive
// dependents include one of those, and the sole remaining entry
// (evicting what the current request is about to use would just force
// an immediate rebuild).
func (r *Resolver) evictLocked(keep *entry) {
	if r.budget <= 0 {
		return
	}
	for r.used > r.budget && r.lru.Len() > 1 {
		evicted := false
		for el := r.lru.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*entry)
			if !r.evictableLocked(e, keep) {
				continue
			}
			r.evictEntryLocked(e)
			evicted = true
			break // cascades invalidated our iterator; rescan
		}
		if !evicted {
			return
		}
	}
}

// Shed evicts every currently evictable entry regardless of budget —
// pinned entries, in-flight builds and their dependencies stay, as do
// cascades that would touch them. It returns the number of entries
// dropped. Shed exists for fault drills (the chaos harness's eviction
// storm) and for operators that want to empty a cache without
// restarting; correctness must never depend on residency, only
// latency, which is exactly what the storm verifies.
func (r *Resolver) Shed() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	dropped := 0
	for {
		evicted := false
		for el := r.lru.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*entry)
			if !r.evictableLocked(e, nil) {
				continue
			}
			before := r.lru.Len()
			r.evictEntryLocked(e)
			dropped += before - r.lru.Len()
			evicted = true
			break // cascades invalidated the iterator; rescan
		}
		if !evicted {
			return dropped
		}
	}
}

// evictableLocked reports whether evicting e (which cascades through
// its dependents) would touch keep or any pinned entry.
func (r *Resolver) evictableLocked(e, keep *entry) bool {
	if e == keep || e.pins > 0 {
		return false
	}
	for _, d := range e.dependents {
		if !r.evictableLocked(d, keep) {
			return false
		}
	}
	return true
}

// evictEntryLocked removes e and, recursively, every artifact built on
// top of it — dependents first, so onEvict observes a plan before the
// graph it indexes into.
func (r *Resolver) evictEntryLocked(e *entry) {
	for _, d := range e.dependents {
		r.evictEntryLocked(d)
	}
	for _, de := range e.deps {
		delete(de.dependents, e.key)
	}
	r.lru.Remove(e.elem)
	delete(r.entries, e.key)
	r.used -= e.size
	ks := r.kindStats(e.kind)
	ks.Evictions++
	ks.Resident--
	ks.ResidentBytes -= e.size
	if r.onEvict != nil {
		r.onEvict(e.kind, e.key, e.value)
	}
}
