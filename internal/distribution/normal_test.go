package distribution

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStdNormCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{1.96, 0.9750021048517795},
	}
	for _, c := range cases {
		if got := StdNormCDF(c.x); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Phi(%v) = %v want %v", c.x, got, c.want)
		}
	}
}

func TestStdNormPDFIntegratesToCDF(t *testing.T) {
	// Trapezoid integrate phi from -8 to x, compare with Phi(x).
	for _, x := range []float64{-1.5, 0, 0.7, 2.3} {
		const steps = 200000
		lo := -8.0
		h := (x - lo) / steps
		sum := (StdNormPDF(lo) + StdNormPDF(x)) / 2
		for i := 1; i < steps; i++ {
			sum += StdNormPDF(lo + float64(i)*h)
		}
		got := sum * h
		if !almostEq(got, StdNormCDF(x), 1e-8) {
			t.Errorf("integral to %v = %v want %v", x, got, StdNormCDF(x))
		}
	}
}

func TestNormalAddShift(t *testing.T) {
	a := Normal{Mu: 1, Sigma2: 2}
	b := Normal{Mu: 3, Sigma2: 5}
	s := a.Add(b)
	if s.Mu != 4 || s.Sigma2 != 7 {
		t.Fatalf("Add = %v", s)
	}
	if sh := a.Shift(2); sh.Mu != 3 || sh.Sigma2 != 2 {
		t.Fatalf("Shift = %v", sh)
	}
	if !almostEq(b.Sigma(), math.Sqrt(5), 1e-15) {
		t.Fatalf("Sigma = %v", b.Sigma())
	}
}

func TestNormalCDF(t *testing.T) {
	n := Normal{Mu: 10, Sigma2: 4}
	if !almostEq(n.CDF(10), 0.5, 1e-12) {
		t.Errorf("CDF(mu) = %v", n.CDF(10))
	}
	if !almostEq(n.CDF(12), StdNormCDF(1), 1e-12) {
		t.Errorf("CDF(mu+sigma) = %v", n.CDF(12))
	}
	p := Normal{Mu: 3}
	if p.CDF(2.9) != 0 || p.CDF(3) != 1 {
		t.Errorf("point CDF wrong")
	}
}

func TestNormalFromMomentsValidation(t *testing.T) {
	if _, err := NormalFromMoments(0, -1); err == nil {
		t.Error("accepted negative variance")
	}
	if _, err := NormalFromMoments(math.NaN(), 1); err == nil {
		t.Error("accepted NaN mean")
	}
	n, err := NormalFromMoments(2, 3)
	if err != nil || n.Mu != 2 || n.Sigma2 != 3 {
		t.Errorf("round trip wrong: %v %v", n, err)
	}
}

func TestNormalOfDiscreteMatchesMoments(t *testing.T) {
	d, _ := TwoState(2, 0.9)
	n := NormalOfDiscrete(d)
	if !almostEq(n.Mu, d.Mean(), 1e-12) || !almostEq(n.Sigma2, d.Variance(), 1e-12) {
		t.Fatalf("moment match failed: %v vs (%v,%v)", n, d.Mean(), d.Variance())
	}
}

// Clark's formulas for independent standard normals: E[max(Z1,Z2)] = 1/sqrt(pi),
// Var = 1 - 1/pi.
func TestClarkMaxStandardPair(t *testing.T) {
	z := Normal{Mu: 0, Sigma2: 1}
	m := ClarkMax(z, z, 0)
	if !almostEq(m.Mu, 1/math.Sqrt(math.Pi), 1e-12) {
		t.Errorf("mean = %v want %v", m.Mu, 1/math.Sqrt(math.Pi))
	}
	if !almostEq(m.Sigma2, 1-1/math.Pi, 1e-12) {
		t.Errorf("var = %v want %v", m.Sigma2, 1-1/math.Pi)
	}
}

// Monte Carlo check of Clark's moments for correlated pairs.
func TestClarkMaxMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	cases := []struct {
		x, y Normal
		rho  float64
	}{
		{Normal{0, 1}, Normal{0, 1}, 0},
		{Normal{1, 4}, Normal{2, 1}, 0},
		{Normal{0, 1}, Normal{0.5, 2}, 0.6},
		{Normal{3, 2}, Normal{3, 2}, -0.4},
	}
	const n = 400000
	for _, c := range cases {
		m := ClarkMax(c.x, c.y, c.rho)
		var sum, sum2 float64
		sx, sy := c.x.Sigma(), c.y.Sigma()
		for i := 0; i < n; i++ {
			z1 := rng.NormFloat64()
			z2 := c.rho*z1 + math.Sqrt(1-c.rho*c.rho)*rng.NormFloat64()
			v := math.Max(c.x.Mu+sx*z1, c.y.Mu+sy*z2)
			sum += v
			sum2 += v * v
		}
		mean := sum / n
		varc := sum2/n - mean*mean
		if !almostEq(m.Mu, mean, 0.01) {
			t.Errorf("case %+v: Clark mean %v vs MC %v", c, m.Mu, mean)
		}
		if !almostEq(m.Sigma2, varc, 0.02) {
			t.Errorf("case %+v: Clark var %v vs MC %v", c, m.Sigma2, varc)
		}
	}
}

func TestClarkMaxDegenerate(t *testing.T) {
	// Perfectly correlated equal-variance pair: max is just the larger mean.
	x := Normal{Mu: 1, Sigma2: 4}
	y := Normal{Mu: 5, Sigma2: 4}
	m := ClarkMax(x, y, 1)
	if m != y {
		t.Errorf("degenerate max = %v want %v", m, y)
	}
	m = ClarkMax(y, x, 1)
	if m != y {
		t.Errorf("degenerate max (swapped) = %v want %v", m, y)
	}
	// Two point masses.
	p1 := Normal{Mu: 2}
	p2 := Normal{Mu: 7}
	if m := ClarkMax(p1, p2, 0); m != p2 {
		t.Errorf("point max = %v", m)
	}
	// Invalid rho falls back to 0.
	m1 := ClarkMax(x, y, math.NaN())
	m2 := ClarkMax(x, y, 0)
	if m1 != m2 {
		t.Errorf("NaN rho not treated as 0")
	}
}

// Property: Clark's mean dominates both input means, and is monotone in
// input means (basic sanity of a max operator).
func TestQuickClarkMaxDominance(t *testing.T) {
	f := func(m1, m2 int8, v1, v2 uint8, r int8) bool {
		x := Normal{Mu: float64(m1) / 10, Sigma2: float64(v1%50)/10 + 0.01}
		y := Normal{Mu: float64(m2) / 10, Sigma2: float64(v2%50)/10 + 0.01}
		rho := float64(r) / 128
		m := ClarkMax(x, y, rho)
		return m.Mu >= math.Max(x.Mu, y.Mu)-1e-12 && m.Sigma2 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestClarkMaxCorrelation(t *testing.T) {
	// If X ⟂ Y and Z = X, then corr(max, Z) should be sigma_x * Phi(alpha) / sigma_max.
	x := Normal{Mu: 0, Sigma2: 1}
	y := Normal{Mu: 0, Sigma2: 1}
	m := ClarkMax(x, y, 0)
	got := ClarkMaxCorrelation(x, y, 0, 1, 0, m)
	want := 1 * StdNormCDF(0) / m.Sigma()
	if !almostEq(got, want, 1e-12) {
		t.Errorf("corr = %v want %v", got, want)
	}
	// Clamping.
	if r := ClarkMaxCorrelation(x, y, 0, 1, 1, Normal{Mu: 0, Sigma2: 1e-9}); r > 1 || r < -1 {
		t.Errorf("correlation not clamped: %v", r)
	}
	// Zero-variance max.
	if r := ClarkMaxCorrelation(Normal{Mu: 1}, Normal{Mu: 0}, 0, 0.5, 0.5, Normal{Mu: 1}); r != 0.5 {
		// degenerate path: a2 == 0 returns rxz since x.Mu >= y.Mu
		t.Errorf("degenerate corr = %v", r)
	}
}

func TestNormalString(t *testing.T) {
	if (Normal{Mu: 1, Sigma2: 2}).String() == "" {
		t.Error("empty String")
	}
}
