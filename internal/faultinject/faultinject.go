// Package faultinject provides failpoints for chaos testing: named
// hook sites compiled into production code paths (artifact builds, MC
// chunk execution, service routes) that are inert until armed.
//
// Faults are armed from the MAKESPAND_FAULTS environment variable at
// process start, or programmatically via Arm in tests. The spec is a
// semicolon-separated list of failpoints:
//
//	name=mode[:arg][*count]
//
// where mode is one of
//
//	error[:msg]     Hit returns a *Fault error (default msg "injected fault")
//	delay:duration  Hit sleeps for duration (e.g. delay:50ms) then returns nil
//	panic[:msg]     MaybePanic panics; Hit returns a *Fault error
//	trigger         Triggered reports true; Hit returns nil
//
// and the optional *count disarms the point after it has fired count
// times. A point name matches a hook site if it equals the site name or
// is a dot-boundary prefix of it: "artifact.build" matches
// "artifact.build.mc". The most specific armed point wins.
//
// The disabled fast path is a single atomic load, so leaving hook
// sites in hot loops costs nothing in production.
package faultinject

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Fault is the error returned by Hit at a site armed in error mode.
type Fault struct {
	// Point is the armed point name that fired.
	Point string
	// Msg is the configured message.
	Msg string
}

// Error implements the error interface.
func (f *Fault) Error() string { return fmt.Sprintf("faultinject: %s: %s", f.Point, f.Msg) }

// IsFault reports whether err is (or wraps) an injected *Fault.
func IsFault(err error) bool {
	for err != nil {
		if _, ok := err.(*Fault); ok {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

const (
	modeError   = "error"
	modeDelay   = "delay"
	modePanic   = "panic"
	modeTrigger = "trigger"
)

type point struct {
	name      string
	mode      string
	msg       string
	delay     time.Duration
	remaining int64 // guarded by mu; <0 means unlimited
}

var (
	enabled atomic.Bool
	mu      sync.Mutex
	points  map[string]*point
)

func init() {
	if spec := os.Getenv("MAKESPAND_FAULTS"); spec != "" {
		if err := Arm(spec); err != nil {
			// A typo must not take the daemon down, but it must be
			// loud: the chaos harness asserts observed faults, so a
			// silently-disarmed run fails visibly downstream.
			fmt.Fprintf(os.Stderr, "faultinject: ignoring MAKESPAND_FAULTS: %v\n", err)
		}
	}
}

// Arm replaces the armed fault set with the given spec. An empty spec
// disarms everything. Arm returns an error (and leaves the previous set
// in place) if the spec does not parse.
func Arm(spec string) error {
	next := make(map[string]*point)
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		p, err := parsePoint(part)
		if err != nil {
			return err
		}
		next[p.name] = p
	}
	mu.Lock()
	points = next
	enabled.Store(len(next) > 0)
	mu.Unlock()
	return nil
}

// Disarm removes every armed fault and restores the zero-cost path.
func Disarm() {
	mu.Lock()
	points = nil
	enabled.Store(false)
	mu.Unlock()
}

// Enabled reports whether any fault is armed. It is the fast path hook
// sites may check before building a site name.
func Enabled() bool { return enabled.Load() }

func parsePoint(s string) (*point, error) {
	name, rest, ok := strings.Cut(s, "=")
	name = strings.TrimSpace(name)
	if !ok || name == "" {
		return nil, fmt.Errorf("failpoint %q: want name=mode[:arg][*count]", s)
	}
	p := &point{name: name, remaining: -1}
	if body, count, ok := strings.Cut(rest, "*"); ok {
		n, err := strconv.ParseInt(strings.TrimSpace(count), 10, 64)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("failpoint %q: bad count %q", s, count)
		}
		p.remaining = n
		rest = body
	}
	mode, arg, _ := strings.Cut(strings.TrimSpace(rest), ":")
	switch mode {
	case modeError, modePanic:
		p.mode = mode
		p.msg = arg
		if p.msg == "" {
			p.msg = "injected fault"
		}
	case modeDelay:
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("failpoint %q: bad delay %q", s, arg)
		}
		p.mode = modeDelay
		p.delay = d
	case modeTrigger:
		p.mode = modeTrigger
	default:
		return nil, fmt.Errorf("failpoint %q: unknown mode %q", s, mode)
	}
	return p, nil
}

// fire finds the most specific armed point matching site and consumes
// one shot from it. It returns nil when nothing matches.
func fire(site string) *point {
	mu.Lock()
	defer mu.Unlock()
	for name := site; name != ""; {
		if p, ok := points[name]; ok {
			if p.remaining == 0 {
				return nil // spent
			}
			if p.remaining > 0 {
				p.remaining--
			}
			return p
		}
		i := strings.LastIndexByte(name, '.')
		if i < 0 {
			return nil
		}
		name = name[:i]
	}
	return nil
}

// Hit fires the failpoint at site, if armed: error- and panic-mode
// points return a *Fault, delay-mode points sleep (bounded by ctx) and
// return nil, trigger-mode points return nil. Unarmed sites return nil.
func Hit(ctx context.Context, site string) error {
	if !enabled.Load() {
		return nil
	}
	p := fire(site)
	if p == nil {
		return nil
	}
	switch p.mode {
	case modeError, modePanic:
		return &Fault{Point: p.name, Msg: p.msg}
	case modeDelay:
		if p.delay <= 0 {
			return nil
		}
		t := time.NewTimer(p.delay)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// Triggered fires the failpoint at site and reports whether a
// trigger-mode point matched. Non-trigger modes do not fire through
// Triggered.
func Triggered(site string) bool {
	if !enabled.Load() {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	for name := site; name != ""; {
		if p, ok := points[name]; ok {
			if p.mode != modeTrigger || p.remaining == 0 {
				return false
			}
			if p.remaining > 0 {
				p.remaining--
			}
			return true
		}
		i := strings.LastIndexByte(name, '.')
		if i < 0 {
			return false
		}
		name = name[:i]
	}
	return false
}

// MaybePanic panics with the configured message if a panic-mode point
// matches site. Other modes fire through Hit, not MaybePanic.
func MaybePanic(site string) {
	if !enabled.Load() {
		return
	}
	mu.Lock()
	var hit *point
	for name := site; name != ""; {
		if p, ok := points[name]; ok {
			if p.mode == modePanic && p.remaining != 0 {
				if p.remaining > 0 {
					p.remaining--
				}
				hit = p
			}
			break
		}
		i := strings.LastIndexByte(name, '.')
		if i < 0 {
			break
		}
		name = name[:i]
	}
	mu.Unlock()
	if hit != nil {
		panic(fmt.Sprintf("faultinject: %s: %s", hit.name, hit.msg))
	}
}
