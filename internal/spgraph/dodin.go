package spgraph

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/distribution"
	"repro/internal/failure"
)

// Result is the outcome of a series-parallel (or Dodin-approximated)
// evaluation.
type Result struct {
	// Estimate is the mean of Distribution: the approximated expected
	// makespan.
	Estimate float64
	// Distribution is the (possibly rediscretized) makespan distribution
	// of the reduced network.
	Distribution distribution.Discrete
}

// DodinStats reports how far the input was from series-parallel.
type DodinStats struct {
	// Duplications is the number of node duplications needed; 0 means the
	// graph was already series-parallel and the result is exact (up to the
	// support cap).
	Duplications int
	// Reductions is the total number of series/parallel reductions.
	Reductions int
}

// Dodin approximates the expected makespan of g by Dodin's method: convert
// to an activity-on-arc network, apply series/parallel reductions, and
// when stuck duplicate a join node (splitting one incoming arc onto a
// fresh copy of the node and duplicating its outgoing arcs) until the
// network collapses to a single arc. Duplication treats the duplicated
// subpaths as independent, which is the method's approximation.
//
// maxAtoms caps distribution supports (DefaultMaxAtoms if <= 0 — pass a
// negative value for an unlimited, exact-arithmetic run on small graphs).
func Dodin(g *dag.Graph, model failure.Model, maxAtoms int) (Result, DodinStats, error) {
	if maxAtoms == 0 {
		maxAtoms = DefaultMaxAtoms
	}
	if maxAtoms < 0 {
		maxAtoms = 0 // unlimited
	}
	net, err := FromDAG(g, model, maxAtoms)
	if err != nil {
		return Result{}, DodinStats{}, err
	}
	return net.Dodin()
}

// Dodin runs the reduction/duplication loop on the network.
func (net *Network) Dodin() (Result, DodinStats, error) {
	var stats DodinStats
	// Every duplication removes one excess incoming arc from an existing
	// join; the subsequent reductions can create new joins, so guard the
	// loop with a generous budget proportional to the initial size.
	budget := 40*net.nAlive + 1000
	for {
		stats.Reductions += net.reducePass()
		if d, err := net.result(); err == nil {
			return Result{Estimate: d.Mean(), Distribution: d}, stats, nil
		}
		if !net.duplicateOne() {
			return Result{}, stats, fmt.Errorf("spgraph: reduction stuck with %d arcs and no join to duplicate", net.nAlive)
		}
		stats.Duplications++
		if stats.Duplications > budget {
			return Result{}, stats, fmt.Errorf("spgraph: duplication budget %d exceeded (arcs left: %d)", budget, net.nAlive)
		}
	}
}

// candPush records a join candidate whenever a node's degrees change into
// (or stay in) candidate shape. Entries are lazy: a stale one is
// discarded when popped.
func (net *Network) candPush(v int) {
	if v == net.src || v == net.snk {
		return
	}
	if net.inDeg[v] >= 2 && net.outDeg[v] >= 1 {
		net.candHeapPush(int64(net.outDeg[v])<<32 | int64(v))
	}
}

func (net *Network) candHeapPush(e int64) {
	h := append(net.cand, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p] <= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	net.cand = h
}

func (net *Network) candHeapPop() int64 {
	h := net.cand
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		if r := l + 1; r < n && h[r] < h[l] {
			l = r
		}
		if h[i] <= h[l] {
			break
		}
		h[i], h[l] = h[l], h[i]
		i = l
	}
	net.cand = h
	return top
}

// duplicateOne performs one Dodin duplication. It selects the join node v
// (in-degree ≥ 2) with the smallest out-degree — ties broken by smallest
// node ID — so that the fresh copy v' collapses by a series reduction as
// soon as possible, then moves v's first incoming arc onto a new node v'
// carrying copies of all of v's outgoing arcs. Returns false if the
// network has no join node.
//
// Selection pops the lazy candidate heap, whose (outDeg, node) ordering
// matches the original ascending-ID min-out-degree scan; entries whose
// degrees changed since they were pushed are discarded (the push hooks in
// addArc/killArc guarantee a current entry exists for every candidate).
func (net *Network) duplicateOne() bool {
	v := -1
	for len(net.cand) > 0 {
		e := net.candHeapPop()
		od, node := int32(e>>32), int(e&0xffffffff)
		if net.inDeg[node] >= 2 && net.outDeg[node] == od && od >= 1 {
			v = node
			break
		}
	}
	if v == -1 {
		return false
	}
	in := net.liveIn(v)
	moved := in[0]
	u := net.arcs[moved].from
	d := net.arcs[moved].dist
	// New node v'.
	vp := net.addNode()
	movedTree := net.arcs[moved].tree
	net.killArc(moved)
	if net.rec != nil {
		net.rec.ops = append(net.rec.ops, planOp{kind: opCopy, a: int32(moved)})
	}
	net.addArc(u, vp, d, movedTree)
	for _, id := range net.liveOut(v) {
		// Duplicated subpaths share tree pointers; a later evaluation
		// treats the copies as independent, which is Dodin's approximation.
		if net.rec != nil {
			net.rec.ops = append(net.rec.ops, planOp{kind: opCopy, a: int32(id)})
		}
		net.addArc(vp, net.arcs[id].to, net.arcs[id].dist, net.arcs[id].tree)
	}
	// Only v (one in-arc fewer) and v' (the fresh node) can have become
	// reducible; seed them for the next pass. v' must pop first, as the
	// highest index would in a full re-seed.
	net.seedPending(v)
	net.seedPending(vp)
	return true
}

// IsSeriesParallel reports whether the task graph g is series-parallel in
// the two-terminal AoA sense used by the reduction (true iff Dodin needs
// zero duplications).
func IsSeriesParallel(g *dag.Graph) (bool, error) {
	net, err := FromDAG(g, failure.Model{}, DefaultMaxAtoms)
	if err != nil {
		return false, err
	}
	return net.IsSeriesParallel(), nil
}

// EvaluateSP computes the exact makespan distribution of a series-parallel
// task graph (exact when maxAtoms < 0, i.e. uncapped). It fails if g is
// not series-parallel.
func EvaluateSP(g *dag.Graph, model failure.Model, maxAtoms int) (Result, error) {
	if maxAtoms == 0 {
		maxAtoms = DefaultMaxAtoms
	}
	if maxAtoms < 0 {
		maxAtoms = 0
	}
	net, err := FromDAG(g, model, maxAtoms)
	if err != nil {
		return Result{}, err
	}
	return net.EvaluateSP()
}
