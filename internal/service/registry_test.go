package service

import (
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/dag"
	"repro/internal/failure"
	"repro/internal/linalg"
	"repro/internal/montecarlo"
)

func genGraph(t *testing.T, fact linalg.Factorization, k int) *dag.Graph {
	t.Helper()
	g, err := linalg.Generate(fact, k, linalg.KernelTimes{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// The registry is content-addressed: a generated graph and the same DAG
// resubmitted as raw JSON collapse onto one entry.
func TestRegistryContentAddressing(t *testing.T) {
	r := NewRegistry(0)
	g := genGraph(t, linalg.FactLU, 6)
	e1, created, err := r.Add(g, GraphMeta{Kind: "lu", K: 6})
	if err != nil || !created {
		t.Fatalf("first add: created=%v err=%v", created, err)
	}
	// Round-trip through JSON: a fresh *dag.Graph with identical content.
	raw, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var g2 dag.Graph
	if err := json.Unmarshal(raw, &g2); err != nil {
		t.Fatal(err)
	}
	e2, created, err := r.Add(&g2, GraphMeta{Kind: "custom"})
	if err != nil {
		t.Fatal(err)
	}
	if created {
		t.Fatal("identical content created a second entry")
	}
	if e2 != e1 {
		t.Fatal("content-equal graphs mapped to different entries")
	}
	if e2.Meta().Kind != "lu" {
		t.Fatalf("resubmission relabeled the entry: %q", e2.Meta().Kind)
	}
	// The reverse direction upgrades: naming previously raw-submitted
	// content by its generator spec replaces "custom" and indexes it.
	r2 := NewRegistry(0)
	var g3 dag.Graph
	if err := json.Unmarshal(raw, &g3); err != nil {
		t.Fatal(err)
	}
	ec, _, err := r2.Add(&g3, GraphMeta{Kind: "custom"})
	if err != nil {
		t.Fatal(err)
	}
	if ec.Meta().Kind != "custom" {
		t.Fatalf("meta = %+v", ec.Meta())
	}
	eg, created, err := r2.Add(g, GraphMeta{Kind: "lu", K: 6})
	if err != nil || created || eg != ec {
		t.Fatalf("generator resubmit: created=%v err=%v same=%v", created, err, eg == ec)
	}
	if eg.Meta().Kind != "lu" || eg.Meta().K != 6 {
		t.Fatalf("meta not upgraded: %+v", eg.Meta())
	}
	if got, ok := r2.LookupGenerated(GraphMeta{Kind: "lu", K: 6}); !ok || got != ec {
		t.Fatal("upgraded entry not indexed by generator spec")
	}
	if got, ok := r.Get(e1.ID); !ok || got != e1 {
		t.Fatal("Get by id failed")
	}
	if _, ok := r.Get("sha256:nope"); ok {
		t.Fatal("bogus id resolved")
	}
	if st := r.Stats(); st.Graphs != 1 || st.UsedBytes <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// Over-budget inserts evict the least recently used entry; touching an
// entry protects it.
func TestRegistryLRUEviction(t *testing.T) {
	a := genGraph(t, linalg.FactCholesky, 6)
	b := genGraph(t, linalg.FactLU, 6)
	c := genGraph(t, linalg.FactQR, 6)

	// Budget that holds a and b but not a third entry.
	probe := NewRegistry(0)
	ea, _, err := probe.Add(a, GraphMeta{Kind: "cholesky", K: 6})
	if err != nil {
		t.Fatal(err)
	}
	eb, _, err := probe.Add(b, GraphMeta{Kind: "lu", K: 6})
	if err != nil {
		t.Fatal(err)
	}
	budget := ea.SizeBytes() + eb.SizeBytes() + ea.SizeBytes()/4

	r := NewRegistry(budget)
	ea, _, _ = r.Add(a, GraphMeta{Kind: "cholesky", K: 6})
	eb, _, _ = r.Add(b, GraphMeta{Kind: "lu", K: 6})
	// Touch a so b is the LRU victim when c arrives.
	if _, ok := r.Get(ea.ID); !ok {
		t.Fatal("a missing before eviction")
	}
	if _, _, err := r.Add(c, GraphMeta{Kind: "qr", K: 6}); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get(eb.ID); ok {
		t.Fatal("LRU entry b survived over budget")
	}
	if _, ok := r.Get(ea.ID); !ok {
		t.Fatal("recently-used entry a evicted")
	}
	st := r.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions recorded: %+v", st)
	}
	if st.UsedBytes > budget {
		t.Fatalf("used %d exceeds budget %d", st.UsedBytes, budget)
	}
}

// Artifact growth (plans, estimator tables) counts against the budget and
// can itself trigger eviction of colder entries — but never of the entry
// being grown.
func TestRegistryArtifactGrowthEvicts(t *testing.T) {
	a := genGraph(t, linalg.FactCholesky, 6)
	b := genGraph(t, linalg.FactLU, 8)

	probe := NewRegistry(0)
	ea, _, _ := probe.Add(a, GraphMeta{Kind: "cholesky", K: 6})
	eb, _, _ := probe.Add(b, GraphMeta{Kind: "lu", K: 8})
	base := ea.SizeBytes() + eb.SizeBytes()

	model, err := failure.FromPfail(0.01, b.MeanWeight())
	if err != nil {
		t.Fatal(err)
	}
	// Budget: both bases fit, but not plus b's Dodin plan.
	r := NewRegistry(base + 512)
	ea, _, _ = r.Add(a, GraphMeta{Kind: "cholesky", K: 6})
	eb, _, _ = r.Add(b, GraphMeta{Kind: "lu", K: 8})
	if _, err := eb.Plan(0, model); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get(ea.ID); ok {
		t.Fatal("cold entry a survived b's artifact growth")
	}
	if _, ok := r.Get(eb.ID); !ok {
		t.Fatal("the growing entry b was evicted")
	}
	// An evicted-entry build must not corrupt accounting.
	used := r.Stats().UsedBytes
	if _, err := ea.Plan(0, model); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().UsedBytes; got != used {
		t.Fatalf("evicted entry's artifact accounted: %d -> %d", used, got)
	}
}

// Plan and Estimator build exactly once per key under concurrent access
// and return shared pointers.
func TestEntryArtifactSingleflight(t *testing.T) {
	r := NewRegistry(0)
	g := genGraph(t, linalg.FactLU, 6)
	e, _, err := r.Add(g, GraphMeta{Kind: "lu", K: 6})
	if err != nil {
		t.Fatal(err)
	}
	model, err := failure.FromPfail(0.01, g.MeanWeight())
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	plans := make([]any, n)
	ests := make([]any, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := e.Plan(0, model)
			if err != nil {
				t.Error(err)
			}
			plans[i] = p
			est, err := e.Estimator(model, montecarlo.FullReexecution)
			if err != nil {
				t.Error(err)
			}
			ests[i] = est
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if plans[i] != plans[0] || ests[i] != ests[0] {
			t.Fatal("artifact not shared across concurrent builders")
		}
	}
	ci := e.Cache()
	if ci.DodinPlans != 1 || ci.Estimators != 1 {
		t.Fatalf("cache info = %+v", ci)
	}
	// A different atom cap and model key new artifacts.
	if _, err := e.Plan(128, model); err != nil {
		t.Fatal(err)
	}
	model2, _ := failure.FromPfail(0.001, g.MeanWeight())
	if _, err := e.Estimator(model2, montecarlo.FullReexecution); err != nil {
		t.Fatal(err)
	}
	ci = e.Cache()
	if ci.DodinPlans != 2 || ci.Estimators != 2 {
		t.Fatalf("cache info after new keys = %+v", ci)
	}
}

// The atom-cap cache key must collapse the spellings of the default and
// of "unlimited".
func TestNormAtoms(t *testing.T) {
	if normAtoms(0) != normAtoms(64) {
		t.Fatal("0 and 64 (the default) keyed differently")
	}
	if normAtoms(-1) != normAtoms(-7) {
		t.Fatal("negative caps (unlimited) keyed differently")
	}
	if normAtoms(32) == normAtoms(64) {
		t.Fatal("distinct caps collided")
	}
}
