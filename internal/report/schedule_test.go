package report

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func sampleSchedule() Schedule {
	return Schedule{
		Graph:        GraphInfo{Tasks: 91, Edges: 195, MeanWeight: 0.167},
		Model:        ModelInfo{Lambda: 0.06, PFailMeanTask: 0.01, MTBF: 16.6},
		Procs:        4,
		CriticalPath: 4.165,
		Policies: []SchedulePolicy{
			{
				Policy:      "cp",
				Label:       "CP (bottom level)",
				FailureFree: 4.718,
				Efficiency:  0.805,
				ChainEdges:  65,
				MonteCarlo: &MonteCarloInfo{
					Mean: 4.86, CI95: 0.012, StdDev: 0.19, StdErr: 0.006,
					Min: 4.718, Max: 6.37, Trials: 1000, Seed: 42,
					Time:      125 * time.Millisecond,
					Quantiles: []QuantileValue{{Q: 0.5, Value: 4.80}, {Q: 0.99, Value: 5.59}},
				},
			},
			{Policy: "fo", Label: "failure-aware (First Order)", FailureFree: 4.718, Efficiency: 0.805, ChainEdges: 65},
		},
	}
}

func TestWriteScheduleJSONShape(t *testing.T) {
	var b strings.Builder
	if err := WriteScheduleJSON(&b, sampleSchedule()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Procs        int     `json:"procs"`
		CriticalPath float64 `json:"critical_path"`
		Policies     []struct {
			Policy     string          `json:"policy"`
			MonteCarlo json.RawMessage `json:"monte_carlo"`
		} `json:"policies"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if doc.Procs != 4 || doc.CriticalPath != 4.165 || len(doc.Policies) != 2 {
		t.Fatalf("unexpected document: %s", b.String())
	}
	if doc.Policies[0].MonteCarlo == nil {
		t.Error("cp policy lost its monte_carlo block")
	}
	// A policy without Monte Carlo omits the block (trials=0 service
	// responses depend on it).
	if doc.Policies[1].MonteCarlo != nil {
		t.Errorf("fo policy without MC must omit monte_carlo, got %s", doc.Policies[1].MonteCarlo)
	}
	if !strings.Contains(b.String(), `"quantiles"`) {
		t.Error("quantiles missing from the JSON document")
	}
}

func TestWriteScheduleTextShape(t *testing.T) {
	var b strings.Builder
	if err := WriteScheduleText(&b, sampleSchedule()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"critical path d(G) = 4.165", "scheduling on 4",
		"CP (bottom level)", "failure-aware (First Order)",
		"E[makespan]", "(q = 0.99)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	// The policy without Monte Carlo renders dashes, not zeros.
	foLine := ""
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "failure-aware") {
			foLine = line
		}
	}
	if !strings.Contains(foLine, "-") {
		t.Errorf("MC-less policy row should show dashes: %q", foLine)
	}
}
