package montecarlo

import (
	"strings"
	"testing"

	"repro/internal/failure"
	"repro/internal/linalg"
)

// Negative Trials/Workers used to be silently clamped to the defaults, so
// Config{Trials: -5} ran 300,000 trials for seconds; they must be
// configuration errors.
func TestNegativeConfigRejected(t *testing.T) {
	g, err := linalg.LU(4, linalg.KernelTimes{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := failure.FromPfail(0.001, g.MeanWeight())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEstimator(g, m, Config{Trials: -5}); err == nil || !strings.Contains(err.Error(), "Trials") {
		t.Fatalf("Trials:-5 not rejected (err = %v)", err)
	}
	if _, err := Estimate(g, m, Config{Trials: -1}); err == nil {
		t.Fatal("Estimate accepted negative Trials")
	}
	if _, err := NewEstimator(g, m, Config{Workers: -2}); err == nil || !strings.Contains(err.Error(), "Workers") {
		t.Fatalf("Workers:-2 not rejected (err = %v)", err)
	}
	// Zero still selects the defaults.
	e, err := NewEstimator(g, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if e.cfg.Trials != DefaultTrials {
		t.Fatalf("zero Trials resolved to %d", e.cfg.Trials)
	}
}

// The LegacySampler partitions one stream per worker, so its Result
// depends on Workers at the same Seed — the caveat documented on the
// field. The default sampler's chunked streams are worker-independent;
// both properties are regression-pinned here so the distribution-kernel
// rewrite (or any later change) cannot silently alter either.
func TestLegacySamplerWorkerDependenceVsDefaultIndependence(t *testing.T) {
	g, err := linalg.LU(6, linalg.KernelTimes{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := failure.FromPfail(0.01, g.MeanWeight())
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int, legacy bool) Result {
		r, err := Estimate(g, m, Config{Trials: 20000, Seed: 7, Workers: workers, LegacySampler: legacy})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	l1, l4 := run(1, true), run(4, true)
	if l1.Mean == l4.Mean {
		t.Fatal("legacy sampler unexpectedly worker-independent; update the Config.LegacySampler docs")
	}
	d1, d4 := run(1, false), run(4, false)
	if d1 != d4 {
		t.Fatalf("default sampler depends on Workers: %+v vs %+v", d1, d4)
	}
}
