// Package montecarlo implements the brute-force ground truth of the
// paper's evaluation (§II-A1, §V-C): repeated sampling of per-task
// execution times followed by a longest-path computation, with streaming
// statistics. It also provides exact expectation by subset enumeration for
// tiny graphs, used to validate both the sampler and the analytical
// estimators.
package montecarlo

import "math"

// Welford accumulates a running mean and variance in one pass
// (Welford's algorithm). The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Merge folds another accumulator into w (Chan et al. parallel variant),
// enabling per-worker accumulation with a final reduction.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n1, n2 := float64(w.n), float64(o.n)
	d := o.mean - w.mean
	tot := n1 + n2
	w.mean += d * n2 / tot
	w.m2 += o.m2 + d*d*n1*n2/tot
	w.n += o.n
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 if empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n == 0 {
		return 0
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// Min returns the smallest observation (0 if empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 if empty).
func (w *Welford) Max() float64 { return w.max }

// CI95 returns the half-width of the 95% normal confidence interval of the
// mean.
func (w *Welford) CI95() float64 { return 1.959963984540054 * w.StdErr() }
