package service

import (
	"net/http"
	"time"

	"repro/internal/artifact"
	"repro/internal/metrics"
)

// serverMetrics bundles the makespand metric families, all registered
// on one internal/metrics registry that GET /metrics renders. Request
// counters, latency histograms and response-byte counters are updated
// by the middleware on every request (admission-bypassed probe routes
// included); the shed counter is bumped by the limiter alone, so probe
// traffic can never appear in it. Everything gauge-shaped — in-flight
// requests, admission occupancy and queue depth, per-kind cache
// residency, byte budget, uptime — is func-backed and sampled at
// scrape time from the same state that already serves /healthz and
// GET /v1/cache, so /metrics can never disagree with them.
type serverMetrics struct {
	reg       *metrics.Registry
	requests  *metrics.CounterVec   // route, code
	latency   *metrics.HistogramVec // route
	respBytes *metrics.CounterVec   // route
	shed      *metrics.Counter      // admission sheds (429), limiter only
}

// kindCounterFn adapts one artifact.KindStats field into a per-kind
// CollectFn over the store's live statistics.
func kindCounterFn(s *Server, field func(artifact.KindStats) float64) metrics.CollectFn {
	return func(emit func([]string, float64)) {
		stats := s.reg.Store().Stats()
		for _, kind := range artifact.Kinds() {
			emit([]string{kind}, field(stats[kind]))
		}
	}
}

// single wraps one scalar source as an unlabeled CollectFn.
func single(fn func() float64) metrics.CollectFn {
	return func(emit func([]string, float64)) { emit(nil, fn()) }
}

func newServerMetrics(s *Server) *serverMetrics {
	r := metrics.NewRegistry()
	m := &serverMetrics{
		reg: r,
		requests: r.CounterVec("makespand_http_requests_total",
			"HTTP requests served, by route pattern and status code.",
			"route", "code"),
		latency: r.HistogramVec("makespand_http_request_duration_seconds",
			"HTTP request latency in seconds, by route pattern.",
			metrics.DefLatencyBuckets, "route"),
		respBytes: r.CounterVec("makespand_http_response_bytes_total",
			"Response body bytes written, by route pattern.",
			"route"),
		shed: r.Counter("makespand_requests_shed_total",
			"Estimation requests shed by the admission limiter (answered 429 + Retry-After). Probe routes bypass admission and never count here."),
	}
	r.GaugeFunc("makespand_http_requests_in_flight",
		"Requests currently inside the handler stack (the count a drain waits out).",
		nil, single(func() float64 { return float64(s.inflight.Load()) }))
	r.GaugeFunc("makespand_admission_in_flight",
		"Estimation requests currently holding an admission slot (0 when -max-inflight is unset).",
		nil, single(func() float64 {
			if s.limit == nil {
				return 0
			}
			return float64(len(s.limit.slots))
		}))
	r.GaugeFunc("makespand_admission_queued",
		"Estimation requests waiting in the bounded admission queue.",
		nil, single(func() float64 {
			if s.limit == nil {
				return 0
			}
			return float64(len(s.limit.queue))
		}))
	r.CounterFunc("makespand_cache_hits_total",
		"Artifact resolver hits (resolve found the artifact ready or joined an in-flight build), by artifact kind.",
		[]string{"kind"}, kindCounterFn(s, func(ks artifact.KindStats) float64 { return float64(ks.Hits) }))
	r.CounterFunc("makespand_cache_misses_total",
		"Artifact resolver misses (a build started or a snapshot stored), by artifact kind.",
		[]string{"kind"}, kindCounterFn(s, func(ks artifact.KindStats) float64 { return float64(ks.Misses) }))
	r.CounterFunc("makespand_cache_evictions_total",
		"Artifacts evicted by the LRU byte budget, by artifact kind.",
		[]string{"kind"}, kindCounterFn(s, func(ks artifact.KindStats) float64 { return float64(ks.Evictions) }))
	r.GaugeFunc("makespand_cache_resident",
		"Artifacts currently resident in the store, by artifact kind.",
		[]string{"kind"}, kindCounterFn(s, func(ks artifact.KindStats) float64 { return float64(ks.Resident) }))
	r.GaugeFunc("makespand_cache_resident_bytes",
		"Accounted bytes of resident artifacts, by artifact kind.",
		[]string{"kind"}, kindCounterFn(s, func(ks artifact.KindStats) float64 { return float64(ks.ResidentBytes) }))
	r.GaugeFunc("makespand_cache_used_bytes",
		"Accounted bytes across all resident artifacts.",
		nil, single(func() float64 { return float64(s.reg.Store().UsedBytes()) }))
	r.GaugeFunc("makespand_cache_budget_bytes",
		"The -cache-bytes LRU budget eviction enforces (0 = unlimited).",
		nil, single(func() float64 { return float64(s.reg.Store().Budget()) }))
	r.GaugeFunc("makespand_uptime_seconds",
		"Seconds since the server was constructed.",
		nil, single(func() float64 { return time.Since(s.started).Seconds() }))
	return m
}

// handleMetrics serves the Prometheus text exposition. Like /healthz
// and GET /v1/cache it bypasses admission control, so the fleet can be
// scraped while the daemon sheds load — that is exactly when the
// series matter.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", metrics.TextContentType)
	_ = s.metrics.reg.WriteText(w)
}

// Metrics exposes the server's metric registry (tests scrape through
// the handler; direct instrument access keeps assertions exact).
func (s *Server) Metrics() *metrics.Registry { return s.metrics.reg }
