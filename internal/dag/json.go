package dag

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonGraph is the on-disk representation used by MarshalJSON/UnmarshalJSON
// and the daggen/makespan CLIs.
type jsonGraph struct {
	Tasks []jsonTask `json:"tasks"`
	Edges [][2]int   `json:"edges"`
}

type jsonTask struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
}

// MarshalJSON encodes the graph as {"tasks":[{name,weight}...],
// "edges":[[from,to]...]} with edges in deterministic (from, insertion)
// order.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Tasks: make([]jsonTask, g.NumTasks())}
	for i := 0; i < g.NumTasks(); i++ {
		jg.Tasks[i] = jsonTask{Name: g.Name(i), Weight: g.Weight(i)}
	}
	for u := 0; u < g.NumTasks(); u++ {
		for _, v := range g.Succ(u) {
			jg.Edges = append(jg.Edges, [2]int{u, v})
		}
	}
	return json.Marshal(jg)
}

// UnmarshalJSON decodes a graph previously encoded by MarshalJSON. The
// receiver is replaced wholesale.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return err
	}
	fresh := New(len(jg.Tasks))
	for _, t := range jg.Tasks {
		if _, err := fresh.AddTask(t.Name, t.Weight); err != nil {
			return fmt.Errorf("dag: bad task %q: %w", t.Name, err)
		}
	}
	for _, e := range jg.Edges {
		if err := fresh.AddEdge(e[0], e[1]); err != nil {
			return fmt.Errorf("dag: bad edge %v: %w", e, err)
		}
	}
	*g = *fresh
	return nil
}

// WriteJSON streams the graph to w as JSON.
func WriteJSON(w io.Writer, g *Graph) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}

// ReadJSON parses a graph from r and validates it (acyclicity, weights).
func ReadJSON(r io.Reader) (*Graph, error) {
	var g Graph
	if err := json.NewDecoder(r).Decode(&g); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &g, nil
}
