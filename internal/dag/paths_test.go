package dag

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReachabilityDiamond(t *testing.T) {
	g := Diamond(1, 1, 1, 1)
	r, err := NewReachability(g)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		u, v int
		want bool
	}{
		{0, 3, true}, {0, 1, true}, {0, 2, true},
		{1, 2, false}, {2, 1, false},
		{3, 0, false}, {1, 3, true}, {0, 0, true},
	}
	for _, c := range cases {
		if got := r.Reach(c.u, c.v); got != c.want {
			t.Errorf("Reach(%d,%d) = %v want %v", c.u, c.v, got, c.want)
		}
	}
	if r.Comparable(1, 2) {
		t.Errorf("parallel middles comparable")
	}
	if !r.Comparable(0, 3) || !r.Comparable(3, 0) {
		t.Errorf("source/sink should be comparable both ways")
	}
}

func TestReachabilityMatchesDFS(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, _ := ErdosRenyiDAG(RandomConfig{Tasks: 70, EdgeProb: 0.05}, rng)
	r, err := NewReachability(g)
	if err != nil {
		t.Fatal(err)
	}
	// Brute-force DFS from each node.
	n := g.NumTasks()
	for u := 0; u < n; u++ {
		seen := make([]bool, n)
		stack := []int{u}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[x] {
				continue
			}
			seen[x] = true
			stack = append(stack, g.Succ(x)...)
		}
		for v := 0; v < n; v++ {
			if r.Reach(u, v) != seen[v] {
				t.Fatalf("Reach(%d,%d) = %v, DFS says %v", u, v, r.Reach(u, v), seen[v])
			}
		}
	}
}

func TestAllPairsLongestDiamond(t *testing.T) {
	g := Diamond(1, 5, 3, 2)
	apl, err := NewAllPairsLongest(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := apl.Dist(0, 3); got != 8 {
		t.Errorf("Dist(0,3)=%v want 8", got)
	}
	if got := apl.Dist(0, 0); got != 1 {
		t.Errorf("Dist(0,0)=%v want 1", got)
	}
	if got := apl.Dist(1, 2); !math.IsInf(got, -1) {
		t.Errorf("Dist(1,2)=%v want -Inf", got)
	}
	if got := apl.Dist(3, 0); !math.IsInf(got, -1) {
		t.Errorf("Dist(3,0)=%v want -Inf", got)
	}
}

// Property: AllPairsLongest agrees with LongestPathBetween on random DAGs.
func TestQuickAllPairsAgrees(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := ErdosRenyiDAG(RandomConfig{Tasks: 15, EdgeProb: 0.3}, rng)
		if err != nil {
			return false
		}
		apl, err := NewAllPairsLongest(g)
		if err != nil {
			return false
		}
		for u := 0; u < g.NumTasks(); u++ {
			for v := 0; v < g.NumTasks(); v++ {
				ref, err := LongestPathBetween(g, u, v)
				if err != nil {
					if !math.IsInf(apl.Dist(u, v), -1) {
						return false
					}
					continue
				}
				if math.Abs(ref-apl.Dist(u, v)) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: max over pairs of Dist equals the makespan.
func TestQuickAllPairsMaxIsMakespan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := LayeredRandom(RandomConfig{Tasks: 20, EdgeProb: 0.4, MaxLayerWidth: 4}, rng)
		if err != nil {
			return false
		}
		apl, err := NewAllPairsLongest(g)
		if err != nil {
			return false
		}
		best := math.Inf(-1)
		for u := 0; u < g.NumTasks(); u++ {
			for v := 0; v < g.NumTasks(); v++ {
				if d := apl.Dist(u, v); d > best {
					best = d
				}
			}
		}
		d, _ := Makespan(g)
		return math.Abs(best-d) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCountPaths(t *testing.T) {
	g := Diamond(1, 1, 1, 1)
	n, err := CountPaths(g)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("diamond paths = %v want 2", n)
	}
	// A stack of d diamonds has 2^d paths.
	stack := New(0)
	prev := stack.MustAddTask("s", 1)
	for d := 0; d < 10; d++ {
		l := stack.MustAddTask("l", 1)
		r := stack.MustAddTask("r", 1)
		join := stack.MustAddTask("j", 1)
		stack.MustAddEdge(prev, l)
		stack.MustAddEdge(prev, r)
		stack.MustAddEdge(l, join)
		stack.MustAddEdge(r, join)
		prev = join
	}
	n, _ = CountPaths(stack)
	if n != 1024 {
		t.Fatalf("diamond stack paths = %v want 1024", n)
	}
	if n, _ := CountPaths(Chain(5)); n != 1 {
		t.Fatalf("chain paths = %v want 1", n)
	}
}
