#!/usr/bin/env sh
# e2e_smoke.sh — black-box smoke of the makespand service against the
# CLIs: build the real binaries, start the daemon, drive submit →
# estimate → sweep with curl and diff every response against `makespan
# -format json` / `experiments -format json` output for the same inputs.
# Timing fields (wall clock) are zeroed on both sides before diffing;
# everything else must match byte for byte. The case table lives in
# docs/E2E.md; internal/service/e2e_test.go runs the same checks as a Go
# test.
#
# Usage: scripts/e2e_smoke.sh [port]   (default 17319)
set -eu

cd "$(dirname "$0")/.."
port="${1:-17319}"
base="http://127.0.0.1:$port"
bin="$(mktemp -d)"
work="$(mktemp -d)"
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$bin" "$work"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$bin/" ./cmd/makespand ./cmd/makespan ./cmd/experiments ./cmd/schedsim

echo "== start makespand on $base"
"$bin/makespand" -addr "127.0.0.1:$port" -workers 2 2>"$work/makespand.log" &
pid=$!

# normalize: zero wall-clock fields so diffs see only deterministic bytes.
normalize() {
    sed -E 's/"(mc_time_seconds|time_seconds|uptime_seconds)": [-+0-9.eE]+/"\1": 0/'
}

# Readiness: poll with a hard deadline, but fail fast — with the log —
# the moment the daemon process dies, instead of sitting out the budget.
i=0
until curl -fsS --max-time 2 "$base/healthz" >"$work/healthz.json" 2>/dev/null; do
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "makespand died during startup; log:" >&2
        cat "$work/makespand.log" >&2
        exit 1
    fi
    i=$((i + 1))
    if [ "$i" -ge 300 ]; then
        echo "makespand did not come up within 30s; log:" >&2
        cat "$work/makespand.log" >&2
        exit 1
    fi
    sleep 0.1
done

echo "== E1 healthz"
test "$(jq -r .status "$work/healthz.json")" = "ok"

echo "== E2 submit + get graph"
curl -fsS -X POST "$base/v1/graphs" -d '{"kind":"lu","k":8}' >"$work/submit.json"
gid="$(jq -r .id "$work/submit.json")"
case "$gid" in sha256:*) ;; *)
    echo "bad graph id $gid" >&2
    exit 1
    ;;
esac
curl -fsS "$base/v1/graphs/$gid" | jq -e '.cache' >/dev/null
# Resubmission dedups onto the same id.
test "$(curl -fsS -X POST "$base/v1/graphs" -d '{"kind":"lu","k":8}' | jq -r .id)" = "$gid"

echo "== E3 estimate parity vs makespan CLI"
req='{"kind":"lu","k":8,"pfail":0.001,"methods":"paper","trials":2000,"seed":7}'
curl -fsS -X POST "$base/v1/estimate" -d "$req" | normalize >"$work/svc_est.json"
"$bin/makespan" -kind lu -k 8 -pfail 0.001 -methods paper -trials 2000 -seed 7 -format json |
    normalize >"$work/cli_est.json"
diff -u "$work/cli_est.json" "$work/svc_est.json"

echo "== E4 warm estimate identical to cold"
curl -fsS -X POST "$base/v1/estimate" -d "$req" | normalize >"$work/svc_est2.json"
diff -u "$work/svc_est.json" "$work/svc_est2.json"

echo "== E5 quantiles + bounds parity"
req5='{"graph_id":"'"$gid"'","pfail":0.01,"methods":"all","trials":3000,"seed":11,"bounds":true,"quantiles":[0.5,0.95,0.99]}'
curl -fsS -X POST "$base/v1/estimate" -d "$req5" | normalize >"$work/svc_q.json"
"$bin/makespan" -kind lu -k 8 -pfail 0.01 -methods all -trials 3000 -seed 11 -bounds \
    -quantiles 0.5,0.95,0.99 -format json | normalize >"$work/cli_q.json"
diff -u "$work/cli_q.json" "$work/svc_q.json"

echo "== E6 default sweep parity vs experiments CLI"
curl -fsS -X POST "$base/v1/sweep" -d '{"trials":2000,"seed":7}' | normalize >"$work/svc_sweep.json"
"$bin/experiments" -sweep -format json -trials 2000 -seed 7 2>/dev/null | normalize >"$work/cli_sweep.json"
diff -u "$work/cli_sweep.json" "$work/svc_sweep.json"

echo "== E7 custom sweep parity"
curl -fsS -X POST "$base/v1/sweep" \
    -d '{"kind":"qr","k":6,"pfails":[0.1,0.01],"trials":1500,"seed":3,"methods":"all"}' |
    normalize >"$work/svc_sweep2.json"
"$bin/experiments" -sweep -sweep-kind qr -sweep-k 6 -sweep-pfails 0.1,0.01 \
    -format json -trials 1500 -seed 3 -all-methods 2>/dev/null | normalize >"$work/cli_sweep2.json"
diff -u "$work/cli_sweep2.json" "$work/svc_sweep2.json"

echo "== E8 submitted graph file parity"
go run ./cmd/daggen -kind cholesky -k 5 -json "$work/g.json"
printf '{"graph":%s}' "$(cat "$work/g.json")" >"$work/submit_g.json"
gid2="$(curl -fsS -X POST "$base/v1/graphs" -d @"$work/submit_g.json" | jq -r .id)"
curl -fsS -X POST "$base/v1/estimate" \
    -d '{"graph_id":"'"$gid2"'","pfail":0.01,"methods":"paper","trials":1000,"seed":5}' |
    normalize >"$work/svc_file.json"
"$bin/makespan" -graph "$work/g.json" -pfail 0.01 -methods paper -trials 1000 -seed 5 -format json |
    normalize >"$work/cli_file.json"
diff -u "$work/cli_file.json" "$work/svc_file.json"

echo "== E9 error handling"
code="$(curl -s -o /dev/null -w '%{http_code}' -X POST "$base/v1/estimate" -d '{"graph_id":"sha256:gone"}')"
test "$code" = "404"
code="$(curl -s -o /dev/null -w '%{http_code}' -X POST "$base/v1/estimate" -d '{"kind":"lu","k":8,"pfail":2}')"
test "$code" = "400"
code="$(curl -s -o /dev/null -w '%{http_code}' -X POST "$base/v1/schedule" -d '{"kind":"lu","k":8,"procs":0}')"
test "$code" = "400"

echo "== E10 schedule parity vs schedsim CLI"
req10='{"kind":"lu","k":8,"procs":4,"pfail":0.01,"trials":2000,"seed":7,"quantiles":[0.5,0.99]}'
curl -fsS -X POST "$base/v1/schedule" -d "$req10" | normalize >"$work/svc_sched.json"
"$bin/schedsim" -kind lu -k 8 -procs 4 -pfail 0.01 -trials 2000 -seed 7 \
    -quantiles 0.5,0.99 -format json | normalize >"$work/cli_sched.json"
diff -u "$work/cli_sched.json" "$work/svc_sched.json"

echo "== E11 warm schedule identical + artifact cached"
curl -fsS -X POST "$base/v1/schedule" -d "$req10" | normalize >"$work/svc_sched2.json"
diff -u "$work/svc_sched.json" "$work/svc_sched2.json"
gid_lu8="$(curl -fsS -X POST "$base/v1/graphs" -d '{"kind":"lu","k":8}' | jq -r .id)"
scheds="$(curl -fsS "$base/v1/graphs/$gid_lu8" | jq -r .cache.schedules)"
test "$scheds" -ge 2

echo "== E12 resolver stats (GET /v1/cache)"
curl -fsS "$base/v1/cache" >"$work/cache.json"
# Every declared kind is present, zeroed or not.
for kind in graph plan mc sched snap; do
    jq -e --arg k "$kind" '.kinds[$k] | has("hits") and has("misses") and has("evictions") and has("resident") and has("resident_bytes")' \
        "$work/cache.json" >/dev/null
done
# The cases above left at least: two graphs (lu k=8 + the submitted
# cholesky), per-λ MC estimators, and both policies' frozen schedules.
test "$(jq -r .kinds.graph.resident "$work/cache.json")" -ge 2
test "$(jq -r .kinds.mc.resident "$work/cache.json")" -ge 2
test "$(jq -r .kinds.sched.resident "$work/cache.json")" -ge 2
# Warm traffic (E4/E11 reruns, resubmissions) must register as hits.
test "$(jq -r .kinds.graph.hits "$work/cache.json")" -ge 1
test "$(jq -r .used_bytes "$work/cache.json")" -gt 0

echo "== E13 /metrics scrape shape + counter increments"
curl -fsS "$base/metrics" >"$work/metrics.prom"
# Required families are typed, and the estimate route has a real
# cumulative histogram (the +Inf bucket is the observation count).
grep -q '^# TYPE makespand_http_requests_total counter$' "$work/metrics.prom"
grep -q '^# TYPE makespand_http_request_duration_seconds histogram$' "$work/metrics.prom"
grep -q '^makespand_http_request_duration_seconds_bucket{route="/v1/estimate",le="+Inf"} [1-9]' "$work/metrics.prom"
grep -q '^makespand_http_requests_in_flight ' "$work/metrics.prom"
grep -q '^makespand_requests_shed_total 0$' "$work/metrics.prom"
# Every artifact kind reports cache series (same kinds E12 checked).
for kind in graph plan mc sched snap; do
    grep -q "^makespand_cache_hits_total{kind=\"$kind\"} " "$work/metrics.prom"
    grep -q "^makespand_cache_resident_bytes{kind=\"$kind\"} " "$work/metrics.prom"
done
# One more estimate moves the route's request counter by exactly one.
before="$(grep '^makespand_http_requests_total{route="/v1/estimate",code="200"}' "$work/metrics.prom" | awk '{print $2}')"
curl -fsS -X POST "$base/v1/estimate" -d "$req" >/dev/null
after="$(curl -fsS "$base/metrics" | grep '^makespand_http_requests_total{route="/v1/estimate",code="200"}' | awk '{print $2}')"
test "$after" = "$((before + 1))"

echo "== E14 structured access-log line shape"
# The daemon runs with the default -access-log=true; its stderr is
# $work/makespand.log. Every request must have left one event=request
# line with the documented fields in order. The line is written after
# the response is flushed; give the last one a beat to land.
sleep 0.3
grep -Eq '^event=request method=POST route=/v1/estimate status=200 bytes=[0-9]+ dur_ms=[0-9.]+ deadline_ms=0 outcome=ok$' "$work/makespand.log"
grep -Eq '^event=request method=GET route=/metrics status=200 bytes=[0-9]+ dur_ms=[0-9.]+ deadline_ms=0 outcome=ok$' "$work/makespand.log"
# The E9 rejects logged outcome=error, and nothing ever logged a panic.
grep -Eq '^event=request method=POST route=/v1/estimate status=(400|404) bytes=[0-9]+ dur_ms=[0-9.]+ deadline_ms=0 outcome=error$' "$work/makespand.log"
! grep -q 'outcome=panic' "$work/makespand.log"

echo "e2e smoke: all cases passed"
