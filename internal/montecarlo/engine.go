package montecarlo

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/dag"
	"repro/internal/failure"
	"repro/internal/faultinject"
)

// Mode selects the re-execution model sampled per task.
type Mode int

const (
	// FullReexecution re-executes a failed task until an attempt succeeds:
	// the attempt count is geometric. This is the true model and the
	// paper's ground truth (§V-C samples time-to-failure per attempt).
	FullReexecution Mode = iota
	// SingleRetry allows at most one re-execution (weight a or 2a): the
	// 2-state model underlying the First Order approximation. Useful for
	// isolating the truncation error of the approximations from the
	// modelling error of dropping multi-failures.
	SingleRetry
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case FullReexecution:
		return "full-reexecution"
	case SingleRetry:
		return "single-retry"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parameterizes a Monte Carlo run.
type Config struct {
	// Trials is the number of samples; 0 selects the paper's 300,000.
	// Negative values are a configuration error.
	Trials int
	// Workers is the number of goroutines (0 = GOMAXPROCS; negative is a
	// configuration error). With the default fused sampler the result is
	// bit-identical for any Workers; with LegacySampler it is
	// reproducible only per (Seed, Workers) pair.
	Workers int
	// Seed makes runs reproducible.
	Seed uint64
	// Mode selects the re-execution model (default FullReexecution).
	Mode Mode
	// LegacySampler reproduces the v1 sampling stream: one PCG stream per
	// worker, a two-pass sample-then-evaluate trial, and a rejection loop
	// for geometric attempt counts. The default fused sampler is
	// statistically equivalent and much faster but draws a different
	// stream; keep the old one available for cross-version parity tests.
	//
	// Caveat: because the legacy stream is partitioned per worker, its
	// Result depends on Workers — the same Seed with Workers:1 and
	// Workers:4 yields different means. The default sampler assigns
	// fixed-size trial chunks to deterministic per-chunk streams and is
	// therefore worker-count independent (see determinism_test.go).
	LegacySampler bool

	// Tolerance > 0 makes the run adaptive: instead of a fixed trial
	// budget, whole 4096-trial chunks run until the confidence interval
	// of the requested statistic (the TargetQuantile's order-statistic
	// interval, or the mean's normal interval when TargetQuantile is 0)
	// has half-width <= Tolerance, capped by MaxTrials. Trials must be 0
	// (the two budgets are mutually exclusive). Because chunk streams are
	// indexed by chunk number and folded in chunk order, the stopping
	// point is a prefix of the same trial stream: an adaptive run that
	// stops after k chunks is bit-identical to a fixed-budget run of
	// k*4096 trials, for any Workers (see adaptive_test.go).
	// Incompatible with LegacySampler (whose stream is per-worker, not
	// per-chunk). Negative or non-finite values are configuration errors.
	Tolerance float64
	// TargetQuantile selects which statistic the stopping rule watches:
	// a quantile in (0,1) (its CI comes from the run's QuantileSketch via
	// binomial order-statistic bounds, see QuantileSketch.QuantileCI) or
	// 0 for the mean (normal CI at the same Confidence). Only meaningful
	// with Tolerance > 0; any other use is a configuration error.
	TargetQuantile float64
	// Confidence is the stopping rule's confidence level in (0,1);
	// 0 selects DefaultConfidence. Only meaningful with Tolerance > 0.
	Confidence float64
	// MaxTrials caps an adaptive run (0 = DefaultTrials). The cap is
	// rounded up to a whole chunk so adaptive runs and snapshots stay
	// chunk-aligned. Only meaningful with Tolerance > 0; negative values
	// are configuration errors.
	MaxTrials int
}

// Adaptive reports whether the configuration selects sequential stopping.
func (c Config) Adaptive() bool { return c.Tolerance > 0 }

// DefaultTrials is the paper's trial count.
const DefaultTrials = 300000

// DefaultConfidence is the adaptive stopping rule's confidence level when
// Config.Confidence is 0.
const DefaultConfidence = 0.95

// ChunkTrials is the number of trials per RNG chunk — the granularity of
// adaptive stopping and of resumable snapshots (see chunkSize).
const ChunkTrials = chunkSize

// chunkSize is the number of consecutive trials sharing one RNG stream.
// Chunking is what makes results independent of the worker count: chunk c
// always covers trials [c·chunkSize, (c+1)·chunkSize) with the stream
// derived from (Seed, c), whichever worker happens to run it, and the
// final reduction folds chunks in index order.
const chunkSize = 4096

// Result summarizes a Monte Carlo estimate of the expected makespan.
type Result struct {
	Mean     float64 // estimated expected makespan
	StdDev   float64 // sample standard deviation of the makespan
	StdErr   float64 // standard error of Mean
	CI95     float64 // half-width of the 95% CI around Mean
	Min, Max float64 // extreme sampled makespans
	Trials   int     // trials folded into this result (== TrialsRun)

	// TrialsRun is the number of trials actually executed. For
	// fixed-budget runs it equals Config.Trials; adaptive runs stop at
	// the first chunk whose target CI is within tolerance, so it is
	// usually far smaller than MaxTrials.
	TrialsRun int
	// Converged reports whether an adaptive run met its tolerance before
	// the MaxTrials cap. Always false for fixed-budget runs.
	Converged bool
	// AchievedCI is the half-width of the stopping rule's confidence
	// interval at the final trial count (quantile order-statistic CI for
	// a TargetQuantile run, mean CI otherwise). Zero for fixed-budget
	// runs and when too few samples exist to form the interval.
	AchievedCI float64
}

// Estimator runs Monte Carlo estimation on one graph. It compiles the
// graph into its frozen CSR form, precomputes per-task failure
// probabilities (permuted into topological order), and processes each
// trial chunk in two phases: a sequential sampling pass locating the
// chunk's failures (the exact per-trial RNG draw order of the fused v2
// engine, resolved through bit-level threshold tables, see sampler.go),
// then a lane-blocked structure-of-arrays evaluation of the deferred
// multi-failure trials (see batch.go). Zero- and single-failure trials
// never touch the graph.
// An Estimator is a snapshot: weights and failure probabilities are
// captured at construction, and both samplers run on the snapshot.
// Mutating the graph afterwards makes Run/RunSamples fail with
// ErrStaleGraph — build a new estimator instead.
type Estimator struct {
	g      *dag.Graph
	cfg    Config
	pfail  []float64 // task-ID order, for the legacy sampler
	baseID []float64 // task-ID-order weight snapshot, for the legacy sampler

	frozen *dag.Frozen
	// Everything below is in topological order.
	base    []float64 // failure-free weights
	pfTopo  []float64 // first-attempt failure probability
	invLnPf []float64 // 1/ln(pf) where pf > 0 (direct geometric inversion)
	hpt     []float64 // head+tail−2a: longest path through k, minus its weight counted twice
	d0      float64   // failure-free makespan
	pfMax   float64   // max over tasks of pf, the thinning envelope
	invLnQ  float64   // 1/ln(1−pfMax); 0 when pfMax == 0

	tables *samplerTables // bit-threshold tables of the fast sampler (may be nil)
	sinks  []int32        // positions with no successors, for the lane kernel

	// Test toggles forcing the reference paths; results must be identical
	// either way (see determinism_test.go).
	refSampler bool // use the math.Log reference sampler
	scalarEval bool // evaluate multi-failure trials one at a time
}

// NewEstimator prepares a Monte Carlo estimator. The graph must be acyclic.
func NewEstimator(g *dag.Graph, model failure.Model, cfg Config) (*Estimator, error) {
	rates := make([]float64, g.NumTasks())
	for i := range rates {
		rates[i] = model.Lambda
	}
	return NewEstimatorRates(g, rates, cfg)
}

// NewEstimatorFrozen prepares an estimator on an already-frozen graph,
// sharing the compiled CSR form with other consumers instead of
// re-freezing (the experiments cell scheduler holds one Frozen per sweep
// and builds one estimator per pfail point from it; schedmc hands in a
// frozen schedule DAG, whose longest path is a scheduled makespan — the
// engine needs no notion of processors to evaluate it). The frozen
// snapshot must be up to date with its source graph.
func NewEstimatorFrozen(f *dag.Frozen, model failure.Model, cfg Config) (*Estimator, error) {
	rates := make([]float64, f.NumTasks())
	for i := range rates {
		rates[i] = model.Lambda
	}
	return newEstimatorRates(f.Graph(), f, rates, cfg)
}

// NewEstimatorRates prepares an estimator with a per-task error rate λ_i
// (tasks at different DVFS speeds or on heterogeneous processors).
func NewEstimatorRates(g *dag.Graph, rates []float64, cfg Config) (*Estimator, error) {
	return newEstimatorRates(g, nil, rates, cfg)
}

func newEstimatorRates(g *dag.Graph, frozen *dag.Frozen, rates []float64, cfg Config) (*Estimator, error) {
	if len(rates) != g.NumTasks() {
		return nil, fmt.Errorf("montecarlo: %d rates for %d tasks", len(rates), g.NumTasks())
	}
	cfg, err := normalizeConfig(cfg)
	if err != nil {
		return nil, err
	}
	if frozen == nil {
		var err error
		frozen, err = dag.Freeze(g)
		if err != nil {
			return nil, err
		}
	} else if !frozen.UpToDate() {
		// A stale snapshot would mix old topology with current weights.
		return nil, ErrStaleGraph
	}
	n := g.NumTasks()
	pf := make([]float64, n)
	for i := range pf {
		if rates[i] < 0 || rates[i] != rates[i] {
			return nil, fmt.Errorf("montecarlo: bad rate λ_%d = %v", i, rates[i])
		}
		pf[i] = failure.Model{Lambda: rates[i]}.PFail(g.Weight(i))
		// pf saturates to exactly 1 once λ·a ≳ 37. Under SingleRetry that
		// is still well-defined (the task always takes 2a); under full
		// re-execution the attempt count diverges, so reject it instead of
		// sampling astronomically large geometric counts (the v1 rejection
		// loop would never have terminated either).
		if pf[i] >= 1 && cfg.Mode != SingleRetry {
			return nil, fmt.Errorf("montecarlo: task %d can never succeed (pfail = %v)", i, pf[i])
		}
	}
	e := &Estimator{
		g:       g,
		cfg:     cfg,
		frozen:  frozen,
		base:    frozen.WeightsTopo(),
		pfTopo:  make([]float64, n),
		invLnPf: make([]float64, n),
		hpt:     make([]float64, n),
	}
	if cfg.LegacySampler {
		// Task-ID-order snapshots only the legacy sampler reads.
		e.pfail = pf
		e.baseID = g.Weights()
	}
	e.frozen.Gather(e.pfTopo, pf)
	for k, p := range e.pfTopo {
		if p > 0 {
			e.invLnPf[k] = 1 / math.Log(p)
		}
		if p > e.pfMax {
			e.pfMax = p
		}
	}
	if e.pfMax > 0 {
		e.invLnQ = 1 / math.Log1p(-e.pfMax)
	}
	// Heads, tails and d0 of the failure-free graph: a single failure of
	// the task at position k moves the makespan to max(d0, hpt[k]+w) where
	// w is the task's inflated weight — an O(1) trial.
	heads := make([]float64, n)
	tails := make([]float64, n)
	e.d0 = frozen.MakespanTopo(e.base, heads)
	frozen.TailsTopo(e.base, tails)
	for k := 0; k < n; k++ {
		e.hpt[k] = heads[k] + tails[k] - 2*e.base[k]
	}
	for k := 0; k < n; k++ {
		if frozen.OutDegreeTopo(k) == 0 {
			e.sinks = append(e.sinks, int32(k))
		}
	}
	if !cfg.LegacySampler {
		// The legacy sampler never reads the threshold tables; skip the
		// construction-time bit searches.
		e.buildTables(false)
	}
	return e, nil
}

// normalizeConfig validates a run configuration and fills in defaults.
// It is shared by NewEstimator* and WithConfig so the two construction
// paths cannot drift. Negative counts are configuration errors, not
// defaults: silently clamping Trials:-5 to 300,000 turns a typo into a
// seconds-long run. In adaptive mode (Tolerance > 0) the trial budget is
// the chunk-aligned MaxTrials cap; Trials must be 0.
func normalizeConfig(cfg Config) (Config, error) {
	if cfg.Trials < 0 {
		return cfg, fmt.Errorf("montecarlo: negative Trials %d (0 selects the default %d)", cfg.Trials, DefaultTrials)
	}
	if cfg.Workers < 0 {
		return cfg, fmt.Errorf("montecarlo: negative Workers %d (0 selects GOMAXPROCS)", cfg.Workers)
	}
	if cfg.Tolerance < 0 || math.IsNaN(cfg.Tolerance) || math.IsInf(cfg.Tolerance, 0) {
		return cfg, fmt.Errorf("montecarlo: bad Tolerance %v (must be a finite value >= 0; 0 disables adaptive stopping)", cfg.Tolerance)
	}
	if !cfg.Adaptive() {
		// The adaptive knobs are meaningless without a tolerance; reject
		// them instead of silently ignoring a half-configured request.
		if cfg.MaxTrials != 0 {
			return cfg, fmt.Errorf("montecarlo: MaxTrials %d needs Tolerance > 0 (use Trials for a fixed budget)", cfg.MaxTrials)
		}
		if cfg.TargetQuantile != 0 {
			return cfg, fmt.Errorf("montecarlo: TargetQuantile %v needs Tolerance > 0", cfg.TargetQuantile)
		}
		if cfg.Confidence != 0 {
			return cfg, fmt.Errorf("montecarlo: Confidence %v needs Tolerance > 0", cfg.Confidence)
		}
		if cfg.Trials == 0 {
			cfg.Trials = DefaultTrials
		}
	} else {
		if cfg.LegacySampler {
			return cfg, fmt.Errorf("montecarlo: Tolerance requires the chunked default sampler (LegacySampler streams are per-worker and cannot stop at a worker-invariant prefix)")
		}
		if cfg.Trials != 0 {
			return cfg, fmt.Errorf("montecarlo: Trials %d and Tolerance %v are mutually exclusive (cap adaptive runs with MaxTrials)", cfg.Trials, cfg.Tolerance)
		}
		if cfg.MaxTrials < 0 {
			return cfg, fmt.Errorf("montecarlo: negative MaxTrials %d (0 selects the default %d)", cfg.MaxTrials, DefaultTrials)
		}
		if cfg.MaxTrials == 0 {
			cfg.MaxTrials = DefaultTrials
		}
		if q := cfg.TargetQuantile; q != 0 && !(q > 0 && q < 1) {
			return cfg, fmt.Errorf("montecarlo: TargetQuantile %v outside (0,1) (0 selects the mean)", q)
		}
		if cfg.Confidence == 0 {
			cfg.Confidence = DefaultConfidence
		}
		if !(cfg.Confidence > 0 && cfg.Confidence < 1) {
			return cfg, fmt.Errorf("montecarlo: Confidence %v outside (0,1)", cfg.Confidence)
		}
		// Chunk-align the cap (rounding up) so every adaptive stopping
		// point — including the capped one — is a whole-chunk prefix that
		// a snapshot can extend bit-identically.
		chunks := (cfg.MaxTrials + chunkSize - 1) / chunkSize
		cfg.MaxTrials = chunks * chunkSize
		cfg.Trials = cfg.MaxTrials
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers > cfg.Trials {
		cfg.Workers = cfg.Trials
	}
	return cfg, nil
}

// mcWorker is the per-goroutine trial state: scratch buffers sized once so
// the per-chunk loops never allocate (the SoA batch scratch is added
// lazily on the first multi-failure block).
type mcWorker struct {
	e       *Estimator
	w       []float64 // topo weights, == base between trials
	comp    []float64 // scalar kernel scratch
	failPos []int32   // positions failed this trial
	failW   []float64 // their inflated weights
	res     []float64 // per-chunk results, chunk-relative trial order
	blk     laneBlock // deferred multi-failure trials
	bs      *batchScratch
}

func (e *Estimator) newWorker() *mcWorker {
	n := e.frozen.NumTasks()
	wk := &mcWorker{
		e:       e,
		w:       make([]float64, n),
		comp:    make([]float64, n),
		failPos: make([]int32, n),
		failW:   make([]float64, n),
		res:     make([]float64, chunkSize),
	}
	copy(wk.w, e.base)
	return wk
}

// runChunk processes trials [t0, t1) of one chunk in two phases: a
// sequential sampling pass (exact per-trial draw order; zero- and
// single-failure trials are resolved in O(1) on the spot) and a batched
// evaluation of the deferred multi-failure trials. Results land in
// wk.res[0:t1-t0] in trial order.
func (wk *mcWorker) runChunk(rng splitMix64, t0, t1 int) {
	e := wk.e
	res := wk.res[:t1-t0]
	if e.pfMax == 0 {
		// Zero-pfail fast path: every task is deterministic, no draws.
		for i := range res {
			res[i] = e.d0
		}
		return
	}
	wk.blk.reset()
	scalar := e.scalarEval
	for t := 0; t < t1-t0; t++ {
		nfail := wk.sample(&rng)
		switch nfail {
		case 0:
			res[t] = e.d0
		case 1:
			// Only one task changed: the new makespan is the longest path
			// through it against the failure-free rest, exactly.
			v := e.hpt[wk.failPos[0]] + wk.failW[0]
			if v < e.d0 {
				v = e.d0
			}
			res[t] = v
		default:
			if scalar {
				res[t] = wk.evalScalar(nfail)
				continue
			}
			if wk.blk.full() {
				wk.evalBlock(&wk.blk)
				wk.blk.reset()
			}
			wk.blk.add(t, wk.failPos[:nfail], wk.failW[:nfail])
		}
	}
	if wk.blk.n > 0 {
		wk.evalBlock(&wk.blk)
		wk.blk.reset()
	}
}

// numChunks is the fixed chunk count for this estimator's trial budget;
// chunk assignment and the reduction both derive from it.
func (e *Estimator) numChunks() int {
	return (e.cfg.Trials + chunkSize - 1) / chunkSize
}

// runChunks executes all trial chunks across cfg.Workers goroutines,
// calling observe(chunk, trialIndex, makespan) for every trial of a chunk
// in trial order. observe must be safe for concurrent calls with distinct
// chunks; chunk indices are in [0, numChunks()).
//
// Cancellation is checked at chunk boundaries — the natural
// prefix-deterministic stopping points. A cancelled run returns
// ctx.Err() and the caller must discard whatever observe accumulated:
// runChunks never produces a partial Result. The checks cost nothing on
// the hot path: ctx.Done() is captured once and is nil for
// context.Background(), and the faultinject gate is one atomic load.
func (e *Estimator) runChunks(ctx context.Context, observe func(c int64, t int, x float64)) error {
	trials := e.cfg.Trials
	nChunks := int64(e.numChunks())
	workers := e.cfg.Workers
	if int64(workers) > nChunks {
		workers = int(nChunks)
	}
	done := ctx.Done()
	var next atomic.Int64
	var abort atomic.Bool
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		abort.Store(true)
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wk := e.newWorker()
			for {
				c := next.Add(1) - 1
				if c >= nChunks {
					return
				}
				if done != nil {
					if abort.Load() {
						return
					}
					select {
					case <-done:
						fail(ctx.Err())
						return
					default:
					}
				}
				if faultinject.Enabled() {
					if abort.Load() {
						return
					}
					if err := faultinject.Hit(ctx, "mc.chunk"); err != nil {
						fail(err)
						return
					}
				}
				t0 := int(c) * chunkSize
				t1 := t0 + chunkSize
				if t1 > trials {
					t1 = trials
				}
				wk.runChunk(newChunkRNG(e.cfg.Seed, c), t0, t1)
				for t := t0; t < t1; t++ {
					observe(c, t, wk.res[t-t0])
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// ErrStaleGraph is returned by Run/RunSamples when the graph was mutated
// after NewEstimator; the estimator is a snapshot and will not observe
// the mutation.
var ErrStaleGraph = errors.New("montecarlo: graph mutated after NewEstimator; build a new estimator")

// D0 returns the failure-free makespan of the snapshot weights — the
// value every zero-failure trial evaluates to. Schedule consumers
// (schedmc.NewEstimator) cross-check it against the committed
// schedule's makespan at construction.
func (e *Estimator) D0() float64 { return e.d0 }

// fresh verifies the snapshot still matches the source graph.
func (e *Estimator) fresh() error {
	if !e.frozen.UpToDate() {
		return ErrStaleGraph
	}
	return nil
}

// Run executes the configured trials and returns the estimate. With the
// default sampler the result depends only on (Seed, Trials, Mode), not on
// Workers. With Tolerance > 0 the run is adaptive: chunks run until the
// target CI is within tolerance (or MaxTrials is hit) and Result reports
// the trials actually spent — still worker-count invariant, because the
// stopping point is a deterministic function of the chunk-ordered prefix.
func (e *Estimator) Run() (Result, error) {
	return e.RunContext(context.Background())
}

// RunContext is Run with cancellation: the deadline or cancel of ctx is
// honored at chunk boundaries (per ~512-trial batch for the legacy
// sampler), and a cancelled run returns ctx.Err() with a zero Result —
// never a partial estimate, so a retry after cancellation reproduces
// the same bytes a never-cancelled run would have. A background context
// adds no per-chunk overhead.
func (e *Estimator) RunContext(ctx context.Context) (Result, error) {
	if err := e.fresh(); err != nil {
		return Result{}, err
	}
	if e.cfg.Adaptive() {
		res, _, err := e.ResumeAdaptiveContext(ctx, nil, nil)
		return res, err
	}
	if e.cfg.LegacySampler {
		return e.legacyRun(ctx)
	}
	return e.runReduce(ctx, nil)
}

// runReduce runs all chunks, reduces the per-chunk accumulators in chunk
// order (the step that makes the Result worker-count invariant), and
// optionally streams every trial to sink. Shared by Run and RunSamples so
// their Results cannot diverge.
func (e *Estimator) runReduce(ctx context.Context, sink func(t int, x float64)) (Result, error) {
	accs := make([]Welford, e.numChunks())
	err := e.runChunks(ctx, func(c int64, t int, x float64) {
		accs[c].Add(x)
		if sink != nil {
			sink(t, x)
		}
	})
	if err != nil {
		return Result{}, err
	}
	var total Welford
	for i := range accs {
		total.Merge(accs[i])
	}
	return resultFrom(total), nil
}

func resultFrom(w Welford) Result {
	return Result{
		Mean:      w.Mean(),
		StdDev:    w.StdDev(),
		StdErr:    w.StdErr(),
		CI95:      w.CI95(),
		Min:       w.Min(),
		Max:       w.Max(),
		Trials:    int(w.N()),
		TrialsRun: int(w.N()),
	}
}

// legacyRun is the v1 engine: one deterministic PCG stream per worker and
// a two-pass sample-then-evaluate trial. Kept behind Config.LegacySampler
// so parity tests can compare the fused sampler against the old stream.
func (e *Estimator) legacyRun(ctx context.Context) (Result, error) {
	per := e.cfg.Trials / e.cfg.Workers
	extra := e.cfg.Trials % e.cfg.Workers
	accs := make([]Welford, e.cfg.Workers)
	done := ctx.Done()
	var wg sync.WaitGroup
	for w := 0; w < e.cfg.Workers; w++ {
		trials := per
		if w < extra {
			trials++
		}
		wg.Add(1)
		go func(w, trials int) {
			defer wg.Done()
			rng := newWorkerRNG(e.cfg.Seed, w)
			pe := dag.NewPathEvaluatorFrozen(e.frozen)
			weights := make([]float64, e.g.NumTasks())
			for t := 0; t < trials; t++ {
				if done != nil && t&511 == 0 {
					select {
					case <-done:
						return
					default:
					}
				}
				e.sampleWeights(rng, weights)
				accs[w].Add(pe.MakespanWith(weights))
			}
		}(w, trials)
	}
	wg.Wait()
	// Early-returning workers are only possible on cancellation; the
	// partial accumulators are discarded with the error.
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	var total Welford
	for i := range accs {
		total.Merge(accs[i])
	}
	return resultFrom(total), nil
}

// sampleWeights fills weights (task-ID order) with one sample of per-task
// execution times, using the legacy rejection loop.
func (e *Estimator) sampleWeights(rng *rand.Rand, weights []float64) {
	for i := range e.baseID {
		a := e.baseID[i]
		pf := e.pfail[i]
		if pf == 0 {
			weights[i] = a
			continue
		}
		switch e.cfg.Mode {
		case SingleRetry:
			if rng.Float64() < pf {
				weights[i] = 2 * a
			} else {
				weights[i] = a
			}
		default: // FullReexecution
			attempts := 1
			for rng.Float64() < pf {
				attempts++
			}
			weights[i] = float64(attempts) * a
		}
	}
}

// newWorkerRNG returns the independent deterministic stream of legacy
// worker w.
func newWorkerRNG(seed uint64, w int) *rand.Rand {
	return rand.New(rand.NewPCG(seed, uint64(w)+0x9e3779b97f4a7c15))
}

// Estimate is a convenience wrapper building a transient Estimator.
func Estimate(g *dag.Graph, model failure.Model, cfg Config) (Result, error) {
	e, err := NewEstimator(g, model, cfg)
	if err != nil {
		return Result{}, err
	}
	return e.Run()
}

// EstimateRates is Estimate with per-task error rates.
func EstimateRates(g *dag.Graph, rates []float64, cfg Config) (Result, error) {
	e, err := NewEstimatorRates(g, rates, cfg)
	if err != nil {
		return Result{}, err
	}
	return e.Run()
}
