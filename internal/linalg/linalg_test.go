package linalg

import (
	"strings"
	"testing"

	"repro/internal/dag"
)

func TestKernelStrings(t *testing.T) {
	if POTRF.String() != "POTRF" || TSMQR.String() != "TSMQR" {
		t.Fatalf("kernel names wrong: %v %v", POTRF, TSMQR)
	}
	if s := Kernel(99).String(); !strings.Contains(s, "99") {
		t.Fatalf("out-of-range kernel String: %s", s)
	}
}

func TestDefaultKernelTimesPositive(t *testing.T) {
	kt := DefaultKernelTimes()
	for k := Kernel(0); k < numKernels; k++ {
		if kt.Time(k) <= 0 {
			t.Errorf("time(%v) = %v", k, kt.Time(k))
		}
	}
	// GEMM-class kernels must be cheaper per flop than panel kernels
	// (GPU substitution documented in the package comment).
	if kt[GEMM]/flopsB3[GEMM] >= kt[POTRF]/flopsB3[POTRF] {
		t.Errorf("GEMM per-flop time should be below POTRF's")
	}
	// QR kernels roughly 2x their LU counterparts in flops.
	if flopsB3[TSMQR] != 2*flopsB3[GEMM] || flopsB3[GEQRT] != 2*flopsB3[GETRF] {
		t.Errorf("QR/LU flop ratio broken")
	}
}

func TestUniformAndScaledTimes(t *testing.T) {
	u := UniformKernelTimes(2)
	for k := Kernel(0); k < numKernels; k++ {
		if u.Time(k) != 2 {
			t.Fatalf("uniform time(%v) = %v", k, u.Time(k))
		}
	}
	s := u.Scaled(3)
	if s.Time(GEMM) != 6 {
		t.Fatalf("scaled = %v", s.Time(GEMM))
	}
}

func TestCholeskyCounts(t *testing.T) {
	for k := 1; k <= 12; k++ {
		g, err := Cholesky(k, KernelTimes{})
		if err != nil {
			t.Fatal(err)
		}
		if g.NumTasks() != CholeskyTaskCount(k) {
			t.Fatalf("k=%d: tasks %d != formula %d", k, g.NumTasks(), CholeskyTaskCount(k))
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
	// Paper Figure 1: k=5 Cholesky DAG has 35 tasks.
	if CholeskyTaskCount(5) != 35 {
		t.Fatalf("CholeskyTaskCount(5) = %d want 35", CholeskyTaskCount(5))
	}
}

func TestLUCounts(t *testing.T) {
	for k := 1; k <= 12; k++ {
		g, err := LU(k, KernelTimes{})
		if err != nil {
			t.Fatal(err)
		}
		if g.NumTasks() != LUTaskCount(k) {
			t.Fatalf("k=%d: tasks %d != formula %d", k, g.NumTasks(), LUTaskCount(k))
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
	// Paper Figure 2: k=5 LU DAG has 55 tasks; Table I: k=20 has 2,870.
	if LUTaskCount(5) != 55 {
		t.Fatalf("LUTaskCount(5) = %d want 55", LUTaskCount(5))
	}
	if LUTaskCount(20) != 2870 {
		t.Fatalf("LUTaskCount(20) = %d want 2870 (paper Table I)", LUTaskCount(20))
	}
}

func TestQRCounts(t *testing.T) {
	for k := 1; k <= 12; k++ {
		g, err := QR(k, KernelTimes{})
		if err != nil {
			t.Fatal(err)
		}
		if g.NumTasks() != QRTaskCount(k) {
			t.Fatalf("k=%d: tasks %d != formula %d", k, g.NumTasks(), QRTaskCount(k))
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
	if QRTaskCount(5) != 55 {
		t.Fatalf("QRTaskCount(5) = %d want 55", QRTaskCount(5))
	}
}

func TestSingleSourceSingleSink(t *testing.T) {
	// Each factorization DAG must start at the step-0 panel task and end at
	// the step-(k-1) panel task.
	for _, f := range All() {
		g, err := Generate(f, 6, KernelTimes{})
		if err != nil {
			t.Fatal(err)
		}
		if src := g.Sources(); len(src) != 1 {
			t.Errorf("%s: sources = %d want 1", f, len(src))
		}
		if snk := g.Sinks(); len(snk) != 1 {
			t.Errorf("%s: sinks = %d want 1", f, len(snk))
		}
	}
}

func TestCholeskyK2Structure(t *testing.T) {
	// k=2: POTRF_0 -> TRSM_1_0 -> SYRK_1_0 -> POTRF_1, a 4-task chain.
	g, _ := Cholesky(2, UniformKernelTimes(1))
	if g.NumTasks() != 4 || g.NumEdges() != 3 {
		t.Fatalf("k=2 shape: %v", g)
	}
	d, _ := dag.Makespan(g)
	if d != 4 {
		t.Fatalf("k=2 makespan = %v want 4", d)
	}
}

func TestCriticalPathGrowsWithK(t *testing.T) {
	kt := DefaultKernelTimes()
	var prev float64
	for _, k := range []int{2, 4, 6, 8} {
		for _, f := range All() {
			g, _ := Generate(f, k, kt)
			d, err := dag.Makespan(g)
			if err != nil {
				t.Fatal(err)
			}
			if d <= 0 {
				t.Fatalf("%s k=%d: makespan %v", f, k, d)
			}
			_ = prev
		}
		g, _ := Cholesky(k, kt)
		d, _ := dag.Makespan(g)
		if d <= prev {
			t.Fatalf("Cholesky makespan not increasing: k=%d d=%v prev=%v", k, d, prev)
		}
		prev = d
	}
}

func TestMeanWeightNearPaperValue(t *testing.T) {
	// The substitution scales kernel times so ā is near the paper's 0.15 s
	// for mid-size Cholesky DAGs (see package comment); allow a wide band.
	g, _ := Cholesky(10, KernelTimes{})
	mean := g.MeanWeight()
	if mean < 0.05 || mean > 0.45 {
		t.Fatalf("mean weight %v not near 0.15", mean)
	}
}

func TestQRMoreExpensiveThanLU(t *testing.T) {
	kt := DefaultKernelTimes()
	lu, _ := LU(8, kt)
	qr, _ := QR(8, kt)
	if qr.TotalWeight() <= lu.TotalWeight() {
		t.Fatalf("QR total %v should exceed LU total %v", qr.TotalWeight(), lu.TotalWeight())
	}
}

func TestTaskNamesMatchPaperConvention(t *testing.T) {
	g, _ := Cholesky(5, KernelTimes{})
	seen := map[string]bool{}
	for i := 0; i < g.NumTasks(); i++ {
		seen[g.Name(i)] = true
	}
	for _, want := range []string{"POTRF_4", "TRSM_4_2", "SYRK_4_3", "GEMM_4_2_1", "GEMM_3_2_0"} {
		if !seen[want] {
			t.Errorf("Cholesky k=5 missing task %s (paper Fig. 1)", want)
		}
	}
	g, _ = LU(5, KernelTimes{})
	seen = map[string]bool{}
	for i := 0; i < g.NumTasks(); i++ {
		seen[g.Name(i)] = true
	}
	for _, want := range []string{"GETRF_4", "TRSML_4_1", "TRSMU_1_4", "GEMM_4_4_2", "GEMM_1_2_0"} {
		if !seen[want] {
			t.Errorf("LU k=5 missing task %s (paper Fig. 2)", want)
		}
	}
	g, _ = QR(5, KernelTimes{})
	seen = map[string]bool{}
	for i := 0; i < g.NumTasks(); i++ {
		seen[g.Name(i)] = true
	}
	for _, want := range []string{"GEQRT_4", "TSQRT_4_2", "UNMQR_2_4", "TSMQR_4_4_3", "TSMQR_1_2_0"} {
		if !seen[want] {
			t.Errorf("QR k=5 missing task %s (paper Fig. 3)", want)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate("nope", 4, KernelTimes{}); err == nil {
		t.Error("unknown factorization accepted")
	}
	if _, err := Cholesky(0, KernelTimes{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := LU(-1, KernelTimes{}); err == nil {
		t.Error("k<0 accepted")
	}
	if _, err := QR(0, KernelTimes{}); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestEdgeCountsStable(t *testing.T) {
	// Golden edge counts guard against accidental dependency changes.
	cases := []struct {
		f    Factorization
		k    int
		want int
	}{
		{FactCholesky, 5, 60},
		{FactLU, 5, 110},
		{FactQR, 5, 110},
	}
	for _, c := range cases {
		g, _ := Generate(c.f, c.k, KernelTimes{})
		if g.NumEdges() != c.want {
			t.Errorf("%s k=%d edges = %d want %d", c.f, c.k, g.NumEdges(), c.want)
		}
	}
}
