package failure

import (
	"math"
	"testing"

	"repro/internal/dag"
)

func TestVerificationValidate(t *testing.T) {
	if err := (Verification{Fraction: -0.1}).Validate(); err == nil {
		t.Error("negative fraction accepted")
	}
	if err := (Verification{Fixed: math.NaN()}).Validate(); err == nil {
		t.Error("NaN fixed accepted")
	}
	if err := (Verification{Fraction: 0.05, Fixed: 0.01}).Validate(); err != nil {
		t.Errorf("valid overhead rejected: %v", err)
	}
}

func TestVerificationApply(t *testing.T) {
	g := dag.Chain(3, 1, 2, 4)
	v := Verification{Fraction: 0.1, Fixed: 0.5}
	out, err := v.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1*1.1 + 0.5, 2*1.1 + 0.5, 4*1.1 + 0.5}
	for i, w := range want {
		if math.Abs(out.Weight(i)-w) > 1e-12 {
			t.Fatalf("weight %d = %v want %v", i, out.Weight(i), w)
		}
	}
	// Original untouched.
	if g.Weight(0) != 1 {
		t.Fatal("Apply mutated the input graph")
	}
	// Structure preserved.
	if out.NumEdges() != g.NumEdges() || out.NumTasks() != g.NumTasks() {
		t.Fatal("Apply changed the structure")
	}
}

func TestVerificationSkipsZeroWeightTasks(t *testing.T) {
	g := dag.ForkJoin(3, 2.0) // source and sink have zero weight
	v := Verification{Fixed: 1}
	out, err := v.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if out.Weight(0) != 0 {
		t.Fatalf("structural source gained weight %v", out.Weight(0))
	}
	if out.Weight(1) != 3 {
		t.Fatalf("real task weight = %v want 3", out.Weight(1))
	}
}

func TestVerificationOverhead(t *testing.T) {
	g := dag.Chain(4, 1)
	v := Verification{Fraction: 0.25}
	oh, err := v.Overhead(g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(oh-0.25) > 1e-12 {
		t.Fatalf("overhead = %v want 0.25", oh)
	}
	empty := dag.New(0)
	if oh, _ := v.Overhead(empty); oh != 0 {
		t.Fatalf("empty overhead = %v", oh)
	}
	if _, err := (Verification{Fraction: -1}).Overhead(g); err == nil {
		t.Fatal("invalid verification accepted")
	}
}

func TestVerificationRaisesExpectedMakespan(t *testing.T) {
	// Verified tasks are longer, so they fail more often AND cost more per
	// re-execution: the expected time must grow superlinearly vs Fixed=0.
	m, _ := New(0.1)
	base := m.ExpectedTime(2)
	verified := m.ExpectedTime(2 * 1.1)
	if verified <= base*1.1 {
		t.Fatalf("verification should compound with failures: %v vs %v", verified, base*1.1)
	}
}
