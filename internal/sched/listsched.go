// Package sched implements the list-scheduling extension the paper's
// conclusion proposes: classical CP-style list scheduling on a bounded
// number of processors, with task priorities computed either from
// deterministic bottom levels or from the failure-aware expected bottom
// levels of the First Order approximation, plus an event-driven execution
// simulator that injects silent errors and re-executes tasks, so the two
// priority schemes can be compared under failures.
package sched

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/failure"
)

// Schedule is the outcome of one (deterministic or simulated) execution.
type Schedule struct {
	// Makespan is the completion time of the last task.
	Makespan float64
	// Start and Finish give each task's final (successful) execution
	// window; with failures, Start is the start of the first attempt.
	Start, Finish []float64
	// Proc is the processor each task ran on.
	Proc []int
	// Attempts is the number of executions of each task (1 = no failure).
	Attempts []int
	// Order is the dispatch sequence: task IDs in the order they were
	// started. Filtering Order by Proc yields each processor's exact
	// execution chain, with no tie ambiguity between tasks sharing a start
	// time (zero-weight structural tasks) — the record schedmc compiles
	// into per-processor chain edges.
	Order []int
}

// Priorities returns deterministic CP-scheduling priorities: the classic
// bottom level a_i + bl(i) (the length of the longest path from i to the
// end of the execution, inclusive).
func Priorities(g *dag.Graph) ([]float64, error) {
	bl, err := dag.BottomLevels(g)
	if err != nil {
		return nil, err
	}
	for i := range bl {
		bl[i] += g.Weight(i)
	}
	return bl, nil
}

// FailureAwarePriorities returns priorities from the First Order expected
// bottom levels: the expected longest path from each task to the end,
// accounting for re-executions at rate λ.
func FailureAwarePriorities(g *dag.Graph, model failure.Model) ([]float64, error) {
	return core.ExpectedBottomLevels(g, model)
}

// readyHeap orders ready tasks by descending priority, ties by task ID.
type readyHeap struct {
	ids  []int
	prio []float64
}

func (h *readyHeap) Len() int { return len(h.ids) }
func (h *readyHeap) Less(i, j int) bool {
	a, b := h.ids[i], h.ids[j]
	if h.prio[a] != h.prio[b] {
		return h.prio[a] > h.prio[b]
	}
	return a < b
}
func (h *readyHeap) Swap(i, j int)      { h.ids[i], h.ids[j] = h.ids[j], h.ids[i] }
func (h *readyHeap) Push(x interface{}) { h.ids = append(h.ids, x.(int)) }
func (h *readyHeap) Pop() interface{} {
	n := len(h.ids)
	v := h.ids[n-1]
	h.ids = h.ids[:n-1]
	return v
}

// event is a task completion on a processor.
type event struct {
	time float64
	proc int
	task int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].task < h[j].task
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// Run executes list scheduling on nprocs identical processors with the
// given priorities. If model.Lambda > 0 and rng != nil, every execution
// attempt of a task of weight a fails with probability 1 − e^{−λa} and is
// re-executed on the same processor until it succeeds (the paper's silent
// error + verification discipline). With rng == nil the execution is
// failure-free and deterministic.
func Run(g *dag.Graph, prio []float64, nprocs int, model failure.Model, rng *rand.Rand) (Schedule, error) {
	n := g.NumTasks()
	if nprocs < 1 {
		return Schedule{}, fmt.Errorf("sched: nprocs must be >= 1, got %d", nprocs)
	}
	if len(prio) != n {
		return Schedule{}, fmt.Errorf("sched: %d priorities for %d tasks", len(prio), n)
	}
	if _, err := g.TopoOrder(); err != nil {
		return Schedule{}, err
	}
	s := Schedule{
		Start:    make([]float64, n),
		Finish:   make([]float64, n),
		Proc:     make([]int, n),
		Attempts: make([]int, n),
		Order:    make([]int, 0, n),
	}
	for i := range s.Proc {
		s.Proc[i] = -1
	}
	remainingPreds := make([]int, n)
	ready := &readyHeap{prio: prio}
	for i := 0; i < n; i++ {
		remainingPreds[i] = g.InDegree(i)
		if remainingPreds[i] == 0 {
			ready.ids = append(ready.ids, i)
		}
	}
	heap.Init(ready)

	freeProcs := make([]int, nprocs)
	for p := range freeProcs {
		freeProcs[p] = nprocs - 1 - p // pop smallest index first
	}
	running := &eventHeap{}
	now := 0.0
	scheduled := 0

	execTime := func(task int) float64 {
		a := g.Weight(task)
		attempts := 1
		if rng != nil && model.Lambda > 0 && a > 0 {
			pf := model.PFail(a)
			for rng.Float64() < pf {
				attempts++
			}
		}
		s.Attempts[task] = attempts
		return float64(attempts) * a
	}
	dispatch := func() {
		for len(freeProcs) > 0 && ready.Len() > 0 {
			p := freeProcs[len(freeProcs)-1]
			freeProcs = freeProcs[:len(freeProcs)-1]
			task := heap.Pop(ready).(int)
			s.Order = append(s.Order, task)
			s.Start[task] = now
			s.Proc[task] = p
			fin := now + execTime(task)
			s.Finish[task] = fin
			heap.Push(running, event{time: fin, proc: p, task: task})
			scheduled++
		}
	}
	dispatch()
	for running.Len() > 0 {
		ev := heap.Pop(running).(event)
		now = ev.time
		if now > s.Makespan {
			s.Makespan = now
		}
		freeProcs = append(freeProcs, ev.proc)
		for _, succ := range g.Succ(ev.task) {
			remainingPreds[succ]--
			if remainingPreds[succ] == 0 {
				heap.Push(ready, succ)
			}
		}
		// Drain simultaneous completions before dispatching so processor
		// choice is deterministic.
		for running.Len() > 0 && (*running)[0].time == now {
			ev2 := heap.Pop(running).(event)
			freeProcs = append(freeProcs, ev2.proc)
			for _, succ := range g.Succ(ev2.task) {
				remainingPreds[succ]--
				if remainingPreds[succ] == 0 {
					heap.Push(ready, succ)
				}
			}
		}
		dispatch()
	}
	if scheduled != n {
		return Schedule{}, fmt.Errorf("sched: scheduled %d of %d tasks (unreachable tasks?)", scheduled, n)
	}
	return s, nil
}

// ListSchedule runs failure-free list scheduling (deterministic).
func ListSchedule(g *dag.Graph, prio []float64, nprocs int) (Schedule, error) {
	return Run(g, prio, nprocs, failure.Model{}, nil)
}

// ExpectedResult aggregates Monte Carlo executions of a schedule policy.
type ExpectedResult struct {
	// Mean estimates the expected makespan.
	Mean float64
	// StdDev is the sample standard deviation of the makespan.
	StdDev float64
	// StdErr is the standard error of Mean.
	StdErr float64
	// CI95 is the half-width of the 95% confidence interval around Mean.
	CI95 float64
	// Min and Max are the extreme sampled makespans.
	Min, Max float64
	// Trials is the number of simulated executions.
	Trials int
}

// ExpectedMakespan estimates the expected makespan of list scheduling
// under failures by Monte Carlo, sampling trials executions (a
// non-positive count selects 1000). Every trial re-runs the dynamic
// dispatcher, so the cost is a full event-driven simulation per trial;
// for the committed-schedule semantics at fused-kernel speed use
// internal/schedmc (schedsim's default engine since PR 5 — this loop
// remains its -dynamic reference).
func ExpectedMakespan(g *dag.Graph, prio []float64, nprocs int, model failure.Model, trials int, seed uint64) (ExpectedResult, error) {
	if trials <= 0 {
		trials = 1000
	}
	var mean, m2 float64
	lo, hi := math.Inf(1), math.Inf(-1)
	rng := rand.New(rand.NewPCG(seed, 0x5eed))
	for t := 0; t < trials; t++ {
		s, err := Run(g, prio, nprocs, model, rng)
		if err != nil {
			return ExpectedResult{}, err
		}
		if s.Makespan < lo {
			lo = s.Makespan
		}
		if s.Makespan > hi {
			hi = s.Makespan
		}
		d := s.Makespan - mean
		mean += d / float64(t+1)
		m2 += d * (s.Makespan - mean)
	}
	variance := 0.0
	if trials > 1 {
		variance = m2 / float64(trials-1)
	}
	sd := math.Sqrt(variance)
	se := sd / math.Sqrt(float64(trials))
	return ExpectedResult{
		Mean:   mean,
		StdDev: sd,
		StdErr: se,
		CI95:   1.959963984540054 * se,
		Min:    lo,
		Max:    hi,
		Trials: trials,
	}, nil
}
