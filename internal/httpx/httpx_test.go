package httpx

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func fastClient() *RetryClient {
	c := NewRetryClient()
	c.BaseDelay = time.Millisecond
	c.MaxDelay = 5 * time.Millisecond
	c.PerAttempt = 500 * time.Millisecond
	return c
}

func TestGetRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	status, body, err := fastClient().Get(context.Background(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if status != 200 || string(body) != "ok" {
		t.Fatalf("got %d %q", status, body)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d calls, want 3", n)
	}
}

func TestGetDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "no such thing", http.StatusNotFound)
	}))
	defer srv.Close()

	status, _, err := fastClient().Get(context.Background(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if status != 404 {
		t.Fatalf("status = %d, want 404", status)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("4xx retried: %d calls", n)
	}
}

func TestGetGivesUpAfterMaxAttempts(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	c := fastClient()
	c.MaxAttempts = 3
	_, _, err := c.Get(context.Background(), srv.URL)
	if err == nil {
		t.Fatal("want error after exhausting attempts")
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d calls, want 3", n)
	}
}

func TestGetHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "busy", http.StatusTooManyRequests)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	status, _, err := fastClient().Get(context.Background(), srv.URL)
	if err != nil || status != 200 {
		t.Fatalf("got %d, %v", status, err)
	}
}

func TestGetRespectsContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	c := fastClient()
	c.MaxAttempts = 1000
	c.BaseDelay = 20 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := c.Get(ctx, srv.URL)
	if err == nil {
		t.Fatal("want error")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("context expiry not honored: took %v", d)
	}
}

func TestWaitReady(t *testing.T) {
	var ready atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !ready.Load() {
			http.Error(w, "starting", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	go func() {
		time.Sleep(30 * time.Millisecond)
		ready.Store(true)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := WaitReady(ctx, srv.URL, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWaitReadyFailsFastOnDraining(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"status":"draining","in_flight":1}`))
	}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	err := WaitReady(ctx, srv.URL, nil)
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("want ErrDraining, got %v", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("draining target polled %d times, want 1", n)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("draining detection took %v, want immediate", d)
	}
}

func TestWaitReadyRetriesPlain503(t *testing.T) {
	// A 503 without the draining marker is "not up yet" and must keep
	// being retried until the server comes up.
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := WaitReady(ctx, srv.URL, nil); err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n < 3 {
		t.Fatalf("server saw %d calls, want >= 3", n)
	}
}

func TestWaitReadyDetectsDeadTarget(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "starting", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	probeErr := context.DeadlineExceeded
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := WaitReady(ctx, srv.URL, func() error { return probeErr })
	if err == nil || !strings.Contains(err.Error(), "died") {
		t.Fatalf("want died error, got %v", err)
	}
}
