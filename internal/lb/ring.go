package lb

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// defaultVnodes is how many ring points each replica contributes.
// 64 points per replica keeps the worst shard under 2× the mean for
// small fleets (pinned by the distribution property test) while a
// membership change still rebuilds the whole ring in microseconds.
const defaultVnodes = 64

// ring is an immutable consistent-hash ring over replica names. Build
// one with newRing; membership changes build a new ring (the Router
// swaps the pointer under its lock), so lookups never need
// synchronization. Keys and virtual nodes hash with FNV-64a — not
// cryptographic, but the keys are already content hashes and the ring
// only needs spread, not adversarial resistance.
type ring struct {
	vnodes int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash    uint64
	replica string
}

// newRing builds a ring over the given replicas with vnodes points per
// replica (<= 0 selects defaultVnodes). An empty replica list yields
// an empty ring: owner and successors return nothing.
func newRing(replicas []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	r := &ring{
		vnodes: vnodes,
		points: make([]ringPoint, 0, len(replicas)*vnodes),
	}
	for _, rep := range replicas {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash:    hash64(rep + "#" + strconv.Itoa(i)),
				replica: rep,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break on the name so the ring
		// order — and therefore routing — is deterministic.
		return r.points[i].replica < r.points[j].replica
	})
	return r
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the murmur3 finalizer: raw FNV of near-identical strings
// (vnode suffixes, hex content hashes differing in a few characters)
// clusters in the low bits, which would pile whole key ranges onto one
// ring point; the avalanche pass spreads them uniformly.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// size reports the number of distinct replicas on the ring.
func (r *ring) size() int {
	if r.vnodes == 0 {
		return 0
	}
	return len(r.points) / r.vnodes
}

// owner returns the replica owning key: the first ring point at or
// clockwise after the key's hash. ok is false on an empty ring.
func (r *ring) owner(key string) (string, bool) {
	reps := r.successors(key, 1)
	if len(reps) == 0 {
		return "", false
	}
	return reps[0], true
}

// successors returns up to n distinct replicas in ring order starting
// at key's owner — the hedging/failover candidate list: candidate 0 is
// the shard owner, candidate 1 the replica the shard would remap to if
// the owner left, and so on.
func (r *ring) successors(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, p.replica)
		}
	}
	return out
}
