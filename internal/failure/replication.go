package failure

import (
	"fmt"

	"repro/internal/dag"
)

// Replication models the general-purpose detector of the paper's related
// work (§II-B, Fiala et al.): run two copies of each task and compare
// outputs; any mismatch counts as a detected error and the task is
// re-executed from scratch. An attempt succeeds only when both copies are
// error-free, so the per-attempt success probability drops from e^{−λa}
// to e^{−2λa}.
//
// Both variants reduce exactly to the model every estimator in this
// repository already solves:
//
//   - Parallel replication (copies on two processors): attempt duration
//     stays a, success probability e^{−2λa} — equivalent to the original
//     graph under a doubled error rate.
//   - Serial replication (copies back-to-back on one processor): attempt
//     duration 2a, success probability e^{−2λa} — equivalent to a graph
//     with doubled weights under the original rate.
type Replication struct {
	// Serial selects back-to-back copies on one processor; the default is
	// side-by-side copies on two processors.
	Serial bool
}

// Transform returns the (graph, model) pair whose plain verified-execution
// semantics coincide with replicated execution of g under model. The
// returned graph is g itself for parallel replication (no copy needed) and
// a doubled-weight clone for serial replication.
func (r Replication) Transform(g *dag.Graph, m Model) (*dag.Graph, Model, error) {
	if r.Serial {
		out := g.Clone()
		for i := 0; i < out.NumTasks(); i++ {
			if err := out.SetWeight(i, 2*out.Weight(i)); err != nil {
				return nil, Model{}, fmt.Errorf("failure: replication transform: %w", err)
			}
		}
		return out, m, nil
	}
	return g, Model{Lambda: 2 * m.Lambda}, nil
}

// ExpectedTime returns the expected completion time of a single replicated
// task of weight a: a·e^{2λa} for parallel copies, 2a·e^{2λa} for serial.
func (r Replication) ExpectedTime(a float64, m Model) float64 {
	g := dag.New(1)
	g.MustAddTask("t", a)
	tg, tm, err := r.Transform(g, m)
	if err != nil {
		return 0
	}
	return tm.ExpectedTime(tg.Weight(0))
}
