package montecarlo

import (
	"encoding/json"
	"math"
	"os"
	"testing"

	"repro/internal/dag"
	"repro/internal/failure"
)

// The sketch's accuracy contract: for any sample set and any q, the
// sketch quantile is within one cell width of the exact nearest-rank
// sample quantile.
func TestSketchQuantileWithinOneCell(t *testing.T) {
	rng := newWorkerRNG(7, 0)
	qs := []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1}
	for trial := 0; trial < 40; trial++ {
		n := 1 + int(rng.Uint64()%5000)
		scale := math.Ldexp(1, int(rng.Uint64()%40)-20)
		offset := (rng.Float64() - 0.3) * 100 * scale
		xs := make([]float64, n)
		sk := NewQuantileSketch(64)
		for i := range xs {
			x := offset + rng.Float64()*scale
			if rng.Uint64()%7 == 0 {
				x += rng.Float64() * 50 * scale // heavy tail
			}
			xs[i] = x
			sk.Add(x)
		}
		samples := NewSamples(xs)
		if sk.N() != int64(n) {
			t.Fatalf("N = %d want %d", sk.N(), n)
		}
		if sk.Min() != samples.Quantile(0) || sk.Max() != samples.Quantile(1) {
			t.Fatalf("min/max mismatch")
		}
		w := sk.CellWidth()
		for _, q := range qs {
			got, want := sk.Quantile(q), samples.Quantile(q)
			if math.Abs(got-want) > w {
				t.Fatalf("trial %d: q=%g: sketch %v vs exact %v beyond cell width %v", trial, q, got, want, w)
			}
		}
	}
}

// Merging split streams must equal one sketch fed the whole stream:
// same grid, same counts, same answers.
func TestSketchMergeExact(t *testing.T) {
	rng := newWorkerRNG(11, 0)
	for trial := 0; trial < 30; trial++ {
		n := 2 + int(rng.Uint64()%3000)
		parts := 1 + int(rng.Uint64()%5)
		whole := NewQuantileSketch(128)
		split := make([]*QuantileSketch, parts)
		for i := range split {
			split[i] = NewQuantileSketch(128)
		}
		for i := 0; i < n; i++ {
			x := (rng.Float64() - 0.5) * math.Ldexp(1, int(rng.Uint64()%30)-10)
			whole.Add(x)
			split[i%parts].Add(x)
		}
		merged := NewQuantileSketch(128)
		for _, p := range split {
			merged.Merge(p)
		}
		if merged.N() != whole.N() || merged.Min() != whole.Min() || merged.Max() != whole.Max() {
			t.Fatalf("trial %d: merged summary differs", trial)
		}
		// The merged grid may be at most as fine as the whole-stream grid;
		// bring both to a common resolution and compare counts.
		for whole.wLog < merged.wLog {
			whole.grow()
		}
		for merged.wLog < whole.wLog {
			merged.grow()
		}
		wl, wh, _ := whole.occupied()
		ml, mh, _ := merged.occupied()
		if wl != ml || wh != mh {
			t.Fatalf("trial %d: occupied ranges differ: [%d,%d] vs [%d,%d]", trial, wl, wh, ml, mh)
		}
		for g := wl; g <= wh; g++ {
			if whole.cells[g-whole.baseIdx] != merged.cells[g-merged.baseIdx] {
				t.Fatalf("trial %d: counts differ at cell %d", trial, g)
			}
		}
	}
}

func TestSketchEmptyAndEdge(t *testing.T) {
	sk := NewQuantileSketch(0)
	if !math.IsNaN(sk.Quantile(0.5)) || !math.IsNaN(sk.CDF(1)) || !math.IsNaN(sk.Min()) {
		t.Fatal("empty sketch should answer NaN")
	}
	sk.Add(0)
	if sk.Quantile(0.5) != 0 || sk.N() != 1 {
		t.Fatalf("single zero sample: q50=%v", sk.Quantile(0.5))
	}
	// Wildly spread values force many growth steps in both directions.
	sk.Add(1e18)
	sk.Add(-1e18)
	sk.Add(3.5e-9)
	if sk.N() != 4 || sk.Min() != -1e18 || sk.Max() != 1e18 {
		t.Fatalf("after spread: n=%d min=%v max=%v", sk.N(), sk.Min(), sk.Max())
	}
	if q := sk.Quantile(1); q != 1e18 {
		t.Fatalf("q1 = %v", q)
	}
	if c := sk.CDF(0); c < 0.5 || c > 1 {
		t.Fatalf("CDF(0) = %v", c)
	}
}

// RunQuantiles must agree with Run exactly and be worker-count invariant.
func TestRunQuantilesDeterministicAcrossWorkers(t *testing.T) {
	g := dag.Wavefront(5, 1.5)
	m, _ := failure.FromPfail(0.08, g.MeanWeight())
	var ref Result
	var refSk *QuantileSketch
	for i, workers := range []int{1, 4} {
		e, err := NewEstimator(g, m, Config{Trials: 2*chunkSize + 77, Seed: 3, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		res, sk, err := e.RunQuantiles()
		if err != nil {
			t.Fatal(err)
		}
		run, err := NewMustEstimator(t, g, m, Config{Trials: 2*chunkSize + 77, Seed: 3, Workers: workers}).Run()
		if err != nil {
			t.Fatal(err)
		}
		if res != run {
			t.Fatalf("RunQuantiles Result %+v != Run %+v", res, run)
		}
		if i == 0 {
			ref, refSk = res, sk
			continue
		}
		if res != ref {
			t.Fatalf("workers=%d: Result differs", workers)
		}
		if sk.N() != refSk.N() || sk.wLog != refSk.wLog || sk.baseIdx != refSk.baseIdx {
			t.Fatalf("workers=%d: sketch grid differs", workers)
		}
		for j := range sk.cells {
			if sk.cells[j] != refSk.cells[j] {
				t.Fatalf("workers=%d: sketch counts differ at %d", workers, j)
			}
		}
	}
}

func NewMustEstimator(t *testing.T, g *dag.Graph, m failure.Model, cfg Config) *Estimator {
	t.Helper()
	e, err := NewEstimator(g, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// golden is the committed regression vector: the sketch and nearest-rank
// quantiles of a fixed sample set must reproduce the committed values
// bit for bit (testdata/golden_samples.json, regenerated only
// deliberately via TestGoldenSamplesRegenerate).
type goldenSamples struct {
	Cells           int                `json:"cells"`
	Samples         []float64          `json:"samples"`
	SketchQuantiles map[string]float64 `json:"sketch_quantiles"`
	ExactQuantiles  map[string]float64 `json:"exact_quantiles"`
}

var goldenQs = []string{"0", "0.1", "0.25", "0.5", "0.75", "0.9", "0.99", "1"}

func qVal(s string) float64 {
	var v float64
	if err := json.Unmarshal([]byte(s), &v); err != nil {
		panic(err)
	}
	return v
}

func TestSketchGoldenSamples(t *testing.T) {
	raw, err := os.ReadFile("testdata/golden_samples.json")
	if err != nil {
		t.Fatal(err)
	}
	var gold goldenSamples
	if err := json.Unmarshal(raw, &gold); err != nil {
		t.Fatal(err)
	}
	sk := NewQuantileSketch(gold.Cells)
	for _, x := range gold.Samples {
		sk.Add(x)
	}
	samples := NewSamples(append([]float64(nil), gold.Samples...))
	for _, qs := range goldenQs {
		q := qVal(qs)
		if got, want := sk.Quantile(q), gold.SketchQuantiles[qs]; got != want {
			t.Errorf("sketch q=%s: %v want committed %v", qs, got, want)
		}
		if got, want := samples.Quantile(q), gold.ExactQuantiles[qs]; got != want {
			t.Errorf("exact q=%s: %v want committed %v", qs, got, want)
		}
	}
}

// TestGoldenSamplesRegenerate rewrites the golden file when run with
// GOLDEN_REGEN=1; committed output must only change deliberately.
func TestGoldenSamplesRegenerate(t *testing.T) {
	if os.Getenv("GOLDEN_REGEN") == "" {
		t.Skip("set GOLDEN_REGEN=1 to regenerate")
	}
	rng := newWorkerRNG(20260729, 0)
	gold := goldenSamples{Cells: 64, SketchQuantiles: map[string]float64{}, ExactQuantiles: map[string]float64{}}
	sk := NewQuantileSketch(gold.Cells)
	for i := 0; i < 500; i++ {
		x := 40 + 12*rng.NormFloat64()
		if i%11 == 0 {
			x += rng.Float64() * 200
		}
		gold.Samples = append(gold.Samples, x)
		sk.Add(x)
	}
	samples := NewSamples(append([]float64(nil), gold.Samples...))
	for _, qs := range goldenQs {
		q := qVal(qs)
		gold.SketchQuantiles[qs] = sk.Quantile(q)
		gold.ExactQuantiles[qs] = samples.Quantile(q)
	}
	out, err := json.MarshalIndent(gold, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("testdata/golden_samples.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
