package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestScheduleHandler(t *testing.T) {
	ts := newTestServer(t)
	req := `{"kind":"lu","k":6,"procs":4,"pfail":0.01,"trials":2000,"seed":7,"quantiles":[0.5,0.99]}`
	code, body := post(t, ts, "/v1/schedule", req)
	if code != http.StatusOK {
		t.Fatalf("schedule: %d %s", code, body)
	}
	var doc struct {
		Procs        int     `json:"procs"`
		CriticalPath float64 `json:"critical_path"`
		Policies     []struct {
			Policy      string  `json:"policy"`
			FailureFree float64 `json:"failure_free_makespan"`
			Efficiency  float64 `json:"efficiency"`
			ChainEdges  int     `json:"chain_edges"`
			MonteCarlo  *struct {
				Mean      float64 `json:"mean"`
				Trials    int     `json:"trials"`
				Quantiles []struct {
					Q     float64 `json:"q"`
					Value float64 `json:"value"`
				} `json:"quantiles"`
			} `json:"monte_carlo"`
		} `json:"policies"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Procs != 4 || len(doc.Policies) != 2 {
		t.Fatalf("unexpected document: %s", body)
	}
	for _, p := range doc.Policies {
		if p.FailureFree < doc.CriticalPath {
			t.Errorf("%s: schedule %v below the critical path %v", p.Policy, p.FailureFree, doc.CriticalPath)
		}
		if p.Efficiency <= 0 || p.Efficiency > 1 || p.ChainEdges <= 0 {
			t.Errorf("%s: implausible schedule: %+v", p.Policy, p)
		}
		if p.MonteCarlo == nil || p.MonteCarlo.Trials != 2000 || p.MonteCarlo.Mean < p.FailureFree {
			t.Errorf("%s: implausible Monte Carlo: %+v", p.Policy, p.MonteCarlo)
		}
		if len(p.MonteCarlo.Quantiles) != 2 {
			t.Errorf("%s: want 2 quantiles, got %+v", p.Policy, p.MonteCarlo.Quantiles)
		}
	}

	// Warm repeat: byte-identical, served from the cached frozen schedule.
	code, warm := post(t, ts, "/v1/schedule", req)
	if code != http.StatusOK {
		t.Fatalf("warm schedule: %d", code)
	}
	if normalizeTimes(warm) != normalizeTimes(body) {
		t.Error("warm schedule response differs from cold")
	}

	// The registry now holds schedule artifacts for this graph: both
	// policies at one (procs, λ) key each.
	code, sub := post(t, ts, "/v1/graphs", `{"kind":"lu","k":6}`)
	if code != http.StatusOK {
		t.Fatalf("graph lookup: %d %s", code, sub)
	}
	var subDoc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal([]byte(sub), &subDoc); err != nil {
		t.Fatal(err)
	}
	code, info := get(t, ts, "/v1/graphs/"+subDoc.ID)
	if code != http.StatusOK {
		t.Fatalf("graph get: %d", code)
	}
	var infoDoc struct {
		Cache struct {
			Schedules int `json:"schedules"`
		} `json:"cache"`
	}
	if err := json.Unmarshal([]byte(info), &infoDoc); err != nil {
		t.Fatal(err)
	}
	if infoDoc.Cache.Schedules != 2 {
		t.Fatalf("want 2 cached schedule artifacts, got %d (%s)", infoDoc.Cache.Schedules, info)
	}

	// A different processor count is a different artifact.
	if code, _ := post(t, ts, "/v1/schedule", `{"kind":"lu","k":6,"procs":8,"pfail":0.01,"trials":100,"policies":"cp"}`); code != http.StatusOK {
		t.Fatalf("procs=8 schedule: %d", code)
	}
	_, info = get(t, ts, "/v1/graphs/"+subDoc.ID)
	if err := json.Unmarshal([]byte(info), &infoDoc); err != nil {
		t.Fatal(err)
	}
	if infoDoc.Cache.Schedules != 3 {
		t.Fatalf("want 3 cached schedule artifacts after procs=8, got %d", infoDoc.Cache.Schedules)
	}
}

// Trials 0 returns the committed schedules without Monte Carlo — the
// service convention (an omitted field must not buy a six-figure run).
func TestScheduleWithoutTrials(t *testing.T) {
	ts := newTestServer(t)
	code, body := post(t, ts, "/v1/schedule", `{"kind":"cholesky","k":5,"procs":2}`)
	if code != http.StatusOK {
		t.Fatalf("schedule: %d %s", code, body)
	}
	if strings.Contains(body, `"monte_carlo"`) {
		t.Fatalf("trials=0 must omit monte_carlo: %s", body)
	}
	if !strings.Contains(body, `"failure_free_makespan"`) {
		t.Fatalf("schedule info missing: %s", body)
	}
}

func TestScheduleValidation(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		body string
		want int
	}{
		{`{"kind":"lu","k":6}`, http.StatusBadRequest},                                         // procs missing
		{`{"kind":"lu","k":6,"procs":0}`, http.StatusBadRequest},                               // procs 0
		{`{"kind":"lu","k":6,"procs":-2}`, http.StatusBadRequest},                              // negative procs
		{`{"kind":"lu","k":6,"procs":4,"trials":-1}`, http.StatusBadRequest},                   // negative trials
		{`{"kind":"lu","k":6,"procs":4,"policies":"heft"}`, http.StatusBadRequest},             // unknown policy
		{`{"kind":"lu","k":6,"procs":4,"quantiles":[1.5],"trials":10}`, http.StatusBadRequest}, // bad quantile
		{`{"kind":"lu","k":6,"procs":4,"quantiles":[0.5]}`, http.StatusBadRequest},             // quantiles need trials
		{`{"kind":"lu","k":6,"procs":4,"pfail":2,"trials":10}`, http.StatusBadRequest},         // bad pfail
		{`{"graph_id":"sha256:gone","procs":4}`, http.StatusNotFound},                          // unknown graph
		{`{"kind":"lu","k":6,"procs":4,"bogus":1}`, http.StatusBadRequest},                     // unknown field
	}
	for _, c := range cases {
		if code, body := post(t, ts, "/v1/schedule", c.body); code != c.want {
			t.Errorf("%s -> %d (%s), want %d", c.body, code, body, c.want)
		}
	}
}

// Concurrent schedule requests must reproduce the serial responses: the
// schedule artifacts are built once per key (singleflight) and shared
// read-only, and the engine is worker-count invariant.
func TestConcurrentScheduleDeterministic(t *testing.T) {
	ts := newTestServer(t)
	reqs := []string{
		`{"kind":"lu","k":6,"procs":4,"pfail":0.01,"trials":1500,"seed":7}`,
		`{"kind":"lu","k":6,"procs":8,"pfail":0.001,"trials":1000,"seed":3,"policies":"fo","quantiles":[0.9]}`,
	}
	want := make([]string, len(reqs))
	for i, r := range reqs {
		code, body := post(t, ts, "/v1/schedule", r)
		if code != http.StatusOK {
			t.Fatalf("ref %d: %d %s", i, code, body)
		}
		want[i] = normalizeTimes(body)
	}
	const perReq = 5
	var wg sync.WaitGroup
	errs := make(chan string, len(reqs)*perReq)
	for i, r := range reqs {
		for j := 0; j < perReq; j++ {
			wg.Add(1)
			go func(i int, r string) {
				defer wg.Done()
				resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", strings.NewReader(r))
				if err != nil {
					errs <- fmt.Sprintf("req %d: %v", i, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("req %d: status %d err %v", i, resp.StatusCode, err)
					return
				}
				if normalizeTimes(string(body)) != want[i] {
					errs <- fmt.Sprintf("req %d: concurrent schedule response diverged", i)
				}
			}(i, r)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
