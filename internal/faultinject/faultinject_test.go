package faultinject

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestDisabledIsInert(t *testing.T) {
	Disarm()
	if Enabled() {
		t.Fatal("Enabled() = true with nothing armed")
	}
	if err := Hit(context.Background(), "artifact.build.mc"); err != nil {
		t.Fatalf("Hit on disarmed site: %v", err)
	}
	if Triggered("artifact.evict") {
		t.Fatal("Triggered on disarmed site")
	}
	MaybePanic("service.panic.estimate") // must not panic
}

func TestErrorModeAndCount(t *testing.T) {
	t.Cleanup(Disarm)
	if err := Arm("artifact.build.mc=error:boom*2"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		err := Hit(ctx, "artifact.build.mc")
		if err == nil {
			t.Fatalf("shot %d: want error", i)
		}
		if !IsFault(err) {
			t.Fatalf("shot %d: IsFault = false for %v", i, err)
		}
		if !strings.Contains(err.Error(), "boom") {
			t.Fatalf("shot %d: message lost: %v", i, err)
		}
	}
	if err := Hit(ctx, "artifact.build.mc"); err != nil {
		t.Fatalf("point not spent after count: %v", err)
	}
}

func TestPrefixMatchAtDotBoundary(t *testing.T) {
	t.Cleanup(Disarm)
	if err := Arm("artifact.build=error"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := Hit(ctx, "artifact.build.plan"); err == nil {
		t.Fatal("prefix point did not match child site")
	}
	if err := Hit(ctx, "artifact.builder"); err != nil {
		t.Fatalf("non-dot-boundary site matched: %v", err)
	}
	// Most specific point wins.
	if err := Arm("artifact.build=error:generic;artifact.build.mc=error:specific"); err != nil {
		t.Fatal(err)
	}
	err := Hit(ctx, "artifact.build.mc")
	if err == nil || !strings.Contains(err.Error(), "specific") {
		t.Fatalf("want most-specific point, got %v", err)
	}
}

func TestDelayModeRespectsContext(t *testing.T) {
	t.Cleanup(Disarm)
	if err := Arm("mc.chunk=delay:20ms"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Hit(context.Background(), "mc.chunk"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("delay too short: %v", d)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Hit(ctx, "mc.chunk"); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled delay: want context.Canceled, got %v", err)
	}
}

func TestTriggerMode(t *testing.T) {
	t.Cleanup(Disarm)
	if err := Arm("artifact.evict=trigger*1"); err != nil {
		t.Fatal(err)
	}
	if !Triggered("artifact.evict") {
		t.Fatal("armed trigger did not fire")
	}
	if Triggered("artifact.evict") {
		t.Fatal("spent trigger fired again")
	}
}

func TestMaybePanic(t *testing.T) {
	t.Cleanup(Disarm)
	if err := Arm("service.panic.estimate=panic:kaboom"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("MaybePanic did not panic")
		}
		if !strings.Contains(fmt.Sprint(p), "kaboom") {
			t.Fatalf("panic message lost: %v", p)
		}
	}()
	MaybePanic("service.panic.estimate")
}

func TestArmRejectsBadSpecs(t *testing.T) {
	t.Cleanup(Disarm)
	for _, spec := range []string{
		"noequals",
		"x=unknownmode",
		"x=delay:notaduration",
		"x=error*0",
		"x=error*-1",
		"=error",
	} {
		if err := Arm(spec); err == nil {
			t.Errorf("Arm(%q) accepted", spec)
		}
	}
	// A failed Arm must not leave a partial set armed.
	if Enabled() {
		t.Fatal("Enabled() after rejected specs")
	}
}
