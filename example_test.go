package makespan_test

import (
	"fmt"

	makespan "repro"
)

// The basic workflow: build a DAG, calibrate the failure model, estimate.
func Example() {
	g := makespan.NewGraph(3)
	a := g.MustAddTask("prepare", 1.0)
	b := g.MustAddTask("compute", 4.0)
	c := g.MustAddTask("reduce", 0.5)
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, c)

	model, _ := makespan.NewModel(0.01)
	d, _ := makespan.FailureFreeMakespan(g)
	est, _ := makespan.FirstOrder(g, model)
	fmt.Printf("failure-free %.3f, expected %.5f\n", d, est)
	// Output:
	// failure-free 5.500, expected 5.67250
}

// Per-task sensitivities identify which task's failures cost the most.
func ExampleFirstOrderDetail() {
	g := makespan.NewGraph(4)
	src := g.MustAddTask("src", 1)
	big := g.MustAddTask("big", 5)
	small := g.MustAddTask("small", 3)
	snk := g.MustAddTask("snk", 2)
	g.MustAddEdge(src, big)
	g.MustAddEdge(src, small)
	g.MustAddEdge(big, snk)
	g.MustAddEdge(small, snk)

	model, _ := makespan.NewModel(0.001)
	res, _ := makespan.FirstOrderDetail(g, model)
	for i, c := range res.Contribution {
		fmt.Printf("%s: %.0f\n", g.Name(i), c)
	}
	// Output:
	// src: 1
	// big: 25
	// small: 3
	// snk: 4
}

// Series-parallel graphs admit an exact decomposition.
func ExampleIsSeriesParallel() {
	diamond := makespan.NewGraph(4)
	a := diamond.MustAddTask("a", 1)
	b := diamond.MustAddTask("b", 2)
	c := diamond.MustAddTask("c", 3)
	d := diamond.MustAddTask("d", 4)
	diamond.MustAddEdge(a, b)
	diamond.MustAddEdge(a, c)
	diamond.MustAddEdge(b, d)
	diamond.MustAddEdge(c, d)

	sp, _ := makespan.IsSeriesParallel(diamond)
	fmt.Println(sp)

	wf := makespan.Wavefront(3, 1)
	sp, _ = makespan.IsSeriesParallel(wf)
	fmt.Println(sp)
	// Output:
	// true
	// false
}

// The paper's workloads come built in; the failure rate is calibrated
// from the probability that an average task fails.
func ExampleModelFromPfail() {
	g, _ := makespan.Cholesky(5)
	model, _ := makespan.ModelFromPfail(0.001, g.MeanWeight())
	fo, _ := makespan.FirstOrder(g, model)
	d, _ := makespan.FailureFreeMakespan(g)
	fmt.Printf("tasks=%d, overhead=%.4f%%\n", g.NumTasks(), 100*(fo/d-1))
	// Output:
	// tasks=35, overhead=0.1485%
}
