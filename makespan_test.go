package makespan

import (
	"math"
	"math/rand"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	g, err := Cholesky(6)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ModelFromPfail(0.001, g.MeanWeight())
	if err != nil {
		t.Fatal(err)
	}
	d, err := FailureFreeMakespan(g)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MonteCarlo(g, m, MonteCarloConfig{Trials: 30000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	estimators := map[string]func() (float64, error){
		"FirstOrder":  func() (float64, error) { return FirstOrder(g, m) },
		"SecondOrder": func() (float64, error) { return SecondOrder(g, m) },
		"Dodin":       func() (float64, error) { return Dodin(g, m, 0) },
		"Normal":      func() (float64, error) { return Normal(g, m) },
		"Sculli":      func() (float64, error) { return Sculli(g, m) },
	}
	for name, f := range estimators {
		est, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if est < d {
			t.Errorf("%s estimate %v below failure-free %v", name, est, d)
		}
		if rel := math.Abs(est-mc.Mean) / mc.Mean; rel > 0.10 {
			t.Errorf("%s estimate %v more than 10%% from MC %v", name, est, mc.Mean)
		}
	}
	// First Order should be the closest to MC at this pfail.
	fo, _ := FirstOrder(g, m)
	dod, _ := Dodin(g, m, 0)
	if math.Abs(fo-mc.Mean) > math.Abs(dod-mc.Mean) {
		t.Errorf("First Order (%v) further from MC (%v) than Dodin (%v)", fo, mc.Mean, dod)
	}
}

func TestFacadeBuildGraphManually(t *testing.T) {
	g := NewGraph(3)
	a := g.MustAddTask("prepare", 1.0)
	b := g.MustAddTask("compute", 4.0)
	c := g.MustAddTask("reduce", 0.5)
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, c)
	m, _ := NewModel(0.01)
	est, err := FirstOrder(g, m)
	if err != nil {
		t.Fatal(err)
	}
	want := 5.5 + 0.01*(1+16+0.25)
	if math.Abs(est-want) > 1e-12 {
		t.Fatalf("estimate = %v want %v", est, want)
	}
	res, err := FirstOrderDetail(g, m)
	if err != nil || res.FailureFree != 5.5 {
		t.Fatalf("detail: %+v %v", res, err)
	}
}

func TestFacadeGenerators(t *testing.T) {
	for name, gen := range map[string]func(int) (*Graph, error){
		"cholesky": Cholesky, "lu": LU, "qr": QR,
	} {
		g, err := gen(5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.NumTasks() == 0 {
			t.Fatalf("%s: empty graph", name)
		}
		if _, err := gen(0); err == nil {
			t.Fatalf("%s: k=0 accepted", name)
		}
	}
}

func TestFacadeSeriesParallel(t *testing.T) {
	g := NewGraph(2)
	a := g.MustAddTask("a", 1)
	b := g.MustAddTask("b", 1)
	g.MustAddEdge(a, b)
	sp, err := IsSeriesParallel(g)
	if err != nil || !sp {
		t.Fatalf("chain not SP: %v %v", sp, err)
	}
	ch, _ := Cholesky(4)
	sp, _ = IsSeriesParallel(ch)
	if sp {
		t.Fatal("Cholesky reported SP")
	}
}

func TestFacadeScheduling(t *testing.T) {
	g, _ := LU(4)
	m, _ := ModelFromPfail(0.01, g.MeanWeight())
	det, err := SchedulingPriorities(g)
	if err != nil {
		t.Fatal(err)
	}
	fa, err := FailureAwarePriorities(g, m)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ListSchedule(g, det, 4)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := FailureFreeMakespan(g)
	if s.Makespan < d {
		t.Fatalf("schedule %v beats critical path %v", s.Makespan, d)
	}
	for i := range fa {
		if fa[i] < det[i]-1e-12 {
			t.Fatalf("failure-aware priority below deterministic at %d", i)
		}
	}
	ebl, err := ExpectedBottomLevels(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(ebl) != g.NumTasks() {
		t.Fatalf("ebl length %d", len(ebl))
	}
}

func TestFacadeRandomGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := RandomLayeredGraph(40, 0.3, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 40 {
		t.Fatalf("tasks = %d", g.NumTasks())
	}
	m, _ := NewModel(0.01)
	if _, err := FirstOrder(g, m); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeModelValidation(t *testing.T) {
	if _, err := NewModel(-1); err == nil {
		t.Fatal("negative lambda accepted")
	}
	if _, err := ModelFromPfail(2, 1); err == nil {
		t.Fatal("pfail=2 accepted")
	}
}
