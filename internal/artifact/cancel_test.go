package artifact

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestCancelledLeaderNoWaitersAborts: a leader whose ctx dies with
// nobody else interested must see its build's flight context cancelled,
// get its own ctx error back, and leave the resolver fully retryable —
// no cached error, no leaked pins.
func TestCancelledLeaderNoWaitersAborts(t *testing.T) {
	r := NewResolver(0, nil)
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	req := Request{
		Kind: "k",
		Key:  "k/x",
		Build: func(bctx context.Context, _ []any) (any, int64, error) {
			close(started)
			select {
			case <-bctx.Done():
				return nil, 0, bctx.Err()
			case <-time.After(5 * time.Second):
				return nil, 0, errors.New("flight context never cancelled")
			}
		},
	}
	go func() {
		<-started
		cancel()
	}()
	if _, err := r.ResolveContext(ctx, req); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Retry with a live context rebuilds from scratch.
	req.Build = func(context.Context, []any) (any, int64, error) { return "ok", 1, nil }
	v, err := r.Resolve(req)
	if err != nil || v != "ok" {
		t.Fatalf("resolver not retryable after cancelled build: %v, %v", v, err)
	}
}

// TestCancelledLeaderHandsOffToWaiter: when the leader's ctx dies but a
// live waiter has coalesced onto the build, the flight context must
// stay alive, the build completes once, and the waiter gets the value.
func TestCancelledLeaderHandsOffToWaiter(t *testing.T) {
	r := NewResolver(0, nil)
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})
	builds := 0
	req := Request{
		Kind: "k",
		Key:  "k/y",
		Build: func(bctx context.Context, _ []any) (any, int64, error) {
			builds++
			close(started)
			<-release
			// The leader has been cancelled by now; a live waiter must be
			// keeping the flight context open.
			if err := bctx.Err(); err != nil {
				return nil, 0, err
			}
			return "built", 1, nil
		},
	}

	type res struct {
		v   any
		err error
	}
	leaderDone := make(chan res, 1)
	go func() {
		v, err := r.ResolveContext(leaderCtx, req)
		leaderDone <- res{v, err}
	}()
	<-started

	waiterDone := make(chan res, 1)
	go func() {
		v, err := r.ResolveContext(context.Background(), req)
		waiterDone <- res{v, err}
	}()
	// Wait for the waiter to register interest (its join counts a hit).
	deadline := time.Now().Add(5 * time.Second)
	for r.Stats()["k"].Hits < 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never joined the in-flight build")
		}
		time.Sleep(time.Millisecond)
	}

	cancelLeader()
	close(release)

	w := <-waiterDone
	if w.err != nil || w.v != "built" {
		t.Fatalf("waiter after leader cancel: %v, %v", w.v, w.err)
	}
	l := <-leaderDone
	// The leader ran the build to completion on the waiter's behalf; it
	// gets the value too (the work is done either way).
	if l.err != nil || l.v != "built" {
		t.Fatalf("leader: %v, %v", l.v, l.err)
	}
	if builds != 1 {
		t.Fatalf("build ran %d times, want 1", builds)
	}
	if _, ok := r.Peek("k/y"); !ok {
		t.Fatal("completed build not cached")
	}
}

// TestCancelledWaiterDetachesWithoutKillingFlight: a waiter whose ctx
// dies leaves immediately with its own error while the leader's build
// continues and completes.
func TestCancelledWaiterDetachesWithoutKillingFlight(t *testing.T) {
	r := NewResolver(0, nil)
	started := make(chan struct{})
	release := make(chan struct{})
	req := Request{
		Kind: "k",
		Key:  "k/z",
		Build: func(bctx context.Context, _ []any) (any, int64, error) {
			close(started)
			<-release
			if err := bctx.Err(); err != nil {
				return nil, 0, err
			}
			return "built", 1, nil
		},
	}

	leaderDone := make(chan error, 1)
	go func() {
		_, err := r.Resolve(req)
		leaderDone <- err
	}()
	<-started

	wctx, cancelWaiter := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err := r.ResolveContext(wctx, req)
		waiterDone <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for r.Stats()["k"].Hits < 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never joined")
		}
		time.Sleep(time.Millisecond)
	}

	cancelWaiter()
	if err := <-waiterDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want context.Canceled", err)
	}
	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader failed after waiter detached: %v", err)
	}
	if _, ok := r.Peek("k/z"); !ok {
		t.Fatal("completed build not cached")
	}
}

// TestCancelledBuildUnpinsDeps: a build aborted by cancellation must
// release the pins it took on its dependencies, or they become
// permanently unevictable.
func TestCancelledBuildUnpinsDeps(t *testing.T) {
	r := NewResolver(0, nil)
	dep := Request{
		Kind:  "dep",
		Key:   "dep/1",
		Build: func(context.Context, []any) (any, int64, error) { return "d", 100, nil },
	}
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	parent := Request{
		Kind: "par",
		Key:  "par/1",
		Deps: []Request{dep},
		Build: func(bctx context.Context, _ []any) (any, int64, error) {
			close(started)
			<-bctx.Done()
			return nil, 0, bctx.Err()
		},
	}
	go func() {
		<-started
		cancel()
	}()
	if _, err := r.ResolveContext(ctx, parent); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// An extra entry so Shed's sole-entry guard is not what keeps the
	// dep alive.
	if _, err := r.Resolve(Request{
		Kind:  "other",
		Key:   "other/1",
		Build: func(context.Context, []any) (any, int64, error) { return "o", 1, nil },
	}); err != nil {
		t.Fatal(err)
	}
	if dropped := r.Shed(); dropped < 1 {
		t.Fatalf("Shed dropped %d entries; the cancelled build leaked a dep pin", dropped)
	}
	if _, ok := r.Peek("dep/1"); ok {
		t.Fatal("dep still resident after Shed: pin leaked by cancelled build")
	}
}

// TestWaiterJoiningDyingFlightRetries: a request that coalesces onto a
// build that dies with a cancellation error (its interest lapsed just
// as we joined) must not surface the stranger's cancellation — it
// retries and leads its own build.
func TestWaiterJoiningDyingFlightRetries(t *testing.T) {
	r := NewResolver(0, nil)
	started := make(chan struct{})
	waiterJoined := make(chan struct{})
	var calls atomic.Int64
	req := Request{
		Kind: "k",
		Key:  "k/r",
		Build: func(bctx context.Context, _ []any) (any, int64, error) {
			if calls.Add(1) == 1 {
				close(started)
				<-waiterJoined
				// Simulate the abort racing the waiter's join: the flight
				// dies with a cancellation error just as interest arrives.
				return nil, 0, context.Canceled
			}
			return "second", 1, nil
		},
	}
	leaderDone := make(chan error, 1)
	go func() {
		_, err := r.Resolve(req)
		leaderDone <- err
	}()
	<-started

	waiterDone := make(chan error, 1)
	var waiterVal any
	go func() {
		v, err := r.ResolveContext(context.Background(), req)
		waiterVal = v
		waiterDone <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for r.Stats()["k"].Hits < 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never joined")
		}
		time.Sleep(time.Millisecond)
	}
	close(waiterJoined)
	if err := <-waiterDone; err != nil || waiterVal != "second" {
		t.Fatalf("waiter = %v, %v; want a successful retried build", waiterVal, err)
	}
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want its own cancellation", err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("build ran %d times, want 2 (failed flight + retry)", n)
	}
}
