package schedmc

import (
	"testing"

	"repro/internal/dag"
	"repro/internal/failure"
	"repro/internal/linalg"
	"repro/internal/sched"
)

// The headline configuration of the PR 5 acceptance criterion: LU k=16
// (1,496 tasks) on 8 processors, pfail 0.01, 2,000 trials — the exact
// workload the pre-PR5 schedsim ran. scripts/bench.sh turns these into
// BENCH_sched.json and scripts/benchcheck gates the ≥10× legacy/new
// ratio plus absolute regressions.
const (
	benchK      = 16
	benchProcs  = 8
	benchPFail  = 0.01
	benchTrials = 2000
)

func benchSetup(b *testing.B) (*dag.Graph, failure.Model) {
	b.Helper()
	g, err := linalg.Generate(linalg.FactLU, benchK, linalg.KernelTimes{})
	if err != nil {
		b.Fatal(err)
	}
	model, err := failure.FromPfail(benchPFail, g.MeanWeight())
	if err != nil {
		b.Fatal(err)
	}
	return g, model
}

// BenchmarkSchedsimLegacyLU16 is the pre-PR5 engine: the dynamic
// per-trial re-scheduling loop (event heaps, per-task rejection
// sampling) at 2,000 trials per op.
func BenchmarkSchedsimLegacyLU16(b *testing.B) {
	g, model := benchSetup(b)
	prio, err := PolicyCP.Priorities(g, model)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.ExpectedMakespan(g, prio, benchProcs, model, benchTrials, 42); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedMCLU16 is the full cold path of the rebuilt schedsim:
// priorities, list schedule, schedule-DAG freeze, estimator build
// (threshold tables) and 2,000 fused trials per op.
func BenchmarkSchedMCLU16(b *testing.B) {
	g, model := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := New(g, PolicyCP, benchProcs, model, Config{Trials: benchTrials, Seed: 42, Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedMCWarmLU16 is the makespand warm path: the frozen
// schedule and compiled estimator are cached, each op pays only the O(1)
// reconfig plus the 2,000 trials.
func BenchmarkSchedMCWarmLU16(b *testing.B) {
	g, model := benchSetup(b)
	fs, err := Freeze(g, PolicyCP, benchProcs, model)
	if err != nil {
		b.Fatal(err)
	}
	warm, err := NewEstimator(fs, model, Config{Trials: 1, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := warm.WithConfig(Config{Trials: benchTrials, Seed: 42, Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedFreezeLU16 isolates schedule compilation: priorities,
// list scheduling and the schedule-DAG freeze.
func BenchmarkSchedFreezeLU16(b *testing.B) {
	g, model := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Freeze(g, PolicyCP, benchProcs, model); err != nil {
			b.Fatal(err)
		}
	}
}
