package service

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// The cache-hit benchmarks pin the registry's reason to exist: a warm
// estimate request skips graph generation, freezing, Monte Carlo
// threshold-table construction and Dodin plan recording, so its
// per-request overhead must sit far below a cold request's. The bench
// canary (scripts/benchcheck) enforces warm ≥ 5× cheaper than cold on
// the estimate pair.
//
// The request keeps the response-relevant compute small (64 trials,
// First Order) on a graph big enough that construction dominates (LU
// k=16, pfail 0.02 — above the sampler's table-construction gate), so
// the measured request time is essentially the construction overhead
// the cache exists to remove.

const benchEstimateReq = `{"kind":"lu","k":16,"pfail":0.02,"methods":"First Order","trials":64,"seed":7}`

// benchDodinReq exercises the Dodin plan cache: cold records the
// reduction schedule, warm replays it.
const benchDodinReq = `{"kind":"lu","k":16,"pfail":0.02,"methods":"Dodin"}`

func doRequest(b *testing.B, h http.Handler, path, body string) {
	b.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		b.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
}

func BenchmarkServiceEstimateCold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := New(Config{Workers: 1}).Handler() // fresh registry: every request cold
		doRequest(b, h, "/v1/estimate", benchEstimateReq)
	}
}

func BenchmarkServiceEstimateWarm(b *testing.B) {
	h := New(Config{Workers: 1}).Handler()
	doRequest(b, h, "/v1/estimate", benchEstimateReq) // prime
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doRequest(b, h, "/v1/estimate", benchEstimateReq)
	}
}

func BenchmarkServiceDodinCold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := New(Config{Workers: 1}).Handler()
		doRequest(b, h, "/v1/estimate", benchDodinReq)
	}
}

func BenchmarkServiceDodinWarm(b *testing.B) {
	h := New(Config{Workers: 1}).Handler()
	doRequest(b, h, "/v1/estimate", benchDodinReq)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doRequest(b, h, "/v1/estimate", benchDodinReq)
	}
}

// BenchmarkServiceSweepWarm measures a fully warm sweep (frozen graph +
// recorded plan reused) — the service-side counterpart of
// BenchmarkSweepLU10.
func BenchmarkServiceSweepWarm(b *testing.B) {
	h := New(Config{Workers: 1}).Handler()
	body := `{"kind":"lu","k":10,"trials":2000,"seed":7}`
	doRequest(b, h, "/v1/sweep", body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doRequest(b, h, "/v1/sweep", body)
	}
}
