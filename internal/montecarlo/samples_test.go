package montecarlo

import (
	"math"
	"testing"

	"repro/internal/dag"
	"repro/internal/distribution"
	"repro/internal/failure"
	"repro/internal/spgraph"
)

func TestSamplesBasics(t *testing.T) {
	s := NewSamples([]float64{3, 1, 2, 5, 4})
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 3 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Quantile(0) != 1 || s.Quantile(1) != 5 {
		t.Fatalf("extreme quantiles wrong")
	}
	if s.Quantile(0.5) != 3 {
		t.Fatalf("median = %v", s.Quantile(0.5))
	}
	if s.Quantile(0.2) != 1 || s.Quantile(0.21) != 2 {
		t.Fatalf("nearest-rank quantiles wrong: %v %v", s.Quantile(0.2), s.Quantile(0.21))
	}
}

func TestSamplesEmpty(t *testing.T) {
	s := NewSamples(nil)
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Quantile(0.5)) {
		t.Fatal("empty samples should be NaN")
	}
	if s.Histogram(4) != nil {
		t.Fatal("empty histogram should be nil")
	}
	var d distribution.Discrete
	if !math.IsNaN(s.KolmogorovSmirnov(d)) {
		t.Fatal("empty KS should be NaN")
	}
}

func TestSamplesCDF(t *testing.T) {
	s := NewSamples([]float64{1, 2, 2, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 0.75}, {4, 1}, {9, 1},
	}
	for _, c := range cases {
		if got := s.CDF(c.x); got != c.want {
			t.Errorf("CDF(%v) = %v want %v", c.x, got, c.want)
		}
	}
}

func TestHistogram(t *testing.T) {
	s := NewSamples([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	bins := s.Histogram(4)
	if len(bins) != 4 {
		t.Fatalf("bins = %d", len(bins))
	}
	total := 0
	for _, b := range bins {
		total += b.Count
		if b.Hi <= b.Lo {
			t.Fatalf("degenerate bin %+v", b)
		}
	}
	if total != s.N() {
		t.Fatalf("histogram total %d != %d", total, s.N())
	}
	// Constant samples collapse to one bin.
	c := NewSamples([]float64{2, 2, 2})
	bins = c.Histogram(5)
	if len(bins) != 1 || bins[0].Count != 3 {
		t.Fatalf("constant histogram = %+v", bins)
	}
}

func TestKolmogorovSmirnovAgainstItself(t *testing.T) {
	// Sampling directly from a discrete distribution must give a small KS.
	d, _ := distribution.NewDiscrete([]float64{1, 2, 4}, []float64{0.2, 0.3, 0.5})
	rng := newWorkerRNG(9, 0)
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = d.Sample(rng.Float64())
	}
	s := NewSamples(xs)
	if ks := s.KolmogorovSmirnov(d); ks > 0.01 {
		t.Fatalf("KS against own distribution = %v", ks)
	}
	// Against a shifted distribution the KS must be large.
	wrong, _ := distribution.NewDiscrete([]float64{10, 20}, []float64{0.5, 0.5})
	if ks := s.KolmogorovSmirnov(wrong); ks < 0.9 {
		t.Fatalf("KS against wrong distribution = %v", ks)
	}
}

func TestRunSamplesMatchesRun(t *testing.T) {
	g := dag.Diamond(1, 5, 3, 2)
	m := failure.Model{Lambda: 0.1}
	e, err := NewEstimator(g, m, Config{Trials: 30000, Seed: 5, Mode: SingleRetry})
	if err != nil {
		t.Fatal(err)
	}
	res, samples, err := e.RunSamples()
	if err != nil {
		t.Fatal(err)
	}
	if samples.N() != 30000 || res.Trials != 30000 {
		t.Fatalf("counts: %d %d", samples.N(), res.Trials)
	}
	if math.Abs(res.Mean-samples.Mean()) > 1e-9 {
		t.Fatalf("means differ: %v vs %v", res.Mean, samples.Mean())
	}
	if samples.Quantile(0) != res.Min || samples.Quantile(1) != res.Max {
		t.Fatalf("extremes differ")
	}
}

// End-to-end distribution validation: the Monte Carlo makespan
// distribution of a series-parallel graph must match the exact SP
// evaluation in Kolmogorov–Smirnov distance.
func TestMonteCarloDistributionMatchesExactSP(t *testing.T) {
	g := dag.Diamond(1, 5, 3, 2)
	m := failure.Model{Lambda: 0.2}
	exact, err := spgraph.EvaluateSP(g, m, -1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEstimator(g, m, Config{Trials: 200000, Seed: 8, Mode: SingleRetry})
	if err != nil {
		t.Fatal(err)
	}
	_, samples, err := e.RunSamples()
	if err != nil {
		t.Fatal(err)
	}
	if ks := samples.KolmogorovSmirnov(exact.Distribution); ks > 0.01 {
		t.Fatalf("KS between MC and exact SP distribution = %v", ks)
	}
	// Quantiles line up too.
	for _, q := range []float64{0.5, 0.9, 0.99} {
		mcq := samples.Quantile(q)
		exq := exact.Distribution.Quantile(q)
		if mcq != exq {
			t.Fatalf("q=%v: MC %v vs exact %v", q, mcq, exq)
		}
	}
}
