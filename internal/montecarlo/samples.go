package montecarlo

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/dag"
	"repro/internal/distribution"
)

// Samples holds the raw makespans of a Monte Carlo run, sorted ascending,
// for distribution-level questions the mean alone cannot answer: tail
// quantiles (a scheduler deadline is a quantile question), histograms, and
// goodness-of-fit against analytic distributions.
type Samples struct {
	sorted []float64
}

// NewSamples sorts and wraps a sample set; the slice is taken over.
func NewSamples(xs []float64) *Samples {
	sort.Float64s(xs)
	return &Samples{sorted: xs}
}

// N returns the sample count.
func (s *Samples) N() int { return len(s.sorted) }

// Quantile returns the empirical q-quantile (nearest-rank), q in [0,1].
func (s *Samples) Quantile(q float64) float64 {
	if len(s.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return s.sorted[0]
	}
	if q >= 1 {
		return s.sorted[len(s.sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(s.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s.sorted[idx]
}

// Mean returns the sample mean.
func (s *Samples) Mean() float64 {
	if len(s.sorted) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range s.sorted {
		sum += x
	}
	return sum / float64(len(s.sorted))
}

// CDF returns the empirical CDF at x.
func (s *Samples) CDF(x float64) float64 {
	// First index with value > x.
	i := sort.SearchFloat64s(s.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(s.sorted))
}

// HistogramBin is one bin of a histogram.
type HistogramBin struct {
	Lo, Hi float64
	Count  int
}

// Histogram bins the samples into n equal-width bins over [min, max].
func (s *Samples) Histogram(n int) []HistogramBin {
	if n < 1 || len(s.sorted) == 0 {
		return nil
	}
	lo, hi := s.sorted[0], s.sorted[len(s.sorted)-1]
	if lo == hi {
		return []HistogramBin{{Lo: lo, Hi: hi, Count: len(s.sorted)}}
	}
	width := (hi - lo) / float64(n)
	bins := make([]HistogramBin, n)
	for i := range bins {
		bins[i].Lo = lo + float64(i)*width
		bins[i].Hi = bins[i].Lo + width
	}
	for _, x := range s.sorted {
		idx := int((x - lo) / width)
		if idx >= n {
			idx = n - 1
		}
		bins[idx].Count++
	}
	return bins
}

// KolmogorovSmirnov returns the KS statistic sup_x |F_emp(x) − F(x)|
// between the samples and a discrete reference distribution — used to
// validate the Monte Carlo engine against exact series-parallel
// evaluations and to quantify how far an approximated distribution is from
// the truth. The supremum over a discrete reference is attained at the
// reference's atoms or immediately before them.
func (s *Samples) KolmogorovSmirnov(ref distribution.Discrete) float64 {
	if len(s.sorted) == 0 || ref.IsZero() {
		return math.NaN()
	}
	var worst float64
	var cum float64
	for i := 0; i < ref.Len(); i++ {
		v, p := ref.Atom(i)
		// Just below the atom.
		below := s.CDF(math.Nextafter(v, math.Inf(-1)))
		if d := math.Abs(below - cum); d > worst {
			worst = d
		}
		cum += p
		// At the atom.
		if d := math.Abs(s.CDF(v) - cum); d > worst {
			worst = d
		}
	}
	return worst
}

// RunSamples runs the estimator like Run but additionally returns every
// sampled makespan. Memory is 8 bytes per trial. With the default fused
// sampler the sample vector is written in trial order and is bit-identical
// for any worker count; Result matches Run exactly.
func (e *Estimator) RunSamples() (Result, *Samples, error) {
	if err := e.fresh(); err != nil {
		return Result{}, nil, err
	}
	if e.cfg.LegacySampler {
		return e.legacyRunSamples()
	}
	// cfg.Trials is normalized to >= 1 at construction, so the run always
	// produces samples.
	all := make([]float64, e.cfg.Trials)
	res, err := e.runReduce(context.Background(), func(t int, x float64) { all[t] = x })
	if err != nil {
		return Result{}, nil, err
	}
	return res, NewSamples(all), nil
}

// legacyRunSamples is RunSamples on the v1 per-worker streams.
func (e *Estimator) legacyRunSamples() (Result, *Samples, error) {
	per := e.cfg.Trials / e.cfg.Workers
	extra := e.cfg.Trials % e.cfg.Workers
	chunks := make([][]float64, e.cfg.Workers)
	done := make(chan int, e.cfg.Workers)
	for w := 0; w < e.cfg.Workers; w++ {
		trials := per
		if w < extra {
			trials++
		}
		go func(w, trials int) {
			defer func() { done <- w }()
			rng := newWorkerRNG(e.cfg.Seed, w)
			pe := dag.NewPathEvaluatorFrozen(e.frozen)
			weights := make([]float64, e.g.NumTasks())
			xs := make([]float64, 0, trials)
			for t := 0; t < trials; t++ {
				e.sampleWeights(rng, weights)
				xs = append(xs, pe.MakespanWith(weights))
			}
			chunks[w] = xs
		}(w, trials)
	}
	for i := 0; i < e.cfg.Workers; i++ {
		<-done
	}
	var all []float64
	for _, xs := range chunks {
		all = append(all, xs...)
	}
	if len(all) == 0 {
		return Result{}, nil, fmt.Errorf("montecarlo: no samples produced")
	}
	var acc Welford
	for _, x := range all {
		acc.Add(x)
	}
	return resultFrom(acc), NewSamples(all), nil
}
