package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// WriteFigure renders a figure result as an aligned text table, one row
// per graph size, one relative-error column per method — the textual
// equivalent of the paper's log-scale plots.
func WriteFigure(w io.Writer, r FigureResult, methods []Method) error {
	if len(methods) == 0 {
		methods = sortedMethods(r.Points)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %d: %s (MC trials: %d)\n", r.Spec.ID, r.Spec.Caption(), r.Trials)
	fmt.Fprintf(&b, "%-4s %-7s %-14s %-10s", "k", "tasks", "MC mean", "MC ±95%")
	for _, m := range methods {
		fmt.Fprintf(&b, " %14s", string(m))
	}
	b.WriteByte('\n')
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-4d %-7d %-14.6g %-10.3g", p.K, p.Tasks, p.MCMean, p.MCCI95)
		for _, m := range methods {
			fmt.Fprintf(&b, " %14s", formatRelErr(p.RelErr[m]))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteFigureCSV renders a figure result as CSV with columns
// figure,factorization,pfail,k,tasks,mc_mean,mc_ci95,method,estimate,
// rel_err,time_seconds.
func WriteFigureCSV(w io.Writer, r FigureResult, methods []Method) error {
	if len(methods) == 0 {
		methods = sortedMethods(r.Points)
	}
	var b strings.Builder
	b.WriteString("figure,factorization,pfail,k,tasks,mc_mean,mc_ci95,method,estimate,rel_err,time_seconds\n")
	for _, p := range r.Points {
		for _, m := range methods {
			fmt.Fprintf(&b, "%d,%s,%g,%d,%d,%.9g,%.3g,%s,%.9g,%.6g,%.6g\n",
				r.Spec.ID, r.Spec.Fact, r.Spec.PFail, p.K, p.Tasks,
				p.MCMean, p.MCCI95, m, p.Estimate[m], p.RelErr[m], p.Time[m].Seconds())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteTable1 renders a Table I result in the paper's layout: one column
// per method, rows for normalized difference and execution time.
func WriteTable1(w io.Writer, r Table1Result, methods []Method) error {
	if len(methods) == 0 {
		methods = sortedMethods([]Point{r.Point})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: %s with k = %d (%d tasks) and pfail = %g (MC trials: %d, MC time: %v)\n",
		FactLabel(r.Spec.Fact), r.Spec.K, r.Point.Tasks, r.Spec.PFail, r.Trials, round(r.Point.MCTime))
	fmt.Fprintf(&b, "%-36s", "")
	for _, m := range methods {
		fmt.Fprintf(&b, " %14s", string(m))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-36s", "Normalized difference with MC")
	for _, m := range methods {
		fmt.Fprintf(&b, " %14s", formatRelErr(r.Point.RelErr[m]))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-36s", "Execution time")
	for _, m := range methods {
		fmt.Fprintf(&b, " %14s", round(r.Point.Time[m]).String())
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

func formatRelErr(v float64) string {
	return fmt.Sprintf("%+.3g", v)
}

func round(d time.Duration) time.Duration {
	switch {
	case d > time.Second:
		return d.Round(10 * time.Millisecond)
	case d > time.Millisecond:
		return d.Round(10 * time.Microsecond)
	default:
		return d.Round(10 * time.Nanosecond)
	}
}

// sortedMethods extracts a stable method order from points, following
// AllMethods ordering.
func sortedMethods(points []Point) []Method {
	if len(points) == 0 {
		return nil
	}
	var out []Method
	for _, m := range AllMethods() {
		if _, ok := points[0].RelErr[m]; ok {
			out = append(out, m)
		}
	}
	return out
}
