package montecarlo

import "math/rand"

// newRand returns a math/rand (v1) source for the dag generators, which
// take *rand.Rand.
func newRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
