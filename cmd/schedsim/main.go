// Command schedsim compares deterministic and failure-aware list
// scheduling under silent errors — the extension the paper's conclusion
// proposes. It runs CP list scheduling on a bounded processor count with
// (a) classic bottom-level priorities and (b) First Order expected
// bottom-level priorities, simulating task failures and re-executions, and
// reports the expected makespan of both policies.
//
// Usage:
//
//	schedsim -kind lu -k 8 -procs 4 -pfail 0.01 -trials 2000
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dag"
	"repro/internal/failure"
	"repro/internal/linalg"
	"repro/internal/sched"
)

func main() {
	var (
		kind   = flag.String("kind", "lu", "cholesky, lu or qr")
		k      = flag.Int("k", 8, "tile count")
		procs  = flag.Int("procs", 4, "processor count")
		pfail  = flag.Float64("pfail", 0.01, "failure probability of an average task")
		trials = flag.Int("trials", 2000, "simulation trials per policy")
		seed   = flag.Uint64("seed", 42, "simulation seed")
		gantt  = flag.Bool("gantt", false, "draw an ASCII Gantt chart of one failure-free schedule")
	)
	flag.Parse()
	if err := run(*kind, *k, *procs, *pfail, *trials, *seed, *gantt); err != nil {
		fmt.Fprintln(os.Stderr, "schedsim:", err)
		os.Exit(1)
	}
}

func run(kind string, k, procs int, pfail float64, trials int, seed uint64, gantt bool) error {
	g, err := linalg.Generate(linalg.Factorization(kind), k, linalg.KernelTimes{})
	if err != nil {
		return err
	}
	model, err := failure.FromPfail(pfail, g.MeanWeight())
	if err != nil {
		return err
	}
	d, _ := dag.Makespan(g)
	fmt.Printf("graph: %s k=%d, %d tasks; %d procs; pfail=%g (λ=%.5g)\n",
		kind, k, g.NumTasks(), procs, pfail, model.Lambda)

	det, err := sched.Priorities(g)
	if err != nil {
		return err
	}
	fa, err := sched.FailureAwarePriorities(g, model)
	if err != nil {
		return err
	}
	base, err := sched.ListSchedule(g, det, procs)
	if err != nil {
		return err
	}
	fmt.Printf("failure-free: critical path %.6g, %d-proc list schedule %.6g (efficiency %.1f%%)\n\n",
		d, procs, base.Makespan, 100*g.TotalWeight()/(float64(procs)*base.Makespan))
	if gantt {
		if err := sched.WriteGantt(os.Stdout, g, base, 100); err != nil {
			return err
		}
		fmt.Println()
	}

	fmt.Printf("%-28s %-14s %-12s\n", "policy", "E[makespan]", "±95% CI")
	for _, p := range []struct {
		name string
		prio []float64
	}{
		{"CP (bottom level)", det},
		{"failure-aware (First Order)", fa},
	} {
		res, err := sched.ExpectedMakespan(g, p.prio, procs, model, trials, seed)
		if err != nil {
			return err
		}
		fmt.Printf("%-28s %-14.6g %-12.3g\n", p.name, res.Mean, res.CI95)
	}
	return nil
}
