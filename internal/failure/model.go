// Package failure models silent errors striking tasks: the exponential
// error process of the paper (§III), the pfail ↔ λ calibration used
// throughout its evaluation (§V-C), MTBF conversions, and the DVFS
// error-rate model of the paper's Eq. (1).
package failure

import (
	"fmt"
	"math"
)

// Model is a silent-error model with exponential inter-arrival times of
// rate Lambda (per second). A task of weight a fails its first execution
// attempt with probability 1 − e^{−λa}; errors are detected by a
// verification at task end and trigger a full re-execution.
type Model struct {
	// Lambda is the error rate λ per second of computed work.
	Lambda float64
}

// New returns a Model with the given error rate λ ≥ 0.
func New(lambda float64) (Model, error) {
	if lambda < 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return Model{}, fmt.Errorf("failure: bad rate λ=%v", lambda)
	}
	return Model{Lambda: lambda}, nil
}

// FromPfail calibrates λ so that a task of the given average weight ā
// fails with probability pfail, i.e. pfail = 1 − e^{−λā} (paper §V-C):
// λ = −ln(1−pfail)/ā.
func FromPfail(pfail, meanWeight float64) (Model, error) {
	if pfail < 0 || pfail >= 1 || math.IsNaN(pfail) {
		return Model{}, fmt.Errorf("failure: pfail=%v outside [0,1)", pfail)
	}
	if meanWeight <= 0 {
		return Model{}, fmt.Errorf("failure: mean weight %v must be positive", meanWeight)
	}
	if pfail == 0 {
		return Model{Lambda: 0}, nil
	}
	return Model{Lambda: -math.Log1p(-pfail) / meanWeight}, nil
}

// MTBF returns the mean time between errors 1/λ (+Inf when λ = 0).
func (m Model) MTBF() float64 {
	if m.Lambda == 0 {
		return math.Inf(1)
	}
	return 1 / m.Lambda
}

// PFail returns the probability that one execution attempt of a task of
// weight a is struck by an error: 1 − e^{−λa}.
func (m Model) PFail(a float64) float64 {
	return -math.Expm1(-m.Lambda * a)
}

// PSuccess returns e^{−λa}, the probability an attempt is error-free.
func (m Model) PSuccess(a float64) float64 {
	return math.Exp(-m.Lambda * a)
}

// ExpectedExecutions returns the expected number of execution attempts of
// a task of weight a under the full re-execute-until-success model: the
// attempt count is geometric with success probability e^{−λa}, so the
// expectation is e^{λa}.
func (m Model) ExpectedExecutions(a float64) float64 {
	return math.Exp(m.Lambda * a)
}

// ExpectedTime returns the expected total execution time of a task of
// weight a under re-execution until success: a·e^{λa}.
func (m Model) ExpectedTime(a float64) float64 {
	return a * math.Exp(m.Lambda*a)
}

// IndividualMTBF converts the platform-wide MTBF µ = 1/λ into the MTBF of
// one of nProcs processors, µ_ind = nProcs·µ (paper §V-C uses
// nProcs = 100,000 to argue its pfail values are pessimistic).
func (m Model) IndividualMTBF(nProcs int) float64 {
	if nProcs <= 0 {
		return math.NaN()
	}
	return float64(nProcs) * m.MTBF()
}

// DVFS is the voltage/frequency-dependent error model of the paper's
// Eq. (1): λ(s) = λ0 · 10^{d(smax−s)/(smax−smin)}. Lower speeds raise the
// error rate exponentially.
type DVFS struct {
	Lambda0     float64 // error rate at maximum speed
	Sensitivity float64 // d > 0
	SMin, SMax  float64 // speed range, SMin < SMax
}

// NewDVFS validates and returns a DVFS model.
func NewDVFS(lambda0, d, smin, smax float64) (DVFS, error) {
	if lambda0 < 0 || math.IsNaN(lambda0) {
		return DVFS{}, fmt.Errorf("failure: bad λ0=%v", lambda0)
	}
	if d <= 0 {
		return DVFS{}, fmt.Errorf("failure: sensitivity d=%v must be > 0", d)
	}
	if !(smin < smax) || smin <= 0 {
		return DVFS{}, fmt.Errorf("failure: bad speed range [%v,%v]", smin, smax)
	}
	return DVFS{Lambda0: lambda0, Sensitivity: d, SMin: smin, SMax: smax}, nil
}

// Rate returns λ(s) for speed s clamped into [SMin, SMax].
func (v DVFS) Rate(s float64) float64 {
	if s < v.SMin {
		s = v.SMin
	}
	if s > v.SMax {
		s = v.SMax
	}
	exp := v.Sensitivity * (v.SMax - s) / (v.SMax - v.SMin)
	return v.Lambda0 * math.Pow(10, exp)
}

// ModelAt returns the failure Model at speed s.
func (v DVFS) ModelAt(s float64) Model {
	return Model{Lambda: v.Rate(s)}
}

// TimeAt scales a task weight measured at SMax to its duration at speed s:
// a·smax/s. Combined with Rate this captures the energy/resilience
// trade-off the paper's introduction motivates.
func (v DVFS) TimeAt(a, s float64) float64 {
	if s < v.SMin {
		s = v.SMin
	}
	if s > v.SMax {
		s = v.SMax
	}
	return a * v.SMax / s
}

// DynamicPower returns the conventional cubic dynamic power model s³
// (normalized), used by the DVFS example to weigh energy against expected
// makespan.
func (v DVFS) DynamicPower(s float64) float64 { return s * s * s }
