package schedmc

import (
	"math"
	"testing"

	"repro/internal/failure"
)

// Serial replication (two copies back to back on one processor) is by
// construction equivalent to doubling every task weight under the
// original error rate — Overheads must reduce to exactly that graph, so
// the Monte Carlo results are bit-identical.
func TestSerialReplicationEquivalence(t *testing.T) {
	g := mustLU(t, 6)
	model := mustModel(t, g, 0.01)
	over := Overheads{Replication: &failure.Replication{Serial: true}}
	cfg := Config{Trials: 8000, Seed: 5}

	repl, _, err := Estimate(g, PolicyCP, 4, model, over, cfg)
	if err != nil {
		t.Fatal(err)
	}
	doubled := g.Clone()
	for i := 0; i < doubled.NumTasks(); i++ {
		if err := doubled.SetWeight(i, 2*doubled.Weight(i)); err != nil {
			t.Fatal(err)
		}
	}
	direct, _, err := Estimate(doubled, PolicyCP, 4, model, Overheads{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if repl != direct {
		t.Fatalf("serial replication %+v != doubled-weight graph %+v", repl, direct)
	}
}

// Parallel replication (copies side by side) is equivalent to the
// original graph under a doubled error rate, bit for bit.
func TestParallelReplicationEquivalence(t *testing.T) {
	g := mustLU(t, 6)
	model := mustModel(t, g, 0.01)
	cfg := Config{Trials: 8000, Seed: 5}

	repl, _, err := Estimate(g, PolicyFirstOrder, 4, model, Overheads{Replication: &failure.Replication{}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct, _, err := Estimate(g, PolicyFirstOrder, 4, failure.Model{Lambda: 2 * model.Lambda}, Overheads{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if repl != direct {
		t.Fatalf("parallel replication %+v != doubled-λ model %+v", repl, direct)
	}
}

// Verification overhead strictly inflates the schedule: with Fixed = 0
// the failure-free scheduled makespan scales with the task weights, and
// the expected makespan under failures rises both through the longer
// tasks and their higher per-attempt failure probability.
func TestVerificationOverheadInflates(t *testing.T) {
	g := mustLU(t, 6)
	model := mustModel(t, g, 0.01)
	cfg := Config{Trials: 8000, Seed: 3}

	base, fsBase, err := Estimate(g, PolicyCP, 4, model, Overheads{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	over := Overheads{Verification: failure.Verification{Fraction: 0.3}}
	res, fs, err := Estimate(g, PolicyCP, 4, model, over, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Makespan <= fsBase.Makespan {
		t.Errorf("verified failure-free makespan %v not above baseline %v", fs.Makespan, fsBase.Makespan)
	}
	// Scaling every weight by 1.3 scales the schedule ~1.3×; the last-bit
	// perturbation of the bottom-level sums can flip near-ties in the
	// ready heap and reshape the schedule slightly (a classic Graham
	// sensitivity), so the match is approximate, not bit-exact.
	want := 1.3 * fsBase.Makespan
	if rel := math.Abs(fs.Makespan-want) / want; rel > 0.02 {
		t.Errorf("verified makespan %v not within 2%% of scaled baseline %v", fs.Makespan, want)
	}
	// The expected inflation is at least close to the pure weight scaling
	// (and typically beyond it: each attempt also fails more often).
	if res.Mean <= 1.25*base.Mean {
		t.Errorf("verified mean %v does not track scaled baseline %v", res.Mean, 1.3*base.Mean)
	}
}

// A fixed verification cost must leave zero-weight structural tasks free
// (failure.Verification.Apply's contract), so sources/sinks stay free.
func TestVerificationFixedSkipsZeroWeight(t *testing.T) {
	g := mustLU(t, 4)
	over := Overheads{Verification: failure.Verification{Fixed: 0.5}}
	tg, _, err := over.Apply(g, failure.Model{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.NumTasks(); i++ {
		w, tw := g.Weight(i), tg.Weight(i)
		switch {
		case w == 0 && tw != 0:
			t.Fatalf("task %d: zero weight gained verification cost %v", i, tw)
		case w > 0 && tw != w+0.5:
			t.Fatalf("task %d: weight %v, verified %v", i, w, tw)
		}
	}
	if tg == g {
		t.Fatal("Apply with overheads must not return the input graph")
	}
}

// Invalid overheads are configuration errors, caught before any
// scheduling work.
func TestOverheadsValidation(t *testing.T) {
	g := mustLU(t, 4)
	bad := Overheads{Verification: failure.Verification{Fraction: -0.1}}
	if _, _, err := bad.Apply(g, failure.Model{}); err == nil {
		t.Error("negative verification fraction accepted")
	}
	if _, _, err := (Overheads{}).Apply(g, failure.Model{}); err != nil {
		t.Errorf("zero overheads rejected: %v", err)
	}
	if tg, _, _ := (Overheads{}).Apply(g, failure.Model{}); tg != g {
		t.Error("zero overheads must return the input graph unchanged")
	}
}
