package lb

import (
	"fmt"
	"testing"
)

// testKeys generates n distinct routing-key-shaped strings.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("graph/sha256:%064x", i)
	}
	return keys
}

func TestRingDistribution(t *testing.T) {
	// No shard may hold more than 2x the mean over 1k keys — the vnode
	// count is chosen to keep this true for realistic fleet sizes.
	for _, replicas := range [][]string{
		{"http://a:1", "http://b:1"},
		{"http://a:1", "http://b:1", "http://c:1"},
		{"http://a:1", "http://b:1", "http://c:1", "http://d:1", "http://e:1"},
	} {
		t.Run(fmt.Sprintf("%d replicas", len(replicas)), func(t *testing.T) {
			r := newRing(replicas, 0)
			keys := testKeys(1000)
			counts := make(map[string]int)
			for _, k := range keys {
				owner, ok := r.owner(k)
				if !ok {
					t.Fatalf("no owner for %q", k)
				}
				counts[owner]++
			}
			mean := float64(len(keys)) / float64(len(replicas))
			for rep, n := range counts {
				if float64(n) > 2*mean {
					t.Errorf("replica %s owns %d keys, > 2x mean %.0f", rep, n, mean)
				}
			}
			if len(counts) != len(replicas) {
				t.Errorf("only %d of %d replicas own keys", len(counts), len(replicas))
			}
		})
	}
}

func TestRingDeterministic(t *testing.T) {
	// Two rings built over the same members (any insertion order) route
	// every key identically — the property that lets N lb instances
	// front one fleet without coordination.
	a := newRing([]string{"http://a:1", "http://b:1", "http://c:1"}, 0)
	b := newRing([]string{"http://c:1", "http://a:1", "http://b:1"}, 0)
	for _, k := range testKeys(200) {
		ao, _ := a.owner(k)
		bo, _ := b.owner(k)
		if ao != bo {
			t.Fatalf("key %q: ring order changed owner %q vs %q", k, ao, bo)
		}
	}
}

func TestRingMinimalRemapOnJoin(t *testing.T) {
	// Adding a replica may only move keys onto the new replica; no key
	// moves between surviving replicas.
	before := newRing([]string{"http://a:1", "http://b:1", "http://c:1"}, 0)
	after := newRing([]string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}, 0)
	keys := testKeys(1000)
	moved := 0
	for _, k := range keys {
		ob, _ := before.owner(k)
		oa, _ := after.owner(k)
		if ob == oa {
			continue
		}
		moved++
		if oa != "http://d:1" {
			t.Fatalf("key %q moved %q -> %q, not to the joining replica", k, ob, oa)
		}
	}
	if moved == 0 {
		t.Fatal("joining replica took no keys")
	}
	// The joiner should take roughly its fair share (1/4), not the ring.
	if moved > len(keys)/2 {
		t.Fatalf("join moved %d of %d keys — far more than a fair share", moved, len(keys))
	}
}

func TestRingMinimalRemapOnLeave(t *testing.T) {
	// Removing a replica may only move that replica's keys; every other
	// key keeps its owner. This is what bounds the cache-warmth loss
	// when a replica drains: the surviving shards are untouched.
	before := newRing([]string{"http://a:1", "http://b:1", "http://c:1"}, 0)
	after := newRing([]string{"http://a:1", "http://c:1"}, 0)
	for _, k := range testKeys(1000) {
		ob, _ := before.owner(k)
		oa, _ := after.owner(k)
		if ob == "http://b:1" {
			if oa == "http://b:1" {
				t.Fatalf("key %q still owned by the removed replica", k)
			}
			continue
		}
		if ob != oa {
			t.Fatalf("key %q moved %q -> %q though its owner survived", k, ob, oa)
		}
	}
}

func TestRingSuccessorsAreRemapOrder(t *testing.T) {
	// successors(key, 2)[1] — the hedging sibling — must be exactly the
	// replica the key remaps to when the owner leaves, so a hedged
	// request lands where the shard would migrate anyway.
	members := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := newRing(members, 0)
	for _, k := range testKeys(200) {
		succ := r.successors(k, 2)
		if len(succ) != 2 {
			t.Fatalf("key %q: got %d successors, want 2", k, len(succ))
		}
		if succ[0] == succ[1] {
			t.Fatalf("key %q: duplicate successor %q", k, succ[0])
		}
		var survivors []string
		for _, m := range members {
			if m != succ[0] {
				survivors = append(survivors, m)
			}
		}
		remapped, _ := newRing(survivors, 0).owner(k)
		if remapped != succ[1] {
			t.Fatalf("key %q: successor %q but remap owner %q", k, succ[1], remapped)
		}
	}
}

func TestRingEmptyAndBounds(t *testing.T) {
	empty := newRing(nil, 0)
	if _, ok := empty.owner("k"); ok {
		t.Fatal("empty ring returned an owner")
	}
	if s := empty.successors("k", 3); len(s) != 0 {
		t.Fatalf("empty ring returned successors %v", s)
	}
	if empty.size() != 0 {
		t.Fatalf("empty ring size %d", empty.size())
	}
	one := newRing([]string{"http://a:1"}, 0)
	if s := one.successors("k", 5); len(s) != 1 || s[0] != "http://a:1" {
		t.Fatalf("singleton ring successors %v", s)
	}
	if one.size() != 1 {
		t.Fatalf("singleton ring size %d", one.size())
	}
}
