package dag

// TopLevels returns tl(i) for every task, following the paper's definition:
// tl(i) = 0 for source tasks, otherwise max over predecessors j of
// tl(j) + a_j. tl(i) is the earliest start time of i with unlimited
// processors and no failures.
func TopLevels(g *Graph) ([]float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	tl := make([]float64, g.NumTasks())
	for _, v := range order {
		best := 0.0
		for _, p := range g.pred[v] {
			if c := tl[p] + g.weights[p]; c > best {
				best = c
			}
		}
		tl[v] = best
	}
	return tl, nil
}

// BottomLevels returns bl(i) for every task, following the paper's
// definition: bl(i) = 0 for sink tasks, otherwise max over successors j of
// a_j + bl(j). Note this definition excludes a_i itself; the classic
// CP-scheduling priority a_i + bl(i) is obtained by adding the task weight.
func BottomLevels(g *Graph) ([]float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	bl := make([]float64, g.NumTasks())
	for k := len(order) - 1; k >= 0; k-- {
		v := order[k]
		best := 0.0
		for _, s := range g.succ[v] {
			if c := g.weights[s] + bl[s]; c > best {
				best = c
			}
		}
		bl[v] = best
	}
	return bl, nil
}

// CriticalPathLengths returns, for every task i, the length of the longest
// path passing through i: head(i) + tail(i) - a_i = tl(i) + a_i + bl(i).
func CriticalPathLengths(g *Graph) ([]float64, error) {
	tl, err := TopLevels(g)
	if err != nil {
		return nil, err
	}
	bl, err := BottomLevels(g)
	if err != nil {
		return nil, err
	}
	through := make([]float64, g.NumTasks())
	for i := range through {
		through[i] = tl[i] + g.weights[i] + bl[i]
	}
	return through, nil
}
