package montecarlo

import (
	"context"
	"errors"
	"testing"

	"repro/internal/failure"
	"repro/internal/faultinject"
	"repro/internal/linalg"
)

// cancelGraph is a small-but-not-trivial workload: enough chunks that a
// mid-run cancel lands between chunk boundaries.
func cancelGraph(t *testing.T) *Estimator {
	t.Helper()
	g, err := linalg.LU(8, linalg.KernelTimes{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := failure.FromPfail(0.01, g.MeanWeight())
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEstimator(g, m, Config{
		Trials: 16 * chunkSize, Workers: 2, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRunContextPreCancelled(t *testing.T) {
	e := cancelGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := e.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != (Result{}) {
		t.Fatalf("cancelled run leaked a partial result: %+v", res)
	}
}

func TestRunContextMidRunCancel(t *testing.T) {
	e := cancelGraph(t)
	// A per-chunk delay makes the run long enough that cancel reliably
	// lands mid-run; the delay point also exercises the ctx-bounded sleep.
	if err := faultinject.Arm("mc.chunk=delay:10ms"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Disarm)
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	res, err := e.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != (Result{}) {
		t.Fatalf("cancelled run leaked a partial result: %+v", res)
	}
	// The estimator is retryable and the retry is bit-identical to a
	// never-cancelled run.
	faultinject.Disarm()
	got, err := e.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := cancelGraph(t).Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("retry after cancel diverged:\n got %+v\nwant %+v", got, want)
	}
}

func TestRunContextInjectedFault(t *testing.T) {
	e := cancelGraph(t)
	if err := faultinject.Arm("mc.chunk=error:chunk fault*1"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Disarm)
	_, err := e.RunContext(context.Background())
	if !faultinject.IsFault(err) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	faultinject.Disarm()
	if _, err := e.RunContext(context.Background()); err != nil {
		t.Fatalf("estimator not retryable after fault: %v", err)
	}
}

func adaptiveCancelEstimator(t *testing.T) *Estimator {
	t.Helper()
	g, err := linalg.LU(8, linalg.KernelTimes{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := failure.FromPfail(0.01, g.MeanWeight())
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEstimator(g, m, Config{
		Workers: 2, Seed: 42, Tolerance: 1e-9, MaxTrials: 32 * chunkSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestResumeAdaptiveContextCancelKeepsPrevSnapshot(t *testing.T) {
	e := adaptiveCancelEstimator(t)
	// Build a small genuine snapshot first.
	stopAt := func(chunks int64) func(*Snapshot) bool {
		return func(s *Snapshot) bool { return s.Chunks() >= chunks }
	}
	_, prev, err := e.ResumeAdaptive(nil, stopAt(2))
	if err != nil {
		t.Fatal(err)
	}
	prevTrials := prev.Trials()

	if err := faultinject.Arm("mc.chunk=delay:10ms"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Disarm)
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	res, snap, err := e.ResumeAdaptiveContext(ctx, prev, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if snap != nil || res != (Result{}) {
		t.Fatalf("cancelled adaptive run leaked state: res=%+v snap=%v", res, snap)
	}
	if prev.Trials() != prevTrials {
		t.Fatalf("prev snapshot mutated by cancelled run: %d -> %d trials", prevTrials, prev.Trials())
	}

	// Extending the untouched snapshot after the cancel is bit-identical
	// to extending it without the failed attempt in between.
	faultinject.Disarm()
	_, got, err := e.ResumeAdaptiveContext(context.Background(), prev, stopAt(6))
	if err != nil {
		t.Fatal(err)
	}
	e2 := adaptiveCancelEstimator(t)
	_, want, err := e2.ResumeAdaptive(nil, stopAt(6))
	if err != nil {
		t.Fatal(err)
	}
	if got.Chunks() != want.Chunks() || got.acc != want.acc {
		t.Fatalf("post-cancel extension diverged: got %d chunks acc %+v, want %d chunks acc %+v",
			got.Chunks(), got.acc, want.Chunks(), want.acc)
	}
}

func TestResumeAdaptiveContextPreCancelledServesWarmSnapshot(t *testing.T) {
	// A snapshot that already satisfies the stopping rule is served even
	// with a dead context: the warm path runs no trials and should not
	// fail a request that needs none.
	e := adaptiveCancelEstimator(t)
	_, snap, err := e.ResumeAdaptive(nil, func(s *Snapshot) bool { return s.Chunks() >= 1 })
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := e.ResumeAdaptiveContext(ctx, snap, func(s *Snapshot) bool { return true }); err != nil {
		t.Fatalf("warm snapshot not served under cancelled ctx: %v", err)
	}
}
