package spgraph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/failure"
	"repro/internal/linalg"
	"repro/internal/montecarlo"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// nGraph returns the classic non-series-parallel "N": a→c, a→d, b→d.
func nGraph() *dag.Graph {
	g := dag.New(4)
	a := g.MustAddTask("a", 1)
	b := g.MustAddTask("b", 2)
	c := g.MustAddTask("c", 3)
	d := g.MustAddTask("d", 4)
	g.MustAddEdge(a, c)
	g.MustAddEdge(a, d)
	g.MustAddEdge(b, d)
	return g
}

func TestFromDAGShape(t *testing.T) {
	g := dag.Diamond(1, 2, 3, 4)
	net, err := FromDAG(g, failure.Model{Lambda: 0.1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 4 task arcs + 4 precedence arcs + 1 source hook + 1 sink hook.
	if net.NumArcs() != 10 {
		t.Fatalf("arcs = %d want 10", net.NumArcs())
	}
}

func TestFromDAGEmptyGraph(t *testing.T) {
	net, err := FromDAG(dag.New(0), failure.Model{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.EvaluateSP()
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != 0 {
		t.Fatalf("empty estimate = %v", res.Estimate)
	}
}

func TestFromDAGRejectsCycle(t *testing.T) {
	g := dag.New(2)
	a := g.MustAddTask("a", 1)
	b := g.MustAddTask("b", 1)
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, a)
	if _, err := FromDAG(g, failure.Model{}, 0); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestIsSeriesParallel(t *testing.T) {
	cases := []struct {
		name string
		g    *dag.Graph
		want bool
	}{
		{"chain", dag.Chain(5), true},
		{"diamond", dag.Diamond(1, 2, 3, 4), true},
		{"forkjoin", dag.ForkJoin(6, 1), true},
		{"single", dag.Chain(1), true},
		{"N", nGraph(), false},
	}
	for _, c := range cases {
		got, err := IsSeriesParallel(c.g)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("IsSeriesParallel(%s) = %v want %v", c.name, got, c.want)
		}
	}
}

func TestCholeskyIsNotSeriesParallel(t *testing.T) {
	// §V-F: "the DAGs that we consider are far from being series-parallel".
	g, _ := linalg.Cholesky(4, linalg.KernelTimes{})
	sp, err := IsSeriesParallel(g)
	if err != nil {
		t.Fatal(err)
	}
	if sp {
		t.Fatal("Cholesky k=4 recognized as series-parallel")
	}
}

func TestEvaluateSPChainExact(t *testing.T) {
	g := dag.Chain(5, 1, 2)
	m := failure.Model{Lambda: 0.1}
	res, err := EvaluateSP(g, m, -1) // uncapped: exact
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := montecarlo.ExactTwoState(g, m)
	if !almostEq(res.Estimate, exact, 1e-9) {
		t.Fatalf("chain SP estimate %v != exact %v", res.Estimate, exact)
	}
}

func TestEvaluateSPDiamondExact(t *testing.T) {
	g := dag.Diamond(1, 5, 3, 2)
	m := failure.Model{Lambda: 0.2}
	res, err := EvaluateSP(g, m, -1)
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := montecarlo.ExactTwoState(g, m)
	if !almostEq(res.Estimate, exact, 1e-9) {
		t.Fatalf("diamond SP estimate %v != exact %v", res.Estimate, exact)
	}
}

func TestEvaluateSPForkJoinExact(t *testing.T) {
	g := dag.ForkJoin(5, 1.0)
	m := failure.Model{Lambda: 0.3}
	res, err := EvaluateSP(g, m, -1)
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := montecarlo.ExactTwoState(g, m)
	if !almostEq(res.Estimate, exact, 1e-9) {
		t.Fatalf("fork-join SP estimate %v != exact %v", res.Estimate, exact)
	}
}

func TestEvaluateSPRejectsNonSP(t *testing.T) {
	if _, err := EvaluateSP(nGraph(), failure.Model{Lambda: 0.1}, -1); err == nil {
		t.Fatal("non-SP graph accepted by EvaluateSP")
	}
}

func TestDodinZeroDuplicationsOnSPGraphs(t *testing.T) {
	m := failure.Model{Lambda: 0.15}
	for _, g := range []*dag.Graph{dag.Chain(6, 1, 2), dag.Diamond(1, 5, 3, 2), dag.ForkJoin(4, 2)} {
		res, stats, err := Dodin(g, m, -1)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Duplications != 0 {
			t.Fatalf("SP graph needed %d duplications", stats.Duplications)
		}
		sp, _ := EvaluateSP(g, m, -1)
		if !almostEq(res.Estimate, sp.Estimate, 1e-9) {
			t.Fatalf("Dodin %v != SP %v", res.Estimate, sp.Estimate)
		}
	}
}

func TestDodinOnNGraph(t *testing.T) {
	g := nGraph()
	m := failure.Model{Lambda: 0.1}
	res, stats, err := Dodin(g, m, -1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Duplications == 0 {
		t.Fatal("N graph needs at least one duplication")
	}
	exact, _ := montecarlo.ExactTwoState(g, m)
	// Duplication assumes independence between duplicated subpaths; the
	// estimate is approximate but must be in the right ballpark.
	if rel := math.Abs(res.Estimate-exact) / exact; rel > 0.2 {
		t.Fatalf("Dodin rel err %v (est %v exact %v)", rel, res.Estimate, exact)
	}
	d, _ := dag.Makespan(g)
	if res.Estimate < d {
		t.Fatalf("estimate %v below failure-free %v", res.Estimate, d)
	}
}

func TestDodinOnCholesky(t *testing.T) {
	g, _ := linalg.Cholesky(4, linalg.KernelTimes{})
	m, _ := failure.FromPfail(0.01, g.MeanWeight())
	res, stats, err := Dodin(g, m, 0) // default cap
	if err != nil {
		t.Fatal(err)
	}
	if stats.Duplications == 0 {
		t.Fatal("Cholesky should need duplications")
	}
	d, _ := dag.Makespan(g)
	if res.Estimate <= 0 || math.IsNaN(res.Estimate) {
		t.Fatalf("estimate = %v", res.Estimate)
	}
	// Sanity band: within a factor of 3 of the failure-free makespan.
	if res.Estimate < d/3 || res.Estimate > 3*d {
		t.Fatalf("estimate %v wildly off failure-free %v", res.Estimate, d)
	}
}

// Property: Dodin terminates on random DAGs and lands within a loose band
// of the exact expectation (its error is the point of the paper's
// comparison, so the band is wide).
func TestQuickDodinSanity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := dag.LayeredRandom(dag.RandomConfig{Tasks: 12, EdgeProb: 0.5, MaxLayerWidth: 3}, rng)
		if err != nil {
			return false
		}
		m := failure.Model{Lambda: 0.05}
		res, _, err := Dodin(g, m, 0)
		if err != nil {
			return false
		}
		exact, err := montecarlo.ExactTwoState(g, m)
		if err != nil {
			return false
		}
		rel := math.Abs(res.Estimate-exact) / exact
		return rel < 0.5 && !math.IsNaN(res.Estimate)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDodinSupportCapKeepsMeanStable(t *testing.T) {
	g, _ := linalg.Cholesky(4, linalg.KernelTimes{})
	m, _ := failure.FromPfail(0.001, g.MeanWeight())
	loose, _, err := Dodin(g, m, 128)
	if err != nil {
		t.Fatal(err)
	}
	tight, _, err := Dodin(g, m, 16)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(loose.Estimate-tight.Estimate) / loose.Estimate; rel > 0.05 {
		t.Fatalf("support cap moved the estimate by %v (%v vs %v)", rel, loose.Estimate, tight.Estimate)
	}
}

func TestDodinDistributionIsProper(t *testing.T) {
	g := nGraph()
	res, _, err := Dodin(g, failure.Model{Lambda: 0.1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	d := res.Distribution
	if d.IsZero() {
		t.Fatal("empty distribution")
	}
	var sum float64
	for i := 0; i < d.Len(); i++ {
		_, p := d.Atom(i)
		sum += p
	}
	if !almostEq(sum, 1, 1e-9) {
		t.Fatalf("probabilities sum to %v", sum)
	}
	if d.Min() < 4 { // failure-free makespan of the N graph is 1+4 = 5... min path a+d = 5, but with min sampling min is d(G)=5
		t.Fatalf("support minimum %v below any path length", d.Min())
	}
}
