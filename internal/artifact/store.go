// The declared build rules of the repository's artifact kinds. Each
// rule is one Request constructor: a canonical key, the dependency
// requests, the build function and the size accounting — everything
// the generic Resolver needs. The table (also in docs/ARCHITECTURE.md):
//
//	kind    key                                         deps    size
//	graph   graph/sha256:<canonical-JSON digest>        —       canonical + frozen + graph estimate
//	plan    plan/<graph>/<atom cap>                     graph   plan.SizeBytes
//	mc      mc/<graph>/<λ>/<mode>                       graph   estimator.SizeBytes
//	sched   sched/<graph>/<policy>/<procs>/<λ>          graph   estimator.SizeBytes
//	snap    snap/<graph>/<sched?>/<policy>/<procs>/<λ>/<mode>/<seed>
//	                                                    graph   snapshot.SizeBytes
//
// λ is formatted as an exact hexadecimal float so distinct rates can
// never collide in a key.

package artifact

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"sync"

	"repro/internal/bounds"
	"repro/internal/dag"
	"repro/internal/failure"
	"repro/internal/faultinject"
	"repro/internal/montecarlo"
	"repro/internal/schedmc"
	"repro/internal/spgraph"
)

// The artifact kinds (stats buckets and key prefixes).
const (
	KindGraph     = "graph"
	KindPlan      = "plan"
	KindEstimator = "mc"
	KindSchedule  = "sched"
	KindSnapshot  = "snap"
)

// Kinds lists every declared artifact kind, in rule-table order — the
// stable iteration order of GET /v1/cache.
func Kinds() []string {
	return []string{KindGraph, KindPlan, KindEstimator, KindSchedule, KindSnapshot}
}

// Graph is the root artifact: one content-addressed DAG with its
// frozen CSR form and the per-graph scratch pools every derived
// artifact and warm request path shares. Immutable after construction
// and safe for concurrent use; the pools hand out per-goroutine
// scratch, never shared mid-flight.
type Graph struct {
	// ID is the content address: "sha256:" + hex digest of Canonical.
	ID string
	// Canonical is the canonical DAG JSON whose digest is ID.
	Canonical []byte
	// G is the parsed mutable graph (adjacency, weights, names).
	G *dag.Graph
	// Frozen is the compiled CSR form the kernels run on.
	Frozen *dag.Frozen
	// D0 is the failure-free makespan d(G).
	D0 float64

	key      Key
	size     int64
	sweepers sync.Pool // *bounds.Sweeper, per-goroutine scratch
	paths    sync.Pool // *dag.PathEvaluator, per-goroutine scratch
}

// Key returns the graph's resolver key ("graph/<id>").
func (ga *Graph) Key() Key { return ga.key }

// SizeBytes reports the graph artifact's accounted size.
func (ga *Graph) SizeBytes() int64 { return ga.size }

// Sweeper checks a bounds sweeper out of the graph's pool; return it
// with PutSweeper. Sweepers are per-request scratch over the shared
// frozen graph: pooled for reuse, not counted against the byte budget
// (the GC may reclaim them under pressure).
func (ga *Graph) Sweeper() *bounds.Sweeper { return ga.sweepers.Get().(*bounds.Sweeper) }

// PutSweeper returns a sweeper to the pool.
func (ga *Graph) PutSweeper(sw *bounds.Sweeper) { ga.sweepers.Put(sw) }

// PathEvaluator checks a longest-path evaluator out of the graph's
// pool (warm First Order estimates); return it with PutPathEvaluator.
func (ga *Graph) PathEvaluator() *dag.PathEvaluator { return ga.paths.Get().(*dag.PathEvaluator) }

// PutPathEvaluator returns an evaluator to the pool.
func (ga *Graph) PutPathEvaluator(pe *dag.PathEvaluator) { ga.paths.Put(pe) }

// GraphID returns the content address of a graph: "sha256:" + the hex
// digest of its canonical JSON. Two submissions of the same DAG —
// inline JSON or generator spec — collapse onto one artifact.
func GraphID(canonical []byte) string {
	sum := sha256.Sum256(canonical)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// NormAtoms maps a Dodin atom cap onto its plan-rule key segment:
// 0 means the spgraph default, negative means unlimited.
func NormAtoms(atoms int) int {
	if atoms == 0 {
		return spgraph.DefaultMaxAtoms
	}
	if atoms < 0 {
		return -1
	}
	return atoms
}

// lambdaKey formats a failure rate as an exact, collision-free key
// segment (hexadecimal float round-trips every float64 bit pattern).
func lambdaKey(lambda float64) string {
	return strconv.FormatFloat(lambda, 'x', -1, 64)
}

// GraphKey returns the store key of the graph artifact with content
// address id ("graph/sha256:…"). It is also the cluster routing key:
// makespan-lb shards requests across replicas by this string, so every
// artifact derived from one graph lands in one replica's cache.
func GraphKey(id string) Key { return graphKey(id) }

func graphKey(id string) Key { return Key(KindGraph + "/" + id) }

func planKey(id string, atoms int) Key {
	return Key(fmt.Sprintf("%s/%s/%d", KindPlan, id, NormAtoms(atoms)))
}

func estimatorKey(id string, lambda float64, mode montecarlo.Mode) Key {
	return Key(fmt.Sprintf("%s/%s/%s/%d", KindEstimator, id, lambdaKey(lambda), mode))
}

func scheduleKey(id string, policy schedmc.Policy, procs int, lambda float64) Key {
	return Key(fmt.Sprintf("%s/%s/%s/%d/%s", KindSchedule, id, policy, procs, lambdaKey(lambda)))
}

// SnapshotKey identifies one retained adaptive chunk stream: the
// engine (unbounded-processor or a frozen schedule), the failure rate,
// the sampling mode and the seed. Deliberately NOT the stopping rule
// (tolerance/target/confidence): the stream is chunk-deterministic, so
// one retained prefix serves every rule.
type SnapshotKey struct {
	// Sched selects the frozen-schedule engine over the
	// unbounded-processor one.
	Sched bool
	// Policy is the schedule's priority policy (zero unless Sched).
	Policy schedmc.Policy
	// Procs is the schedule's processor count (zero unless Sched).
	Procs int
	// Lambda is the failure rate the stream samples under.
	Lambda float64
	// Mode is the re-execution sampling mode.
	Mode montecarlo.Mode
	// Seed is the stream's RNG seed.
	Seed uint64
}

func snapshotKey(id string, k SnapshotKey) Key {
	return Key(fmt.Sprintf("%s/%s/%t/%s/%d/%s/%d/%d",
		KindSnapshot, id, k.Sched, k.Policy, k.Procs, lambdaKey(k.Lambda), k.Mode, k.Seed))
}

// graphSizeEstimate approximates the retained size of the mutable
// graph: adjacency slices, weights and names.
func graphSizeEstimate(g *dag.Graph) int64 {
	s := int64(g.NumTasks())*64 + int64(g.NumEdges())*16
	for i := 0; i < g.NumTasks(); i++ {
		s += int64(len(g.Name(i)))
	}
	return s
}

// Store is the typed façade over one Resolver: each method is one
// declared rule of the table above. A Store is what the service
// registry, the experiments runner and the CLIs share — create one per
// process (CLIs: NewStore(0), unlimited) or per daemon (the registry's
// byte budget applies to every kind at once).
type Store struct {
	res *Resolver
}

// NewStore creates a store whose resolver enforces budget bytes across
// all artifact kinds (<= 0: unlimited).
func NewStore(budget int64) *Store {
	s := &Store{}
	s.res = NewResolver(budget, nil)
	return s
}

// NewStoreOnEvict is NewStore with an eviction observer: fn runs for
// every evicted entry — cascaded dependents first — under the resolver
// lock (it must not call back into the store, but may take locks
// ordered after the resolver's).
func NewStoreOnEvict(budget int64, fn func(kind string, key Key, value any)) *Store {
	s := &Store{}
	s.res = NewResolver(budget, fn)
	return s
}

// Resolver exposes the underlying resolver (stats, budget, low-level
// introspection).
func (s *Store) Resolver() *Resolver { return s.res }

// buildCheck is the shared preamble of every build rule: honor the
// build's flight context and the chaos harness's
// "artifact.build.<kind>" failpoint before doing any work. Both checks
// are free when unused — ctx.Err on a live context is one atomic load,
// and the failpoint gate is another.
func buildCheck(ctx context.Context, kind string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if faultinject.Enabled() {
		if err := faultinject.Hit(ctx, "artifact.build."+kind); err != nil {
			return err
		}
	}
	return nil
}

// maybeShed fires the chaos harness's "artifact.evict" failpoint: when
// armed in trigger mode, every store resolution is followed by a full
// eviction storm (Shed), the worst-case cache weather correctness must
// shrug off.
func (s *Store) maybeShed() {
	if faultinject.Enabled() && faultinject.Triggered("artifact.evict") {
		s.res.Shed()
	}
}

// graphRequest is the graph rule bound to specific inputs. The build
// freezes the graph and assembles the pools; size is the canonical
// JSON plus the frozen arrays plus the mutable-graph estimate —
// exactly the registry's historical accounting.
func graphRequest(id string, canonical []byte, g *dag.Graph) Request {
	return Request{
		Kind: KindGraph,
		Key:  graphKey(id),
		Build: func(ctx context.Context, _ []any) (any, int64, error) {
			if err := buildCheck(ctx, KindGraph); err != nil {
				return nil, 0, err
			}
			frozen, err := dag.Freeze(g)
			if err != nil {
				return nil, 0, err
			}
			ga := &Graph{
				ID:        id,
				Canonical: canonical,
				G:         g,
				Frozen:    frozen,
				D0:        frozen.Makespan(),
				key:       graphKey(id),
				size:      int64(len(canonical)) + frozen.SizeBytes() + graphSizeEstimate(g),
			}
			ga.sweepers.New = func() any { return bounds.NewSweeperFrozen(frozen) }
			ga.paths.New = func() any { return dag.NewPathEvaluatorFrozen(frozen) }
			return ga, ga.size, nil
		},
	}
}

// residentRequest re-declares an already built graph as a dependency:
// resolving it reuses ga without refreezing (and re-registers ga if it
// was evicted between the caller's lookup and the dependent build).
func residentRequest(ga *Graph) Request {
	return Request{
		Kind:  KindGraph,
		Key:   ga.key,
		Build: func(context.Context, []any) (any, int64, error) { return ga, ga.size, nil },
	}
}

// Graph resolves g's root artifact — canonical-JSON content
// addressing, freeze, pools — building it at most once per content.
// created reports whether this call ran the build (false on hits and
// coalesced waits).
func (s *Store) Graph(g *dag.Graph) (*Graph, bool, error) {
	return s.GraphContext(context.Background(), g)
}

// GraphContext is Graph with the caller's request context: the wait is
// cancellable, while the build itself aborts only when every interested
// request has detached (see Resolver.ResolveContext).
func (s *Store) GraphContext(ctx context.Context, g *dag.Graph) (*Graph, bool, error) {
	canonical, err := json.Marshal(g)
	if err != nil {
		return nil, false, err
	}
	id := GraphID(canonical)
	v, built, err := s.res.ResolveBuiltContext(ctx, graphRequest(id, canonical, g))
	if err != nil {
		return nil, false, err
	}
	s.maybeShed()
	return v.(*Graph), built, nil
}

// GraphByID returns the resident graph artifact for a content address,
// touching it warm; ok is false when it was never built or was evicted.
func (s *Store) GraphByID(id string) (*Graph, bool) {
	v, ok := s.res.Lookup(graphKey(id))
	if !ok {
		return nil, false
	}
	return v.(*Graph), true
}

// Resident reports whether ga is still the store's entry for its key —
// callers holding a Graph across evictions use it to decide between
// warm resolution and an unaccounted cold build.
func (s *Store) Resident(ga *Graph) bool {
	v, ok := s.res.Peek(ga.key)
	return ok && v == ga
}

// Touch moves ga to the warm end of the LRU and counts a graph hit.
func (s *Store) Touch(ga *Graph) {
	s.res.Lookup(ga.key)
}

// Plan resolves the graph's recorded Dodin reduction schedule for the
// given atom cap. The key normalizes the cap only — a plan replays
// bit-identically under every failure model (see spgraph.Plan), so one
// recording serves estimates and sweeps at any pfail; model is used
// solely for the recording run on a miss.
func (s *Store) Plan(ga *Graph, atoms int, model failure.Model) (*spgraph.Plan, error) {
	return s.PlanContext(context.Background(), ga, atoms, model)
}

// PlanContext is Plan with the caller's request context.
func (s *Store) PlanContext(ctx context.Context, ga *Graph, atoms int, model failure.Model) (*spgraph.Plan, error) {
	v, err := s.res.ResolveContext(ctx, Request{
		Kind: KindPlan,
		Key:  planKey(ga.ID, atoms),
		Deps: []Request{residentRequest(ga)},
		Build: func(bctx context.Context, deps []any) (any, int64, error) {
			if err := buildCheck(bctx, KindPlan); err != nil {
				return nil, 0, err
			}
			g := deps[0].(*Graph)
			_, _, plan, err := spgraph.DodinPlan(g.G, model, atoms)
			if err != nil {
				return nil, 0, err
			}
			return plan, plan.SizeBytes(), nil
		},
	})
	if err != nil {
		return nil, err
	}
	s.maybeShed()
	return v.(*spgraph.Plan), nil
}

// Estimator resolves the graph's compiled Monte Carlo estimator for
// (λ, mode) — per-task probabilities and sampler threshold tables.
// The artifact is built with a placeholder run config (Trials 1,
// Workers 1); callers derive per-request variants with WithConfig,
// which is O(1) and bit-identical to cold construction.
func (s *Store) Estimator(ga *Graph, model failure.Model, mode montecarlo.Mode) (*montecarlo.Estimator, error) {
	return s.EstimatorContext(context.Background(), ga, model, mode)
}

// EstimatorContext is Estimator with the caller's request context.
func (s *Store) EstimatorContext(ctx context.Context, ga *Graph, model failure.Model, mode montecarlo.Mode) (*montecarlo.Estimator, error) {
	v, err := s.res.ResolveContext(ctx, Request{
		Kind: KindEstimator,
		Key:  estimatorKey(ga.ID, model.Lambda, mode),
		Deps: []Request{residentRequest(ga)},
		Build: func(bctx context.Context, deps []any) (any, int64, error) {
			if err := buildCheck(bctx, KindEstimator); err != nil {
				return nil, 0, err
			}
			g := deps[0].(*Graph)
			est, err := montecarlo.NewEstimatorFrozen(g.Frozen, model, montecarlo.Config{
				Trials: 1, Workers: 1, Mode: mode,
			})
			if err != nil {
				return nil, 0, err
			}
			return est, est.SizeBytes(), nil
		},
	})
	if err != nil {
		return nil, err
	}
	s.maybeShed()
	return v.(*montecarlo.Estimator), nil
}

// ScheduleEstimator resolves the graph's frozen-schedule Monte Carlo
// estimator for (policy, procs, λ): priorities, list schedule,
// schedule-DAG freeze and sampler tables, built exactly once per key.
// Like Estimator, the build uses a placeholder run config; derive the
// per-request one with WithConfig.
func (s *Store) ScheduleEstimator(ga *Graph, policy schedmc.Policy, procs int, model failure.Model) (*schedmc.Estimator, error) {
	return s.ScheduleEstimatorContext(context.Background(), ga, policy, procs, model)
}

// ScheduleEstimatorContext is ScheduleEstimator with the caller's
// request context.
func (s *Store) ScheduleEstimatorContext(ctx context.Context, ga *Graph, policy schedmc.Policy, procs int, model failure.Model) (*schedmc.Estimator, error) {
	v, err := s.res.ResolveContext(ctx, Request{
		Kind: KindSchedule,
		Key:  scheduleKey(ga.ID, policy, procs, model.Lambda),
		Deps: []Request{residentRequest(ga)},
		Build: func(bctx context.Context, deps []any) (any, int64, error) {
			if err := buildCheck(bctx, KindSchedule); err != nil {
				return nil, 0, err
			}
			g := deps[0].(*Graph)
			fs, err := schedmc.Freeze(g.G, policy, procs, model)
			if err != nil {
				return nil, 0, err
			}
			est, err := schedmc.NewEstimator(fs, model, schedmc.Config{Trials: 1, Workers: 1})
			if err != nil {
				return nil, 0, err
			}
			return est, est.SizeBytes(), nil
		},
	})
	if err != nil {
		return nil, err
	}
	s.maybeShed()
	return v.(*schedmc.Estimator), nil
}

// Snapshot returns the retained adaptive chunk-stream prefix for
// (graph, k), if any — a hit touches it warm. The snapshot is
// immutable once stored; extension installs a longer one via
// PutSnapshot.
func (s *Store) Snapshot(ga *Graph, k SnapshotKey) (*montecarlo.Snapshot, bool) {
	v, ok := s.res.Lookup(snapshotKey(ga.ID, k))
	if !ok {
		return nil, false
	}
	return v.(*montecarlo.Snapshot), true
}

// PeekSnapshot is Snapshot without the LRU touch or hit accounting —
// the coalescing leader's compare-before-replace check.
func (s *Store) PeekSnapshot(ga *Graph, k SnapshotKey) (*montecarlo.Snapshot, bool) {
	v, ok := s.res.Peek(snapshotKey(ga.ID, k))
	if !ok {
		return nil, false
	}
	return v.(*montecarlo.Snapshot), true
}

// PutSnapshot installs (or replaces, with delta accounting) the
// retained snapshot for (graph, k). Snapshots are the one
// externally-built kind — the coalescing leader runs the adaptive
// kernel itself — so retention uses Put: budget pressure may evict
// colder entries but never the snapshot being installed.
func (s *Store) PutSnapshot(ga *Graph, k SnapshotKey, snap *montecarlo.Snapshot) {
	s.res.Put(Request{
		Kind: KindSnapshot,
		Key:  snapshotKey(ga.ID, k),
		Deps: []Request{residentRequest(ga)},
	}, snap, snap.SizeBytes())
}

// Census counts one graph's resident derived artifacts per kind plus
// the total accounted bytes (graph included) — the cache object of
// GET /v1/graphs/{id}.
type Census struct {
	// Bytes is the accounted total: the graph plus its resident
	// derived artifacts.
	Bytes int64
	// DodinPlans counts resident recorded reduction schedules.
	DodinPlans int
	// Estimators counts resident compiled Monte Carlo estimators.
	Estimators int
	// Schedules counts resident frozen-schedule estimators.
	Schedules int
	// AdaptiveSnaps counts resident retained adaptive snapshots.
	AdaptiveSnaps int
}

// Census scans ga's resident dependents. A non-resident (evicted)
// graph reports only its own size: its derived artifacts were evicted
// with it.
func (s *Store) Census(ga *Graph) Census {
	c := Census{Bytes: ga.size}
	if !s.Resident(ga) {
		return c
	}
	for _, d := range s.res.DependentsOf(ga.key) {
		c.Bytes += d.Size
		switch d.Kind {
		case KindPlan:
			c.DodinPlans++
		case KindEstimator:
			c.Estimators++
		case KindSchedule:
			c.Schedules++
		case KindSnapshot:
			c.AdaptiveSnaps++
		}
	}
	return c
}

// Stats exposes the resolver's per-kind counters.
func (s *Store) Stats() map[string]KindStats { return s.res.Stats() }

// UsedBytes reports the resolver's accounted resident bytes.
func (s *Store) UsedBytes() int64 { return s.res.UsedBytes() }

// Budget reports the byte budget (<= 0: unlimited).
func (s *Store) Budget() int64 { return s.res.Budget() }
