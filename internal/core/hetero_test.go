package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/failure"
	"repro/internal/montecarlo"
)

func TestFirstOrderRatesUniformMatchesFirstOrder(t *testing.T) {
	g := dag.Diamond(1, 5, 3, 2)
	lam := 0.01
	rates := []float64{lam, lam, lam, lam}
	hetero, err := FirstOrderRates(g, rates)
	if err != nil {
		t.Fatal(err)
	}
	uniform, _ := FirstOrder(g, failure.Model{Lambda: lam})
	if !almostEq(hetero.Estimate, uniform.Estimate, 1e-12) {
		t.Fatalf("uniform rates %v != FirstOrder %v", hetero.Estimate, uniform.Estimate)
	}
}

func TestFirstOrderRatesValidation(t *testing.T) {
	g := dag.Chain(3)
	if _, err := FirstOrderRates(g, []float64{0.1}); err == nil {
		t.Fatal("short rates accepted")
	}
	if _, err := FirstOrderRates(g, []float64{0.1, -1, 0.1}); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := FirstOrderRates(g, []float64{0.1, math.NaN(), 0.1}); err == nil {
		t.Fatal("NaN rate accepted")
	}
	cyc := dag.New(2)
	a := cyc.MustAddTask("a", 1)
	b := cyc.MustAddTask("b", 1)
	cyc.MustAddEdge(a, b)
	cyc.MustAddEdge(b, a)
	if _, err := FirstOrderRates(cyc, []float64{0.1, 0.1}); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestFirstOrderRatesOnlyCountsRatedTasks(t *testing.T) {
	// Rate zero on every task but the big one: only its contribution
	// remains.
	g := dag.Diamond(1, 5, 3, 2)
	rates := []float64{0, 0.01, 0, 0}
	res, err := FirstOrderRates(g, rates)
	if err != nil {
		t.Fatal(err)
	}
	want := 8 + 0.01*25 // contribution of the critical middle task is 25
	if !almostEq(res.Estimate, want, 1e-12) {
		t.Fatalf("estimate = %v want %v", res.Estimate, want)
	}
}

// Property: heterogeneous first-order error vs exact enumeration shrinks
// quadratically when all rates shrink together.
func TestFirstOrderRatesErrorQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	g, _ := dag.LayeredRandom(dag.RandomConfig{Tasks: 10, EdgeProb: 0.5, MaxLayerWidth: 3}, rng)
	baseRates := make([]float64, g.NumTasks())
	for i := range baseRates {
		baseRates[i] = 0.01 + 0.04*rng.Float64()
	}
	errAt := func(scale float64) float64 {
		rates := make([]float64, len(baseRates))
		for i := range rates {
			rates[i] = scale * baseRates[i]
		}
		exact, err := montecarlo.ExactTwoStateRates(g, rates)
		if err != nil {
			t.Fatal(err)
		}
		res, err := FirstOrderRates(g, rates)
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(res.Estimate - exact)
	}
	e1, e2 := errAt(1), errAt(0.1)
	if e1 == 0 {
		t.Skip("no error")
	}
	if ratio := e1 / e2; ratio < 30 {
		t.Fatalf("hetero error ratio %v not quadratic (%v vs %v)", ratio, e1, e2)
	}
}

// Property: raising one task's rate can only raise the estimate.
func TestQuickFirstOrderRatesMonotone(t *testing.T) {
	f := func(seed int64, taskSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := dag.LayeredRandom(dag.RandomConfig{Tasks: 15, EdgeProb: 0.4, MaxLayerWidth: 4}, rng)
		if err != nil {
			return false
		}
		rates := make([]float64, g.NumTasks())
		for i := range rates {
			rates[i] = 0.02 * rng.Float64()
		}
		base, err := FirstOrderRates(g, rates)
		if err != nil {
			return false
		}
		i := int(taskSel) % g.NumTasks()
		rates[i] *= 3
		bumped, err := FirstOrderRates(g, rates)
		if err != nil {
			return false
		}
		return bumped.Estimate >= base.Estimate-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestExactTwoStateRatesMatchesUniform(t *testing.T) {
	g := dag.Diamond(0.5, 2, 1.5, 1)
	lam := 0.2
	uniform, err := montecarlo.ExactTwoState(g, failure.Model{Lambda: lam})
	if err != nil {
		t.Fatal(err)
	}
	hetero, err := montecarlo.ExactTwoStateRates(g, []float64{lam, lam, lam, lam})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(uniform, hetero, 1e-12) {
		t.Fatalf("uniform %v != hetero %v", uniform, hetero)
	}
}
