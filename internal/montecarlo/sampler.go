package montecarlo

import "math"

// This file implements phase 1 of the split trial pipeline: sequential
// per-chunk failure sampling. Two interchangeable samplers produce the
// exact same failure sets from the exact same RNG stream:
//
//   - sampleRef is the reference implementation, byte-for-byte the
//     arithmetic of the original fused trial loop (math.Log-based skip
//     sampling, thinning, inverted-geometric attempt counts).
//   - sampleFast resolves every decision with integer comparisons against
//     precomputed bit-level threshold tables, touching math.Log only on
//     the (rare) draws that fall outside a table. The tables are built by
//     binary search over raw draw bit patterns against the reference
//     float pipeline, so the fast path is bit-identical to sampleRef by
//     construction, not by approximation.
//
// Both consume the chunk's SplitMix64 stream in the original per-trial
// draw order, so the sampled failure sets — and therefore every Result
// and sample vector — are bit-identical to the fused v2 engine.

// b2i converts a comparison to 0/1 without a branch (SETcc on amd64),
// letting the gap scan count table hits branch-free.
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// sampleRef draws one trial's failure set with the reference arithmetic,
// filling wk.failPos/wk.failW and returning the failure count. This is the
// original fused-sampler loop verbatim.
func (wk *mcWorker) sampleRef(rng *splitMix64) int {
	e := wk.e
	n := len(e.base)
	single := e.cfg.Mode == SingleRetry
	nfail := 0
	for k := 0; ; k++ {
		// Skip directly to the next candidate failure under the envelope:
		// the gap is geometric with parameter pfMax.
		g := math.Log(rng.unitOpen()) * e.invLnQ
		if g >= float64(n-k) {
			break
		}
		k += int(g)
		pf := e.pfTopo[k]
		// Thinning: the candidate is a real first-attempt failure w.p.
		// pf/pfMax (zero-pfail tasks are never accepted).
		if rng.Float64()*e.pfMax >= pf {
			continue
		}
		mult := 2.0
		if !single {
			// Extra re-executions beyond the retry: inverted geometric,
			// 1 + floor(ln U / ln pf) attempts total beyond the first.
			mult += math.Floor(math.Log(rng.unitOpen()) * e.invLnPf[k])
		}
		wk.failPos[nfail] = int32(k)
		wk.failW[nfail] = mult * e.base[k]
		nfail++
	}
	return nfail
}

// sampleFast is sampleRef with every log/multiply decision replaced by an
// integer comparison on the raw draw payloads. Must only run when
// e.tables != nil.
//
// All three candidate draws (gap, thinning, attempts) are computed
// speculatively up front — SplitMix64 states form an arithmetic sequence,
// so the three mix64 pipelines overlap instead of each draw waiting on
// the branch that decides whether it is consumed. The stream position
// advances by exactly the number of draws the reference sampler would
// have consumed, so the draw order is untouched.
func (wk *mcWorker) sampleFast(rng *splitMix64) int {
	const gamma uint64 = 0x9e3779b97f4a7c15
	e := wk.e
	tb := e.tables
	n := len(e.base)
	single := e.cfg.Mode == SingleRetry
	gap := tb.gapBits
	last := tb.gapLast
	thin := tb.thinBits
	attFirst := tb.attFirst
	// The trial is a serial chain of candidates, each needing its gap draw
	// before anything else can happen, so the loop is software-pipelined:
	// while the current candidate resolves, the NEXT candidate's gap draw
	// is computed speculatively for both possible stream positions (reject
	// consumes two draws, accept three) and the right one is selected once
	// the thinning branch settles. On the predicted path the next iteration
	// starts with its gap payload already in hand instead of waiting out
	// the mix64 latency.
	s1 := rng.s + gamma // state of the pending gap draw
	w := mix64(s1)>>11 + 1
	nfail := 0
	for k := 0; ; k++ {
		s2 := s1 + gamma
		s3 := s2 + gamma
		w2 := mix64(s2) >> 11
		// w3 doubles as the attempt payload (accept) and the next gap
		// payload (reject): both read (mix64(s3)>>11)+1.
		w3 := mix64(s3)>>11 + 1
		wA := mix64(s3+gamma)>>11 + 1 // next gap payload if accepted (s3 consumed)
		rem := n - k
		// The envelope gap g satisfies g >= j  <=>  w <= gapBits[j], so the
		// loop-exit test and the integer gap both reduce to table lookups.
		if rem <= last && w <= gap[rem] {
			break
		}
		var j int
		if w <= gap[last] {
			// Beyond the table: resolve this draw with the reference math.
			g := math.Log(float64(w)*0x1p-53) * e.invLnQ
			if g >= float64(rem) {
				break
			}
			j = int(g)
		} else {
			// Branch-free count of the (monotone) prefix of satisfied
			// thresholds, balanced so the adds tree-reduce; the tail past 8
			// is geometrically rare.
			j = (b2i(w <= gap[1]) + b2i(w <= gap[2])) + (b2i(w <= gap[3]) + b2i(w <= gap[4])) +
				((b2i(w <= gap[5]) + b2i(w <= gap[6])) + (b2i(w <= gap[7]) + b2i(w <= gap[8])))
			if j == 8 {
				for w <= gap[j+1] {
					j++
				}
			}
		}
		k += j
		// Thinning: accept iff Float64()*pfMax < pfTopo[k], precomputed as a
		// strict bound on the 53 payload bits.
		if w2 >= thin[k] {
			s1 = s3
			w = w3
			continue
		}
		mult := 2.0
		if single {
			s1 = s3
			w = w3
		} else {
			s1 = s3 + gamma
			w = wA
			if w3 <= attFirst[k] {
				// At least one extra re-execution (probability ~pf): count
				// table entries.
				t := tb.attBits[k]
				x := 1
				for x < len(t) && w3 <= t[x] {
					x++
				}
				if x == len(t) && tb.attTrunc[k] {
					// Truncated table (pf close to 1): reference math.
					mult = 2 + math.Floor(math.Log(float64(w3)*0x1p-53)*e.invLnPf[k])
				} else {
					mult += float64(x)
				}
			}
		}
		wk.failPos[nfail] = int32(k)
		wk.failW[nfail] = mult * e.base[k]
		nfail++
	}
	rng.s = s1
	return nfail
}

// sample dispatches to the table-driven sampler when tables were built.
func (wk *mcWorker) sample(rng *splitMix64) int {
	if wk.e.tables != nil && !wk.e.refSampler {
		return wk.sampleFast(rng)
	}
	return wk.sampleRef(rng)
}

// samplerTables hold the bit-level threshold tables of the fast sampler.
// All entries compare against (draw >> 11) or (draw >> 11) + 1, the exact
// integer payloads behind Float64/unitOpen, so every decision is exact.
type samplerTables struct {
	// gapBits[j] (1 <= j <= gapLast) is the largest w = (draw>>11)+1 for
	// which the computed envelope gap Log(w·2⁻⁵³)·invLnQ is >= float64(j).
	// gapBits[0] = 2⁵³ is a sentinel (the gap is always >= 0) and the table
	// is zero-padded past gapLast so the branch-free prefix count can
	// always read eight entries.
	gapBits []uint64
	gapLast int
	// thinBits[k] is the smallest w = draw>>11 for which the candidate at
	// position k is REJECTED (Float64()*pfMax >= pfTopo[k]); accept iff
	// the payload is strictly below it. Zero for zero-pfail positions.
	thinBits []uint64
	// attBits[k][x-1] is the largest w = (draw>>11)+1 for which the extra
	// re-execution count floor(Log(w·2⁻⁵³)·invLnPf[k]) is >= x. Tables are
	// shared between positions with equal failure probability. attTrunc[k]
	// marks tables cut at attTableCap entries (pf near 1); a draw below the
	// last entry then falls back to the reference math.
	attBits  [][]uint64
	attTrunc []bool
	// attFirst[k] == attBits[k][0] (0 when the table is empty): a flat
	// array for the extra-re-execution fast test, which is false with
	// probability ~1-pf.
	attFirst []uint64
}

const (
	// tableMinWork gates table construction: below this expected candidate
	// count per trial (n·pfMax) the reference sampler is already cheap and
	// the one-time bit searches would not amortize.
	tableMinWork = 8.0
	// gapTableCap bounds the gap table length; draws beyond it (huge gaps,
	// only reachable at small pfMax) fall back to one math.Log.
	gapTableCap = 1024
	// attTableCap bounds per-class attempt tables; only pf > ~0.56 needs
	// more entries than this.
	attTableCap = 64
	// maxPayload is the largest unitOpen payload (draw>>11)+1, i.e. u = 1.
	maxPayload = uint64(1) << 53
)

// maxSat returns the largest w in [lo, hi] satisfying pred, which must be
// monotone (true on a prefix). ok is false when pred(lo) is false.
func maxSat(lo, hi uint64, pred func(uint64) bool) (uint64, bool) {
	if !pred(lo) {
		return 0, false
	}
	if pred(hi) {
		return hi, true
	}
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if pred(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, true
}

// buildTables precomputes the sampler threshold tables when the workload
// warrants it (or unconditionally when force is set, for tests). Safe to
// call once during construction; results are read-only afterwards.
func (e *Estimator) buildTables(force bool) {
	if e.pfMax == 0 {
		return
	}
	n := len(e.base)
	if !force && float64(n)*e.pfMax < tableMinWork {
		return
	}
	tb := &samplerTables{}

	// Gap table. The computed gap at the smallest payload (u = 2⁻⁵³) bounds
	// every reachable j; gaps of n or more always exit the trial loop, so
	// the table never needs more than n entries.
	jAll := int(math.Log(0x1p-53) * e.invLnQ)
	last := jAll
	if last > n {
		last = n
	}
	if last > gapTableCap {
		last = gapTableCap
	}
	tb.gapBits = make([]uint64, last+1+8) // zero padding for the prefix count
	tb.gapBits[0] = maxPayload
	tb.gapLast = last
	for j := 1; j <= last; j++ {
		fj := float64(j)
		w, ok := maxSat(1, maxPayload, func(w uint64) bool {
			return math.Log(float64(w)*0x1p-53)*e.invLnQ >= fj
		})
		if !ok {
			// Unreachable for j <= jAll, but degrade safely: shrink the
			// table so the fallback handles everything past j-1.
			tb.gapLast = j - 1
			break
		}
		tb.gapBits[j] = w
	}

	// Thinning cutoffs and attempt tables, shared across positions with
	// equal failure probability.
	type class struct {
		thin  uint64
		att   []uint64
		trunc bool
	}
	classes := make(map[float64]*class)
	tb.thinBits = make([]uint64, n)
	tb.attBits = make([][]uint64, n)
	tb.attTrunc = make([]bool, n)
	tb.attFirst = make([]uint64, n)
	for k := 0; k < n; k++ {
		pf := e.pfTopo[k]
		if pf == 0 {
			continue // thinBits 0: never accepted
		}
		c := classes[pf]
		if c == nil {
			c = &class{}
			// Smallest payload that is rejected: one past the largest
			// accepted payload (payload 0 always accepts: 0*pfMax < pf).
			wAcc, _ := maxSat(0, maxPayload-1, func(w uint64) bool {
				return float64(w)*0x1p-53*e.pfMax < pf
			})
			c.thin = wAcc + 1
			if e.cfg.Mode != SingleRetry {
				// Attempt table: entries until the floor can no longer
				// reach x even at the smallest payload.
				inv := e.invLnPf[k]
				xAll := int(math.Floor(math.Log(0x1p-53) * inv))
				xLast := xAll
				if xLast > attTableCap {
					xLast = attTableCap
					c.trunc = true
				}
				c.att = make([]uint64, xLast)
				for x := 1; x <= xLast; x++ {
					fx := float64(x)
					w, ok := maxSat(1, maxPayload, func(w uint64) bool {
						return math.Floor(math.Log(float64(w)*0x1p-53)*inv) >= fx
					})
					if !ok {
						c.att = c.att[:x-1]
						c.trunc = false
						break
					}
					c.att[x-1] = w
				}
			}
			classes[pf] = c
		}
		tb.thinBits[k] = c.thin
		tb.attBits[k] = c.att
		tb.attTrunc[k] = c.trunc
		if len(c.att) > 0 {
			tb.attFirst[k] = c.att[0]
		}
	}
	e.tables = tb
}
