package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/failure"
	"repro/internal/faultinject"
	"repro/internal/linalg"
	"repro/internal/montecarlo"
)

// This file tests the production-hardening surface: admission control
// (429 + Retry-After), request deadlines (timeout_ms → 504), panic
// isolation, draining observability and cancellation hand-off in the
// coalescing layer. Tests that arm failpoints must not run in parallel
// (faultinject state is process-global); none of them call t.Parallel.

func opsServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// A full server with no queue sheds instantly: 429 with a Retry-After
// hint, and the slot's release restores service.
func TestAdmissionSheds429(t *testing.T) {
	s, ts := opsServer(t, Config{Workers: 2, MaxInFlight: 1, QueueWait: 2 * time.Second})

	// Occupy the only admission slot directly; the next estimation
	// request must shed without waiting (no queue is configured).
	s.limit.slots <- struct{}{}
	resp, err := http.Post(ts.URL+"/v1/estimate", "application/json",
		strings.NewReader(`{"kind":"lu","k":4}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full server: %d %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want %q", ra, "2")
	}
	// Non-estimation routes are not admission-controlled: health and
	// cache stats must answer even when the server is saturated.
	if code, _ := get(t, ts, "/healthz"); code != http.StatusOK {
		t.Fatalf("healthz behind full server: %d", code)
	}
	<-s.limit.slots
	if code, body := post(t, ts, "/v1/estimate", `{"kind":"lu","k":4}`); code != http.StatusOK {
		t.Fatalf("after release: %d %s", code, body)
	}
}

// With a queue, a waiting request is admitted when a slot frees within
// QueueWait; one that overflows the queue sheds instantly; one whose
// wait expires sheds with 429.
func TestAdmissionQueue(t *testing.T) {
	s, _ := opsServer(t, Config{Workers: 2, MaxInFlight: 1, MaxQueue: 1, QueueWait: 5 * time.Second})
	l := s.limit

	// Fill the slot, then queue one waiter.
	release, err := l.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	admitted := make(chan error, 1)
	go func() {
		r2, err := l.acquire(context.Background())
		if err == nil {
			r2()
		}
		admitted <- err
	}()
	waitFor(t, "queued waiter", func() bool { return len(l.queue) == 1 })

	// The queue is full: a third arrival sheds instantly with 429.
	if _, err := l.acquire(context.Background()); err == nil {
		t.Fatal("overflowing the queue did not shed")
	} else {
		var he *httpError
		if !errors.As(err, &he) || he.status != http.StatusTooManyRequests || he.retryAfter < 1 {
			t.Fatalf("overflow error: %v", err)
		}
	}

	// Releasing the slot admits the queued waiter.
	release()
	if err := <-admitted; err != nil {
		t.Fatalf("queued waiter not admitted: %v", err)
	}

	// An expired wait sheds: with the slot held and a tiny QueueWait the
	// queued request gets its 429 instead of hanging.
	short := newLimiter(1, 1, 20*time.Millisecond)
	short.slots <- struct{}{}
	if _, err := short.acquire(context.Background()); err == nil {
		t.Fatal("expired queue wait did not shed")
	}

	// A request whose context dies while queued returns the context
	// error, not a 429.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	short2 := newLimiter(1, 1, time.Minute)
	short2.slots <- struct{}{}
	if _, err := short2.acquire(ctx); err != context.Canceled {
		t.Fatalf("cancelled queued request: %v", err)
	}
}

// timeout_ms bounds the whole request: kernels abort at the next chunk
// boundary and the response is 504. A negative timeout is a 400.
func TestRequestTimeout504(t *testing.T) {
	_, ts := opsServer(t, Config{Workers: 2})

	// Slow every Monte Carlo chunk so the 25ms deadline reliably expires
	// mid-run regardless of machine speed.
	if err := faultinject.Arm("mc.chunk=delay:50ms"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disarm()

	code, body := post(t, ts, "/v1/estimate",
		`{"kind":"lu","k":4,"pfail":0.05,"methods":"First Order","trials":20000,"timeout_ms":25}`)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline: %d %s", code, body)
	}
	if !strings.Contains(body, "deadline") {
		t.Fatalf("504 body: %s", body)
	}
	faultinject.Disarm()

	// The failed run was not cached: the same request without the fault
	// and deadline completes.
	if code, body := post(t, ts, "/v1/estimate",
		`{"kind":"lu","k":4,"pfail":0.05,"methods":"First Order","trials":20000}`); code != http.StatusOK {
		t.Fatalf("retry after timeout: %d %s", code, body)
	}

	if code, body := post(t, ts, "/v1/estimate",
		`{"kind":"lu","k":4,"timeout_ms":-1}`); code != http.StatusBadRequest {
		t.Fatalf("negative timeout_ms: %d %s", code, body)
	}
}

// requestCtx applies the server default and clamps client requests by
// MaxTimeout.
func TestRequestCtxClamping(t *testing.T) {
	s := New(Config{Workers: 1, DefaultTimeout: time.Minute, MaxTimeout: 50 * time.Millisecond})
	r := httptest.NewRequest("POST", "/v1/estimate", nil)

	for _, tc := range []struct {
		timeoutMS int64
		max       time.Duration
	}{
		{0, 50 * time.Millisecond},        // default applied, then clamped
		{3600_000, 50 * time.Millisecond}, // explicit huge request clamped
		{10, 10 * time.Millisecond},       // under the clamp: honored
	} {
		ctx, cancel, err := s.requestCtx(r, tc.timeoutMS)
		if err != nil {
			t.Fatalf("timeout_ms=%d: %v", tc.timeoutMS, err)
		}
		dl, ok := ctx.Deadline()
		if !ok || time.Until(dl) > tc.max {
			t.Fatalf("timeout_ms=%d: deadline %v (ok=%v), want within %v", tc.timeoutMS, time.Until(dl), ok, tc.max)
		}
		cancel()
	}
	if _, _, err := s.requestCtx(r, -7); err == nil {
		t.Fatal("negative timeout accepted")
	}

	// No default, no clamp, no request: the context is unbounded.
	s2 := New(Config{Workers: 1})
	ctx, cancel, err := s2.requestCtx(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if _, ok := ctx.Deadline(); ok {
		t.Fatal("unbounded request got a deadline")
	}
}

// A panicking handler answers 500 with one structured log line; the
// daemon and its sibling requests keep running.
func TestPanicRecoveryIsolation(t *testing.T) {
	_, ts := opsServer(t, Config{Workers: 2})

	var buf bytes.Buffer
	log.SetOutput(&buf)
	defer log.SetOutput(os.Stderr)

	if err := faultinject.Arm("service.panic./v1/estimate=panic:boom*1"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disarm()

	code, body := post(t, ts, "/v1/estimate", `{"kind":"lu","k":4}`)
	if code != http.StatusInternalServerError || !strings.Contains(body, "internal error") {
		t.Fatalf("panicking request: %d %s", code, body)
	}
	logged := buf.String()
	if !strings.Contains(logged, "event=panic") || !strings.Contains(logged, "path=/v1/estimate") {
		t.Fatalf("panic log line missing: %q", logged)
	}

	// The point was single-shot: the identical request now succeeds, and
	// an untouched route was never affected.
	if code, body := post(t, ts, "/v1/estimate", `{"kind":"lu","k":4}`); code != http.StatusOK {
		t.Fatalf("request after panic: %d %s", code, body)
	}
	if code, _ := get(t, ts, "/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after panic: %d", code)
	}
}

// Draining flips /healthz to 503 while in-flight and even new requests
// keep being served (the listener is the caller's to close); /v1/cache
// reports the in-flight count.
func TestDrainingHealthzAndInFlight(t *testing.T) {
	s, ts := opsServer(t, Config{Workers: 2})

	code, body := get(t, ts, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"status": "ok"`) {
		t.Fatalf("healthz: %d %s", code, body)
	}
	// The cache endpoint counts itself: exactly one request in flight.
	code, body = get(t, ts, "/v1/cache")
	if code != http.StatusOK {
		t.Fatalf("cache: %d %s", code, body)
	}
	var cs struct {
		InFlight int64 `json:"in_flight"`
	}
	if err := json.Unmarshal([]byte(body), &cs); err != nil {
		t.Fatal(err)
	}
	if cs.InFlight != 1 {
		t.Fatalf("in_flight = %d, want 1", cs.InFlight)
	}

	s.StartDrain()
	code, body = get(t, ts, "/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, `"status": "draining"`) {
		t.Fatalf("draining healthz: %d %s", code, body)
	}
	// StartDrain is advisory: requests still in the handler stack (and
	// new arrivals, until the listener closes) complete normally.
	if code, body := post(t, ts, "/v1/graphs", `{"kind":"lu","k":4}`); code != http.StatusCreated {
		t.Fatalf("submit while draining: %d %s", code, body)
	}
	if !s.Draining() {
		t.Fatal("Draining() = false after StartDrain")
	}
}

// A cancelled coalescing creator hands the in-flight adaptive run off to
// a live waiter: the waiter's request completes from the shared stream,
// the flight is not restarted, and the key stays retryable afterwards.
func TestAdaptiveLeaderCancelHandsOffToWaiter(t *testing.T) {
	s, ts, id, tol := coalesceFixture(t)
	e := entryFor(t, s, id)
	g, err := linalg.LU(6, linalg.KernelTimes{})
	if err != nil {
		t.Fatal(err)
	}
	model, err := failure.FromPfail(0.05, g.MeanWeight())
	if err != nil {
		t.Fatal(err)
	}
	warm, err := e.EstimatorContext(context.Background(), model, montecarlo.FullReexecution)
	if err != nil {
		t.Fatal(err)
	}
	// The creator's rule is tight (many chunks to converge) so the flight
	// is reliably still running when it cancels; the waiter's rule is
	// loose (a chunk or two) so it is released mid-run.
	tight, err := warm.WithConfig(montecarlo.Config{Seed: 42, Workers: 2, Tolerance: tol / 50, MaxTrials: 4_000_000})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := warm.WithConfig(montecarlo.Config{Seed: 42, Workers: 2, Tolerance: tol * 2})
	if err != nil {
		t.Fatal(err)
	}
	// Slow the chunks down so the hand-off window is wide on any machine.
	if err := faultinject.Arm("mc.chunk=delay:10ms"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disarm()

	key := adaptiveKey{lambda: model.Lambda, mode: montecarlo.FullReexecution, seed: 42}
	lctx, lcancel := context.WithCancel(context.Background())
	defer lcancel()
	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := s.coalesceAdaptive(lctx, e, key, tight)
		leaderErr <- err
	}()
	slot := e.adaptiveSlotFor(key)
	waitFor(t, "flight creation", func() bool {
		slot.mu.Lock()
		defer slot.mu.Unlock()
		return slot.run != nil
	})

	// The waiter joins the leader's flight and is released mid-run.
	res, snap, err := s.coalesceAdaptive(context.Background(), e, key, loose)
	if err != nil {
		t.Fatalf("waiter: %v", err)
	}
	if res.Trials == 0 || snap == nil || !loose.SnapshotConverged(snap) {
		t.Fatalf("waiter result: %+v converged=%v", res, loose.SnapshotConverged(snap))
	}
	if runs := e.KernelRuns(); runs != 1 {
		t.Fatalf("waiter triggered %d kernel runs, want 1 shared flight", runs)
	}

	// Cancel the creator: it was the last interest, so the flight dies at
	// the next chunk boundary and the creator sees its own cancellation.
	lcancel()
	select {
	case err := <-leaderErr:
		if err != context.Canceled {
			t.Fatalf("cancelled leader: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled leader did not return")
	}
	waitFor(t, "flight teardown", func() bool {
		slot.mu.Lock()
		defer slot.mu.Unlock()
		return slot.run == nil
	})

	// Nothing poisonous was cached: the same key answers a fresh HTTP
	// request (a new kernel run extends or redoes the stream).
	faultinject.Disarm()
	req := fmt.Sprintf(`{"graph_id":%q,"pfail":0.05,"methods":"First Order","tolerance":%g}`, id, tol)
	if code, body := post(t, ts, "/v1/estimate", req); code != http.StatusOK {
		t.Fatalf("retry after cancelled flight: %d %s", code, body)
	}
}

// StartDrain while a request is mid-kernel: the request runs to
// completion and answers 200 even though /healthz already advertises
// draining.
func TestDrainWithInFlightRequest(t *testing.T) {
	s, ts := opsServer(t, Config{Workers: 2})
	if err := faultinject.Arm("mc.chunk=delay:20ms"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disarm()

	done := make(chan struct {
		code int
		body string
	}, 1)
	go func() {
		code, body := post(t, ts, "/v1/estimate",
			`{"kind":"lu","k":4,"pfail":0.05,"methods":"First Order","trials":40960}`)
		done <- struct {
			code int
			body string
		}{code, body}
	}()
	waitFor(t, "request in flight", func() bool { return s.InFlight() >= 1 })
	s.StartDrain()
	if code, _ := get(t, ts, "/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %d", code)
	}
	r := <-done
	if r.code != http.StatusOK {
		t.Fatalf("in-flight request during drain: %d %s", r.code, r.body)
	}
}

// waitFor polls cond with a hard deadline, failing the test with name on
// expiry — no fixed sleeps.
func waitFor(t *testing.T, name string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", name)
		}
		time.Sleep(time.Millisecond)
	}
}
