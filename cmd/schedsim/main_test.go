package main

import (
	"context"
	"io"
	"testing"
)

func baseOptions() options {
	return options{
		kind: "lu", k: 4, procs: 2, pfail: 0.01,
		trials: 50, seed: 1, policies: "both", format: "text",
	}
}

func TestRunEndToEnd(t *testing.T) {
	o := baseOptions()
	o.gantt = true
	if err := run(context.Background(), o, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSONAndQuantiles(t *testing.T) {
	o := baseOptions()
	o.format = "json"
	o.quantiles = "0.5, 0.99" // spaces are tolerated, like every list flag
	if err := run(context.Background(), o, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunDynamicEngine(t *testing.T) {
	o := baseOptions()
	o.dynamic = true
	if err := run(context.Background(), o, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunOverheads(t *testing.T) {
	o := baseOptions()
	o.verifyFrac = 0.1
	o.verifyFixed = 0.01
	o.replication = "serial"
	if err := run(context.Background(), o, io.Discard); err != nil {
		t.Fatal(err)
	}
}

// Every nonsensical flag is a configuration error caught before any
// graph work (the PR 5 bugfix: -procs 0, negative -trials and unknown
// -kind used to fall through or be silently clamped).
func TestRunRejectsBadInputs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*options)
	}{
		{"unknown kind", func(o *options) { o.kind = "bogus" }},
		{"zero k", func(o *options) { o.k = 0 }},
		{"zero procs", func(o *options) { o.procs = 0 }},
		{"negative procs", func(o *options) { o.procs = -3 }},
		{"negative trials", func(o *options) { o.trials = -1 }},
		{"negative workers", func(o *options) { o.workers = -2 }},
		{"pfail one", func(o *options) { o.pfail = 1 }},
		{"pfail oversized", func(o *options) { o.pfail = 1.5 }},
		{"negative pfail", func(o *options) { o.pfail = -0.1 }},
		{"unknown policy", func(o *options) { o.policies = "heft" }},
		{"unknown format", func(o *options) { o.format = "xml" }},
		{"bad quantile", func(o *options) { o.quantiles = "1.5" }},
		{"negative lambda", func(o *options) { o.lambda = -0.05 }},
		{"gantt with json", func(o *options) { o.gantt = true; o.format = "json" }},
		{"quantiles with dynamic", func(o *options) { o.quantiles = "0.5"; o.dynamic = true }},
		{"negative verify fraction", func(o *options) { o.verifyFrac = -0.5 }},
		{"unknown replication", func(o *options) { o.replication = "triple" }},
	}
	for _, tc := range cases {
		o := baseOptions()
		tc.mutate(&o)
		if err := run(context.Background(), o, io.Discard); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
