package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestFormatRelErrSigned(t *testing.T) {
	if got := formatRelErr(0.0123); got != "+0.0123" {
		t.Errorf("positive = %q", got)
	}
	if got := formatRelErr(-0.0123); got != "-0.0123" {
		t.Errorf("negative = %q", got)
	}
	if got := formatRelErr(0); got != "+0" {
		t.Errorf("zero = %q", got)
	}
}

func TestRoundDurations(t *testing.T) {
	cases := []struct {
		in   time.Duration
		want time.Duration
	}{
		{1234567890 * time.Nanosecond, 1230 * time.Millisecond},
		{1234567 * time.Nanosecond, 1230 * time.Microsecond},
		{123 * time.Nanosecond, 120 * time.Nanosecond},
	}
	for _, c := range cases {
		if got := round(c.in); got != c.want {
			t.Errorf("round(%v) = %v want %v", c.in, got, c.want)
		}
	}
}

func TestSortedMethodsFollowsCanonicalOrder(t *testing.T) {
	p := Point{RelErr: map[Method]float64{
		MethodFirstOrder: 1,
		MethodDodin:      2,
		MethodSculli:     3,
	}}
	got := sortedMethods([]Point{p})
	want := []Method{MethodDodin, MethodSculli, MethodFirstOrder}
	if len(got) != len(want) {
		t.Fatalf("methods = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("methods = %v want %v", got, want)
		}
	}
	if sortedMethods(nil) != nil {
		t.Fatal("empty points should give nil")
	}
	if sortedMethodsSweepEmpty() != nil {
		t.Fatal("empty sweep points should give nil")
	}
}

func sortedMethodsSweepEmpty() []Method { return sortedSweepMethods(nil) }

// JSON writers must produce valid, method-complete documents.
func TestWriteJSONRoundTrip(t *testing.T) {
	res, err := RunSweep(SweepSpec{Fact: "lu", K: 4, PFails: []float64{0.01, 0.001}}, Options{Trials: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSweepJSON(&buf, res, nil); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		K      int `json:"k"`
		Points []struct {
			PFail   float64                    `json:"pfail"`
			Methods map[string]json.RawMessage `json:"methods"`
		} `json:"points"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid sweep JSON: %v\n%s", err, buf.String())
	}
	if doc.K != 4 || len(doc.Points) != 2 || len(doc.Points[0].Methods) != len(PaperMethods()) {
		t.Fatalf("sweep JSON shape wrong: %+v", doc)
	}

	fig, _ := Figure(4)
	fres, err := RunFigure(fig, Options{Trials: 500, Seed: 3, Ks: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteFigureJSON(&buf, fres, nil); err != nil {
		t.Fatal(err)
	}
	var fdoc map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &fdoc); err != nil {
		t.Fatalf("invalid figure JSON: %v", err)
	}

	tres, err := RunTable1(Table1Spec{Fact: "lu", K: 4, PFail: 0.001}, Options{Trials: 500})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteTable1JSON(&buf, tres, nil); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &fdoc); err != nil {
		t.Fatalf("invalid table JSON: %v", err)
	}
}

func TestWriteReportJSONCombined(t *testing.T) {
	fig, _ := Figure(4)
	fres, err := RunFigure(fig, Options{Trials: 300, Seed: 3, Ks: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	tres, err := RunTable1(Table1Spec{Fact: "lu", K: 4, PFail: 0.001}, Options{Trials: 300})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteReportJSON(&buf, []FigureResult{fres, fres}, &tres, nil); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Figures []json.RawMessage `json:"figures"`
		Table1  json.RawMessage   `json:"table1"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("combined report is not one JSON document: %v", err)
	}
	if len(doc.Figures) != 2 || doc.Table1 == nil {
		t.Fatalf("combined report shape wrong: %d figures", len(doc.Figures))
	}
}
