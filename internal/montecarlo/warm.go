package montecarlo

import "fmt"

// WithConfig returns an estimator that shares the receiver's compiled
// snapshot — the frozen CSR form, per-task failure probabilities, single-
// failure head/tail tables and the sampler's bit-level threshold tables —
// under a different run configuration. Construction cost is O(1): none of
// the shared state is rebuilt, which is what lets the makespand registry
// answer a warm estimate request without paying freeze/table costs again.
//
// Trials, Seed, Workers and the adaptive knobs (Tolerance, TargetQuantile,
// Confidence, MaxTrials) may change: Mode and LegacySampler select which
// snapshot arrays exist and how they are interpreted, so switching them
// requires a fresh estimator. The shared state is read-only during runs;
// the receiver and every derived estimator may Run concurrently.
func (e *Estimator) WithConfig(cfg Config) (*Estimator, error) {
	if cfg.Mode != e.cfg.Mode {
		return nil, fmt.Errorf("montecarlo: WithConfig cannot change Mode (%v to %v); build a new estimator", e.cfg.Mode, cfg.Mode)
	}
	if cfg.LegacySampler != e.cfg.LegacySampler {
		return nil, fmt.Errorf("montecarlo: WithConfig cannot toggle LegacySampler; build a new estimator")
	}
	cfg, err := normalizeConfig(cfg)
	if err != nil {
		return nil, err
	}
	ne := *e
	ne.cfg = cfg
	return &ne, nil
}

// SizeBytes reports the approximate retained heap size of the compiled
// snapshot: the per-task probability and path arrays plus the sampler
// threshold tables. The frozen graph is excluded — it is shared with the
// registry entry that owns it and accounted there. Attempt tables shared
// between equal-probability positions are counted once.
func (e *Estimator) SizeBytes() int64 {
	s := int64(len(e.pfTopo)+len(e.invLnPf)+len(e.hpt)) * 8
	s += int64(len(e.sinks)) * 4
	s += int64(len(e.pfail)+len(e.baseID)) * 8 // legacy-sampler snapshots
	if tb := e.tables; tb != nil {
		s += int64(len(tb.gapBits)+len(tb.thinBits)+len(tb.attFirst)) * 8
		s += int64(len(tb.attTrunc))
		seen := make(map[*uint64]bool)
		for _, t := range tb.attBits {
			if len(t) == 0 || seen[&t[0]] {
				continue
			}
			seen[&t[0]] = true
			s += int64(len(t)) * 8
		}
		s += int64(len(tb.attBits)) * 24 // slice headers
	}
	return s + 256 // struct header
}
