package dag

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, _ := LayeredRandom(RandomConfig{Tasks: 30, EdgeProb: 0.3, MaxLayerWidth: 5}, rng)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTasks() != g.NumTasks() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("shape changed: %v vs %v", got, g)
	}
	for i := 0; i < g.NumTasks(); i++ {
		if got.Name(i) != g.Name(i) || got.Weight(i) != g.Weight(i) {
			t.Fatalf("task %d changed", i)
		}
		if len(got.Succ(i)) != len(g.Succ(i)) {
			t.Fatalf("succ %d changed", i)
		}
		for k, s := range g.Succ(i) {
			if got.Succ(i)[k] != s {
				t.Fatalf("succ %d order changed", i)
			}
		}
	}
	d1, _ := Makespan(g)
	d2, _ := Makespan(got)
	if d1 != d2 {
		t.Fatalf("makespans differ: %v %v", d1, d2)
	}
}

func TestReadJSONRejectsCycle(t *testing.T) {
	in := `{"tasks":[{"name":"a","weight":1},{"name":"b","weight":1}],
	        "edges":[[0,1],[1,0]]}`
	if _, err := ReadJSON(strings.NewReader(in)); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestReadJSONRejectsBadEdge(t *testing.T) {
	in := `{"tasks":[{"name":"a","weight":1}],"edges":[[0,5]]}`
	if _, err := ReadJSON(strings.NewReader(in)); err == nil {
		t.Fatal("expected bad edge error")
	}
}

func TestReadJSONRejectsBadWeight(t *testing.T) {
	in := `{"tasks":[{"name":"a","weight":-3}],"edges":[]}`
	if _, err := ReadJSON(strings.NewReader(in)); err == nil {
		t.Fatal("expected bad weight error")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestWriteDot(t *testing.T) {
	g := Diamond(1, 2, 3, 4)
	var buf bytes.Buffer
	err := WriteDot(&buf, g, DotOptions{ShowWeights: true, Highlight: []int{0, 1, 3}, RankDir: "LR"})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph G", "rankdir=LR", "n0 -> n1", "color=red", "src"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Edge inside the highlighted path is red; edge leaving it is not.
	if !strings.Contains(out, "n0 -> n1 [color=red];") {
		t.Errorf("highlighted edge not red")
	}
	if strings.Contains(out, "n0 -> n2 [color=red];") {
		t.Errorf("non-highlighted edge red")
	}
}

func TestDotID(t *testing.T) {
	if dotID("abc_1") != "abc_1" {
		t.Errorf("plain id quoted")
	}
	if dotID("a b") != `"a b"` {
		t.Errorf("id with space not quoted: %s", dotID("a b"))
	}
	if dotID("") != `""` {
		t.Errorf("empty id: %s", dotID(""))
	}
}

func TestForkJoinShape(t *testing.T) {
	g := ForkJoin(5, 2.0)
	if g.NumTasks() != 7 {
		t.Fatalf("tasks = %d want 7", g.NumTasks())
	}
	if g.NumEdges() != 10 {
		t.Fatalf("edges = %d want 10", g.NumEdges())
	}
	d, _ := Makespan(g)
	if d != 2 {
		t.Fatalf("fork-join makespan = %v want 2", d)
	}
}

func TestOutTreeShape(t *testing.T) {
	g := OutTree(3, 2, 1.0)
	if g.NumTasks() != 7 { // 1 + 2 + 4
		t.Fatalf("tasks = %d want 7", g.NumTasks())
	}
	d, _ := Makespan(g)
	if d != 3 {
		t.Fatalf("tree makespan = %v want 3", d)
	}
	if g := OutTree(0, 0, 1); g.NumTasks() != 1 {
		t.Fatalf("degenerate tree")
	}
}

func TestChainWeightsCycle(t *testing.T) {
	g := Chain(5, 1, 2)
	want := []float64{1, 2, 1, 2, 1}
	for i, w := range want {
		if g.Weight(i) != w {
			t.Fatalf("weight %d = %v want %v", i, g.Weight(i), w)
		}
	}
}
