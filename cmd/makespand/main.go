// Command makespand serves makespan estimation over HTTP: a long-running
// daemon wrapping the paper's estimators behind a content-addressed graph
// registry, so repeat estimates on the same DAG reuse the frozen graph,
// Dodin reduction plan, Monte Carlo threshold tables and bounds scratch
// instead of rebuilding them per request.
//
// Usage:
//
//	makespand -addr 127.0.0.1:8080 -workers 4 -cache-bytes 268435456
//
// Endpoints (full reference with executable examples in docs/API.md;
// docs/E2E.md holds the verified parity case table):
//
//	POST /v1/graphs       submit a DAG (inline JSON or generator spec)
//	GET  /v1/graphs/{id}  look up a cached graph and its artifacts
//	POST /v1/estimate     estimate one graph: methods × pfail × trials
//	POST /v1/sweep        pfail sweep via the experiment-cell scheduler
//	POST /v1/schedule     processor-bounded scheduled-makespan estimate
//	GET  /v1/cache        resolver statistics + in-flight request count
//	GET  /healthz         liveness + cache statistics (503 once draining)
//	GET  /metrics         Prometheus text exposition (per-route request
//	                      counters and latency histograms, admission and
//	                      in-flight gauges, per-kind cache series)
//
// Observability: unless -access-log=false, every request emits one
// structured line to stderr (event=request method=... route=...
// status=... bytes=... dur_ms=... deadline_ms=... outcome=...),
// extending the event=panic convention; /metrics serves the same
// counters a fleet operator would graph. /healthz, GET /v1/cache and
// GET /metrics bypass admission control so probes and scrapes keep
// answering while the daemon sheds load.
//
// Estimate, sweep and schedule responses are byte-identical to
// `makespan -format json`, `experiments -sweep -format json` and
// `schedsim -format json` for the same inputs (timing fields excepted)
// and deterministic under concurrent load.
//
// Lifecycle: SIGINT/SIGTERM starts a graceful drain — /healthz flips to
// 503, the listener stops accepting after -drain-grace, in-flight
// requests run to completion within -drain-timeout, stragglers have
// their contexts cancelled (kernels abort at the next chunk boundary
// and answer 504/499) — and the process exits 0. A second signal kills
// it the default way.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/service"
)

// daemonConfig collects the flag-settable knobs of one daemon run.
type daemonConfig struct {
	addr         string
	workers      int
	cacheBytes   int64
	maxInFlight  int
	maxQueue     int
	queueWait    time.Duration
	timeout      time.Duration
	maxTimeout   time.Duration
	drainGrace   time.Duration
	drainTimeout time.Duration
	accessLog    bool
}

func main() {
	var cfg daemonConfig
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	flag.IntVar(&cfg.workers, "workers", 0, "server-wide CPU budget for estimation work (0 = GOMAXPROCS)")
	flag.Int64Var(&cfg.cacheBytes, "cache-bytes", 256<<20, "graph registry byte budget (<= 0 = unlimited)")
	flag.IntVar(&cfg.maxInFlight, "max-inflight", 0, "cap on concurrently admitted estimation requests (0 = unlimited)")
	flag.IntVar(&cfg.maxQueue, "max-queue", 0, "admission wait-queue length when -max-inflight is set (0 = shed instantly)")
	flag.DurationVar(&cfg.queueWait, "queue-wait", time.Second, "how long a queued request waits for admission before 429")
	flag.DurationVar(&cfg.timeout, "timeout", 0, "default per-request deadline when the client sends no timeout_ms (0 = none)")
	flag.DurationVar(&cfg.maxTimeout, "max-timeout", 0, "clamp on client-requested timeout_ms (0 = unclamped)")
	flag.DurationVar(&cfg.drainGrace, "drain-grace", 0, "how long /healthz advertises draining before the listener closes")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 10*time.Second, "how long in-flight requests may run after drain starts")
	flag.BoolVar(&cfg.accessLog, "access-log", true, "emit one structured log line per request to stderr")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "makespand:", err)
		os.Exit(1)
	}
}

func run(cfg daemonConfig) error {
	scfg := service.Config{
		Workers:        cfg.workers,
		CacheBytes:     cfg.cacheBytes,
		MaxInFlight:    cfg.maxInFlight,
		MaxQueue:       cfg.maxQueue,
		QueueWait:      cfg.queueWait,
		DefaultTimeout: cfg.timeout,
		MaxTimeout:     cfg.maxTimeout,
	}
	if cfg.accessLog {
		scfg.AccessLog = os.Stderr
	}
	srv := service.New(scfg)
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	// The resolved address line doubles as the readiness signal: the e2e
	// harness scrapes the port from it when started with :0.
	log.SetFlags(0)
	log.Printf("makespand: listening on %s (workers %d, cache budget %d bytes)",
		ln.Addr(), workersOrMax(cfg.workers), cfg.cacheBytes)

	// rootCtx is the base of every request context: cancelling it aborts
	// in-flight kernels at their next chunk boundary (the force phase of
	// a drain that overran its budget).
	rootCtx, rootCancel := context.WithCancel(context.Background())
	defer rootCancel()
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return rootCtx },
	}
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-sigCtx.Done():
	}
	// Restore default signal handling: a second SIGINT/SIGTERM kills the
	// process immediately instead of being swallowed by a stuck drain.
	stop()

	log.Printf("makespand: draining (%d in flight, grace %s, timeout %s)",
		srv.InFlight(), cfg.drainGrace, cfg.drainTimeout)
	srv.StartDrain() // /healthz answers 503 from here on
	if cfg.drainGrace > 0 {
		// Keep accepting during the grace window so health checkers and
		// load balancers can observe the draining state and stop routing
		// here before the listener disappears.
		time.Sleep(cfg.drainGrace)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		// In-flight requests outlived the drain budget: cancel their
		// contexts — kernels abort at the next chunk boundary and the
		// handlers answer 504/499 — then give them a moment to flush.
		log.Printf("makespand: drain timeout; cancelling in-flight requests")
		rootCancel()
		finalCtx, cancelFinal := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancelFinal()
		if err := hs.Shutdown(finalCtx); err != nil {
			_ = hs.Close()
		}
	}
	log.Printf("makespand: drained, exiting")
	return nil
}

func workersOrMax(w int) int {
	if w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}
