package service

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/linalg"
)

func TestExtractSelectorIgnoresRequestKnobs(t *testing.T) {
	// Two requests that differ only in estimation parameters must
	// extract the same selector — that is the whole point of routing by
	// graph, not by request.
	a, err := ExtractSelector([]byte(`{"kind":"lu","k":6,"pfail":0.01,"trials":20000,"seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExtractSelector([]byte(`{"kind":"lu","k":6,"methods":"dodin","pfail":0.2}`))
	if err != nil {
		t.Fatal(err)
	}
	ka, err := a.RoutingKey()
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.RoutingKey()
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatalf("same graph routed differently: %q vs %q", ka, kb)
	}
	if !strings.HasPrefix(ka, "graph/sha256:") {
		t.Fatalf("key %q does not look like a graph artifact key", ka)
	}
}

func TestExtractSelectorRejectsNonJSON(t *testing.T) {
	if _, err := ExtractSelector([]byte("not json")); err == nil {
		t.Fatal("want error for non-JSON body")
	}
}

func TestRoutingKeyGraphID(t *testing.T) {
	sel := RoutingSelector{GraphID: "sha256:abc"}
	key, err := sel.RoutingKey()
	if err != nil {
		t.Fatal(err)
	}
	if key != "graph/sha256:abc" {
		t.Fatalf("key = %q", key)
	}
}

func TestRoutingKeyMatchesRegistry(t *testing.T) {
	// The routing key computed from a generator spec and from the
	// equivalent inline graph must both equal the artifact key of the
	// entry the daemon registers: same canonical form, same hash. This
	// pins the lb's shard choice to the replica's cache key.
	g, err := linalg.Generate(linalg.FactLU, 4, linalg.KernelTimes{})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(0)
	e, _, err := reg.Add(g, GraphMeta{Kind: "lu", K: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := "graph/" + e.ID

	genKey, err := RoutingSelector{Kind: "lu", K: 4}.RoutingKey()
	if err != nil {
		t.Fatal(err)
	}
	if genKey != want {
		t.Fatalf("generator spec key %q, registry key %q", genKey, want)
	}

	inline, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	inlineKey, err := RoutingSelector{Graph: inline}.RoutingKey()
	if err != nil {
		t.Fatal(err)
	}
	if inlineKey != want {
		t.Fatalf("inline graph key %q, registry key %q", inlineKey, want)
	}

	// A cosmetically different but semantically identical inline body
	// (field order, whitespace) canonicalizes to the same key.
	var loose map[string]any
	if err := json.Unmarshal(inline, &loose); err != nil {
		t.Fatal(err)
	}
	reordered, err := json.MarshalIndent(loose, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	reKey, err := RoutingSelector{Graph: reordered}.RoutingKey()
	if err != nil {
		t.Fatal(err)
	}
	if reKey != want {
		t.Fatalf("reordered inline graph key %q, registry key %q", reKey, want)
	}
}

func TestRoutingKeyPriorityIsDeterministic(t *testing.T) {
	// Over-set selectors are the replica's 400 to give; the router only
	// promises a deterministic choice (graph_id wins).
	sel := RoutingSelector{GraphID: "sha256:abc", Kind: "lu", K: 4}
	key, err := sel.RoutingKey()
	if err != nil {
		t.Fatal(err)
	}
	if key != "graph/sha256:abc" {
		t.Fatalf("key = %q, want graph_id to win", key)
	}
}

func TestRoutingKeyErrors(t *testing.T) {
	cases := []struct {
		name string
		sel  RoutingSelector
	}{
		{"empty", RoutingSelector{}},
		{"bad k", RoutingSelector{Kind: "lu", K: 0}},
		{"bad kind", RoutingSelector{Kind: "nope", K: 4}},
		{"bad inline", RoutingSelector{Graph: json.RawMessage(`{"tasks": 7}`)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.sel.RoutingKey(); err == nil {
				t.Fatalf("want error for %+v", tc.sel)
			}
		})
	}
}

func TestDefaultSweepSelector(t *testing.T) {
	sel := DefaultSweepSelector()
	if sel.IsZero() {
		t.Fatal("default sweep selector is zero")
	}
	key, err := sel.RoutingKey()
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := (RoutingSelector{Kind: "lu", K: 10}).RoutingKey()
	if err != nil {
		t.Fatal(err)
	}
	if key != explicit {
		t.Fatalf("default sweep key %q != lu k=10 key %q", key, explicit)
	}
}
