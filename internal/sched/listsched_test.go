package sched

import (
	"math"
	mrand "math/rand"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/failure"
	"repro/internal/linalg"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPrioritiesAreCPLengths(t *testing.T) {
	g := dag.Diamond(1, 5, 3, 2)
	p, err := Priorities(g)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{8, 7, 5, 2} // a_i + bl(i)
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("prio[%d] = %v want %v", i, p[i], want[i])
		}
	}
}

func TestFailureAwarePrioritiesDominate(t *testing.T) {
	g := dag.Diamond(1, 5, 3, 2)
	m := failure.Model{Lambda: 0.05}
	det, _ := Priorities(g)
	fa, err := FailureAwarePriorities(g, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range det {
		if fa[i] < det[i]-1e-12 {
			t.Fatalf("failure-aware prio[%d]=%v below deterministic %v", i, fa[i], det[i])
		}
	}
}

func TestListScheduleSingleProcessorIsSerialization(t *testing.T) {
	g := dag.Diamond(1, 5, 3, 2)
	p, _ := Priorities(g)
	s, err := ListSchedule(g, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(s.Makespan, g.TotalWeight(), 1e-12) {
		t.Fatalf("1-proc makespan = %v want total %v", s.Makespan, g.TotalWeight())
	}
}

func TestListScheduleUnlimitedProcsIsCriticalPath(t *testing.T) {
	g := dag.Diamond(1, 5, 3, 2)
	p, _ := Priorities(g)
	s, err := ListSchedule(g, p, g.NumTasks())
	if err != nil {
		t.Fatal(err)
	}
	d, _ := dag.Makespan(g)
	if !almostEq(s.Makespan, d, 1e-12) {
		t.Fatalf("unlimited makespan = %v want d(G) = %v", s.Makespan, d)
	}
}

func TestListScheduleRespectsPrecedence(t *testing.T) {
	g, _ := linalg.Cholesky(5, linalg.KernelTimes{})
	p, _ := Priorities(g)
	s, err := ListSchedule(g, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.NumTasks(); u++ {
		for _, v := range g.Succ(u) {
			if s.Start[v] < s.Finish[u]-1e-12 {
				t.Fatalf("task %d starts %v before pred %d finishes %v", v, s.Start[v], u, s.Finish[u])
			}
		}
	}
}

func TestListScheduleNoProcessorOverlap(t *testing.T) {
	g, _ := linalg.LU(4, linalg.KernelTimes{})
	p, _ := Priorities(g)
	s, err := ListSchedule(g, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	type iv struct{ s, f float64 }
	byProc := map[int][]iv{}
	for i := 0; i < g.NumTasks(); i++ {
		byProc[s.Proc[i]] = append(byProc[s.Proc[i]], iv{s.Start[i], s.Finish[i]})
	}
	for proc, ivs := range byProc {
		for i := range ivs {
			for j := i + 1; j < len(ivs); j++ {
				a, b := ivs[i], ivs[j]
				if a.s < b.f-1e-12 && b.s < a.f-1e-12 {
					t.Fatalf("proc %d: overlapping tasks [%v,%v] and [%v,%v]", proc, a.s, a.f, b.s, b.f)
				}
			}
		}
	}
}

func TestListScheduleErrors(t *testing.T) {
	g := dag.Chain(3)
	p, _ := Priorities(g)
	if _, err := ListSchedule(g, p, 0); err == nil {
		t.Error("nprocs=0 accepted")
	}
	if _, err := ListSchedule(g, p[:1], 2); err == nil {
		t.Error("short priority vector accepted")
	}
	cyc := dag.New(2)
	a := cyc.MustAddTask("a", 1)
	b := cyc.MustAddTask("b", 1)
	cyc.MustAddEdge(a, b)
	cyc.MustAddEdge(b, a)
	if _, err := ListSchedule(cyc, []float64{1, 1}, 1); err == nil {
		t.Error("cycle accepted")
	}
}

func TestRunWithFailuresAddsAttempts(t *testing.T) {
	g := dag.Chain(10, 1)
	p, _ := Priorities(g)
	m := failure.Model{Lambda: 0.5} // pfail ≈ 0.39 per task: failures all but certain
	rng := rand.New(rand.NewPCG(7, 7))
	s, err := Run(g, p, 1, m, rng)
	if err != nil {
		t.Fatal(err)
	}
	totalAttempts := 0
	for _, a := range s.Attempts {
		if a < 1 {
			t.Fatalf("attempts < 1: %v", s.Attempts)
		}
		totalAttempts += a
	}
	if totalAttempts == g.NumTasks() {
		t.Fatal("no failures sampled at λ=0.5 over 10 tasks (astronomically unlikely)")
	}
	if !almostEq(s.Makespan, float64(totalAttempts), 1e-12) {
		t.Fatalf("makespan %v != total executed work %v on 1 proc", s.Makespan, float64(totalAttempts))
	}
}

func TestRunFailureFreeAttemptsAreOne(t *testing.T) {
	g := dag.Diamond(1, 2, 3, 4)
	p, _ := Priorities(g)
	s, _ := ListSchedule(g, p, 2)
	for i, a := range s.Attempts {
		if a != 1 {
			t.Fatalf("attempts[%d] = %d", i, a)
		}
	}
}

func TestExpectedMakespanChainClosedForm(t *testing.T) {
	// On one processor a chain's expected makespan is Σ a_i e^{λ a_i}.
	g := dag.Chain(5, 1, 2)
	m := failure.Model{Lambda: 0.1}
	p, _ := Priorities(g)
	res, err := ExpectedMakespan(g, p, 1, m, 60000, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for i := 0; i < g.NumTasks(); i++ {
		want += m.ExpectedTime(g.Weight(i))
	}
	if !almostEq(res.Mean, want, 5*res.CI95) {
		t.Fatalf("expected makespan %v want %v (CI %v)", res.Mean, want, res.CI95)
	}
}

func TestFailureAwarePrioritiesHelpOrMatch(t *testing.T) {
	// On a graph engineered so the failure-aware ranking differs (a branch
	// of many small tasks vs one slightly-longer big task: re-executions
	// hurt the big task more), the failure-aware policy must not lose.
	g := dag.New(0)
	src := g.MustAddTask("src", 0.01)
	big := g.MustAddTask("big", 3.0)
	var prev = src
	for i := 0; i < 3; i++ {
		id := g.MustAddTask("small", 1.01)
		g.MustAddEdge(prev, id)
		prev = id
	}
	g.MustAddEdge(src, big)
	snk := g.MustAddTask("snk", 0.01)
	g.MustAddEdge(prev, snk)
	g.MustAddEdge(big, snk)
	m := failure.Model{Lambda: 0.25}
	det, _ := Priorities(g)
	fa, _ := FailureAwarePriorities(g, m)
	detRes, err := ExpectedMakespan(g, det, 2, m, 40000, 11)
	if err != nil {
		t.Fatal(err)
	}
	faRes, err := ExpectedMakespan(g, fa, 2, m, 40000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if faRes.Mean > detRes.Mean+detRes.CI95+faRes.CI95 {
		t.Fatalf("failure-aware %v significantly worse than deterministic %v", faRes.Mean, detRes.Mean)
	}
}

// Property: makespan decreases (weakly) with more processors and is always
// between d(G) and total work.
func TestQuickMakespanMonotoneInProcs(t *testing.T) {
	f := func(seed int64) bool {
		rng := mrand.New(mrand.NewSource(seed))
		g, err := dag.LayeredRandom(dag.RandomConfig{Tasks: 25, EdgeProb: 0.3, MaxLayerWidth: 5}, rng)
		if err != nil {
			return false
		}
		p, err := Priorities(g)
		if err != nil {
			return false
		}
		d, _ := dag.Makespan(g)
		prev := math.Inf(1)
		for _, np := range []int{1, 2, 4, 25} {
			s, err := ListSchedule(g, p, np)
			if err != nil {
				return false
			}
			if s.Makespan > prev+1e-9 {
				return false
			}
			if s.Makespan < d-1e-9 || s.Makespan > g.TotalWeight()+1e-9 {
				return false
			}
			prev = s.Makespan
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDeterministicGivenSeed(t *testing.T) {
	g, _ := linalg.QR(4, linalg.KernelTimes{})
	p, _ := Priorities(g)
	m := failure.Model{Lambda: 0.1}
	s1, err := Run(g, p, 3, m, rand.New(rand.NewPCG(5, 5)))
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := Run(g, p, 3, m, rand.New(rand.NewPCG(5, 5)))
	if s1.Makespan != s2.Makespan {
		t.Fatalf("same seed, different makespans: %v %v", s1.Makespan, s2.Makespan)
	}
}
