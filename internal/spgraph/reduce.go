package spgraph

import (
	"fmt"
)

// reducePass applies series and parallel reductions until none applies,
// returning the number of reductions performed.
//
// Parallel reduction: two live arcs with the same endpoints merge into one
// carrying the independent max of their distributions. Series reduction:
// an internal node with exactly one live incoming and one live outgoing
// arc disappears; the arcs merge into their convolution. Both are exact
// under the model's independence assumptions.
func (net *Network) reducePass() int {
	reductions := 0
	// Worklist of nodes to examine; start with every node that has arcs.
	queue := make([]int, 0, len(net.in))
	inQueue := make([]bool, len(net.in))
	push := func(v int) {
		if v >= 0 && v < len(inQueue) && !inQueue[v] {
			inQueue[v] = true
			queue = append(queue, v)
		}
	}
	for v := range net.in {
		push(v)
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		inQueue[v] = false

		// Parallel reductions among v's outgoing arcs.
		out := net.liveOut(v)
		if len(out) > 1 {
			byHead := make(map[int]int, len(out)) // head -> first arc id
			for _, id := range out {
				head := net.arcs[id].to
				if first, ok := byHead[head]; ok {
					merged := net.cap(net.arcs[first].dist.MaxInd(net.arcs[id].dist))
					net.arcs[first].dist = merged
					net.arcs[first].tree = parallelNode(net.arcs[first].tree, net.arcs[id].tree)
					net.killArc(id)
					reductions++
					push(v)
					push(head)
				} else {
					byHead[head] = id
				}
			}
		}

		// Series reduction at v.
		if v == net.src || v == net.snk {
			continue
		}
		in, out := net.liveIn(v), net.liveOut(v)
		if len(in) == 1 && len(out) == 1 {
			a, b := net.arcs[in[0]], net.arcs[out[0]]
			merged := net.cap(a.dist.Add(b.dist))
			net.killArc(in[0])
			net.killArc(out[0])
			net.addArc(a.from, b.to, merged, seriesNode(a.tree, b.tree))
			reductions++
			push(a.from)
			push(b.to)
		}
	}
	return reductions
}

// IsSeriesParallel reports whether the network is (two-terminal)
// series-parallel: it is iff series/parallel reductions alone collapse it
// to a single source→sink arc (Valdes–Tarjan–Lawler). The network is
// consumed.
func (net *Network) IsSeriesParallel() bool {
	net.reducePass()
	_, err := net.result()
	return err == nil
}

// EvaluateSP reduces a series-parallel network to its exact makespan
// distribution (exact up to the configured support cap). It fails with an
// error mentioning Dodin if the network is not series-parallel.
func (net *Network) EvaluateSP() (Result, error) {
	net.reducePass()
	d, err := net.result()
	if err != nil {
		return Result{}, fmt.Errorf("%w (graph is not series-parallel; use Dodin)", err)
	}
	return Result{Estimate: d.Mean(), Distribution: d}, nil
}
