// Command makespand serves makespan estimation over HTTP: a long-running
// daemon wrapping the paper's estimators behind a content-addressed graph
// registry, so repeat estimates on the same DAG reuse the frozen graph,
// Dodin reduction plan, Monte Carlo threshold tables and bounds scratch
// instead of rebuilding them per request.
//
// Usage:
//
//	makespand -addr 127.0.0.1:8080 -workers 4 -cache-bytes 268435456
//
// Endpoints (full reference with executable examples in docs/API.md;
// docs/E2E.md holds the verified parity case table):
//
//	POST /v1/graphs       submit a DAG (inline JSON or generator spec)
//	GET  /v1/graphs/{id}  look up a cached graph and its artifacts
//	POST /v1/estimate     estimate one graph: methods × pfail × trials
//	POST /v1/sweep        pfail sweep via the experiment-cell scheduler
//	POST /v1/schedule     processor-bounded scheduled-makespan estimate
//	GET  /healthz         liveness + cache statistics
//
// Estimate, sweep and schedule responses are byte-identical to
// `makespan -format json`, `experiments -sweep -format json` and
// `schedsim -format json` for the same inputs (timing fields excepted)
// and deterministic under concurrent load.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		workers = flag.Int("workers", 0, "server-wide CPU budget for estimation work (0 = GOMAXPROCS)")
		cacheB  = flag.Int64("cache-bytes", 256<<20, "graph registry byte budget (<= 0 = unlimited)")
	)
	flag.Parse()
	if err := run(*addr, *workers, *cacheB); err != nil {
		fmt.Fprintln(os.Stderr, "makespand:", err)
		os.Exit(1)
	}
}

func run(addr string, workers int, cacheBytes int64) error {
	srv := service.New(service.Config{Workers: workers, CacheBytes: cacheBytes})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The resolved address line doubles as the readiness signal: the e2e
	// harness scrapes the port from it when started with :0.
	log.SetFlags(0)
	log.Printf("makespand: listening on %s (workers %d, cache budget %d bytes)",
		ln.Addr(), workersOrMax(workers), cacheBytes)

	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		log.Printf("makespand: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return hs.Shutdown(shutdownCtx)
	}
}

func workersOrMax(w int) int {
	if w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}
