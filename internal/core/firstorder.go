// Package core implements the paper's contribution (§IV): a first-order
// approximation of the expected makespan of a DAG whose tasks are subject
// to silent errors, plus the second-order extension sketched in the
// paper's conclusion and failure-aware expected bottom levels for
// scheduling.
//
// The first-order identity: with failure rate λ and per-task weights a_i,
//
//	E(G) = d(G) + λ · Σ_i a_i (d(G_i) − d(G)) + O(λ²)
//
// where d(G) is the failure-free makespan and G_i doubles a_i. Since
// doubling a_i adds a_i to exactly the paths through i,
// d(G_i) = max(d(G), head(i)+tail(i)), which yields an O(V+E) evaluator;
// FirstOrderNaive recomputes each d(G_i) from scratch in O(V(V+E)) and is
// kept as an oracle and for the ablation benchmarks.
package core

import (
	"repro/internal/dag"
	"repro/internal/failure"
)

// FirstOrderResult carries the estimate and its per-task decomposition.
type FirstOrderResult struct {
	// Estimate is the first-order approximation of the expected makespan.
	Estimate float64
	// FailureFree is d(G), the deterministic makespan and a lower bound on
	// the expected makespan.
	FailureFree float64
	// Contribution[i] = a_i·(d(G_i) − d(G)): task i's sensitivity. The
	// estimate is FailureFree + λ·Σ Contribution.
	Contribution []float64
}

// FirstOrder computes the paper's first-order approximation in O(V+E).
func FirstOrder(g *dag.Graph, model failure.Model) (FirstOrderResult, error) {
	pe, err := dag.NewPathEvaluator(g)
	if err != nil {
		return FirstOrderResult{}, err
	}
	return FirstOrderWith(pe, model), nil
}

// FirstOrderWith is FirstOrder reusing a prepared evaluator, for callers
// estimating the same graph under many failure rates.
func FirstOrderWith(pe *dag.PathEvaluator, model failure.Model) FirstOrderResult {
	g := pe.Graph()
	d := pe.Makespan()
	heads := pe.Heads()
	tails := pe.Tails()
	n := g.NumTasks()
	res := FirstOrderResult{
		FailureFree:  d,
		Contribution: make([]float64, n),
	}
	var sum float64
	for i := 0; i < n; i++ {
		// d(G_i) − d(G) = max(0, head(i)+tail(i) − d).
		delta := heads[i] + tails[i] - d
		if delta < 0 {
			delta = 0
		}
		c := g.Weight(i) * delta
		res.Contribution[i] = c
		sum += c
	}
	res.Estimate = d + model.Lambda*sum
	return res
}

// FirstOrderNaive evaluates the same approximation by recomputing d(G_i)
// for every task with a fresh longest-path pass: O(V·(V+E)). Used as the
// reference implementation in property tests and as the ablation baseline
// quantifying the speedup of the head/tail identity.
func FirstOrderNaive(g *dag.Graph, model failure.Model) (FirstOrderResult, error) {
	pe, err := dag.NewPathEvaluator(g)
	if err != nil {
		return FirstOrderResult{}, err
	}
	d := pe.Makespan()
	n := g.NumTasks()
	res := FirstOrderResult{
		FailureFree:  d,
		Contribution: make([]float64, n),
	}
	weights := g.Weights()
	var sum float64
	for i := 0; i < n; i++ {
		orig := weights[i]
		weights[i] = 2 * orig
		di := pe.MakespanWith(weights)
		weights[i] = orig
		c := orig * (di - d)
		res.Contribution[i] = c
		sum += c
	}
	res.Estimate = d + model.Lambda*sum
	return res, nil
}
