package dag

import "testing"

func TestPipelineShape(t *testing.T) {
	g := Pipeline(4, 3, 2.0)
	if g.NumTasks() != 12 {
		t.Fatalf("tasks = %d want 12", g.NumTasks())
	}
	if g.NumEdges() != 3*3*3 {
		t.Fatalf("edges = %d want 27", g.NumEdges())
	}
	d, _ := Makespan(g)
	if d != 8 {
		t.Fatalf("makespan = %v want 8", d)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if depth, _ := g.Depth(); depth != 4 {
		t.Fatalf("depth = %d", depth)
	}
	// Degenerate arguments clamp.
	if g := Pipeline(0, 0, 1); g.NumTasks() != 1 {
		t.Fatalf("degenerate pipeline: %d tasks", g.NumTasks())
	}
}

func TestWavefrontShape(t *testing.T) {
	g := Wavefront(4, 1.0)
	if g.NumTasks() != 16 {
		t.Fatalf("tasks = %d", g.NumTasks())
	}
	// Edges: 2·n·(n−1).
	if g.NumEdges() != 24 {
		t.Fatalf("edges = %d want 24", g.NumEdges())
	}
	d, _ := Makespan(g)
	if d != 7 { // 2n − 1 unit tasks on the anti-diagonal path
		t.Fatalf("makespan = %v want 7", d)
	}
	if src := g.Sources(); len(src) != 1 || src[0] != 0 {
		t.Fatalf("sources = %v", src)
	}
	if snk := g.Sinks(); len(snk) != 1 || snk[0] != 15 {
		t.Fatalf("sinks = %v", snk)
	}
	if g := Wavefront(0, 1); g.NumTasks() != 1 {
		t.Fatalf("degenerate wavefront")
	}
}

func TestFFTShape(t *testing.T) {
	g, err := FFT(8, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// 8 points, log2(8)+1 = 4 ranks.
	if g.NumTasks() != 32 {
		t.Fatalf("tasks = %d want 32", g.NumTasks())
	}
	// Each of the 3 butterfly stages has 2 incoming edges per task: 3·8·2.
	if g.NumEdges() != 48 {
		t.Fatalf("edges = %d want 48", g.NumEdges())
	}
	d, _ := Makespan(g)
	if d != 4 {
		t.Fatalf("makespan = %v want 4", d)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := FFT(6, 1); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	if _, err := FFT(1, 1); err == nil {
		t.Fatal("size 1 accepted")
	}
}

func TestDivideAndConquerShape(t *testing.T) {
	g := DivideAndConquer(3, 1.0)
	// 8 leaves + 7 divide + 7 merge = 22 = 3·8 − 2.
	if g.NumTasks() != 22 {
		t.Fatalf("tasks = %d want 22", g.NumTasks())
	}
	d, _ := Makespan(g)
	if d != 7 { // 3 divides + leaf + 3 merges
		t.Fatalf("makespan = %v want 7", d)
	}
	if src := g.Sources(); len(src) != 1 {
		t.Fatalf("sources = %v", src)
	}
	if snk := g.Sinks(); len(snk) != 1 {
		t.Fatalf("sinks = %v", snk)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g := DivideAndConquer(0, 1); g.NumTasks() != 1 {
		t.Fatalf("degenerate D&C: %d", g.NumTasks())
	}
	if g := DivideAndConquer(-2, 1); g.NumTasks() != 1 {
		t.Fatalf("negative D&C: %d", g.NumTasks())
	}
}

func TestWavefrontPathCountIsBinomial(t *testing.T) {
	// Paths from corner to corner of an n×n wavefront: C(2n−2, n−1).
	g := Wavefront(5, 1)
	paths, err := CountPaths(g)
	if err != nil {
		t.Fatal(err)
	}
	if paths != 70 { // C(8,4)
		t.Fatalf("paths = %v want 70", paths)
	}
}
