package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/failure"
	"repro/internal/linalg"
	"repro/internal/schedmc"
)

// SchedSpec is the processor-bounded extension experiment: fix one graph
// and sweep (policy × processor count × failure probability), estimating
// the expected scheduled makespan of each cell with the frozen-schedule
// Monte Carlo engine. It quantifies the question the paper's conclusion
// poses — how much does failure-awareness in the priorities buy once
// processors are bounded, and how does the answer move with parallelism
// and error rate.
type SchedSpec struct {
	Fact     linalg.Factorization
	K        int
	Procs    []int
	PFails   []float64
	Policies []schedmc.Policy
}

// DefaultSchedSweep sweeps LU k=10 across four processor counts and two
// failure probabilities with both priority policies.
func DefaultSchedSweep() SchedSpec {
	return SchedSpec{
		Fact:     linalg.FactLU,
		K:        10,
		Procs:    []int{2, 4, 8, 16},
		PFails:   []float64{0.01, 0.001},
		Policies: schedmc.AllPolicies(),
	}
}

// SchedPoint is one (pfail × procs × policy) cell of a schedule sweep.
type SchedPoint struct {
	PFail  float64
	Procs  int
	Policy schedmc.Policy
	// FailureFree is the committed schedule's makespan, Efficiency its
	// failure-free parallel efficiency.
	FailureFree float64
	Efficiency  float64
	// MCMean/MCCI95 estimate the expected scheduled makespan under
	// failures; Overhead is MCMean/FailureFree − 1, the price of errors.
	MCMean   float64
	MCCI95   float64
	Overhead float64
	// FreezeTime and MCTime split the cell's wall clock between schedule
	// compilation and the Monte Carlo run.
	FreezeTime time.Duration
	MCTime     time.Duration
}

// SchedResult is a fully evaluated schedule sweep. Points are ordered
// pfail-major, then procs, then policy — byte-identical for any
// Options.Workers.
type SchedResult struct {
	Spec   SchedSpec
	Tasks  int
	Trials int
	Points []SchedPoint
}

// RunSchedSweep evaluates the sweep. Every cell is independent work on
// the bounded pool: the graph is generated once and shared read-only;
// each cell freezes its schedule (policies × procs × the pfail-dependent
// First Order priorities) and runs the fused Monte Carlo engine over the
// schedule DAG. Monte Carlo runs are serialized by a token and use the
// full worker budget, like the figure/table cell scheduler; per-cell
// seeds derive from Options.Seed and the cell index, so the result is
// reproducible and independent of Workers.
func RunSchedSweep(spec SchedSpec, opts Options) (SchedResult, error) {
	if err := opts.normalize(); err != nil {
		return SchedResult{}, err
	}
	if len(spec.Procs) == 0 || len(spec.PFails) == 0 {
		return SchedResult{}, fmt.Errorf("experiments: schedule sweep needs procs and pfails")
	}
	for _, p := range spec.Procs {
		if p < 1 {
			return SchedResult{}, fmt.Errorf("experiments: schedule sweep procs %d must be >= 1", p)
		}
	}
	for _, pf := range spec.PFails {
		if pf <= 0 || pf >= 1 {
			return SchedResult{}, fmt.Errorf("experiments: schedule sweep pfail %g outside (0,1)", pf)
		}
	}
	policies := spec.Policies
	if len(policies) == 0 {
		policies = schedmc.AllPolicies()
	}
	g, err := linalg.Generate(spec.Fact, spec.K, linalg.KernelTimes{})
	if err != nil {
		return SchedResult{}, err
	}
	models := make([]failure.Model, len(spec.PFails))
	for i, pf := range spec.PFails {
		if models[i], err = failure.FromPfail(pf, g.MeanWeight()); err != nil {
			return SchedResult{}, err
		}
	}

	type cellIdx struct{ pf, proc, pol int }
	var cells []cellIdx
	for pf := range spec.PFails {
		for proc := range spec.Procs {
			for pol := range policies {
				cells = append(cells, cellIdx{pf, proc, pol})
			}
		}
	}
	points := make([]SchedPoint, len(cells))
	errs := make([]error, len(cells))
	budget := opts.budget()
	workers := budget
	if workers > len(cells) {
		workers = len(cells)
	}
	mcToken := make(chan struct{}, 1)
	mcToken <- struct{}{}
	runCell := func(i int) error {
		c := cells[i]
		t0 := time.Now()
		fs, err := schedmc.Freeze(g, policies[c.pol], spec.Procs[c.proc], models[c.pf])
		if err != nil {
			return err
		}
		freeze := time.Since(t0)
		e, err := schedmc.NewEstimator(fs, models[c.pf], schedmc.Config{
			Trials:  opts.Trials,
			Seed:    pointSeed(opts.Seed, i),
			Workers: budget,
		})
		if err != nil {
			return err
		}
		// The Monte Carlo run dominates the cell and already scales to the
		// full budget internally, so MC phases serialize on a token while
		// other workers freeze their schedules concurrently — the same
		// budgeting the figure/table cell scheduler uses.
		<-mcToken
		defer func() { mcToken <- struct{}{} }()
		t1 := time.Now()
		res, err := e.Run()
		if err != nil {
			return err
		}
		points[i] = SchedPoint{
			PFail:       spec.PFails[c.pf],
			Procs:       spec.Procs[c.proc],
			Policy:      policies[c.pol],
			FailureFree: fs.Makespan,
			Efficiency:  fs.Efficiency(),
			MCMean:      res.Mean,
			MCCI95:      res.CI95,
			Overhead:    res.Mean/fs.Makespan - 1,
			FreezeTime:  freeze,
			MCTime:      time.Since(t1),
		}
		return nil
	}

	// In-order progress gate, as in the figure/table scheduler.
	var gateMu sync.Mutex
	gateNext := 0
	gateDone := make([]bool, len(cells))
	cellDone := func(i int) {
		if opts.Progress == nil {
			return
		}
		gateMu.Lock()
		defer gateMu.Unlock()
		gateDone[i] = true
		for gateNext < len(cells) && gateDone[gateNext] {
			p := points[gateNext]
			if errs[gateNext] == nil {
				opts.Progress(fmt.Sprintf("sched: pfail=%g procs=%d %s done (E[makespan] %.6g)",
					p.PFail, p.Procs, p.Policy, p.MCMean))
			}
			gateNext++
		}
	}

	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(cells) {
					return
				}
				if !failed.Load() {
					errs[i] = runCell(i)
					if errs[i] != nil {
						failed.Store(true)
					}
				}
				cellDone(i)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			c := cells[i]
			return SchedResult{}, fmt.Errorf("sched sweep (%s, pfail=%g, procs=%d): %w",
				policies[c.pol], spec.PFails[c.pf], spec.Procs[c.proc], err)
		}
	}
	return SchedResult{Spec: spec, Tasks: g.NumTasks(), Trials: opts.Trials, Points: points}, nil
}

// WriteSchedSweep renders a schedule sweep as an aligned text table,
// one row per cell under a header naming the swept graph and trial
// count.
func WriteSchedSweep(w io.Writer, r SchedResult) error {
	var b strings.Builder
	fmt.Fprintf(&b, "Scheduled-makespan sweep: %s k=%d (%d tasks), MC trials %d\n",
		FactLabel(r.Spec.Fact), r.Spec.K, r.Tasks, r.Trials)
	fmt.Fprintf(&b, "%-10s %-6s %-28s %-13s %-7s %-14s %-10s %-9s\n",
		"pfail", "procs", "policy", "schedule (s)", "eff%", "E[makespan]", "±95% CI", "overhead")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-10g %-6d %-28s %-13.6g %-7.1f %-14.6g %-10.3g %+8.2f%%\n",
			p.PFail, p.Procs, p.Policy.Label(), p.FailureFree, 100*p.Efficiency,
			p.MCMean, p.MCCI95, 100*p.Overhead)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
