package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/failure"
	"repro/internal/montecarlo"
)

func TestSecondOrderMassIsExactlyOne(t *testing.T) {
	// The λ⁰, λ¹ and λ² coefficients of the retained probability mass
	// cancel identically (see the derivation in SecondOrder's comment),
	// and the truncated per-state polynomials have degree ≤ 2, so the
	// total retained mass is exactly 1 for every λ.
	rng := rand.New(rand.NewSource(21))
	g, _ := dag.LayeredRandom(dag.RandomConfig{Tasks: 15, EdgeProb: 0.4, MaxLayerWidth: 4}, rng)
	for _, lam := range []float64{0, 0.001, 0.01, 0.1, 0.5} {
		mass := SecondOrderMass(g, failure.Model{Lambda: lam})
		if math.Abs(1-mass) > 1e-9 {
			t.Fatalf("λ=%v: retained mass %v != 1", lam, mass)
		}
	}
}

func TestSecondOrderReducesToFirstOrderAtZeroLambda(t *testing.T) {
	g := dag.Diamond(1, 5, 3, 2)
	res, err := SecondOrder(g, failure.Model{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != res.FailureFree || res.FirstOrder != res.FailureFree {
		t.Fatalf("λ=0: %+v", res)
	}
}

func TestSecondOrderAgreesWithEmbeddedFirstOrder(t *testing.T) {
	g := dag.Diamond(1, 5, 3, 2)
	m := failure.Model{Lambda: 0.01}
	so, err := SecondOrder(g, m)
	if err != nil {
		t.Fatal(err)
	}
	fo, _ := FirstOrder(g, m)
	if !almostEq(so.FirstOrder, fo.Estimate, 1e-12) {
		t.Fatalf("embedded first order %v != %v", so.FirstOrder, fo.Estimate)
	}
}

func TestSecondOrderSingleTaskClosedForm(t *testing.T) {
	// One task of weight a: 2-state exact E = a(1+pfail) with
	// pfail = 1 - e^{-λa} = λa - λ²a²/2 + O(λ³).
	// Second order keeps: P0·a + P1·2a + P2·3a with the expansion above.
	g := dag.New(1)
	g.MustAddTask("solo", 2)
	lam := 0.01
	m := failure.Model{Lambda: lam}
	res, err := SecondOrder(g, m)
	if err != nil {
		t.Fatal(err)
	}
	a := 2.0
	want := (1-lam*a+lam*lam*a*a/2)*a + (lam*a-1.5*lam*lam*a*a)*2*a + lam*lam*a*a*3*a
	if !almostEq(res.Estimate, want, 1e-12) {
		t.Fatalf("single task = %v want %v", res.Estimate, want)
	}
	// Against the geometric exact expectation a·e^{λa}, the second-order
	// error must be O(λ³)·scale — tiny.
	exact := a * math.Exp(lam*a)
	if diff := math.Abs(res.Estimate - exact); diff > 1e-5 {
		t.Fatalf("vs geometric exact: diff %v", diff)
	}
}

func TestSecondOrderBeatsFirstOrderAtModerateLambda(t *testing.T) {
	// Under the full re-execution (geometric) truth, the second-order
	// estimate must be closer than the first-order one once λ is large
	// enough for λ² terms to matter.
	rng := rand.New(rand.NewSource(5))
	wins, total := 0, 0
	for trial := 0; trial < 12; trial++ {
		g, _ := dag.LayeredRandom(dag.RandomConfig{Tasks: 8, EdgeProb: 0.5, MaxLayerWidth: 3}, rng)
		m := failure.Model{Lambda: 0.05}
		exact, err := montecarlo.ExactGeometric(g, m, 5)
		if err != nil {
			t.Fatal(err)
		}
		so, err := SecondOrder(g, m)
		if err != nil {
			t.Fatal(err)
		}
		fo, _ := FirstOrder(g, m)
		errSO := math.Abs(so.Estimate - exact)
		errFO := math.Abs(fo.Estimate - exact)
		total++
		if errSO <= errFO+1e-12 {
			wins++
		}
	}
	if wins*10 < total*8 {
		t.Fatalf("second order beat first order on only %d/%d graphs", wins, total)
	}
}

// Property: second-order error vs the geometric exact expectation shrinks
// cubically in λ.
func TestSecondOrderErrorIsCubicInLambda(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g, _ := dag.LayeredRandom(dag.RandomConfig{Tasks: 8, EdgeProb: 0.5, MaxLayerWidth: 3}, rng)
	errAt := func(lam float64) float64 {
		m := failure.Model{Lambda: lam}
		exact, err := montecarlo.ExactGeometric(g, m, 6)
		if err != nil {
			t.Fatal(err)
		}
		res, err := SecondOrder(g, m)
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(res.Estimate - exact)
	}
	e1 := errAt(0.02)
	e2 := errAt(0.004)
	if e1 == 0 || e2 == 0 {
		t.Skip("error vanished")
	}
	// Cubic scaling predicts (5)³ = 125; demand at least quadratic-plus.
	if ratio := e1 / e2; ratio < 40 {
		t.Fatalf("error ratio %v too small for O(λ³): %v vs %v", ratio, e1, e2)
	}
}

func TestSecondOrderRejectsCycle(t *testing.T) {
	g := dag.New(2)
	a := g.MustAddTask("a", 1)
	b := g.MustAddTask("b", 1)
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, a)
	if _, err := SecondOrder(g, failure.Model{Lambda: 0.1}); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestExpectedBottomLevelsChain(t *testing.T) {
	// Chain: tail(i) = Σ_{j>=i} a_j and every downstream task is critical,
	// so E[tail(i)] = tail(i) + λ Σ_{j>=i} a_j².
	g := dag.Chain(4, 1, 2, 3, 4)
	lam := 0.01
	ebl, err := ExpectedBottomLevels(g, failure.Model{Lambda: lam})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		tail, sq := 0.0, 0.0
		for j := i; j < 4; j++ {
			tail += g.Weight(j)
			sq += g.Weight(j) * g.Weight(j)
		}
		want := tail + lam*sq
		if !almostEq(ebl[i], want, 1e-12) {
			t.Fatalf("ebl[%d] = %v want %v", i, ebl[i], want)
		}
	}
}

func TestExpectedLevelsMatchFirstOrderAtExtremes(t *testing.T) {
	// For a single-source single-sink DAG, E[tail(source)] and
	// E[head(sink)] both approximate the expected makespan, so they must
	// equal the First Order whole-graph estimate.
	g := dag.Diamond(1, 5, 3, 2)
	m := failure.Model{Lambda: 0.003}
	fo, _ := FirstOrder(g, m)
	ebl, err := ExpectedBottomLevels(g, m)
	if err != nil {
		t.Fatal(err)
	}
	etl, err := ExpectedTopLevels(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(ebl[0], fo.Estimate, 1e-12) {
		t.Fatalf("E[tail(src)] = %v want %v", ebl[0], fo.Estimate)
	}
	if !almostEq(etl[3], fo.Estimate, 1e-12) {
		t.Fatalf("E[head(snk)] = %v want %v", etl[3], fo.Estimate)
	}
}

// Property: expected bottom levels dominate deterministic tails and are
// monotone along edges (a predecessor's level exceeds any successor's).
func TestQuickExpectedBottomLevelInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := dag.LayeredRandom(dag.RandomConfig{Tasks: 20, EdgeProb: 0.4, MaxLayerWidth: 4}, rng)
		if err != nil {
			return false
		}
		m := failure.Model{Lambda: 0.02}
		ebl, err := ExpectedBottomLevels(g, m)
		if err != nil {
			return false
		}
		pe, _ := dag.NewPathEvaluator(g)
		tails := pe.Tails()
		for i := 0; i < g.NumTasks(); i++ {
			if ebl[i] < tails[i]-1e-12 {
				return false
			}
			for _, s := range g.Succ(i) {
				if ebl[i] < ebl[s]-1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedLevelsRejectCycle(t *testing.T) {
	g := dag.New(2)
	a := g.MustAddTask("a", 1)
	b := g.MustAddTask("b", 1)
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, a)
	if _, err := ExpectedBottomLevels(g, failure.Model{Lambda: 0.1}); err == nil {
		t.Fatal("cycle accepted")
	}
	if _, err := ExpectedTopLevels(g, failure.Model{Lambda: 0.1}); err == nil {
		t.Fatal("cycle accepted")
	}
}
