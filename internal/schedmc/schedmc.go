// Package schedmc estimates the expected makespan of a *scheduled* task
// graph on a bounded number of processors under silent errors — the
// extension the source paper's conclusion proposes, built on the same
// frozen-CSR + fused-Monte-Carlo machinery that serves the
// unbounded-processor estimators.
//
// The key reduction: once a list schedule fixes (a) the assignment of
// tasks to processors and (b) the execution order on each processor, the
// makespan under stochastic task durations is the longest path through
// the *schedule DAG* — the original precedence edges plus one chain edge
// between consecutive tasks on each processor. Freeze compiles that DAG
// into a dag.Frozen, and Estimator runs the montecarlo engine over it
// unchanged: chunked SplitMix64 streams (results bit-identical for any
// worker count), inverted-geometric attempt sampling per task through
// failure.Model, bit-level threshold tables, lane-blocked batch
// evaluation and QuantileSketch output all come along for free.
//
// Semantics: the schedule is frozen from the failure-free execution, and
// failures inflate task durations in place (a task is re-executed on its
// own processor until it succeeds, as in the paper's verified-execution
// discipline). This differs from re-running the list scheduler inside
// every trial — the pre-PR5 cmd/schedsim loop, kept available as
// sched.ExpectedMakespan — which re-dispatches tasks dynamically as
// sampled durations shift readiness. The two models agree exactly when
// no failures occur and track each other closely at realistic failure
// probabilities (pinned by the statistical-equivalence test in
// equivalence_test.go); the frozen form is what real runtime systems
// execute once a schedule is committed, and it is what makes the fast
// path possible.
package schedmc

import (
	"fmt"
	"strings"

	"repro/internal/dag"
	"repro/internal/failure"
	"repro/internal/sched"
)

// Policy selects how list-scheduling priorities are computed before the
// schedule is frozen.
type Policy string

// The two priority policies of the paper's proposed extension: classic
// deterministic critical-path priorities, and failure-aware priorities
// from the First Order expected bottom levels.
const (
	// PolicyCP is classic CP scheduling: priority a_i + bl(i), the
	// deterministic bottom level (sched.Priorities).
	PolicyCP Policy = "cp"
	// PolicyFirstOrder ranks tasks by their First Order expected bottom
	// levels, accounting for expected re-executions at rate λ
	// (sched.FailureAwarePriorities).
	PolicyFirstOrder Policy = "fo"
)

// Label returns the human-readable policy name used by schedsim's tables
// and the schedule report document.
func (p Policy) Label() string {
	switch p {
	case PolicyCP:
		return "CP (bottom level)"
	case PolicyFirstOrder:
		return "failure-aware (First Order)"
	}
	return string(p)
}

// Priorities computes the policy's task priorities on g. The failure
// model is only consulted by PolicyFirstOrder; PolicyCP is deterministic.
func (p Policy) Priorities(g *dag.Graph, model failure.Model) ([]float64, error) {
	switch p {
	case PolicyCP:
		return sched.Priorities(g)
	case PolicyFirstOrder:
		return sched.FailureAwarePriorities(g, model)
	}
	return nil, fmt.Errorf("schedmc: unknown policy %q (have %q, %q)", p, PolicyCP, PolicyFirstOrder)
}

// AllPolicies lists every implemented policy, in display order.
func AllPolicies() []Policy {
	return []Policy{PolicyCP, PolicyFirstOrder}
}

// ParsePolicies resolves a policy selector shared by schedsim's -policies
// flag and the service's "policies" request field: "both", "all" or the
// empty string select both policies; otherwise a comma-separated list of
// policy names. Unknown names are rejected up front.
func ParsePolicies(sel string) ([]Policy, error) {
	switch sel {
	case "both", "all", "":
		return AllPolicies(), nil
	}
	known := make(map[Policy]bool, len(AllPolicies()))
	for _, p := range AllPolicies() {
		known[p] = true
	}
	var out []Policy
	for _, s := range strings.Split(sel, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		p := Policy(s)
		if !known[p] {
			return nil, fmt.Errorf("schedmc: unknown policy %q (have cp, fo, both)", s)
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("schedmc: empty policy list %q", sel)
	}
	return out, nil
}

// Overheads composes the optional resilience policies of internal/failure
// into the (graph, model) pair the scheduler and estimator actually see:
// verification cost is folded into task weights, replication into weights
// (serial) or the error rate (parallel). The zero value applies nothing.
type Overheads struct {
	// Verification adds the detector cost to every task
	// (failure.Verification.Apply); the zero value is free verification,
	// matching the paper's baseline.
	Verification failure.Verification
	// Replication, when non-nil, runs two copies of every task and
	// re-executes on any mismatch (failure.Replication.Transform).
	Replication *failure.Replication
}

// Apply returns the transformed (graph, model) pair. The input graph is
// never mutated; when no overhead applies, g itself is returned.
func (o Overheads) Apply(g *dag.Graph, m failure.Model) (*dag.Graph, failure.Model, error) {
	out := g
	if o.Verification != (failure.Verification{}) {
		var err error
		out, err = o.Verification.Apply(out)
		if err != nil {
			return nil, failure.Model{}, err
		}
	}
	if o.Replication != nil {
		return o.Replication.Transform(out, m)
	}
	return out, m, nil
}
