package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// The scheduler's core contract: RunSweep output is byte-identical for
// any cell-worker count, and Progress lines arrive in point order.
func TestRunSweepWorkerInvariance(t *testing.T) {
	spec := SweepSpec{Fact: "lu", K: 6, PFails: []float64{0.1, 0.01, 0.001}}
	var ref string
	var refProgress []string
	for _, workers := range []int{1, 2, 7} {
		var lines []string
		opts := Options{
			Trials:  4000,
			Seed:    9,
			Workers: workers,
			Methods: AllMethods(),
			Progress: func(s string) {
				lines = append(lines, s)
			},
		}
		res, err := RunSweep(spec, opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteSweep(&buf, res, opts.Methods); err != nil {
			t.Fatal(err)
		}
		if ref == "" {
			ref = buf.String()
			refProgress = lines
			if len(lines) != len(spec.PFails) {
				t.Fatalf("progress lines: %d", len(lines))
			}
			continue
		}
		if buf.String() != ref {
			t.Errorf("workers=%d: sweep output differs:\n%s\nvs\n%s", workers, buf.String(), ref)
		}
		if strings.Join(lines, "\n") != strings.Join(refProgress, "\n") {
			t.Errorf("workers=%d: progress order differs: %q vs %q", workers, lines, refProgress)
		}
	}
}

// Figures too: identical tables and identical raw estimates/rel-errors for
// every worker count.
func TestRunFigureWorkerInvariance(t *testing.T) {
	spec, err := Figure(7)
	if err != nil {
		t.Fatal(err)
	}
	var ref FigureResult
	for i, workers := range []int{1, 5} {
		res, err := RunFigure(spec, Options{Trials: 3000, Seed: 4, Ks: []int{4, 6}, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = res
			continue
		}
		if len(res.Points) != len(ref.Points) {
			t.Fatal("point counts differ")
		}
		for j, p := range res.Points {
			q := ref.Points[j]
			if p.MCMean != q.MCMean || p.MCCI95 != q.MCCI95 {
				t.Fatalf("workers=%d point %d: MC differs", workers, j)
			}
			for m, v := range p.Estimate {
				if v != q.Estimate[m] || p.RelErr[m] != q.RelErr[m] {
					t.Fatalf("workers=%d point %d %s: estimates differ", workers, j, m)
				}
			}
		}
	}
}

// Table I runs through the same scheduler; sanity-check one reduced run.
func TestRunTable1Scheduled(t *testing.T) {
	res, err := RunTable1(Table1Spec{Fact: "lu", K: 6, PFail: 0.001}, Options{Trials: 2000, Seed: 1, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Point.Tasks == 0 || res.Point.MCMean <= 0 {
		t.Fatalf("degenerate point: %+v", res.Point)
	}
	for _, m := range PaperMethods() {
		if _, ok := res.Point.Estimate[m]; !ok {
			t.Fatalf("missing estimate for %s", m)
		}
		if res.Point.Time[m] < 0 {
			t.Fatalf("negative time for %s", m)
		}
	}
}

func TestNegativeWorkersRejected(t *testing.T) {
	if _, err := RunSweep(DefaultSweep(), Options{Trials: 10, Workers: -1}); err == nil {
		t.Fatal("RunSweep accepted negative Workers")
	}
	if _, err := RunTable1(Table1(), Options{Trials: 10, Workers: -2}); err == nil {
		t.Fatal("RunTable1 accepted negative Workers")
	}
	spec, _ := Figure(4)
	if _, err := RunFigure(spec, Options{Trials: 10, Workers: -3}); err == nil {
		t.Fatal("RunFigure accepted negative Workers")
	}
}

// An estimator failure must surface as an error naming the cell, not hang
// or panic the pool.
func TestSchedulerPropagatesErrors(t *testing.T) {
	// pfail = 0.9999… saturates per-task pfail to ~1 for heavy tasks at
	// larger graphs? Use an invalid figure size instead: a bogus
	// factorization through the spec.
	spec := FigureSpec{ID: 99, Fact: "no-such-fact", PFail: 0.01, Ks: []int{4}}
	if _, err := RunFigure(spec, Options{Trials: 100}); err == nil {
		t.Fatal("expected error for unknown factorization")
	}
	// Unknown method: fails inside a cell.
	sweep := SweepSpec{Fact: "lu", K: 4, PFails: []float64{0.01}}
	_, err := RunSweep(sweep, Options{Trials: 100, Methods: []Method{Method("bogus")}})
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("want cell error naming method, got %v", err)
	}
}

func ExampleOptions_workers() {
	// Workers caps the total CPU budget; results do not depend on it.
	res1, _ := RunSweep(SweepSpec{Fact: "lu", K: 4, PFails: []float64{0.01}}, Options{Trials: 1000, Seed: 2, Workers: 1})
	res8, _ := RunSweep(SweepSpec{Fact: "lu", K: 4, PFails: []float64{0.01}}, Options{Trials: 1000, Seed: 2, Workers: 8})
	fmt.Println(res1.Points[0].MCMean == res8.Points[0].MCMean)
	// Output: true
}
