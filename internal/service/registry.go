// Package service implements makespand, the long-running HTTP estimation
// daemon. All expensive per-graph artifacts — frozen CSR forms, Dodin
// reduction plans, Monte Carlo estimator snapshots with their sampler
// threshold tables, frozen schedules per (policy, procs, λ), retained
// adaptive snapshots — live in one internal/artifact store: declared
// build rules resolved through a generic content-addressed,
// singleflighted, LRU byte-budgeted resolver. The Registry in this file
// is a thin façade over that store, adding only the service-level
// concerns: graph metadata labels, the generator-spec shortcut index,
// per-entry coalescing slots and the kernel-run counter. Responses are
// rendered through internal/report — the same writers the CLIs use —
// and are byte-identical to the corresponding `makespan -format json` /
// `experiments -format json` / `schedsim -format json` output for the
// same inputs (timing fields excepted) and deterministic under
// concurrent load. See docs/ARCHITECTURE.md §"Ownership and caching"
// for the artifact rule table and docs/API.md for the HTTP reference.
package service

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/artifact"
	"repro/internal/bounds"
	"repro/internal/dag"
	"repro/internal/failure"
	"repro/internal/montecarlo"
	"repro/internal/schedmc"
	"repro/internal/spgraph"
)

// GraphMeta labels how a registry entry was produced. Generated entries
// remember their (kind, k) so sweep responses can carry the same
// factorization label the experiments CLI prints; submitted graphs are
// labeled "custom".
type GraphMeta struct {
	Kind string
	K    int
}

// Entry is one registered graph. The artifact store owns every derived
// object (and the graph itself); the entry adds the service-level state
// that is not an artifact: the metadata label, the coalescing slots of
// coalesce.go and the kernel-run counter the coalescing tests assert on.
type Entry struct {
	reg *Registry
	ga  *artifact.Graph

	// Immutable after construction (views into the graph artifact).
	ID        string
	Canonical []byte // canonical dag JSON; its SHA-256 is the ID
	G         *dag.Graph
	Frozen    *dag.Frozen
	D0        float64 // failure-free makespan d(G)

	mu     sync.Mutex
	meta   GraphMeta // guarded: upgradeable from "custom" to a generator label
	adapts map[adaptiveKey]*adaptiveSlot
	fixed  map[fixedKey]*fixedFlight

	// kernelRuns counts Monte Carlo kernel executions this entry paid
	// for; coalesced requests share one (see coalesce.go).
	kernelRuns atomic.Int64
}

// RegistryStats is a snapshot of cache occupancy and effectiveness,
// served by /healthz. Hits/Misses count graph-level traffic (Add, Get,
// LookupGenerated); Evictions counts evicted graphs (each taking its
// derived artifacts with it). Per-kind artifact counters live on
// GET /v1/cache.
type RegistryStats struct {
	Graphs    int
	UsedBytes int64
	Budget    int64
	Hits      int64
	Misses    int64
	Evictions int64
}

// Registry is the service façade over the artifact store: it maps
// content addresses to entries, keeps the generator-spec shortcut index
// and relays graph evictions (the store evicts a graph's artifacts with
// it; the façade then drops the entry so later lookups miss).
type Registry struct {
	store *artifact.Store

	mu      sync.Mutex
	entries map[string]*Entry
	// genIDs short-circuits generator specs: the named workloads are
	// deterministic, so (kind, k) -> id lets a warm request skip graph
	// generation and content hashing entirely.
	genIDs map[GraphMeta]string

	hits, misses int64
}

// NewRegistry creates a registry whose artifact store enforces the
// given byte budget across every artifact kind (<= 0 means unlimited).
// The entry a request is actively building or growing is never evicted
// (the resolver pins in-flight builds), and neither is the sole
// remaining entry.
func NewRegistry(budget int64) *Registry {
	r := &Registry{
		entries: make(map[string]*Entry),
		genIDs:  make(map[GraphMeta]string),
	}
	r.store = artifact.NewStoreOnEvict(budget, func(kind string, _ artifact.Key, value any) {
		if kind != artifact.KindGraph {
			return
		}
		r.dropEntry(value.(*artifact.Graph).ID)
	})
	return r
}

// dropEntry unlinks an evicted graph from the façade maps. Runs under
// the resolver lock (lock order: resolver → Registry.mu → Entry.mu).
func (r *Registry) dropEntry(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if !ok {
		return
	}
	delete(r.entries, id)
	e.mu.Lock()
	meta := e.meta
	e.mu.Unlock()
	if gid, ok := r.genIDs[meta]; ok && gid == id {
		delete(r.genIDs, meta)
	}
}

// Store exposes the underlying artifact store (the sweep runner and
// GET /v1/cache resolve through it directly).
func (r *Registry) Store() *artifact.Store { return r.store }

// GraphID returns the content address of a graph: "sha256:" + the hex
// digest of its canonical JSON. Two submissions of the same DAG — inline
// JSON or generator spec — collapse onto one entry.
func GraphID(canonical []byte) string { return artifact.GraphID(canonical) }

// Add registers g, returning its entry and whether it was newly created.
// Resolution goes through the artifact store: content addressing,
// freeze singleflight and LRU touch are the graph rule's. Labels only
// upgrade: resubmitting a generated graph as raw JSON keeps the
// generator label, while naming a previously raw-submitted graph by
// its generator spec replaces "custom" with the spec (and indexes it),
// so sweep responses always carry the most specific factorization known.
func (r *Registry) Add(g *dag.Graph, meta GraphMeta) (*Entry, bool, error) {
	return r.AddContext(context.Background(), g, meta)
}

// AddContext is Add bounded by ctx: a cancelled registration aborts the
// graph freeze at the next check and leaves the store retryable (the
// resolver never caches a cancellation).
func (r *Registry) AddContext(ctx context.Context, g *dag.Graph, meta GraphMeta) (*Entry, bool, error) {
	ga, created, err := r.store.GraphContext(ctx, g)
	if err != nil {
		return nil, false, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if created {
		r.misses++
	} else {
		r.hits++
	}
	e, ok := r.entries[ga.ID]
	if !ok {
		e = newEntry(r, ga, meta)
		r.entries[ga.ID] = e
		if meta.Kind != "" && meta.Kind != "custom" {
			r.genIDs[meta] = ga.ID
		}
		return e, created, nil
	}
	r.upgradeMetaLocked(e, meta)
	return e, false, nil
}

func newEntry(r *Registry, ga *artifact.Graph, meta GraphMeta) *Entry {
	return &Entry{
		reg:       r,
		ga:        ga,
		ID:        ga.ID,
		Canonical: ga.Canonical,
		G:         ga.G,
		Frozen:    ga.Frozen,
		D0:        ga.D0,
		meta:      meta,
		adapts:    make(map[adaptiveKey]*adaptiveSlot),
		fixed:     make(map[fixedKey]*fixedFlight),
	}
}

// upgradeMetaLocked relabels e when the caller knows a generator spec
// for content previously submitted as "custom", and indexes it. Called
// with r.mu held.
func (r *Registry) upgradeMetaLocked(e *Entry, meta GraphMeta) {
	if meta.Kind == "" || meta.Kind == "custom" {
		return
	}
	e.mu.Lock()
	if e.meta.Kind == "" || e.meta.Kind == "custom" {
		e.meta = meta
	}
	e.mu.Unlock()
	r.genIDs[meta] = e.ID
}

// Meta returns the entry's current label (generator spec or "custom").
func (e *Entry) Meta() GraphMeta {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.meta
}

// Artifact returns the entry's graph artifact (the sweep runner hands
// it to experiments.RunSweepGraph).
func (e *Entry) Artifact() *artifact.Graph { return e.ga }

// LookupGenerated resolves a generator spec without generating: a warm
// named workload costs one map probe instead of generate + marshal +
// hash. Falls back to a miss when the entry was evicted.
func (r *Registry) LookupGenerated(meta GraphMeta) (*Entry, bool) {
	r.mu.Lock()
	id, ok := r.genIDs[meta]
	r.mu.Unlock()
	if !ok {
		return nil, false
	}
	return r.Get(id)
}

// Get returns the entry for id, touching its graph to the front of the
// store's LRU.
func (r *Registry) Get(id string) (*Entry, bool) {
	r.mu.Lock()
	e, ok := r.entries[id]
	if !ok {
		r.misses++
		r.mu.Unlock()
		return nil, false
	}
	r.hits++
	r.mu.Unlock()
	r.store.Touch(e.ga)
	return e, true
}

// Stats snapshots cache occupancy and graph-level hit counters.
func (r *Registry) Stats() RegistryStats {
	ks := r.store.Stats()[artifact.KindGraph]
	r.mu.Lock()
	defer r.mu.Unlock()
	return RegistryStats{
		Graphs:    int(ks.Resident),
		UsedBytes: r.store.UsedBytes(),
		Budget:    r.store.Budget(),
		Hits:      r.hits,
		Misses:    r.misses,
		Evictions: ks.Evictions,
	}
}

// normAtoms maps a request's Dodin atom cap onto the plan-rule key:
// 0 means the spgraph default, negative means unlimited.
func normAtoms(atoms int) int { return artifact.NormAtoms(atoms) }

// resident reports whether the entry's graph is still the store's
// artifact for its content address. Requests already holding an evicted
// entry keep working — its artifacts just stop being cached (and stop
// being accounted), exactly the pre-store registry behavior.
func (e *Entry) resident() bool { return e.reg.store.Resident(e.ga) }

// Plan returns the entry's recorded Dodin reduction schedule for the
// given atom cap, resolving the plan rule (keyed by the normalized cap
// only: a plan replays bit-identically under every failure model, see
// spgraph.Plan, so one recording serves estimates and sweeps at any
// pfail). On an evicted entry the plan is built cold and unaccounted.
func (e *Entry) Plan(atoms int, model failure.Model) (*spgraph.Plan, error) {
	return e.PlanContext(context.Background(), atoms, model)
}

// PlanContext is Plan bounded by ctx: cancellation aborts an in-flight
// plan recording at the resolver's next check (the cold, unaccounted
// path checks once up front — the recording itself is not chunked).
func (e *Entry) PlanContext(ctx context.Context, atoms int, model failure.Model) (*spgraph.Plan, error) {
	if !e.resident() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		_, _, plan, err := spgraph.DodinPlan(e.G, model, atoms)
		return plan, err
	}
	return e.reg.store.PlanContext(ctx, e.ga, atoms, model)
}

// Estimator returns the entry's compiled Monte Carlo estimator for the
// failure model, resolving the estimator rule (threshold tables
// included) on first use. Callers derive per-request run configs via
// WithConfig; the snapshot itself is shared read-only and safe for
// concurrent runs.
func (e *Entry) Estimator(model failure.Model, mode montecarlo.Mode) (*montecarlo.Estimator, error) {
	return e.EstimatorContext(context.Background(), model, mode)
}

// EstimatorContext is Estimator bounded by ctx (resolver semantics: a
// cancelled compile is never cached and the rule stays retryable).
func (e *Entry) EstimatorContext(ctx context.Context, model failure.Model, mode montecarlo.Mode) (*montecarlo.Estimator, error) {
	if !e.resident() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return montecarlo.NewEstimatorFrozen(e.Frozen, model, montecarlo.Config{
			Trials: 1, Workers: 1, Mode: mode,
		})
	}
	return e.reg.store.EstimatorContext(ctx, e.ga, model, mode)
}

// ScheduleEstimator returns the entry's frozen-schedule Monte Carlo
// estimator for (policy, procs, model), resolving the schedule rule —
// priorities, list schedule, schedule-DAG freeze, sampler threshold
// tables — exactly once per key; concurrent requesters coalesce on the
// resolver's singleflight. A warm request therefore skips schedule
// freezing entirely and pays only the O(1) WithConfig reconfiguration.
func (e *Entry) ScheduleEstimator(policy schedmc.Policy, procs int, model failure.Model) (*schedmc.Estimator, error) {
	return e.ScheduleEstimatorContext(context.Background(), policy, procs, model)
}

// ScheduleEstimatorContext is ScheduleEstimator bounded by ctx
// (resolver semantics: a cancelled freeze is never cached).
func (e *Entry) ScheduleEstimatorContext(ctx context.Context, policy schedmc.Policy, procs int, model failure.Model) (*schedmc.Estimator, error) {
	if !e.resident() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		fs, err := schedmc.Freeze(e.G, policy, procs, model)
		if err != nil {
			return nil, err
		}
		return schedmc.NewEstimator(fs, model, schedmc.Config{Trials: 1, Workers: 1})
	}
	return e.reg.store.ScheduleEstimatorContext(ctx, e.ga, policy, procs, model)
}

// snapshot returns the retained adaptive prefix for key, if any (see
// coalesce.go). touch selects a warm lookup (counts a snapshot hit)
// versus a silent peek for compare-before-replace.
func (e *Entry) snapshot(key adaptiveKey, touch bool) (*montecarlo.Snapshot, bool) {
	if !e.resident() {
		return nil, false
	}
	sk := snapshotKeyFor(key)
	if touch {
		return e.reg.store.Snapshot(e.ga, sk)
	}
	return e.reg.store.PeekSnapshot(e.ga, sk)
}

// putSnapshot retains snap as the entry's snapshot artifact for key.
// Dropped silently when the entry was evicted: an evicted graph's
// snapshots would be unreachable anyway.
func (e *Entry) putSnapshot(key adaptiveKey, snap *montecarlo.Snapshot) {
	if !e.resident() {
		return
	}
	e.reg.store.PutSnapshot(e.ga, snapshotKeyFor(key), snap)
}

func snapshotKeyFor(key adaptiveKey) artifact.SnapshotKey {
	return artifact.SnapshotKey{
		Sched:  key.sched,
		Policy: key.policy,
		Procs:  key.procs,
		Lambda: key.lambda,
		Mode:   key.mode,
		Seed:   key.seed,
	}
}

// Sweeper checks a bounds sweeper out of the graph's pool; return it
// with PutSweeper. Sweepers are per-request scratch over the shared
// frozen graph: pooled for reuse, not counted against the byte budget
// (the GC may reclaim them under pressure).
func (e *Entry) Sweeper() *bounds.Sweeper { return e.ga.Sweeper() }

// PutSweeper returns a sweeper to the pool.
func (e *Entry) PutSweeper(sw *bounds.Sweeper) { e.ga.PutSweeper(sw) }

// PathEvaluator checks a longest-path evaluator out of the graph's pool
// (warm First Order estimates); return it with PutPathEvaluator.
func (e *Entry) PathEvaluator() *dag.PathEvaluator { return e.ga.PathEvaluator() }

// PutPathEvaluator returns an evaluator to the pool.
func (e *Entry) PutPathEvaluator(pe *dag.PathEvaluator) { e.ga.PutPathEvaluator(pe) }

// CacheInfo reports the entry's artifact population for GET /v1/graphs.
type CacheInfo struct {
	Bytes         int64
	DodinPlans    int
	Estimators    int
	Schedules     int
	AdaptiveSnaps int
}

// Cache snapshots the entry's resident artifact counts and accounted
// bytes — a census of the store's dependency graph under this entry's
// graph artifact.
func (e *Entry) Cache() CacheInfo {
	c := e.reg.store.Census(e.ga)
	return CacheInfo{
		Bytes:         c.Bytes,
		DodinPlans:    c.DodinPlans,
		Estimators:    c.Estimators,
		Schedules:     c.Schedules,
		AdaptiveSnaps: c.AdaptiveSnaps,
	}
}

// KernelRuns reports how many Monte Carlo kernel executions this entry
// has actually paid for; coalesced concurrent requests and snapshot
// cache hits share or skip runs, so this can be far below the request
// count. The coalescing tests assert on it.
func (e *Entry) KernelRuns() int64 { return e.kernelRuns.Load() }

// SizeBytes reports the entry's total accounted size (graph artifact
// plus resident derived artifacts).
func (e *Entry) SizeBytes() int64 { return e.reg.store.Census(e.ga).Bytes }
