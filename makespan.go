// Package makespan estimates the expected makespan of task graphs whose
// tasks are subject to silent errors, reproducing "Computing the expected
// makespan of task graphs in the presence of silent errors" (Casanova,
// Herrmann, Robert; P2S2/ICPP 2016).
//
// Tasks run on unlimited processors under precedence constraints; a silent
// error strikes a running task with exponential rate λ and is detected by
// a verification at task end, forcing a full re-execution. Computing the
// resulting expected makespan exactly is #P-complete, so this package
// offers the paper's estimators:
//
//   - FirstOrder — the paper's contribution: exact to first order in λ,
//     computed in O(V+E). The method of choice at realistic error rates.
//   - SecondOrder — the O(λ²) extension sketched in the paper's
//     conclusion.
//   - Dodin — series-parallel approximation of the DAG, evaluated exactly
//     by series/parallel reductions over discrete distributions.
//   - Normal and Sculli — normality-assumption sweeps using Clark's
//     formulas (correlation-aware and independent variants).
//   - MonteCarlo — the brute-force ground truth.
//
// Application DAG generators for tiled Cholesky, LU and QR factorizations
// (the paper's three workloads), a pfail ↔ λ calibration helper, and
// failure-aware list-scheduling priorities round out the API. See
// DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction results.
package makespan

import (
	"math/rand"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/failure"
	"repro/internal/linalg"
	"repro/internal/montecarlo"
	"repro/internal/normal"
	"repro/internal/sched"
	"repro/internal/spgraph"
)

// Graph is a weighted directed acyclic task graph. Build one with
// NewGraph/AddTask/AddEdge or with the generators below.
type Graph = dag.Graph

// NewGraph returns an empty task graph with capacity for n tasks.
func NewGraph(n int) *Graph { return dag.New(n) }

// Model is a silent-error model with exponential error rate Lambda.
type Model = failure.Model

// NewModel returns a model with error rate lambda (errors per second).
func NewModel(lambda float64) (Model, error) { return failure.New(lambda) }

// ModelFromPfail calibrates the error rate so a task of the given mean
// weight fails with probability pfail, as in the paper's evaluation:
// pfail = 1 − e^{−λ·meanWeight}.
func ModelFromPfail(pfail, meanWeight float64) (Model, error) {
	return failure.FromPfail(pfail, meanWeight)
}

// KernelTimes holds per-kernel execution times for the factorization
// generators; the zero value selects the documented defaults.
type KernelTimes = linalg.KernelTimes

// Cholesky returns the task DAG of a tiled Cholesky factorization of a
// k×k tile matrix (paper Figure 1 for k=5).
func Cholesky(k int) (*Graph, error) { return linalg.Cholesky(k, linalg.KernelTimes{}) }

// LU returns the task DAG of a tiled LU factorization (paper Figure 2).
func LU(k int) (*Graph, error) { return linalg.LU(k, linalg.KernelTimes{}) }

// QR returns the task DAG of a tiled QR factorization (paper Figure 3).
func QR(k int) (*Graph, error) { return linalg.QR(k, linalg.KernelTimes{}) }

// FailureFreeMakespan returns d(G), the longest path length and a lower
// bound on the expected makespan.
func FailureFreeMakespan(g *Graph) (float64, error) { return dag.Makespan(g) }

// FirstOrder computes the paper's first-order approximation of the
// expected makespan in O(V+E).
func FirstOrder(g *Graph, m Model) (float64, error) {
	res, err := core.FirstOrder(g, m)
	return res.Estimate, err
}

// FirstOrderDetail additionally returns d(G) and each task's sensitivity
// a_i·(d(G_i) − d(G)); the estimate equals d(G) + λ·Σ contributions.
func FirstOrderDetail(g *Graph, m Model) (core.FirstOrderResult, error) {
	return core.FirstOrder(g, m)
}

// FirstOrderRates is FirstOrder with a per-task error rate — for tasks
// running at different DVFS speeds or on processors of different quality.
func FirstOrderRates(g *Graph, rates []float64) (float64, error) {
	res, err := core.FirstOrderRates(g, rates)
	return res.Estimate, err
}

// SecondOrder computes the O(λ²) extension (O(V(V+E)) time, O(V²) space).
func SecondOrder(g *Graph, m Model) (float64, error) {
	res, err := core.SecondOrder(g, m)
	return res.Estimate, err
}

// Dodin approximates the expected makespan with Dodin's series-parallel
// method. maxAtoms caps distribution supports (0 = default 64, negative =
// unlimited/exact arithmetic).
func Dodin(g *Graph, m Model, maxAtoms int) (float64, error) {
	res, _, err := spgraph.Dodin(g, m, maxAtoms)
	return res.Estimate, err
}

// Normal computes the correlation-aware normality-assumption estimate
// (the paper's "Normal" method).
func Normal(g *Graph, m Model) (float64, error) {
	res, err := normal.CorLCA(g, m)
	return res.Estimate, err
}

// Sculli computes the classical independent-maxima normal estimate.
func Sculli(g *Graph, m Model) (float64, error) {
	res, err := normal.Sculli(g, m)
	return res.Estimate, err
}

// MonteCarloResult is a Monte Carlo estimate with its uncertainty.
type MonteCarloResult = montecarlo.Result

// MonteCarloConfig tunes a Monte Carlo run; the zero value uses the
// paper's 300,000 trials on all cores.
type MonteCarloConfig = montecarlo.Config

// MonteCarlo estimates the expected makespan by sampling, the paper's
// ground truth.
func MonteCarlo(g *Graph, m Model, cfg MonteCarloConfig) (MonteCarloResult, error) {
	return montecarlo.Estimate(g, m, cfg)
}

// ExpectedBottomLevels returns failure-aware expected bottom levels (the
// expected longest path from each task to the end of the execution),
// the priority the paper's conclusion proposes for list scheduling.
func ExpectedBottomLevels(g *Graph, m Model) ([]float64, error) {
	return core.ExpectedBottomLevels(g, m)
}

// IsSeriesParallel reports whether g is two-terminal series-parallel, in
// which case Dodin with unlimited atoms is exact.
func IsSeriesParallel(g *Graph) (bool, error) { return spgraph.IsSeriesParallel(g) }

// Schedule is the outcome of a (possibly failure-injected) list-scheduled
// execution on a bounded number of processors.
type Schedule = sched.Schedule

// ListSchedule runs failure-free CP list scheduling with the given
// priorities on nprocs identical processors.
func ListSchedule(g *Graph, prio []float64, nprocs int) (Schedule, error) {
	return sched.ListSchedule(g, prio, nprocs)
}

// SchedulingPriorities returns deterministic CP (critical-path) list
// scheduling priorities a_i + bl(i).
func SchedulingPriorities(g *Graph) ([]float64, error) { return sched.Priorities(g) }

// FailureAwarePriorities returns priorities from First Order expected
// bottom levels.
func FailureAwarePriorities(g *Graph, m Model) ([]float64, error) {
	return sched.FailureAwarePriorities(g, m)
}

// Bracket returns analytic bounds [lo, hi] guaranteed to contain the
// exact expected makespan under the 2-state model: a Jensen lower bound
// (longest path of expected durations) and an independent-sweep upper
// bound. maxAtoms caps the sweep's distribution supports (0 = default).
func Bracket(g *Graph, m Model, maxAtoms int) (lo, hi float64, err error) {
	return bounds.Bracket(g, m, maxAtoms)
}

// MonteCarloSamples runs Monte Carlo like MonteCarlo but also returns the
// raw makespan samples for quantile, histogram and goodness-of-fit
// queries.
func MonteCarloSamples(g *Graph, m Model, cfg MonteCarloConfig) (MonteCarloResult, *montecarlo.Samples, error) {
	e, err := montecarlo.NewEstimator(g, m, cfg)
	if err != nil {
		return MonteCarloResult{}, nil, err
	}
	return e.RunSamples()
}

// Verification models the cost of the per-task error detector; Apply
// folds it into a graph's weights.
type Verification = failure.Verification

// Replication models duplicate-and-compare error detection; Transform
// reduces it to the plain verified-execution model.
type Replication = failure.Replication

// Platform is a heterogeneous processor set for HEFT.
type Platform = sched.Platform

// UniformPlatform returns n identical unit-speed processors with free
// communication.
func UniformPlatform(n int) Platform { return sched.Uniform(n) }

// HEFT schedules g on a heterogeneous platform with the HEFT heuristic.
// Pass FailureAwareWeights-style expected durations as weights (nil = the
// graph's failure-free weights) to obtain the failure-aware variant.
func HEFT(g *Graph, plat Platform, weights []float64) (Schedule, error) {
	return sched.HEFT(g, plat, weights)
}

// ExpectedWeights returns per-task expected durations a_i·e^{λa_i} under
// re-execution until success — HEFT-ready failure-aware weights.
func ExpectedWeights(g *Graph, m Model) []float64 {
	return sched.FailureAwareWeights(g, m)
}

// Wavefront returns the n×n 2D stencil-sweep DAG, a canonical
// non-series-parallel HPC dependence pattern.
func Wavefront(n int, weight float64) *Graph { return dag.Wavefront(n, weight) }

// Pipeline returns a stages×width bus-structured workflow DAG.
func Pipeline(stages, width int, weight float64) *Graph {
	return dag.Pipeline(stages, width, weight)
}

// FFT returns the n-point butterfly DAG (n a power of two).
func FFT(n int, weight float64) (*Graph, error) { return dag.FFT(n, weight) }

// TransitiveReduction removes redundant precedence edges without changing
// any path length.
func TransitiveReduction(g *Graph) (*Graph, error) { return dag.TransitiveReduction(g) }

// DVFS is the voltage/frequency-dependent error-rate model of the paper's
// Eq. (1): lowering the speed raises the silent-error rate exponentially.
type DVFS = failure.DVFS

// NewDVFS builds a DVFS model with error rate lambda0 at speed smax,
// sensitivity d > 0, and speed range [smin, smax].
func NewDVFS(lambda0, d, smin, smax float64) (DVFS, error) {
	return failure.NewDVFS(lambda0, d, smin, smax)
}

// RandomLayeredGraph generates a random layered DAG; a convenience
// re-export for experimentation and fuzzing.
func RandomLayeredGraph(tasks int, edgeProb float64, maxWidth int, rng *rand.Rand) (*Graph, error) {
	return dag.LayeredRandom(dag.RandomConfig{Tasks: tasks, EdgeProb: edgeProb, MaxLayerWidth: maxWidth}, rng)
}
