package report

import (
	"fmt"
	"io"
	"strings"
)

// SchedulePolicy is one (priority policy × schedule) result of a
// scheduled-makespan estimate: the committed failure-free schedule and
// the Monte Carlo estimate of executing it under silent errors.
type SchedulePolicy struct {
	// Policy is the machine name ("cp", "fo"); Label the display name.
	Policy string
	Label  string
	// FailureFree is the committed schedule's makespan without failures.
	FailureFree float64
	// Efficiency is total work / (procs × FailureFree).
	Efficiency float64
	// ChainEdges counts the processor chain edges of the schedule DAG.
	ChainEdges int
	// MonteCarlo is the fused-engine estimate of the scheduled makespan.
	MonteCarlo *MonteCarloInfo
}

// Schedule is the scheduled-makespan report: everything the rebuilt
// cmd/schedsim prints and everything POST /v1/schedule returns.
type Schedule struct {
	Graph GraphInfo
	Model ModelInfo
	// Procs is the processor count every policy was scheduled on.
	Procs int
	// CriticalPath is the unbounded-processor failure-free makespan d(G),
	// the lower bound no schedule can beat.
	CriticalPath float64
	// Policies holds one entry per requested policy, in request order.
	Policies []SchedulePolicy
}

// WriteScheduleText renders the report in schedsim's text layout: the
// graph/model header, the failure-free bracket and one table row per
// policy (plus quantile lines when present).
func WriteScheduleText(w io.Writer, s Schedule) error {
	var b strings.Builder
	fmt.Fprintf(&b, "graph: %d tasks, %d edges, mean weight %.4g s\n",
		s.Graph.Tasks, s.Graph.Edges, s.Graph.MeanWeight)
	fmt.Fprintf(&b, "model: λ = %.6g /s (pfail of mean task = %.3g, MTBF = %.4g s)\n",
		s.Model.Lambda, s.Model.PFailMeanTask, s.Model.MTBF)
	fmt.Fprintf(&b, "critical path d(G) = %.6g s on unbounded processors; scheduling on %d\n\n",
		s.CriticalPath, s.Procs)
	fmt.Fprintf(&b, "%-28s %-14s %-8s %-14s %-12s\n",
		"policy", "schedule (s)", "eff%", "E[makespan]", "±95% CI")
	for _, p := range s.Policies {
		fmt.Fprintf(&b, "%-28s %-14.6g %-8.1f ", p.Label, p.FailureFree, 100*p.Efficiency)
		if mc := p.MonteCarlo; mc != nil {
			fmt.Fprintf(&b, "%-14.6g %-12.3g", mc.Mean, mc.CI95)
		} else {
			fmt.Fprintf(&b, "%-14s %-12s", "-", "-")
		}
		b.WriteByte('\n')
	}
	for _, p := range s.Policies {
		if p.MonteCarlo == nil {
			continue
		}
		if a := p.MonteCarlo.Adaptive; a != nil {
			status := "converged"
			if !a.Converged {
				status = "hit max_trials"
			}
			fmt.Fprintf(&b, "%-28s %s after %d trials (±%.3g, tolerance %.3g)\n",
				p.Label+" adaptive", status, a.TrialsRun, a.AchievedCI, a.Tolerance)
		}
		for _, q := range p.MonteCarlo.Quantiles {
			fmt.Fprintf(&b, "%-28s %-14.8g (q = %g)\n", p.Label+" quantile", q.Value, q.Q)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

type schedPolicyJSON struct {
	Policy      string             `json:"policy"`
	Label       string             `json:"label"`
	FailureFree float64            `json:"failure_free_makespan"`
	Efficiency  float64            `json:"efficiency"`
	ChainEdges  int                `json:"chain_edges"`
	MonteCarlo  *estMonteCarloJSON `json:"monte_carlo,omitempty"`
}

type scheduleJSON struct {
	Graph        estGraphJSON      `json:"graph"`
	Model        estModelJSON      `json:"model"`
	Procs        int               `json:"procs"`
	CriticalPath float64           `json:"critical_path"`
	Policies     []schedPolicyJSON `json:"policies"`
}

// mcToJSON maps a MonteCarloInfo into its JSON form (shared between the
// estimate and schedule documents so the field layout cannot diverge).
func mcToJSON(mc *MonteCarloInfo) *estMonteCarloJSON {
	if mc == nil {
		return nil
	}
	j := &estMonteCarloJSON{
		Mean:        mc.Mean,
		CI95:        mc.CI95,
		StdDev:      mc.StdDev,
		StdErr:      mc.StdErr,
		Min:         mc.Min,
		Max:         mc.Max,
		Trials:      mc.Trials,
		Seed:        mc.Seed,
		TimeSeconds: mc.Time.Seconds(),
		Adaptive:    adaptiveJSONFrom(mc.Adaptive),
	}
	for _, q := range mc.Quantiles {
		j.Quantiles = append(j.Quantiles, estQuantileJSON{Q: q.Q, Value: q.Value})
	}
	return j
}

// WriteScheduleJSON renders the report as indented JSON with a
// deterministic field order. This is the document of `schedsim -format
// json` and of POST /v1/schedule; the service and CLI responses are
// byte-identical for the same inputs (timing fields excepted).
func WriteScheduleJSON(w io.Writer, s Schedule) error {
	out := scheduleJSON{
		Graph:        estGraphJSON{Tasks: s.Graph.Tasks, Edges: s.Graph.Edges, MeanWeight: s.Graph.MeanWeight},
		Model:        estModelJSON{Lambda: s.Model.Lambda, PFailMeanTask: s.Model.PFailMeanTask, MTBF: s.Model.MTBF},
		Procs:        s.Procs,
		CriticalPath: s.CriticalPath,
		Policies:     []schedPolicyJSON{},
	}
	for _, p := range s.Policies {
		out.Policies = append(out.Policies, schedPolicyJSON{
			Policy:      p.Policy,
			Label:       p.Label,
			FailureFree: p.FailureFree,
			Efficiency:  p.Efficiency,
			ChainEdges:  p.ChainEdges,
			MonteCarlo:  mcToJSON(p.MonteCarlo),
		})
	}
	return writeJSON(w, out)
}
