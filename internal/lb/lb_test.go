package lb

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
)

// newTestRouter builds a router with the periodic checker disabled
// (tests drive checkAll directly) and hedging off unless asked.
func newTestRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	cfg.CheckInterval = -1
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = -1
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// stubReplica is a swappable-handler fake replica.
type stubReplica struct {
	srv     *httptest.Server
	handler atomic.Value // http.HandlerFunc
	hits    atomic.Int64
}

func newStubReplica(t *testing.T, h http.HandlerFunc) *stubReplica {
	t.Helper()
	s := &stubReplica{}
	s.handler.Store(h)
	s.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.hits.Add(1)
		s.handler.Load().(http.HandlerFunc)(w, r)
	}))
	t.Cleanup(s.srv.Close)
	return s
}

func (s *stubReplica) base() string { return s.srv.URL }

func (s *stubReplica) set(h http.HandlerFunc) { s.handler.Store(h) }

func okJSON(id string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"served_by":%q}`, id)
	}
}

func healthzOK(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprint(w, `{"status":"ok"}`)
}

func healthzDraining(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprint(w, `{"status":"draining"}`)
}

func postJSON(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func getPath(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

const estBody = `{"kind":"lu","k":6,"pfail":0.01,"methods":"First Order"}`

func TestProxyRoutesSameGraphToSameReplica(t *testing.T) {
	a := newStubReplica(t, okJSON("a"))
	b := newStubReplica(t, okJSON("b"))
	rt := newTestRouter(t, Config{Replicas: []string{a.base(), b.base()}})
	var served []string
	for i := 0; i < 5; i++ {
		rec := postJSON(t, rt.Handler(), "/v1/estimate", estBody)
		if rec.Code != 200 {
			t.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
		served = append(served, rec.Body.String())
	}
	for _, s := range served[1:] {
		if s != served[0] {
			t.Fatalf("same body routed to different replicas: %v", served)
		}
	}
	// The serving replica is the ring owner of the graph key, and it is
	// named in the upstream metrics.
	sel, err := service.ExtractSelector([]byte(estBody))
	if err != nil {
		t.Fatal(err)
	}
	key, err := sel.RoutingKey()
	if err != nil {
		t.Fatal(err)
	}
	owner := rt.candidates(key)[0]
	if n := rt.metrics.upstream.With(owner, "200").Value(); n != 5 {
		t.Fatalf("owner %s served %d upstream requests, want 5", owner, n)
	}
}

func TestProxyNoHealthyReplicas(t *testing.T) {
	rt := newTestRouter(t, Config{})
	rec := postJSON(t, rt.Handler(), "/v1/estimate", estBody)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	hz := getPath(t, rt.Handler(), "/healthz")
	if hz.Code != http.StatusServiceUnavailable || !strings.Contains(hz.Body.String(), "no_healthy_replicas") {
		t.Fatalf("healthz %d %s", hz.Code, hz.Body)
	}
}

func TestDrainFlipsHealthz(t *testing.T) {
	a := newStubReplica(t, okJSON("a"))
	rt := newTestRouter(t, Config{Replicas: []string{a.base()}})
	if rec := getPath(t, rt.Handler(), "/healthz"); rec.Code != 200 {
		t.Fatalf("healthz %d before drain", rec.Code)
	}
	rt.StartDrain()
	rec := getPath(t, rt.Handler(), "/healthz")
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "draining") {
		t.Fatalf("healthz after drain: %d %s", rec.Code, rec.Body)
	}
	if !rt.Draining() {
		t.Fatal("Draining() false after StartDrain")
	}
}

func TestRegisterAndDeregister(t *testing.T) {
	a := newStubReplica(t, okJSON("a"))
	b := newStubReplica(t, okJSON("b"))
	rt := newTestRouter(t, Config{Replicas: []string{a.base()}})

	rec := postJSON(t, rt.Handler(), "/v1/replicas", fmt.Sprintf(`{"base":%q}`, b.base()))
	if rec.Code != 200 {
		t.Fatalf("register: %d %s", rec.Code, rec.Body)
	}
	var list replicasResponse
	if err := json.Unmarshal(getPath(t, rt.Handler(), "/v1/replicas").Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Replicas) != 2 || list.RingSize != 2 {
		t.Fatalf("after register: %+v", list)
	}

	rec = postJSON(t, rt.Handler(), "/v1/replicas", fmt.Sprintf(`{"base":%q,"deregister":true}`, b.base()))
	if rec.Code != 200 {
		t.Fatalf("deregister: %d %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(getPath(t, rt.Handler(), "/v1/replicas").Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Replicas) != 1 || list.RingSize != 1 {
		t.Fatalf("after deregister: %+v", list)
	}

	if rec = postJSON(t, rt.Handler(), "/v1/replicas", fmt.Sprintf(`{"base":%q,"deregister":true}`, b.base())); rec.Code != 404 {
		t.Fatalf("deregister unknown: %d", rec.Code)
	}
	if rec = postJSON(t, rt.Handler(), "/v1/replicas", `{"base":"not a url"}`); rec.Code != 400 {
		t.Fatalf("register bad base: %d", rec.Code)
	}
}

func TestHealthCheckEjectsDrainingAndReadmits(t *testing.T) {
	a := newStubReplica(t, healthzOK)
	b := newStubReplica(t, healthzOK)
	rt := newTestRouter(t, Config{Replicas: []string{a.base(), b.base()}})
	rt.checkAll()
	if got := ringSize(rt); got != 2 {
		t.Fatalf("ring size %d after healthy sweep", got)
	}

	// b announces shutdown: one draining probe ejects it.
	b.set(healthzDraining)
	rt.checkAll()
	if got := ringSize(rt); got != 1 {
		t.Fatalf("ring size %d after draining sweep, want 1", got)
	}
	if n := rt.metrics.ejects.With(b.base(), "draining").Value(); n != 1 {
		t.Fatalf("draining ejects for %s = %d, want 1", b.base(), n)
	}

	// b restarts: the first healthy probe re-admits it without
	// re-registration.
	b.set(healthzOK)
	rt.checkAll()
	if got := ringSize(rt); got != 2 {
		t.Fatalf("ring size %d after recovery, want 2", got)
	}
}

func TestHealthCheckEjectsDeadAfterThreshold(t *testing.T) {
	a := newStubReplica(t, healthzOK)
	b := newStubReplica(t, healthzOK)
	rt := newTestRouter(t, Config{Replicas: []string{a.base(), b.base()}, FailThreshold: 2})
	rt.checkAll()

	b.set(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	rt.checkAll()
	if got := ringSize(rt); got != 2 {
		t.Fatalf("ejected after one failure, want threshold 2 (ring %d)", got)
	}
	rt.checkAll()
	if got := ringSize(rt); got != 1 {
		t.Fatalf("ring size %d after threshold failures, want 1", got)
	}
	if n := rt.metrics.ejects.With(b.base(), "dead").Value(); n != 1 {
		t.Fatalf("dead ejects = %d, want 1", n)
	}
}

func ringSize(rt *Router) int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.ring.size()
}

func TestFailoverOnUpstreamError(t *testing.T) {
	a := newStubReplica(t, okJSON("a"))
	b := newStubReplica(t, okJSON("b"))
	rt := newTestRouter(t, Config{Replicas: []string{a.base(), b.base()}})

	sel, err := service.ExtractSelector([]byte(estBody))
	if err != nil {
		t.Fatal(err)
	}
	key, err := sel.RoutingKey()
	if err != nil {
		t.Fatal(err)
	}
	cands := rt.candidates(key)
	// Break the shard owner: the request must fail over to the sibling
	// and still answer 200.
	owner := cands[0]
	for _, s := range []*stubReplica{a, b} {
		if s.base() == owner {
			s.set(func(w http.ResponseWriter, r *http.Request) {
				http.Error(w, "boom", http.StatusInternalServerError)
			})
		}
	}
	rec := postJSON(t, rt.Handler(), "/v1/estimate", estBody)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if rt.metrics.failovers.Value() == 0 {
		t.Fatal("failover not counted")
	}
	if rt.metrics.upstreamFailures.With(owner).Value() == 0 {
		t.Fatal("owner failure not counted")
	}
}

func TestForwardedClientErrorsWinImmediately(t *testing.T) {
	// A 4xx is a deterministic verdict on the request — it must be
	// forwarded, not masked by failover to a replica that would answer
	// the same.
	a := newStubReplica(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"bad"}`, http.StatusBadRequest)
	})
	b := newStubReplica(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"bad"}`, http.StatusBadRequest)
	})
	rt := newTestRouter(t, Config{Replicas: []string{a.base(), b.base()}})
	rec := postJSON(t, rt.Handler(), "/v1/estimate", estBody)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 forwarded", rec.Code)
	}
	if n := a.hits.Load() + b.hits.Load(); n != 1 {
		t.Fatalf("4xx hit %d replicas, want exactly 1 attempt", n)
	}
}

// timingFields zeroes the wall-clock fields so deterministic responses
// compare byte-identically (the convention of the e2e scripts).
var timingFields = regexp.MustCompile(`"(mc_time_seconds|time_seconds|uptime_seconds)": [-+0-9.eE]+`)

func normalize(b []byte) string {
	return timingFields.ReplaceAllString(string(b), `"$1": 0`)
}

func TestHedgedRequestCoalescesToOneKernelRun(t *testing.T) {
	// One in-process makespand service behind two fronts registered as
	// two replicas. The shard owner's front delays every request long
	// enough for the hedge budget to expire, so the router hedges to the
	// sibling front; both forwards land on the same service, where the
	// adaptive coalescer must collapse them onto ONE kernel run: the
	// delayed forward either joins the hedge's in-flight run, is served
	// from the retained snapshot after it completes, or is cancelled
	// when the winner settles the request — every interleaving pays
	// exactly one kernel. (The fixed-trials path cannot be pinned this
	// way: its flights are not retained, so a forward arriving after
	// completion legitimately re-runs.)
	svc := service.New(service.Config{Workers: 2})
	const ownerDelay = 100 * time.Millisecond
	var delayBase atomic.Value // the front to slow down
	delayBase.Store("")
	mkFront := func() *httptest.Server {
		var srv *httptest.Server
		srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if delayBase.Load() == srv.URL {
				select {
				case <-time.After(ownerDelay):
				case <-r.Context().Done():
					return
				}
			}
			svc.Handler().ServeHTTP(w, r)
		}))
		t.Cleanup(srv.Close)
		return srv
	}
	a, b := mkFront(), mkFront()
	rt := newTestRouter(t, Config{
		Replicas:   []string{a.URL, b.URL},
		HedgeAfter: 25 * time.Millisecond,
	})

	body := `{"kind":"lu","k":10,"pfail":0.01,"methods":"First Order","tolerance":0.01,"seed":7}`
	sel, err := service.ExtractSelector([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	key, err := sel.RoutingKey()
	if err != nil {
		t.Fatal(err)
	}
	cands := rt.candidates(key)
	if len(cands) != 2 {
		t.Fatalf("candidates %v", cands)
	}
	delayBase.Store(cands[0])

	rec := postJSON(t, rt.Handler(), "/v1/estimate", body)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	e, ok := svc.Registry().LookupGenerated(service.GraphMeta{Kind: "lu", K: 10})
	if !ok {
		t.Fatal("graph entry not registered")
	}
	if n := e.KernelRuns(); n != 1 {
		t.Fatalf("KernelRuns = %d, want exactly 1 (hedge must coalesce, never double-run)", n)
	}
	if n := rt.metrics.hedges.With(cands[1]).Value(); n < 1 {
		t.Fatalf("hedges to %s = %d, want >= 1", cands[1], n)
	}

	// The hedged response is byte-identical to an unhedged direct call
	// (timing fields excepted) — which replica answers is unobservable.
	direct := httptest.NewServer(svc.Handler())
	defer direct.Close()
	resp, err := http.Post(direct.URL+"/v1/estimate", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	directBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := normalize(rec.Body.Bytes()), normalize(directBody); got != want {
		t.Fatalf("hedged response differs from direct:\nhedged: %s\ndirect: %s", got, want)
	}
}

func TestNoHedgeUnderBudget(t *testing.T) {
	a := newStubReplica(t, okJSON("a"))
	b := newStubReplica(t, okJSON("b"))
	rt := newTestRouter(t, Config{Replicas: []string{a.base(), b.base()}, HedgeAfter: 2 * time.Second})
	rec := postJSON(t, rt.Handler(), "/v1/estimate", estBody)
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if n := a.hits.Load() + b.hits.Load(); n != 1 {
		t.Fatalf("fast request hit %d replicas, want 1", n)
	}
}

func TestSweepDefaultSelectorRoutesLikeExplicit(t *testing.T) {
	a := newStubReplica(t, okJSON("a"))
	b := newStubReplica(t, okJSON("b"))
	c := newStubReplica(t, okJSON("c"))
	rt := newTestRouter(t, Config{Replicas: []string{a.base(), b.base(), c.base()}})
	implicit := postJSON(t, rt.Handler(), "/v1/sweep", `{}`)
	explicit := postJSON(t, rt.Handler(), "/v1/sweep", `{"kind":"lu","k":10}`)
	if implicit.Code != 200 || explicit.Code != 200 {
		t.Fatalf("status %d/%d", implicit.Code, explicit.Code)
	}
	if implicit.Body.String() != explicit.Body.String() {
		t.Fatalf("default sweep routed to %s, explicit to %s",
			implicit.Body, explicit.Body)
	}
}

func TestGraphIDPathRoutesWithBodyKey(t *testing.T) {
	// GET /v1/graphs/{id} must route to the same replica as a POST body
	// naming the same graph_id — the id is the shard key either way.
	a := newStubReplica(t, okJSON("a"))
	b := newStubReplica(t, okJSON("b"))
	c := newStubReplica(t, okJSON("c"))
	rt := newTestRouter(t, Config{Replicas: []string{a.base(), b.base(), c.base()}})
	const id = "sha256:0011223344556677"
	get := getPath(t, rt.Handler(), "/v1/graphs/"+id)
	post := postJSON(t, rt.Handler(), "/v1/estimate", fmt.Sprintf(`{"graph_id":%q,"methods":"First Order"}`, id))
	if get.Code != 200 || post.Code != 200 {
		t.Fatalf("status %d/%d", get.Code, post.Code)
	}
	if get.Body.String() != post.Body.String() {
		t.Fatalf("GET routed to %s, POST to %s", get.Body, post.Body)
	}
}
