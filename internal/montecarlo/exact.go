package montecarlo

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/failure"
)

// MaxExactTasks bounds the subset enumeration of ExactTwoState; beyond
// ~24 tasks the 2^V sum is impractical, which is precisely the
// #P-hardness the paper works around.
const MaxExactTasks = 24

// ExactTwoState computes the exact expected makespan under the 2-state
// model (each task takes a_i w.p. e^{−λa_i} and 2a_i otherwise,
// independently) by enumerating all 2^V failure subsets:
// E = Σ_S P(S)·L(S). Exponential time; only for graphs with at most
// MaxExactTasks tasks. It is the test oracle for every estimator.
func ExactTwoState(g *dag.Graph, model failure.Model) (float64, error) {
	n := g.NumTasks()
	if n > MaxExactTasks {
		return 0, fmt.Errorf("montecarlo: %d tasks exceed exact enumeration limit %d", n, MaxExactTasks)
	}
	pe, err := dag.NewPathEvaluator(g)
	if err != nil {
		return 0, err
	}
	psucc := make([]float64, n)
	for i := 0; i < n; i++ {
		psucc[i] = model.PSuccess(g.Weight(i))
	}
	weights := make([]float64, n)
	var expected float64
	for mask := 0; mask < 1<<uint(n); mask++ {
		p := 1.0
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				p *= 1 - psucc[i]
				weights[i] = 2 * g.Weight(i)
			} else {
				p *= psucc[i]
				weights[i] = g.Weight(i)
			}
		}
		if p == 0 {
			continue
		}
		expected += p * pe.MakespanWith(weights)
	}
	return expected, nil
}

// ExactTwoStateRates is ExactTwoState with a per-task error rate λ_i.
func ExactTwoStateRates(g *dag.Graph, rates []float64) (float64, error) {
	n := g.NumTasks()
	if len(rates) != n {
		return 0, fmt.Errorf("montecarlo: %d rates for %d tasks", len(rates), n)
	}
	if n > MaxExactTasks {
		return 0, fmt.Errorf("montecarlo: %d tasks exceed exact enumeration limit %d", n, MaxExactTasks)
	}
	pe, err := dag.NewPathEvaluator(g)
	if err != nil {
		return 0, err
	}
	psucc := make([]float64, n)
	for i := 0; i < n; i++ {
		psucc[i] = failure.Model{Lambda: rates[i]}.PSuccess(g.Weight(i))
	}
	weights := make([]float64, n)
	var expected float64
	for mask := 0; mask < 1<<uint(n); mask++ {
		p := 1.0
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				p *= 1 - psucc[i]
				weights[i] = 2 * g.Weight(i)
			} else {
				p *= psucc[i]
				weights[i] = g.Weight(i)
			}
		}
		if p == 0 {
			continue
		}
		expected += p * pe.MakespanWith(weights)
	}
	return expected, nil
}

// ExactGeometric computes the expected makespan under the full
// re-execute-until-success model by enumerating per-task attempt counts in
// 1..maxAttempts with exact geometric probabilities; the residual tail
// mass (attempt count > maxAttempts) is lumped into the maxAttempts state,
// so the result underestimates the truth by O(Σ(λa_i)^maxAttempts) — make
// maxAttempts large enough for the precision a test needs. Cost is
// maxAttempts^V longest-path passes; the product is capped at ~4M states.
func ExactGeometric(g *dag.Graph, model failure.Model, maxAttempts int) (float64, error) {
	n := g.NumTasks()
	if maxAttempts < 2 {
		maxAttempts = 2
	}
	states := 1.0
	for i := 0; i < n; i++ {
		states *= float64(maxAttempts)
		if states > 4e6 {
			return 0, fmt.Errorf("montecarlo: %d^%d states exceed enumeration budget", maxAttempts, n)
		}
	}
	pe, err := dag.NewPathEvaluator(g)
	if err != nil {
		return 0, err
	}
	// probs[i][k] = P(task i takes k+1 attempts), tail lumped into last.
	probs := make([][]float64, n)
	for i := 0; i < n; i++ {
		p := model.PSuccess(g.Weight(i))
		q := 1 - p
		probs[i] = make([]float64, maxAttempts)
		mass := 1.0
		for k := 0; k < maxAttempts-1; k++ {
			probs[i][k] = mass * p
			mass *= q
		}
		probs[i][maxAttempts-1] = mass
	}
	weights := make([]float64, n)
	var expected float64
	var rec func(idx int, p float64)
	rec = func(idx int, p float64) {
		if p == 0 {
			return
		}
		if idx == n {
			expected += p * pe.MakespanWith(weights)
			return
		}
		for k := 0; k < maxAttempts; k++ {
			weights[idx] = float64(k+1) * g.Weight(idx)
			rec(idx+1, p*probs[idx][k])
		}
	}
	rec(0, 1)
	return expected, nil
}

// ExactFirstOrderTruth computes Σ_{|S|<=1} P(S)·L(S) exactly under the
// 2-state model — the quantity the paper's First Order approximation
// targets before dropping O(λ²) probability terms. Used in tests to
// separate the two truncation steps.
func ExactFirstOrderTruth(g *dag.Graph, model failure.Model) (float64, error) {
	n := g.NumTasks()
	pe, err := dag.NewPathEvaluator(g)
	if err != nil {
		return 0, err
	}
	psucc := make([]float64, n)
	pEmpty := 1.0
	for i := 0; i < n; i++ {
		psucc[i] = model.PSuccess(g.Weight(i))
		pEmpty *= psucc[i]
	}
	weights := g.Weights()
	total := pEmpty * pe.MakespanWith(weights)
	for i := 0; i < n; i++ {
		if psucc[i] == 1 {
			continue
		}
		p := pEmpty / psucc[i] * (1 - psucc[i])
		weights[i] = 2 * g.Weight(i)
		total += p * pe.MakespanWith(weights)
		weights[i] = g.Weight(i)
	}
	return total, nil
}
