package dag

import (
	"errors"
	"fmt"
	"math"
)

// PathEvaluator computes longest-path quantities for one graph. It caches
// the topological order and reusable scratch buffers so that the hot paths
// (Monte Carlo trials, per-task weight perturbations) do not allocate.
// A PathEvaluator is not safe for concurrent use; create one per goroutine.
type PathEvaluator struct {
	g     *Graph
	order []int
	// scratch
	comp []float64 // completion time per task in the current pass
	tail []float64 // longest path starting at task (inclusive)
}

// NewPathEvaluator prepares an evaluator for g. It fails if g is cyclic.
func NewPathEvaluator(g *Graph) (*PathEvaluator, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := g.NumTasks()
	return &PathEvaluator{
		g:     g,
		order: order,
		comp:  make([]float64, n),
		tail:  make([]float64, n),
	}, nil
}

// Graph returns the underlying graph.
func (pe *PathEvaluator) Graph() *Graph { return pe.g }

// TopoOrder returns the cached topological order. The slice is owned by the
// evaluator and must not be mutated.
func (pe *PathEvaluator) TopoOrder() []int { return pe.order }

// Makespan returns the failure-free makespan d(G): the maximum over tasks
// of their completion time with unlimited processors,
// C(i) = a_i + max_{j in Pred(i)} C(j).
func (pe *PathEvaluator) Makespan() float64 {
	return pe.MakespanWith(pe.g.weights)
}

// MakespanWith computes the makespan using the provided weight vector in
// place of the graph's weights. len(weights) must equal NumTasks. This is
// the Monte Carlo hot path: no allocation.
func (pe *PathEvaluator) MakespanWith(weights []float64) float64 {
	if len(weights) != pe.g.NumTasks() {
		panic(fmt.Sprintf("dag: weight vector length %d != %d tasks", len(weights), pe.g.NumTasks()))
	}
	best := 0.0
	for _, v := range pe.order {
		start := 0.0
		for _, p := range pe.g.pred[v] {
			if pe.comp[p] > start {
				start = pe.comp[p]
			}
		}
		c := start + weights[v]
		pe.comp[v] = c
		if c > best {
			best = c
		}
	}
	return best
}

// CompletionTimes returns C(i) for every task under the graph's weights.
func (pe *PathEvaluator) CompletionTimes() []float64 {
	pe.Makespan()
	out := make([]float64, len(pe.comp))
	copy(out, pe.comp)
	return out
}

// Heads returns head(i): the length of the longest path ending at i,
// including a_i. head(i) equals the completion time C(i).
func (pe *PathEvaluator) Heads() []float64 {
	return pe.CompletionTimes()
}

// Tails returns tail(i): the length of the longest path starting at i,
// including a_i. tail(i) = a_i + max_{j in Succ(i)} tail(j).
func (pe *PathEvaluator) Tails() []float64 {
	g := pe.g
	for k := len(pe.order) - 1; k >= 0; k-- {
		v := pe.order[k]
		t := 0.0
		for _, s := range g.succ[v] {
			if pe.tail[s] > t {
				t = pe.tail[s]
			}
		}
		pe.tail[v] = t + g.weights[v]
	}
	out := make([]float64, len(pe.tail))
	copy(out, pe.tail)
	return out
}

// CriticalPath returns one longest path as a sequence of task IDs, and its
// length. For an empty graph it returns (nil, 0).
func (pe *PathEvaluator) CriticalPath() ([]int, float64) {
	if pe.g.NumTasks() == 0 {
		return nil, 0
	}
	d := pe.Makespan() // fills pe.comp
	// Find a task whose completion time equals the makespan, then walk
	// backwards through predecessors achieving the critical start time.
	end := -1
	for _, v := range pe.order {
		if pe.comp[v] == d {
			end = v
			break
		}
	}
	var rev []int
	v := end
	for v >= 0 {
		rev = append(rev, v)
		start := pe.comp[v] - pe.g.weights[v]
		next := -1
		for _, p := range pe.g.pred[v] {
			if pe.comp[p] == start {
				next = p
				break
			}
		}
		if len(pe.g.pred[v]) == 0 {
			break
		}
		if next < 0 {
			// Numerical slack: pick the max-completion predecessor.
			bestC := math.Inf(-1)
			for _, p := range pe.g.pred[v] {
				if pe.comp[p] > bestC {
					bestC, next = pe.comp[p], p
				}
			}
		}
		v = next
	}
	// Reverse.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, d
}

// Makespan returns the failure-free makespan d(G) of g. Convenience wrapper
// that builds a transient evaluator.
func Makespan(g *Graph) (float64, error) {
	pe, err := NewPathEvaluator(g)
	if err != nil {
		return 0, err
	}
	return pe.Makespan(), nil
}

// ErrNoPath is returned by LongestPathBetween when no path exists.
var ErrNoPath = errors.New("dag: no path between the given tasks")

// LongestPathBetween returns the length of the longest path from task u to
// task v, counting both endpoint weights. It returns ErrNoPath if v is not
// reachable from u. O(V+E).
func LongestPathBetween(g *Graph, u, v int) (float64, error) {
	if u < 0 || u >= g.NumTasks() || v < 0 || v >= g.NumTasks() {
		return 0, ErrBadTask
	}
	order, err := g.TopoOrder()
	if err != nil {
		return 0, err
	}
	const unreach = math.MaxFloat64
	dist := make([]float64, g.NumTasks())
	for i := range dist {
		dist[i] = -unreach
	}
	dist[u] = g.weights[u]
	for _, x := range order {
		if dist[x] == -unreach {
			continue
		}
		for _, s := range g.succ[x] {
			if c := dist[x] + g.weights[s]; c > dist[s] {
				dist[s] = c
			}
		}
	}
	if dist[v] == -unreach {
		return 0, ErrNoPath
	}
	return dist[v], nil
}
