// Protection: where should an expensive, highly reliable detector go?
// The First Order decomposition E(G) ≈ d(G) + λ·Σ a_i(d(G_i) − d(G))
// ranks tasks by how much their re-execution hurts the expected makespan.
// This example protects only the top-sensitivity tasks of an LU
// factorization with a costlier-but-instant-restart detector (modelled as
// halving their re-execution exposure) and compares three policies:
// protect nothing, protect the top 10% by sensitivity, protect the top
// 10% by weight — showing that sensitivity, not size, is the right signal.
//
// Run with:
//
//	go run ./examples/protection
package main

import (
	"fmt"
	"log"
	"sort"

	makespan "repro"
)

func main() {
	const (
		k        = 10
		pfail    = 0.01
		fraction = 0.10 // protect this share of tasks
	)
	g, err := makespan.LU(k)
	if err != nil {
		log.Fatal(err)
	}
	model, err := makespan.ModelFromPfail(pfail, g.MeanWeight())
	if err != nil {
		log.Fatal(err)
	}
	detail, err := makespan.FirstOrderDetail(g, model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LU k=%d: %d tasks, pfail=%g, baseline E[makespan] ≈ %.4f s\n\n",
		k, g.NumTasks(), pfail, detail.Estimate)

	n := g.NumTasks()
	budget := n * fraction100(fraction) / 100
	bySensitivity := topIndices(detail.Contribution, budget)
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = g.Weight(i)
	}
	byWeight := topIndices(weights, budget)

	fmt.Printf("%-34s %-16s %s\n", "policy", "E[makespan] (s)", "improvement")
	base := estimateWithProtection(g, model, nil)
	fmt.Printf("%-34s %-16.4f %s\n", "no protection", base, "-")
	for _, p := range []struct {
		name string
		set  []int
	}{
		{fmt.Sprintf("protect top %d by sensitivity", budget), bySensitivity},
		{fmt.Sprintf("protect top %d by task weight", budget), byWeight},
	} {
		est := estimateWithProtection(g, model, p.set)
		fmt.Printf("%-34s %-16.4f %.2f%%\n", p.name, est, 100*(base-est)/base)
	}
	fmt.Println("\nsensitivity-ranked protection captures (almost) all of the achievable gain;")
	fmt.Println("weight-ranked protection wastes budget on heavy tasks off the critical paths.")
}

// estimateWithProtection returns the First Order estimate when the tasks
// in protect re-execute only half of their work after an error (e.g. a
// mid-task check captures a verified snapshot).
func estimateWithProtection(g *makespan.Graph, model makespan.Model, protect []int) float64 {
	detail, err := makespan.FirstOrderDetail(g, model)
	if err != nil {
		log.Fatal(err)
	}
	est := detail.Estimate
	for _, i := range protect {
		// Halving the re-execution removes half of the task's first-order
		// contribution λ·a_i·(d(G_i) − d(G)).
		est -= 0.5 * model.Lambda * detail.Contribution[i]
	}
	return est
}

// topIndices returns the indices of the m largest values.
func topIndices(values []float64, m int) []int {
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return values[idx[a]] > values[idx[b]] })
	if m > len(idx) {
		m = len(idx)
	}
	return idx[:m]
}

func fraction100(f float64) int { return int(f * 100) }
