// Package linalg generates the task graphs of the three tiled dense
// linear-algebra factorizations the paper evaluates on — Cholesky, LU and
// QR of a k×k tile matrix — with task weights derived from BLAS kernel
// costs.
//
// The paper uses kernel execution times measured by StarPU on an Nvidia
// Tesla M2070 GPU with tiles of size b=960 and reports an average task
// weight of ā ≈ 0.15 s. Those exact measurements are not public, so this
// package substitutes flop-proportional times with per-kernel GPU
// efficiency factors (GEMM-like kernels run near peak, panel
// factorizations far below it), scaled so the average task weight over a
// mid-size Cholesky DAG is ≈ 0.15 s. Because the paper calibrates the
// failure rate λ from pfail = 1 − e^{−λā}, every reported quantity depends
// only on relative task weights, which this substitution preserves (see
// DESIGN.md §4).
package linalg

import "fmt"

// Kernel identifies a BLAS/LAPACK tile kernel appearing in the three
// factorizations.
type Kernel int

// The tile kernels of the three factorizations, named as in the paper's
// Figures 1-3.
const (
	POTRF Kernel = iota // Cholesky panel: factor diagonal tile
	TRSM                // Cholesky triangular solve
	SYRK                // Cholesky symmetric rank-k update
	GEMM                // general tile multiply-accumulate (Cholesky + LU)
	GETRF               // LU panel: factor diagonal tile
	TRSML               // LU solve with L (column panel)
	TRSMU               // LU solve with U (row panel)
	GEQRT               // QR panel: factor diagonal tile
	TSQRT               // QR triangle-on-square factorization
	UNMQR               // QR apply Q to row panel
	TSMQR               // QR apply TS reflectors to trailing tile
	numKernels
)

var kernelNames = [numKernels]string{
	"POTRF", "TRSM", "SYRK", "GEMM",
	"GETRF", "TRSML", "TRSMU",
	"GEQRT", "TSQRT", "UNMQR", "TSMQR",
}

// String returns the kernel's conventional name.
func (k Kernel) String() string {
	if k < 0 || k >= numKernels {
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
	return kernelNames[k]
}

// flopsB3 is the classical flop count of each kernel in units of b³ (tile
// dimension cubed), double precision.
var flopsB3 = [numKernels]float64{
	POTRF: 1.0 / 3,
	TRSM:  1,
	SYRK:  1,
	GEMM:  2,
	GETRF: 2.0 / 3,
	TRSML: 1,
	TRSMU: 1,
	GEQRT: 4.0 / 3,
	TSQRT: 2,
	UNMQR: 2,
	TSMQR: 4,
}

// efficiency is the fraction of GEMM-normalized throughput each kernel
// achieves on a Fermi-class GPU: bandwidth-bound and branch-heavy panel
// kernels sit far below the dense-update kernels. The exact values shape
// only second-order details of the DAG critical path.
var efficiency = [numKernels]float64{
	POTRF: 0.10,
	TRSM:  0.80,
	SYRK:  0.90,
	GEMM:  1.00,
	GETRF: 0.12,
	TRSML: 0.80,
	TRSMU: 0.80,
	GEQRT: 0.10,
	TSQRT: 0.16,
	UNMQR: 0.75,
	TSMQR: 0.70,
}

// Flops returns the kernel's flop count in units of b³.
func (k Kernel) Flops() float64 { return flopsB3[k] }

// KernelTimes maps each kernel to its execution time in seconds.
type KernelTimes [numKernels]float64

// timeScale converts GEMM-relative cost (flops/efficiency, b³ units) into
// seconds such that the mean task weight of a mid-size Cholesky DAG is
// ≈ 0.15 s, the ā the paper reports.
const timeScale = 0.084

// DefaultKernelTimes returns the default per-kernel times (seconds):
// time(k) = timeScale · Flops(k)/efficiency(k).
func DefaultKernelTimes() KernelTimes {
	var kt KernelTimes
	for k := Kernel(0); k < numKernels; k++ {
		kt[k] = timeScale * flopsB3[k] / efficiency[k]
	}
	return kt
}

// UniformKernelTimes returns kernel times all equal to w seconds; useful
// for isolating graph-structure effects in ablations.
func UniformKernelTimes(w float64) KernelTimes {
	var kt KernelTimes
	for k := Kernel(0); k < numKernels; k++ {
		kt[k] = w
	}
	return kt
}

// Scaled returns a copy of kt with every time multiplied by f.
func (kt KernelTimes) Scaled(f float64) KernelTimes {
	var out KernelTimes
	for i, v := range kt {
		out[i] = v * f
	}
	return out
}

// Time returns the execution time of kernel k.
func (kt KernelTimes) Time(k Kernel) float64 { return kt[k] }
