package linalg

import (
	"fmt"

	"repro/internal/dag"
)

// Cholesky returns the task DAG of a right-looking tiled Cholesky
// factorization of a k×k tile matrix with the given kernel times
// (DefaultKernelTimes if the zero value is passed). Task names follow the
// paper's Figure 1: POTRF_j, TRSM_i_j, SYRK_i_j, GEMM_i_l_j.
//
// The DAG has k POTRF, k(k-1)/2 TRSM, k(k-1)/2 SYRK and k(k-1)(k-2)/6
// GEMM tasks: CholeskyTaskCount(k) in total, k³/3 + O(k²) as in the paper.
func Cholesky(k int, kt KernelTimes) (*dag.Graph, error) {
	if k < 1 {
		return nil, fmt.Errorf("linalg: Cholesky tile count k must be >= 1, got %d", k)
	}
	if kt == (KernelTimes{}) {
		kt = DefaultKernelTimes()
	}
	g := dag.New(CholeskyTaskCount(k))
	potrf := make([]int, k)
	trsm := make(map[[2]int]int) // (i,j) i>j
	syrk := make(map[[2]int]int) // (i,j) update of tile (i,i) at step j
	gemm := make(map[[3]int]int) // (i,l,j) update of tile (i,l), i>l>j
	for j := 0; j < k; j++ {
		potrf[j] = g.MustAddTask(fmt.Sprintf("POTRF_%d", j), kt[POTRF])
		if j > 0 {
			// The diagonal tile (j,j) accumulated SYRK updates; the last
			// one in the serialized chain is SYRK_j_{j-1}.
			g.MustAddEdge(syrk[[2]int{j, j - 1}], potrf[j])
		}
		for i := j + 1; i < k; i++ {
			id := g.MustAddTask(fmt.Sprintf("TRSM_%d_%d", i, j), kt[TRSM])
			trsm[[2]int{i, j}] = id
			g.MustAddEdge(potrf[j], id)
			if j > 0 {
				g.MustAddEdge(gemm[[3]int{i, j, j - 1}], id)
			}
		}
		for i := j + 1; i < k; i++ {
			id := g.MustAddTask(fmt.Sprintf("SYRK_%d_%d", i, j), kt[SYRK])
			syrk[[2]int{i, j}] = id
			g.MustAddEdge(trsm[[2]int{i, j}], id)
			if j > 0 {
				g.MustAddEdge(syrk[[2]int{i, j - 1}], id)
			}
			for l := j + 1; l < i; l++ {
				gid := g.MustAddTask(fmt.Sprintf("GEMM_%d_%d_%d", i, l, j), kt[GEMM])
				gemm[[3]int{i, l, j}] = gid
				g.MustAddEdge(trsm[[2]int{i, j}], gid)
				g.MustAddEdge(trsm[[2]int{l, j}], gid)
				if j > 0 {
					g.MustAddEdge(gemm[[3]int{i, l, j - 1}], gid)
				}
			}
		}
	}
	return g, nil
}

// CholeskyTaskCount returns the number of tasks of Cholesky(k):
// k + k(k-1) + k(k-1)(k-2)/6.
func CholeskyTaskCount(k int) int {
	return k + k*(k-1) + k*(k-1)*(k-2)/6
}
