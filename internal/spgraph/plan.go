package spgraph

import (
	"fmt"
	"sync"

	"repro/internal/dag"
	"repro/internal/distribution"
	"repro/internal/failure"
)

// A Plan is the recorded reduction/duplication schedule of one Dodin run.
// Every decision Dodin makes — which arcs merge in series or parallel,
// which join node is duplicated — depends only on the network's topology,
// never on the arc distributions, so the schedule recorded under one
// failure model replays verbatim under any other. Replaying skips all of
// the graph bookkeeping (network construction, worklists, degree
// counters, candidate heaps) and performs only the distribution
// arithmetic, with the identical operand order — the replayed Result is
// bit-identical to a fresh Dodin run on the same graph and model.
//
// The experiments sweep scheduler records one plan per swept graph and
// replays it for every further pfail point, concurrently: Run is safe for
// concurrent use.
type Plan struct {
	// init describes the initial arcs in creation order: the task ID whose
	// two-state distribution the arc carries, or -1 for a zero-length
	// precedence arc.
	init []int32
	// weights snapshots the task weights at record time.
	weights []float64
	// ops is the recorded schedule. Arc IDs index the replay's dist array:
	// initial arcs first, every opAdd/opCopy appending one more — the same
	// ID assignment the live network used.
	ops      []planOp
	result   int32
	nArcs    int
	maxAtoms int
	stats    DodinStats

	pool sync.Pool // *planScratch
}

type planOp struct {
	kind uint8
	a, b int32
}

const (
	// opMax: dist[a] = MaxIndCapped(dist[a], dist[b]) — a parallel merge
	// into the surviving arc.
	opMax uint8 = iota
	// opAdd: append AddCapped(dist[a], dist[b]) — a series reduction
	// creating a new arc.
	opAdd
	// opCopy: append dist[a] — a duplication re-homing or copying an arc.
	opCopy
)

// planRec accumulates the schedule while the live run executes.
type planRec struct {
	ops []planOp
}

type planScratch struct {
	dists []distribution.Discrete
	s     distribution.Scratch
}

// DodinPlan runs Dodin on g exactly like Dodin and additionally records
// the reduction schedule for replay under other failure models.
func DodinPlan(g *dag.Graph, model failure.Model, maxAtoms int) (Result, DodinStats, *Plan, error) {
	if maxAtoms == 0 {
		maxAtoms = DefaultMaxAtoms
	}
	if maxAtoms < 0 {
		maxAtoms = 0 // unlimited
	}
	net, err := FromDAG(g, model, maxAtoms)
	if err != nil {
		return Result{}, DodinStats{}, nil, err
	}
	n := g.NumTasks()
	plan := &Plan{
		init:     make([]int32, len(net.arcs)),
		weights:  g.Weights(),
		maxAtoms: maxAtoms,
	}
	// Recover each initial arc's payload from the FromDAG node layout:
	// the arc (2i, 2i+1) carries task i, everything else is a zero arc.
	for id, a := range net.arcs {
		plan.init[id] = -1
		if a.from < 2*n && a.from%2 == 0 && a.to == a.from+1 {
			plan.init[id] = int32(a.from / 2)
		}
	}
	net.rec = &planRec{}
	res, stats, err := net.Dodin()
	if err != nil {
		return Result{}, stats, nil, err
	}
	plan.ops = net.rec.ops
	plan.stats = stats
	plan.nArcs = len(net.arcs)
	// Replay appends exactly one arc per opAdd/opCopy; verify the
	// recording accounts for every live arc so IDs line up.
	appended := 0
	for _, op := range plan.ops {
		if op.kind != opMax {
			appended++
		}
	}
	if len(plan.init)+appended != plan.nArcs {
		return Result{}, stats, nil, fmt.Errorf("spgraph: plan recorded %d arcs, network has %d", len(plan.init)+appended, plan.nArcs)
	}
	for id, alive := range net.aliveArc {
		if alive {
			plan.result = int32(id)
		}
	}
	return res, stats, plan, nil
}

// Stats returns the duplication/reduction counts of the recorded run;
// they are topology-only and hold for every replay.
func (p *Plan) Stats() DodinStats { return p.stats }

// MaxAtoms returns the distribution support cap the plan was recorded
// under (0 = unlimited). Replays inherit it; a cache keyed by atom cap
// must not hand a plan to requests recorded under a different cap.
func (p *Plan) MaxAtoms() int { return p.maxAtoms }

// SizeBytes reports the approximate retained heap size of the recorded
// schedule (initial-arc table, weight snapshot and op list), excluding
// pooled replay scratch. Used by the makespand registry's byte budget.
func (p *Plan) SizeBytes() int64 {
	s := int64(len(p.init)) * 4
	s += int64(len(p.weights)) * 8
	s += int64(len(p.ops)) * 12 // planOp: uint8 + 2×int32, aligned
	return s + 96               // struct header + pool
}

// Run replays the plan under model, returning the same Result a fresh
// Dodin run on the recorded graph would produce, bit for bit. Safe for
// concurrent use; scratch buffers are pooled across calls.
func (p *Plan) Run(model failure.Model) (Result, error) {
	ps, _ := p.pool.Get().(*planScratch)
	if ps == nil {
		ps = &planScratch{}
	}
	if cap(ps.dists) < p.nArcs {
		ps.dists = make([]distribution.Discrete, p.nArcs)
	}
	dists := ps.dists[:0]
	zero := distribution.Point(0)
	for _, task := range p.init {
		if task < 0 {
			dists = append(dists, zero)
			continue
		}
		a := p.weights[task]
		d, err := distribution.TwoState(a, model.PSuccess(a))
		if err != nil {
			p.pool.Put(ps)
			return Result{}, fmt.Errorf("spgraph: task %d: %w", task, err)
		}
		dists = append(dists, d)
	}
	for _, op := range p.ops {
		switch op.kind {
		case opMax:
			dists[op.a] = dists[op.a].MaxIndCapped(dists[op.b], p.maxAtoms, &ps.s)
		case opAdd:
			dists = append(dists, dists[op.a].AddCapped(dists[op.b], p.maxAtoms, &ps.s))
		default: // opCopy
			dists = append(dists, dists[op.a])
		}
	}
	d := dists[p.result]
	res := Result{Estimate: d.Mean(), Distribution: d}
	// Drop references so pooled scratch does not pin whole distributions.
	for i := range dists {
		dists[i] = distribution.Discrete{}
	}
	ps.dists = dists[:0]
	p.pool.Put(ps)
	return res, nil
}
