package dag

import (
	"fmt"
	"math/rand"
)

// RandomConfig parameterizes the synthetic DAG generators used by the test
// suite (property tests over many shapes) and by the ablation benchmarks.
type RandomConfig struct {
	// Tasks is the number of tasks to generate (must be > 0).
	Tasks int
	// MinWeight and MaxWeight bound the uniform task weights.
	MinWeight, MaxWeight float64
	// EdgeProb is the probability of adding each forward candidate edge
	// (Erdős–Rényi layering); in [0,1].
	EdgeProb float64
	// MaxLayerWidth caps layer sizes in LayeredRandom; 0 means Tasks.
	MaxLayerWidth int
}

func (c *RandomConfig) normalize() error {
	if c.Tasks <= 0 {
		return fmt.Errorf("dag: RandomConfig.Tasks must be positive, got %d", c.Tasks)
	}
	if c.MinWeight <= 0 {
		c.MinWeight = 0.01
	}
	if c.MaxWeight < c.MinWeight {
		c.MaxWeight = c.MinWeight
	}
	if c.EdgeProb <= 0 || c.EdgeProb > 1 {
		c.EdgeProb = 0.2
	}
	if c.MaxLayerWidth <= 0 {
		c.MaxLayerWidth = c.Tasks
	}
	return nil
}

func (c *RandomConfig) weight(rng *rand.Rand) float64 {
	return c.MinWeight + rng.Float64()*(c.MaxWeight-c.MinWeight)
}

// ErdosRenyiDAG generates a random DAG on cfg.Tasks vertices: each edge
// (i,j) with i<j is present independently with probability cfg.EdgeProb.
// The ID order is a topological order by construction.
func ErdosRenyiDAG(cfg RandomConfig, rng *rand.Rand) (*Graph, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	g := New(cfg.Tasks)
	for i := 0; i < cfg.Tasks; i++ {
		g.MustAddTask(fmt.Sprintf("t%d", i), cfg.weight(rng))
	}
	for i := 0; i < cfg.Tasks; i++ {
		for j := i + 1; j < cfg.Tasks; j++ {
			if rng.Float64() < cfg.EdgeProb {
				g.MustAddEdge(i, j)
			}
		}
	}
	return g, nil
}

// LayeredRandom generates a layer-structured DAG: tasks are grouped into
// random layers of width ≤ cfg.MaxLayerWidth and edges only connect
// consecutive layers, each present with probability cfg.EdgeProb (at least
// one incoming edge per non-first-layer task so the layering is tight).
func LayeredRandom(cfg RandomConfig, rng *rand.Rand) (*Graph, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	g := New(cfg.Tasks)
	var layers [][]int
	remaining := cfg.Tasks
	for remaining > 0 {
		w := 1 + rng.Intn(cfg.MaxLayerWidth)
		if w > remaining {
			w = remaining
		}
		layer := make([]int, 0, w)
		for k := 0; k < w; k++ {
			id := g.MustAddTask(fmt.Sprintf("l%d_%d", len(layers), k), cfg.weight(rng))
			layer = append(layer, id)
		}
		layers = append(layers, layer)
		remaining -= w
	}
	for li := 1; li < len(layers); li++ {
		prev, cur := layers[li-1], layers[li]
		for _, v := range cur {
			connected := false
			for _, u := range prev {
				if rng.Float64() < cfg.EdgeProb {
					g.MustAddEdge(u, v)
					connected = true
				}
			}
			if !connected {
				g.MustAddEdge(prev[rng.Intn(len(prev))], v)
			}
		}
	}
	return g, nil
}

// Chain returns a linear chain of n tasks with the given weights cycling
// over weights (all 1.0 if empty). Chains are the worst case for
// parallelism and a useful analytic baseline: the expected makespan has a
// closed form.
func Chain(n int, weights ...float64) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		w := 1.0
		if len(weights) > 0 {
			w = weights[i%len(weights)]
		}
		g.MustAddTask(fmt.Sprintf("c%d", i), w)
	}
	for i := 1; i < n; i++ {
		g.MustAddEdge(i-1, i)
	}
	return g
}

// ForkJoin returns a fork-join DAG: one source task, width parallel tasks,
// one sink task. Weights cycle over weights (1.0 if empty) for the middle
// tasks; source and sink have zero weight. Fork-joins are the worst case
// for the "max of expectations vs expectation of max" gap the paper
// discusses, and have a closed-form expected makespan used in tests.
func ForkJoin(width int, weights ...float64) *Graph {
	g := New(width + 2)
	src := g.MustAddTask("fork", 0)
	for i := 0; i < width; i++ {
		w := 1.0
		if len(weights) > 0 {
			w = weights[i%len(weights)]
		}
		id := g.MustAddTask(fmt.Sprintf("p%d", i), w)
		g.MustAddEdge(src, id)
	}
	snk := g.MustAddTask("join", 0)
	for i := 0; i < width; i++ {
		g.MustAddEdge(src+1+i, snk)
	}
	return g
}

// Diamond returns the 4-task diamond (source, two parallel middles, sink)
// with the given four weights. The smallest graph on which the expectation
// of the max differs from the max of expectations.
func Diamond(w0, w1, w2, w3 float64) *Graph {
	g := New(4)
	a := g.MustAddTask("src", w0)
	b := g.MustAddTask("mid0", w1)
	c := g.MustAddTask("mid1", w2)
	d := g.MustAddTask("snk", w3)
	g.MustAddEdge(a, b)
	g.MustAddEdge(a, c)
	g.MustAddEdge(b, d)
	g.MustAddEdge(c, d)
	return g
}

// RandomSeriesParallel generates a random two-terminal series-parallel
// task graph with roughly targetTasks tasks by recursive composition:
// a block is a single task, two blocks in series (exit wired to entry), or
// two blocks in parallel between fresh fork and join tasks. Every block
// keeps a unique entry and exit task, which guarantees the result is
// series-parallel in the activity-on-arc sense (property-tested against
// the recognizer). Used to cross-validate the exact SP evaluator and the
// SP-tree decomposition.
func RandomSeriesParallel(targetTasks int, cfg RandomConfig, rng *rand.Rand) (*Graph, error) {
	if targetTasks < 1 {
		return nil, fmt.Errorf("dag: RandomSeriesParallel needs targetTasks >= 1, got %d", targetTasks)
	}
	cfg.Tasks = targetTasks
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	g := New(targetTasks)
	var build func(budget int) (entry, exit int)
	build = func(budget int) (int, int) {
		if budget <= 1 {
			id := g.MustAddTask(fmt.Sprintf("sp%d", g.NumTasks()), cfg.weight(rng))
			return id, id
		}
		if rng.Intn(2) == 0 || budget < 4 {
			// Series: split the budget.
			left := 1 + rng.Intn(budget-1)
			e1, x1 := build(left)
			e2, x2 := build(budget - left)
			g.MustAddEdge(x1, e2)
			return e1, x2
		}
		// Parallel between fresh fork and join tasks (2 of the budget).
		fork := g.MustAddTask(fmt.Sprintf("fork%d", g.NumTasks()), cfg.weight(rng))
		inner := budget - 2
		left := 1 + rng.Intn(inner-1)
		e1, x1 := build(left)
		e2, x2 := build(inner - left)
		join := g.MustAddTask(fmt.Sprintf("join%d", g.NumTasks()), cfg.weight(rng))
		g.MustAddEdge(fork, e1)
		g.MustAddEdge(fork, e2)
		g.MustAddEdge(x1, join)
		g.MustAddEdge(x2, join)
		return fork, join
	}
	build(targetTasks)
	return g, nil
}

// OutTree returns a complete out-tree (each task has fanout children) with
// depth levels and unit weights scaled by scale.
func OutTree(depth, fanout int, scale float64) *Graph {
	if depth < 1 {
		depth = 1
	}
	if fanout < 1 {
		fanout = 1
	}
	g := New(0)
	root := g.MustAddTask("r", scale)
	frontier := []int{root}
	for d := 1; d < depth; d++ {
		var next []int
		for _, u := range frontier {
			for f := 0; f < fanout; f++ {
				v := g.MustAddTask(fmt.Sprintf("d%d_%d", d, len(next)), scale)
				g.MustAddEdge(u, v)
				next = append(next, v)
			}
		}
		frontier = next
	}
	return g
}
